// Continuous-batching scheduler tests: engine token streams are bitwise
// the full-forward oracle's (greedy and sampled, serial and 2-way tensor
// parallel), evicted sequences resume bitwise after re-admission, the KV
// block budget is never exceeded mid-run, no request starves even under
// minimal KV capacity, and the steady-state pool never grows.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"
#include "ptdp/serve/loadgen.hpp"

namespace ptdp::serve {
namespace {

model::GptConfig tiny() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 32;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 24;
  c.dropout = 0.0f;
  c.seed = 41;
  return c;
}

model::StageSpec whole(const model::GptConfig& c) {
  return model::StageSpec{true, true, 0, c.num_layers, false};
}

EngineOptions small_engine(std::int64_t capacity_blocks) {
  EngineOptions eo;
  eo.block_tokens = 4;
  eo.capacity_blocks = capacity_blocks;
  eo.max_batch_tokens = 32;
  eo.prefill_chunk = 4;
  eo.max_running = 16;
  eo.record_metrics = false;
  return eo;
}

LoadGenOptions small_load(const model::GptConfig& c, std::uint64_t seed) {
  LoadGenOptions lo;
  lo.users = 8;
  lo.requests_per_user = 2;
  lo.prompt_min = 2;
  lo.prompt_max = 8;
  lo.max_new_min = 3;
  lo.max_new_max = 10;
  lo.think_steps_max = 2;
  lo.window = c.seq;
  lo.vocab = c.vocab;
  lo.seed = seed;
  return lo;
}

/// Drives engine + loadgen to completion; asserts budget invariants every
/// step. Returns finished requests keyed by id.
std::map<std::uint64_t, FinishedRequest> drive(ServeEngine& engine,
                                               LoadGen& lg) {
  std::map<std::uint64_t, FinishedRequest> out;
  std::int64_t step = 0;
  while (!lg.done()) {
    EXPECT_LT(step, 20000) << "engine did not drain";
    if (step >= 20000) break;
    lg.tick(step, engine);
    const auto done = engine.step();
    // Budget invariants hold after (and therefore between) every step.
    const auto& alloc = engine.kv().allocator();
    EXPECT_LE(alloc.live_blocks(), engine.options().capacity_blocks);
    EXPECT_LE(alloc.peak_live_blocks(), engine.options().capacity_blocks);
    EXPECT_EQ(alloc.live_blocks(), engine.kv().total_table_blocks());
    lg.on_finished(done, step);
    for (const auto& fin : done) out.emplace(fin.id, fin);
    ++step;
  }
  return out;
}

void expect_matches_oracle(model::GptStage& stage, const LoadGen& lg,
                           const std::map<std::uint64_t, FinishedRequest>& fins) {
  for (const auto& [id, fin] : fins) {
    const Request& req = lg.request(id);
    model::GenerateOptions oracle = req.options;
    oracle.use_kv_cache = false;
    oracle.max_new_tokens = static_cast<std::int64_t>(fin.tokens.size());
    const auto full = model::generate(stage, req.prompt, oracle);
    ASSERT_EQ(full.size(), req.prompt.size() + fin.tokens.size());
    EXPECT_TRUE(std::equal(
        fin.tokens.begin(), fin.tokens.end(),
        full.begin() + static_cast<std::ptrdiff_t>(req.prompt.size())))
        << "request " << id << " diverged from the full-forward oracle";
  }
}

TEST(ServeEngine, MatchesOracleGreedyAndSampled) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  ServeEngine engine(stage, small_engine(/*capacity=*/64));  // ample KV
  LoadGen lg(small_load(c, /*seed=*/21));  // ~half the requests sample
  const auto fins = drive(engine, lg);
  ASSERT_EQ(fins.size(), 16u);
  EXPECT_EQ(engine.stats().preemptions, 0);
  expect_matches_oracle(stage, lg, fins);
}

TEST(ServeEngine, EvictedSequencesResumeBitwise) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  // Capacity fits ~2 full sequences out of 8 concurrent: heavy eviction.
  ServeEngine engine(stage, small_engine(/*capacity=*/12));
  LoadGenOptions lo = small_load(c, /*seed=*/33);
  lo.think_steps_max = 0;  // all users hammer at once
  LoadGen lg(lo);
  const auto fins = drive(engine, lg);
  ASSERT_EQ(fins.size(), 16u);
  EXPECT_GT(engine.stats().preemptions, 0) << "test did not exercise eviction";
  std::int64_t preempted_requests = 0;
  for (const auto& [id, fin] : fins) preempted_requests += fin.preemptions > 0;
  EXPECT_GT(preempted_requests, 0);
  // Every stream — including the evicted-and-resumed ones — is bitwise
  // what an uninterrupted full-forward decode would have produced.
  expect_matches_oracle(stage, lg, fins);
}

TEST(ServeEngine, NoStarvationAtMinimalCapacity) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  // The least KV that can serve one maximal sequence (window - 1 cached
  // positions). Everything must still complete, essentially serially.
  const std::int64_t min_blocks = (c.seq - 1 + 4 - 1) / 4;
  ServeEngine engine(stage, small_engine(min_blocks));
  LoadGenOptions lo = small_load(c, /*seed=*/5);
  lo.think_steps_max = 0;
  LoadGen lg(lo);
  const auto fins = drive(engine, lg);
  EXPECT_EQ(fins.size(), 16u);  // nobody starves
  expect_matches_oracle(stage, lg, fins);
}

TEST(ServeEngine, OldestRequestFinishesFirstUnderPressure) {
  // Eviction only ever claims strictly-younger sequences, so the first
  // submission must be the first to finish when everyone arrives at once
  // with identical lengths.
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  ServeEngine engine(stage, small_engine(/*capacity=*/10));
  for (std::uint64_t id = 1; id <= 6; ++id) {
    Request r;
    r.id = id;
    r.prompt = {3, 7, static_cast<std::int32_t>(id)};
    r.options.max_new_tokens = 8;
    engine.submit(std::move(r));
  }
  std::vector<std::uint64_t> finish_order;
  std::int64_t step = 0;
  while (!engine.idle()) {
    ASSERT_LT(step++, 20000);
    for (const auto& fin : engine.step()) finish_order.push_back(fin.id);
  }
  ASSERT_EQ(finish_order.size(), 6u);
  EXPECT_EQ(finish_order.front(), 1u);
}

TEST(ServeEngine, TensorParallelMatchesSerial) {
  const model::GptConfig c = tiny();
  const std::uint64_t seed = 9;

  // Serial reference run (same seeds, same load).
  dist::Comm solo = dist::Comm::solo();
  model::GptStage serial(c, solo, whole(c));
  ServeEngine ref_engine(serial, small_engine(/*capacity=*/16));
  LoadGen ref_lg(small_load(c, seed));
  const auto expected = drive(ref_engine, ref_lg);
  ASSERT_EQ(expected.size(), 16u);

  // Two tensor ranks run their own engine instance; scheduling is
  // step-driven, so they batch identically and sample identical tokens.
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    model::GptStage stage(c, comm, whole(c));
    EngineOptions eo = small_engine(/*capacity=*/16);
    eo.record_metrics = comm.rank() == 0;
    ServeEngine engine(stage, eo);
    LoadGen lg(small_load(c, seed));
    const auto fins = drive(engine, lg);
    ASSERT_EQ(fins.size(), expected.size());
    for (const auto& [id, fin] : fins) {
      EXPECT_EQ(fin.tokens, expected.at(id).tokens)
          << "rank " << comm.rank() << " request " << id;
    }
  });
}

TEST(ServeEngine, ZeroPoolGrowthAcrossRequestWaves) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  ServeEngine engine(stage, small_engine(/*capacity=*/24));

  auto wave = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      Request r;
      r.id = base + i;
      r.prompt = {1, 2, 3, 4};
      r.options.max_new_tokens = 6;
      engine.submit(std::move(r));
    }
    std::int64_t step = 0;
    while (!engine.idle()) {
      ASSERT_LT(step++, 20000);
      engine.step();
    }
  };

  wave(100);  // warm-up: blocks are acquired from the pool here
  const std::int64_t acquires = engine.kv().allocator().pool_acquires();
  for (std::uint64_t w = 1; w <= 10; ++w) wave(1000 * w);
  EXPECT_EQ(engine.kv().allocator().pool_acquires(), acquires)
      << "steady-state serving grew the pool";
  EXPECT_EQ(engine.kv().allocator().live_blocks(), 0);
}

TEST(ServeEngine, WindowFullRequestFinishesEmpty) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  ServeEngine engine(stage, small_engine(/*capacity=*/16));
  Request r;
  r.id = 1;
  r.prompt.assign(static_cast<std::size_t>(c.seq), 2);  // no room to generate
  r.options.max_new_tokens = 8;
  engine.submit(std::move(r));
  const auto done = engine.step();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].tokens.empty());
  EXPECT_TRUE(engine.idle());
}

TEST(ServeEngine, RejectsBadRequests) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  ServeEngine engine(stage, small_engine(/*capacity=*/16));
  Request empty;
  empty.id = 1;
  EXPECT_THROW(engine.submit(std::move(empty)), CheckError);

  Request ok;
  ok.id = 2;
  ok.prompt = {1};
  engine.submit(std::move(ok));
  Request dup;
  dup.id = 2;
  dup.prompt = {1};
  EXPECT_THROW(engine.submit(std::move(dup)), CheckError);

  Request long_prompt;
  long_prompt.id = 3;
  long_prompt.prompt.assign(static_cast<std::size_t>(c.seq + 1), 0);
  EXPECT_THROW(engine.submit(std::move(long_prompt)), CheckError);
}

}  // namespace
}  // namespace ptdp::serve
