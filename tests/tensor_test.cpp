// Tensor structural tests: construction, views, slicing, permutes, concat.

#include <gtest/gtest.h>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::tensor {
namespace {

TEST(Tensor, ZerosHasShapeAndZeroData) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndOnes) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  for (float v : t.data()) EXPECT_EQ(v, 3.5f);
  Tensor o = Tensor::ones({3});
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
}

TEST(Tensor, RandnIsDeterministicGivenRng) {
  Rng r1(7), r2(7);
  Tensor a = Tensor::randn({4, 4}, r1, 0.02f);
  Tensor b = Tensor::randn({4, 4}, r2, 0.02f);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Tensor, ArangeAndFromValues) {
  Tensor a = Tensor::arange(5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.at({i}), static_cast<float>(i));
  Tensor v = Tensor::from_values({1.f, 2.f, 3.f});
  EXPECT_EQ(v.numel(), 3);
  EXPECT_EQ(v.at({2}), 3.f);
}

TEST(Tensor, FromVectorTakesOwnership) {
  Tensor t = Tensor::from_vector({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_EQ(t.at({1, 0}), 3.f);
}

TEST(Tensor, FromVectorRejectsWrongCount) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.f}), CheckError);
}

TEST(Tensor, AtUsesRowMajorOrder) {
  Tensor t = Tensor::from_vector({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 2}), 2.f);
  EXPECT_EQ(t.at({1, 0}), 3.f);
}

TEST(Tensor, CopiesShareStorageCloneDoesNot) {
  Tensor a({2, 2});
  Tensor shared = a;
  Tensor deep = a.clone();
  a.at({0, 0}) = 9.f;
  EXPECT_EQ(shared.at({0, 0}), 9.f);
  EXPECT_EQ(deep.at({0, 0}), 0.f);
}

TEST(Tensor, ViewSharesStorage) {
  Tensor a = Tensor::from_vector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor v = a.view({3, 2});
  EXPECT_EQ(v.at({2, 1}), 5.f);
  v.at({0, 0}) = 42.f;
  EXPECT_EQ(a.at({0, 0}), 42.f);
}

TEST(Tensor, ViewRejectsWrongNumel) {
  Tensor a({2, 3});
  EXPECT_THROW(a.view({4, 2}), CheckError);
}

TEST(Tensor, SliceMiddleDimension) {
  // [2, 4, 3] sliced on dim 1 -> rows 1..2
  Tensor a({2, 4, 3});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.data()[static_cast<std::size_t>(i)] = static_cast<float>(i);
  }
  Tensor s = a.slice(1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 3}));
  EXPECT_EQ(s.at({0, 0, 0}), a.at({0, 1, 0}));
  EXPECT_EQ(s.at({1, 1, 2}), a.at({1, 2, 2}));
}

TEST(Tensor, SliceNegativeDim) {
  Tensor a = Tensor::from_vector({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = a.slice(-1, 2, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 2.f);
  EXPECT_EQ(s.at({1, 1}), 7.f);
}

TEST(Tensor, SliceOutOfRangeThrows) {
  Tensor a({2, 4});
  EXPECT_THROW(a.slice(1, 3, 2), CheckError);
}

TEST(Tensor, Transpose2D) {
  Tensor a = Tensor::from_vector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor t = a.transpose(0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.at({j, i}), a.at({i, j}));
    }
  }
}

TEST(Tensor, TransposeIsItsOwnInverse) {
  Rng rng(3);
  Tensor a = Tensor::randn({3, 5}, rng);
  EXPECT_EQ(max_abs_diff(a.transpose(0, 1).transpose(0, 1), a), 0.0f);
}

TEST(Tensor, Permute3D) {
  Tensor a({2, 3, 4});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.data()[static_cast<std::size_t>(i)] = static_cast<float>(i);
  }
  Tensor p = a.permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      for (std::int64_t k = 0; k < 4; ++k) {
        EXPECT_EQ(p.at({k, i, j}), a.at({i, j, k}));
      }
    }
  }
}

TEST(Tensor, ConcatDim0AndDim1) {
  Tensor a = Tensor::from_vector({1, 2}, {1, 2});
  Tensor b = Tensor::from_vector({1, 2}, {3, 4});
  Tensor c0 = concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_EQ(c0.at({1, 1}), 4.f);
  Tensor c1 = concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_EQ(c1.at({0, 2}), 3.f);
}

TEST(Tensor, SplitIsInverseOfConcat) {
  Rng rng(5);
  Tensor a = Tensor::randn({4, 6}, rng);
  auto parts = split(a, 3, 1);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].shape(), (Shape{4, 2}));
  Tensor back = concat(parts, 1);
  EXPECT_EQ(max_abs_diff(back, a), 0.0f);
}

TEST(Tensor, SplitRejectsNonDivisible) {
  Tensor a({4, 6});
  EXPECT_THROW(split(a, 4, 1), CheckError);
}

TEST(Tensor, CopyFromAndFill) {
  Tensor a = Tensor::full({2, 2}, 7.f);
  Tensor b({2, 2});
  b.copy_from(a);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  b.zero();
  for (float v : b.data()) EXPECT_EQ(v, 0.0f);
  b.fill(-1.5f);
  for (float v : b.data()) EXPECT_EQ(v, -1.5f);
}

TEST(Tensor, AllcloseRespectsTolerance) {
  Tensor a = Tensor::full({3}, 1.0f);
  Tensor b = Tensor::full({3}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::full({3}, 1.1f);
  EXPECT_FALSE(allclose(a, c));
}

TEST(Tensor, MaxAbsDiffShapesMustMatch) {
  Tensor a({2, 2}), b({4});
  EXPECT_THROW(max_abs_diff(a, b), CheckError);
}

TEST(Tensor, UniformRange) {
  Rng rng(9);
  Tensor u = Tensor::uniform({100}, rng, -2.f, 2.f);
  for (float v : u.data()) {
    EXPECT_GE(v, -2.f);
    EXPECT_LT(v, 2.f);
  }
}

}  // namespace
}  // namespace ptdp::tensor
