// LR schedule tests: warmup ramp, cosine decay, floor behavior, and the
// engine integration (per-step lr application, resume continuity, and
// set_lr propagation through every optimizer wrapper).

#include <gtest/gtest.h>

#include <filesystem>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/optim/lr_scheduler.hpp"
#include "ptdp/optim/mixed_precision.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

namespace ptdp::optim {
namespace {

TEST(LrSchedule, WarmupIsLinear) {
  LrSchedule sched({.peak_lr = 1.0f, .min_lr = 0.0f, .warmup_steps = 10,
                    .decay_steps = 100});
  EXPECT_FLOAT_EQ(sched.at(0), 0.1f);
  EXPECT_FLOAT_EQ(sched.at(4), 0.5f);
  EXPECT_FLOAT_EQ(sched.at(9), 1.0f);
}

TEST(LrSchedule, CosineDecayHitsHalfwayAndFloor) {
  LrSchedule sched({.peak_lr = 1.0f, .min_lr = 0.1f, .warmup_steps = 0,
                    .decay_steps = 100});
  EXPECT_FLOAT_EQ(sched.at(0), 1.0f);
  // Halfway through decay the cosine factor is 0.5.
  EXPECT_NEAR(sched.at(50), 0.1f + 0.9f * 0.5f, 1e-4f);
  EXPECT_FLOAT_EQ(sched.at(100), 0.1f);
  EXPECT_FLOAT_EQ(sched.at(100000), 0.1f);  // constant after horizon
}

TEST(LrSchedule, MonotoneAfterWarmup) {
  LrSchedule sched({.peak_lr = 3e-4f, .min_lr = 3e-5f, .warmup_steps = 20,
                    .decay_steps = 500});
  for (int s = 20; s < 499; ++s) {
    EXPECT_GE(sched.at(s), sched.at(s + 1)) << "step " << s;
  }
}

TEST(LrSchedule, RejectsBadOptions) {
  EXPECT_THROW(LrSchedule({.peak_lr = 1.0f, .min_lr = 0.0f, .warmup_steps = 50,
                           .decay_steps = 50}),
               CheckError);
  EXPECT_THROW(LrSchedule({.peak_lr = 0.0f}), CheckError);
}

TEST(LrSchedule, SetLrPropagatesThroughWrappers) {
  model::Param p{"w", tensor::Tensor({2}), tensor::Tensor({2}), false};
  auto inner = std::make_unique<Adam>(model::ParamRefs{&p}, AdamOptions{.lr = 1.f});
  MixedPrecisionOptimizer mixed(std::move(inner), {});
  mixed.set_lr(0.25f);
  EXPECT_FLOAT_EQ(mixed.lr(), 0.25f);

  dist::World world(2);
  world.run([](dist::Comm& comm) {
    model::Param q{"w", tensor::Tensor({2}), tensor::Tensor({2}), false};
    zero::ZeroShardedAdam z(model::ParamRefs{&q}, comm, {});
    z.set_lr(0.5f);
    EXPECT_FLOAT_EQ(z.lr(), 0.5f);
  });
}

TEST(LrSchedule, EngineAppliesSchedulePerStepAndResumes) {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 8;
  c.seed = 1;
  data::SyntheticCorpus corpus(c.vocab, 1);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  core::EngineOptions options;
  options.model = c;
  options.parallel.b = 2;
  options.parallel.recompute = false;
  options.global_batch = 4;
  options.optimizer = core::EngineOptions::Opt::kAdam;
  options.lr_schedule = LrScheduleOptions{.peak_lr = 1e-2f, .min_lr = 1e-4f,
                                          .warmup_steps = 2, .decay_steps = 10};
  const LrSchedule reference(*options.lr_schedule);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("ptdp_lr_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  dist::World world(1);
  world.run([&](dist::Comm& comm) {
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, 4, 2, 1, 0, 4);
    for (int s = 0; s < 4; ++s) {
      engine.train_step(loader.next_batch(s));
      EXPECT_FLOAT_EQ(engine.last_stats().lr, reference.at(s)) << "step " << s;
      EXPECT_EQ(engine.last_stats().step, s);
      EXPECT_GT(engine.last_stats().tokens_per_second, 0.0);
      EXPECT_EQ(engine.last_stats().tokens, 4 * c.seq);
    }
    engine.save_checkpoint(dir.string(), 4);
  });
  // Resume: the schedule continues from the checkpointed step, not step 0.
  world.run([&](dist::Comm& comm) {
    core::PtdpEngine engine(comm, options);
    EXPECT_EQ(engine.load_checkpoint(dir.string()), 4u);
    data::ShardedLoader loader(dataset, 4, 2, 1, 0, 4);
    engine.train_step(loader.next_batch(4));
    EXPECT_FLOAT_EQ(engine.last_stats().lr, reference.at(4));
    EXPECT_EQ(engine.last_stats().step, 4);
  });
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ptdp::optim
