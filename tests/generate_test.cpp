// Generation tests: greedy decoding is argmax and deterministic, sampling
// respects temperature and seed, tensor-parallel generation matches serial
// token-for-token, and a model trained on the synthetic bigram corpus
// reproduces the corpus's successor rule.

#include <gtest/gtest.h>

#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"
#include "ptdp/optim/optimizer.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {
namespace {

GptConfig tiny(float dropout = 0.0f) {
  GptConfig c;
  c.num_layers = 2;
  c.hidden = 32;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 12;
  c.dropout = dropout;
  c.seed = 41;
  return c;
}

StageSpec whole(const GptConfig& c) {
  return StageSpec{true, true, 0, c.num_layers, false};
}

TEST(Generate, GreedyIsDeterministic) {
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  std::vector<std::int32_t> prompt{1, 2, 3};
  GenerateOptions opt;
  opt.max_new_tokens = 8;
  const auto a = generate(stage, prompt, opt);
  const auto b = generate(stage, prompt, opt);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), prompt.size() + 8);
  // Prompt is preserved as prefix.
  for (std::size_t i = 0; i < prompt.size(); ++i) EXPECT_EQ(a[i], prompt[i]);
}

TEST(Generate, GreedyPicksArgmaxOfLogits) {
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  std::vector<std::int32_t> prompt{5, 9};
  GenerateOptions opt;
  opt.max_new_tokens = 1;
  const auto out = generate(stage, prompt, opt);
  const tensor::Tensor logits = forward_logits(stage, prompt, 2, 1);
  // Row for the last position.
  std::int32_t best = 0;
  float best_v = -1e30f;
  for (std::int64_t v = 0; v < c.vocab; ++v) {
    const float lv = logits.at({1, v});
    if (lv > best_v) {
      best_v = lv;
      best = static_cast<std::int32_t>(v);
    }
  }
  EXPECT_EQ(out.back(), best);
}

TEST(Generate, SamplingSeedControlsOutput) {
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  std::vector<std::int32_t> prompt{1};
  GenerateOptions opt;
  opt.greedy = false;
  opt.temperature = 1.5f;
  opt.max_new_tokens = 16;
  opt.seed = 1;
  const auto a = generate(stage, prompt, opt);
  const auto a2 = generate(stage, prompt, opt);
  EXPECT_EQ(a, a2);  // same seed, same tokens
  opt.seed = 2;
  const auto b = generate(stage, prompt, opt);
  EXPECT_NE(a, b);  // different seed, different trajectory (overwhelmingly)
}

TEST(Generate, ContextWindowTruncatesFromLeft) {
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  // Prompt longer than the trained window still generates.
  std::vector<std::int32_t> prompt(30, 3);
  GenerateOptions opt;
  opt.max_new_tokens = 4;
  const auto out = generate(stage, prompt, opt);
  EXPECT_EQ(out.size(), prompt.size() + 4);
}

TEST(Generate, LogitsMatchTrainingLossPath) {
  // Cross-entropy computed from the inference logits must equal the loss
  // the training head reports on the same tokens.
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  Microbatch mb;
  mb.s = c.seq;
  mb.b = 2;
  mb.tag = 3;
  Rng rng(1, 2);
  mb.tokens.resize(static_cast<std::size_t>(mb.s * mb.b));
  mb.targets.resize(static_cast<std::size_t>(mb.s * mb.b));
  for (auto& t : mb.tokens) {
    t = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(c.vocab)));
  }
  for (auto& t : mb.targets) {
    t = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(c.vocab)));
  }
  StageCache cache;
  const float train_loss = stage.forward(tensor::Tensor(), mb, cache).loss;
  const tensor::Tensor logits = forward_logits(stage, mb.tokens, mb.s, mb.b);
  const auto ce = tensor::cross_entropy(logits, mb.targets);
  EXPECT_NEAR(ce.loss, train_loss, 1e-4f);
}

TEST(Generate, TensorParallelMatchesSerial) {
  GptConfig c = tiny();
  std::vector<std::int32_t> prompt{2, 7, 11};
  GenerateOptions opt;
  opt.max_new_tokens = 6;

  dist::Comm solo = dist::Comm::solo();
  GptStage serial(c, solo, whole(c));
  const auto expected = generate(serial, prompt, opt);

  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    GptStage stage(c, comm, whole(c));
    const auto got = generate(stage, prompt, opt);
    EXPECT_EQ(got, expected) << "rank " << comm.rank();
  });
}

TEST(Generate, RejectsDropoutAndPartialStages) {
  GptConfig with_dropout = tiny(0.1f);
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(with_dropout, solo, whole(with_dropout));
  std::vector<std::int32_t> prompt{1};
  EXPECT_THROW(generate(stage, prompt, {}), CheckError);

  GptConfig c = tiny();
  GptStage partial(c, solo, StageSpec{true, false, 0, 1, false});
  EXPECT_THROW(forward_logits(partial, prompt, 1, 1), CheckError);
}

TEST(Generate, KvCacheMatchesFullForwardBitwise) {
  // The incremental KV-cached decode must produce bit-identical token
  // streams to the O(n²) full-forward oracle — greedy and sampled.
  GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  std::vector<std::int32_t> prompt{4, 9, 1};
  for (const bool greedy : {true, false}) {
    GenerateOptions opt;
    opt.greedy = greedy;
    opt.temperature = 0.9f;
    opt.top_k = 8;
    opt.seed = 17;
    opt.max_new_tokens = 8;  // stays within the trained window
    opt.use_kv_cache = true;
    const auto cached = generate(stage, prompt, opt);
    opt.use_kv_cache = false;
    const auto full = generate(stage, prompt, opt);
    EXPECT_EQ(cached, full) << (greedy ? "greedy" : "sampled");
  }
}

TEST(Generate, KvCacheTensorParallelMatchesSerialSampled) {
  // The acceptance sweep: t ∈ {1, 2} × {greedy, sampled} must all agree.
  GptConfig c = tiny();
  std::vector<std::int32_t> prompt{2, 7, 11};
  GenerateOptions greedy_opt;
  greedy_opt.max_new_tokens = 6;
  GenerateOptions sampled_opt = greedy_opt;
  sampled_opt.greedy = false;
  sampled_opt.temperature = 1.1f;
  sampled_opt.top_k = 12;
  sampled_opt.seed = 3;

  dist::Comm solo = dist::Comm::solo();
  GptStage serial(c, solo, whole(c));
  const auto greedy_serial = generate(serial, prompt, greedy_opt);
  const auto sampled_serial = generate(serial, prompt, sampled_opt);

  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    GptStage stage(c, comm, whole(c));
    EXPECT_EQ(generate(stage, prompt, greedy_opt), greedy_serial)
        << "rank " << comm.rank();
    EXPECT_EQ(generate(stage, prompt, sampled_opt), sampled_serial)
        << "rank " << comm.rank();
  });
}

TEST(Generate, TopKRestrictsAndTieBreaksDeterministically) {
  // top_k = 1 must reduce to argmax; top_k = 2 must only ever emit the two
  // highest logits; ties at the k-th value resolve toward lower token ids.
  std::vector<float> row{0.1f, 2.0f, -1.0f, 2.0f, 1.5f, 0.0f};
  GenerateOptions opt;
  opt.greedy = false;
  opt.temperature = 0.7f;

  opt.top_k = 1;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sample_token(row, opt, rng), 1);  // argmax, lower-id tiebreak
  }

  opt.top_k = 2;
  Rng rng2(2);
  for (int i = 0; i < 50; ++i) {
    const std::int32_t t = sample_token(row, opt, rng2);
    EXPECT_TRUE(t == 1 || t == 3) << t;  // both logit-2.0 tokens, nothing else
  }

  opt.top_k = 0;  // unrestricted: every token reachable in principle
  Rng rng3(3);
  std::vector<int> seen(row.size(), 0);
  for (int i = 0; i < 400; ++i) {
    const std::int32_t t = sample_token(row, opt, rng3);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, static_cast<std::int32_t>(row.size()));
    ++seen[static_cast<std::size_t>(t)];
  }
  EXPECT_GT(seen[1], seen[2]);  // higher logit, more mass
}

TEST(Generate, SamplingIsRankDeterministic) {
  // Two Rng instances with the same (seed, stream) must drive sample_token
  // through identical draws — the property every tensor rank relies on.
  std::vector<float> row{0.3f, 1.0f, 0.2f, 0.9f, 0.6f};
  GenerateOptions opt;
  opt.greedy = false;
  opt.temperature = 1.3f;
  opt.top_k = 3;
  Rng a(7, substream(0x9E4EA7E));
  Rng b(7, substream(0x9E4EA7E));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_token(row, opt, a), sample_token(row, opt, b));
  }
  EXPECT_EQ(a.counter(), b.counter());
}

TEST(Generate, TrainedModelLearnsBigramRule) {
  // Train on the synthetic corpus (70% deterministic successor), then
  // check greedy generation follows the successor rule most of the time.
  GptConfig c = tiny();
  c.num_layers = 2;
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, whole(c));
  optim::Adam adam(stage.params(), {.lr = 5e-3f});

  data::SyntheticCorpus corpus(c.vocab, 17);
  data::TokenDataset dataset(corpus.generate(20000), c.seq);
  data::ShardedLoader loader(dataset, /*B=*/16, /*b=*/4, 1, 0, 9);
  for (int step = 0; step < 60; ++step) {
    stage.zero_grads();
    auto mbs = loader.next_batch(step);
    const float scale = 1.0f / static_cast<float>(mbs.size());
    for (const auto& mb : mbs) {
      StageCache cache;
      stage.forward(tensor::Tensor(), mb, cache);
      stage.backward(tensor::Tensor(), scale, cache, mb);
    }
    adam.step();
  }

  // Measure next-token accuracy against the corpus's own continuation.
  auto stream = corpus.generate(4000);
  int correct = 0, total = 0;
  for (std::size_t i = 1000; i < 1200; ++i) {
    std::span<const std::int32_t> ctx(stream.data() + i - 8, 8);
    const tensor::Tensor logits = forward_logits(stage, ctx, 8, 1);
    std::int32_t best = 0;
    float best_v = -1e30f;
    for (std::int64_t v = 0; v < c.vocab; ++v) {
      const float lv = logits.at({7, v});
      if (lv > best_v) {
        best_v = lv;
        best = static_cast<std::int32_t>(v);
      }
    }
    if (best == stream[i]) ++correct;
    ++total;
  }
  // The rule fires 70% of the time; a model that learned it predicts well
  // above chance (1/32 ≈ 3%). Require > 40%.
  EXPECT_GT(static_cast<double>(correct) / total, 0.4)
      << correct << "/" << total;
}

}  // namespace
}  // namespace ptdp::model
