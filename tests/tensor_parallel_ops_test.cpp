// Tests for the intra-op parallel compute backend: the packed GEMM kernels
// against a naive reference at tile-unfriendly shapes, bitwise determinism
// across intra-op thread counts, the parallel_for facility itself, and
// kernels running inside a dist gang (rank threads + intra-op helpers must
// compose without deadlock).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp {
namespace {

using tensor::Tensor;

/// Restore the requested intra-op width when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(runtime::intra_op_threads()) {}
  ~ThreadGuard() { runtime::set_intra_op_threads(saved_); }

 private:
  std::size_t saved_;
};

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  auto pa = a.data();
  auto pb = b.data();
  auto pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t j = 0; j < n; ++j) {
        pc[static_cast<std::size_t>(i * n + j)] +=
            pa[static_cast<std::size_t>(i * k + p)] *
            pb[static_cast<std::size_t>(p * n + j)];
      }
    }
  }
  return c;
}

// ---- parallel_for facility ----------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(0, kN, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  int calls = 0;
  runtime::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Range at or below grain runs as a single inline call on the caller.
  std::atomic<int> chunked{0};
  runtime::parallel_for(0, 8, 16, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 8);
    chunked++;
  });
  EXPECT_EQ(chunked.load(), 1);
}

TEST(ParallelFor, NestedCallsRunSerialInline) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  EXPECT_FALSE(runtime::in_parallel_region());
  std::atomic<bool> saw_nested_region{false};
  runtime::parallel_for(0, 64, 1, [&](std::int64_t, std::int64_t) {
    if (runtime::in_parallel_region()) saw_nested_region = true;
    // A nested parallel_for must degrade to one inline call.
    std::atomic<int> inner_calls{0};
    runtime::parallel_for(0, 1000, 1, [&](std::int64_t b, std::int64_t e) {
      EXPECT_EQ(b, 0);
      EXPECT_EQ(e, 1000);
      inner_calls++;
    });
    EXPECT_EQ(inner_calls.load(), 1);
  });
  EXPECT_TRUE(saw_nested_region.load());
  EXPECT_FALSE(runtime::in_parallel_region());
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  EXPECT_THROW(
      runtime::parallel_for(0, 256, 1,
                            [&](std::int64_t b, std::int64_t) {
                              if (b == 128) throw std::runtime_error("chunk boom");
                            }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<std::int64_t> total{0};
  runtime::parallel_for(0, 256, 1, [&](std::int64_t b, std::int64_t e) {
    total += e - b;
  });
  EXPECT_EQ(total.load(), 256);
}

TEST(ParallelFor, EnvVariableParsing) {
  ASSERT_EQ(setenv("PTDP_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(runtime::detail::env_intra_op_threads(), 3u);
  ASSERT_EQ(setenv("PTDP_NUM_THREADS", "garbage", 1), 0);
  EXPECT_EQ(runtime::detail::env_intra_op_threads(), 0u);
  ASSERT_EQ(setenv("PTDP_NUM_THREADS", "0", 1), 0);
  EXPECT_EQ(runtime::detail::env_intra_op_threads(), 0u);
  ASSERT_EQ(unsetenv("PTDP_NUM_THREADS"), 0);
  EXPECT_EQ(runtime::detail::env_intra_op_threads(), 0u);
}

TEST(ParallelFor, SetThreadsRoundTrips) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(2);
  EXPECT_EQ(runtime::intra_op_threads(), 2u);
  runtime::set_intra_op_threads(1);
  EXPECT_EQ(runtime::intra_op_threads(), 1u);
}

// ---- GEMM correctness at tile-unfriendly shapes -------------------------------

TEST(ParallelGemm, MatchesNaiveAtOddShapes) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  Rng rng(11);
  const std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> shapes = {
      {1, 1, 1},    {1, 17, 1},   {3, 5, 7},     {8, 16, 256},
      {17, 31, 13}, {65, 129, 257},  // just past the MR/NR/KC tile edges
      {100, 3, 300}, {129, 1023, 5}, {256, 16, 1},
  };
  for (const auto& [m, n, k] : shapes) {
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor ref = naive_matmul(a, b);
    EXPECT_TRUE(allclose(tensor::matmul(a, b), ref, 1e-4f, 1e-5f))
        << "nn " << m << "x" << n << "x" << k;
    EXPECT_TRUE(allclose(tensor::matmul_nt(a, b.transpose(0, 1)), ref, 1e-4f, 1e-5f))
        << "nt " << m << "x" << n << "x" << k;
    EXPECT_TRUE(allclose(tensor::matmul_tn(a.transpose(0, 1), b), ref, 1e-4f, 1e-5f))
        << "tn " << m << "x" << n << "x" << k;
  }
}

// The old TN kernel skipped zero A entries (a data-dependent branch); the
// packed kernel must handle fully-zero and sparse operands identically.
TEST(ParallelGemm, SparseOperandsNoSpecialCasing) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  Rng rng(12);
  Tensor a = Tensor::randn({37, 41}, rng);
  auto da = a.data();
  for (std::size_t i = 0; i < da.size(); i += 2) da[i] = 0.0f;  // 50% zeros
  Tensor b = Tensor::randn({37, 29}, rng);
  Tensor ref = naive_matmul(a.transpose(0, 1), b);
  EXPECT_TRUE(allclose(tensor::matmul_tn(a, b), ref, 1e-4f, 1e-5f));
  Tensor zeros({37, 41});
  EXPECT_EQ(tensor::max_all(tensor::matmul_tn(zeros, b)), 0.0f);
}

// ---- bitwise determinism across intra-op thread counts ------------------------

template <typename KernelFn>
void expect_bitwise_stable(KernelFn kernel) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(1);
  Tensor base = kernel();
  for (std::size_t threads : {2u, 8u}) {
    runtime::set_intra_op_threads(threads);
    Tensor again = kernel();
    EXPECT_EQ(tensor::max_abs_diff(base, again), 0.0f)
        << "kernel result changed at " << threads << " intra-op threads";
  }
}

TEST(ParallelDeterminism, GemmBitwiseStable) {
  Rng rng(21);
  Tensor a = Tensor::randn({513, 511}, rng);
  Tensor b = Tensor::randn({511, 259}, rng);
  expect_bitwise_stable([&] { return tensor::matmul(a, b); });
  expect_bitwise_stable([&] { return tensor::matmul_nt(a, b.transpose(0, 1)); });
  expect_bitwise_stable([&] { return tensor::matmul_tn(a.transpose(0, 1), b); });
}

TEST(ParallelDeterminism, BmmBitwiseStable) {
  Rng rng(22);
  Tensor a = Tensor::randn({6, 33, 65}, rng);
  Tensor b = Tensor::randn({6, 65, 17}, rng);
  expect_bitwise_stable([&] { return tensor::bmm(a, b); });
}

TEST(ParallelDeterminism, ElementwiseAndFusedBitwiseStable) {
  Rng rng(23);
  Tensor x = Tensor::randn({301, 257}, rng);
  Tensor bias = Tensor::randn({257}, rng);
  Tensor gamma = Tensor::uniform({257}, rng, 0.5f, 1.5f);
  Tensor beta = Tensor::randn({257}, rng);
  Tensor dy = Tensor::randn({301, 257}, rng);

  expect_bitwise_stable([&] { return tensor::gelu(x); });
  expect_bitwise_stable([&] { return tensor::add_bias(x, bias); });
  expect_bitwise_stable([&] { return tensor::bias_grad(dy); });
  expect_bitwise_stable([&] { return tensor::fused_bias_gelu(x, bias); });
  expect_bitwise_stable([&] { return tensor::softmax_lastdim(x); });
  expect_bitwise_stable([&] { return tensor::layernorm(x, gamma, beta).y; });

  auto ln = tensor::layernorm(x, gamma, beta);
  expect_bitwise_stable([&] {
    auto grads = tensor::layernorm_backward(dy, x, gamma, ln.mean, ln.rstd);
    // Fold all three grads into one tensor so one comparison covers them.
    Tensor packed({301 * 257 + 2 * 257});
    auto dst = packed.data();
    auto dx = grads.dx.data();
    std::copy(dx.begin(), dx.end(), dst.begin());
    auto dg = grads.dgamma.data();
    std::copy(dg.begin(), dg.end(), dst.begin() + dx.size());
    auto db = grads.dbeta.data();
    std::copy(db.begin(), db.end(), dst.begin() + dx.size() + dg.size());
    return packed;
  });

  expect_bitwise_stable([&] {
    Tensor dbias({257});
    Tensor dx = tensor::fused_bias_gelu_backward(dy, x, bias, dbias);
    Tensor packed({301 * 257 + 257});
    auto dst = packed.data();
    auto dxs = dx.data();
    std::copy(dxs.begin(), dxs.end(), dst.begin());
    auto dbs = dbias.data();
    std::copy(dbs.begin(), dbs.end(), dst.begin() + dxs.size());
    return packed;
  });
}

TEST(ParallelDeterminism, FusedSoftmaxBitwiseStable) {
  Rng rng(24);
  Tensor scores = Tensor::randn({10, 37, 37}, rng);
  expect_bitwise_stable(
      [&] { return tensor::fused_scale_causal_softmax(scores, 0.125f); });
  Tensor mask({37, 37});  // nothing masked
  expect_bitwise_stable(
      [&] { return tensor::fused_scale_mask_softmax(scores, mask, 0.125f); });
}

// ---- intra-op parallelism inside a dist gang ----------------------------------

// Every rank of a 4-rank gang runs parallel GEMMs while also hitting
// collective rendezvous points. The intra-op pool is shared process-wide, so
// this exercises exactly the oversubscription/deadlock scenario the separate
// pool exists to prevent.
TEST(ParallelGang, RanksDoParallelMatmulsWithoutDeadlock) {
  ThreadGuard guard;
  runtime::set_intra_op_threads(4);
  Rng rng(31);
  Tensor a = Tensor::randn({130, 140}, rng);
  Tensor b = Tensor::randn({140, 150}, rng);
  Tensor expected = tensor::matmul(a, b);

  constexpr int kRanks = 4;
  dist::World world(kRanks);
  std::vector<float> checks(kRanks, 0.0f);
  world.run([&](dist::Comm& comm) {
    for (int iter = 0; iter < 3; ++iter) {
      Tensor c = comm.rank() % 2 == 0 ? tensor::matmul(a, b)
                                      : tensor::matmul_nt(a, b.transpose(0, 1));
      EXPECT_EQ(tensor::max_abs_diff(c, expected), 0.0f);
      comm.barrier();
      // Mix a collective between compute bursts: the rank thread blocks in
      // rendezvous while other ranks may be fanning out intra-op work.
      const float sum = comm.all_reduce_scalar(tensor::sum_all(c));
      EXPECT_FLOAT_EQ(sum, static_cast<float>(kRanks) * tensor::sum_all(expected));
    }
    checks[static_cast<std::size_t>(comm.rank())] = 1.0f;
  });
  for (float v : checks) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(world.pending_messages(), 0u);
}

}  // namespace
}  // namespace ptdp
