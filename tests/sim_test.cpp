// Simulator tests: hardware-model sanity, cost-model monotonicities that
// the paper's figures rely on (throughput rises with microbatch size,
// falls when tensor parallelism crosses the node, scatter/gather shrinks
// stage transfers, ZeRO-3 degrades with GPU count at fixed batch), and
// end-to-end calibration against Table 1's band of 44–52% of peak.

#include <gtest/gtest.h>

#include "ptdp/sim/simulator.hpp"
#include "ptdp/sim/zero_model.hpp"

namespace ptdp::sim {
namespace {

using core::ParallelConfig;
using model::GptConfig;

GptConfig gpt(std::int64_t l, std::int64_t h, std::int64_t a) {
  GptConfig c;
  c.num_layers = l;
  c.hidden = h;
  c.heads = a;
  c.vocab = 51200;
  c.seq = 2048;
  return c;
}

TEST(Hardware, GemmRooflineBasics) {
  const ClusterSpec hw = ClusterSpec::selene();
  // A big square GEMM approaches the efficiency cap.
  const double m = 4096, k = 4096, n = 4096;
  const double t = gemm_time(hw, m, k, n);
  const double achieved = 2.0 * m * k * n / t;
  EXPECT_GT(achieved, 0.5 * hw.peak_flops);
  EXPECT_LT(achieved, hw.gemm_efficiency_cap * hw.peak_flops * 1.01);
  // A skinny GEMM is memory-bound and far from peak.
  const double skinny = gemm_time(hw, 1, 4096, 4096);
  EXPECT_GT(2.0 * 4096 * 4096 / skinny, 0.0);
  EXPECT_LT(2.0 * 4096 * 4096 / skinny, 0.05 * hw.peak_flops);
}

TEST(Hardware, CollectiveTimesScaleWithRingFactor) {
  const ClusterSpec hw = ClusterSpec::selene();
  const double bytes = 1e9;
  const double t2 = ring_all_reduce_time(hw, bytes, 2, true);
  const double t8 = ring_all_reduce_time(hw, bytes, 8, true);
  // Ring volume grows as 2(g-1)/g: 1.0 vs 1.75.
  EXPECT_NEAR(t8 / t2, 1.75, 0.05);
  EXPECT_EQ(ring_all_reduce_time(hw, bytes, 1, true), 0.0);
  // Cross-node collectives are much slower than NVLink.
  EXPECT_GT(ring_all_reduce_time(hw, bytes, 8, false),
            5.0 * ring_all_reduce_time(hw, bytes, 8, true));
}

TEST(CostModel, ThroughputRisesWithMicrobatchSize) {
  // Fig. 7: per-GPU throughput increases up to ~1.3x with larger b.
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(4, 4096, 128);  // the Fig. 7 billion-parameter model
  const double f1 = single_gpu_flops(hw, c, 1);
  const double f8 = single_gpu_flops(hw, c, 8);
  EXPECT_GT(f8, f1 * 1.1);
  EXPECT_LT(f8, f1 * 2.0);
}

TEST(CostModel, FusionSpeedsUpForward) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(96, 12288, 96);  // GPT-3 175B
  ParallelConfig cfg;
  cfg.t = 8;
  cfg.b = 1;
  const ChunkCost fused = chunk_cost(hw, c, cfg, 12, false, false, {true});
  const ChunkCost unfused = chunk_cost(hw, c, cfg, 12, false, false, {false});
  EXPECT_LT(fused.fwd_compute, unfused.fwd_compute);
  // §5.8 reports 19% end-to-end for this model; the forward-only gap is
  // larger than 5% and below 60%.
  const double gain = unfused.fwd_compute / fused.fwd_compute;
  EXPECT_GT(gain, 1.05);
  EXPECT_LT(gain, 1.6);
}

TEST(CostModel, TensorCommGrowsWithWidth) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(24, 8192, 64);
  ParallelConfig cfg;
  cfg.b = 2;
  cfg.t = 2;
  const double c2 = chunk_cost(hw, c, cfg, 4, false, false).fwd_tp_comm;
  cfg.t = 8;
  const double c8 = chunk_cost(hw, c, cfg, 4, false, false).fwd_tp_comm;
  EXPECT_GT(c8, c2);
}

TEST(Simulator, Table1CalibrationBand) {
  // Smallest and largest Table 1 rows must land in the paper's band of
  // ~40–56% of peak, with the large model more efficient (superlinear
  // scaling claim of §5.1).
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig small = gpt(24, 2304, 24);
  ParallelConfig scfg;
  scfg.d = 32;
  scfg.b = 8;  // the paper tunes b per model; b=8 is optimal here (§3.4)
  const auto sres = simulate_iteration(hw, small, scfg, 512);
  EXPECT_GT(sres.percent_of_peak, 0.38);
  EXPECT_LT(sres.percent_of_peak, 0.50);

  GptConfig big = gpt(128, 25600, 160);
  ParallelConfig bcfg;
  bcfg.t = 8;
  bcfg.p = 64;
  bcfg.d = 6;
  bcfg.b = 1;
  bcfg.v = 2;
  bcfg.schedule = pipeline::ScheduleType::kInterleaved;
  bcfg.scatter_gather = true;
  const auto bres = simulate_iteration(hw, big, bcfg, 3072);
  EXPECT_GT(bres.percent_of_peak, 0.46);
  EXPECT_LT(bres.percent_of_peak, 0.60);
  EXPECT_GT(bres.percent_of_peak, sres.percent_of_peak);
  EXPECT_FALSE(bres.oom);
  // Aggregate throughput for the 1T model ~ 502 PFLOP/s (±20%).
  EXPECT_NEAR(bres.aggregate_flops / 1e15, 502.0, 110.0);
}

TEST(Simulator, MeasuredBubbleTracksAnalyticFormula) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(32, 8192, 64);
  ParallelConfig cfg;
  cfg.t = 8;
  cfg.p = 4;
  cfg.b = 1;
  for (std::int64_t B : {8, 16, 64}) {
    const auto res = simulate_iteration(hw, c, cfg, B);
    const double analytic = core::bubble_fraction(cfg, B);
    EXPECT_NEAR(res.bubble_fraction, analytic, 0.25 * analytic + 0.02)
        << "B=" << B;
  }
}

TEST(Simulator, InterleavingShrinksBubbleButAddsComm) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(32, 8192, 64);
  ParallelConfig flat;
  flat.t = 8;
  flat.p = 4;
  flat.b = 1;
  ParallelConfig inter = flat;
  inter.v = 2;
  inter.schedule = pipeline::ScheduleType::kInterleaved;
  inter.scatter_gather = true;
  const auto rf = simulate_iteration(hw, c, flat, 16);
  const auto ri = simulate_iteration(hw, c, inter, 16);
  EXPECT_LT(ri.bubble_fraction, rf.bubble_fraction);
  EXPECT_GT(ri.per_gpu_flops, rf.per_gpu_flops);  // small batch: bubble wins
}

TEST(Simulator, ScatterGatherShrinksStageTransfer) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(96, 12288, 96);
  ParallelConfig cfg;
  cfg.t = 8;
  cfg.p = 12;
  cfg.b = 1;
  const double plain = stage_transfer_time(hw, c, cfg);
  cfg.scatter_gather = true;
  const double sg = stage_transfer_time(hw, c, cfg);
  EXPECT_LT(sg, plain);
  // 1/t less IB traffic and no bidirectional contention, but the NVLink
  // gather is not free: the win is large yet bounded.
  EXPECT_GT(sg, plain / 16.0);
}

TEST(Simulator, CrossNodeTensorParallelismHurts) {
  // Fig. 13's core result: (t=16, p=2) underperforms (t=8, p=4) on the
  // same 32 GPUs because all-reduces leave the node.
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(32, 20480, 128);
  ParallelConfig inside;
  inside.t = 8;
  inside.p = 4;
  inside.b = 1;
  ParallelConfig across;
  across.t = 16;
  across.p = 2;
  across.b = 1;
  const auto ri = simulate_iteration(hw, c, inside, 32, {true, false});
  const auto ra = simulate_iteration(hw, c, across, 32, {true, false});
  EXPECT_GT(ri.per_gpu_flops, ra.per_gpu_flops);
}

TEST(Simulator, RecomputationCostsComputeButSavesMemory) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(80, 12288, 96);  // Fig. 17's 145B model
  ParallelConfig with;
  with.t = 8;
  with.p = 16;
  with.b = 1;
  with.recompute = true;
  ParallelConfig without = with;
  without.recompute = false;
  // Small batch: recompute is slower (extra forward), uses less memory.
  const auto rw = simulate_iteration(hw, c, with, 16);
  const auto rn = simulate_iteration(hw, c, without, 16);
  EXPECT_LT(rn.iteration_seconds, rw.iteration_seconds);
  EXPECT_LT(rw.memory_bytes, rn.memory_bytes);
  // Large batch: only recompute fits (Fig. 17's OOM cliff).
  const auto bw = simulate_iteration(hw, c, with, 128);
  const auto bn = simulate_iteration(hw, c, without, 128);
  EXPECT_FALSE(bw.oom);
  EXPECT_TRUE(bn.oom);
}

TEST(Simulator, ThroughputModelAdapterRanksByIterationTime) {
  const ClusterSpec hw = ClusterSpec::selene();
  auto tm = make_throughput_model(hw);
  GptConfig c = gpt(32, 3840, 32);  // Fig. 14/15's 5.9B model
  ParallelConfig good;  // d-heavy
  good.p = 2;
  good.d = 32;
  good.b = 1;
  ParallelConfig bad;  // p-heavy
  bad.p = 32;
  bad.d = 2;
  bad.b = 1;
  EXPECT_LT(tm(c, good, 512), tm(c, bad, 512));
}

TEST(ZeroModel, ThroughputFallsWithMoreGpusAtFixedBatch) {
  // Fig. 10 / Table 2: doubling GPUs halves ZeRO-3's per-GPU throughput.
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(96, 12288, 96);
  const auto z384 = simulate_zero3_iteration(hw, c, 1536, 384, 4);
  const auto z768 = simulate_zero3_iteration(hw, c, 1536, 768, 2);
  const auto z1536 = simulate_zero3_iteration(hw, c, 1536, 1536, 1);
  EXPECT_GT(z384.per_gpu_flops, z768.per_gpu_flops * 1.3);
  EXPECT_GT(z768.per_gpu_flops, z1536.per_gpu_flops * 1.3);
  // Calibration: 384-GPU row near the paper's 144 TFLOP/s (±25%).
  EXPECT_NEAR(z384.per_gpu_flops / 1e12, 144.0, 36.0);
}

TEST(ZeroModel, PtdpOutperformsZero3AtScale) {
  // §5.2's headline: at the doubled-GPU points PTD-P wins by ~70%.
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(96, 12288, 96);
  ParallelConfig ptdp;
  ptdp.t = 8;
  ptdp.p = 12;
  ptdp.d = 16;  // 1536 GPUs, 96-way model parallel
  ptdp.b = 1;
  const auto p1536 = simulate_iteration(hw, c, ptdp, 1536);
  const auto z1536 = simulate_zero3_iteration(hw, c, 1536, 1536, 1);
  EXPECT_GT(p1536.per_gpu_flops, 1.5 * z1536.per_gpu_flops);
}

TEST(ZeroModel, RejectsNonDivisibleBatch) {
  const ClusterSpec hw = ClusterSpec::selene();
  GptConfig c = gpt(96, 12288, 96);
  EXPECT_THROW(simulate_zero3_iteration(hw, c, 1000, 384, 4), CheckError);
}

TEST(Simulator, PlannerWithSimModelPicksSaneConfig) {
  core::PlannerInput input;
  input.model = gpt(48, 8192, 64);
  input.n_gpus = 512;
  input.global_batch = 1536;
  const auto plan =
      core::plan_configuration(input, make_throughput_model(ClusterSpec::selene()));
  EXPECT_LE(plan.best.config.t, 8);
  EXPECT_GE(plan.best.config.d, 4);
  EXPECT_FALSE(plan.best.memory.total() > input.gpu_memory_bytes);
}

}  // namespace
}  // namespace ptdp::sim
