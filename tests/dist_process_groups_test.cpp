// Tests that ProcessGroups reproduces Megatron-LM's grid layout: tensor
// groups are contiguous ranks, data groups stride by t within a pipeline
// block, pipeline groups stride by t*d, and the embedding group ties the
// first and last stages.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "ptdp/dist/process_groups.hpp"
#include "ptdp/dist/world.hpp"

namespace ptdp::dist {
namespace {

using Grid = std::tuple<int, int, int>;  // (p, t, d)

class ProcessGroupsTest : public ::testing::TestWithParam<Grid> {};

TEST_P(ProcessGroupsTest, CoordinateMappingRoundTrips) {
  const auto [p, t, d] = GetParam();
  for (int pi = 0; pi < p; ++pi) {
    for (int di = 0; di < d; ++di) {
      for (int ti = 0; ti < t; ++ti) {
        const int rank = ProcessGroups::world_rank_of(pi, di, ti, t, d);
        const GridCoord c = ProcessGroups::coord_of(rank, t, d);
        EXPECT_EQ(c.pipeline, pi);
        EXPECT_EQ(c.data, di);
        EXPECT_EQ(c.tensor, ti);
      }
    }
  }
}

TEST_P(ProcessGroupsTest, GroupShapesAndMembership) {
  const auto [p, t, d] = GetParam();
  World world(p * t * d);
  world.run([p, t, d](Comm& comm) {
    ProcessGroups groups(comm, p, t, d);
    const GridCoord c = groups.coord();

    EXPECT_EQ(groups.tensor().size(), t);
    EXPECT_EQ(groups.pipeline().size(), p);
    EXPECT_EQ(groups.data().size(), d);
    EXPECT_EQ(groups.tensor().rank(), c.tensor);
    EXPECT_EQ(groups.pipeline().rank(), c.pipeline);
    EXPECT_EQ(groups.data().rank(), c.data);

    // Tensor group holds contiguous world ranks (one NVLink domain).
    for (int r = 0; r < t; ++r) {
      EXPECT_EQ(groups.tensor().world_rank_of(r),
                ProcessGroups::world_rank_of(c.pipeline, c.data, r, t, d));
    }
    // Pipeline group strides by t*d.
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(groups.pipeline().world_rank_of(r),
                ProcessGroups::world_rank_of(r, c.data, c.tensor, t, d));
    }
    // Data group strides by t within the pipeline block.
    for (int r = 0; r < d; ++r) {
      EXPECT_EQ(groups.data().world_rank_of(r),
                ProcessGroups::world_rank_of(c.pipeline, r, c.tensor, t, d));
    }
  });
}

TEST_P(ProcessGroupsTest, GroupCollectivesAreIsolatedPerGroup) {
  const auto [p, t, d] = GetParam();
  World world(p * t * d);
  world.run([p, t, d](Comm& comm) {
    ProcessGroups groups(comm, p, t, d);
    // Sum of tensor ranks within a tensor group = t*(t-1)/2, etc.
    const float tsum =
        groups.tensor().all_reduce_scalar(static_cast<float>(groups.coord().tensor));
    EXPECT_EQ(tsum, static_cast<float>(t * (t - 1) / 2));
    const float psum = groups.pipeline().all_reduce_scalar(
        static_cast<float>(groups.coord().pipeline));
    EXPECT_EQ(psum, static_cast<float>(p * (p - 1) / 2));
    const float dsum =
        groups.data().all_reduce_scalar(static_cast<float>(groups.coord().data));
    EXPECT_EQ(dsum, static_cast<float>(d * (d - 1) / 2));
  });
}

TEST_P(ProcessGroupsTest, EmbeddingGroupTiesFirstAndLastStage) {
  const auto [p, t, d] = GetParam();
  World world(p * t * d);
  world.run([p, t, d](Comm& comm) {
    ProcessGroups groups(comm, p, t, d);
    if (p == 1) {
      EXPECT_EQ(groups.embedding().size(), 1);
      EXPECT_TRUE(groups.in_embedding_group());
      return;
    }
    if (groups.is_first_stage() || groups.is_last_stage()) {
      EXPECT_EQ(groups.embedding().size(), 2);
      // Partner shares (tensor, data) coords but sits at the other end.
      const int other = groups.embedding().world_rank_of(1 - groups.embedding().rank());
      const GridCoord oc = ProcessGroups::coord_of(other, t, d);
      EXPECT_EQ(oc.tensor, groups.coord().tensor);
      EXPECT_EQ(oc.data, groups.coord().data);
      EXPECT_TRUE(oc.pipeline == 0 || oc.pipeline == p - 1);
      EXPECT_NE(oc.pipeline, groups.coord().pipeline);
    } else {
      EXPECT_EQ(groups.embedding().size(), 1);
      EXPECT_FALSE(groups.in_embedding_group());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ProcessGroupsTest,
    ::testing::Values(Grid{1, 1, 1}, Grid{2, 1, 1}, Grid{1, 2, 1}, Grid{1, 1, 2},
                      Grid{2, 2, 2}, Grid{4, 2, 1}, Grid{2, 4, 1}, Grid{3, 2, 2},
                      Grid{2, 2, 3}, Grid{4, 1, 2}));

TEST(ProcessGroups, RejectsMismatchedWorldSize) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) { ProcessGroups groups(comm, 3, 1, 1); }),
               RankFailure);
}

TEST(ProcessGroups, FirstAndLastStageFlags) {
  World world(6);
  world.run([](Comm& comm) {
    ProcessGroups groups(comm, /*p=*/3, /*t=*/2, /*d=*/1);
    EXPECT_EQ(groups.is_first_stage(), groups.coord().pipeline == 0);
    EXPECT_EQ(groups.is_last_stage(), groups.coord().pipeline == 2);
  });
}

}  // namespace
}  // namespace ptdp::dist
