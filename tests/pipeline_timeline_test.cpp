// Timeline properties: the per-rank TimedOps returned by simulate_timeline
// must be internally consistent — non-overlapping on a rank, ordered by
// start, dependency-respecting across ranks, and consistent with
// simulate_makespan. Property-swept over schedules.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "ptdp/pipeline/schedule.hpp"

namespace ptdp::pipeline {
namespace {

using Params = std::tuple<ScheduleType, int, int, int>;  // (type, p, m, v)

class TimelineTest : public ::testing::TestWithParam<Params> {
 protected:
  ScheduleParams sp() const {
    const auto [type, p, m, v] = GetParam();
    return ScheduleParams{type, p, m, v};
  }
};

TEST_P(TimelineTest, RankOpsAreSequentialAndNonOverlapping) {
  const auto timeline = simulate_timeline(sp(), 1.0, 2.0);
  ASSERT_EQ(timeline.size(), static_cast<std::size_t>(sp().p));
  for (const auto& rank_ops : timeline) {
    double prev_end = 0.0;
    for (const TimedOp& t : rank_ops) {
      EXPECT_GE(t.start, prev_end - 1e-12);
      EXPECT_GT(t.end, t.start);
      prev_end = t.end;
    }
  }
}

TEST_P(TimelineTest, DurationsMatchOpKinds) {
  const double tf = 1.0, tb = 2.5;
  const auto timeline = simulate_timeline(sp(), tf, tb);
  for (const auto& rank_ops : timeline) {
    for (const TimedOp& t : rank_ops) {
      const double expect = t.op.kind == Op::Kind::kForward ? tf : tb;
      EXPECT_NEAR(t.end - t.start, expect, 1e-12);
    }
  }
}

TEST_P(TimelineTest, CrossRankDependenciesRespected) {
  const auto params = sp();
  const auto timeline = simulate_timeline(params, 1.0, 2.0);
  const int P = num_virtual_stages(params);
  // Index completion times by (kind, mb, virtual stage).
  std::map<std::tuple<int, int, int>, double> done;
  std::map<std::tuple<int, int, int>, double> started;
  for (int r = 0; r < params.p; ++r) {
    for (const TimedOp& t : timeline[static_cast<std::size_t>(r)]) {
      const int vs = virtual_stage(r, t.op.chunk, params.p);
      const int kind = t.op.kind == Op::Kind::kForward ? 0 : 1;
      done[{kind, t.op.microbatch, vs}] = t.end;
      started[{kind, t.op.microbatch, vs}] = t.start;
    }
  }
  for (const auto& [key, start] : started) {
    const auto [kind, mb, vs] = key;
    if (kind == 0 && vs > 0) {
      EXPECT_GE(start, done.at({0, mb, vs - 1}) - 1e-12)
          << "fwd mb" << mb << " vs" << vs;
    }
    if (kind == 1) {
      if (vs == P - 1) {
        EXPECT_GE(start, done.at({0, mb, vs}) - 1e-12);
      } else {
        EXPECT_GE(start, done.at({1, mb, vs + 1}) - 1e-12)
            << "bwd mb" << mb << " vs" << vs;
      }
    }
  }
}

TEST_P(TimelineTest, MakespanAgreesWithTimeline) {
  const auto params = sp();
  const auto timeline = simulate_timeline(params, 1.0, 2.0);
  double max_end = 0.0;
  for (const auto& rank_ops : timeline) {
    for (const TimedOp& t : rank_ops) max_end = std::max(max_end, t.end);
  }
  EXPECT_DOUBLE_EQ(max_end, simulate_makespan(params, 1.0, 2.0));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, TimelineTest,
    ::testing::Values(Params{ScheduleType::kGPipe, 4, 8, 1},
                      Params{ScheduleType::kOneFOneB, 4, 8, 1},
                      Params{ScheduleType::kOneFOneB, 2, 3, 1},
                      Params{ScheduleType::kOneFOneB, 8, 16, 1},
                      Params{ScheduleType::kInterleaved, 4, 8, 2},
                      Params{ScheduleType::kInterleaved, 2, 6, 3},
                      Params{ScheduleType::kGPipe, 1, 5, 1}));

TEST(Timeline, FirstRankStartsAtZero) {
  const auto timeline =
      simulate_timeline({ScheduleType::kOneFOneB, 4, 8, 1}, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(timeline[0].front().start, 0.0);
  // Rank r's first forward starts after r upstream forwards.
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(timeline[static_cast<std::size_t>(r)].front().start,
                     static_cast<double>(r));
  }
}

}  // namespace
}  // namespace ptdp::pipeline
