// Timeline-analyzer tests (DESIGN.md §11). Two layers of evidence:
//
//  1. Synthetic traces built straight from build_rank_schedule with uniform
//     per-op durations: the dependency replay must reproduce the paper's
//     bubble fraction (p−1)/(v·m) *exactly* and agree with
//     pipeline::simulate_makespan — the analyzer is the simulator fed with
//     measured durations, so on clean input they must coincide.
//
//  2. Real engine runs (p = 4) traced in kFull mode: the measured (replayed)
//     bubble must land within 15% of the analytic value for v ∈ {1,2} ×
//     m ∈ {4,8}, and traced per-rank p2p byte counts must match the §4.1
//     closed form exactly (fp32 runtime = 2× the paper's fp16 figures).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "ptdp/core/analytics.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/timeline.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/pipeline/schedule.hpp"

namespace ptdp::obs {
namespace {

using pipeline::ScheduleParams;
using pipeline::ScheduleType;

class ObsTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().set_thread_capacity(std::size_t{1} << 15);
    MetricsRegistry::instance().reset();
    Tracer::instance().set_mode(TraceMode::kOff);
    bind_rank(-1);
  }
  void TearDown() override {
    Tracer::instance().set_mode(TraceMode::kOff);
    Tracer::instance().reset();
    MetricsRegistry::instance().reset();
    bind_rank(-1);
  }
};

/// Builds the trace an ideal run of `sp` would produce: every rank's ops in
/// schedule order, per-op duration unit_of_rank(rank) for both wall and CPU.
std::vector<TraceEvent> synthetic_trace(
    const ScheduleParams& sp, const std::function<std::int64_t(int)>& unit_of_rank,
    std::int64_t batch = 0) {
  std::vector<TraceEvent> events;
  for (int r = 0; r < sp.p; ++r) {
    const std::vector<pipeline::Op> ops = pipeline::build_rank_schedule(sp, r);
    std::int64_t idx = 0;
    for (const pipeline::Op& op : ops) {
      TraceEvent ev;
      ev.name = op.kind == pipeline::Op::Kind::kForward ? "fwd" : "bwd";
      ev.cat = Cat::kCompute;
      ev.rank = r;
      // Program order per rank is all the replay needs from timestamps.
      ev.ts_ns = batch * 1'000'000 + idx++;
      ev.wall_ns = unit_of_rank(r);
      ev.cpu_ns = unit_of_rank(r);
      ev.args[0] = {"mb", op.microbatch};
      ev.args[1] = {"vs", pipeline::virtual_stage(r, op.chunk, sp.p)};
      ev.args[2] = {"stage", r};
      ev.args[3] = {"pipe", 0};
      ev.args[4] = {"batch", batch};
      events.push_back(ev);
    }
  }
  return events;
}

TEST_F(ObsTimelineTest, ReplayMatchesAnalyticBubbleExactly) {
  constexpr std::int64_t kUnit = 1000;
  const ScheduleParams grids[] = {
      {ScheduleType::kGPipe, 4, 4, 1},       {ScheduleType::kGPipe, 4, 8, 1},
      {ScheduleType::kOneFOneB, 4, 4, 1},    {ScheduleType::kOneFOneB, 4, 8, 1},
      {ScheduleType::kInterleaved, 4, 4, 2}, {ScheduleType::kInterleaved, 4, 8, 2},
  };
  for (const ScheduleParams& sp : grids) {
    SCOPED_TRACE(::testing::Message()
                 << pipeline::schedule_name(sp.type) << " p=" << sp.p
                 << " m=" << sp.m << " v=" << sp.v);
    const TimelineReport report =
        analyze_events(synthetic_trace(sp, [&](int) { return kUnit; }));
    ASSERT_EQ(report.batches.size(), 1u);
    const BatchTimeline& b = report.batches.front();
    EXPECT_EQ(b.p, sp.p);
    EXPECT_EQ(b.m, sp.m);
    EXPECT_EQ(b.num_virtual_stages, sp.p * sp.v);
    // Exact agreement with both the closed form and the logical simulator.
    EXPECT_NEAR(b.bubble_fraction, pipeline::analytic_bubble_fraction(sp), 1e-9);
    EXPECT_NEAR(report.bubble_fraction, report.analytic_bubble_fraction, 1e-9);
    EXPECT_NEAR(b.makespan_ns,
                pipeline::simulate_makespan(sp, static_cast<double>(kUnit),
                                            static_cast<double>(kUnit)),
                1e-6);
    // The binding-constraint walkback is gapless, so it sums to the makespan.
    EXPECT_FALSE(b.critical_path.empty());
    EXPECT_NEAR(b.critical_path_ns, b.makespan_ns, 1e-6);
  }
}

TEST_F(ObsTimelineTest, BatchesSegmentByPipeAndBatchArgs) {
  const ScheduleParams sp{ScheduleType::kOneFOneB, 4, 4, 1};
  std::vector<TraceEvent> events;
  for (std::int64_t batch = 0; batch < 3; ++batch) {
    const auto one = synthetic_trace(sp, [](int) { return std::int64_t{500}; }, batch);
    events.insert(events.end(), one.begin(), one.end());
  }
  const TimelineReport report = analyze_events(events);
  ASSERT_EQ(report.batches.size(), 3u);
  for (const BatchTimeline& b : report.batches) {
    EXPECT_NEAR(b.bubble_fraction, pipeline::analytic_bubble_fraction(sp), 1e-9);
  }
  ASSERT_EQ(report.ranks.size(), 4u);
  for (const RankTimeline& rt : report.ranks) {
    EXPECT_EQ(rt.ops, 3 * 2 * sp.m);  // 3 batches × (fwd+bwd) × m
  }
  EXPECT_TRUE(report.stragglers.empty());
}

TEST_F(ObsTimelineTest, FlagsStragglerRanks) {
  const ScheduleParams sp{ScheduleType::kOneFOneB, 4, 8, 1};
  const TimelineReport report = analyze_events(synthetic_trace(
      sp, [](int rank) { return rank == 2 ? std::int64_t{3000} : std::int64_t{1000}; }));
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers.front(), 2);
  // The straggler stretches the replayed makespan beyond the analytic bubble.
  EXPECT_GT(report.bubble_fraction, pipeline::analytic_bubble_fraction(sp));
}

// ---- real engine runs -------------------------------------------------------------

// Larger than the correctness-test config on purpose: per-op compute must
// dominate the tracer/allocator overheads or the measured bubble drifts
// above the analytic value (the ops are only tens of microseconds).
model::GptConfig engine_config() {
  model::GptConfig c;
  c.num_layers = 8;
  c.hidden = 128;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 64;
  c.dropout = 0.0f;
  c.seed = 2024;
  return c;
}

/// Runs `steps` training steps on a (p=4, t=1, d=1) engine with tracing in
/// kFull mode and returns the timeline report.
TimelineReport traced_engine_run(int v, std::int64_t m, int steps) {
  Tracer::instance().reset();
  Tracer::instance().set_mode(TraceMode::kFull);
  const model::GptConfig c = engine_config();
  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = 4;
    options.parallel.t = 1;
    options.parallel.d = 1;
    options.parallel.v = v;
    options.parallel.b = 1;
    options.parallel.schedule =
        v > 1 ? ScheduleType::kInterleaved : ScheduleType::kOneFOneB;
    options.parallel.recompute = false;
    options.parallel.scatter_gather = false;
    options.global_batch = m;  // b = 1, d = 1 => m microbatches
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, m, 1, 1, engine.groups().coord().data,
                               /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
  });
  const TimelineReport report = analyze(Tracer::instance());
  Tracer::instance().set_mode(TraceMode::kOff);
  return report;
}

TEST_F(ObsTimelineTest, MeasuredBubbleWithin15PercentOfAnalytic) {
  const int steps = 6;
  const struct { int v; std::int64_t m; } grid[] = {{1, 4}, {1, 8}, {2, 4}, {2, 8}};
  for (const auto& g : grid) {
    SCOPED_TRACE(::testing::Message() << "v=" << g.v << " m=" << g.m);
    const TimelineReport report = traced_engine_run(g.v, g.m, steps);
    ASSERT_EQ(report.batches.size(), static_cast<std::size_t>(steps));
    const double analytic =
        3.0 / (static_cast<double>(g.v) * static_cast<double>(g.m));
    EXPECT_NEAR(report.analytic_bubble_fraction, analytic, 1e-12);
    // Per-op timing noise on an oversubscribed CPU host only ever *inflates*
    // the replayed makespan, so the least-noisy batch is the best estimator
    // of the true schedule bubble: that one must land within 15% of the
    // paper's closed form. The median (the report's headline) gets a looser
    // noise allowance.
    double best = report.batches.front().bubble_fraction;
    for (const BatchTimeline& b : report.batches) {
      best = std::min(best, b.bubble_fraction);
    }
    EXPECT_LE(std::abs(best - analytic), 0.15 * analytic)
        << "best batch " << best << " vs analytic " << analytic;
    EXPECT_LE(std::abs(report.bubble_fraction - analytic), 0.5 * analytic)
        << "median " << report.bubble_fraction << " vs analytic " << analytic;
  }
}

TEST_F(ObsTimelineTest, TracedP2pBytesMatchSection41ClosedForm) {
  const int steps = 3, p = 4, v = 2;
  const std::int64_t m = 8;
  const model::GptConfig c = engine_config();
  const TimelineReport report = traced_engine_run(v, m, steps);
  ASSERT_EQ(report.ranks.size(), 4u);

  // Runtime activations are fp32: each boundary message is b·s·h·4 bytes.
  const std::uint64_t msg_bytes = static_cast<std::uint64_t>(1 * c.seq * c.hidden) * 4;
  for (const RankTimeline& rt : report.ranks) {
    const int r = rt.rank;
    ASSERT_GE(r, 0);
    ASSERT_LT(r, p);
    // Interleaved sends at every chunk boundary except the global first
    // (backward) and global last (forward) virtual stages.
    const std::uint64_t msgs_per_batch = static_cast<std::uint64_t>(m) *
        static_cast<std::uint64_t>(2 * v - (r == 0 ? 1 : 0) - (r == p - 1 ? 1 : 0));
    EXPECT_EQ(rt.p2p_messages, msgs_per_batch * steps) << "rank " << r;
    EXPECT_EQ(rt.p2p_bytes_sent, msgs_per_batch * msg_bytes * steps) << "rank " << r;
  }

  // Cross-check interior ranks against the analytics closed form (§4.1):
  // analytics counts fp16 bytes per direction, the runtime moves fp32 both
  // directions, so traced = 4 × analytic per batch.
  core::ParallelConfig cfg;
  cfg.p = p;
  cfg.t = 1;
  cfg.d = 1;
  cfg.v = v;
  cfg.b = 1;
  cfg.scatter_gather = false;
  const double analytic_per_batch = core::pipeline_p2p_bytes_per_batch(c, cfg, m);
  for (const RankTimeline& rt : report.ranks) {
    if (rt.rank == 0 || rt.rank == p - 1) continue;
    EXPECT_DOUBLE_EQ(static_cast<double>(rt.p2p_bytes_sent),
                     4.0 * analytic_per_batch * steps);
  }
}

}  // namespace
}  // namespace ptdp::obs
