// ptdp::quant tests (DESIGN.md §17):
//   1. Pack/unpack round-trip error stays within the per-group bound
//      (max - min) / levels for every group size, including tail panels
//      (n not a multiple of kQuantPanel), degenerate constant groups, and
//      the lossless group_size = 1 case.
//   2. quant::matmul multiplies by exactly dequantize(w) and is bitwise
//      deterministic across thread counts.
//   3. TP-shard-aligned grouping: shard_rows / slice_cols of a full-weight
//      quantization are bitwise what quantizing the f32 shard directly
//      produces, so t = 1 and t = 2 stay rank-deterministic.
//   4. Wire format: serialize/deserialize round-trips bitwise, broadcast
//      delivers the root's weight to every rank at < 1/3 the f32 bytes.
//   5. Dtype-tagged checkpoints: round-trip bitwise, wrong-kind load is
//      rejected.
//   6. A quantized serving engine has zero steady-state pool growth, and
//      2-way tensor-parallel quantized decode matches the serial quantized
//      engine token-for-token.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/graph/passes.hpp"
#include "ptdp/quant/quant.hpp"
#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/serve/loadgen.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::quant {
namespace {

using tensor::QuantKind;
using tensor::Tensor;

// Restores the ambient intra-op thread count on scope exit.
struct ThreadGuard {
  std::size_t saved = runtime::intra_op_threads();
  ~ThreadGuard() { runtime::set_intra_op_threads(saved); }
};

Tensor random_weight(std::int64_t k, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({k, n}, rng);
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  const auto da = a.data();
  const auto db = b.data();
  if (da.size() != db.size()) return false;
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (std::memcmp(&da[i], &db[i], sizeof(float)) != 0) return false;
  }
  return true;
}

bool quant_bitwise_equal(const QuantizedWeight& a, const QuantizedWeight& b) {
  if (a.kind != b.kind || a.rows != b.rows || a.cols != b.cols ||
      a.group_size != b.group_size) {
    return false;
  }
  const auto sb = serialize(a);
  const auto sc = serialize(b);
  return sb == sc;
}

// ---- 1. round-trip error bounds --------------------------------------------

TEST(QuantRoundTrip, ErrorWithinPerGroupBound) {
  // n = 40 is 2 full panels + an 8-column tail panel.
  const Tensor w = random_weight(128, 40, 3);
  const auto dw = w.data();
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    for (const std::int64_t group : {16LL, 32LL, 128LL}) {
      SCOPED_TRACE(std::string(tensor::quant_kind_name(kind)) + " group " +
                   std::to_string(group));
      const QuantizedWeight q = quantize(w, kind, group);
      const Tensor deq = dequantize(q);
      const auto dd = deq.data();
      const double levels =
          static_cast<double>(tensor::quant_levels(kind));
      for (std::int64_t j = 0; j < 40; ++j) {
        for (std::int64_t g0 = 0; g0 < 128; g0 += group) {
          float mn = dw[static_cast<std::size_t>(g0 * 40 + j)];
          float mx = mn;
          for (std::int64_t i = g0; i < g0 + group; ++i) {
            const float v = dw[static_cast<std::size_t>(i * 40 + j)];
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          const double bound = static_cast<double>(mx - mn) / levels + 1e-6;
          for (std::int64_t i = g0; i < g0 + group; ++i) {
            const std::size_t at = static_cast<std::size_t>(i * 40 + j);
            ASSERT_NEAR(dd[at], dw[at], bound) << "row " << i << " col " << j;
          }
        }
      }
    }
  }
}

TEST(QuantRoundTrip, GroupOneIsLossless) {
  const Tensor w = random_weight(32, 24, 5);
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    const QuantizedWeight q = quantize(w, kind, 1);
    EXPECT_TRUE(bitwise_equal(dequantize(q), w))
        << tensor::quant_kind_name(kind);
  }
}

TEST(QuantRoundTrip, DegenerateGroupsAreExact) {
  // Constant columns (including all-zero) round-trip exactly at any group.
  std::vector<float> data(static_cast<std::size_t>(64 * 20));
  for (std::int64_t i = 0; i < 64; ++i) {
    for (std::int64_t j = 0; j < 20; ++j) {
      data[static_cast<std::size_t>(i * 20 + j)] =
          j == 0 ? 0.0f : static_cast<float>(j) * 0.25f;
    }
  }
  const Tensor w = Tensor::from_vector({64, 20}, data);
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    const QuantizedWeight q = quantize(w, kind, 16);
    EXPECT_TRUE(bitwise_equal(dequantize(q), w))
        << tensor::quant_kind_name(kind);
  }
}

TEST(QuantRoundTrip, EffectiveGroupSizeIsLargestDivisor) {
  EXPECT_EQ(effective_group_size(64, 128), 64);
  EXPECT_EQ(effective_group_size(64, 48), 48);
  EXPECT_EQ(effective_group_size(7, 128), 4);
  EXPECT_EQ(effective_group_size(1, 9), 1);
}

// ---- 2. quantized GEMM -----------------------------------------------------

TEST(QuantMatmul, MatchesDequantizedReference) {
  Rng rng(11);
  const Tensor a = Tensor::randn({5, 96}, rng);
  const Tensor w = random_weight(96, 40, 7);
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    const QuantizedWeight q = quantize(w, kind, 32);
    const Tensor got = matmul(a, q);
    const Tensor want = tensor::matmul(a, dequantize(q));
    EXPECT_LT(tensor::max_abs_diff(got, want), 1e-4f)
        << tensor::quant_kind_name(kind);
  }
}

TEST(QuantMatmul, BitwiseAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(13);
  const Tensor a = Tensor::randn({3, 128}, rng);
  const Tensor w = random_weight(128, 80, 17);
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    const QuantizedWeight q = quantize(w, kind, 32);
    runtime::set_intra_op_threads(1);
    const Tensor serial = matmul(a, q);
    for (const std::size_t t : {2u, 4u}) {
      runtime::set_intra_op_threads(t);
      EXPECT_TRUE(bitwise_equal(matmul(a, q), serial))
          << tensor::quant_kind_name(kind) << " at " << t << " threads";
    }
  }
}

// ---- 3. TP-shard-aligned grouping ------------------------------------------

TEST(QuantSharding, ShardRowsMatchesDirectShardQuantization) {
  // Row-parallel t = 2: each rank owns rows [r*64, (r+1)*64). With group 16
  // dividing K/t = 64, shard-of-quantize must be bitwise quantize-of-shard.
  const std::int64_t k = 128, n = 48, group = 16;
  const Tensor w = random_weight(k, n, 19);
  const auto dw = w.data();
  const QuantizedWeight full = quantize(w, QuantKind::kInt8, group);
  for (std::int64_t r = 0; r < 2; ++r) {
    const std::int64_t r0 = r * (k / 2), r1 = (r + 1) * (k / 2);
    std::vector<float> shard(static_cast<std::size_t>((r1 - r0) * n));
    std::copy(dw.begin() + r0 * n, dw.begin() + r1 * n, shard.begin());
    const QuantizedWeight direct =
        quantize(Tensor::from_vector({r1 - r0, n}, shard), QuantKind::kInt8,
                 group);
    EXPECT_TRUE(quant_bitwise_equal(shard_rows(full, r0, r1), direct))
        << "rank " << r;
  }
}

TEST(QuantSharding, SliceColsMatchesDirectShardQuantization) {
  // Column-parallel t = 2 on panel-aligned halves of n = 64.
  const std::int64_t k = 64, n = 64, group = 16;
  const Tensor w = random_weight(k, n, 23);
  const auto dw = w.data();
  const QuantizedWeight full = quantize(w, QuantKind::kQ4, group);
  for (std::int64_t r = 0; r < 2; ++r) {
    const std::int64_t c0 = r * (n / 2), c1 = (r + 1) * (n / 2);
    std::vector<float> shard(static_cast<std::size_t>(k * (c1 - c0)));
    for (std::int64_t i = 0; i < k; ++i) {
      std::copy(dw.begin() + i * n + c0, dw.begin() + i * n + c1,
                shard.begin() + i * (c1 - c0));
    }
    const QuantizedWeight direct = quantize(
        Tensor::from_vector({k, c1 - c0}, shard), QuantKind::kQ4, group);
    EXPECT_TRUE(quant_bitwise_equal(slice_cols(full, c0, c1), direct))
        << "rank " << r;
  }
}

// ---- 4. wire format --------------------------------------------------------

TEST(QuantWire, SerializeRoundTripsBitwise) {
  const Tensor w = random_weight(128, 64, 29);
  for (const QuantKind kind : {QuantKind::kInt8, QuantKind::kQ4}) {
    const QuantizedWeight q = quantize(w, kind, 64);
    const auto bytes = serialize(q);
    EXPECT_TRUE(quant_bitwise_equal(deserialize(bytes), q));
    // The wire image must beat f32 by > 3x (the §17 bandwidth claim).
    EXPECT_LT(bytes.size() * 3, static_cast<std::size_t>(128 * 64 * 4))
        << tensor::quant_kind_name(kind);
  }
}

TEST(QuantWire, BroadcastDeliversRootWeightToEveryRank) {
  const Tensor w = random_weight(64, 32, 31);
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    QuantizedWeight mine;  // non-root starts empty
    if (comm.rank() == 0) mine = quantize(w, QuantKind::kInt8, 16);
    std::int64_t wire_bytes = 0;
    const QuantizedWeight got = broadcast(comm, mine, /*root=*/0, &wire_bytes);
    const QuantizedWeight want = quantize(w, QuantKind::kInt8, 16);
    EXPECT_TRUE(quant_bitwise_equal(got, want)) << "rank " << comm.rank();
    EXPECT_LT(wire_bytes * 3, 64 * 32 * 4);
  });
}

// ---- 5. dtype-tagged checkpoints -------------------------------------------

class QuantCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ptdp_quant_ckpt_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(QuantCkptTest, RoundTripsBitwiseAndRejectsWrongKind) {
  dist::Comm solo = dist::Comm::solo();
  const Tensor w = random_weight(64, 32, 37);
  QuantizedWeight saved = quantize(w, QuantKind::kInt8, 16);
  save_quantized_checkpoint(dir_, 5, solo, {{"blk.qkv", &saved}},
                            QuantKind::kInt8);

  QuantizedWeight loaded = quantize(random_weight(64, 32, 38),
                                    QuantKind::kInt8, 16);
  const auto step =
      load_quantized_checkpoint(dir_, solo, {{"blk.qkv", &loaded}},
                                QuantKind::kInt8);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, 5u);
  EXPECT_TRUE(quant_bitwise_equal(loaded, saved));

  // The manifest is dtype-tagged: resuming the same directory at q4 must be
  // rejected before any shard opens.
  QuantizedWeight q4 = quantize(w, QuantKind::kQ4, 16);
  EXPECT_THROW(load_quantized_checkpoint(dir_, solo, {{"blk.qkv", &q4}},
                                         QuantKind::kQ4),
               CheckError);
}

// ---- 6. quantized serving engine -------------------------------------------

model::GptConfig tiny() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 32;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 24;
  c.dropout = 0.0f;
  c.seed = 41;
  return c;
}

model::StageSpec whole(const model::GptConfig& c) {
  return model::StageSpec{true, true, 0, c.num_layers, false};
}

serve::EngineOptions small_engine(std::int64_t capacity_blocks) {
  serve::EngineOptions eo;
  eo.block_tokens = 4;
  eo.capacity_blocks = capacity_blocks;
  eo.max_batch_tokens = 32;
  eo.prefill_chunk = 4;
  eo.max_running = 16;
  eo.record_metrics = false;
  return eo;
}

graph::QuantPolicy int8_policy() {
  graph::QuantPolicy policy;
  policy.kind = QuantKind::kInt8;
  policy.group_size = 8;  // divides every per-rank K at t in {1, 2}
  return policy;
}

TEST(QuantServe, ZeroSteadyStatePoolGrowth) {
  const model::GptConfig c = tiny();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(c, solo, whole(c));
  const auto report = stage.quantize_for_serving(int8_policy());
  EXPECT_EQ(report.linears, 2 * 4);
  EXPECT_LT(report.weight_bytes * 2, report.weight_bytes_f32);
  serve::ServeEngine engine(stage, small_engine(/*capacity=*/24));

  auto wave = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      serve::Request r;
      r.id = base + i;
      r.prompt = {1, 2, 3, 4};
      r.options.max_new_tokens = 6;
      engine.submit(std::move(r));
    }
    std::int64_t step = 0;
    while (!engine.idle()) {
      ASSERT_LT(step++, 20000);
      engine.step();
    }
  };

  wave(100);  // warm-up: KV blocks and activation buffers enter the pool
  const std::int64_t acquires = engine.kv().allocator().pool_acquires();
  for (std::uint64_t w = 1; w <= 10; ++w) wave(1000 * w);
  EXPECT_EQ(engine.kv().allocator().pool_acquires(), acquires)
      << "steady-state quantized serving grew the pool";
  EXPECT_EQ(engine.kv().allocator().live_blocks(), 0);
}

TEST(QuantServe, TensorParallelQuantizedMatchesSerialQuantized) {
  const model::GptConfig c = tiny();
  const std::uint64_t seed = 9;
  serve::LoadGenOptions lo;
  lo.users = 6;
  lo.requests_per_user = 2;
  lo.prompt_min = 2;
  lo.prompt_max = 8;
  lo.max_new_min = 3;
  lo.max_new_max = 8;
  lo.think_steps_max = 2;
  lo.window = c.seq;
  lo.vocab = c.vocab;
  lo.seed = seed;

  auto drive = [](serve::ServeEngine& engine, serve::LoadGen& lg) {
    std::map<std::uint64_t, std::vector<std::int32_t>> out;
    std::int64_t step = 0;
    while (!lg.done()) {
      EXPECT_LT(step, 20000);
      lg.tick(step, engine);
      const auto done = engine.step();
      lg.on_finished(done, step);
      ++step;
    }
    for (const auto& fin : lg.finished()) out[fin.id] = fin.tokens;
    return out;
  };

  dist::Comm solo = dist::Comm::solo();
  model::GptStage serial(c, solo, whole(c));
  serial.quantize_for_serving(int8_policy());
  serve::ServeEngine ref_engine(serial, small_engine(/*capacity=*/16));
  serve::LoadGen ref_lg(lo);
  const auto expected = drive(ref_engine, ref_lg);
  ASSERT_EQ(expected.size(), 12u);

  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    model::GptStage stage(c, comm, whole(c));
    stage.quantize_for_serving(int8_policy());
    serve::ServeEngine engine(stage, small_engine(/*capacity=*/16));
    serve::LoadGen lg(lo);
    const auto got = drive(engine, lg);
    ASSERT_EQ(got.size(), expected.size());
    for (const auto& [id, tokens] : expected) {
      EXPECT_EQ(got.at(id), tokens) << "rank " << comm.rank() << " request "
                                    << id;
    }
  });
}

}  // namespace
}  // namespace ptdp::quant
