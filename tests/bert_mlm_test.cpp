// BERT-path tests: bidirectional attention through the fused general-mask
// kernel (the §4.2 "general masking" custom kernel), the MLM objective's
// per-token loss weights, and full tensor/pipeline-parallel equivalence of
// the bidirectional model — the same invariants the GPT path satisfies.

#include <gtest/gtest.h>

#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {
namespace {

GptConfig bert_config() {
  GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.causal = false;  // bidirectional (BERT-style)
  c.seed = 71;
  return c;
}

Microbatch mlm_microbatch(const GptConfig& c, std::int64_t b, std::uint64_t tag) {
  Microbatch mb;
  mb.s = c.seq;
  mb.b = b;
  mb.tag = tag;
  Rng rng(c.seed, substream(31, tag));
  mb.tokens.resize(static_cast<std::size_t>(mb.s * b));
  for (auto& t : mb.tokens) {
    t = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(c.vocab - 1)));  // reserve the mask token
  }
  data::apply_mlm_masking(mb, c.vocab, {}, /*seed=*/c.seed);
  return mb;
}

TEST(BidirectionalAttention, SeesFutureTokens) {
  // In a causal model, changing a future token cannot affect an earlier
  // position's activation; in the bidirectional model it must.
  GptConfig causal = bert_config();
  causal.causal = true;
  GptConfig bidir = bert_config();

  for (const GptConfig* cfg : {&causal, &bidir}) {
    dist::Comm solo = dist::Comm::solo();
    ParallelAttention attn(*cfg, 0, solo);
    Rng rng(1);
    tensor::Tensor x = tensor::Tensor::randn({cfg->seq, 1, cfg->hidden}, rng);
    AttentionCache cache1, cache2;
    tensor::Tensor y1 = attn.forward(x, cache1, 1);
    // Perturb the last position's input.
    tensor::Tensor x2 = x.clone();
    x2.at({cfg->seq - 1, 0, 0}) += 1.0f;
    tensor::Tensor y2 = attn.forward(x2, cache2, 1);
    // Compare position 0's output.
    float diff = 0.0f;
    for (std::int64_t j = 0; j < cfg->hidden; ++j) {
      diff = std::max(diff, std::abs(y1.at({0, 0, j}) - y2.at({0, 0, j})));
    }
    if (cfg->causal) {
      EXPECT_EQ(diff, 0.0f) << "causal attention leaked the future";
    } else {
      EXPECT_GT(diff, 0.0f) << "bidirectional attention ignored the future";
    }
  }
}

TEST(BidirectionalAttention, TensorParallelMatchesSerial) {
  GptConfig c = bert_config();
  Rng rng(3);
  tensor::Tensor x = tensor::Tensor::randn({c.seq, 2, c.hidden}, rng);
  tensor::Tensor dy = tensor::Tensor::randn({c.seq, 2, c.hidden}, rng);
  dist::Comm solo = dist::Comm::solo();
  ParallelAttention ref(c, 0, solo);
  AttentionCache ref_cache;
  tensor::Tensor ref_y = ref.forward(x, ref_cache, 1);
  tensor::Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    ParallelAttention attn(c, 0, comm);
    AttentionCache cache;
    EXPECT_TRUE(tensor::allclose(attn.forward(x, cache, 1), ref_y, 1e-4f, 1e-5f));
    EXPECT_TRUE(tensor::allclose(attn.backward(dy, cache), ref_dx, 1e-4f, 1e-5f));
  });
}

TEST(MlmMasking, SelectsAndCorruptsDeterministically) {
  GptConfig c = bert_config();
  Microbatch a = mlm_microbatch(c, 2, 5);
  Microbatch b = mlm_microbatch(c, 2, 5);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.loss_weights, b.loss_weights);
  // Different tags give different corruption.
  Microbatch other = mlm_microbatch(c, 2, 6);
  EXPECT_NE(a.loss_weights, other.loss_weights);

  // Weighted positions exist and all corrupted positions are weighted.
  float wsum = 0;
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    wsum += a.loss_weights[i];
    if (a.tokens[i] != a.targets[i]) {
      EXPECT_EQ(a.loss_weights[i], 1.0f) << "corrupted but unweighted at " << i;
    }
  }
  EXPECT_GT(wsum, 0.0f);
}

TEST(MlmMasking, MaskRateApproximatesRequested) {
  GptConfig c = bert_config();
  c.seq = 64;
  Microbatch mb;
  mb.s = c.seq;
  mb.b = 16;
  mb.tag = 1;
  mb.tokens.assign(static_cast<std::size_t>(mb.s * mb.b), 3);
  data::apply_mlm_masking(mb, c.vocab, {.mask_prob = 0.15f}, 9);
  float rate = 0;
  for (float w : mb.loss_weights) rate += w;
  rate /= static_cast<float>(mb.loss_weights.size());
  EXPECT_NEAR(rate, 0.15f, 0.03f);
}

TEST(MlmLoss, OnlyWeightedPositionsContribute) {
  // Changing an unweighted target must not change the loss; changing a
  // weighted one must.
  GptConfig c = bert_config();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, StageSpec{true, true, 0, c.num_layers, false});
  Microbatch mb = mlm_microbatch(c, 2, 7);

  StageCache cache0;
  const float base = stage.forward(tensor::Tensor(), mb, cache0).loss;

  std::size_t weighted = 0, unweighted = 0;
  for (std::size_t i = 0; i < mb.loss_weights.size(); ++i) {
    if (mb.loss_weights[i] > 0) weighted = i;
    if (mb.loss_weights[i] == 0) unweighted = i;
  }
  Microbatch mb_unw = mb;
  mb_unw.targets[unweighted] = (mb.targets[unweighted] + 1) % c.vocab;
  StageCache cache1;
  EXPECT_FLOAT_EQ(stage.forward(tensor::Tensor(), mb_unw, cache1).loss, base);

  Microbatch mb_w = mb;
  mb_w.targets[weighted] =
      static_cast<std::int32_t>((mb.targets[weighted] + 1) % c.vocab);
  StageCache cache2;
  EXPECT_NE(stage.forward(tensor::Tensor(), mb_w, cache2).loss, base);
}

TEST(MlmLoss, GradientMatchesFiniteDifference) {
  GptConfig c = bert_config();
  c.num_layers = 1;
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, StageSpec{true, true, 0, 1, false});
  Microbatch mb = mlm_microbatch(c, 1, 9);
  stage.zero_grads();
  StageCache cache;
  (void)stage.forward(tensor::Tensor(), mb, cache);
  stage.backward(tensor::Tensor(), 1.0f, cache, mb);

  // Check a few entries of the word embedding grad.
  Param* word = stage.word_embedding_param();
  ASSERT_NE(word, nullptr);
  const float eps = 1e-2f;
  Rng pick(4);
  for (int k = 0; k < 5; ++k) {
    const std::size_t i = static_cast<std::size_t>(
        pick.next_below(static_cast<std::uint64_t>(word->value.numel())));
    const float orig = word->value.data()[i];
    StageCache tmp1, tmp2;
    word->value.data()[i] = orig + eps;
    const float lp = stage.forward(tensor::Tensor(), mb, tmp1).loss;
    word->value.data()[i] = orig - eps;
    const float lm = stage.forward(tensor::Tensor(), mb, tmp2).loss;
    word->value.data()[i] = orig;
    EXPECT_NEAR(word->grad.data()[i], (lp - lm) / (2 * eps), 5e-2f) << i;
  }
}

TEST(BertEndToEnd, PipelineParallelMlmMatchesSerial) {
  GptConfig c = bert_config();
  std::vector<Microbatch> mbs{mlm_microbatch(c, 1, 1), mlm_microbatch(c, 1, 2),
                              mlm_microbatch(c, 1, 3), mlm_microbatch(c, 1, 4)};

  // Serial reference loss trajectory (2 steps of SGD on the same batch).
  auto run = [&](int p, int t) {
    float final_loss = 0;
    std::mutex mu;
    dist::World world(p * t);
    world.run([&](dist::Comm& comm) {
      core::EngineOptions options;
      options.model = c;
      options.parallel.p = p;
      options.parallel.t = t;
      options.parallel.b = 1;
      options.parallel.recompute = p > 1;  // exercise recompute on the grid
      options.global_batch = 4;
      options.sgd.lr = 0.1f;
      core::PtdpEngine engine(comm, options);
      float loss = 0;
      for (int s = 0; s < 2; ++s) loss = engine.train_step(mbs);
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        final_loss = loss;
      }
    });
    return final_loss;
  };
  const float serial = run(1, 1);
  const float grid = run(2, 2);
  EXPECT_NEAR(grid, serial, 2e-3f);
}

TEST(BertEndToEnd, LearnsToUnmaskWithBidirectionalContext) {
  // Data where token i is fully determined by its neighbors: a constant
  // sequence per sample. A bidirectional model should drive the MLM loss
  // far below ln(V); this is the objective BERT's kernel exists for.
  GptConfig c = bert_config();
  c.num_layers = 2;
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, StageSpec{true, true, 0, c.num_layers, false});
  optim::Adam adam(stage.params(), {.lr = 5e-3f});

  Rng rng(2);
  float loss = 0;
  float first_loss = 0;
  for (int step = 0; step < 200; ++step) {
    Microbatch mb;
    mb.s = c.seq;
    mb.b = 4;
    mb.tag = static_cast<std::uint64_t>(step + 1);
    mb.tokens.resize(static_cast<std::size_t>(mb.s * mb.b));
    for (std::int64_t ib = 0; ib < mb.b; ++ib) {
      const auto tok = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(c.vocab - 1)));
      for (std::int64_t is = 0; is < mb.s; ++is) {
        mb.tokens[static_cast<std::size_t>(is * mb.b + ib)] = tok;
      }
    }
    data::apply_mlm_masking(mb, c.vocab, {.mask_prob = 0.25f}, c.seed);
    stage.zero_grads();
    StageCache cache;
    loss = stage.forward(tensor::Tensor(), mb, cache).loss;
    if (step == 0) first_loss = loss;
    stage.backward(tensor::Tensor(), 1.0f, cache, mb);
    adam.step();
  }
  // Chance level is ln(32) ≈ 3.47; require a large, unambiguous drop (the
  // tiny 16-dim model keeps grinding down with more steps).
  EXPECT_NEAR(first_loss, 3.47f, 0.7f);
  EXPECT_LT(loss, first_loss - 1.2f);
}

}  // namespace
}  // namespace ptdp::model
