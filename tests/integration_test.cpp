// Integration tests: whole-system scenarios that cross every module
// boundary — the full feature stack at once (3D grid + interleaved
// schedule + recomputation + dropout + mixed precision + clipping),
// planner-to-engine round trips, data-parallel equivalence with dropout,
// and multi-engine World reuse.

#include <gtest/gtest.h>

#include <cmath>

#include "ptdp/core/engine.hpp"
#include "ptdp/core/planner.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"

namespace ptdp::core {
namespace {

using model::GptConfig;

GptConfig small_config(std::int64_t layers, float dropout = 0.0f) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 8;
  c.dropout = dropout;
  c.seed = 505;
  return c;
}

TEST(Integration, EverythingAtOnce) {
  // p=2 (interleaved v=2), t=2, d=2 on 8 ranks, with dropout,
  // recomputation, bf16 mixed precision, and gradient clipping — and the
  // loss still exactly matches the serial run with the same features.
  GptConfig c = small_config(/*layers=*/4, /*dropout=*/0.1f);
  data::SyntheticCorpus corpus(c.vocab, 3);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  const std::int64_t B = 8;
  const int steps = 3;

  auto run = [&](int p, int t, int d, int v) {
    std::vector<float> losses;
    dist::World world(p * t * d);
    std::mutex mu;
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.p = p;
      options.parallel.t = t;
      options.parallel.d = d;
      options.parallel.v = v;
      options.parallel.b = 1;
      options.parallel.schedule = v > 1 ? pipeline::ScheduleType::kInterleaved
                                        : pipeline::ScheduleType::kOneFOneB;
      options.parallel.recompute = true;
      options.global_batch = B;
      options.optimizer = EngineOptions::Opt::kAdam;
      options.adam.lr = 2e-3f;
      options.mixed_precision = true;
      options.grad_clip = 1.0;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, B, 1, d, engine.groups().coord().data, 77);
      for (int s = 0; s < steps; ++s) {
        const float loss = engine.train_step(loader.next_batch(s));
        if (comm.rank() == 0) {
          std::lock_guard lock(mu);
          losses.push_back(loss);
        }
      }
    });
    return losses;
  };

  const auto serial = run(1, 1, 1, 1);
  const auto full = run(2, 2, 2, 2);
  ASSERT_EQ(serial.size(), full.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // bf16 working weights accumulate small rounding differences across
    // differently-ordered reductions; tolerance reflects bf16 resolution.
    EXPECT_NEAR(full[i], serial[i], 0.02f) << "step " << i;
  }
}

TEST(Integration, DataParallelEquivalenceWithDropout) {
  // The loader's sample/tag layout makes d=2 reproduce d=1 exactly even
  // with dropout enabled (masks are keyed by step/microbatch tags that
  // agree across layouts).
  GptConfig c = small_config(2, /*dropout=*/0.15f);
  data::SyntheticCorpus corpus(c.vocab, 5);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  const std::int64_t B = 8;

  auto run = [&](int d) {
    std::vector<float> losses;
    std::mutex mu;
    dist::World world(d);
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.d = d;
      options.parallel.b = 2;
      options.parallel.recompute = false;
      options.global_batch = B;
      options.sgd.lr = 0.1f;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, B, 2, d, engine.groups().coord().data, 31);
      for (int s = 0; s < 3; ++s) {
        const float loss = engine.train_step(loader.next_batch(s));
        if (comm.rank() == 0) {
          std::lock_guard lock(mu);
          losses.push_back(loss);
        }
      }
    });
    return losses;
  };
  const auto d1 = run(1);
  const auto d2 = run(2);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_NEAR(d1[i], d2[i], 1e-3f) << "step " << i;
  }
}

TEST(Integration, PlannerConfigurationActuallyRuns) {
  // Plan for a 4-GPU "cluster" with the analytic model, then execute the
  // chosen configuration functionally end to end.
  GptConfig c = small_config(4);
  PlannerInput input;
  input.model = c;
  input.n_gpus = 4;
  input.gpus_per_node = 2;
  input.global_batch = 8;
  input.microbatch_candidates = {1, 2};
  const Plan plan = plan_configuration(input);
  const ParallelConfig cfg = plan.best.config;
  ASSERT_EQ(cfg.n(), 4);

  data::SyntheticCorpus corpus(c.vocab, 9);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel = cfg;
    options.global_batch = input.global_batch;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, input.global_batch, cfg.b, cfg.d,
                               engine.groups().coord().data, 2);
    const float loss = engine.train_step(loader.next_batch(0));
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_NEAR(loss, std::log(static_cast<float>(c.vocab)), 1.0f);
  });
}

TEST(Integration, ConvergesAcrossLayouts) {
  // Same training run on two different grids converges to the same loss
  // neighborhood (not just step-for-step equality — a longer horizon).
  GptConfig c = small_config(2);
  data::SyntheticCorpus corpus(c.vocab, 21);
  data::TokenDataset dataset(corpus.generate(8000), c.seq);

  auto final_loss = [&](int p, int t, int d) {
    float result = 0;
    dist::World world(p * t * d);
    std::mutex mu;
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.p = p;
      options.parallel.t = t;
      options.parallel.d = d;
      options.parallel.b = 2;
      options.parallel.recompute = false;
      options.global_batch = 8;
      options.optimizer = EngineOptions::Opt::kAdam;
      options.adam.lr = 4e-3f;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, 8, 2, d, engine.groups().coord().data, 6);
      float loss = 0;
      for (int s = 0; s < 20; ++s) loss = engine.train_step(loader.next_batch(s));
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        result = loss;
      }
    });
    return result;
  };

  const float serial = final_loss(1, 1, 1);
  const float grid = final_loss(2, 2, 1);
  EXPECT_LT(serial, std::log(static_cast<float>(c.vocab)) - 0.2f);  // learned
  EXPECT_NEAR(grid, serial, 0.05f);
}

TEST(Integration, MultipleEnginesShareOneWorld) {
  // Two sequential training jobs in one World: communicator ids must not
  // collide and no messages may leak between them.
  GptConfig c = small_config(2);
  data::SyntheticCorpus corpus(c.vocab, 2);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  dist::World world(2);
  for (int job = 0; job < 2; ++job) {
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.p = 2;
      options.parallel.b = 1;
      options.parallel.recompute = false;
      options.global_batch = 4;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, 4, 1, 1, 0, 12);
      const float loss = engine.train_step(loader.next_batch(job));
      EXPECT_TRUE(std::isfinite(loss));
    });
    EXPECT_EQ(world.pending_messages(), 0u) << "job " << job << " leaked messages";
  }
}

TEST(Integration, TrainThenGenerateThroughEngine) {
  // Train with tensor parallelism through the engine, then sample from the
  // engine's own stage on every rank — identical outputs.
  GptConfig c = small_config(2);
  data::SyntheticCorpus corpus(c.vocab, 19);
  data::TokenDataset dataset(corpus.generate(6000), c.seq);
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.t = 2;
    options.parallel.b = 2;
    options.parallel.recompute = false;
    options.global_batch = 8;
    options.optimizer = EngineOptions::Opt::kAdam;
    options.adam.lr = 4e-3f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, 8, 2, 1, 0, 14);
    for (int s = 0; s < 10; ++s) engine.train_step(loader.next_batch(s));

    model::GenerateOptions gen;
    gen.max_new_tokens = 6;
    std::vector<std::int32_t> prompt{1, 2};
    const auto tokens = model::generate(engine.chunk(0), prompt, gen);
    EXPECT_EQ(tokens.size(), 8u);
    // Cross-rank agreement: exchange and compare.
    std::vector<std::int32_t> other(tokens.size());
    comm.send(std::span<const std::int32_t>(tokens), 1 - comm.rank(), 42);
    comm.recv(std::span<std::int32_t>(other), 1 - comm.rank(), 42);
    EXPECT_EQ(tokens, other);
  });
}

}  // namespace
}  // namespace ptdp::core
