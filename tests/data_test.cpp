// Data-path tests: corpus determinism and learnability structure, dataset
// windowing, and the key loader invariant — the union of samples across d
// data-parallel ranks is independent of d (which is what makes training
// with different d semantically identical).

#include <gtest/gtest.h>

#include <set>

#include "ptdp/data/dataset.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::data {
namespace {

TEST(SyntheticCorpus, DeterministicForSeed) {
  SyntheticCorpus a(64, 7), b(64, 7);
  EXPECT_EQ(a.generate(500), b.generate(500));
}

TEST(SyntheticCorpus, DifferentSeedsDiffer) {
  SyntheticCorpus a(64, 7), b(64, 8);
  EXPECT_NE(a.generate(500), b.generate(500));
}

TEST(SyntheticCorpus, TokensInRange) {
  SyntheticCorpus c(32, 1);
  for (std::int32_t t : c.generate(2000)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 32);
  }
}

TEST(SyntheticCorpus, HasLearnableBigramStructure) {
  // ~70% of transitions follow the deterministic successor rule, so the
  // most frequent successor of a common token should dominate.
  SyntheticCorpus c(16, 3);
  auto stream = c.generate(20000);
  std::vector<std::vector<int>> follow(16, std::vector<int>(16, 0));
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    follow[static_cast<std::size_t>(stream[i])]
          [static_cast<std::size_t>(stream[i + 1])]++;
  }
  int structured = 0, total_checked = 0;
  for (int tok = 0; tok < 16; ++tok) {
    int total = 0, best = 0;
    for (int nxt = 0; nxt < 16; ++nxt) {
      total += follow[static_cast<std::size_t>(tok)][static_cast<std::size_t>(nxt)];
      best = std::max(best,
                      follow[static_cast<std::size_t>(tok)][static_cast<std::size_t>(nxt)]);
    }
    if (total > 100) {
      ++total_checked;
      if (best > total / 2) ++structured;
    }
  }
  ASSERT_GT(total_checked, 4);
  EXPECT_GE(structured, total_checked * 2 / 3);
}

TEST(TokenDataset, WindowsAreShiftedByOne) {
  std::vector<std::int32_t> stream{0, 1, 2, 3, 4, 5, 6, 7, 8};
  TokenDataset ds(stream, /*seq=*/4);
  EXPECT_EQ(ds.size(), 2);
  std::int32_t tok[4], tgt[4];
  ds.sample(0, tok, tgt);
  EXPECT_EQ(tok[0], 0);
  EXPECT_EQ(tgt[0], 1);
  EXPECT_EQ(tok[3], 3);
  EXPECT_EQ(tgt[3], 4);
  ds.sample(1, tok, tgt);
  EXPECT_EQ(tok[0], 4);
  EXPECT_EQ(tgt[3], 8);
}

TEST(TokenDataset, RejectsShortStreamAndBadIndex) {
  EXPECT_THROW(TokenDataset({1, 2}, 4), CheckError);
  TokenDataset ds({0, 1, 2, 3, 4}, 2);
  std::int32_t tok[2], tgt[2];
  EXPECT_THROW(ds.sample(99, tok, tgt), CheckError);
}

TEST(ShardedLoader, MicrobatchShapesAndCount) {
  SyntheticCorpus corpus(32, 5);
  TokenDataset ds(corpus.generate(4000), /*seq=*/8);
  ShardedLoader loader(ds, /*global_batch=*/16, /*micro_b=*/2, /*d=*/2, /*rank=*/0,
                       /*seed=*/11);
  EXPECT_EQ(loader.microbatches_per_step(), 4);
  auto mbs = loader.next_batch(0);
  ASSERT_EQ(mbs.size(), 4u);
  for (const auto& mb : mbs) {
    EXPECT_EQ(mb.s, 8);
    EXPECT_EQ(mb.b, 2);
    EXPECT_EQ(mb.tokens.size(), 16u);
    EXPECT_EQ(mb.targets.size(), 16u);
  }
}

TEST(ShardedLoader, TagsUniqueAcrossRanksAndMicrobatches) {
  SyntheticCorpus corpus(32, 5);
  TokenDataset ds(corpus.generate(4000), 8);
  std::set<std::uint64_t> tags;
  for (int rank = 0; rank < 4; ++rank) {
    ShardedLoader loader(ds, 16, 1, 4, rank, 11);
    for (const auto& mb : loader.next_batch(3)) {
      EXPECT_TRUE(tags.insert(mb.tag).second) << "duplicate tag";
    }
  }
  EXPECT_EQ(tags.size(), 16u);
}

TEST(ShardedLoader, UnionAcrossRanksIndependentOfD) {
  // The d=1 batch must equal the concatenation of the d=2 ranks' batches:
  // same samples, same microbatch boundaries, same tags.
  SyntheticCorpus corpus(64, 9);
  TokenDataset ds(corpus.generate(8000), 8);
  const std::int64_t B = 8, b = 2;

  ShardedLoader serial(ds, B, b, 1, 0, 42);
  auto serial_mbs = serial.next_batch(5);

  std::vector<model::Microbatch> parallel_mbs;
  for (int rank = 0; rank < 2; ++rank) {
    ShardedLoader loader(ds, B, b, 2, rank, 42);
    for (auto& mb : loader.next_batch(5)) parallel_mbs.push_back(std::move(mb));
  }
  ASSERT_EQ(serial_mbs.size(), parallel_mbs.size());
  for (std::size_t i = 0; i < serial_mbs.size(); ++i) {
    EXPECT_EQ(serial_mbs[i].tokens, parallel_mbs[i].tokens) << "microbatch " << i;
    EXPECT_EQ(serial_mbs[i].targets, parallel_mbs[i].targets) << "microbatch " << i;
    EXPECT_EQ(serial_mbs[i].tag, parallel_mbs[i].tag) << "microbatch " << i;
  }
}

TEST(ShardedLoader, DifferentStepsDrawDifferentSamples) {
  SyntheticCorpus corpus(64, 9);
  TokenDataset ds(corpus.generate(8000), 8);
  ShardedLoader loader(ds, 4, 2, 1, 0, 1);
  auto s0 = loader.next_batch(0);
  auto s1 = loader.next_batch(1);
  EXPECT_NE(s0[0].tokens, s1[0].tokens);
}

TEST(ShardedLoader, RejectsNonDivisibleBatch) {
  SyntheticCorpus corpus(32, 5);
  TokenDataset ds(corpus.generate(2000), 8);
  EXPECT_THROW(ShardedLoader(ds, 10, 4, 1, 0, 1), CheckError);
  EXPECT_THROW(ShardedLoader(ds, 8, 2, 3, 0, 1), CheckError);
}

TEST(ShardedLoader, SequenceMajorLayout) {
  // Element (i_s, i_b) sits at index i_s*b + i_b and rows are contiguous
  // windows of the stream.
  std::vector<std::int32_t> stream(100);
  for (int i = 0; i < 100; ++i) stream[static_cast<std::size_t>(i)] = i % 32;
  TokenDataset ds(stream, 4);
  ShardedLoader loader(ds, 2, 2, 1, 0, 7);
  auto mbs = loader.next_batch(0);
  ASSERT_EQ(mbs.size(), 1u);
  const auto& mb = mbs[0];
  // For each batch column, targets are tokens shifted by one.
  for (std::int64_t ib = 0; ib < mb.b; ++ib) {
    for (std::int64_t is = 0; is + 1 < mb.s; ++is) {
      EXPECT_EQ(mb.targets[static_cast<std::size_t>(is * mb.b + ib)],
                mb.tokens[static_cast<std::size_t>((is + 1) * mb.b + ib)]);
    }
  }
}

}  // namespace
}  // namespace ptdp::data
