// The dtype axis of ptdp::tensor (DESIGN.md §13): bf16 conversions are
// round-to-nearest-even and exact on widening, structural ops preserve
// dtype without touching payload bits, pooled staging never leaks stale
// bytes into bf16 tensors, and the checkpoint/manifest formats carry dtype
// end to end — including v1 (implicit f32) read back-compat and rejection
// of mismatched-dtype resumes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/tensor/ops.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::tensor {
namespace {

using ptdp::CheckError;

bool same_bits(const Tensor& a, const Tensor& b) {
  if (a.dtype() != b.dtype() || !a.same_shape(b)) return false;
  const auto ba = a.raw_bytes();
  const auto bb = b.raw_bytes();
  return ba.size() == bb.size() &&
         std::memcmp(ba.data(), bb.data(), ba.size()) == 0;
}

TEST(DTypeScalar, WideningIsExactAndNarrowingRoundsToNearestEven) {
  // bf16 bit patterns widen to exactly the float with those high bits.
  EXPECT_EQ(bf16_to_f32(0x3F80), 1.0f);
  EXPECT_EQ(bf16_to_f32(0xBF80), -1.0f);
  EXPECT_EQ(bf16_to_f32(0x0000), 0.0f);
  EXPECT_EQ(f32_to_bf16(1.0f), 0x3F80);
  // 1 + 2^-8 is exactly halfway between bf16(1.0) and the next value up;
  // round-to-nearest-even picks the even mantissa (1.0).
  EXPECT_EQ(bf16_to_f32(f32_to_bf16(1.00390625f)), 1.0f);
  // 1 + 3*2^-9 is above the halfway point and must round up.
  EXPECT_EQ(bf16_to_f32(f32_to_bf16(1.005859375f)), 1.0078125f);
  // Values already representable in bf16 round-trip bit-exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.25f, 1024.0f, 65536.0f,
                  std::ldexp(1.0f, 127)}) {
    EXPECT_EQ(bf16_to_f32(f32_to_bf16(v)), v) << v;
  }
  // One narrow errs by at most half a bf16 ulp — 2^(e-8) for a value with
  // exponent e, hence <= |v| * 2^-8.
  Rng rng(11);
  Tensor x = Tensor::randn({1000}, rng);
  for (float v : x.data()) {
    const float r = bf16_to_f32(f32_to_bf16(v));
    EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 256.0f) + 1e-38f) << v;
  }
}

TEST(DTypeTensor, MetadataAndAccessors) {
  Tensor t = Tensor::zeros({3, 5}, DType::kBf16);
  EXPECT_EQ(t.dtype(), DType::kBf16);
  EXPECT_EQ(t.itemsize(), 2u);
  EXPECT_EQ(t.nbytes(), 30u);
  EXPECT_EQ(t.data_bf16().size(), 15u);
  EXPECT_EQ(t.raw_bytes().size(), 30u);
  // The f32 fast path refuses bf16 tensors instead of reinterpreting bits.
  EXPECT_THROW(t.data(), CheckError);
  Tensor f = Tensor::zeros({3});
  EXPECT_EQ(f.dtype(), DType::kF32);
  EXPECT_THROW(f.data_bf16(), CheckError);
}

TEST(DTypeTensor, OddNumelStorageSlackIsNeverExposed) {
  // 7 bf16 elements = 14 bytes, stored in 4 floats (16 bytes) — the
  // accessors must expose exactly the payload, not the slack.
  Tensor t = Tensor::empty({7}, DType::kBf16);
  EXPECT_EQ(t.nbytes(), 14u);
  EXPECT_EQ(t.data_bf16().size(), 7u);
  EXPECT_EQ(t.raw_bytes().size(), 14u);
  t.fill(1.5f);
  Tensor wide = t.to(DType::kF32);
  for (float v : wide.data()) EXPECT_EQ(v, 1.5f);
}

TEST(DTypeTensor, CastRoundTripAndFill) {
  Rng rng(3);
  Tensor x = Tensor::randn({33, 9}, rng);
  Tensor narrow = x.to(DType::kBf16);
  EXPECT_EQ(narrow.dtype(), DType::kBf16);
  Tensor wide = narrow.to(DType::kF32);
  // Widening is exact, so the round trip equals a scalar round per element.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(wide.data()[idx], bf16_to_f32(f32_to_bf16(x.data()[idx])));
  }
  // to() at the same dtype is a deep copy, not a view.
  Tensor copy = narrow.to(DType::kBf16);
  EXPECT_TRUE(same_bits(copy, narrow));
  copy.data_bf16()[0] ^= 0x1;
  EXPECT_FALSE(same_bits(copy, narrow));
  // fill() rounds to the storage dtype.
  Tensor filled = Tensor::empty({4}, DType::kBf16);
  filled.fill(1.00390625f);
  for (bf16_t v : filled.data_bf16()) EXPECT_EQ(v, f32_to_bf16(1.00390625f));
}

TEST(DTypeTensor, CastIntoBothDirectionsAndCopyFromGuards) {
  Rng rng(5);
  Tensor x = Tensor::randn({17}, rng);
  Tensor n = Tensor::empty({17}, DType::kBf16);
  cast_into(x, n);
  Tensor w = Tensor::empty({17});
  cast_into(n, w);
  EXPECT_TRUE(same_bits(w, n.to(DType::kF32)));
  // Same-dtype cast_into degenerates to a copy.
  Tensor w2 = Tensor::empty({17});
  cast_into(x, w2);
  EXPECT_TRUE(same_bits(w2, x));
  // copy_from is strictly same-dtype; converting copies must go via cast.
  EXPECT_THROW(n.copy_from(x), CheckError);
  EXPECT_THROW(x.copy_from(n), CheckError);
}

TEST(DTypeTensor, StructuralOpsPreserveDtypeAndBits) {
  Rng rng(7);
  Tensor x = Tensor::randn({6, 4}, rng).to(DType::kBf16);

  // view shares storage; dim-0 slice is a zero-copy window.
  Tensor v = x.view({4, 6});
  EXPECT_EQ(v.dtype(), DType::kBf16);
  Tensor row = x.slice(0, 2, 2);
  EXPECT_EQ(row.dtype(), DType::kBf16);
  row.data_bf16()[0] = f32_to_bf16(42.0f);
  EXPECT_EQ(x.data_bf16()[2 * 4], f32_to_bf16(42.0f));  // write visible

  // clone is a deep copy of the same bits.
  Tensor c = x.clone();
  EXPECT_TRUE(same_bits(c, x));

  // Non-leading-dim slice copies; match against the widened reference.
  Tensor col = x.slice(1, 1, 2);
  EXPECT_EQ(col.dtype(), DType::kBf16);
  EXPECT_TRUE(same_bits(col.to(DType::kF32),
                        x.to(DType::kF32).slice(1, 1, 2)));

  // concat/split round trip.
  auto parts = split(x, 2, 0);
  Tensor re = concat({parts[0], parts[1]}, 0);
  EXPECT_TRUE(same_bits(re, x));

  // transpose/permute on bf16 move bits exactly as the f32 path moves
  // the widened values.
  EXPECT_TRUE(same_bits(x.transpose(0, 1).to(DType::kF32),
                        x.to(DType::kF32).transpose(0, 1)));
  Tensor y = Tensor::randn({2, 3, 4}, rng).to(DType::kBf16);
  EXPECT_TRUE(same_bits(y.permute({2, 0, 1}).to(DType::kF32),
                        y.to(DType::kF32).permute({2, 0, 1})));
}

TEST(DTypeTensor, MixedDtypeComparisonsWidenExactly) {
  Rng rng(9);
  Tensor x = Tensor::randn({64}, rng);
  Tensor n = x.to(DType::kBf16);
  // max|x - bf16(x)| must equal the true rounding gap, computed in f32.
  float expect_gap = 0.0f;
  for (float v : x.data()) {
    expect_gap = std::max(expect_gap, std::abs(v - bf16_to_f32(f32_to_bf16(v))));
  }
  EXPECT_EQ(max_abs_diff(x, n), expect_gap);
  EXPECT_EQ(max_abs_diff(n, n.clone()), 0.0f);
  EXPECT_TRUE(allclose(n, x, /*rtol=*/1.0f / 128.0f, /*atol=*/1e-6f));
}

TEST(DTypeTensor, PooledEmptyNeverLeaksStaleBytes) {
  // Regression (satellite: empty + beta=0 fast paths): dirty a pooled
  // buffer with NaN bits, release it, then reuse it through the bf16
  // staging path — every byte of the result must come from the cast, not
  // the previous tenant.
  Rng rng(13);
  Tensor src = Tensor::randn({129}, rng);  // odd numel: exercises the slack
  Tensor clean = Tensor::empty({129}, DType::kBf16);
  cast_into(src, clean);
  const std::vector<std::uint16_t> expect(clean.data_bf16().begin(),
                                          clean.data_bf16().end());
  {
    Tensor junk = Tensor::empty({129});
    junk.fill(std::numeric_limits<float>::quiet_NaN());
  }  // released back to the pool, bytes still NaN
  Tensor reused = Tensor::empty({129}, DType::kBf16);
  cast_into(src, reused);
  ASSERT_EQ(reused.data_bf16().size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(reused.data_bf16()[i], expect[i]) << "element " << i;
  }
  Tensor wide = reused.to(DType::kF32);
  for (float v : wide.data()) EXPECT_TRUE(std::isfinite(v));
}

// ---- checkpoint format v2 ---------------------------------------------------

class DtypeCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ptdp_dtype_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DtypeCkptTest, MixedDtypeShardRoundTripsBitwise) {
  Rng rng(21);
  Tensor wf = Tensor::randn({8, 6}, rng).to(DType::kBf16);
  Tensor bf = Tensor::randn({6}, rng);
  Tensor master = Tensor::randn({8, 6}, rng);
  const std::string path = (dir_ / "shard.ckpt").string();
  ckpt::save_checkpoint(path, {{"w", &wf}, {"b", &bf}, {"w.fp32_master", &master}},
                        {/*step=*/7, 0});

  Tensor wf2 = Tensor::zeros({8, 6}, DType::kBf16);
  Tensor bf2 = Tensor::zeros({6});
  Tensor master2 = Tensor::zeros({8, 6});
  const auto meta = ckpt::load_checkpoint(
      path, {{"w", &wf2}, {"b", &bf2}, {"w.fp32_master", &master2}});
  EXPECT_EQ(meta.step, 7u);
  EXPECT_TRUE(same_bits(wf2, wf));
  EXPECT_TRUE(same_bits(bf2, bf));
  EXPECT_TRUE(same_bits(master2, master));

  // read_all reconstructs tensors in their saved dtype.
  auto all = ckpt::read_all(path, nullptr);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].second.dtype(), DType::kBf16);
  EXPECT_EQ(all[1].second.dtype(), DType::kF32);
  EXPECT_TRUE(same_bits(all[0].second, wf));

  // Name-matched load works across dtypes too.
  Tensor wf3 = Tensor::zeros({8, 6}, DType::kBf16);
  ckpt::load_checkpoint_by_name(path, {{"w", &wf3}});
  EXPECT_TRUE(same_bits(wf3, wf));
}

TEST_F(DtypeCkptTest, DtypeMismatchRejectedWithClearError) {
  Rng rng(22);
  Tensor w = Tensor::randn({4, 4}, rng).to(DType::kBf16);
  const std::string path = (dir_ / "shard.ckpt").string();
  ckpt::save_checkpoint(path, {{"w", &w}}, {1, 0});
  Tensor as_f32 = Tensor::zeros({4, 4});
  try {
    ckpt::load_checkpoint(path, {{"w", &as_f32}});
    FAIL() << "expected dtype-mismatch CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("dtype"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bf16"), std::string::npos);
  }
}

TEST_F(DtypeCkptTest, Version1FilesStillLoadAsImplicitF32) {
  // Hand-write a v1 shard (the pre-dtype format: no dtype code per tensor)
  // and check both strict-order and peek readers accept it.
  Rng rng(23);
  Tensor w = Tensor::randn({3, 2}, rng);
  const std::string path = (dir_ / "old.ckpt").string();
  {
    std::ofstream os(path, std::ios::binary);
    const std::uint64_t magic = 0x5054'4450'434B'5031ULL;
    const std::uint32_t version = 1;
    const std::uint64_t step = 42, extra = 0, count = 1;
    auto pod = [&os](const auto& v) {
      os.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    pod(magic);
    pod(version);
    pod(step);
    pod(extra);
    pod(count);
    const std::string name = "w";
    pod(static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    pod(static_cast<std::uint32_t>(2));
    pod(static_cast<std::int64_t>(3));
    pod(static_cast<std::int64_t>(2));
    auto data = w.data();
    pod(ckpt::crc32(data.data(), data.size_bytes()));
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size_bytes()));
  }
  EXPECT_EQ(ckpt::peek_checkpoint(path).step, 42u);
  Tensor w2 = Tensor::zeros({3, 2});
  EXPECT_EQ(ckpt::load_checkpoint(path, {{"w", &w2}}).step, 42u);
  EXPECT_TRUE(same_bits(w2, w));
  // A v1 file can never satisfy a bf16 destination.
  Tensor as_bf16 = Tensor::zeros({3, 2}, DType::kBf16);
  EXPECT_THROW(ckpt::load_checkpoint(path, {{"w", &as_bf16}}), CheckError);
}

// ---- manifest dtype metadata ------------------------------------------------

TEST_F(DtypeCkptTest, ManifestCarriesDtypeAndMasterFlag) {
  ckpt::Manifest m{12, 0, {}};
  m.shards.push_back({"step-12/shard-p0-t0-d0.ckpt", 100, 7, "bf16", true});
  m.shards.push_back({"step-12/shard-p0-t1-d0.ckpt", 100, 8, "bf16", true});
  const auto parsed = ckpt::parse_manifest_json(ckpt::manifest_to_json(m));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->shards[0].dtype, "bf16");
  EXPECT_TRUE(parsed->shards[0].has_master_weights);

  // Manifests written before the precision fields parse with defaults.
  const std::string old_json =
      "{\n  \"step\": 3,\n  \"extra\": 0,\n  \"shards\": [\n"
      "    { \"file\": \"step-3/s.ckpt\", \"bytes\": 10, \"crc\": 5 }\n  ]\n}\n";
  const auto old_parsed = ckpt::parse_manifest_json(old_json);
  ASSERT_TRUE(old_parsed.has_value());
  EXPECT_EQ(old_parsed->shards[0].dtype, "f32");
  EXPECT_FALSE(old_parsed->shards[0].has_master_weights);
}

TEST_F(DtypeCkptTest, ResumeRejectsMismatchedDtypeCheckpoint) {
  // Commit a real bf16-labelled checkpoint, then resolve it with both the
  // matching and the mismatching expected dtype.
  Rng rng(31);
  Tensor w = Tensor::randn({8}, rng).to(DType::kBf16);
  const std::uint64_t step = 5;
  const std::string sdir = ckpt::step_dir(dir_.string(), step);
  std::filesystem::create_directories(sdir);
  const std::string path = ckpt::shard_path(sdir, 0, 0, 0);
  const auto res = ckpt::save_checkpoint(path, {{"w", &w}}, {step, 0});
  ckpt::Manifest m{step, 0, {}};
  m.shards.push_back({std::filesystem::path(path)
                          .lexically_relative(dir_.string())
                          .string(),
                      static_cast<std::uint64_t>(res.bytes), res.crc, "bf16",
                      true});
  ckpt::write_manifest(dir_.string(), m);

  const auto ok = ckpt::find_latest_valid_checkpoint(dir_.string(),
                                                     std::string("bf16"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->step(), step);
  // No expected dtype = legacy behavior, still resolves.
  EXPECT_TRUE(ckpt::find_latest_valid_checkpoint(dir_.string()).has_value());
  try {
    ckpt::find_latest_valid_checkpoint(dir_.string(), std::string("f32"));
    FAIL() << "expected dtype-mismatch CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bf16"), std::string::npos);
    EXPECT_NE(what.find("f32"), std::string::npos);
    EXPECT_NE(what.find("dtype"), std::string::npos);
  }
}

}  // namespace
}  // namespace ptdp::tensor
