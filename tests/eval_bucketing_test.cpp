// Evaluation-path and grad-bucketing tests: forward-only validation loss
// is layout-invariant, disables dropout, and leaves all state untouched;
// bucketed data-parallel all-reduce produces identical training whatever
// the bucket size.

#include <gtest/gtest.h>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::core {
namespace {

model::GptConfig tiny(float dropout = 0.0f) {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 8;
  c.dropout = dropout;
  c.seed = 404;
  return c;
}

float eval_on_grid(const model::GptConfig& c, int p, int t, int d, int v = 1) {
  data::SyntheticCorpus corpus(c.vocab, 7);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  float result = 0;
  std::mutex mu;
  dist::World world(p * t * d);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = p;
    options.parallel.t = t;
    options.parallel.d = d;
    options.parallel.v = v;
    options.parallel.b = 1;
    options.parallel.schedule = v > 1 ? pipeline::ScheduleType::kInterleaved
                                      : pipeline::ScheduleType::kOneFOneB;
    options.parallel.recompute = false;
    options.global_batch = 8;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, 8, 1, d, engine.groups().coord().data, 66);
    const float loss = engine.evaluate(loader.next_batch(0));
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      result = loss;
    }
  });
  return result;
}

TEST(Evaluate, LayoutInvariant) {
  model::GptConfig c = tiny();
  const float serial = eval_on_grid(c, 1, 1, 1);
  EXPECT_NEAR(eval_on_grid(c, 2, 1, 1), serial, 1e-4f);
  EXPECT_NEAR(eval_on_grid(c, 1, 2, 1), serial, 1e-4f);
  EXPECT_NEAR(eval_on_grid(c, 1, 1, 2), serial, 1e-4f);
  EXPECT_NEAR(eval_on_grid(c, 2, 2, 2), serial, 1e-4f);
  // The interleaved case needs p*v = 4 layer groups.
  model::GptConfig c4 = tiny();
  c4.num_layers = 4;
  EXPECT_NEAR(eval_on_grid(c4, 2, 1, 1, /*v=*/2), eval_on_grid(c4, 1, 1, 1), 1e-4f);
  // Initial loss near ln(V) on random weights.
  EXPECT_NEAR(serial, std::log(32.0f), 0.7f);
}

TEST(Evaluate, DisablesDropout) {
  // With dropout configured, evaluate() must return the deterministic
  // no-dropout loss — identical to the dropout-free model's evaluation.
  model::GptConfig with = tiny(0.3f);
  model::GptConfig without = tiny(0.0f);
  EXPECT_FLOAT_EQ(eval_on_grid(with, 1, 1, 1), eval_on_grid(without, 1, 1, 1));
}

TEST(Evaluate, DropoutRestoredForTraining) {
  // After evaluate(), training must still use the configured dropout:
  // a train step changes the loss differently than the eval loss suggests,
  // and two identical (eval, train) sequences stay deterministic.
  model::GptConfig c = tiny(0.2f);
  data::SyntheticCorpus corpus(c.vocab, 7);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  std::vector<float> run1, run2;
  for (auto* sink : {&run1, &run2}) {
    dist::World world(1);
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.b = 1;
      options.parallel.recompute = false;
      options.global_batch = 4;
      options.sgd.lr = 0.05f;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, 4, 1, 1, 0, 66);
      sink->push_back(engine.evaluate(loader.next_batch(0)));
      sink->push_back(engine.train_step(loader.next_batch(0)));
      sink->push_back(engine.evaluate(loader.next_batch(1)));
    });
  }
  EXPECT_EQ(run1, run2);
  // The training loss (with dropout active) differs from the eval loss on
  // the same batch (dropout off) — evidence dropout was restored.
  EXPECT_NE(run1[0], run1[1]);
}

TEST(Evaluate, DoesNotMutateState) {
  model::GptConfig c = tiny();
  data::SyntheticCorpus corpus(c.vocab, 7);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  dist::World world(1);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    PtdpEngine engine(comm, options);
    std::vector<tensor::Tensor> before;
    for (model::Param* p : engine.params()) before.push_back(p->value.clone());
    data::ShardedLoader loader(dataset, 4, 1, 1, 0, 66);
    (void)engine.evaluate(loader.next_batch(0));
    std::size_t i = 0;
    for (model::Param* p : engine.params()) {
      EXPECT_EQ(tensor::max_abs_diff(p->value, before[i++]), 0.0f) << p->name;
      for (float g : p->grad.data()) EXPECT_EQ(g, 0.0f) << p->name;
    }
    EXPECT_EQ(engine.steps_completed(), 0);
  });
}

TEST(Bucketing, TrajectoryIndependentOfBucketSize) {
  model::GptConfig c = tiny();
  data::SyntheticCorpus corpus(c.vocab, 7);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  auto run = [&](std::int64_t bucket) {
    std::vector<float> losses;
    std::mutex mu;
    dist::World world(2);
    world.run([&](dist::Comm& comm) {
      EngineOptions options;
      options.model = c;
      options.parallel.d = 2;
      options.parallel.b = 1;
      options.parallel.recompute = false;
      options.global_batch = 4;
      options.optimizer = EngineOptions::Opt::kAdam;
      options.dp_bucket_elems = bucket;
      PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, 4, 1, 2, engine.groups().coord().data,
                                 66);
      for (int s = 0; s < 3; ++s) {
        const float loss = engine.train_step(loader.next_batch(s));
        if (comm.rank() == 0) {
          std::lock_guard lock(mu);
          losses.push_back(loss);
        }
      }
    });
    return losses;
  };
  const auto per_param = run(0);
  // Bucket sizes that split mid-list, fit everything, and are tiny
  // (every parameter alone, since cap < smallest grad forces flushes).
  for (std::int64_t bucket : {64, 1 << 16, 1 << 24, 1}) {
    const auto bucketed = run(bucket);
    ASSERT_EQ(bucketed.size(), per_param.size()) << "bucket=" << bucket;
    for (std::size_t i = 0; i < per_param.size(); ++i) {
      EXPECT_NEAR(bucketed[i], per_param[i], 1e-5f)
          << "bucket=" << bucket << " step=" << i;
    }
  }
}

}  // namespace
}  // namespace ptdp::core
