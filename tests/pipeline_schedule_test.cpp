// Schedule property tests: structural validity for a sweep of (p, m, v),
// in-flight activation bounds (GPipe stashes m, 1F1B at most p), and the
// logical makespan reproducing the paper's analytic bubble fractions
// exactly: (p-1)/m for GPipe and 1F1B, (p-1)/(v·m) for interleaved.

#include <gtest/gtest.h>

#include <tuple>

#include "ptdp/pipeline/schedule.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::pipeline {
namespace {

using Params = std::tuple<int, int>;  // (p, m)

class FlatScheduleTest : public ::testing::TestWithParam<Params> {};

TEST_P(FlatScheduleTest, GPipeIsValidOnEveryRank) {
  const auto [p, m] = GetParam();
  const ScheduleParams sp{ScheduleType::kGPipe, p, m, 1};
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(is_valid_rank_schedule(sp, build_rank_schedule(sp, r))) << "rank " << r;
  }
}

TEST_P(FlatScheduleTest, OneFOneBIsValidOnEveryRank) {
  const auto [p, m] = GetParam();
  const ScheduleParams sp{ScheduleType::kOneFOneB, p, m, 1};
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(is_valid_rank_schedule(sp, build_rank_schedule(sp, r))) << "rank " << r;
  }
}

TEST_P(FlatScheduleTest, GPipeStashesAllMicrobatches) {
  const auto [p, m] = GetParam();
  const ScheduleParams sp{ScheduleType::kGPipe, p, m, 1};
  EXPECT_EQ(max_in_flight(build_rank_schedule(sp, 0)), m);
}

TEST_P(FlatScheduleTest, OneFOneBStashesAtMostPipelineDepth) {
  // The key memory claim of §2.2.1: 1F1B keeps at most p microbatches
  // in flight instead of m.
  const auto [p, m] = GetParam();
  const ScheduleParams sp{ScheduleType::kOneFOneB, p, m, 1};
  for (int r = 0; r < p; ++r) {
    const int in_flight = max_in_flight(build_rank_schedule(sp, r));
    EXPECT_LE(in_flight, std::min(p, m)) << "rank " << r;
    EXPECT_EQ(in_flight, std::min(p - r, m)) << "rank " << r;
  }
}

TEST_P(FlatScheduleTest, GPipeAndOneFOneBHaveIdenticalBubble) {
  // §2.2.1: "The time spent in the bubble is the same for this new
  // schedule" — 1F1B wins on memory, not bubble.
  const auto [p, m] = GetParam();
  const double tf = 1.0, tb = 2.0;
  const double gpipe = simulate_makespan({ScheduleType::kGPipe, p, m, 1}, tf, tb);
  const double ofob = simulate_makespan({ScheduleType::kOneFOneB, p, m, 1}, tf, tb);
  EXPECT_DOUBLE_EQ(gpipe, ofob);
}

TEST_P(FlatScheduleTest, BubbleFractionMatchesAnalyticFormula) {
  const auto [p, m] = GetParam();
  const ScheduleParams sp{ScheduleType::kOneFOneB, p, m, 1};
  // Bubble formula is exact for any tf, tb (the paper notes the schedule
  // efficiency does not depend on the tb/tf ratio).
  for (auto [tf, tb] : {std::pair{1.0, 2.0}, {1.0, 1.0}, {3.0, 1.0}}) {
    EXPECT_NEAR(bubble_fraction(sp, tf, tb), analytic_bubble_fraction(sp), 1e-12)
        << "tf=" << tf << " tb=" << tb;
  }
}

INSTANTIATE_TEST_SUITE_P(PipelineShapes, FlatScheduleTest,
                         ::testing::Values(Params{1, 1}, Params{1, 4}, Params{2, 2},
                                           Params{2, 8}, Params{4, 4}, Params{4, 8},
                                           Params{4, 16}, Params{8, 8}, Params{8, 32},
                                           Params{3, 7}, Params{5, 11}));

using IntParams = std::tuple<int, int, int>;  // (p, m_multiplier, v)

class InterleavedScheduleTest : public ::testing::TestWithParam<IntParams> {};

TEST_P(InterleavedScheduleTest, IsValidOnEveryRank) {
  const auto [p, mult, v] = GetParam();
  const ScheduleParams sp{ScheduleType::kInterleaved, p, p * mult, v};
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(is_valid_rank_schedule(sp, build_rank_schedule(sp, r))) << "rank " << r;
  }
}

TEST_P(InterleavedScheduleTest, BubbleShrinksByChunkFactor) {
  // §2.2.2: interleaving reduces the bubble to (p-1)/(v·m). Exact when
  // m > p (the steady-state regime the formula describes).
  const auto [p, mult, v] = GetParam();
  if (mult <= 1) GTEST_SKIP() << "m == p is the degenerate all-fwd-all-bwd case";
  const ScheduleParams sp{ScheduleType::kInterleaved, p, p * mult, v};
  // Per-chunk time is the full stage time divided by v.
  const double tf = 1.0 / v, tb = 2.0 / v;
  EXPECT_NEAR(bubble_fraction(sp, tf, tb), analytic_bubble_fraction(sp), 1e-9);
}

TEST_P(InterleavedScheduleTest, BeatsNonInterleavedMakespan) {
  const auto [p, mult, v] = GetParam();
  if (p < 2) GTEST_SKIP();
  const int m = p * mult;
  const double flat =
      simulate_makespan({ScheduleType::kOneFOneB, p, m, 1}, 1.0, 2.0);
  const double inter =
      simulate_makespan({ScheduleType::kInterleaved, p, m, v}, 1.0 / v, 2.0 / v);
  EXPECT_LT(inter, flat);
}

TEST_P(InterleavedScheduleTest, InFlightBoundedByWarmupDepth) {
  // The interleaved warmup runs 2(p-r-1) + (v-1)p forwards before the first
  // backward, so the peak stash is p·v + p - 1 chunk-activations on rank 0 —
  // "comparable" to (slightly above) the non-interleaved p·v bound, and
  // still independent of m (the memory claim of §2.2.2).
  const auto [p, mult, v] = GetParam();
  const ScheduleParams sp{ScheduleType::kInterleaved, p, p * mult, v};
  const int total = sp.m * sp.v;
  for (int r = 0; r < p; ++r) {
    // m == p degenerates to all-forward-all-backward (warmup == total).
    const int bound =
        sp.m == p ? total : std::min(total, 2 * (p - r - 1) + (v - 1) * p + 1);
    EXPECT_LE(max_in_flight(build_rank_schedule(sp, r)), bound) << "rank " << r;
  }
  // And the bound is independent of m: doubling m leaves the peak unchanged
  // (outside the degenerate m == p case).
  if (mult > 1) {
    const ScheduleParams sp2{ScheduleType::kInterleaved, p, 2 * p * mult, v};
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(max_in_flight(build_rank_schedule(sp, r)),
                max_in_flight(build_rank_schedule(sp2, r)))
          << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InterleavedShapes, InterleavedScheduleTest,
                         ::testing::Values(IntParams{2, 2, 2}, IntParams{2, 4, 2},
                                           IntParams{4, 2, 2}, IntParams{4, 4, 2},
                                           IntParams{4, 2, 3}, IntParams{4, 2, 4},
                                           IntParams{8, 2, 2}, IntParams{2, 1, 2},
                                           IntParams{4, 1, 4}));

TEST(Schedule, InterleavedRequiresMicrobatchMultipleOfP) {
  EXPECT_THROW(build_rank_schedule({ScheduleType::kInterleaved, 4, 6, 2}, 0),
               CheckError);
}

TEST(Schedule, InterleavedRequiresRealPipeline) {
  EXPECT_THROW(build_rank_schedule({ScheduleType::kInterleaved, 1, 4, 2}, 0),
               CheckError);
}

TEST(Schedule, FlatSchedulesRejectMultipleChunks) {
  EXPECT_THROW(build_rank_schedule({ScheduleType::kOneFOneB, 2, 4, 2}, 0), CheckError);
  EXPECT_THROW(build_rank_schedule({ScheduleType::kGPipe, 2, 4, 2}, 0), CheckError);
}

TEST(Schedule, VirtualStageLayout) {
  // Device r's chunk c is virtual stage c*p + r (§2.2.2 layer striping).
  EXPECT_EQ(virtual_stage(0, 0, 4), 0);
  EXPECT_EQ(virtual_stage(3, 0, 4), 3);
  EXPECT_EQ(virtual_stage(0, 1, 4), 4);
  EXPECT_EQ(virtual_stage(3, 1, 4), 7);
}

TEST(Schedule, MakespanForSingleStageIsIdealTime) {
  const ScheduleParams sp{ScheduleType::kOneFOneB, 1, 8, 1};
  EXPECT_DOUBLE_EQ(simulate_makespan(sp, 1.0, 2.0), 8 * 3.0);
  EXPECT_DOUBLE_EQ(bubble_fraction(sp, 1.0, 2.0), 0.0);
}

TEST(Schedule, BubbleGrowsWithPipelineDepthShrinksWithMicrobatches) {
  // Fig. 6's monotonicity, at the schedule level.
  const double b1 = bubble_fraction({ScheduleType::kOneFOneB, 2, 8, 1}, 1, 2);
  const double b2 = bubble_fraction({ScheduleType::kOneFOneB, 4, 8, 1}, 1, 2);
  const double b3 = bubble_fraction({ScheduleType::kOneFOneB, 4, 32, 1}, 1, 2);
  EXPECT_LT(b1, b2);
  EXPECT_GT(b2, b3);
}

TEST(Schedule, NamesAreStable) {
  EXPECT_STREQ(schedule_name(ScheduleType::kGPipe), "gpipe");
  EXPECT_STREQ(schedule_name(ScheduleType::kOneFOneB), "1f1b");
  EXPECT_STREQ(schedule_name(ScheduleType::kInterleaved), "interleaved-1f1b");
}

}  // namespace
}  // namespace ptdp::pipeline
