// Tests for the thread-backed communicator: point-to-point messaging,
// ring collectives (verified against serial reference reductions), and
// MPI-style split. Property-swept over world sizes, including non-powers
// of two and lengths that do not divide evenly into ring chunks.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/runtime/rng.hpp"

namespace ptdp::dist {
namespace {

std::vector<float> rank_payload(int rank, std::size_t len) {
  std::vector<float> v(len);
  Rng rng(1234, substream(static_cast<std::uint64_t>(rank)));
  for (auto& x : v) x = static_cast<float>(rng.next_uniform(-1.0, 1.0));
  return v;
}

TEST(World, RunsEveryRankExactlyOnce) {
  World world(6);
  std::vector<std::atomic<int>> hits(6);
  world.run([&](Comm& comm) { hits[static_cast<std::size_t>(comm.rank())]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(World, PropagatesRankExceptions) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
                 // Other ranks exit cleanly without waiting on rank 2.
               }),
               std::runtime_error);
}

TEST(Comm, SendRecvDeliversPayload) {
  World world(2);
  world.run([](Comm& comm) {
    std::vector<float> buf{1.5f, -2.5f, 3.25f};
    if (comm.rank() == 0) {
      comm.send(std::span<const float>(buf), 1, /*tag=*/7);
    } else {
      std::vector<float> got(3, 0.f);
      comm.recv(std::span<float>(got), 0, /*tag=*/7);
      EXPECT_EQ(got, buf);
    }
  });
}

TEST(Comm, TagsDisambiguateOutOfOrderMessages) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const float a = 1.f, b = 2.f;
      comm.send(std::span<const float>(&a, 1), 1, /*tag=*/100);
      comm.send(std::span<const float>(&b, 1), 1, /*tag=*/200);
    } else {
      float b = 0.f, a = 0.f;
      // Receive in the opposite order of sending.
      comm.recv(std::span<float>(&b, 1), 0, /*tag=*/200);
      comm.recv(std::span<float>(&a, 1), 0, /*tag=*/100);
      EXPECT_EQ(a, 1.f);
      EXPECT_EQ(b, 2.f);
    }
  });
}

TEST(Comm, SameTagMessagesDeliverFifo) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (float v : {1.f, 2.f, 3.f}) {
        comm.send(std::span<const float>(&v, 1), 1, /*tag=*/5);
      }
    } else {
      for (float expect : {1.f, 2.f, 3.f}) {
        float got = 0.f;
        comm.recv(std::span<float>(&got, 1), 0, /*tag=*/5);
        EXPECT_EQ(got, expect);
      }
    }
  });
}

TEST(Comm, SendRecvOfTrivialStructs) {
  struct Msg {
    int a;
    double b;
  };
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const Msg m{42, 2.718};
      comm.send(std::span<const Msg>(&m, 1), 1);
    } else {
      Msg m{};
      comm.recv(std::span<Msg>(&m, 1), 0);
      EXPECT_EQ(m.a, 42);
      EXPECT_DOUBLE_EQ(m.b, 2.718);
    }
  });
}

// ---- nonblocking point-to-point (Request) ---------------------------------

TEST(CommRequest, IsendIsBornComplete) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> buf{7.f, 8.f};
      Request req = comm.isend(std::span<const float>(buf), 1, /*tag=*/3);
      EXPECT_TRUE(req.done());  // buffered transport: payload already copied
      buf[0] = -1.f;            // reuse immediately, receiver sees original
    } else {
      std::vector<float> got(2, 0.f);
      comm.recv(std::span<float>(got), 0, /*tag=*/3);
      EXPECT_EQ(got, (std::vector<float>{7.f, 8.f}));
    }
  });
}

TEST(CommRequest, TestPollsWithoutBlocking) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      float got = 0.f;
      Request req = comm.irecv(std::span<float>(&got, 1), 0, /*tag=*/11);
      // The sender blocks on our go-signal, so the message cannot be in
      // flight yet: test() must report not-done without blocking.
      EXPECT_FALSE(req.test());
      EXPECT_FALSE(req.done());
      const std::uint8_t go = 1;
      comm.send(std::span<const std::uint8_t>(&go, 1), 0, /*tag=*/12);
      req.wait();
      EXPECT_TRUE(req.done());
      EXPECT_EQ(got, 42.f);
    } else {
      std::uint8_t go = 0;
      comm.recv(std::span<std::uint8_t>(&go, 1), 1, /*tag=*/12);
      const float v = 42.f;
      comm.send(std::span<const float>(&v, 1), 1, /*tag=*/11);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(CommRequest, TestCompletesOnceMessageArrives) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const float v = 5.f;
      comm.send(std::span<const float>(&v, 1), 1, /*tag=*/21);
    } else {
      float got = 0.f;
      Request req = comm.irecv(std::span<float>(&got, 1), 0, /*tag=*/21);
      while (!req.test()) {
        std::this_thread::yield();
      }
      EXPECT_EQ(got, 5.f);
      req.wait();  // wait() after completion is a no-op
    }
  });
}

TEST(CommRequest, PrepostedRecvsMatchDistinctTags) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      // Sends in the *reverse* order of the receiver's posts: tags route
      // each payload to the right pre-posted buffer regardless.
      const float b = 2.f, a = 1.f;
      comm.send(std::span<const float>(&b, 1), 1, /*tag=*/200);
      comm.send(std::span<const float>(&a, 1), 1, /*tag=*/100);
    } else {
      float a = 0.f, b = 0.f;
      Request ra = comm.irecv(std::span<float>(&a, 1), 0, /*tag=*/100);
      Request rb = comm.irecv(std::span<float>(&b, 1), 0, /*tag=*/200);
      ra.wait();
      rb.wait();
      EXPECT_EQ(a, 1.f);
      EXPECT_EQ(b, 2.f);
    }
  });
}

TEST(CommRequest, SameChannelRequestsCompleteFifo) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (float v : {1.f, 2.f}) {
        comm.send(std::span<const float>(&v, 1), 1, /*tag=*/5);
      }
    } else {
      float first = 0.f, second = 0.f;
      Request r1 = comm.irecv(std::span<float>(&first, 1), 0, /*tag=*/5);
      Request r2 = comm.irecv(std::span<float>(&second, 1), 0, /*tag=*/5);
      // Completion order is the caller's choice; payload order is FIFO in
      // *completion* order on the shared channel.
      r2.wait();
      r1.wait();
      EXPECT_EQ(second, 1.f);
      EXPECT_EQ(first, 2.f);
    }
  });
}

TEST(CommRequest, MoveTransfersObligation) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const float v = 9.f;
      comm.send(std::span<const float>(&v, 1), 1, /*tag=*/31);
    } else {
      float got = 0.f;
      Request req = comm.irecv(std::span<float>(&got, 1), 0, /*tag=*/31);
      Request moved = std::move(req);
      EXPECT_TRUE(req.done());  // NOLINT(bugprone-use-after-move): emptied
      moved.wait();
      EXPECT_EQ(got, 9.f);
    }
  });
}

class CommCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectiveTest, BarrierCompletesRepeatedly) {
  World world(GetParam());
  world.run([](Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST_P(CommCollectiveTest, BroadcastFromEveryRoot) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<float> data =
          comm.rank() == root ? rank_payload(root, 17) : std::vector<float>(17, 0.f);
      comm.broadcast(std::span<float>(data), root);
      EXPECT_EQ(data, rank_payload(root, 17)) << "root=" << root;
    }
  });
}

TEST_P(CommCollectiveTest, AllReduceSumMatchesSerialReference) {
  const int n = GetParam();
  // Lengths chosen to stress uneven ring chunking (len % n != 0).
  for (std::size_t len : {1ul, 7ul, 64ul, 257ul}) {
    std::vector<float> expected(len, 0.f);
    for (int r = 0; r < n; ++r) {
      auto v = rank_payload(r, len);
      for (std::size_t i = 0; i < len; ++i) expected[i] += v[i];
    }
    World world(n);
    world.run([&](Comm& comm) {
      auto data = rank_payload(comm.rank(), len);
      comm.all_reduce(std::span<float>(data));
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(data[i], expected[i], 1e-4f) << "len=" << len << " i=" << i;
      }
    });
  }
}

TEST_P(CommCollectiveTest, AllReduceMaxAndMin) {
  const int n = GetParam();
  const std::size_t len = 33;
  std::vector<float> expected_max(len, -1e30f), expected_min(len, 1e30f);
  for (int r = 0; r < n; ++r) {
    auto v = rank_payload(r, len);
    for (std::size_t i = 0; i < len; ++i) {
      expected_max[i] = std::max(expected_max[i], v[i]);
      expected_min[i] = std::min(expected_min[i], v[i]);
    }
  }
  World world(n);
  world.run([&](Comm& comm) {
    auto hi = rank_payload(comm.rank(), len);
    comm.all_reduce(std::span<float>(hi), ReduceOp::kMax);
    auto lo = rank_payload(comm.rank(), len);
    comm.all_reduce(std::span<float>(lo), ReduceOp::kMin);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(hi[i], expected_max[i]);
      ASSERT_EQ(lo[i], expected_min[i]);
    }
  });
}

TEST_P(CommCollectiveTest, AllReduceDouble) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    std::vector<double> data(11, static_cast<double>(comm.rank() + 1));
    comm.all_reduce(std::span<double>(data));
    const double expect = n * (n + 1) / 2.0;
    for (double v : data) ASSERT_DOUBLE_EQ(v, expect);
  });
}

TEST_P(CommCollectiveTest, ReduceScatterMatchesSerialReference) {
  const int n = GetParam();
  const std::size_t shard = 9;
  const std::size_t len = shard * static_cast<std::size_t>(n);
  std::vector<float> expected(len, 0.f);
  for (int r = 0; r < n; ++r) {
    auto v = rank_payload(r, len);
    for (std::size_t i = 0; i < len; ++i) expected[i] += v[i];
  }
  World world(n);
  world.run([&](Comm& comm) {
    auto in = rank_payload(comm.rank(), len);
    std::vector<float> out(shard, 0.f);
    comm.reduce_scatter(std::span<const float>(in), std::span<float>(out));
    for (std::size_t i = 0; i < shard; ++i) {
      ASSERT_NEAR(out[i], expected[static_cast<std::size_t>(comm.rank()) * shard + i],
                  1e-4f);
    }
  });
}

TEST_P(CommCollectiveTest, AllGatherConcatenatesInRankOrder) {
  const int n = GetParam();
  const std::size_t shard = 13;
  World world(n);
  world.run([&](Comm& comm) {
    auto in = rank_payload(comm.rank(), shard);
    std::vector<float> out(shard * static_cast<std::size_t>(n), 0.f);
    comm.all_gather(std::span<const float>(in), std::span<float>(out));
    for (int r = 0; r < n; ++r) {
      auto expect = rank_payload(r, shard);
      for (std::size_t i = 0; i < shard; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(r) * shard + i], expect[i]);
      }
    }
  });
}

TEST_P(CommCollectiveTest, AllGatherVariablePayloads) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    // Rank r contributes r+1 bytes of value r.
    std::vector<std::uint8_t> in(static_cast<std::size_t>(comm.rank() + 1),
                                 static_cast<std::uint8_t>(comm.rank()));
    auto all = comm.all_gather_variable(in);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      for (auto b : all[static_cast<std::size_t>(r)]) {
        ASSERT_EQ(b, static_cast<std::uint8_t>(r));
      }
    }
  });
}

TEST_P(CommCollectiveTest, AllReduceScalarConvenience) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    const float sum = comm.all_reduce_scalar(1.0f);
    EXPECT_EQ(sum, static_cast<float>(n));
    const float mx =
        comm.all_reduce_scalar(static_cast<float>(comm.rank()), ReduceOp::kMax);
    EXPECT_EQ(mx, static_cast<float>(n - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommCollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(CommSplit, EvenOddSplitGroupsByColor) {
  World world(6);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    EXPECT_EQ(sub.world_rank(), comm.rank());
    // Members are the same-parity ranks, ascending.
    for (int r = 0; r < sub.size(); ++r) {
      EXPECT_EQ(sub.world_rank_of(r), 2 * r + comm.rank() % 2);
    }
  });
}

TEST(CommSplit, KeyControlsOrderingWithinColor) {
  World world(4);
  world.run([](Comm& comm) {
    // Reverse ordering: higher parent rank gets lower key.
    Comm sub = comm.split(0, /*key=*/comm.size() - comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(CommSplit, SubCommunicatorCollectivesAreIsolated) {
  World world(6);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Sum of parent ranks within each parity group.
    float v = static_cast<float>(comm.rank());
    v = sub.all_reduce_scalar(v);
    const float expect = comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_EQ(v, expect);
  });
}

TEST(CommSplit, NestedSplitsWork) {
  World world(8);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());  // two groups of 4
    Comm quarter = half.split(half.rank() / 2, half.rank());  // four groups of 2
    EXPECT_EQ(quarter.size(), 2);
    const float sum = quarter.all_reduce_scalar(static_cast<float>(comm.rank()));
    // Partner differs by exactly 1 in world rank (pairs 0-1, 2-3, ...).
    const int base = comm.rank() - comm.rank() % 2;
    EXPECT_EQ(sum, static_cast<float>(base + base + 1));
  });
}

TEST(CommSplit, SequentialSplitsGetDistinctIds) {
  World world(2);
  world.run([](Comm& comm) {
    Comm a = comm.split(0, comm.rank());
    Comm b = comm.split(0, comm.rank());
    EXPECT_NE(a.id(), b.id());
    // Traffic on `a` must not be readable on `b`: send on a, tag 0.
    if (comm.rank() == 0) {
      const float x = 5.f;
      a.send(std::span<const float>(&x, 1), 1, 0);
      const float y = 6.f;
      b.send(std::span<const float>(&y, 1), 1, 0);
    } else {
      float y = 0.f;
      b.recv(std::span<float>(&y, 1), 0, 0);
      EXPECT_EQ(y, 6.f);
      float x = 0.f;
      a.recv(std::span<float>(&x, 1), 0, 0);
      EXPECT_EQ(x, 5.f);
    }
  });
}

TEST(Comm, ManyRanksStressAllReduce) {
  // Oversubscribed threads on one core: exercises scheduling robustness.
  const int n = 16;
  World world(n);
  world.run([n](Comm& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      std::vector<float> data(101, 1.0f);
      comm.all_reduce(std::span<float>(data));
      for (float v : data) ASSERT_EQ(v, static_cast<float>(n));
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

}  // namespace
}  // namespace ptdp::dist
