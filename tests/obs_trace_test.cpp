// ptdp::obs tracer + metrics tests: tag-space decoding, mode gating, span
// recording, ring overflow accounting, Chrome JSON export shape, the
// metrics registry, and per-(rank, group) comm volumes from a real World
// run. The tracer and registry are process-wide singletons, so every test
// resets them and restores kOff on exit.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ptdp/dist/tags.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"

namespace ptdp::obs {
namespace {

class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().set_thread_capacity(std::size_t{1} << 15);
    MetricsRegistry::instance().reset();
    Tracer::instance().set_mode(TraceMode::kOff);
    bind_rank(-1);
  }
  void TearDown() override {
    Tracer::instance().set_mode(TraceMode::kOff);
    Tracer::instance().reset();
    MetricsRegistry::instance().reset();
    bind_rank(-1);
  }
};

using ObsTagsTest = ObsFixture;
using ObsTraceTest = ObsFixture;
using ObsMetricsTest = ObsFixture;

TEST_F(ObsTagsTest, PipelineTagRoundTrips) {
  namespace tags = dist::tags;
  for (const bool backward : {false, true}) {
    for (const bool eval : {false, true}) {
      for (const std::int64_t mb : {std::int64_t{0}, std::int64_t{7},
                                    (std::int64_t{1} << 38) - 1}) {
        for (const int chunk : {0, 3, 255}) {
          const std::uint64_t tag = tags::make_pipeline_tag(backward, eval, mb, chunk);
          EXPECT_LT(tag, tags::kUserTagLimit);
          EXPECT_FALSE(tags::is_collective(tag));
          const tags::DecodedTag d = tags::decode(tag);
          EXPECT_EQ(d.backward, backward);
          EXPECT_EQ(d.eval, eval);
          EXPECT_EQ(d.microbatch, mb);
          EXPECT_EQ(d.chunk, chunk);
        }
      }
    }
  }
}

TEST_F(ObsTagsTest, CollectiveTagsAreDisjointFromPipelineTags) {
  namespace tags = dist::tags;
  for (const std::uint64_t t :
       {tags::kBarrierTag, tags::kBroadcastTag, tags::kAllReduceTag,
        tags::kReduceScatterTag, tags::kAllGatherTag, tags::kAllGatherVarTag}) {
    EXPECT_TRUE(tags::is_collective(t));
    EXPECT_GE(t, tags::kUserTagLimit);
  }
  // The whole pipeline-tag range sits strictly below the collective range.
  const std::uint64_t max_pipeline = tags::make_pipeline_tag(
      true, true, (std::int64_t{1} << 38) - 1, 255);
  EXPECT_LT(max_pipeline, tags::kCollectiveBase);
}

TEST_F(ObsTraceTest, OffModeRecordsNothing) {
  { Span span("never", Cat::kCompute); }
  instant("never_instant", Cat::kRuntime);
  EXPECT_EQ(Tracer::instance().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(ObsTraceTest, MetricsOnlyModeRecordsNoSpans) {
  Tracer::instance().set_mode(TraceMode::kMetricsOnly);
  EXPECT_TRUE(metrics_on());
  EXPECT_FALSE(spans_on());
  { Span span("never", Cat::kCompute); }
  EXPECT_EQ(Tracer::instance().events_recorded(), 0u);
}

TEST_F(ObsTraceTest, SpanRecordsDurationsAndArgs) {
  Tracer::instance().set_mode(TraceMode::kFull);
  bind_rank(3);
  {
    Span span("work", Cat::kCompute, {{"mb", 5}, {"vs", 2}});
    span.arg("bytes", 1024);
  }
  instant("marker", Cat::kRuntime, {{"step", 7}});
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& span_ev = events[0].wall_ns >= 0 ? events[0] : events[1];
  const TraceEvent& inst_ev = events[0].wall_ns >= 0 ? events[1] : events[0];
  EXPECT_STREQ(span_ev.name, "work");
  EXPECT_EQ(span_ev.rank, 3);
  EXPECT_GE(span_ev.wall_ns, 0);
  EXPECT_EQ(span_ev.arg("mb", -1), 5);
  EXPECT_EQ(span_ev.arg("vs", -1), 2);
  EXPECT_EQ(span_ev.arg("bytes", -1), 1024);
  EXPECT_EQ(span_ev.arg("missing", -42), -42);
  EXPECT_STREQ(inst_ev.name, "marker");
  EXPECT_EQ(inst_ev.wall_ns, -1);
  EXPECT_EQ(inst_ev.arg("step", -1), 7);
}

TEST_F(ObsTraceTest, RingOverflowKeepsNewestAndCountsDrops) {
  Tracer::instance().set_thread_capacity(16);
  Tracer::instance().set_mode(TraceMode::kFull);
  for (int i = 0; i < 40; ++i) {
    instant("tick", Cat::kRuntime, {{"i", i}});
  }
  const auto events = Tracer::instance().snapshot();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(Tracer::instance().events_recorded(), 40u);
  EXPECT_EQ(Tracer::instance().events_dropped(), 24u);
  // Survivors are the newest 24..39, oldest-first.
  EXPECT_EQ(events.front().arg("i", -1), 24);
  EXPECT_EQ(events.back().arg("i", -1), 39);
}

TEST_F(ObsTraceTest, SnapshotMergesThreadsSortedByTimestamp) {
  Tracer::instance().set_mode(TraceMode::kFull);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([r] {
      bind_rank(r);
      for (int i = 0; i < 8; ++i) instant("t", Cat::kRuntime, {{"i", i}});
    });
  }
  for (auto& t : threads) t.join();
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 32u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST_F(ObsTraceTest, ChromeJsonHasSchemaAndThreadNames) {
  Tracer::instance().set_mode(TraceMode::kFull);
  bind_rank(1);
  { Span span("fwd", Cat::kCompute, {{"mb", 0}}); }
  instant("fault", Cat::kRuntime);
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("\"ptdp-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // rank thread name
  EXPECT_NE(json.find("rank 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fwd\""), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ptdp_obs_trace_test.json").string();
  ASSERT_TRUE(Tracer::instance().write_chrome_json(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST_F(ObsTraceTest, ResetDropsEverything) {
  Tracer::instance().set_mode(TraceMode::kFull);
  instant("x", Cat::kRuntime);
  EXPECT_EQ(Tracer::instance().events_recorded(), 1u);
  Tracer::instance().reset();
  EXPECT_EQ(Tracer::instance().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  // The thread re-registers transparently after a reset.
  instant("y", Cat::kRuntime);
  EXPECT_EQ(Tracer::instance().events_recorded(), 1u);
}

TEST_F(ObsMetricsTest, CountersGaugesHistograms) {
  auto& metrics = MetricsRegistry::instance();
  Counter& c = metrics.counter("test.count");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  EXPECT_EQ(&metrics.counter("test.count"), &c);  // stable reference

  metrics.gauge("test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("test.gauge").value(), 2.5);

  Histogram& h = metrics.histogram("test.ms", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_NEAR(h.mean(), (0.5 + 5.0 + 50.0 + 5000.0) / 4.0, 1e-9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.quantile_bound(0.5), 10.0);
}

TEST_F(ObsMetricsTest, JsonIsWellFormedEnough) {
  auto& metrics = MetricsRegistry::instance();
  metrics.counter("a").add(1);
  metrics.gauge("g").set(1.0);
  metrics.histogram("h").observe(3.0);
  const std::string json = metrics.json();
  EXPECT_NE(json.find("\"ptdp-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":1"), std::string::npos);
  // Balanced braces/brackets (the serializer is hand-rolled).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsMetricsTest, WorldRunFillsPerRankVolumes) {
  Tracer::instance().set_mode(TraceMode::kMetricsOnly);
  auto& metrics = MetricsRegistry::instance();
  constexpr std::size_t kElems = 128;
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    metrics.name_comm_group(comm.id(), "world");
    std::vector<float> buf(kElems, static_cast<float>(comm.rank()));
    if (comm.rank() == 0) {
      comm.send(std::span<const float>(buf), 1, /*tag=*/9);
    } else {
      comm.recv(std::span<float>(buf), 0, /*tag=*/9);
    }
    comm.barrier();
  });
  const auto r0 = metrics.group_total("world", 0);
  const auto r1 = metrics.group_total("world", 1);
  EXPECT_EQ(r0.p2p_sends, 1u);
  EXPECT_EQ(r0.p2p_send_bytes, kElems * sizeof(float));
  EXPECT_EQ(r0.p2p_recvs, 0u);
  EXPECT_EQ(r1.p2p_recvs, 1u);
  EXPECT_EQ(r1.p2p_recv_bytes, kElems * sizeof(float));
  // One barrier call per rank; its token traffic lands in coll bytes.
  EXPECT_EQ(r0.collective_ops, 1u);
  EXPECT_EQ(r1.collective_ops, 1u);
  EXPECT_GT(r0.coll_send_bytes, 0u);

  const auto rows = metrics.comm_report();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rank, 0);
  EXPECT_EQ(rows[0].group, "world");
  EXPECT_EQ(rows[1].rank, 1);
}

TEST_F(ObsMetricsTest, DisabledModeRecordsNoVolumes) {
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    float x = 1.0f;
    if (comm.rank() == 0) {
      comm.send(std::span<const float>(&x, 1), 1);
    } else {
      comm.recv(std::span<float>(&x, 1), 0);
    }
  });
  EXPECT_TRUE(MetricsRegistry::instance().comm_report().empty());
}

}  // namespace
}  // namespace ptdp::obs
