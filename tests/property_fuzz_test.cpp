// Randomized property tests: instead of hand-picked cases, sweep random
// shapes/configurations (deterministically seeded) and assert invariants —
// GEMM against the naive reference, schedule validity and bubble laws,
// collective correctness under random world sizes and lengths, analytic
// monotonicities, and planner output well-formedness.

#include <gtest/gtest.h>

#include <vector>

#include "ptdp/core/planner.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/transformer_layer.hpp"
#include "ptdp/pipeline/schedule.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp {
namespace {

using tensor::Tensor;

TEST(FuzzGemm, RandomShapesMatchNaiveReference) {
  Rng rng(0xF0);
  for (int trial = 0; trial < 60; ++trial) {
    const auto m = static_cast<std::int64_t>(1 + rng.next_below(12));
    const auto k = static_cast<std::int64_t>(1 + rng.next_below(12));
    const auto n = static_cast<std::int64_t>(1 + rng.next_below(12));
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c = tensor::matmul(a, b);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0;
        for (std::int64_t p = 0; p < k; ++p) acc += a.at({i, p}) * b.at({p, j});
        ASSERT_NEAR(c.at({i, j}), acc, 1e-4f)
            << "(" << m << "," << k << "," << n << ") @ " << i << "," << j;
      }
    }
    // Transposed variants agree with explicit transposes.
    Tensor bt = Tensor::randn({n, k}, rng);
    ASSERT_TRUE(tensor::allclose(tensor::matmul_nt(a, bt),
                                 tensor::matmul(a, bt.transpose(0, 1)), 1e-4f,
                                 1e-5f));
    Tensor at = Tensor::randn({k, m}, rng);
    ASSERT_TRUE(tensor::allclose(tensor::matmul_tn(at, b),
                                 tensor::matmul(at.transpose(0, 1), b), 1e-4f,
                                 1e-5f));
  }
}

TEST(FuzzGemm, BatchedAgainstLooped) {
  Rng rng(0xF1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto bs = static_cast<std::int64_t>(1 + rng.next_below(4));
    const auto m = static_cast<std::int64_t>(1 + rng.next_below(6));
    const auto k = static_cast<std::int64_t>(1 + rng.next_below(6));
    const auto n = static_cast<std::int64_t>(1 + rng.next_below(6));
    Tensor a = Tensor::randn({bs, m, k}, rng);
    Tensor b = Tensor::randn({bs, k, n}, rng);
    Tensor c = tensor::bmm(a, b);
    for (std::int64_t i = 0; i < bs; ++i) {
      Tensor ci = tensor::matmul(a.slice(0, i, 1).view({m, k}),
                                 b.slice(0, i, 1).view({k, n}));
      ASSERT_TRUE(tensor::allclose(c.slice(0, i, 1).view({m, n}), ci, 1e-4f, 1e-5f));
    }
  }
}

TEST(FuzzSchedule, RandomConfigurationsSatisfyInvariants) {
  Rng rng(0xF2);
  int tried = 0;
  for (int trial = 0; trial < 200 && tried < 120; ++trial) {
    const int p = static_cast<int>(1 + rng.next_below(8));
    const int m = static_cast<int>(1 + rng.next_below(24));
    const int pick = static_cast<int>(rng.next_below(3));
    pipeline::ScheduleParams sp;
    sp.p = p;
    sp.m = m;
    if (pick == 0) {
      sp.type = pipeline::ScheduleType::kGPipe;
      sp.v = 1;
    } else if (pick == 1) {
      sp.type = pipeline::ScheduleType::kOneFOneB;
      sp.v = 1;
    } else {
      sp.type = pipeline::ScheduleType::kInterleaved;
      sp.v = static_cast<int>(2 + rng.next_below(3));
      if (p < 2 || m % p != 0) continue;  // constraint of §2.2.2
    }
    ++tried;
    for (int r = 0; r < p; ++r) {
      ASSERT_TRUE(pipeline::is_valid_rank_schedule(
          sp, pipeline::build_rank_schedule(sp, r)))
          << "p=" << p << " m=" << m << " v=" << sp.v << " type=" << pick
          << " rank=" << r;
    }
    // Makespan is at least the ideal time, and the bubble is non-negative
    // and bounded by the GPipe bubble.
    const double tf = 0.5 + rng.next_uniform();
    const double tb = 0.5 + 2.0 * rng.next_uniform();
    const double bubble = pipeline::bubble_fraction(sp, tf / sp.v, tb / sp.v);
    ASSERT_GE(bubble, -1e-9);
    ASSERT_LE(bubble, static_cast<double>(p - 1) / m + 1e-9)
        << "p=" << p << " m=" << m << " v=" << sp.v;
  }
  ASSERT_GE(tried, 100);
}

TEST(FuzzComm, RandomWorldsRandomLengths) {
  Rng cfg_rng(0xF3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(1 + cfg_rng.next_below(7));
    const std::size_t len = static_cast<std::size_t>(1 + cfg_rng.next_below(97));
    const std::uint64_t seed = cfg_rng.next_u64();
    // Reference sum.
    std::vector<float> expected(len, 0.f);
    for (int r = 0; r < n; ++r) {
      Rng rr(seed, static_cast<std::uint64_t>(r));
      for (auto& v : expected) v += static_cast<float>(rr.next_uniform(-1, 1));
    }
    dist::World world(n);
    world.run([&](dist::Comm& comm) {
      Rng rr(seed, static_cast<std::uint64_t>(comm.rank()));
      std::vector<float> data(len);
      for (auto& v : data) v = static_cast<float>(rr.next_uniform(-1, 1));
      comm.all_reduce(std::span<float>(data));
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(data[i], expected[i], 1e-4f)
            << "n=" << n << " len=" << len << " i=" << i;
      }
    });
    ASSERT_EQ(world.pending_messages(), 0u);
  }
}

TEST(FuzzTransformerLayer, RandomTinyConfigsMatchSerial) {
  Rng cfg_rng(0xF4);
  for (int trial = 0; trial < 4; ++trial) {
    model::GptConfig c;
    c.heads = static_cast<std::int64_t>(2 * (1 + cfg_rng.next_below(3)));  // 2,4,6
    c.hidden = c.heads * static_cast<std::int64_t>(4 * (1 + cfg_rng.next_below(2)));
    c.vocab = 16;
    c.seq = static_cast<std::int64_t>(2 + cfg_rng.next_below(5));
    c.num_layers = 1;
    c.seed = cfg_rng.next_u64();
    const int t = c.heads % 4 == 0 && cfg_rng.next_bernoulli(0.5) ? 4 : 2;
    if (c.heads % t != 0) continue;

    Rng xrng(c.seed, 1);
    Tensor x = Tensor::randn({c.seq, 2, c.hidden}, xrng);
    Tensor dy = Tensor::randn({c.seq, 2, c.hidden}, xrng);
    dist::Comm solo = dist::Comm::solo();
    model::TransformerLayer ref(c, 0, solo);
    model::LayerCache ref_cache;
    Tensor ref_y = ref.forward(x, ref_cache, 1);
    Tensor ref_dx = ref.backward(dy, ref_cache);

    dist::World world(t);
    world.run([&](dist::Comm& comm) {
      model::TransformerLayer layer(c, 0, comm);
      model::LayerCache cache;
      ASSERT_TRUE(tensor::allclose(layer.forward(x, cache, 1), ref_y, 1e-3f, 1e-4f))
          << "heads=" << c.heads << " hidden=" << c.hidden << " t=" << t;
      ASSERT_TRUE(tensor::allclose(layer.backward(dy, cache), ref_dx, 1e-3f, 1e-4f));
    });
  }
}

TEST(FuzzAnalytics, Monotonicities) {
  Rng rng(0xF5);
  for (int trial = 0; trial < 40; ++trial) {
    model::GptConfig m;
    m.num_layers = static_cast<std::int64_t>(8 * (1 + rng.next_below(8)));
    m.hidden = static_cast<std::int64_t>(1024 * (1 + rng.next_below(16)));
    m.heads = 32;
    m.vocab = 51200;
    m.seq = 2048;
    core::ParallelConfig cfg;
    cfg.p = static_cast<int>(1 << rng.next_below(4));
    cfg.t = static_cast<int>(1 << rng.next_below(4));
    cfg.d = static_cast<int>(1 << rng.next_below(3));
    cfg.b = static_cast<std::int64_t>(1 << rng.next_below(3));
    if (m.num_layers % cfg.p != 0) continue;
    const std::int64_t B = cfg.b * cfg.d * (1 + static_cast<std::int64_t>(
                                                    rng.next_below(16)));

    // Bubble: decreasing in batch size, increasing in p.
    ASSERT_GE(core::bubble_fraction(cfg, B), core::bubble_fraction(cfg, 2 * B));
    core::ParallelConfig deeper = cfg;
    deeper.p *= 2;
    ASSERT_LE(core::bubble_fraction(cfg, B), core::bubble_fraction(deeper, B));

    // Memory: recompute never uses more activation memory than stashing.
    ASSERT_LE(core::activation_bytes_per_layer(m, cfg.b, true),
              core::activation_bytes_per_layer(m, cfg.b, false));

    // Tensor-parallel comm: increasing in t (per-device volume).
    core::ParallelConfig wider = cfg;
    wider.t *= 2;
    ASSERT_LE(core::tensor_parallel_bytes_per_microbatch(m, cfg),
              core::tensor_parallel_bytes_per_microbatch(m, wider) + 1e-6);

    // Scatter/gather never increases p2p bytes.
    core::ParallelConfig sg = cfg;
    sg.scatter_gather = true;
    ASSERT_LE(core::pipeline_p2p_bytes_per_microbatch(m, sg),
              core::pipeline_p2p_bytes_per_microbatch(m, cfg));
  }
}

TEST(FuzzPlanner, OutputsAlwaysWellFormed) {
  Rng rng(0xF6);
  int planned = 0;
  for (int trial = 0; trial < 12 && planned < 8; ++trial) {
    core::PlannerInput input;
    input.model.num_layers = static_cast<std::int64_t>(12 * (1 + rng.next_below(4)));
    input.model.hidden = static_cast<std::int64_t>(2048 * (1 + rng.next_below(4)));
    input.model.heads = 32;
    input.model.vocab = 51200;
    input.model.seq = 2048;
    input.n_gpus = static_cast<std::int64_t>(8 << rng.next_below(5));
    input.global_batch = static_cast<std::int64_t>(128 << rng.next_below(3));
    core::Plan plan;
    try {
      plan = core::plan_configuration(input);
    } catch (const CheckError&) {
      continue;  // genuinely infeasible point
    }
    ++planned;
    for (const auto& cand : plan.feasible) {
      ASSERT_EQ(cand.config.n(), input.n_gpus);
      ASSERT_NO_THROW(cand.config.validate(input.model, input.global_batch));
      ASSERT_TRUE(cand.memory.fits(input.gpu_memory_bytes));
      ASSERT_GT(cand.est_batch_seconds, 0.0);
    }
  }
  ASSERT_GE(planned, 4);
}

}  // namespace
}  // namespace ptdp
