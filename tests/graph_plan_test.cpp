// ptdp::graph planner tests (DESIGN.md §14):
//   1. The builder emits the canonical unfused block and the fusion pass
//      rewrites it to exactly the kernel sequence of the hand-written eager
//      bodies (golden IR checks, pass by pass).
//   2. Fusion legality: pinned intermediates block their pattern.
//   3. Buffer planning: values sharing an arena slot have disjoint lifetimes
//      and identical (bytes, dtype); every planned value gets a slot.
//   4. §13 dtype propagation marks exactly the cached GEMM inputs bf16.
//   5. Graph execution is bitwise-identical to the eager bodies — forward,
//      backward, and the recompute plan transformation.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/graph/builder.hpp"
#include "ptdp/graph/executor.hpp"
#include "ptdp/graph/passes.hpp"
#include "ptdp/model/transformer_layer.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::graph {
namespace {

using model::GptConfig;
using tensor::Tensor;

GptConfig tiny_config(float dropout = 0.0f) {
  GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = dropout;
  c.seed = 4242;
  return c;
}

std::vector<OpKind> kinds(const std::vector<Node>& seg) {
  std::vector<OpKind> out;
  for (const Node& n : seg) out.push_back(n.kind);
  return out;
}

ValueId find_value(const LayerPlan& plan, const std::string& name) {
  for (std::size_t i = 0; i < plan.values.size(); ++i) {
    if (plan.values[i].name == name) return static_cast<ValueId>(i);
  }
  return kNoValue;
}

// ---- 1. golden IR, pass by pass -------------------------------------------

TEST(GraphBuilder, UnfusedForwardIsTheCanonicalBlock) {
  const LayerPlan plan =
      build_unfused_layer_plan(tiny_config(), /*with_dropout=*/true);
  const std::vector<OpKind> want = {
      OpKind::kView2D,       OpKind::kLayerNorm,      OpKind::kLinearFwd,
      OpKind::kAttnSplitHeads, OpKind::kBmmNT,        OpKind::kScale,
      OpKind::kMaskFill,     OpKind::kSoftmax,        OpKind::kAttnProbMask,
      OpKind::kMul,          OpKind::kBmm,            OpKind::kAttnMergeHeads,
      OpKind::kLinearFwd,    OpKind::kAddBias,        OpKind::kDropout,
      OpKind::kAdd,          OpKind::kLayerNorm,      OpKind::kLinearFwd,
      OpKind::kAddBias,      OpKind::kGelu,           OpKind::kLinearFwd,
      OpKind::kAddBias,      OpKind::kDropout,        OpKind::kAdd,
      OpKind::kView3D};
  EXPECT_EQ(kinds(plan.fwd), want);
  EXPECT_FALSE(plan.fused);
  EXPECT_EQ(plan.num_fusions, 0);
}

TEST(GraphBuilder, UnfusedBackwardMirrorsEagerAccumulationOrder) {
  const LayerPlan plan =
      build_unfused_layer_plan(tiny_config(), /*with_dropout=*/true);
  const std::vector<OpKind> want = {
      OpKind::kView2D,        OpKind::kDropoutBwd,   OpKind::kBiasGradAccum,
      OpKind::kLinearBwd,     OpKind::kGeluBwd,      OpKind::kBiasGradAccum,
      OpKind::kLinearBwd,     OpKind::kLayerNormBwd, OpKind::kAdd,
      OpKind::kDropoutBwd,    OpKind::kBiasGradAccum, OpKind::kLinearBwd,
      OpKind::kAttnSplitGradHeads, OpKind::kBmmNT,   OpKind::kBmmTN,
      OpKind::kMul,           OpKind::kSoftmaxBwd,   OpKind::kScale,
      OpKind::kBmm,           OpKind::kBmmTN,        OpKind::kAttnMergeQkvGrad,
      OpKind::kLinearBwd,     OpKind::kLayerNormBwd, OpKind::kAdd,
      OpKind::kView3D};
  EXPECT_EQ(kinds(plan.bwd), want);
}

TEST(GraphPasses, FusionRewritesToTheEagerKernelSequence) {
  LayerPlan plan = build_unfused_layer_plan(tiny_config(), /*with_dropout=*/true);
  EXPECT_EQ(fuse_operators(plan), 5);  // softmax fwd+bwd, bias+gelu, 2x bda
  const std::vector<OpKind> want_fwd = {
      OpKind::kView2D,        OpKind::kLayerNorm,
      OpKind::kLinearFwd,     OpKind::kAttnSplitHeads,
      OpKind::kBmmNT,         OpKind::kScaleCausalSoftmax,
      OpKind::kAttnProbMask,  OpKind::kMul,
      OpKind::kBmm,           OpKind::kAttnMergeHeads,
      OpKind::kLinearFwd,     OpKind::kFusedBiasDropoutAdd,
      OpKind::kLayerNorm,     OpKind::kLinearFwd,
      OpKind::kFusedBiasGelu, OpKind::kLinearFwd,
      OpKind::kFusedBiasDropoutAdd, OpKind::kView3D};
  EXPECT_EQ(kinds(plan.fwd), want_fwd);
  const std::vector<OpKind> want_bwd = {
      OpKind::kView2D,        OpKind::kDropoutBwd,   OpKind::kBiasGradAccum,
      OpKind::kLinearBwd,     OpKind::kFusedBiasGeluBwd, OpKind::kLinearBwd,
      OpKind::kLayerNormBwd,  OpKind::kAdd,          OpKind::kDropoutBwd,
      OpKind::kBiasGradAccum, OpKind::kLinearBwd,
      OpKind::kAttnSplitGradHeads, OpKind::kBmmNT,   OpKind::kBmmTN,
      OpKind::kMul,           OpKind::kScaleSoftmaxBwd,
      OpKind::kBmm,           OpKind::kBmmTN,        OpKind::kAttnMergeQkvGrad,
      OpKind::kLinearBwd,     OpKind::kLayerNormBwd, OpKind::kAdd,
      OpKind::kView3D};
  EXPECT_EQ(kinds(plan.bwd), want_bwd);
}

TEST(GraphPasses, NonCausalUsesMaskSoftmaxAndDropoutFreeTopologyAliases) {
  GptConfig c = tiny_config();
  c.causal = false;
  LayerPlan plan = build_unfused_layer_plan(c, /*with_dropout=*/false);
  fuse_operators(plan);
  // p == 0 topology: no dropout / prob-mask nodes anywhere, and the fused
  // bias+add nodes emit no mask value.
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    const Node& n = plan.unified(u);
    EXPECT_NE(n.kind, OpKind::kDropout);
    EXPECT_NE(n.kind, OpKind::kDropoutBwd);
    EXPECT_NE(n.kind, OpKind::kAttnProbMask);
    if (n.kind == OpKind::kFusedBiasDropoutAdd) EXPECT_EQ(n.out.size(), 1u);
    EXPECT_NE(n.kind, OpKind::kScaleCausalSoftmax);
  }
  bool saw_masked_softmax = false;
  for (const Node& n : plan.fwd) {
    saw_masked_softmax |= n.kind == OpKind::kScaleMaskSoftmax;
  }
  EXPECT_TRUE(saw_masked_softmax);
}

// The §3.5 recompute plan is literally fwd ++ bwd over one value table: the
// unified index order the lifetime pass analyzes is the execution order
// run_recompute uses, so "recompute as plan transformation" needs no third
// node list.
TEST(GraphPasses, RecomputePlanIsUnifiedForwardBackward) {
  LayerPlan plan = build_unfused_layer_plan(tiny_config(), true);
  fuse_operators(plan);
  ASSERT_EQ(plan.unified_size(), plan.fwd.size() + plan.bwd.size());
  EXPECT_EQ(&plan.unified(0), &plan.fwd[0]);
  EXPECT_EQ(&plan.unified(plan.fwd.size()), &plan.bwd[0]);
}

// ---- 2. fusion legality ----------------------------------------------------

TEST(GraphPasses, PinnedIntermediateBlocksItsFusion) {
  LayerPlan plan = build_unfused_layer_plan(tiny_config(), true);
  const ValueId t_act = find_value(plan, "mlp.t_act");
  ASSERT_NE(t_act, kNoValue);
  plan.values[static_cast<std::size_t>(t_act)].pinned = true;  // e.g. debugging
  EXPECT_EQ(fuse_operators(plan), 4);  // bias+gelu pattern must stay unfused
  bool has_unfused_gelu = false;
  for (const Node& n : plan.fwd) has_unfused_gelu |= n.kind == OpKind::kGelu;
  EXPECT_TRUE(has_unfused_gelu);
}

TEST(GraphPasses, MultiUseIntermediateBlocksItsFusion) {
  LayerPlan plan = build_unfused_layer_plan(tiny_config(), true);
  // Give the scaled scores a second consumer: the pattern is no longer a
  // straight-line temp chain and must not fuse.
  const ValueId scaled = find_value(plan, "attn.scaled");
  ASSERT_NE(scaled, kNoValue);
  LayerPlan tampered = plan;
  tampered.bwd.back().in.push_back(scaled);  // fake extra use in backward
  const int fused_tampered = fuse_operators(tampered);
  const int fused_clean = fuse_operators(plan);
  EXPECT_EQ(fused_clean, 5);
  EXPECT_EQ(fused_tampered, fused_clean - 1);
}

// ---- 3. buffer planning ----------------------------------------------------

void check_buffer_plan(const LayerPlan& plan) {
  // Every stored, produced value got a slot; aliases and graph inputs none.
  for (const Value& v : plan.values) {
    if (v.ref_bytes > 0 && v.def >= 0) {
      EXPECT_GE(v.slot, 0) << v.name;
    } else {
      EXPECT_EQ(v.slot, -1) << v.name;
    }
  }
  // Slot sharing is legal only across disjoint [def, last_use] lifetimes
  // with identical size-class keys.
  for (std::size_t a = 0; a < plan.values.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.values.size(); ++b) {
      const Value& va = plan.values[a];
      const Value& vb = plan.values[b];
      if (va.slot < 0 || va.slot != vb.slot) continue;
      EXPECT_EQ(va.ref_bytes, vb.ref_bytes) << va.name << " / " << vb.name;
      EXPECT_EQ(va.dtype, vb.dtype) << va.name << " / " << vb.name;
      const std::int32_t ea = va.last_use < 0 ? va.def : va.last_use;
      const std::int32_t eb = vb.last_use < 0 ? vb.def : vb.last_use;
      EXPECT_TRUE(ea < vb.def || eb < va.def)
          << va.name << " [" << va.def << "," << ea << "] overlaps " << vb.name
          << " [" << vb.def << "," << eb << "] in slot " << va.slot;
    }
  }
  // Reuse must actually happen, and the stats must be self-consistent.
  EXPECT_LT(plan.buffer.slot_bytes, plan.buffer.total_value_bytes);
  EXPECT_LE(plan.buffer.peak_bytes, plan.buffer.slot_bytes);
  EXPECT_GT(plan.buffer.num_slots, 0);
  EXPECT_GT(plan.buffer.saved_bytes, 0);
  EXPECT_LT(plan.buffer.saved_bytes, plan.buffer.total_value_bytes);
}

TEST(GraphBufferPlan, LifetimesDisjointPerSlotAllTopologies) {
  for (const bool drop : {false, true}) {
    for (const std::int64_t tp : {1, 2}) {
      PlannerOptions opts;
      opts.tp_size = tp;
      const LayerPlan plan = build_layer_plan(tiny_config(0.1f), drop, opts);
      SCOPED_TRACE("dropout=" + std::to_string(drop) + " tp=" + std::to_string(tp));
      check_buffer_plan(plan);
    }
  }
}

TEST(GraphBufferPlan, SavedBytesShrinkWithBf16CachedInputs) {
  GptConfig c32 = tiny_config();
  GptConfig c16 = tiny_config();
  c16.dtype = tensor::DType::kBf16;
  const LayerPlan p32 = build_layer_plan(c32, false);
  const LayerPlan p16 = build_layer_plan(c16, false);
  EXPECT_LT(p16.buffer.saved_bytes, p32.buffer.saved_bytes);
}

// ---- 4. §13 dtype propagation ---------------------------------------------

TEST(GraphPasses, Bf16MarksExactlyTheCachedGemmInputs) {
  GptConfig c = tiny_config();
  c.dtype = tensor::DType::kBf16;
  const LayerPlan plan = build_layer_plan(c, /*with_dropout=*/true);
  std::vector<ValueId> expected_bf16;
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    const Node& n = plan.unified(u);
    if (n.kind == OpKind::kLinearFwd) expected_bf16.push_back(n.out[1]);
  }
  ASSERT_EQ(expected_bf16.size(), 4u);  // qkv, proj, fc1, fc2
  for (std::size_t i = 0; i < plan.values.size(); ++i) {
    const bool should = std::find(expected_bf16.begin(), expected_bf16.end(),
                                  static_cast<ValueId>(i)) != expected_bf16.end();
    EXPECT_EQ(plan.values[i].dtype == tensor::DType::kBf16, should)
        << plan.values[i].name;
  }
}

// ---- 5. graph == eager, bitwise -------------------------------------------

struct LayerRun {
  Tensor y, dx;
  std::map<std::string, Tensor> grads;
};

LayerRun run_layer(const GptConfig& c, bool use_graph, bool recompute) {
  const bool prev = set_enabled(use_graph);
  dist::Comm solo = dist::Comm::solo();
  model::TransformerLayer layer(c, /*global_layer_idx=*/0, solo);
  Rng rng(c.seed, substream(9, 9));
  const Tensor x = Tensor::randn({c.seq, 2, c.hidden}, rng);
  const Tensor dy = Tensor::randn({c.seq, 2, c.hidden}, rng);
  model::ParamRefs params;
  layer.collect_params(params);
  for (model::Param* p : params) p->zero_grad();

  LayerRun out;
  model::LayerCache cache;
  out.y = layer.forward(x, cache, /*mb_tag=*/7);
  if (recompute) {
    cache.keep_input_only();
    out.dx = layer.backward_recompute(dy, cache, /*mb_tag=*/7);
  } else {
    out.dx = layer.backward(dy, cache);
  }
  for (model::Param* p : params) out.grads.emplace(p->name, p->grad.clone());
  set_enabled(prev);
  return out;
}

void expect_bitwise(const LayerRun& a, const LayerRun& b) {
  EXPECT_EQ(tensor::max_abs_diff(a.y, b.y), 0.0f) << "forward";
  EXPECT_EQ(tensor::max_abs_diff(a.dx, b.dx), 0.0f) << "backward dx";
  ASSERT_EQ(a.grads.size(), b.grads.size());
  for (const auto& [name, grad] : a.grads) {
    ASSERT_TRUE(b.grads.contains(name)) << name;
    EXPECT_EQ(tensor::max_abs_diff(grad, b.grads.at(name)), 0.0f) << name;
  }
}

TEST(GraphExecutor, BitwiseMatchesEagerLayer) {
  for (const float dropout : {0.0f, 0.3f}) {
    for (const auto dtype : {tensor::DType::kF32, tensor::DType::kBf16}) {
      GptConfig c = tiny_config(dropout);
      c.dtype = dtype;
      SCOPED_TRACE("dropout=" + std::to_string(dropout) +
                   " dtype=" + tensor::dtype_name(dtype));
      expect_bitwise(run_layer(c, /*use_graph=*/true, /*recompute=*/false),
                     run_layer(c, /*use_graph=*/false, /*recompute=*/false));
    }
  }
}

TEST(GraphExecutor, RecomputePlanBitwiseMatchesEagerReplay) {
  for (const float dropout : {0.0f, 0.3f}) {
    GptConfig c = tiny_config(dropout);
    SCOPED_TRACE("dropout=" + std::to_string(dropout));
    const LayerRun graph_rc = run_layer(c, true, /*recompute=*/true);
    expect_bitwise(graph_rc, run_layer(c, false, /*recompute=*/true));
    // And recompute must change nothing vs stashed-activation backward.
    expect_bitwise(graph_rc, run_layer(c, true, /*recompute=*/false));
  }
}

TEST(GraphExecutor, EvalDropoutZeroReusesTrainingTopology) {
  // set_dropout(0) must not invalidate the plan the forward ran with: the
  // probability is an ExecContext input, the topology is fixed at build.
  GptConfig c = tiny_config(0.2f);
  dist::Comm solo = dist::Comm::solo();
  model::TransformerLayer layer(c, 0, solo);
  layer.set_dropout(0.0f);
  Rng rng(c.seed, substream(3, 3));
  const Tensor x = Tensor::randn({c.seq, 2, c.hidden}, rng);
  model::LayerCache cache;
  const bool prev = set_enabled(true);
  const Tensor y_graph = layer.forward(x, cache, 1);
  set_enabled(false);
  model::LayerCache cache_eager;
  const Tensor y_eager = layer.forward(x, cache_eager, 1);
  set_enabled(prev);
  EXPECT_EQ(tensor::max_abs_diff(y_graph, y_eager), 0.0f);
}

// ---- plan dump -------------------------------------------------------------

TEST(GraphDump, EmitsPlanV1Json) {
  const LayerPlan plan = build_layer_plan(tiny_config(0.1f), true);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  dump_plan_json(plan, /*layer_idx=*/3, f);
  std::rewind(f);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("\"num_fusions\": 5"), std::string::npos);
  EXPECT_NE(text.find("graph.fused_bias_dropout_add"), std::string::npos);
  EXPECT_NE(text.find("\"buffer\""), std::string::npos);
  // The pre-GeLU sum is fused away entirely -> dead, omitted from the dump.
  EXPECT_EQ(text.find("\"name\": \"mlp.t_act\""), std::string::npos);
}

TEST(GraphBuilder, StagePlanCoversLayerRange) {
  const StagePlan sp = build_stage_plan(tiny_config(), 2, 4, false, true, true);
  EXPECT_EQ(sp.layers.size(), 2u);
  EXPECT_EQ(sp.layer_begin, 2);
  EXPECT_TRUE(sp.has_head);
  EXPECT_FALSE(sp.has_embedding);
  EXPECT_TRUE(sp.recompute);
}

// ---- §17 kernel selection --------------------------------------------------

TEST(GraphKernelSelection, RefusesTrainingPlans) {
  LayerPlan plan = build_layer_plan(tiny_config(), /*with_dropout=*/false);
  ASSERT_FALSE(plan.bwd.empty());
  const std::vector<OpKind> before = kinds(plan.fwd);
  QuantPolicy policy;
  EXPECT_EQ(select_kernels(plan, policy), -1);
  EXPECT_EQ(kinds(plan.fwd), before) << "refused pass must leave the plan untouched";
}

TEST(GraphKernelSelection, RewritesExactlyTheEligibleLinears) {
  QuantPolicy policy;  // every slot eligible, int8
  PlannerOptions opts;
  opts.inference = true;
  opts.quant = &policy;
  const LayerPlan plan = build_layer_plan(tiny_config(), false, opts);
  EXPECT_TRUE(plan.bwd.empty());
  int quantized = 0;
  for (const Node& n : plan.fwd) {
    EXPECT_NE(n.kind, OpKind::kLinearFwd)
        << "all-slots policy left an unquantized linear";
    if (n.kind == OpKind::kLinearFwdQuant) {
      ++quantized;
      EXPECT_EQ(n.quant,
                static_cast<std::int8_t>(tensor::QuantKind::kInt8));
    }
  }
  EXPECT_EQ(quantized, 4);  // qkv, proj, fc1, fc2
}

TEST(GraphKernelSelection, PartialPolicyLeavesOtherSlotsAlone) {
  QuantPolicy policy;
  policy.kind = tensor::QuantKind::kQ4;
  policy.slots[static_cast<int>(LinearSlot::kQkv)] = false;
  policy.slots[static_cast<int>(LinearSlot::kProj)] = false;
  PlannerOptions opts;
  opts.inference = true;
  opts.quant = &policy;
  const LayerPlan plan = build_layer_plan(tiny_config(), false, opts);
  std::map<int, OpKind> by_slot;
  for (const Node& n : plan.fwd) {
    if (n.kind == OpKind::kLinearFwd || n.kind == OpKind::kLinearFwdQuant) {
      by_slot[n.linear] = n.kind;
      if (n.kind == OpKind::kLinearFwdQuant) {
        EXPECT_EQ(n.quant, static_cast<std::int8_t>(tensor::QuantKind::kQ4));
      }
    }
  }
  EXPECT_EQ(by_slot.at(static_cast<int>(LinearSlot::kQkv)), OpKind::kLinearFwd);
  EXPECT_EQ(by_slot.at(static_cast<int>(LinearSlot::kProj)), OpKind::kLinearFwd);
  EXPECT_EQ(by_slot.at(static_cast<int>(LinearSlot::kFc1)),
            OpKind::kLinearFwdQuant);
  EXPECT_EQ(by_slot.at(static_cast<int>(LinearSlot::kFc2)),
            OpKind::kLinearFwdQuant);
}

}  // namespace
}  // namespace ptdp::graph
