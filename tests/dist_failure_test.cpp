// Failure-injection tests for the thread-backed world: a rank dying while
// peers are blocked inside collectives or point-to-point receives must
// unwind the whole run (poison pill) instead of deadlocking, the root-cause
// exception must win over secondary WorldPoisoned unwinds, and the world
// must be reusable afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ptdp/dist/world.hpp"

namespace ptdp::dist {
namespace {

TEST(WorldFailure, DeathDuringRecvUnblocksPeers) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   throw std::runtime_error("rank 0 crashed");
                 }
                 // Ranks 1 and 2 wait for a message rank 0 never sends —
                 // without poisoning this deadlocks forever.
                 float x = 0.f;
                 comm.recv(std::span<float>(&x, 1), 0, /*tag=*/1);
               }),
               std::runtime_error);
}

TEST(WorldFailure, DeathDuringCollectiveUnblocksPeers) {
  World world(4);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 2) {
        throw std::logic_error("rank 2 crashed before all-reduce");
      }
      std::vector<float> data(64, 1.0f);
      comm.all_reduce(std::span<float>(data));
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_TRUE(e.caused_by<std::logic_error>());
  }
}

TEST(WorldFailure, RootCauseWinsOverSecondaryUnwinds) {
  World world(4);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 3) throw std::runtime_error("root cause");
      comm.barrier();  // peers die with WorldPoisoned, which must not win
    });
    FAIL() << "expected exception";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 3);
    EXPECT_TRUE(e.caused_by<std::runtime_error>());
    EXPECT_FALSE(e.caused_by<WorldPoisoned>());
    EXPECT_NE(std::string(e.what()).find("root cause"), std::string::npos);
  }
}

TEST(WorldFailure, WorldPoisonedRootCauseIsNotSwallowed) {
  // A rank whose *own* bug throws a WorldPoisoned-derived exception (before
  // anyone poisoned the mailbox) is a root cause, not a secondary unwind:
  // the run must fail, not silently report success.
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 1) throw WorldPoisoned();
                 comm.barrier();
               }),
               RankFailure);
}

TEST(WorldFailure, RankFailureCarriesNotedStep) {
  World world(2);
  try {
    world.run([](Comm& comm) {
      note_step(17);
      if (comm.rank() == 1) throw std::runtime_error("died at step 17");
      comm.barrier();
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.step(), 17u);
  }
}

TEST(WorldFailure, WorldIsReusableAfterFailure) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) throw std::runtime_error("boom");
                 float x = 0.f;
                 comm.recv(std::span<float>(&x, 1), 0, 7);
               }),
               std::runtime_error);
  // A fresh run on the same world works: poison cleared, no stale messages.
  std::atomic<int> sum{0};
  world.run([&](Comm& comm) {
    const float s = comm.all_reduce_scalar(static_cast<float>(comm.rank() + 1));
    sum.fetch_add(static_cast<int>(s));
  });
  EXPECT_EQ(sum.load(), 2 * 3);  // both ranks saw 1 + 2
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(WorldFailure, BufferedMessagesStillDeliveredUnderPoison) {
  // A message that was already sent before the failure is still received;
  // only waits-for-never-sent-data turn into errors.
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   const float v = 42.f;
                   comm.send(std::span<const float>(&v, 1), 1, /*tag=*/5);
                   throw std::runtime_error("rank 0 crashed after send");
                 }
                 if (comm.rank() == 1) {
                   float got = 0.f;
                   comm.recv(std::span<float>(&got, 1), 0, /*tag=*/5);
                   EXPECT_EQ(got, 42.f);  // delivered despite the crash
                   // Now wait for something that never comes -> poisoned.
                   comm.recv(std::span<float>(&got, 1), 0, /*tag=*/6);
                   FAIL() << "should have been poisoned";
                 }
                 // Rank 2 exits immediately.
               }),
               std::runtime_error);
}

TEST(WorldFailure, DeathDuringRequestWaitUnblocksPeers) {
  // The nonblocking path unwinds the same way as blocking recv: a parked
  // wait() throws WorldPoisoned (absorbed by the World as secondary), and
  // the abandoned in-flight Request must not escalate during the unwind.
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   throw std::runtime_error("rank 0 crashed");
                 }
                 float x = 0.f;
                 Request req = comm.irecv(std::span<float>(&x, 1), 0, /*tag=*/1);
                 req.wait();
               }),
               std::runtime_error);
}

TEST(WorldFailure, AbandonedRequestUnderPoisonDoesNotEscalate) {
  // A pre-posted irecv that is never completed because the world died is
  // dropped silently; the World's post-failure reset clears the channel.
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) throw std::runtime_error("boom");
                 float a = 0.f, b = 0.f;
                 Request preposted = comm.irecv(std::span<float>(&a, 1), 0, /*tag=*/8);
                 // Blocks until poisoned; `preposted` dies during unwind.
                 comm.recv(std::span<float>(&b, 1), 0, /*tag=*/9);
               }),
               std::runtime_error);
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(WorldFailure, CleanRunsAreUnaffected) {
  World world(4);
  for (int i = 0; i < 3; ++i) {
    world.run([](Comm& comm) {
      std::vector<float> data(16, 1.0f);
      comm.all_reduce(std::span<float>(data));
      for (float v : data) ASSERT_EQ(v, 4.0f);
    });
  }
  EXPECT_EQ(world.pending_messages(), 0u);
}

// ---- deterministic fault injection -----------------------------------------

// Each rank sends `rounds` messages around a ring and receives as many: a
// program with a deterministic per-rank op schedule, so counter-based
// injection fires at exactly the same op every run.
void ring_rounds(Comm& comm, int rounds) {
  const int n = comm.size();
  for (int i = 0; i < rounds; ++i) {
    const float v = static_cast<float>(comm.rank() * 100 + i);
    float got = 0.f;
    Request s = comm.isend(std::span<const float>(&v, 1), (comm.rank() + 1) % n,
                           /*tag=*/i);
    comm.recv(std::span<float>(&got, 1), (comm.rank() + n - 1) % n, /*tag=*/i);
    s.wait();
  }
}

TEST(FaultPlan, KillsVictimAtExactlyTheNthSend) {
  auto plan = std::make_shared<FaultPlan>(/*seed=*/1);
  plan->kill(/*rank=*/1, FaultSite::kSend, /*nth=*/3);
  World world(4);
  world.set_fault_plan(plan);
  try {
    world.run([](Comm& comm) { ring_rounds(comm, 8); });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_TRUE(e.caused_by<InjectedFault>());
    try {
      e.rethrow_cause();
    } catch (const InjectedFault& f) {
      EXPECT_EQ(f.rank(), 1);
      EXPECT_EQ(f.site(), FaultSite::kSend);
      EXPECT_EQ(f.count(), 3u);
    }
  }
  ASSERT_EQ(plan->history().size(), 1u);
  EXPECT_EQ(plan->history()[0].rank, 1);
  EXPECT_EQ(plan->history()[0].count, 3u);
}

TEST(FaultPlan, ScheduleReplaysExactly) {
  // Same seed + same program -> the same rank dies at the same op count,
  // across a rearm() and across a freshly constructed identical plan.
  const auto run_once = [](FaultPlan& plan) {
    World world(4);
    world.set_fault_plan({&plan, [](FaultPlan*) {}});
    std::uint64_t fired_count = 0;
    int fired_rank = -1;
    try {
      world.run([](Comm& comm) { ring_rounds(comm, 16); });
    } catch (const RankFailure& e) {
      fired_rank = e.rank();
      try {
        e.rethrow_cause();
      } catch (const InjectedFault& f) {
        fired_count = f.count();
      } catch (...) {
      }
    }
    return std::pair<int, std::uint64_t>{fired_rank, fired_count};
  };

  FaultPlan a(/*seed=*/42);
  a.kill_random(/*world_size=*/4, FaultSite::kSend, /*max_nth=*/10);
  const auto first = run_once(a);
  EXPECT_GE(first.first, 0) << "kill_random never fired";

  a.rearm();
  EXPECT_EQ(run_once(a), first);

  FaultPlan b(/*seed=*/42);
  b.kill_random(4, FaultSite::kSend, 10);
  EXPECT_EQ(run_once(b), first);
}

TEST(FaultPlan, FiredSpecStaysDisarmedAcrossRuns) {
  // The supervisor contract: after the injected failure, rerunning the same
  // program on the same world proceeds past the injection point.
  auto plan = std::make_shared<FaultPlan>();
  plan->kill(2, FaultSite::kRecv, 5);
  World world(4);
  world.set_fault_plan(plan);
  EXPECT_THROW(world.run([](Comm& comm) { ring_rounds(comm, 8); }), RankFailure);
  world.run([](Comm& comm) { ring_rounds(comm, 8); });  // completes
  EXPECT_EQ(plan->runs_started(), 2);
  EXPECT_EQ(plan->history().size(), 1u);
}

TEST(FaultPlan, DelayPerturbsTimingNotResults) {
  auto plan = std::make_shared<FaultPlan>();
  plan->delay(0, FaultSite::kCollective, 1, std::chrono::microseconds(2000));
  World world(4);
  world.set_fault_plan(plan);
  world.run([](Comm& comm) {
    std::vector<float> data(16, static_cast<float>(comm.rank()));
    comm.all_reduce(std::span<float>(data));
    for (float v : data) ASSERT_EQ(v, 0.f + 1.f + 2.f + 3.f);
  });
  ASSERT_EQ(plan->history().size(), 1u);
  EXPECT_EQ(plan->history()[0].spec.action, FaultSpec::Action::kDelay);
}

// ---- watchdog timeouts -----------------------------------------------------

TEST(WorldFailure, WatchdogConvertsSilentPeerIntoRankTimeout) {
  // Rank 1 exits without ever sending; without a timeout rank 0 would wait
  // forever (no failure, no poison). The watchdog converts the silence into
  // a structured RankTimeout naming the rank that went quiet.
  World world(2);
  TimeoutOptions to;
  to.op_timeout_ms = 100;
  world.set_timeouts(to);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 1) return;  // never sends
      float x = 0.f;
      comm.recv(std::span<float>(&x, 1), 1, /*tag=*/4);
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 0);  // the *detector* failed...
    EXPECT_TRUE(e.caused_by<RankTimeout>());
    try {
      e.rethrow_cause();
    } catch (const RankTimeout& t) {
      EXPECT_EQ(t.src(), 1);  // ...but the cause names the silent peer
      EXPECT_EQ(t.dst(), 0);
      EXPECT_GE(t.waited_ms(), 100);
      EXPECT_GT(t.retries(), 0);
    }
  }
}

TEST(WorldFailure, WatchdogRidesOutTransientDelay) {
  // A late message inside the deadline is not a timeout: the backoff probe
  // loop re-polls until the deadline, so slow-but-alive peers survive.
  World world(2);
  TimeoutOptions to;
  to.op_timeout_ms = 2000;
  world.set_timeouts(to);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const float v = 7.f;
      comm.send(std::span<const float>(&v, 1), 0, /*tag=*/4);
      return;
    }
    float x = 0.f;
    comm.recv(std::span<float>(&x, 1), 1, /*tag=*/4);
    EXPECT_EQ(x, 7.f);
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(WorldFailure, HangFaultParksVictimAndTimeoutNamesIt) {
  // An injected hang-forever keeps the victim thread alive but silent —
  // the failure surfaces on a *peer* as a RankTimeout attributing the hang.
  auto plan = std::make_shared<FaultPlan>();
  plan->hang(1, FaultSite::kSend, /*nth=*/3);
  World world(2);
  world.set_fault_plan(plan);
  TimeoutOptions to;
  to.op_timeout_ms = 100;
  world.set_timeouts(to);
  try {
    world.run([](Comm& comm) { ring_rounds(comm, 8); });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_TRUE(e.caused_by<RankTimeout>());
    try {
      e.rethrow_cause();
    } catch (const RankTimeout& t) {
      EXPECT_EQ(t.src(), 1);
    }
  }
  ASSERT_EQ(plan->history().size(), 1u);
  EXPECT_EQ(plan->history()[0].rank, 1);
}

TEST(WorldFailure, FlakyLinkDropIsDetectedByWatchdog) {
  // From its 3rd send on, every message rank 1 sends is dropped on the
  // floor. One-directional traffic so only the receiver's watchdog can
  // fire: attribution is unambiguous.
  auto plan = std::make_shared<FaultPlan>();
  plan->flaky_link(1, /*nth=*/3, /*period=*/1, std::chrono::microseconds(0),
                   /*drop=*/true);
  World world(2);
  world.set_fault_plan(plan);
  TimeoutOptions to;
  to.op_timeout_ms = 100;
  world.set_timeouts(to);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 1) {
        for (int i = 0; i < 4; ++i) {
          const float v = static_cast<float>(i);
          comm.send(std::span<const float>(&v, 1), 0, /*tag=*/i);
        }
        return;
      }
      float got = 0.f;
      for (int i = 0; i < 4; ++i) {
        comm.recv(std::span<float>(&got, 1), 1, /*tag=*/i);
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_TRUE(e.caused_by<RankTimeout>());
    try {
      e.rethrow_cause();
    } catch (const RankTimeout& t) {
      EXPECT_EQ(t.src(), 1);
    }
  }
}

TEST(WorldFailure, FlakyLinkDelayOnlyPerturbsTimingNotResults) {
  // Delay flavor (usec > 0, drop = false): every 2nd send from the 1st is
  // late but delivered — the run completes with correct data.
  auto plan = std::make_shared<FaultPlan>();
  plan->flaky_link(0, /*nth=*/1, /*period=*/2, std::chrono::microseconds(500),
                   /*drop=*/false);
  World world(2);
  world.set_fault_plan(plan);
  world.run([](Comm& comm) { ring_rounds(comm, 6); });
  EXPECT_EQ(world.pending_messages(), 0u);
}

// ---- persistent degradations and elastic replay ----------------------------

TEST(FaultPlan, StickySlowRankSurvivesRestartNonStickyDoesNot) {
  auto sticky = std::make_shared<FaultPlan>();
  sticky->slow_rank(0, FaultSite::kSend, /*nth=*/2,
                    std::chrono::microseconds(50), /*sticky=*/true);
  auto transient = std::make_shared<FaultPlan>();
  transient->flaky_link(0, /*nth=*/2, /*period=*/2,
                        std::chrono::microseconds(50), /*drop=*/false,
                        /*sticky=*/false);

  World world(2);
  world.set_fault_plan(sticky);
  world.run([](Comm& comm) { ring_rounds(comm, 4); });
  ASSERT_EQ(sticky->degraded_ranks(), std::vector<int>{0});
  world.run([](Comm& comm) { ring_rounds(comm, 4); });
  // The bad-machine model: a restart does not heal the hardware.
  EXPECT_EQ(sticky->degraded_ranks(), std::vector<int>{0});

  world.set_fault_plan(transient);
  world.run([](Comm& comm) { ring_rounds(comm, 4); });
  ASSERT_EQ(transient->degraded_ranks(), std::vector<int>{0});
  world.run([](Comm& comm) { ring_rounds(comm, 4); });
  // ...but a transient blip does clear on restart (spec already fired).
  EXPECT_TRUE(transient->degraded_ranks().empty());
}

TEST(FaultPlan, QuarantineLiftsDegradationAndDisarmsRankSpecs) {
  auto plan = std::make_shared<FaultPlan>();
  plan->slow_rank(1, FaultSite::kSend, /*nth=*/1,
                  std::chrono::microseconds(50), /*sticky=*/true);
  plan->kill(1, FaultSite::kSend, /*nth=*/6);

  World world(2);
  world.set_fault_plan(plan);
  EXPECT_THROW(world.run([](Comm& comm) { ring_rounds(comm, 8); }),
               RankFailure);
  EXPECT_EQ(plan->degraded_ranks(), std::vector<int>{1});

  // Eviction: the physical machine behind rank 1 leaves the job, taking its
  // degradation with it — and any still-armed specs targeting it must never
  // fire against whichever healthy rank inherits the id after relayout.
  plan->quarantine_rank(1);
  EXPECT_TRUE(plan->degraded_ranks().empty());
  world.run([](Comm& comm) { ring_rounds(comm, 8); });  // completes clean
  // Two recorded fires (the slow-rank arming and the kill), nothing more.
  EXPECT_EQ(plan->history().size(), 2u);
}

TEST(FaultPlan, ElasticRelayoutReplaysExactlyAfterRearm) {
  // The exact-replay contract across an elastic shrink: after the fault
  // fires, quarantine + a smaller world proceed fault-free (fired specs stay
  // disarmed even though rank ids remapped); rearm() then reproduces the
  // original schedule bit-for-bit on the original layout.
  auto plan = std::make_shared<FaultPlan>();
  plan->slow_rank(2, FaultSite::kSend, /*nth=*/2,
                  std::chrono::microseconds(50), /*sticky=*/true);
  plan->kill(2, FaultSite::kSend, /*nth=*/4);

  const auto fire = [&](int world_size) {
    World world(world_size);
    world.set_fault_plan(plan);
    std::uint64_t count = 0;
    try {
      world.run([](Comm& comm) { ring_rounds(comm, 8); });
    } catch (const RankFailure& e) {
      try {
        e.rethrow_cause();
      } catch (const InjectedFault& f) {
        count = f.count();
      } catch (...) {
      }
    }
    return count;
  };

  const std::uint64_t first = fire(4);
  EXPECT_EQ(first, 4u);

  plan->quarantine_rank(2);
  World small(3);
  small.set_fault_plan(plan);
  small.run([](Comm& comm) { ring_rounds(comm, 8); });  // rank 2 exists again
  EXPECT_TRUE(plan->degraded_ranks().empty());
  // Still just the original two fires (slow-rank arming + kill).
  ASSERT_EQ(plan->history().size(), 2u);

  plan->rearm();
  EXPECT_EQ(fire(4), first);  // bit-exact replay of the original schedule
  EXPECT_EQ(plan->degraded_ranks(), std::vector<int>{2});
}

TEST(FaultPlan, CountersArePerRunAndPerSite) {
  auto plan = std::make_shared<FaultPlan>();
  World world(2);
  world.set_fault_plan(plan);
  world.run([](Comm& comm) { ring_rounds(comm, 4); });
  // 4 isends and 4 recvs per rank; no collective entered.
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(plan->count(r, FaultSite::kSend), 4u);
    EXPECT_EQ(plan->count(r, FaultSite::kRecv), 4u);
    EXPECT_EQ(plan->count(r, FaultSite::kCollective), 0u);
  }
  world.run([](Comm& comm) { comm.barrier(); });
  // begin_run reset the counters; the n=2 barrier is one collective entry
  // plus one internal send/recv round per rank.
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(plan->count(r, FaultSite::kCollective), 1u);
    EXPECT_EQ(plan->count(r, FaultSite::kSend), 1u);
    EXPECT_EQ(plan->count(r, FaultSite::kRecv), 1u);
  }
  EXPECT_EQ(plan->runs_started(), 2);
}

}  // namespace
}  // namespace ptdp::dist
