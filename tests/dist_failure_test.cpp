// Failure-injection tests for the thread-backed world: a rank dying while
// peers are blocked inside collectives or point-to-point receives must
// unwind the whole run (poison pill) instead of deadlocking, the root-cause
// exception must win over secondary WorldPoisoned unwinds, and the world
// must be reusable afterwards.

#include <gtest/gtest.h>

#include <atomic>

#include "ptdp/dist/world.hpp"

namespace ptdp::dist {
namespace {

TEST(WorldFailure, DeathDuringRecvUnblocksPeers) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   throw std::runtime_error("rank 0 crashed");
                 }
                 // Ranks 1 and 2 wait for a message rank 0 never sends —
                 // without poisoning this deadlocks forever.
                 float x = 0.f;
                 comm.recv(std::span<float>(&x, 1), 0, /*tag=*/1);
               }),
               std::runtime_error);
}

TEST(WorldFailure, DeathDuringCollectiveUnblocksPeers) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 2) {
                   throw std::logic_error("rank 2 crashed before all-reduce");
                 }
                 std::vector<float> data(64, 1.0f);
                 comm.all_reduce(std::span<float>(data));
               }),
               std::logic_error);
}

TEST(WorldFailure, RootCauseWinsOverSecondaryUnwinds) {
  World world(4);
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 3) throw std::runtime_error("root cause");
      comm.barrier();  // peers die with WorldPoisoned, which must not win
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(WorldFailure, WorldIsReusableAfterFailure) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) throw std::runtime_error("boom");
                 float x = 0.f;
                 comm.recv(std::span<float>(&x, 1), 0, 7);
               }),
               std::runtime_error);
  // A fresh run on the same world works: poison cleared, no stale messages.
  std::atomic<int> sum{0};
  world.run([&](Comm& comm) {
    const float s = comm.all_reduce_scalar(static_cast<float>(comm.rank() + 1));
    sum.fetch_add(static_cast<int>(s));
  });
  EXPECT_EQ(sum.load(), 2 * 3);  // both ranks saw 1 + 2
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(WorldFailure, BufferedMessagesStillDeliveredUnderPoison) {
  // A message that was already sent before the failure is still received;
  // only waits-for-never-sent-data turn into errors.
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   const float v = 42.f;
                   comm.send(std::span<const float>(&v, 1), 1, /*tag=*/5);
                   throw std::runtime_error("rank 0 crashed after send");
                 }
                 if (comm.rank() == 1) {
                   float got = 0.f;
                   comm.recv(std::span<float>(&got, 1), 0, /*tag=*/5);
                   EXPECT_EQ(got, 42.f);  // delivered despite the crash
                   // Now wait for something that never comes -> poisoned.
                   comm.recv(std::span<float>(&got, 1), 0, /*tag=*/6);
                   FAIL() << "should have been poisoned";
                 }
                 // Rank 2 exits immediately.
               }),
               std::runtime_error);
}

TEST(WorldFailure, DeathDuringRequestWaitUnblocksPeers) {
  // The nonblocking path unwinds the same way as blocking recv: a parked
  // wait() throws WorldPoisoned (absorbed by the World as secondary), and
  // the abandoned in-flight Request must not escalate during the unwind.
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   throw std::runtime_error("rank 0 crashed");
                 }
                 float x = 0.f;
                 Request req = comm.irecv(std::span<float>(&x, 1), 0, /*tag=*/1);
                 req.wait();
               }),
               std::runtime_error);
}

TEST(WorldFailure, AbandonedRequestUnderPoisonDoesNotEscalate) {
  // A pre-posted irecv that is never completed because the world died is
  // dropped silently; the World's post-failure reset clears the channel.
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) throw std::runtime_error("boom");
                 float a = 0.f, b = 0.f;
                 Request preposted = comm.irecv(std::span<float>(&a, 1), 0, /*tag=*/8);
                 // Blocks until poisoned; `preposted` dies during unwind.
                 comm.recv(std::span<float>(&b, 1), 0, /*tag=*/9);
               }),
               std::runtime_error);
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(WorldFailure, CleanRunsAreUnaffected) {
  World world(4);
  for (int i = 0; i < 3; ++i) {
    world.run([](Comm& comm) {
      std::vector<float> data(16, 1.0f);
      comm.all_reduce(std::span<float>(data));
      for (float v : data) ASSERT_EQ(v, 4.0f);
    });
  }
  EXPECT_EQ(world.pending_messages(), 0u);
}

}  // namespace
}  // namespace ptdp::dist
