// §4.1 comm-volume cross-check (ISSUE satellite c): run the full engine at
// (p=2, t=2, d=2) with metrics-only observability and verify the traced
// per-rank pipeline p2p byte counts equal the paper's closed form *exactly*,
// with scatter/gather both off and on. The runtime moves fp32 activations
// (4 bytes/element) while the paper's formulas count fp16 (2 bytes), so the
// traced volume is exactly 2× core::pipeline_p2p_bytes_per_microbatch.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "ptdp/core/analytics.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"

namespace ptdp::obs {
namespace {

class ObsVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    MetricsRegistry::instance().reset();
    Tracer::instance().set_mode(TraceMode::kOff);
  }
  void TearDown() override {
    Tracer::instance().set_mode(TraceMode::kOff);
    Tracer::instance().reset();
    MetricsRegistry::instance().reset();
  }
};

model::GptConfig small_config() {
  model::GptConfig c;
  c.num_layers = 4;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 2024;
  return c;
}

struct VolumeRun {
  static constexpr int kWorld = 8;  // p=2, t=2, d=2
  std::array<int, kWorld> stage{};  // pipeline coordinate per world rank
  std::array<CommGroupStats, kWorld> pipeline_totals{};
  std::array<CommGroupStats, kWorld> tensor_totals{};
  std::array<CommGroupStats, kWorld> data_totals{};
};

VolumeRun run_engine(bool scatter_gather, int steps) {
  Tracer::instance().set_mode(TraceMode::kMetricsOnly);
  const model::GptConfig c = small_config();
  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  VolumeRun out;
  dist::World world(VolumeRun::kWorld);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.t = 2;
    options.parallel.d = 2;
    options.parallel.v = 1;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.parallel.scatter_gather = scatter_gather;
    options.global_batch = 8;  // d=2, b=1 => m = 4 per pipeline
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    core::PtdpEngine engine(comm, options);
    out.stage[static_cast<std::size_t>(comm.rank())] =
        engine.groups().coord().pipeline;
    data::ShardedLoader loader(dataset, options.global_batch, 1, 2,
                               engine.groups().coord().data, /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
  });
  // Quiesced (threads joined): read the per-rank tables from the registry.
  auto& metrics = MetricsRegistry::instance();
  for (int r = 0; r < VolumeRun::kWorld; ++r) {
    out.pipeline_totals[static_cast<std::size_t>(r)] =
        metrics.group_total("pipeline", r);
    out.tensor_totals[static_cast<std::size_t>(r)] =
        metrics.group_total("tensor", r);
    out.data_totals[static_cast<std::size_t>(r)] = metrics.group_total("data", r);
  }
  Tracer::instance().set_mode(TraceMode::kOff);
  return out;
}

class ObsVolumeSgTest : public ObsVolumeTest,
                        public ::testing::WithParamInterface<bool> {};

TEST_P(ObsVolumeSgTest, PipelineBytesMatchClosedFormExactly) {
  const bool sg = GetParam();
  const int steps = 2;
  const std::int64_t m = 4;  // global_batch 8 / (d=2 · b=1)
  const model::GptConfig c = small_config();
  const VolumeRun run = run_engine(sg, steps);

  // Closed form: each boundary message carries b·s·h·4 bytes, divided by t
  // when the §4.1 scatter/gather optimization sends only this rank's slice.
  const std::uint64_t msg_bytes =
      static_cast<std::uint64_t>(1 * c.seq * c.hidden) * 4 / (sg ? 2 : 1);
  // With p = 2 each rank is a boundary rank: stage 0 sends every microbatch
  // forward and receives every backward; stage 1 the reverse.
  const auto expected_bytes = static_cast<std::uint64_t>(steps) *
                              static_cast<std::uint64_t>(m) * msg_bytes;
  const auto expected_msgs =
      static_cast<std::uint64_t>(steps) * static_cast<std::uint64_t>(m);

  // And the same number from the analytics module: fp16 per direction per
  // microbatch, so the fp32 runtime must trace exactly 2× that.
  core::ParallelConfig cfg;
  cfg.p = 2;
  cfg.t = 2;
  cfg.d = 2;
  cfg.v = 1;
  cfg.b = 1;
  cfg.scatter_gather = sg;
  const double analytic_per_mb = core::pipeline_p2p_bytes_per_microbatch(c, cfg);
  EXPECT_DOUBLE_EQ(static_cast<double>(expected_bytes),
                   2.0 * analytic_per_mb * static_cast<double>(m * steps));

  for (int r = 0; r < VolumeRun::kWorld; ++r) {
    const CommGroupStats& pipe = run.pipeline_totals[static_cast<std::size_t>(r)];
    EXPECT_EQ(pipe.p2p_sends, expected_msgs) << "rank " << r;
    EXPECT_EQ(pipe.p2p_send_bytes, expected_bytes) << "rank " << r;
    EXPECT_EQ(pipe.p2p_recvs, expected_msgs) << "rank " << r;
    EXPECT_EQ(pipe.p2p_recv_bytes, expected_bytes) << "rank " << r;
    // The only pipeline-group collective is the per-step loss all-reduce;
    // its traffic is tagged collective, so the p2p counters above stay
    // exactly the boundary activations.
    EXPECT_EQ(pipe.collective_ops, static_cast<std::uint64_t>(steps))
        << "rank " << r;

    // t=2 forward/backward all-reduces: every rank moves tensor-group bytes.
    const CommGroupStats& tp = run.tensor_totals[static_cast<std::size_t>(r)];
    EXPECT_GT(tp.collective_ops, 0u) << "rank " << r;
    EXPECT_GT(tp.coll_send_bytes, 0u) << "rank " << r;

    // d=2 gradient all-reduce: data-group collective bytes on every rank.
    const CommGroupStats& dp = run.data_totals[static_cast<std::size_t>(r)];
    EXPECT_GT(dp.collective_ops, 0u) << "rank " << r;
    EXPECT_GT(dp.coll_send_bytes, 0u) << "rank " << r;
  }

  // Stage assignment sanity: exactly half the world is stage 0.
  int stage0 = 0;
  for (int r = 0; r < VolumeRun::kWorld; ++r) {
    stage0 += run.stage[static_cast<std::size_t>(r)] == 0 ? 1 : 0;
  }
  EXPECT_EQ(stage0, VolumeRun::kWorld / 2);
}

INSTANTIATE_TEST_SUITE_P(ScatterGather, ObsVolumeSgTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "SgOn" : "SgOff";
                         });

TEST_F(ObsVolumeTest, ScatterGatherHalvesPipelineTraffic) {
  const VolumeRun off = run_engine(/*scatter_gather=*/false, /*steps=*/1);
  const std::uint64_t off_bytes = off.pipeline_totals[0].p2p_send_bytes;
  MetricsRegistry::instance().reset();
  const VolumeRun on = run_engine(/*scatter_gather=*/true, /*steps=*/1);
  EXPECT_EQ(on.pipeline_totals[0].p2p_send_bytes * 2, off_bytes);
}

}  // namespace
}  // namespace ptdp::obs
