// Checkpoint tests: save/load round trips, metadata, corruption detection
// via CRC, and structural mismatches (shape, name order, count).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::ckpt {
namespace {

using tensor::Tensor;

class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ptdp_ckpt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(CkptTest, RoundTripRestoresValuesAndMeta) {
  Rng rng(1);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({7}, rng);
  NamedTensors tensors{{"a", &a}, {"b", &b}};
  save_checkpoint(path("x.ckpt"), tensors, CheckpointMeta{42, 7});

  Tensor a2({3, 4}), b2({7});
  NamedTensors loaded{{"a", &a2}, {"b", &b2}};
  const CheckpointMeta meta = load_checkpoint(path("x.ckpt"), loaded);
  EXPECT_EQ(meta.step, 42u);
  EXPECT_EQ(meta.extra, 7u);
  EXPECT_EQ(tensor::max_abs_diff(a, a2), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(b, b2), 0.0f);
}

TEST_F(CkptTest, PeekReadsMetaWithoutTensors) {
  Tensor a = Tensor::ones({2});
  save_checkpoint(path("y.ckpt"), {{"a", &a}}, CheckpointMeta{9, 3});
  const CheckpointMeta meta = peek_checkpoint(path("y.ckpt"));
  EXPECT_EQ(meta.step, 9u);
  EXPECT_EQ(meta.extra, 3u);
}

TEST_F(CkptTest, DetectsPayloadCorruption) {
  Tensor a = Tensor::ones({16});
  save_checkpoint(path("c.ckpt"), {{"a", &a}}, {});
  // Flip a byte inside the tensor payload (near the end of the file).
  {
    std::fstream f(path("c.ckpt"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-8, std::ios::end);
    const char junk = 0x5A;
    f.write(&junk, 1);
  }
  Tensor a2({16});
  NamedTensors loaded{{"a", &a2}};
  EXPECT_THROW(load_checkpoint(path("c.ckpt"), loaded), CheckError);
}

TEST_F(CkptTest, DetectsBadMagic) {
  std::ofstream os(path("bad.ckpt"), std::ios::binary);
  const char garbage[64] = {1, 2, 3};
  os.write(garbage, sizeof(garbage));
  os.close();
  Tensor a({1});
  NamedTensors loaded{{"a", &a}};
  EXPECT_THROW(load_checkpoint(path("bad.ckpt"), loaded), CheckError);
  EXPECT_THROW(peek_checkpoint(path("bad.ckpt")), CheckError);
}

TEST_F(CkptTest, RejectsShapeMismatch) {
  Tensor a = Tensor::ones({4});
  save_checkpoint(path("s.ckpt"), {{"a", &a}}, {});
  Tensor wrong({2, 2});  // same numel, different shape
  NamedTensors loaded{{"a", &wrong}};
  EXPECT_THROW(load_checkpoint(path("s.ckpt"), loaded), CheckError);
}

TEST_F(CkptTest, RejectsNameMismatch) {
  Tensor a = Tensor::ones({4});
  save_checkpoint(path("n.ckpt"), {{"a", &a}}, {});
  Tensor b({4});
  NamedTensors loaded{{"renamed", &b}};
  EXPECT_THROW(load_checkpoint(path("n.ckpt"), loaded), CheckError);
}

TEST_F(CkptTest, RejectsCountMismatch) {
  Tensor a = Tensor::ones({4});
  save_checkpoint(path("m.ckpt"), {{"a", &a}}, {});
  Tensor b({4}), c({4});
  NamedTensors loaded{{"a", &b}, {"extra", &c}};
  EXPECT_THROW(load_checkpoint(path("m.ckpt"), loaded), CheckError);
}

TEST_F(CkptTest, MissingFileThrows) {
  Tensor a({1});
  NamedTensors loaded{{"a", &a}};
  EXPECT_THROW(load_checkpoint(path("nonexistent.ckpt"), loaded), CheckError);
}

TEST_F(CkptTest, ReportedSizeMatchesFile) {
  Rng rng(2);
  Tensor a = Tensor::randn({100}, rng);
  const std::int64_t bytes = save_checkpoint(path("z.ckpt"), {{"a", &a}}, {}).bytes;
  EXPECT_EQ(static_cast<std::uintmax_t>(bytes),
            std::filesystem::file_size(path("z.ckpt")));
  // 400 bytes of payload plus a small header.
  EXPECT_GT(bytes, 400);
  EXPECT_LT(bytes, 520);
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32("", 0), 0u); }

TEST(ShardPath, EncodesGridCoordinates) {
  EXPECT_EQ(shard_path("/tmp/run", 2, 1, 3), "/tmp/run/shard-p2-t1-d3.ckpt");
}

}  // namespace
}  // namespace ptdp::ckpt
