// Resharding tests: a checkpoint trained under one (p, t) layout, merged
// to a serial checkpoint and/or re-split to a different tensor width, must
// continue training with exactly the losses the original run produces.

#include <gtest/gtest.h>

#include <filesystem>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

namespace ptdp::ckpt {
namespace {

using core::EngineOptions;
using core::PtdpEngine;

TEST(ShardAxis, CanonicalNames) {
  EXPECT_EQ(shard_axis("embedding.word"), 0);
  EXPECT_EQ(shard_axis("embedding.pos"), -1);
  EXPECT_EQ(shard_axis("layer3.attn.qkv.weight"), 1);
  EXPECT_EQ(shard_axis("layer3.attn.qkv.bias"), 0);
  EXPECT_EQ(shard_axis("layer3.attn.proj.weight"), 0);
  EXPECT_EQ(shard_axis("layer3.attn.proj.bias"), -1);
  EXPECT_EQ(shard_axis("layer0.mlp.fc1.weight"), 1);
  EXPECT_EQ(shard_axis("layer0.mlp.fc1.bias"), 0);
  EXPECT_EQ(shard_axis("layer0.mlp.fc2.weight"), 0);
  EXPECT_EQ(shard_axis("layer0.mlp.fc2.bias"), -1);
  EXPECT_EQ(shard_axis("layer5.ln1.gamma"), -1);
  EXPECT_EQ(shard_axis("final_ln.beta"), -1);
  EXPECT_EQ(shard_axis("adam.step_count"), -1);
}

TEST(ShardAxis, OptimizerStateFollowsBaseParam) {
  EXPECT_EQ(shard_axis("layer3.attn.qkv.weight.adam_m"), 1);
  EXPECT_EQ(shard_axis("layer3.attn.qkv.weight.adam_v"), 1);
  EXPECT_EQ(shard_axis("embedding.word.fp32_master"), 0);
  EXPECT_EQ(shard_axis("layer0.mlp.fc2.weight.sgd_velocity"), 0);
  EXPECT_EQ(shard_axis("layer0.ln2.gamma.adam_m"), -1);
}

class ReshardFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ptdp_reshard_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    config_.num_layers = 2;
    config_.hidden = 16;
    config_.heads = 4;
    config_.vocab = 32;
    config_.seq = 8;
    config_.seed = 99;
    corpus_ = std::make_unique<data::SyntheticCorpus>(config_.vocab, 4);
    dataset_ = std::make_unique<data::TokenDataset>(corpus_->generate(4000),
                                                    config_.seq);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineOptions options_for(int p, int t) {
    EngineOptions o;
    o.model = config_;
    o.parallel.p = p;
    o.parallel.t = t;
    o.parallel.b = 1;
    o.parallel.recompute = false;
    o.global_batch = 4;
    o.optimizer = EngineOptions::Opt::kAdam;
    o.adam.lr = 2e-3f;
    return o;
  }

  // Trains 2 steps under (p, t), saves shards, returns the next-step loss
  // the original layout would produce.
  float train_and_save(int p, int t) {
    float next_loss = 0;
    std::mutex mu;
    dist::World world(p * t);
    world.run([&](dist::Comm& comm) {
      PtdpEngine engine(comm, options_for(p, t));
      data::ShardedLoader loader(*dataset_, 4, 1, 1, 0, 8);
      engine.train_step(loader.next_batch(0));
      engine.train_step(loader.next_batch(1));
      engine.save_checkpoint(dir_.string(), 2);
      const float loss = engine.train_step(loader.next_batch(2));
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        next_loss = loss;
      }
    });
    return next_loss;
  }

  // Continues one step under (p=1, t) from a resharded checkpoint dir.
  float resume_resharded(int t, const std::string& shard_dir) {
    float loss = 0;
    std::mutex mu;
    dist::World world(t);
    world.run([&](dist::Comm& comm) {
      PtdpEngine engine(comm, options_for(1, t));
      EXPECT_EQ(engine.load_resharded(shard_dir), 2u);
      data::ShardedLoader loader(*dataset_, 4, 1, 1, 0, 8);
      const float l = engine.train_step(loader.next_batch(2));
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        loss = l;
      }
    });
    return loss;
  }

  // Engine saves are committed checkpoints now: shards live under
  // <dir>/step-<N>, resolved through the manifest like any consumer would.
  std::string shard_dir() {
    const auto best = find_latest_valid_checkpoint(dir_.string());
    EXPECT_TRUE(best.has_value()) << "no committed checkpoint under " << dir_;
    return best ? best->shard_dir : dir_.string();
  }

  std::filesystem::path dir_;
  model::GptConfig config_;
  std::unique_ptr<data::SyntheticCorpus> corpus_;
  std::unique_ptr<data::TokenDataset> dataset_;
};

TEST_F(ReshardFixture, MergeTensorParallelToSerial) {
  const float expected = train_and_save(/*p=*/1, /*t=*/2);
  const auto merged_dir = dir_ / "merged";
  std::filesystem::create_directories(merged_dir);
  const auto meta =
      merge_shards(shard_dir(), 1, 2, shard_path(merged_dir.string(), 0, 0, 0));
  EXPECT_EQ(meta.step, 2u);
  const float resumed = resume_resharded(/*t=*/1, merged_dir.string());
  EXPECT_NEAR(resumed, expected, 1e-4f);
}

TEST_F(ReshardFixture, MergePipelineToSerial) {
  const float expected = train_and_save(/*p=*/2, /*t=*/2);
  const auto merged_dir = dir_ / "merged";
  std::filesystem::create_directories(merged_dir);
  merge_shards(shard_dir(), 2, 2, shard_path(merged_dir.string(), 0, 0, 0));
  const float resumed = resume_resharded(/*t=*/1, merged_dir.string());
  EXPECT_NEAR(resumed, expected, 1e-4f);
}

TEST_F(ReshardFixture, SplitToWiderTensorParallelism) {
  // Train at t=2, merge, re-split to t=4, resume at t=4.
  const float expected = train_and_save(/*p=*/1, /*t=*/2);
  const auto merged = dir_ / "merged.ckpt";
  merge_shards(shard_dir(), 1, 2, merged.string());
  const auto split_dir = dir_ / "t4";
  std::filesystem::create_directories(split_dir);
  split_shards(merged.string(), 4, split_dir.string());
  const float resumed = resume_resharded(/*t=*/4, split_dir.string());
  EXPECT_NEAR(resumed, expected, 1e-4f);
}

TEST_F(ReshardFixture, SplitMergeRoundTripIsExact) {
  train_and_save(1, 2);
  const auto merged = dir_ / "m1.ckpt";
  merge_shards(shard_dir(), 1, 2, merged.string());
  const auto split_dir = dir_ / "again";
  std::filesystem::create_directories(split_dir);
  split_shards(merged.string(), 2, split_dir.string());
  const auto merged2 = dir_ / "m2.ckpt";
  merge_shards(split_dir.string(), 1, 2, merged2.string());

  const auto a = read_all(merged.string());
  const auto b = read_all(merged2.string());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(tensor::max_abs_diff(a[i].second, b[i].second), 0.0f) << a[i].first;
  }
}

TEST_F(ReshardFixture, SplitRejectsNonDivisibleWidth) {
  train_and_save(1, 1);
  const auto merged = dir_ / "m.ckpt";
  merge_shards(shard_dir(), 1, 1, merged.string());
  const auto split_dir = dir_ / "t3";
  std::filesystem::create_directories(split_dir);
  // heads = 4, hidden = 16: t = 3 divides neither.
  EXPECT_THROW(split_shards(merged.string(), 3, split_dir.string()), CheckError);
}

TEST_F(ReshardFixture, ReadAllReturnsEverything) {
  train_and_save(1, 1);
  CheckpointMeta meta;
  const auto all = read_all(shard_path(shard_dir(), 0, 0, 0), &meta);
  EXPECT_EQ(meta.step, 2u);
  // params + adam m/v per param + step counter.
  bool has_word = false, has_step = false;
  for (const auto& [name, t] : all) {
    if (name == "embedding.word") has_word = true;
    if (name == "adam.step_count") has_step = true;
  }
  EXPECT_TRUE(has_word);
  EXPECT_TRUE(has_step);
}

}  // namespace
}  // namespace ptdp::ckpt
