// Coverage for the remaining small surfaces: the leveled logger, error
// paths in tensor/data/planner APIs, and ParallelConfig validation
// messages — the corners the focused suites don't reach.

#include <gtest/gtest.h>

#include <sstream>

#include "ptdp/core/planner.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/runtime/log.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp {
namespace {

class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Log, RespectsLevelThreshold) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  {
    CerrCapture cap;
    PTDP_LOG_DEBUG << "hidden";
    PTDP_LOG_INFO << "also hidden";
    PTDP_LOG_WARN << "visible " << 42;
    EXPECT_EQ(cap.text().find("hidden"), std::string::npos);
    EXPECT_NE(cap.text().find("visible 42"), std::string::npos);
    EXPECT_NE(cap.text().find("[warn]"), std::string::npos);
  }
  set_log_level(LogLevel::kOff);
  {
    CerrCapture cap;
    PTDP_LOG_ERROR << "silenced";
    EXPECT_TRUE(cap.text().empty());
  }
  set_log_level(saved);
}

TEST(Log, DebugLevelShowsEverything) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  CerrCapture cap;
  PTDP_LOG_DEBUG << "d";
  PTDP_LOG_INFO << "i";
  PTDP_LOG_ERROR << "e";
  EXPECT_NE(cap.text().find("[debug]"), std::string::npos);
  EXPECT_NE(cap.text().find("[info]"), std::string::npos);
  EXPECT_NE(cap.text().find("[error]"), std::string::npos);
  set_log_level(saved);
}

TEST(TensorErrors, ConcatRejectsMismatchedShapes) {
  tensor::Tensor a({2, 3}), b({2, 4});
  EXPECT_THROW(tensor::concat({a, b}, 0), CheckError);  // dim 1 differs
  EXPECT_NO_THROW(tensor::concat({a, b}, 1));
  EXPECT_THROW(tensor::concat({}, 0), CheckError);
}

TEST(TensorErrors, BinaryOpsRejectMismatchedShapes) {
  tensor::Tensor a({2, 3}), b({3, 2});
  EXPECT_THROW(tensor::add(a, b), CheckError);
  EXPECT_THROW(tensor::mul(a, b), CheckError);
  tensor::Tensor c({2, 3});
  EXPECT_THROW(tensor::add_(c, b), CheckError);
}

TEST(TensorErrors, DropoutRejectsInvalidProbability) {
  tensor::Tensor x({4});
  tensor::Tensor mask;
  Rng rng(1);
  EXPECT_THROW(tensor::dropout(x, 1.0f, rng, mask), CheckError);
  EXPECT_THROW(tensor::dropout(x, -0.1f, rng, mask), CheckError);
}

TEST(TensorErrors, UndefinedTensorDataThrows) {
  tensor::Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), CheckError);
}

TEST(DataErrors, MlmRejectsInvalidOptions) {
  model::Microbatch mb;
  mb.s = 4;
  mb.b = 1;
  mb.tokens = {1, 2, 3, 4};
  EXPECT_THROW(data::apply_mlm_masking(mb, 32, {.mask_prob = 0.0f}, 1), CheckError);
  EXPECT_THROW(data::apply_mlm_masking(mb, 32, {.mask_prob = 0.15f,
                                                .mask_token = 99},
                                       1),
               CheckError);
}

TEST(DataErrors, MlmAlwaysSelectsAtLeastOnePosition) {
  // Tiny microbatch + tiny mask_prob: the degenerate-draw fallback fires.
  model::Microbatch mb;
  mb.s = 2;
  mb.b = 1;
  mb.tag = 3;
  mb.tokens = {1, 2};
  data::apply_mlm_masking(mb, 32, {.mask_prob = 0.0001f}, 1);
  float wsum = 0;
  for (float w : mb.loss_weights) wsum += w;
  EXPECT_GE(wsum, 1.0f);
}

TEST(ParallelConfig, ValidationCatchesEachConstraint) {
  model::GptConfig m;
  m.num_layers = 4;
  m.hidden = 16;
  m.heads = 4;
  m.vocab = 32;
  m.seq = 8;

  core::ParallelConfig ok;
  EXPECT_NO_THROW(ok.validate(m, 8));

  core::ParallelConfig bad_batch;
  bad_batch.b = 3;
  EXPECT_THROW(bad_batch.validate(m, 8), CheckError);  // 8 % 3 != 0

  core::ParallelConfig bad_layers;
  bad_layers.p = 3;
  EXPECT_THROW(bad_layers.validate(m, 9), CheckError);  // 4 layers % 3

  core::ParallelConfig bad_heads;
  bad_heads.t = 8;
  EXPECT_THROW(bad_heads.validate(m, 8), CheckError);  // 4 heads % 8

  core::ParallelConfig bad_inter;
  bad_inter.p = 2;
  bad_inter.v = 2;
  bad_inter.schedule = pipeline::ScheduleType::kInterleaved;
  bad_inter.b = 1;
  // m = 3 microbatches is not a multiple of p = 2.
  EXPECT_THROW(bad_inter.validate(m, 3), CheckError);
  EXPECT_NO_THROW(bad_inter.validate(m, 4));

  core::ParallelConfig stray_v;
  stray_v.v = 2;  // v > 1 without the interleaved schedule
  EXPECT_THROW(stray_v.validate(m, 8), CheckError);
}

TEST(ParallelConfig, StrIsHumanReadable) {
  core::ParallelConfig cfg;
  cfg.p = 2;
  cfg.t = 4;
  cfg.d = 8;
  cfg.b = 2;
  cfg.scatter_gather = true;
  const std::string s = cfg.str();
  EXPECT_NE(s.find("p=2"), std::string::npos);
  EXPECT_NE(s.find("t=4"), std::string::npos);
  EXPECT_NE(s.find("d=8"), std::string::npos);
  EXPECT_NE(s.find("s/g"), std::string::npos);
}

TEST(Planner, InterleavingCanBeDisabled) {
  core::PlannerInput input;
  input.model.num_layers = 48;
  input.model.hidden = 8192;
  input.model.heads = 64;
  input.model.vocab = 51200;
  input.model.seq = 2048;
  input.n_gpus = 512;
  input.global_batch = 1536;
  input.allow_interleaving = false;
  const auto plan = core::plan_configuration(input);
  for (const auto& cand : plan.feasible) {
    EXPECT_EQ(cand.config.v, 1);
    EXPECT_NE(cand.config.schedule, pipeline::ScheduleType::kInterleaved);
  }
}

TEST(GptConfig, DerivedQuantities) {
  model::GptConfig c;
  c.hidden = 64;
  c.heads = 8;
  EXPECT_EQ(c.head_dim(), 8);
  EXPECT_EQ(c.ffn_hidden(), 256);
}

}  // namespace
}  // namespace ptdp
