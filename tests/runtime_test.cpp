// Unit tests for the runtime substrate: deterministic RNG, barrier,
// thread pool, and check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "ptdp/runtime/barrier.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"
#include "ptdp/runtime/stopwatch.hpp"
#include "ptdp/runtime/thread_pool.hpp"

namespace ptdp {
namespace {

TEST(Rng, DeterministicForSameKey) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1);
  Rng b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1, 0);
  Rng b(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.next_uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.next_uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(99);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.next_gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, DiscardSkipsDraws) {
  Rng a(11), b(11);
  for (int i = 0; i < 5; ++i) a.next_u64();
  b.discard(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SubstreamIsOrderSensitive) {
  EXPECT_NE(substream(1, 2), substream(2, 1));
  EXPECT_NE(substream(0, 0, 1), substream(0, 1, 0));
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier b(1);
  EXPECT_EQ(b.arrive_and_wait(), 0u);
  EXPECT_EQ(b.arrive_and_wait(), 1u);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> violated{false};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads increments of this phase landed.
        if (phase_counter.load() < (ph + 1) * kThreads) violated = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, InterdependentGangCompletes) {
  // Tasks that rendezvous on a barrier require pool size >= gang size.
  constexpr int kGang = 4;
  ThreadPool pool(kGang);
  Barrier barrier(kGang);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < kGang; ++i) {
    futs.push_back(pool.submit([&] { barrier.arrive_and_wait(); }));
  }
  for (auto& f : futs) f.get();
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PTDP_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    PTDP_CHECK(false) << "custom context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"), std::string::npos);
  }
}

TEST(Check, ComparisonsIncludeOperands) {
  try {
    PTDP_CHECK_EQ(3, 4);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("lhs=3"), std::string::npos);
    EXPECT_NE(msg.find("rhs=4"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 5.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

}  // namespace
}  // namespace ptdp
