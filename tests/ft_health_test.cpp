// HealthMonitor unit tests plus the self-healing acceptance tests: an
// injected *degradation* (busy-spinning straggler, silent hang) — not a
// clean crash — must be detected within a bounded number of steps,
// escalated warn -> restart-in-place -> evict, healed by an elastic
// relayout onto one fewer rank, and the run must finish with final weights
// BITWISE identical to a trajectory-matched fault-free reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/ft/health.hpp"
#include "ptdp/ft/supervisor.hpp"

namespace ptdp::ft {
namespace {

using core::EngineOptions;
using core::PtdpEngine;

// ---- HealthMonitor unit tests ----------------------------------------------

// Feeds `steps` uniform samples to every rank except `slow_rank`, which gets
// busy = `slow_busy`. Returns the monitor's standing verdict (if any).
std::optional<RankVerdict> feed(HealthMonitor& m, int world, int steps,
                                int slow_rank, double base_busy,
                                double slow_busy) {
  for (int step = 0; step < steps; ++step) {
    for (int r = 0; r < world; ++r) {
      const double busy = r == slow_rank ? slow_busy : base_busy;
      m.record_step(r, static_cast<std::uint64_t>(step), busy + 1e-4, busy,
                    1e-4);
    }
  }
  return m.verdict();
}

TEST(HealthMonitor, HealthyWorldStaysHealthy) {
  HealthMonitor m;
  m.begin_run(4);
  const auto v = feed(m, 4, 10, /*slow_rank=*/-1, 1e-3, 0.0);
  EXPECT_FALSE(v.has_value());
  EXPECT_NO_THROW(m.enforce());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(m.health(r), Health::kHealthy);
}

TEST(HealthMonitor, StragglerLatchedAfterPatience) {
  HealthOptions o;
  o.warmup_steps = 2;
  o.straggler_patience = 3;
  HealthMonitor m(o);
  m.begin_run(4);
  const auto v = feed(m, 4, 10, /*slow_rank=*/2, 1e-3, 1e-2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rank, 2);
  EXPECT_EQ(v->health, Health::kStraggler);
  // Suspect from the first post-warmup step; verdict `patience` steps later.
  EXPECT_EQ(v->suspect_since, o.warmup_steps);
  EXPECT_EQ(v->step, o.warmup_steps + static_cast<std::uint64_t>(o.straggler_patience) - 1);
  EXPECT_GT(v->busy_ewma_s, v->peer_median_s * m.options().straggler_ratio);
  EXPECT_EQ(m.health(2), Health::kStraggler);
  EXPECT_THROW(m.enforce(), DegradedWorldError);
  try {
    m.enforce();
  } catch (const DegradedWorldError& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.health(), Health::kStraggler);
  }
}

TEST(HealthMonitor, WarmupStepsAreNeverJudged) {
  HealthOptions o;
  o.warmup_steps = 5;
  o.straggler_patience = 2;
  HealthMonitor m(o);
  m.begin_run(2);
  // Rank 1 is 100x slower, but only during warmup — no verdict may latch.
  const auto v = feed(m, 2, 5, /*slow_rank=*/1, 1e-3, 1e-1);
  EXPECT_FALSE(v.has_value());
  EXPECT_NO_THROW(m.enforce());
}

TEST(HealthMonitor, MinBusyFloorSuppressesNoise) {
  HealthOptions o;
  o.min_busy_seconds = 1e-4;
  HealthMonitor m(o);
  m.begin_run(4);
  // 10x relative skew, but far below the absolute floor: still healthy.
  const auto v = feed(m, 4, 10, /*slow_rank=*/1, 1e-6, 1e-5);
  EXPECT_FALSE(v.has_value());
}

TEST(HealthMonitor, SuspectStreakResetsOnRecovery) {
  HealthOptions o;
  o.warmup_steps = 0;
  o.straggler_patience = 3;
  o.ewma_alpha = 1.0;  // no smoothing: each sample IS the EWMA
  HealthMonitor m(o);
  m.begin_run(2);
  auto sample = [&](int step, double r1_busy) {
    m.record_step(0, static_cast<std::uint64_t>(step), 1e-3, 1e-3, 0.0);
    m.record_step(1, static_cast<std::uint64_t>(step), 1e-3, r1_busy, 0.0);
  };
  // Two suspect steps, one healthy step, two suspect steps: never hits
  // three consecutive, so no verdict.
  sample(0, 1e-2);
  sample(1, 1e-2);
  sample(2, 1e-3);
  sample(3, 1e-2);
  sample(4, 1e-2);
  EXPECT_FALSE(m.verdict().has_value());
  sample(5, 1e-2);  // third consecutive suspect step — verdict
  ASSERT_TRUE(m.verdict().has_value());
  EXPECT_EQ(m.verdict()->rank, 1);
  EXPECT_EQ(m.verdict()->suspect_since, 3u);
}

TEST(HealthMonitor, FirstVerdictWins) {
  HealthOptions o;
  o.warmup_steps = 0;
  o.straggler_patience = 1;
  HealthMonitor m(o);
  m.begin_run(4);
  feed(m, 4, 3, /*slow_rank=*/3, 1e-3, 1e-2);
  ASSERT_TRUE(m.verdict().has_value());
  EXPECT_EQ(m.verdict()->rank, 3);
  m.note_hung(0, 9);  // later knowledge must not displace the latched verdict
  EXPECT_EQ(m.verdict()->rank, 3);
  EXPECT_EQ(m.health(0), Health::kHung);  // ...but per-rank health reflects it
}

TEST(HealthMonitor, TwoRankWorldUsesTheOtherRankAsMedian) {
  HealthOptions o;
  o.warmup_steps = 0;
  o.straggler_patience = 2;
  HealthMonitor m(o);
  m.begin_run(2);
  const auto v = feed(m, 2, 6, /*slow_rank=*/1, 1e-3, 1e-2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rank, 1);
  EXPECT_NEAR(v->peer_median_s, 1e-3, 1e-4);
}

TEST(HealthMonitor, HeartbeatAgeRuleWithVirtualClock) {
  HealthOptions o;
  o.heartbeat_timeout_s = 1.0;
  HealthMonitor m(o);
  std::int64_t now = 0;
  m.set_clock([&now] { return now; });
  m.begin_run(3);
  for (int r = 0; r < 3; ++r) m.heartbeat(r);
  now = 500'000'000;  // +0.5 s: everyone fresh
  EXPECT_NO_THROW(m.enforce());
  now = 1'000'000'000;
  for (int r = 0; r < 3; ++r)
    if (r != 1) m.heartbeat(r);  // ranks 0 and 2 keep beating; rank 1 goes quiet
  now = 1'600'000'000;  // rank 1's last beat is now 1.6 s old, others 0.6 s
  EXPECT_THROW(m.enforce(), DegradedWorldError);
  ASSERT_TRUE(m.verdict().has_value());
  EXPECT_EQ(m.verdict()->rank, 1);
  EXPECT_EQ(m.verdict()->health, Health::kHung);
}

TEST(HealthMonitor, NoteHungLatchesVerdictAndBeginRunClearsIt) {
  HealthMonitor m;
  m.begin_run(4);
  m.note_hung(2, 7);
  ASSERT_TRUE(m.verdict().has_value());
  EXPECT_EQ(m.verdict()->rank, 2);
  EXPECT_EQ(m.verdict()->health, Health::kHung);
  EXPECT_THROW(m.enforce(), DegradedWorldError);
  m.begin_run(4);
  EXPECT_FALSE(m.verdict().has_value());
  EXPECT_NO_THROW(m.enforce());
  EXPECT_EQ(m.health(2), Health::kHealthy);
}

// ---- end-to-end self-healing -----------------------------------------------

constexpr int kSteps = 6;
constexpr int kCkptEvery = 2;

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

class SelfHealingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("ptdp_heal_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    config_.num_layers = 2;
    config_.hidden = 16;
    config_.heads = 4;
    config_.vocab = 32;
    config_.seq = 8;
    config_.seed = 99;
    corpus_ = std::make_unique<data::SyntheticCorpus>(config_.vocab, 4);
    dataset_ = std::make_unique<data::TokenDataset>(corpus_->generate(4000),
                                                    config_.seq);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  EngineOptions options_for(int p, int t, int d) {
    EngineOptions o;
    o.model = config_;
    o.parallel.p = p;
    o.parallel.t = t;
    o.parallel.d = d;
    o.parallel.b = 1;
    o.parallel.recompute = false;
    o.global_batch = 8;
    o.optimizer = EngineOptions::Opt::kAdam;
    o.adam.lr = 2e-3f;
    o.ckpt_keep = 8;  // every commit survives — references need mid-run ones
    return o;
  }

  // The elastic SPMD body: on the full 2-rank world trains under t=2 with
  // the monitor fed from each step's busy/wait split; on the shrunken
  // 1-rank world (post-eviction) merges the newest committed t=2 shards
  // into a serial checkpoint and resumes under t=1 — the same recipe
  // train_main's supervised mode uses.
  void elastic_body(dist::Comm& comm, const std::string& dir,
                    std::uint64_t committed,
                    const std::shared_ptr<HealthMonitor>& monitor) {
    if (comm.size() == 2) {
      PtdpEngine engine(comm, options_for(1, 2, 1));
      int start = 0;
      if (committed > 0) start = static_cast<int>(engine.load_checkpoint(dir));
      data::ShardedLoader loader(*dataset_, 8, 1, 1, 0, 8);
      for (int step = start; step < kSteps; ++step) {
        engine.train_step(loader.next_batch(step));
        if (monitor) {
          const auto& s = engine.last_stats();
          monitor->record_step(comm.world_rank(),
                               static_cast<std::uint64_t>(step),
                               s.step_seconds, s.busy_seconds,
                               s.comm_wait_seconds);
          monitor->enforce();
        }
        if ((step + 1) % kCkptEvery == 0) {
          engine.save_checkpoint(dir, static_cast<std::uint64_t>(step + 1));
        }
      }
      return;
    }
    ASSERT_EQ(comm.size(), 1);
    const auto best = ckpt::find_latest_valid_checkpoint(dir);
    ASSERT_TRUE(best.has_value());
    const std::string merged = dir + "/merged";
    std::filesystem::create_directories(merged);
    ckpt::merge_shards(best->shard_dir, 1, 2, ckpt::shard_path(merged, 0, 0, 0));
    PtdpEngine engine(comm, options_for(1, 1, 1));
    const int start = static_cast<int>(engine.load_resharded(merged));
    data::ShardedLoader loader(*dataset_, 8, 1, 1, 0, 8);
    for (int step = start; step < kSteps; ++step) {
      engine.train_step(loader.next_batch(step));
      if ((step + 1) % kCkptEvery == 0) {
        engine.save_checkpoint(dir, static_cast<std::uint64_t>(step + 1));
      }
    }
  }

  // Trajectory-matched fault-free reference for an elastic run that was
  // evicted down to 1 rank after resuming from committed step `s`: a clean
  // t=2 run's step-`s` commit is bitwise identical to the faulty run's (the
  // PR-3 determinism guarantee), so merging it and continuing serially
  // reproduces the faulty run's post-eviction trajectory exactly.
  std::string reference_final(const std::string& name, std::uint64_t s) {
    const std::string ref = dir((name + std::string("-ref")).c_str());
    std::filesystem::create_directories(ref);
    {
      dist::World world(2);
      world.run([&](dist::Comm& comm) {
        elastic_body(comm, ref, 0, nullptr);
      });
    }
    const std::string cont = dir((name + std::string("-cont")).c_str());
    std::filesystem::create_directories(cont + "/merged");
    ckpt::merge_shards(ref + "/step-" + std::to_string(s), 1, 2,
                       ckpt::shard_path(cont + "/merged", 0, 0, 0));
    dist::World world(1);
    world.run([&](dist::Comm& comm) {
      PtdpEngine engine(comm, options_for(1, 1, 1));
      ASSERT_EQ(engine.load_resharded(cont + "/merged"), s);
      data::ShardedLoader loader(*dataset_, 8, 1, 1, 0, 8);
      for (int step = static_cast<int>(s); step < kSteps; ++step) {
        engine.train_step(loader.next_batch(step));
        if ((step + 1) % kCkptEvery == 0) {
          engine.save_checkpoint(cont, static_cast<std::uint64_t>(step + 1));
        }
      }
    });
    return cont;
  }

  void expect_bitwise_identical_final(const std::string& a,
                                      const std::string& b) {
    const auto ca = ckpt::find_latest_valid_checkpoint(a);
    const auto cb = ckpt::find_latest_valid_checkpoint(b);
    ASSERT_TRUE(ca.has_value());
    ASSERT_TRUE(cb.has_value());
    EXPECT_EQ(ca->step(), static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(cb->step(), static_cast<std::uint64_t>(kSteps));
    ASSERT_EQ(ca->manifest.shards.size(), cb->manifest.shards.size());
    for (std::size_t i = 0; i < ca->manifest.shards.size(); ++i) {
      const auto& ea = ca->manifest.shards[i];
      const auto& eb = cb->manifest.shards[i];
      EXPECT_EQ(ea.file, eb.file);
      EXPECT_EQ(ea.crc, eb.crc) << ea.file;
      EXPECT_EQ(read_bytes(a + "/" + ea.file), read_bytes(b + "/" + eb.file))
          << ea.file;
    }
  }

  std::string dir(const char* name) { return (root_ / name).string(); }

  std::filesystem::path root_;
  model::GptConfig config_;
  std::unique_ptr<data::SyntheticCorpus> corpus_;
  std::unique_ptr<data::TokenDataset> dataset_;
};

TEST_F(SelfHealingFixture, StragglerIsEvictedAndElasticResumeIsBitwise) {
  // Rank 1 develops a persistent (sticky) slowdown: every send busy-spins.
  // The ladder must go restart-in-place (offense 1) -> evict (offense 2),
  // and the serial continuation must match the fault-free reference.
  const std::string d = dir("straggler");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->slow_rank(1, dist::FaultSite::kSend, 1,
                  std::chrono::microseconds(300));

  HealthOptions ho;
  ho.straggler_patience = 2;
  auto monitor = std::make_shared<HealthMonitor>(ho);

  SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 4;
  sup.fault_plan = plan;
  sup.health = monitor;
  sup.backoff_initial_s = 0.0;
  TrainSupervisor supervisor(sup);
  const auto& stats = supervisor.run(
      [](const RestartContext& ctx) {
        return std::make_unique<dist::World>(ctx.evicted.empty() ? 2 : 1);
      },
      [&](dist::Comm& comm, std::uint64_t committed, int) {
        elastic_body(comm, d, committed, monitor);
      });

  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.evictions, 1);
  ASSERT_GE(stats.events.size(), 2u);
  for (const auto& e : stats.events) {
    EXPECT_EQ(e.victim, 1);
    EXPECT_EQ(e.victim_health, Health::kStraggler);
    // Detection within K = patience steps of the streak's start.
    EXPECT_LE(e.detect_latency_steps,
              static_cast<std::uint64_t>(ho.straggler_patience));
  }
  EXPECT_FALSE(stats.events.front().evicted);  // first offense: warn + restart
  EXPECT_TRUE(stats.events.back().evicted);    // second offense: evict

  const std::uint64_t s = stats.events.back().resumed_step;
  ASSERT_GT(s, 0u);  // the post-eviction resume came from a committed step
  expect_bitwise_identical_final(d, reference_final("straggler", s));
}

TEST_F(SelfHealingFixture, SilentHangIsTimedOutEvictedAndResumed) {
  // Probe a clean run to place the hang after the step-2 commit: rank 1
  // stops answering mid-run, forever. Without watchdogs this deadlocks; with
  // them rank 0's RankTimeout names rank 1 as the root cause.
  const std::string probe_dir = dir("hang-probe");
  std::filesystem::create_directories(probe_dir);
  auto probe = std::make_shared<dist::FaultPlan>();
  {
    SupervisorOptions psup;
    psup.ckpt_dir = probe_dir;
    psup.fault_plan = probe;
    TrainSupervisor psupervisor(psup);
    psupervisor.run(
        [](int) { return std::make_unique<dist::World>(2); },
        [&](dist::Comm& comm, std::uint64_t committed, int) {
          elastic_body(comm, probe_dir, committed, nullptr);
        });
  }
  const std::uint64_t total = probe->count(1, dist::FaultSite::kSend);
  ASSERT_GT(total, 2u);

  const std::string d = dir("hang");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->hang(1, dist::FaultSite::kSend, total / 2);

  SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 2;
  sup.fault_plan = plan;
  sup.timeouts.op_timeout_ms = 300;
  sup.escalation.restarts_before_evict = 0;  // hung ranks get no grace here
  sup.backoff_initial_s = 0.0;
  TrainSupervisor supervisor(sup);
  const auto& stats = supervisor.run(
      [](const RestartContext& ctx) {
        return std::make_unique<dist::World>(ctx.evicted.empty() ? 2 : 1);
      },
      [&](dist::Comm& comm, std::uint64_t committed, int) {
        elastic_body(comm, d, committed, nullptr);
      });

  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.evictions, 1);
  ASSERT_EQ(stats.events.size(), 1u);
  EXPECT_EQ(stats.events[0].victim, 1);
  EXPECT_EQ(stats.events[0].victim_health, Health::kHung);
  EXPECT_TRUE(stats.events[0].evicted);
  EXPECT_NE(std::string(stats.events[0].cause).find("timeout"),
            std::string::npos);

  const std::uint64_t s = stats.events[0].resumed_step;
  ASSERT_GT(s, 0u);
  expect_bitwise_identical_final(d, reference_final("hang", s));
}

}  // namespace
}  // namespace ptdp::ft
