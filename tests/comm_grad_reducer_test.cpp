// GradReducer tests: the extracted data-parallel reduction plane must
// compute the exact replica mean (bucketed or per-param), honour defer
// marks, reject double ready-signals, and — the communication-plane
// contract — produce bitwise-identical final weights for every combination
// of scatter_gather x overlap_grad_reduce on full PTD-P engine grids.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "ptdp/comm/grad_reducer.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::comm {
namespace {

using model::Param;
using tensor::Tensor;

// A chunk of `count` params with `elems` elements each; grads are salted by
// (rank, param index, element index) so the replica mean is predictable.
std::vector<std::unique_ptr<Param>> make_chunk(int rank, int chunk, int count,
                                               std::int64_t elems) {
  std::vector<std::unique_ptr<Param>> owned;
  for (int i = 0; i < count; ++i) {
    auto p = std::make_unique<Param>();
    p->name = "chunk" + std::to_string(chunk) + ".p" + std::to_string(i);
    p->value = Tensor({elems});
    p->grad = Tensor({elems});
    auto g = p->grad.data();
    for (std::size_t j = 0; j < g.size(); ++j) {
      g[j] = 0.5f * static_cast<float>(rank + 1) + static_cast<float>(i) +
             0.25f * static_cast<float>(j) + static_cast<float>(chunk);
    }
    owned.push_back(std::move(p));
  }
  return owned;
}

float expected_mean(int d, int chunk, int i, std::size_t j) {
  float rank_sum = 0.f;
  for (int r = 0; r < d; ++r) rank_sum += 0.5f * static_cast<float>(r + 1);
  return rank_sum / static_cast<float>(d) + static_cast<float>(i) +
         0.25f * static_cast<float>(j) + static_cast<float>(chunk);
}

TEST(GradReducer, FinishComputesDataParallelMean) {
  const int d = 4, chunks = 2, count = 3;
  const std::int64_t elems = 7;
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    std::vector<std::vector<std::unique_ptr<Param>>> owned;
    std::vector<model::ParamRefs> refs;
    for (int c = 0; c < chunks; ++c) {
      owned.push_back(make_chunk(comm.rank(), c, count, elems));
      model::ParamRefs r;
      for (auto& p : owned.back()) r.push_back(p.get());
      refs.push_back(std::move(r));
    }
    GradReducer reducer(refs, comm, GradReducerOptions{});
    ASSERT_TRUE(reducer.enabled());
    ASSERT_EQ(reducer.num_chunks(), chunks);
    reducer.finish();
    for (int c = 0; c < chunks; ++c) {
      for (int i = 0; i < count; ++i) {
        auto g = owned[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]
                     ->grad.data();
        for (std::size_t j = 0; j < g.size(); ++j) {
          EXPECT_FLOAT_EQ(g[j], expected_mean(d, c, i, j))
              << "chunk " << c << " param " << i << " elem " << j;
        }
      }
    }
    EXPECT_EQ(reducer.elems_reduced(),
              static_cast<std::uint64_t>(chunks * count * elems));
  });
}

TEST(GradReducer, BucketingMatchesPerParamPath) {
  // Bucket boundaries must not change the arithmetic: cap=5 splits a
  // 3x7-element chunk mid-stream, cap<=0 reduces one param at a time, and
  // the resulting grads must agree bitwise.
  const int d = 2, count = 3;
  const std::int64_t elems = 7;
  std::map<std::string, Tensor> by_cap[2];
  const std::int64_t caps[2] = {5, 0};
  for (int k = 0; k < 2; ++k) {
    std::mutex mu;
    dist::World world(d);
    world.run([&](dist::Comm& comm) {
      auto owned = make_chunk(comm.rank(), /*chunk=*/0, count, elems);
      model::ParamRefs refs;
      for (auto& p : owned) refs.push_back(p.get());
      GradReducerOptions opts;
      opts.bucket_elems = caps[k];
      GradReducer reducer({refs}, comm, opts);
      reducer.finish();
      std::lock_guard lock(mu);
      for (auto& p : owned) {
        by_cap[k].emplace("rank" + std::to_string(comm.rank()) + "/" + p->name,
                          p->grad.clone());
      }
    });
  }
  ASSERT_EQ(by_cap[0].size(), by_cap[1].size());
  for (auto& [name, grad] : by_cap[0]) {
    EXPECT_EQ(tensor::max_abs_diff(grad, by_cap[1].at(name)), 0.0f) << name;
  }
}

TEST(GradReducer, DeferredChunksWaitForFinish) {
  const int d = 2;
  const std::int64_t elems = 4;
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    auto c0 = make_chunk(comm.rank(), 0, /*count=*/1, elems);
    auto c1 = make_chunk(comm.rank(), 1, /*count=*/1, elems);
    const float raw = c1[0]->grad.data()[0];
    GradReducer reducer({{c0[0].get()}, {c1[0].get()}}, comm, GradReducerOptions{},
                        /*defer=*/{false, true});
    reducer.on_chunk_grads_ready(0);  // reduces immediately (overlap on)
    EXPECT_FLOAT_EQ(c0[0]->grad.data()[0], expected_mean(d, 0, 0, 0));
    reducer.on_chunk_grads_ready(1);  // deferred: must stay untouched
    EXPECT_FLOAT_EQ(c1[0]->grad.data()[0], raw);
    reducer.finish();
    EXPECT_FLOAT_EQ(c1[0]->grad.data()[0], expected_mean(d, 1, 0, 0));
  });
}

TEST(GradReducer, OverlapOffDefersEverythingToFinish) {
  const int d = 2;
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    auto c0 = make_chunk(comm.rank(), 0, /*count=*/1, /*elems=*/4);
    const float raw = c0[0]->grad.data()[0];
    GradReducerOptions opts;
    opts.overlap = false;
    GradReducer reducer({{c0[0].get()}}, comm, opts);
    reducer.on_chunk_grads_ready(0);  // no-op: hook path disabled
    EXPECT_FLOAT_EQ(c0[0]->grad.data()[0], raw);
    reducer.finish();
    EXPECT_FLOAT_EQ(c0[0]->grad.data()[0], expected_mean(d, 0, 0, 0));
  });
}

TEST(GradReducer, DoubleReadySignalThrows) {
  dist::World world(2);
  EXPECT_THROW(world.run([&](dist::Comm& comm) {
                 auto c0 = make_chunk(comm.rank(), 0, 1, 4);
                 GradReducer reducer({{c0[0].get()}}, comm, GradReducerOptions{});
                 reducer.on_chunk_grads_ready(0);
                 reducer.on_chunk_grads_ready(0);  // same batch: a bug
               }),
               dist::RankFailure);
}

TEST(GradReducer, SoloDataGroupIsNoop) {
  dist::Comm solo = dist::Comm::solo();
  auto c0 = make_chunk(/*rank=*/0, 0, /*count=*/2, /*elems=*/4);
  model::ParamRefs refs{c0[0].get(), c0[1].get()};
  const float raw = c0[0]->grad.data()[0];
  GradReducer reducer({refs}, solo, GradReducerOptions{});
  EXPECT_FALSE(reducer.enabled());
  reducer.on_chunk_grads_ready(0);
  reducer.finish();
  EXPECT_FLOAT_EQ(c0[0]->grad.data()[0], raw);
  EXPECT_EQ(reducer.elems_reduced(), 0u);
}

// ---- communication-plane contract on the full engine ----------------------
//
// For PTD-P grids, scatter_gather and overlap_grad_reduce are pure
// communication-plane toggles: all four combinations must produce final
// weights that agree *bitwise* on every rank, and scatter_gather must cut
// inter-stage p2p bytes by exactly 1/t.

using ModeGrid = std::tuple<int, int, int, int, pipeline::ScheduleType>;

class EngineCommModeTest : public ::testing::TestWithParam<ModeGrid> {};

TEST_P(EngineCommModeTest, FinalWeightsBitwiseIdenticalAcrossModes) {
  const auto [p, t, d, v, schedule] = GetParam();
  const std::int64_t B = 8, b = 1;
  const int steps = 2;
  model::GptConfig c;
  c.num_layers = static_cast<std::int64_t>(p * v);
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 2024;
  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  struct ModeResult {
    std::map<std::string, Tensor> weights;  // "rank<r>/<param>" -> value
    std::uint64_t p2p_bytes = 0;
  };
  const std::pair<bool, bool> modes[] = {  // (scatter_gather, overlap)
      {false, false}, {false, true}, {true, false}, {true, true}};
  std::vector<ModeResult> results;

  for (const auto& [sg, overlap] : modes) {
    ModeResult out;
    std::mutex mu;
    dist::World world(p * t * d);
    world.run([&](dist::Comm& comm) {
      core::EngineOptions options;
      options.model = c;
      options.parallel.p = p;
      options.parallel.t = t;
      options.parallel.d = d;
      options.parallel.v = v;
      options.parallel.b = b;
      options.parallel.schedule = schedule;
      options.parallel.recompute = false;
      options.parallel.scatter_gather = sg;
      options.overlap_grad_reduce = overlap;
      options.global_batch = B;
      options.optimizer = core::EngineOptions::Opt::kSgd;
      options.sgd.lr = 0.1f;
      core::PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, B, b, d,
                                 engine.groups().coord().data, /*seed=*/88);
      for (int s = 0; s < steps; ++s) engine.train_step(loader.next_batch(s));
      std::lock_guard lock(mu);
      out.p2p_bytes += engine.executor().comm_stats().p2p_bytes_sent;
      for (Param* param : engine.params()) {
        out.weights.emplace("rank" + std::to_string(comm.rank()) + "/" + param->name,
                            param->value.clone());
      }
    });
    results.push_back(std::move(out));
  }

  for (std::size_t mode = 1; mode < results.size(); ++mode) {
    ASSERT_EQ(results[mode].weights.size(), results[0].weights.size());
    for (auto& [name, w] : results[mode].weights) {
      ASSERT_TRUE(results[0].weights.contains(name)) << name;
      EXPECT_EQ(tensor::max_abs_diff(w, results[0].weights.at(name)), 0.0f)
          << name << " differs in mode sg=" << modes[mode].first
          << " overlap=" << modes[mode].second;
    }
  }
  if (p > 1 && t > 1) {
    // modes[1] = sg off, modes[3] = sg on (overlap on for both).
    ASSERT_GT(results[1].p2p_bytes, 0u);
    EXPECT_EQ(results[3].p2p_bytes * static_cast<std::uint64_t>(t),
              results[1].p2p_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, EngineCommModeTest,
    ::testing::Values(
        // The acceptance grid: full PTD-P.
        ModeGrid{2, 2, 2, 1, pipeline::ScheduleType::kOneFOneB},
        // Tied-embedding defer path under interleaving with data parallel.
        ModeGrid{2, 1, 2, 2, pipeline::ScheduleType::kInterleaved},
        ModeGrid{2, 2, 1, 2, pipeline::ScheduleType::kInterleaved}));

}  // namespace
}  // namespace ptdp::comm
