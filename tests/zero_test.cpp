// ZeRO sharded-optimizer tests: the sharded step is bit-level equivalent to
// replicated data-parallel Adam (the property ZeRO guarantees), and the
// optimizer-state memory per rank shrinks by ~1/d (the property ZeRO
// exists for).

#include <gtest/gtest.h>

#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/tensor/ops.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

namespace ptdp::zero {
namespace {

using model::Param;
using tensor::Tensor;

// Builds identical params with per-"replica" grads (as if each replica saw
// a different microbatch). Grad layout: replica r's grad for element i is
// deterministic in (r, i).
std::vector<Param> make_params(int replica, std::uint64_t seed) {
  Rng wrng(seed, 0);  // weights identical across replicas
  Rng grng(seed, substream(1, static_cast<std::uint64_t>(replica)));
  std::vector<Param> params;
  for (auto [name, n] : {std::pair{"a", 7}, {"b", 12}, {"c", 5}}) {
    Param p;
    p.name = name;
    p.value = Tensor::randn({n}, wrng);
    p.grad = Tensor::randn({n}, grng);
    params.push_back(std::move(p));
  }
  return params;
}

// Reference: replicated DP Adam — average grads over replicas, step.
std::vector<Tensor> replicated_reference(int d, std::uint64_t seed, int steps) {
  std::vector<Param> params = make_params(0, seed);
  model::ParamRefs refs;
  for (auto& p : params) refs.push_back(&p);
  optim::Adam adam(refs, optim::AdamOptions{.lr = 0.05f});
  for (int s = 0; s < steps; ++s) {
    // Average the grads the d replicas would produce at this step.
    for (auto& p : params) p.grad.zero();
    for (int r = 0; r < d; ++r) {
      auto rep = make_params(r, seed + static_cast<std::uint64_t>(s));
      for (std::size_t i = 0; i < params.size(); ++i) {
        tensor::axpy_(params[i].grad, 1.0f / static_cast<float>(d), rep[i].grad);
      }
    }
    adam.step();
  }
  std::vector<Tensor> result;
  for (auto& p : params) result.push_back(p.value.clone());
  return result;
}

class ZeroEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ZeroEquivalenceTest, MatchesReplicatedAdamOverSteps) {
  const int d = GetParam();
  const std::uint64_t seed = 77;
  const int steps = 3;
  auto expected = replicated_reference(d, seed, steps);

  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    std::vector<Param> params = make_params(comm.rank(), seed);
    model::ParamRefs refs;
    for (auto& p : params) refs.push_back(&p);
    ZeroShardedAdam zero(refs, comm, ZeroAdamOptions{{.lr = 0.05f}});
    for (int s = 0; s < steps; ++s) {
      // Fresh per-step grads (per replica).
      auto rep = make_params(comm.rank(), seed + static_cast<std::uint64_t>(s));
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i].grad.copy_from(rep[i].grad);
      }
      zero.step();
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(tensor::allclose(params[i].value, expected[i], 1e-5f, 1e-6f))
          << params[i].name << " on rank " << comm.rank();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(DataParallelSizes, ZeroEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ZeroShardedAdam, StateShrinksWithShardCount) {
  // 24 elems over d ranks: shard = ceil(24/d), state = 3 tensors * shard.
  for (int d : {1, 2, 4}) {
    dist::World world(d);
    world.run([&](dist::Comm& comm) {
      std::vector<Param> params = make_params(comm.rank(), 5);
      model::ParamRefs refs;
      for (auto& p : params) refs.push_back(&p);
      ZeroShardedAdam zero(refs, comm, ZeroAdamOptions{});
      EXPECT_EQ(zero.shard_elems(), (24 + d - 1) / d);
      EXPECT_EQ(zero.local_state_bytes(),
                3 * zero.shard_elems() * static_cast<std::int64_t>(sizeof(float)));
    });
  }
}

TEST(ZeroShardedAdam, PaddingHandlesNonDivisibleTotals) {
  // 24 elements over 5 ranks: padded to 25, shard = 5. Must still be exact.
  const int d = 5;
  auto expected = replicated_reference(d, 31, 2);
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    std::vector<Param> params = make_params(comm.rank(), 31);
    model::ParamRefs refs;
    for (auto& p : params) refs.push_back(&p);
    ZeroShardedAdam zero(refs, comm, ZeroAdamOptions{{.lr = 0.05f}});
    for (int s = 0; s < 2; ++s) {
      auto rep = make_params(comm.rank(), 31 + static_cast<std::uint64_t>(s));
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i].grad.copy_from(rep[i].grad);
      }
      zero.step();
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(tensor::allclose(params[i].value, expected[i], 1e-5f, 1e-6f));
    }
  });
}

TEST(ZeroShardedAdam, ParamsStayReplicatedAfterStep) {
  // After the all-gather, every rank must hold identical full weights.
  const int d = 3;
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    std::vector<Param> params = make_params(comm.rank(), 13);
    model::ParamRefs refs;
    for (auto& p : params) refs.push_back(&p);
    ZeroShardedAdam zero(refs, comm, ZeroAdamOptions{});
    zero.step();
    // Compare element 0 of each param across ranks via all-reduce max/min.
    for (auto& p : params) {
      for (std::int64_t i = 0; i < p.value.numel(); ++i) {
        const float v = p.value.data()[static_cast<std::size_t>(i)];
        const float mx = comm.all_reduce_scalar(v, dist::ReduceOp::kMax);
        const float mn = comm.all_reduce_scalar(v, dist::ReduceOp::kMin);
        ASSERT_EQ(mx, mn) << p.name << "[" << i << "] diverged across replicas";
      }
    }
  });
}

TEST(ZeroShardedAdam, StateTensorsAreShardSized) {
  dist::World world(2);
  world.run([](dist::Comm& comm) {
    std::vector<Param> params = make_params(comm.rank(), 3);
    model::ParamRefs refs;
    for (auto& p : params) refs.push_back(&p);
    ZeroShardedAdam zero(refs, comm, ZeroAdamOptions{});
    auto state = zero.state_tensors();
    ASSERT_EQ(state.size(), 3u);
    for (auto& [name, t] : state) {
      EXPECT_EQ(t->numel(), zero.shard_elems()) << name;
    }
  });
}

}  // namespace
}  // namespace ptdp::zero
