// Analytics tests: every formula of §2, §3 and the Appendix checked against
// the paper's own worked numbers — Table 1 model sizes, the GPT-3 and 1T
// training-time estimates of §5.1, the bubble fractions, and the §3.5
// checkpointing optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "ptdp/core/analytics.hpp"

namespace ptdp::core {
namespace {

using model::GptConfig;

GptConfig table1_config(std::int64_t layers, std::int64_t hidden,
                        std::int64_t heads) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = hidden;
  c.heads = heads;
  c.vocab = 51200;
  c.seq = 2048;
  return c;
}

TEST(Analytics, Table1ParameterCounts) {
  // Every row of Table 1: (layers, hidden, heads) -> parameters (billion).
  struct Row {
    std::int64_t l, h, a;
    double params_b;
  };
  const Row rows[] = {
      {24, 2304, 24, 1.7},     {30, 3072, 32, 3.6},   {36, 4096, 32, 7.5},
      {40, 6144, 48, 18.4},    {48, 8192, 64, 39.1},  {60, 10240, 80, 76.1},
      {80, 12288, 96, 145.6},  {96, 16384, 128, 310.1},
      {105, 20480, 128, 529.6}, {128, 25600, 160, 1008.0},
  };
  for (const Row& r : rows) {
    // Table 1 rounds to 2-3 significant figures (the 1.7B row is 1.65B by
    // Eq. (2)); 3% covers the paper's own rounding.
    GptConfig c = table1_config(r.l, r.h, r.a);
    EXPECT_NEAR(c.paper_params() / 1e9, r.params_b, r.params_b * 0.03)
        << "l=" << r.l << " h=" << r.h;
    EXPECT_NEAR(static_cast<double>(c.exact_params()) / 1e9, r.params_b,
                r.params_b * 0.03);
  }
}

TEST(Analytics, Gpt3TrainingTimeEstimate) {
  // §5.1: GPT-3, P = 175B, T = 300B tokens, n = 1024, X = 140 TFLOP/s
  // per GPU => ~34 days.
  const double days = training_time_days(300e9, 175e9, 1024, 140e12);
  EXPECT_NEAR(days, 34.0, 1.0);
}

TEST(Analytics, TrillionParameterTrainingTimeEstimate) {
  // §5.1: P = 1T, T = 450B tokens, n = 3072, X = 163 TFLOP/s => ~84 days.
  const double days = training_time_days(450e9, 1e12, 3072, 163e12);
  EXPECT_NEAR(days, 84.0, 2.0);
}

TEST(Analytics, FlopsPerIterationMatchesAppendix) {
  // For the 1T model at B = 3072 the paper reports ~502 PFLOP/s aggregate
  // on 3072 GPUs at 163 TFLOP/s per GPU. Check that F / (aggregate rate)
  // gives a per-iteration time consistent with F = Eq. (3).
  GptConfig c = table1_config(128, 25600, 160);
  const double F = flops_per_iteration(c, 3072);
  // Per-iteration time at 502 PFLOP/s.
  const double iter_seconds = F / 502e15;
  // F ≈ 5.1e19 for this config; sanity: iteration time is ~100 s.
  EXPECT_GT(F, 1e19);
  EXPECT_NEAR(iter_seconds, 101.0, 10.0);
  EXPECT_LT(iter_seconds, 3600.0);
  // Eq. (3)'s leading term dominates: 96*B*s*l*h^2.
  const double leading = 96.0 * 3072 * 2048.0 * 128 * 25600.0 * 25600.0;
  EXPECT_NEAR(F / leading, 1.0, 0.05);
}

TEST(Analytics, BubbleFractionFormula) {
  ParallelConfig cfg;
  cfg.p = 8;
  cfg.d = 2;
  cfg.b = 2;
  // B = 128 => m = 128/(2*2) = 32; bubble = (8-1)/32.
  EXPECT_DOUBLE_EQ(bubble_fraction(cfg, 128), 7.0 / 32.0);
  cfg.v = 2;
  EXPECT_DOUBLE_EQ(bubble_fraction(cfg, 128), 7.0 / 64.0);
}

TEST(Analytics, BubbleMatchesFig6Form) {
  // §3.3.1: with t = 1, bubble = (n - d)/b' where b' = B/b. Fig. 6 point:
  // n = 32, b' = 128, d = 8 => (32-8)/128 = 0.1875.
  ParallelConfig cfg;
  cfg.d = 8;
  cfg.p = 4;  // n/d with n = 32
  cfg.b = 1;
  const std::int64_t B = 128;  // b' = B/b = 128
  EXPECT_NEAR(bubble_fraction(cfg, B), (32.0 - 8.0) / 128.0, 1e-12);
}

TEST(Analytics, EstimatedBatchTimeEq1) {
  ParallelConfig cfg;
  cfg.p = 8;
  cfg.d = 2;
  cfg.b = 4;
  // b' = B/d = 256; (256/4 + 8 - 1) * (tf + tb) = 71 * 3.
  EXPECT_DOUBLE_EQ(estimated_batch_time(cfg, 512, 1.0, 2.0), 71.0 * 3.0);
}

TEST(Analytics, MicrobatchTradeoffHasInteriorOptimum) {
  // §3.4 / Fig. 8: with tf(b) sublinear in b, Eq. (1) has an interior
  // optimal b. Use tf(b) = c1 + c2*b (fixed overhead amortized by b).
  ParallelConfig cfg;
  cfg.p = 8;
  auto time_at = [&](std::int64_t b) {
    ParallelConfig c2 = cfg;
    c2.b = b;
    const double tf = 1.0 + 0.4 * static_cast<double>(b);
    return estimated_batch_time(c2, 128, tf, 2.0 * tf);
  };
  // b = 4 beats both b = 1 and b = 16 for this cost shape.
  EXPECT_LT(time_at(4), time_at(1));
  EXPECT_LT(time_at(4), time_at(16));
}

TEST(Analytics, PipelineP2pVolume) {
  GptConfig c = table1_config(24, 2304, 24);
  ParallelConfig cfg;
  cfg.p = 4;
  cfg.b = 2;
  // bsh elements * 2 bytes.
  EXPECT_DOUBLE_EQ(pipeline_p2p_bytes_per_microbatch(c, cfg),
                   2.0 * 2 * 2048 * 2304);
  // Scatter/gather divides by t (§4.1).
  cfg.t = 8;
  cfg.scatter_gather = true;
  EXPECT_DOUBLE_EQ(pipeline_p2p_bytes_per_microbatch(c, cfg),
                   2.0 * 2 * 2048 * 2304 / 8);
}

TEST(Analytics, InterleavingMultipliesP2pVolume) {
  GptConfig c = table1_config(24, 2304, 24);
  ParallelConfig flat;
  flat.p = 4;
  flat.b = 1;
  ParallelConfig inter = flat;
  inter.v = 2;
  inter.schedule = pipeline::ScheduleType::kInterleaved;
  EXPECT_DOUBLE_EQ(pipeline_p2p_bytes_per_batch(c, inter, 64),
                   2.0 * pipeline_p2p_bytes_per_batch(c, flat, 64));
}

TEST(Analytics, TensorParallelVolumeFormula) {
  GptConfig c = table1_config(24, 2304, 24);
  ParallelConfig cfg;
  cfg.t = 8;
  cfg.b = 2;
  // l_stage = 24 (p=1), per layer 8*b*s*h*(7/8) elements * 2 bytes.
  const double expected = 24.0 * 8.0 * 2 * 2048 * 2304 * (7.0 / 8.0) * 2.0;
  EXPECT_DOUBLE_EQ(tensor_parallel_bytes_per_microbatch(c, cfg), expected);
  // t = 1 => no tensor-parallel communication.
  cfg.t = 1;
  EXPECT_DOUBLE_EQ(tensor_parallel_bytes_per_microbatch(c, cfg), 0.0);
}

TEST(Analytics, DataParallelVolumeScalesWithRingFactor) {
  GptConfig c = table1_config(24, 2304, 24);
  ParallelConfig cfg;
  cfg.d = 4;
  const double v4 = data_parallel_bytes_per_batch(c, cfg);
  cfg.d = 8;
  const double v8 = data_parallel_bytes_per_batch(c, cfg);
  // (d-1)/d factor: 7/8 vs 3/4.
  EXPECT_NEAR(v8 / v4, (7.0 / 8.0) / (3.0 / 4.0), 1e-12);
  cfg.d = 1;
  EXPECT_DOUBLE_EQ(data_parallel_bytes_per_batch(c, cfg), 0.0);
}

TEST(Analytics, RecomputationShrinksActivationFootprint) {
  GptConfig c = table1_config(24, 2304, 24);
  const double full = activation_bytes_per_layer(c, 4, /*recompute=*/false);
  const double input_only = activation_bytes_per_layer(c, 4, /*recompute=*/true);
  EXPECT_GT(full / input_only, 10.0);  // 34+5as/h vs 2
  EXPECT_DOUBLE_EQ(input_only, 2.0 * 2048 * 4 * 2304);
}

TEST(Analytics, MemoryEstimateGPipeVsOneFOneB) {
  // §2.2.1: GPipe stashes m microbatches; 1F1B stashes p.
  GptConfig c = table1_config(24, 2304, 24);
  ParallelConfig gpipe;
  gpipe.p = 4;
  gpipe.b = 1;
  gpipe.schedule = pipeline::ScheduleType::kGPipe;
  gpipe.recompute = false;
  ParallelConfig ofob = gpipe;
  ofob.schedule = pipeline::ScheduleType::kOneFOneB;
  const std::int64_t B = 64;  // m = 64 >> p = 4
  const auto mg = memory_per_gpu(c, gpipe, B);
  const auto mo = memory_per_gpu(c, ofob, B);
  EXPECT_NEAR(mg.activation_bytes / mo.activation_bytes, 64.0 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(mg.param_bytes, mo.param_bytes);
}

TEST(Analytics, CheckpointOptimumMinimizesMemory) {
  // §3.5: c* = sqrt(l * A_int / A_inp) minimizes c*A_inp + (l/c)*A_int.
  const double l = 16, a_inp = 2.0, a_int = 32.0;
  const double c_star = optimal_checkpoints(l, a_inp, a_int);
  EXPECT_DOUBLE_EQ(c_star, std::sqrt(16.0 * 32.0 / 2.0));
  const double at_star = checkpoint_memory(c_star, l, a_inp, a_int);
  for (double c = 1.0; c <= l; c += 1.0) {
    EXPECT_GE(checkpoint_memory(c, l, a_inp, a_int), at_star - 1e-9);
  }
}

TEST(Analytics, LayerForwardFlopsMatchesAppendixBreakdown) {
  GptConfig c = table1_config(1, 512, 8);
  const std::int64_t B = 4;
  // 24Bsh^2 + 4Bs^2h.
  const double expected = 24.0 * B * 2048 * 512.0 * 512.0 +
                          4.0 * B * 2048.0 * 2048.0 * 512.0;
  EXPECT_DOUBLE_EQ(layer_forward_flops(c, B), expected);
}

TEST(Analytics, Eq4ApproximatesEq3BasedTime) {
  // Eq. (4) is derived from Eqs. (2)+(3) under 6h >> s etc.; check the
  // two agree within a few % for a Table 1 config.
  GptConfig c = table1_config(96, 16384, 128);
  const double P = c.paper_params();
  const double B = 2160, X = 155e12, n = 1920;
  const double T = 300e9;
  const double iters = T / (B * c.seq);
  const double exact_seconds = iters * flops_per_iteration(c, static_cast<std::int64_t>(B)) / (n * X);
  const double approx_seconds = training_time_seconds(T, P, n, X);
  EXPECT_NEAR(approx_seconds / exact_seconds, 1.0, 0.05);
}

}  // namespace
}  // namespace ptdp::core
