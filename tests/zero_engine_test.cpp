// ZeRO-backed PTD-P (the §6 note that "ZeRO can be combined with model
// parallelism"): the engine with a ZeRO-sharded Adam over the data group
// must produce exactly the loss trajectory of the engine with replicated
// Adam, for pure-DP and full-3D grids, while each rank holds ~1/d of the
// optimizer state.

#include <gtest/gtest.h>

#include <filesystem>

#include <tuple>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

namespace ptdp::core {
namespace {

model::GptConfig tiny() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 8;
  c.seed = 303;
  return c;
}

std::vector<float> run_trajectory(const model::GptConfig& c, int p, int t, int d,
                                  EngineOptions::Opt opt, int steps) {
  data::SyntheticCorpus corpus(c.vocab, 6);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  std::vector<float> losses;
  std::mutex mu;
  dist::World world(p * t * d);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = p;
    options.parallel.t = t;
    options.parallel.d = d;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 8;
    options.optimizer = opt;
    options.adam.lr = 2e-3f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, 8, 1, d, engine.groups().coord().data, 44);
    for (int s = 0; s < steps; ++s) {
      const float loss = engine.train_step(loader.next_batch(s));
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        losses.push_back(loss);
      }
    }
  });
  return losses;
}

using Grid = std::tuple<int, int, int>;

class ZeroEngineTest : public ::testing::TestWithParam<Grid> {};

TEST_P(ZeroEngineTest, MatchesReplicatedAdamTrajectory) {
  const auto [p, t, d] = GetParam();
  model::GptConfig c = tiny();
  const auto adam = run_trajectory(c, p, t, d, EngineOptions::Opt::kAdam, 3);
  const auto zero = run_trajectory(c, p, t, d, EngineOptions::Opt::kZeroAdam, 3);
  ASSERT_EQ(adam.size(), zero.size());
  for (std::size_t i = 0; i < adam.size(); ++i) {
    EXPECT_NEAR(zero[i], adam[i], 2e-4f) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, ZeroEngineTest,
                         ::testing::Values(Grid{1, 1, 2}, Grid{1, 1, 4},
                                           Grid{1, 2, 2}, Grid{2, 1, 2},
                                           Grid{2, 2, 2}));

TEST(ZeroEngine, StateIsShardedAcrossReplicas) {
  model::GptConfig c = tiny();
  data::SyntheticCorpus corpus(c.vocab, 6);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.d = 4;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 8;
    options.optimizer = EngineOptions::Opt::kZeroAdam;
    PtdpEngine engine(comm, options);
    auto* zero = dynamic_cast<zero::ZeroShardedAdam*>(&engine.optimizer());
    ASSERT_NE(zero, nullptr);
    std::int64_t total = 0;
    for (model::Param* param : engine.params()) total += param->value.numel();
    // Shard is ~1/4 of the flattened space (padding aside).
    EXPECT_LE(zero->shard_elems(), total / 4 + 4);
  });
}

TEST(ZeroEngine, RejectsIncompatibleFeatures) {
  model::GptConfig c = tiny();
  dist::World world(2);
  EXPECT_THROW(world.run([&](dist::Comm& comm) {
                 EngineOptions options;
                 options.model = c;
                 options.parallel.d = 2;
                 options.parallel.b = 1;
                 options.global_batch = 4;
                 options.optimizer = EngineOptions::Opt::kZeroAdam;
                 options.mixed_precision = true;
                 PtdpEngine engine(comm, options);
               }),
               dist::RankFailure);
}

TEST(ZeroEngine, CheckpointCarriesShardedState) {
  model::GptConfig c = tiny();
  data::SyntheticCorpus corpus(c.vocab, 6);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ptdp_zero_ckpt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::vector<float> cont, resumed;
  std::mutex mu;
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.d = 2;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = EngineOptions::Opt::kZeroAdam;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, 4, 1, 2, engine.groups().coord().data, 5);
    engine.train_step(loader.next_batch(0));
    engine.save_checkpoint(dir.string(), 1);
    const float loss = engine.train_step(loader.next_batch(1));
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      cont.push_back(loss);
    }
  });
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.d = 2;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = EngineOptions::Opt::kZeroAdam;
    PtdpEngine engine(comm, options);
    EXPECT_EQ(engine.load_checkpoint(dir.string()), 1u);
    data::ShardedLoader loader(dataset, 4, 1, 2, engine.groups().coord().data, 5);
    const float loss = engine.train_step(loader.next_batch(1));
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      resumed.push_back(loss);
    }
  });
  std::filesystem::remove_all(dir);
  ASSERT_EQ(cont.size(), resumed.size());
  EXPECT_FLOAT_EQ(cont[0], resumed[0]);
}

}  // namespace
}  // namespace ptdp::core
