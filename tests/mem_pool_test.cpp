// Memory-plane tests (DESIGN.md §12): size-class rounding, byte-exact
// live/peak accounting, the PTDP_MEM_POOL escape hatch, a multi-threaded
// alloc/free stress run (ASan/TSan clean), zero-copy dim-0 tensor views,
// and the headline bitwise guarantee — a (p, t, d) = (2, 2, 2) training
// run produces identical weights with the pool on and off.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/mem/pool.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp {
namespace {

using tensor::Tensor;

// Restores the pool toggle even if the test body throws.
struct PoolGuard {
  bool saved = mem::pool_enabled();
  ~PoolGuard() { mem::set_pool_enabled(saved); }
};

TEST(MemPoolTest, SizeClassRounding) {
  EXPECT_EQ(mem::size_class_floats(0), 64u);
  EXPECT_EQ(mem::size_class_floats(1), 64u);
  EXPECT_EQ(mem::size_class_floats(64), 64u);
  EXPECT_EQ(mem::size_class_floats(65), 128u);
  EXPECT_EQ(mem::size_class_floats(1000), 1024u);
  EXPECT_EQ(mem::size_class_floats(1u << 24), 1u << 24);
  // Above the largest class the request is passed through exactly.
  EXPECT_EQ(mem::size_class_floats((1u << 24) + 1), (1u << 24) + 1);
}

TEST(MemPoolTest, AcquireReleaseRecycles) {
  PoolGuard guard;
  mem::set_pool_enabled(true);
  mem::trim_thread_cache();

  mem::Block a = mem::acquire(100);
  ASSERT_NE(a.data, nullptr);
  EXPECT_EQ(a.capacity, 128u);
  float* ptr = a.data;
  mem::release(a.data, a.capacity);

  // Same size class comes back off the thread-local free list.
  const mem::PoolStats before = mem::thread_stats();
  mem::Block b = mem::acquire(70);
  EXPECT_EQ(b.data, ptr);
  const mem::PoolStats after = mem::thread_stats();
  EXPECT_EQ(after.pool_hits, before.pool_hits + 1);
  EXPECT_EQ(after.heap_allocs, before.heap_allocs);
  mem::release(b.data, b.capacity);
}

TEST(MemPoolTest, ThreadAccountingIsByteExact) {
  PoolGuard guard;
  mem::set_pool_enabled(true);
  const mem::PoolStats base = mem::thread_stats();
  {
    Tensor t = Tensor::empty({100});  // 400 requested bytes
    const mem::PoolStats live = mem::thread_stats();
    EXPECT_EQ(live.live_bytes - base.live_bytes, 400);
    EXPECT_GE(live.peak_bytes, live.live_bytes);
  }
  const mem::PoolStats done = mem::thread_stats();
  EXPECT_EQ(done.live_bytes, base.live_bytes);

  mem::reset_thread_peak();
  EXPECT_EQ(mem::thread_stats().peak_bytes, mem::thread_stats().live_bytes);
  {
    Tensor a = Tensor::empty({1000});
    Tensor b = Tensor::empty({1000});
    EXPECT_EQ(mem::thread_stats().peak_bytes - done.live_bytes, 8000);
  }
}

TEST(MemPoolTest, EscapeHatchDisablesRecycling) {
  PoolGuard guard;
  mem::set_pool_enabled(false);
  mem::Block a = mem::acquire(100);
  // Pool off: exact-size block, not rounded to a class.
  EXPECT_EQ(a.capacity, 100u);
  const mem::PoolStats before = mem::thread_stats();
  mem::release(a.data, a.capacity);
  mem::Block b = mem::acquire(100);
  // Never served from a free list.
  EXPECT_EQ(mem::thread_stats().pool_hits, before.pool_hits);
  mem::release(b.data, b.capacity);
}

TEST(MemPoolTest, ToggleMidstreamIsSafe) {
  PoolGuard guard;
  // Blocks allocated pool-off must be releasable pool-on and vice versa:
  // release() keys off the block's capacity tag, not the current toggle.
  mem::set_pool_enabled(false);
  mem::Block off = mem::acquire(100);
  mem::set_pool_enabled(true);
  mem::Block on = mem::acquire(100);
  mem::set_pool_enabled(false);
  mem::release(on.data, on.capacity);
  mem::set_pool_enabled(true);
  mem::release(off.data, off.capacity);
}

TEST(MemPoolTest, HugeBlocksAreNotPooled) {
  PoolGuard guard;
  mem::set_pool_enabled(true);
  const std::size_t huge = (std::size_t{1} << 24) + 1;
  mem::Block a = mem::acquire(huge);
  EXPECT_EQ(a.capacity, huge);
  const mem::PoolStats before = mem::thread_stats();
  mem::release(a.data, a.capacity);
  mem::Block b = mem::acquire(huge);
  EXPECT_EQ(mem::thread_stats().pool_hits, before.pool_hits);
  mem::release(b.data, b.capacity);
}

// Concurrent alloc/free churn across size classes from many threads,
// including cross-thread hand-off through tensors captured by another
// thread. Run under TSan/ASan in CI; asserts only that data written is
// read back intact and global live-bytes returns to its baseline.
TEST(MemPoolStressTest, MultiThreadedChurn) {
  PoolGuard guard;
  mem::set_pool_enabled(true);
  const std::int64_t base_live = mem::global_stats().live_bytes;

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      std::vector<Tensor> held;
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t n = 1 + static_cast<std::int64_t>(next() % 5000);
        Tensor t = Tensor::empty({n});
        const float tag = static_cast<float>(w * kIters + i);
        t.fill(tag);
        held.push_back(std::move(t));
        if (held.size() > 8 || (next() & 1)) {
          const std::size_t victim = next() % held.size();
          const float want =
              held[victim].data()[0];  // whatever tag it was filled with
          for (float v : held[victim].data()) ASSERT_EQ(v, want);
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
        }
      }
      mem::trim_thread_cache();
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mem::global_stats().live_bytes, base_live);
  EXPECT_GT(mem::global_stats().pool_hits, 0u);
}

// ---- zero-copy views -------------------------------------------------------

TEST(TensorViewTest, LeadingDimSliceSharesStorage) {
  Tensor a = Tensor::from_values({0, 1, 2, 3, 4, 5});
  Tensor a2 = a.view({3, 2});
  Tensor s = a2.slice(0, 1, 2);  // rows 1..2
  ASSERT_EQ(s.shape(), (tensor::Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_EQ(s.at({1, 1}), 5.0f);
  // Writes are visible both ways: it is the same storage.
  s.at({0, 0}) = 42.0f;
  EXPECT_EQ(a2.at({1, 0}), 42.0f);
  EXPECT_EQ(s.data().data(), a2.data().data() + 2);
}

TEST(TensorViewTest, SplitDim0ReturnsViews) {
  Tensor a = Tensor::arange(12).view({4, 3});
  auto parts = tensor::split(a, 2, 0);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].data().data(), a.data().data());
  EXPECT_EQ(parts[1].data().data(), a.data().data() + 6);
  parts[1].fill(-1.0f);
  EXPECT_EQ(a.at({2, 0}), -1.0f);
}

TEST(TensorViewTest, ViewOfSliceKeepsOffset) {
  Tensor a = Tensor::arange(12).view({4, 3});
  Tensor s = a.slice(0, 2, 2).view({6});
  EXPECT_EQ(s.data()[0], 6.0f);
  Tensor c = s.clone();  // deep copy drops the aliasing
  c.fill(0.0f);
  EXPECT_EQ(a.at({2, 0}), 6.0f);
}

TEST(TensorViewTest, SliceViewKeepsParentStorageAlive) {
  Tensor s;
  {
    Tensor a = Tensor::arange(10);
    s = a.slice(0, 5, 5);
  }  // parent destroyed; the view's shared storage must survive
  EXPECT_EQ(s.data()[0], 5.0f);
  EXPECT_EQ(s.data()[4], 9.0f);
}

TEST(TensorViewTest, NonLeadingSliceStillCopies) {
  Tensor a = Tensor::arange(12).view({3, 4});
  Tensor s = a.slice(1, 1, 2);
  s.fill(-7.0f);
  EXPECT_EQ(a.at({0, 1}), 1.0f);  // parent untouched
}

// ---- bitwise pool-on/pool-off guarantee ------------------------------------

// Runs `steps` of (p, t, d) = (2, 2, 2) interleaved-schedule training and
// returns every parameter byte of every rank, in deterministic order.
std::vector<unsigned char> run_weight_bytes(bool pool_on, int steps) {
  PoolGuard guard;
  mem::set_pool_enabled(pool_on);

  model::GptConfig c;
  c.num_layers = 4;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.1f;  // exercise the RNG-heavy path too
  c.seed = 2024;
  const std::int64_t B = 8, b = 1;

  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  constexpr int kRanks = 8;
  std::vector<std::vector<unsigned char>> per_rank(kRanks);
  dist::World world(kRanks);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.t = 2;
    options.parallel.d = 2;
    options.parallel.v = 2;
    options.parallel.b = b;
    options.parallel.schedule = pipeline::ScheduleType::kInterleaved;
    options.parallel.recompute = true;
    options.parallel.scatter_gather = true;
    options.global_batch = B;
    options.optimizer = core::EngineOptions::Opt::kAdam;
    options.adam.lr = 1e-3f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, B, b, 2, engine.groups().coord().data,
                               /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
    std::vector<unsigned char>& bytes = per_rank[static_cast<std::size_t>(comm.rank())];
    for (const model::Param* p : engine.params()) {
      auto d = p->value.data();
      const auto* raw = reinterpret_cast<const unsigned char*>(d.data());
      bytes.insert(bytes.end(), raw, raw + d.size_bytes());
    }
  });

  std::vector<unsigned char> all;
  for (auto& r : per_rank) all.insert(all.end(), r.begin(), r.end());
  return all;
}

TEST(MemPoolBitwiseTest, PooledTrainingMatchesPoolOffExactly) {
  const auto pooled = run_weight_bytes(/*pool_on=*/true, /*steps=*/3);
  const auto plain = run_weight_bytes(/*pool_on=*/false, /*steps=*/3);
  ASSERT_EQ(pooled.size(), plain.size());
  ASSERT_GT(pooled.size(), 0u);
  EXPECT_EQ(std::memcmp(pooled.data(), plain.data(), pooled.size()), 0)
      << "pool on/off changed training arithmetic";
}

// Steady-state iterations should be served almost entirely from the pool:
// the per-step heap_allocs count must collapse vs the unpooled run (the
// >=10x allocation-count acceptance criterion).
TEST(MemPoolSteadyStateTest, HeapAllocsCollapseAfterWarmup) {
  PoolGuard guard;

  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 2024;
  const std::int64_t B = 4, b = 1;

  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(2000), c.seq);

  auto measure = [&](bool pool_on) {
    mem::set_pool_enabled(pool_on);
    core::StepStats last{};
    dist::World world(1);
    world.run([&](dist::Comm& comm) {
      core::EngineOptions options;
      options.model = c;
      options.parallel.b = b;
      options.global_batch = B;
      options.optimizer = core::EngineOptions::Opt::kSgd;
      options.sgd.lr = 0.1f;
      core::PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, B, b, 1, 0, /*seed=*/88);
      for (int s = 0; s < 4; ++s) {  // step 0 warms the pool
        auto mbs = loader.next_batch(s);
        engine.train_step(mbs);
      }
      last = engine.last_stats();
    });
    return last;
  };

  const core::StepStats pooled = measure(true);
  const core::StepStats plain = measure(false);
  ASSERT_GT(plain.mem_heap_allocs, 0u);
  EXPECT_GT(pooled.mem_acquires, 0u);
  EXPECT_GT(pooled.mem_pool_hit_rate, 0.9);
  EXPECT_LE(pooled.mem_heap_allocs * 10, plain.mem_heap_allocs)
      << "pooled steady-state step should allocate >=10x less from the heap"
      << " (pooled " << pooled.mem_heap_allocs << " vs unpooled "
      << plain.mem_heap_allocs << ")";
  EXPECT_GT(pooled.peak_memory_bytes, 0);
}

// Zero steady-state pool growth: once the first step has warmed the pool,
// the planned arenas (GradReducer staging, head scratch) and every
// transient tensor reuse recycled blocks — per-rank live bytes between
// steps are constant and no step touches the heap again. d = 2 so the
// data-parallel GradReducer (arena-backed bucket + copy-back) is on the
// measured path.
TEST(MemPoolSteadyStateTest, ZeroPoolGrowthPerStep) {
  PoolGuard guard;
  mem::set_pool_enabled(true);

  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.1f;
  c.seed = 2024;
  const std::int64_t B = 4, b = 1;
  constexpr int kSteps = 6;

  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(2000), c.seq);

  constexpr int kRanks = 2;
  std::vector<std::vector<std::int64_t>> live(kRanks);
  std::vector<std::vector<std::uint64_t>> heap(kRanks);
  dist::World world(kRanks);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.d = kRanks;
    options.parallel.b = b;
    options.global_batch = B;
    options.optimizer = core::EngineOptions::Opt::kAdam;
    options.adam.lr = 1e-3f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, B, b, kRanks,
                               engine.groups().coord().data, /*seed=*/88);
    for (int s = 0; s < kSteps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
      const mem::PoolStats st = mem::thread_stats();
      live[static_cast<std::size_t>(comm.rank())].push_back(st.live_bytes);
      heap[static_cast<std::size_t>(comm.rank())].push_back(st.heap_allocs);
    }
  });

  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(live[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kSteps));
    for (int s = 1; s < kSteps; ++s) {
      EXPECT_EQ(live[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                live[static_cast<std::size_t>(r)][1])
          << "rank " << r << " live bytes drifted at step " << s;
    }
    for (int s = 2; s < kSteps; ++s) {
      EXPECT_EQ(heap[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                heap[static_cast<std::size_t>(r)][1])
          << "rank " << r << " hit the heap after warmup, step " << s;
    }
  }
}

}  // namespace
}  // namespace ptdp
