// Planner tests: the Takeaway heuristics must *emerge* from the analytic
// model — tensor parallelism stops at the node boundary, model-parallel
// size grows only until the model fits, data parallelism absorbs the rest.

#include <gtest/gtest.h>

#include "ptdp/core/planner.hpp"

namespace ptdp::core {
namespace {

using model::GptConfig;

GptConfig gpt(std::int64_t layers, std::int64_t hidden, std::int64_t heads) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = hidden;
  c.heads = heads;
  c.vocab = 51200;
  c.seq = 2048;
  return c;
}

TEST(Planner, SmallModelPrefersDataParallelism) {
  // A 1.7B model fits on one 80-GB GPU with recomputation; the planner
  // should use little or no model parallelism (Takeaway #2).
  PlannerInput input;
  input.model = gpt(24, 2304, 24);
  input.n_gpus = 32;
  input.global_batch = 512;
  Plan plan = plan_configuration(input);
  EXPECT_LE(plan.best.config.model_parallel_size(), 2);
  EXPECT_GE(plan.best.config.d, 16);
}

TEST(Planner, TensorParallelismCapsAtNodeSize) {
  // Takeaway #1: for every feasible candidate t <= gpus_per_node by
  // construction; and for a large model the winner uses t = 8 with
  // pipeline beyond (the Table 1 pattern for >= 39B models).
  PlannerInput input;
  input.model = gpt(48, 8192, 64);  // 39B
  input.n_gpus = 512;
  input.global_batch = 1536;
  Plan plan = plan_configuration(input);
  for (const auto& cand : plan.feasible) {
    EXPECT_LE(cand.config.t, input.gpus_per_node);
  }
  EXPECT_EQ(plan.best.config.t, 8);
  EXPECT_GE(plan.best.config.p, 2);
}

TEST(Planner, LargeModelRequiresPipelineAcrossNodes) {
  // The 530B model cannot fit at t*p = 8; feasible configs must have
  // model-parallel size > one node.
  PlannerInput input;
  input.model = gpt(105, 20480, 128);
  input.n_gpus = 2240;  // the paper's Table 2 row uses 2240 GPUs (p = 35)
  input.global_batch = 2240;
  Plan plan = plan_configuration(input);
  for (const auto& cand : plan.feasible) {
    EXPECT_GT(cand.config.model_parallel_size(), 8) << cand.config.str();
  }
}

TEST(Planner, InfeasibleModelThrows) {
  PlannerInput input;
  input.model = gpt(128, 25600, 160);  // 1T params
  input.n_gpus = 8;                    // one node — cannot possibly fit
  input.global_batch = 512;
  EXPECT_THROW(plan_configuration(input), CheckError);
}

TEST(Planner, RespectsBatchDivisibility) {
  PlannerInput input;
  input.model = gpt(24, 2304, 24);
  input.n_gpus = 16;
  input.global_batch = 48;  // not a power of two
  Plan plan = plan_configuration(input);
  for (const auto& cand : plan.feasible) {
    EXPECT_EQ(input.global_batch % (cand.config.b * cand.config.d), 0);
  }
}

TEST(Planner, CandidatesSortedByEstimatedTime) {
  PlannerInput input;
  input.model = gpt(24, 2304, 24);
  input.n_gpus = 32;
  input.global_batch = 256;
  Plan plan = plan_configuration(input);
  for (std::size_t i = 1; i < plan.feasible.size(); ++i) {
    EXPECT_LE(plan.feasible[i - 1].est_batch_seconds,
              plan.feasible[i].est_batch_seconds);
  }
  EXPECT_FALSE(plan.rationale.empty());
}

TEST(Planner, MicrobatchSweepPicksFromCandidates) {
  PlannerInput input;
  input.model = gpt(24, 2304, 24);
  input.n_gpus = 32;
  input.global_batch = 512;
  input.microbatch_candidates = {1, 2, 4, 8};
  Plan plan = plan_configuration(input);
  bool found = false;
  for (std::int64_t b : input.microbatch_candidates) {
    if (plan.best.config.b == b) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Planner, CustomThroughputModelIsHonored) {
  // A model that only likes p == 4 must produce a p == 4 winner.
  PlannerInput input;
  input.model = gpt(24, 2304, 24);
  input.n_gpus = 32;
  input.global_batch = 256;
  ThroughputModel prefer_p4 = [](const model::GptConfig&, const ParallelConfig& cfg,
                                 std::int64_t) {
    return cfg.p == 4 ? 1.0 : 100.0;
  };
  Plan plan = plan_configuration(input, prefer_p4);
  EXPECT_EQ(plan.best.config.p, 4);
}

TEST(Planner, AnalyticModelPenalizesCrossNodeTensorParallelism) {
  // Direct check of the Takeaway #1 mechanism inside the model: identical
  // config except t = 8 vs t = 16 (crossing the node) — communication time
  // per byte is 12x worse across nodes, so wider-than-node tensor
  // parallelism must estimate slower despite more compute parallelism.
  auto tm = analytic_throughput_model();
  GptConfig m = gpt(32, 20480, 128);
  ParallelConfig inside;
  inside.t = 8;
  inside.p = 4;
  inside.d = 1;
  inside.b = 1;
  ParallelConfig across = inside;
  across.t = 16;
  across.p = 2;
  EXPECT_LT(tm(m, inside, 64), tm(m, across, 64));
}

}  // namespace
}  // namespace ptdp::core
