// Model-layer tests. The central claims verified here:
//   1. Every tensor-parallel layer computes exactly what its serial (t=1)
//      counterpart computes — forward activations, input grads, and the
//      correct shard of the parameter grads (Fig. 5 semantics).
//   2. The full GptStage loss gradient matches finite differences.
//   3. Activation recomputation replays dropout masks bit-for-bit.

#include <gtest/gtest.h>

#include <vector>

#include "ptdp/dist/world.hpp"
#include "ptdp/model/stage.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {
namespace {

using tensor::Tensor;

GptConfig tiny_config() {
  GptConfig c;
  c.num_layers = 2;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 99;
  return c;
}

Microbatch make_microbatch(const GptConfig& c, std::int64_t b, std::uint64_t tag) {
  Microbatch mb;
  mb.s = c.seq;
  mb.b = b;
  mb.tag = tag;
  Rng rng(c.seed, substream(777, tag));
  mb.tokens.resize(static_cast<std::size_t>(mb.s * b));
  mb.targets.resize(static_cast<std::size_t>(mb.s * b));
  for (auto& t : mb.tokens) t = static_cast<std::int32_t>(rng.next_below(
      static_cast<std::uint64_t>(c.vocab)));
  for (auto& t : mb.targets) t = static_cast<std::int32_t>(rng.next_below(
      static_cast<std::uint64_t>(c.vocab)));
  return mb;
}

StageSpec full_spec(const GptConfig& c, bool recompute = false) {
  return StageSpec{/*has_embedding=*/true, /*has_head=*/true, 0, c.num_layers,
                   recompute};
}

// Runs one forward+backward of the full model serially; returns loss and a
// named copy of every parameter grad.
struct SerialResult {
  float loss;
  std::vector<std::pair<std::string, Tensor>> grads;
};

SerialResult run_serial(const GptConfig& c, const Microbatch& mb,
                        bool recompute = false) {
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, full_spec(c, recompute));
  stage.zero_grads();
  StageCache cache;
  StageForward fwd = stage.forward(Tensor(), mb, cache);
  stage.backward(Tensor(), /*loss_scale=*/1.0f, cache, mb);
  SerialResult res;
  res.loss = fwd.loss;
  for (Param* p : stage.params()) {
    res.grads.emplace_back(p->name, p->grad.clone());
  }
  return res;
}

const Tensor* find_grad(const SerialResult& r, const std::string& name) {
  for (const auto& [n, g] : r.grads) {
    if (n == name) return &g;
  }
  return nullptr;
}

// ---- linear layers vs serial ----------------------------------------------------

class TensorParallelLinearTest : public ::testing::TestWithParam<int> {};

TEST_P(TensorParallelLinearTest, ColumnParallelMatchesSerial) {
  const int t = GetParam();
  const std::int64_t in = 12, out = 8, n = 5;
  Rng xrng(3);
  Tensor x = Tensor::randn({n, in}, xrng);
  Tensor dy = Tensor::randn({n, out}, xrng);

  // Serial reference.
  dist::Comm solo = dist::Comm::solo();
  ColumnParallelLinear ref("col", in, out, solo, 0.02f, 42);
  LinearCache ref_cache;
  Tensor ref_y = ref.forward(x, ref_cache);
  Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    ColumnParallelLinear lin("col", in, out, comm, 0.02f, 42);
    LinearCache cache;
    Tensor y = lin.forward(x, cache);
    const std::int64_t shard = out / t;
    // Local output equals the serial output's column slice.
    EXPECT_TRUE(tensor::allclose(y, ref_y.slice(1, comm.rank() * shard, shard), 1e-4f,
                                 1e-5f));
    Tensor dx = lin.backward(dy.slice(1, comm.rank() * shard, shard), cache);
    EXPECT_TRUE(tensor::allclose(dx, ref_dx, 1e-4f, 1e-5f));
    // Weight grad shard equals the serial grad's column slice.
    EXPECT_TRUE(tensor::allclose(lin.weight().grad,
                                 ref.weight().grad.slice(1, comm.rank() * shard, shard),
                                 1e-4f, 1e-5f));
    EXPECT_TRUE(tensor::allclose(lin.bias().grad,
                                 ref.bias().grad.slice(0, comm.rank() * shard, shard),
                                 1e-4f, 1e-5f));
  });
}

TEST_P(TensorParallelLinearTest, RowParallelMatchesSerial) {
  const int t = GetParam();
  const std::int64_t in = 12, out = 8, n = 5;
  Rng xrng(4);
  Tensor x = Tensor::randn({n, in}, xrng);
  Tensor dy = Tensor::randn({n, out}, xrng);

  dist::Comm solo = dist::Comm::solo();
  RowParallelLinear ref("row", in, out, solo, 0.02f, 42);
  LinearCache ref_cache;
  Tensor ref_y = ref.forward(x, ref_cache);
  Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    RowParallelLinear lin("row", in, out, comm, 0.02f, 42);
    LinearCache cache;
    const std::int64_t shard = in / t;
    Tensor x_local = x.slice(1, comm.rank() * shard, shard);
    Tensor y = lin.forward(x_local, cache);
    EXPECT_TRUE(tensor::allclose(y, ref_y, 1e-4f, 1e-5f));
    Tensor dx = lin.backward(dy, cache);
    EXPECT_TRUE(tensor::allclose(dx, ref_dx.slice(1, comm.rank() * shard, shard), 1e-4f,
                                 1e-5f));
    EXPECT_TRUE(tensor::allclose(lin.weight().grad,
                                 ref.weight().grad.slice(0, comm.rank() * shard, shard),
                                 1e-4f, 1e-5f));
    // Replicated bias grad is identical everywhere.
    EXPECT_TRUE(tensor::allclose(lin.bias().grad, ref.bias().grad, 1e-4f, 1e-5f));
    EXPECT_TRUE(lin.bias().replicated_across_tensor_parallel);
  });
}

INSTANTIATE_TEST_SUITE_P(TensorSizes, TensorParallelLinearTest,
                         ::testing::Values(1, 2, 4));

// ---- attention / MLP / layer vs serial ------------------------------------------

class TensorParallelBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(TensorParallelBlockTest, AttentionMatchesSerial) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  Rng xrng(5);
  Tensor x = Tensor::randn({c.seq, 3, c.hidden}, xrng);
  Tensor dy = Tensor::randn({c.seq, 3, c.hidden}, xrng);

  dist::Comm solo = dist::Comm::solo();
  ParallelAttention ref(c, 0, solo);
  AttentionCache ref_cache;
  Tensor ref_y = ref.forward(x, ref_cache, /*mb_tag=*/1);
  Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    ParallelAttention attn(c, 0, comm);
    AttentionCache cache;
    Tensor y = attn.forward(x, cache, /*mb_tag=*/1);
    EXPECT_TRUE(tensor::allclose(y, ref_y, 1e-4f, 1e-5f));
    Tensor dx = attn.backward(dy, cache);
    EXPECT_TRUE(tensor::allclose(dx, ref_dx, 1e-4f, 1e-5f));
  });
}

TEST_P(TensorParallelBlockTest, MlpMatchesSerial) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  Rng xrng(6);
  Tensor x = Tensor::randn({c.seq, 3, c.hidden}, xrng);
  Tensor dy = Tensor::randn({c.seq, 3, c.hidden}, xrng);

  dist::Comm solo = dist::Comm::solo();
  ParallelMlp ref(c, 1, solo);
  MlpCache ref_cache;
  Tensor ref_y = ref.forward(x, ref_cache);
  Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    ParallelMlp mlp(c, 1, comm);
    MlpCache cache;
    EXPECT_TRUE(tensor::allclose(mlp.forward(x, cache), ref_y, 1e-4f, 1e-5f));
    EXPECT_TRUE(tensor::allclose(mlp.backward(dy, cache), ref_dx, 1e-4f, 1e-5f));
  });
}

TEST_P(TensorParallelBlockTest, TransformerLayerMatchesSerialWithDropout) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  c.dropout = 0.1f;  // dropout masks are keyed by global head — must agree
  Rng xrng(7);
  Tensor x = Tensor::randn({c.seq, 2, c.hidden}, xrng);
  Tensor dy = Tensor::randn({c.seq, 2, c.hidden}, xrng);

  dist::Comm solo = dist::Comm::solo();
  TransformerLayer ref(c, 0, solo);
  LayerCache ref_cache;
  Tensor ref_y = ref.forward(x, ref_cache, /*mb_tag=*/9);
  Tensor ref_dx = ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    TransformerLayer layer(c, 0, comm);
    LayerCache cache;
    Tensor y = layer.forward(x, cache, /*mb_tag=*/9);
    EXPECT_TRUE(tensor::allclose(y, ref_y, 1e-4f, 1e-5f));
    Tensor dx = layer.backward(dy, cache);
    EXPECT_TRUE(tensor::allclose(dx, ref_dx, 1e-4f, 1e-5f));
  });
}

TEST_P(TensorParallelBlockTest, EmbeddingMatchesSerial) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  Microbatch mb = make_microbatch(c, 3, /*tag=*/2);
  Rng drng(8);
  Tensor dy = Tensor::randn({c.seq, 3, c.hidden}, drng);

  dist::Comm solo = dist::Comm::solo();
  VocabParallelEmbedding ref(c, solo);
  EmbeddingCache ref_cache;
  Tensor ref_y = ref.forward(mb.tokens, mb.s, mb.b, ref_cache, mb.tag);
  ref.backward(dy, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    VocabParallelEmbedding emb(c, comm);
    EmbeddingCache cache;
    Tensor y = emb.forward(mb.tokens, mb.s, mb.b, cache, mb.tag);
    EXPECT_TRUE(tensor::allclose(y, ref_y, 1e-4f, 1e-5f));
    emb.backward(dy, cache);
    const std::int64_t shard = c.vocab / t;
    EXPECT_TRUE(tensor::allclose(emb.word().grad,
                                 ref.word().grad.slice(0, comm.rank() * shard, shard),
                                 1e-4f, 1e-5f));
    EXPECT_TRUE(tensor::allclose(emb.position().grad, ref.position().grad, 1e-4f,
                                 1e-5f));
  });
}

TEST_P(TensorParallelBlockTest, HeadLossAndGradsMatchSerial) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  Microbatch mb = make_microbatch(c, 2, /*tag=*/3);
  Rng xrng(9);
  Tensor x = Tensor::randn({c.seq, 2, c.hidden}, xrng);

  dist::Comm solo = dist::Comm::solo();
  GptHead ref(c, solo, nullptr);
  HeadCache ref_cache;
  const float ref_loss = ref.forward(x, mb.targets, ref_cache);
  Tensor ref_dx = ref.backward(1.0f, ref_cache);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    GptHead head(c, comm, nullptr);
    HeadCache cache;
    const float loss = head.forward(x, mb.targets, cache);
    EXPECT_NEAR(loss, ref_loss, 1e-4f);
    Tensor dx = head.backward(1.0f, cache);
    EXPECT_TRUE(tensor::allclose(dx, ref_dx, 1e-4f, 1e-5f));
    const std::int64_t shard = c.vocab / t;
    EXPECT_TRUE(tensor::allclose(head.word().grad,
                                 ref.word().grad.slice(0, comm.rank() * shard, shard),
                                 1e-4f, 1e-5f));
  });
}

TEST_P(TensorParallelBlockTest, FullStageLossMatchesSerial) {
  const int t = GetParam();
  GptConfig c = tiny_config();
  Microbatch mb = make_microbatch(c, 2, /*tag=*/4);
  SerialResult ref = run_serial(c, mb);

  dist::World world(t);
  world.run([&](dist::Comm& comm) {
    GptStage stage(c, comm, full_spec(c));
    stage.zero_grads();
    StageCache cache;
    StageForward fwd = stage.forward(Tensor(), mb, cache);
    EXPECT_NEAR(fwd.loss, ref.loss, 1e-4f);
    stage.backward(Tensor(), 1.0f, cache, mb);
    // Replicated params have identical grads to serial.
    for (Param* p : stage.params()) {
      if (p->replicated_across_tensor_parallel) {
        const Tensor* g = find_grad(ref, p->name);
        ASSERT_NE(g, nullptr) << p->name;
        EXPECT_TRUE(tensor::allclose(p->grad, *g, 2e-3f, 1e-4f)) << p->name;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(TensorSizes, TensorParallelBlockTest,
                         ::testing::Values(1, 2, 4));

// ---- finite-difference gradient check of the whole model ------------------------

TEST(GptStage, LossGradientMatchesFiniteDifference) {
  GptConfig c = tiny_config();
  c.num_layers = 1;
  Microbatch mb = make_microbatch(c, 2, /*tag=*/5);

  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, full_spec(c));
  stage.zero_grads();
  StageCache cache;
  (void)stage.forward(Tensor(), mb, cache);
  stage.backward(Tensor(), 1.0f, cache, mb);

  auto loss_at = [&](GptStage& s) {
    StageCache tmp;
    return s.forward(Tensor(), mb, tmp).loss;
  };

  // Sample a handful of entries from every parameter.
  const float eps = 1e-2f;
  for (Param* p : stage.params()) {
    Rng pick(1, param_stream(p->name));
    const int samples = 3;
    for (int k = 0; k < samples; ++k) {
      const std::size_t i = static_cast<std::size_t>(
          pick.next_below(static_cast<std::uint64_t>(p->value.numel())));
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const float lp = loss_at(stage);
      p->value.data()[i] = orig - eps;
      const float lm = loss_at(stage);
      p->value.data()[i] = orig;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 5e-2f)
          << p->name << "[" << i << "]";
    }
  }
}

// ---- recomputation ---------------------------------------------------------------

TEST(GptStage, RecomputeMatchesStashedActivations) {
  GptConfig c = tiny_config();
  c.dropout = 0.15f;  // the hard case: masks must replay exactly
  Microbatch mb = make_microbatch(c, 2, /*tag=*/6);

  SerialResult plain = run_serial(c, mb, /*recompute=*/false);
  SerialResult recomputed = run_serial(c, mb, /*recompute=*/true);

  EXPECT_FLOAT_EQ(plain.loss, recomputed.loss);
  ASSERT_EQ(plain.grads.size(), recomputed.grads.size());
  for (std::size_t i = 0; i < plain.grads.size(); ++i) {
    EXPECT_EQ(plain.grads[i].first, recomputed.grads[i].first);
    EXPECT_EQ(tensor::max_abs_diff(plain.grads[i].second, recomputed.grads[i].second),
              0.0f)
        << plain.grads[i].first;
  }
}

TEST(GptStage, ForwardIsDeterministicPerTag) {
  GptConfig c = tiny_config();
  c.dropout = 0.2f;
  Microbatch mb = make_microbatch(c, 2, /*tag=*/7);
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, full_spec(c));
  StageCache c1, c2;
  const float l1 = stage.forward(Tensor(), mb, c1).loss;
  const float l2 = stage.forward(Tensor(), mb, c2).loss;
  EXPECT_FLOAT_EQ(l1, l2);

  Microbatch mb2 = mb;
  mb2.tag = 8;  // different tag => different dropout masks => different loss
  StageCache c3;
  EXPECT_NE(stage.forward(Tensor(), mb2, c3).loss, l1);
}

// ---- split stages compose to the full model --------------------------------------

TEST(GptStage, TwoStageSplitMatchesFullModel) {
  GptConfig c = tiny_config();
  Microbatch mb = make_microbatch(c, 2, /*tag=*/11);
  SerialResult ref = run_serial(c, mb);

  dist::Comm solo = dist::Comm::solo();
  GptStage first(c, solo, StageSpec{true, false, 0, 1, false});
  GptStage second(c, solo, StageSpec{false, true, 1, 2, false});
  first.zero_grads();
  second.zero_grads();

  StageCache cache1, cache2;
  StageForward f1 = first.forward(Tensor(), mb, cache1);
  StageForward f2 = second.forward(f1.activation, mb, cache2);
  EXPECT_NEAR(f2.loss, ref.loss, 1e-5f);

  Tensor dback = second.backward(Tensor(), 1.0f, cache2, mb);
  ASSERT_TRUE(dback.defined());
  first.backward(dback, 0.0f, cache1, mb);

  // Tied embedding grads live on both stages; their sum is the serial grad.
  Param* w1 = first.word_embedding_param();
  Param* w2 = second.word_embedding_param();
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  Tensor total = tensor::add(w1->grad, w2->grad);
  const Tensor* serial_g = find_grad(ref, "embedding.word");
  ASSERT_NE(serial_g, nullptr);
  EXPECT_TRUE(tensor::allclose(total, *serial_g, 1e-4f, 1e-5f));

  // Per-layer grads match the serial run.
  for (Param* p : first.params()) {
    if (p->name.rfind("layer0.", 0) == 0) {
      const Tensor* g = find_grad(ref, p->name);
      ASSERT_NE(g, nullptr) << p->name;
      EXPECT_TRUE(tensor::allclose(p->grad, *g, 1e-4f, 1e-5f)) << p->name;
    }
  }
  for (Param* p : second.params()) {
    if (p->name.rfind("layer1.", 0) == 0) {
      const Tensor* g = find_grad(ref, p->name);
      ASSERT_NE(g, nullptr) << p->name;
      EXPECT_TRUE(tensor::allclose(p->grad, *g, 1e-4f, 1e-5f)) << p->name;
    }
  }
}

// ---- config arithmetic -----------------------------------------------------------

TEST(GptConfig, ExactParamsTracksPaperFormula) {
  // At paper scale the approximation error of Eq. (2) is far below 1%.
  GptConfig c;
  c.num_layers = 24;
  c.hidden = 2304;
  c.heads = 24;
  c.vocab = 51200;
  c.seq = 2048;
  const double exact = static_cast<double>(c.exact_params());
  const double paper = c.paper_params();
  EXPECT_NEAR(paper / exact, 1.0, 0.01);
  // And the 1.7B row of Table 1 really is ~1.7B parameters.
  EXPECT_NEAR(exact / 1e9, 1.7, 0.1);
}

TEST(GptConfig, ParamStreamsDifferAcrossNames) {
  EXPECT_NE(param_stream("layer0.attn.qkv.weight"),
            param_stream("layer1.attn.qkv.weight"));
}

TEST(GptStage, ParamNamesAreUniqueAndOrdered) {
  GptConfig c = tiny_config();
  dist::Comm solo = dist::Comm::solo();
  GptStage stage(c, solo, full_spec(c));
  auto refs = stage.params();
  std::vector<std::string> names;
  for (Param* p : refs) names.push_back(p->name);
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Embedding first, head LN last.
  EXPECT_EQ(names.front(), "embedding.word");
  EXPECT_EQ(names.back(), "final_ln.beta");
}

}  // namespace
}  // namespace ptdp::model
