// End-to-end PTD-P engine tests — the paper's central correctness claim:
// composing pipeline, tensor, and data parallelism with pipeline flushes
// retains *strict optimizer semantics*. We verify that multi-step training
// under every (p, t, d, v, schedule) grid reproduces the serial loss
// trajectory on identical data, plus loss decrease on the synthetic corpus,
// checkpoint/resume exactness, and mixed-precision training.

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>
#include <vector>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

namespace ptdp::core {
namespace {

using model::GptConfig;
using model::Microbatch;

GptConfig engine_config(std::int64_t layers) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 2024;
  return c;
}

struct DataSetup {
  data::SyntheticCorpus corpus;
  data::TokenDataset dataset;
  DataSetup(const GptConfig& c)
      : corpus(c.vocab, 55), dataset(corpus.generate(4000), c.seq) {}
};

// Serial loss trajectory with the same global batch, microbatch size, and
// sample assignment.
std::vector<float> serial_trajectory(const GptConfig& c, std::int64_t B,
                                     std::int64_t b, int steps,
                                     EngineOptions::Opt opt, bool mixed = false) {
  DataSetup ds(c);
  std::vector<float> losses;
  dist::World world(1);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel = ParallelConfig{};  // p = t = d = 1
    options.parallel.b = b;
    options.parallel.recompute = false;
    options.global_batch = B;
    options.optimizer = opt;
    options.sgd.lr = 0.1f;
    options.adam.lr = 1e-3f;
    options.mixed_precision = mixed;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, B, b, 1, 0, /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      losses.push_back(engine.train_step(mbs));
    }
  });
  return losses;
}

// (p, t, d, v, schedule, scatter_gather, overlap_grad_reduce) — the last two
// are communication-plane toggles that must never change the math (§4.1
// scatter/gather is a wire-format change; overlapped reduction reorders
// *when* the DP all-reduce runs, not what it computes).
using Grid = std::tuple<int, int, int, int, pipeline::ScheduleType, bool, bool>;

class EngineEquivalenceTest : public ::testing::TestWithParam<Grid> {};

TEST_P(EngineEquivalenceTest, LossTrajectoryMatchesSerial) {
  const auto [p, t, d, v, schedule, sg, overlap] = GetParam();
  const std::int64_t B = 8, b = 1;
  const int steps = 3;
  GptConfig c = engine_config(/*layers=*/static_cast<std::int64_t>(p * v));
  const auto serial = serial_trajectory(c, B, b, steps, EngineOptions::Opt::kSgd);
  DataSetup ds(c);

  dist::World world(p * t * d);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = p;
    options.parallel.t = t;
    options.parallel.d = d;
    options.parallel.v = v;
    options.parallel.b = b;
    options.parallel.schedule = schedule;
    options.parallel.recompute = false;
    options.parallel.scatter_gather = sg;
    options.overlap_grad_reduce = overlap;
    options.global_batch = B;
    options.optimizer = EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, B, b, d,
                               engine.groups().coord().data, /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      const float loss = engine.train_step(mbs);
      // Every rank reports the same global loss, equal to serial.
      EXPECT_NEAR(loss, serial[static_cast<std::size_t>(s)], 2e-3f)
          << "step " << s << " rank " << comm.rank();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, EngineEquivalenceTest,
    ::testing::Values(
        // Pure pipeline.
        Grid{2, 1, 1, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{4, 1, 1, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{2, 1, 1, 1, pipeline::ScheduleType::kGPipe, false, true},
        // Pure tensor.
        Grid{1, 2, 1, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{1, 4, 1, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        // Pure data.
        Grid{1, 1, 2, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{1, 1, 4, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{1, 1, 2, 1, pipeline::ScheduleType::kOneFOneB, false, false},
        // Every pair.
        Grid{2, 2, 1, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{2, 2, 1, 1, pipeline::ScheduleType::kOneFOneB, true, true},
        Grid{2, 1, 2, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{2, 1, 2, 1, pipeline::ScheduleType::kOneFOneB, false, false},
        Grid{1, 2, 2, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        // Full PTD-P, all four comm-plane modes (acceptance grid).
        Grid{2, 2, 2, 1, pipeline::ScheduleType::kOneFOneB, false, false},
        Grid{2, 2, 2, 1, pipeline::ScheduleType::kOneFOneB, false, true},
        Grid{2, 2, 2, 1, pipeline::ScheduleType::kOneFOneB, true, false},
        Grid{2, 2, 2, 1, pipeline::ScheduleType::kOneFOneB, true, true},
        Grid{2, 2, 2, 1, pipeline::ScheduleType::kGPipe, true, true},
        // Interleaved schedules (tied-embedding defer path exercises here).
        Grid{2, 1, 1, 2, pipeline::ScheduleType::kInterleaved, false, true},
        Grid{2, 2, 1, 2, pipeline::ScheduleType::kInterleaved, true, true},
        Grid{2, 1, 2, 2, pipeline::ScheduleType::kInterleaved, false, true},
        Grid{2, 1, 2, 2, pipeline::ScheduleType::kInterleaved, false, false},
        Grid{2, 2, 2, 2, pipeline::ScheduleType::kInterleaved, true, true}));

TEST(PtdpEngine, EquivalenceHoldsWithDropoutAndRecompute) {
  // Dropout masks are keyed by (tag, layer, global head), so even a
  // (p=2, t=2) run with recomputation must match serial exactly.
  const std::int64_t B = 4, b = 1;
  const int steps = 2;
  GptConfig c = engine_config(2);
  c.dropout = 0.1f;
  const auto serial = serial_trajectory(c, B, b, steps, EngineOptions::Opt::kSgd);
  DataSetup ds(c);

  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.t = 2;
    options.parallel.b = b;
    options.parallel.recompute = true;
    options.global_batch = B;
    options.sgd.lr = 0.1f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, B, b, 1, 0, 88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      EXPECT_NEAR(engine.train_step(mbs), serial[static_cast<std::size_t>(s)], 2e-3f);
    }
  });
}

TEST(PtdpEngine, AdamTrajectoryMatchesSerial) {
  const std::int64_t B = 4, b = 1;
  const int steps = 3;
  GptConfig c = engine_config(2);
  const auto serial = serial_trajectory(c, B, b, steps, EngineOptions::Opt::kAdam);
  DataSetup ds(c);

  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.d = 2;
    options.parallel.b = b;
    options.parallel.recompute = false;
    options.global_batch = B;
    options.optimizer = EngineOptions::Opt::kAdam;
    options.adam.lr = 1e-3f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, B, b, 2, engine.groups().coord().data, 88);
    for (int s = 0; s < steps; ++s) {
      auto mbs = loader.next_batch(s);
      EXPECT_NEAR(engine.train_step(mbs), serial[static_cast<std::size_t>(s)], 2e-3f);
    }
  });
}

TEST(PtdpEngine, LossDecreasesOnSyntheticCorpus) {
  GptConfig c = engine_config(2);
  DataSetup ds(c);
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.b = 2;
    options.parallel.recompute = false;
    options.global_batch = 8;
    options.optimizer = EngineOptions::Opt::kAdam;
    options.adam.lr = 3e-3f;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, 8, 2, 1, 0, 11);
    float first = 0.f, last = 0.f;
    const int steps = 25;
    for (int s = 0; s < steps; ++s) {
      const float loss = engine.train_step(loader.next_batch(s));
      if (s == 0) first = loss;
      last = loss;
    }
    // Initial loss ~= ln(V); bigram structure is learnable.
    EXPECT_NEAR(first, std::log(static_cast<float>(c.vocab)), 0.7f);
    EXPECT_LT(last, first - 0.3f);
  });
}

TEST(PtdpEngine, CheckpointResumeIsExact) {
  GptConfig c = engine_config(2);
  DataSetup ds(c);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ptdp_engine_ckpt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::vector<float> continued, resumed;
  dist::World world(2);
  // Train 2 steps, checkpoint, then 2 more.
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = EngineOptions::Opt::kAdam;
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, 4, 1, 1, 0, 33);
    engine.train_step(loader.next_batch(0));
    engine.train_step(loader.next_batch(1));
    engine.save_checkpoint(dir.string(), /*step=*/2);
    for (int s = 2; s < 4; ++s) {
      const float loss = engine.train_step(loader.next_batch(s));
      if (comm.rank() == 0) continued.push_back(loss);
    }
  });
  // Fresh engine, load, continue — must reproduce the same losses.
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = EngineOptions::Opt::kAdam;
    PtdpEngine engine(comm, options);
    const std::uint64_t step = engine.load_checkpoint(dir.string());
    EXPECT_EQ(step, 2u);
    data::ShardedLoader loader(ds.dataset, 4, 1, 1, 0, 33);
    for (int s = 2; s < 4; ++s) {
      const float loss = engine.train_step(loader.next_batch(s));
      if (comm.rank() == 0) resumed.push_back(loss);
    }
  });
  std::filesystem::remove_all(dir);
  ASSERT_EQ(continued.size(), resumed.size());
  for (std::size_t i = 0; i < continued.size(); ++i) {
    // Checkpoints carry weights, Adam moments, and the bias-correction
    // step counter, so the resumed trajectory is exact.
    EXPECT_FLOAT_EQ(continued[i], resumed[i]) << "post-resume step " << i;
  }
}

TEST(PtdpEngine, MixedPrecisionTrainsCloseToFp32) {
  GptConfig c = engine_config(2);
  DataSetup ds(c);
  const auto fp32 =
      serial_trajectory(c, 4, 1, 3, EngineOptions::Opt::kSgd, /*mixed=*/false);
  const auto bf16 =
      serial_trajectory(c, 4, 1, 3, EngineOptions::Opt::kSgd, /*mixed=*/true);
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(bf16[i], fp32[i], 0.05f) << "step " << i;
  }
}

TEST(PtdpEngine, GradClipReportsNorm) {
  GptConfig c = engine_config(2);
  DataSetup ds(c);
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.grad_clip = 1e-6;  // absurdly tight: everything clips
    PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, 4, 1, 1, 0, 3);
    engine.train_step(loader.next_batch(0));
    EXPECT_GT(engine.last_grad_norm(), 1e-6);
  });
}

TEST(PtdpEngine, RejectsInvalidConfigurations) {
  GptConfig c = engine_config(3);  // 3 layers can't split over p=2
  dist::World world(2);
  EXPECT_THROW(world.run([&](dist::Comm& comm) {
                 EngineOptions options;
                 options.model = c;
                 options.parallel.p = 2;
                 options.global_batch = 4;
                 PtdpEngine engine(comm, options);
               }),
               dist::RankFailure);
}

}  // namespace
}  // namespace ptdp::core
