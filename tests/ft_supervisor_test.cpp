// End-to-end fault-tolerance tests: a seeded FaultPlan kills ranks of a
// full (p=2, t=2, d=2) PTD-P engine mid-training; the TrainSupervisor must
// recover automatically from the last committed checkpoint and finish with
// weights BITWISE identical to an uninterrupted run with the same
// checkpoint cadence — the acceptance bar for the whole fault plane.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/ft/supervisor.hpp"

namespace ptdp::ft {
namespace {

using core::EngineOptions;
using core::PtdpEngine;

constexpr int kSteps = 6;
constexpr int kCkptEvery = 2;

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

class SupervisorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("ptdp_ft_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    config_.num_layers = 2;
    config_.hidden = 16;
    config_.heads = 4;
    config_.vocab = 32;
    config_.seq = 8;
    config_.seed = 99;
    corpus_ = std::make_unique<data::SyntheticCorpus>(config_.vocab, 4);
    dataset_ = std::make_unique<data::TokenDataset>(corpus_->generate(4000),
                                                    config_.seq);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  EngineOptions options_for(int p, int t, int d) {
    EngineOptions o;
    o.model = config_;
    o.parallel.p = p;
    o.parallel.t = t;
    o.parallel.d = d;
    o.parallel.b = 1;
    o.parallel.recompute = false;
    o.global_batch = 8;
    o.optimizer = EngineOptions::Opt::kAdam;
    o.adam.lr = 2e-3f;
    return o;
  }

  // The SPMD training body: resume from the newest committed checkpoint if
  // one exists, train to kSteps, committing every kCkptEvery steps.
  void train_body(dist::Comm& comm, const std::string& dir,
                  std::uint64_t committed_step, int p, int t, int d) {
    PtdpEngine engine(comm, options_for(p, t, d));
    int start = 0;
    if (committed_step > 0) {
      start = static_cast<int>(engine.load_checkpoint(dir));
    }
    data::ShardedLoader loader(*dataset_, 8, 1, d,
                               engine.groups().coord().data, 8);
    for (int step = start; step < kSteps; ++step) {
      engine.train_step(loader.next_batch(step));
      if ((step + 1) % kCkptEvery == 0) {
        engine.save_checkpoint(dir, static_cast<std::uint64_t>(step + 1));
      }
    }
  }

  // Runs supervised training under `plan` into `dir`; returns recovery
  // stats. The factory always builds an 8-rank (2,2,2) world.
  RecoveryStats run_222(const std::string& dir,
                        std::shared_ptr<dist::FaultPlan> plan,
                        int max_restarts = 3) {
    SupervisorOptions sup;
    sup.ckpt_dir = dir;
    sup.max_restarts = max_restarts;
    sup.fault_plan = std::move(plan);
    TrainSupervisor supervisor(sup);
    supervisor.run(
        [](int) { return std::make_unique<dist::World>(8); },
        [&](dist::Comm& comm, std::uint64_t committed, int) {
          train_body(comm, dir, committed, 2, 2, 2);
        });
    return supervisor.stats();
  }

  // Final committed checkpoint must be step kSteps with every shard
  // bitwise identical between the two checkpoint dirs.
  void expect_bitwise_identical_final(const std::string& a,
                                      const std::string& b) {
    const auto ca = ckpt::find_latest_valid_checkpoint(a);
    const auto cb = ckpt::find_latest_valid_checkpoint(b);
    ASSERT_TRUE(ca.has_value());
    ASSERT_TRUE(cb.has_value());
    EXPECT_EQ(ca->step(), static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(cb->step(), static_cast<std::uint64_t>(kSteps));
    ASSERT_EQ(ca->manifest.shards.size(), cb->manifest.shards.size());
    for (std::size_t i = 0; i < ca->manifest.shards.size(); ++i) {
      const auto& ea = ca->manifest.shards[i];
      const auto& eb = cb->manifest.shards[i];
      EXPECT_EQ(ea.file, eb.file);
      EXPECT_EQ(ea.crc, eb.crc) << ea.file;
      EXPECT_EQ(read_bytes(a + "/" + ea.file), read_bytes(b + "/" + eb.file))
          << ea.file;
    }
  }

  std::string dir(const char* name) { return (root_ / name).string(); }

  std::filesystem::path root_;
  model::GptConfig config_;
  std::unique_ptr<data::SyntheticCorpus> corpus_;
  std::unique_ptr<data::TokenDataset> dataset_;
};

// ---- the acceptance test ---------------------------------------------------

TEST_F(SupervisorFixture, KillSweepRecoversToBitwiseIdenticalWeights) {
  // Uninterrupted reference run (same checkpoint cadence, no faults). An
  // empty plan rides along purely to count each rank's per-run sends, so
  // the sweep below can place kills at exact fractions of the run.
  const std::string ref = dir("ref");
  std::filesystem::create_directories(ref);
  auto probe = std::make_shared<dist::FaultPlan>();
  const auto clean = run_222(ref, probe);
  EXPECT_TRUE(clean.succeeded);
  EXPECT_EQ(clean.failures, 0);

  // Kill each of the 8 ranks at its k-th p2p send, with k swept from early
  // in the run to near its end. Every schedule must recover to identical
  // weights.
  for (int victim = 0; victim < 8; ++victim) {
    const std::uint64_t total = probe->count(victim, dist::FaultSite::kSend);
    ASSERT_GT(total, 8u) << "rank " << victim << " barely sends?";
    const std::uint64_t nth =
        std::max<std::uint64_t>(1, total * static_cast<std::uint64_t>(victim + 1) / 9);
    SCOPED_TRACE("victim rank " + std::to_string(victim) + " at send #" +
                 std::to_string(nth) + " of " + std::to_string(total));
    const std::string d =
        dir(("kill-" + std::to_string(victim)).c_str());
    std::filesystem::create_directories(d);
    auto plan = std::make_shared<dist::FaultPlan>(/*seed=*/1);
    plan->kill(victim, dist::FaultSite::kSend, nth);

    const auto stats = run_222(d, plan);
    EXPECT_TRUE(stats.succeeded);
    EXPECT_EQ(stats.failures, 1);
    ASSERT_EQ(stats.events.size(), 1u);
    EXPECT_EQ(stats.events[0].rank, victim);
    expect_bitwise_identical_final(ref, d);
  }
}

TEST_F(SupervisorFixture, KillDuringCheckpointCommitRecovers) {
  const std::string ref = dir("ref");
  std::filesystem::create_directories(ref);
  run_222(ref, nullptr);

  // Kill rank 3 in the middle of its shard write during the step-4 commit
  // window (each commit is ~18 write phases per rank; the 20th phase lands
  // inside the second commit). The torn commit must be invisible: recovery
  // resumes from a committed step and finishes identically.
  const std::string d = dir("kill-in-commit");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->kill(3, dist::FaultSite::kCkptWrite, 7);
  const auto stats = run_222(d, plan);
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_TRUE(std::string(stats.events[0].cause).find("ckpt-write") !=
              std::string::npos);
  expect_bitwise_identical_final(ref, d);
}

TEST_F(SupervisorFixture, RetriesAreBoundedAndStatsFaithful) {
  // Two injected kills but only one restart allowed: the second failure
  // must propagate out of the supervisor, with both recorded in stats.
  // Both kills target the same rank: the first ends attempt 0 at send #20
  // (so the second, later spec cannot also fire in that run), and the
  // second deterministically ends the restarted attempt at its send #35.
  const std::string d = dir("bounded");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->kill(1, dist::FaultSite::kSend, 20);
  plan->kill(1, dist::FaultSite::kSend, 35);

  SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 1;
  sup.fault_plan = plan;
  TrainSupervisor supervisor(sup);
  EXPECT_THROW(
      supervisor.run(
          [](int) { return std::make_unique<dist::World>(8); },
          [&](dist::Comm& comm, std::uint64_t committed, int) {
            train_body(comm, d, committed, 2, 2, 2);
          }),
      dist::RankFailure);
  const auto& stats = supervisor.stats();
  EXPECT_FALSE(stats.succeeded);
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.failures, 2);
  ASSERT_EQ(stats.events.size(), 2u);
  EXPECT_EQ(stats.events[0].rank, 1);
  EXPECT_EQ(stats.events[1].rank, 1);
}

TEST_F(SupervisorFixture, ElasticRestartReshardsToNarrowerLayout) {
  // Attempt 0 trains under t=2; after the injected kill, the factory
  // hands back a 1-rank world and the body reshards the committed t=2
  // checkpoint into a serial layout before resuming — the elastic-restart
  // path (recover on fewer "GPUs" than you crashed on).
  // Probe a clean t=2 run to size the kill point at ~mid-run (after the
  // step-2 commit, before the step-4 one).
  const std::string probe_dir = dir("elastic-probe");
  std::filesystem::create_directories(probe_dir);
  auto probe = std::make_shared<dist::FaultPlan>();
  {
    SupervisorOptions psup;
    psup.ckpt_dir = probe_dir;
    psup.fault_plan = probe;
    TrainSupervisor psupervisor(psup);
    psupervisor.run(
        [](int) { return std::make_unique<dist::World>(2); },
        [&](dist::Comm& comm, std::uint64_t committed, int) {
          train_body(comm, probe_dir, committed, 1, 2, 1);
        });
  }
  const std::uint64_t total = probe->count(1, dist::FaultSite::kSend);
  ASSERT_GT(total, 2u);

  const std::string d = dir("elastic");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->kill(1, dist::FaultSite::kSend, total / 2);

  SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 1;
  sup.fault_plan = plan;
  TrainSupervisor supervisor(sup);
  const auto& stats = supervisor.run(
      [](int attempt) {
        return std::make_unique<dist::World>(attempt == 0 ? 2 : 1);
      },
      [&](dist::Comm& comm, std::uint64_t committed, int attempt) {
        if (attempt == 0) {
          train_body(comm, d, committed, 1, 2, 1);
          return;
        }
        // Recovery on the narrower world: merge the committed t=2 shards
        // into one serial checkpoint and resume from it at t=1.
        ASSERT_GT(committed, 0u);
        const auto best = ckpt::find_latest_valid_checkpoint(d);
        ASSERT_TRUE(best.has_value());
        const std::string merged_dir = dir("elastic-merged");
        std::filesystem::create_directories(merged_dir);
        ckpt::merge_shards(best->shard_dir, 1, 2,
                           ckpt::shard_path(merged_dir, 0, 0, 0));
        PtdpEngine engine(comm, options_for(1, 1, 1));
        EXPECT_EQ(engine.load_resharded(merged_dir), committed);
        data::ShardedLoader loader(*dataset_, 8, 1, 1, 0, 8);
        for (int step = static_cast<int>(committed); step < kSteps; ++step) {
          engine.train_step(loader.next_batch(step));
        }
      });
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.failures, 1);
  ASSERT_EQ(stats.events.size(), 1u);
  EXPECT_GE(stats.events[0].resumed_step, 2u);
  EXPECT_LE(stats.steps_lost, static_cast<std::uint64_t>(kCkptEvery));
}

TEST_F(SupervisorFixture, StepsLostAccountsFailedMinusResumed) {
  // Kill late (after the step-4 commit): the rank fails at noted step 4 or
  // 5 having resumed from 4 — at most one step of work is lost.
  const std::string probe_dir = dir("lost-probe");
  std::filesystem::create_directories(probe_dir);
  auto probe = std::make_shared<dist::FaultPlan>();
  run_222(probe_dir, probe);
  const std::uint64_t total = probe->count(0, dist::FaultSite::kSend);

  const std::string d = dir("lost");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  plan->kill(0, dist::FaultSite::kSend, total - total / 12);  // late in the run
  const auto stats = run_222(d, plan);
  EXPECT_TRUE(stats.succeeded);
  ASSERT_EQ(stats.events.size(), 1u);
  EXPECT_GE(stats.events[0].resumed_step, 2u);
  EXPECT_LE(stats.steps_lost,
            static_cast<std::uint64_t>(kCkptEvery));
}

TEST_F(SupervisorFixture, BackoffScheduleIsExactViaInjectedSleep) {
  // Four consecutive injected kills; the recorded virtual sleeps must follow
  // the exact exponential schedule 0.5, 1.0, 2.0, 2.0 (capped) — asserted
  // without a single real sleep thanks to the sleep_fn hook.
  const std::string d = dir("backoff");
  std::filesystem::create_directories(d);
  auto plan = std::make_shared<dist::FaultPlan>();
  // Each restart resets the op counters, so one spec fires per attempt.
  plan->kill(1, dist::FaultSite::kSend, 3);
  plan->kill(1, dist::FaultSite::kSend, 4);
  plan->kill(1, dist::FaultSite::kSend, 5);
  plan->kill(1, dist::FaultSite::kSend, 6);

  std::vector<double> sleeps;
  SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 4;
  sup.fault_plan = plan;
  sup.backoff_initial_s = 0.5;
  sup.backoff_multiplier = 2.0;
  sup.backoff_max_s = 2.0;
  sup.sleep_fn = [&](double s) { sleeps.push_back(s); };
  TrainSupervisor supervisor(sup);
  // A cheap deterministic SPMD body — the schedule under test lives in the
  // supervisor, not the engine.
  const auto& stats = supervisor.run(
      [](int) { return std::make_unique<dist::World>(2); },
      [](dist::Comm& comm, std::uint64_t, int) {
        for (int i = 0; i < 8; ++i) {
          const int peer = 1 - comm.rank();
          const float v = static_cast<float>(i);
          float got = 0.f;
          dist::Request s =
              comm.isend(std::span<const float>(&v, 1), peer, /*tag=*/i);
          comm.recv(std::span<float>(&got, 1), peer, /*tag=*/i);
          s.wait();
        }
      });

  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.failures, 4);
  ASSERT_EQ(sleeps, (std::vector<double>{0.5, 1.0, 2.0, 2.0}));
  ASSERT_EQ(stats.events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stats.events[i].backoff_s, sleeps[i]) << i;
  }
}

}  // namespace
}  // namespace ptdp::ft
