// Paged KV cache tests: block allocator alloc/free/reuse and hard budget,
// fragmentation under churn, byte-exact accounting, zero steady-state pool
// growth across request lifecycles, and byte equality between the paged
// store and the contiguous SimpleKvStore reference.

#include <gtest/gtest.h>

#include <vector>

#include "ptdp/model/kv_cache.hpp"
#include "ptdp/serve/kv_cache.hpp"

namespace ptdp::serve {
namespace {

TEST(BlockAllocator, AllocFreeReuse) {
  BlockAllocator alloc({/*block_floats=*/64, /*capacity_blocks=*/4, false});
  EXPECT_EQ(alloc.free_blocks(), 4);
  EXPECT_EQ(alloc.live_blocks(), 0);

  const std::int32_t a = alloc.allocate();
  const std::int32_t b = alloc.allocate();
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.live_blocks(), 2);
  EXPECT_EQ(alloc.pool_acquires(), 2);

  // Freed blocks come back (LIFO) without touching the pool again.
  alloc.free(b);
  EXPECT_EQ(alloc.live_blocks(), 1);
  const std::int32_t c = alloc.allocate();
  EXPECT_EQ(c, b);
  EXPECT_EQ(alloc.pool_acquires(), 2);

  // Data pointers are stable and distinct.
  EXPECT_NE(alloc.data(a), alloc.data(c));
  alloc.data(a)[0] = 1.0f;
  alloc.data(c)[0] = 2.0f;
  EXPECT_EQ(alloc.data(a)[0], 1.0f);
  EXPECT_EQ(alloc.data(c)[0], 2.0f);
}

TEST(BlockAllocator, HardBudgetReturnsMinusOne) {
  BlockAllocator alloc({16, 2, false});
  EXPECT_GE(alloc.allocate(), 0);
  EXPECT_GE(alloc.allocate(), 0);
  EXPECT_EQ(alloc.allocate(), -1);  // exhausted, not a throw
  EXPECT_EQ(alloc.free_blocks(), 0);
  alloc.free(0);
  EXPECT_GE(alloc.allocate(), 0);  // freed capacity is usable again
}

TEST(BlockAllocator, ByteExactAccounting) {
  BlockAllocator alloc({128, 8, false});
  EXPECT_EQ(alloc.block_bytes(), 128 * static_cast<std::int64_t>(sizeof(float)));
  const std::int32_t a = alloc.allocate();
  const std::int32_t b = alloc.allocate();
  EXPECT_EQ(alloc.live_bytes(), 2 * alloc.block_bytes());
  EXPECT_EQ(alloc.peak_bytes(), 2 * alloc.block_bytes());
  alloc.free(a);
  alloc.free(b);
  EXPECT_EQ(alloc.live_bytes(), 0);
  // Peak is a high-water mark: it never decreases.
  EXPECT_EQ(alloc.peak_bytes(), 2 * alloc.block_bytes());
}

TEST(BlockAllocator, FragmentationChurnNeverGrowsPool) {
  // Interleaved alloc/free with holes: the free list must absorb all
  // churn once every block has been touched.
  BlockAllocator alloc({32, 16, false});
  Rng rng(3);
  std::vector<std::int32_t> held;
  for (int iter = 0; iter < 2000; ++iter) {
    if (!held.empty() && rng.next_bernoulli(0.5)) {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(held.size()));
      alloc.free(held[i]);
      held[i] = held.back();
      held.pop_back();
    } else {
      const std::int32_t id = alloc.allocate();
      if (id >= 0) held.push_back(id);
    }
    ASSERT_LE(alloc.live_blocks(), 16);
    ASSERT_EQ(alloc.live_blocks(), static_cast<std::int64_t>(held.size()));
  }
  for (std::int32_t id : held) alloc.free(id);
  EXPECT_EQ(alloc.live_blocks(), 0);
  EXPECT_LE(alloc.pool_acquires(), 16);  // never more than one per slot
}

KvCacheOptions tiny_kv(std::int64_t capacity = 8) {
  KvCacheOptions o;
  o.num_layers = 2;
  o.hidden_local = 6;
  o.block_tokens = 4;
  o.capacity_blocks = capacity;
  o.record_metrics = false;
  return o;
}

tensor::Tensor rows(std::int64_t n, std::int64_t w, float base) {
  tensor::Tensor t({n, w});
  auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = base + static_cast<float>(i) * 0.25f;
  }
  return t;
}

TEST(PagedKvCache, ReserveWriteGatherRoundTrip) {
  PagedKvCache kv(tiny_kv());
  ASSERT_TRUE(kv.try_reserve(7, 6));  // 6 tokens -> 2 blocks of 4
  EXPECT_EQ(kv.seq_blocks(7), 2);
  EXPECT_EQ(kv.reserved_tokens(7), 8);

  // Two appends per layer, like chunked prefill.
  for (std::int64_t layer = 0; layer < 2; ++layer) {
    kv.write(7, layer, 0, rows(4, 6, 1.0f + static_cast<float>(layer)),
             rows(4, 6, 50.0f));
    kv.write(7, layer, 4, rows(2, 6, 9.0f), rows(2, 6, 90.0f));
  }
  tensor::Tensor k({2, 6, 3});  // heads_local=2, len=6, dk=3
  tensor::Tensor v({2, 6, 3});
  kv.gather(7, 1, 6, k, v);
  // Row 0 of layer 1's K was [2.0, 2.25, ...]: head 0 gets the first dk
  // floats, head 1 the next dk (head-major within hidden_local).
  EXPECT_EQ(k.at({0, 0, 0}), 2.0f);
  EXPECT_EQ(k.at({0, 0, 1}), 2.25f);
  EXPECT_EQ(k.at({1, 0, 0}), 2.75f);  // head 1 starts at float 3
  // Position 4 came from the second append's row 0 (base 9.0).
  EXPECT_EQ(k.at({0, 4, 0}), 9.0f);
  EXPECT_EQ(v.at({0, 4, 0}), 90.0f);

  kv.drop(7);
  EXPECT_EQ(kv.seq_blocks(7), 0);
  EXPECT_EQ(kv.free_blocks(), 8);
}

TEST(PagedKvCache, MatchesSimpleKvStoreBytes) {
  // The paged store must return byte-identical K/V to the contiguous
  // reference store for identical appends.
  const std::int64_t layers = 2, hl = 8, len = 11;
  PagedKvCache paged({layers, hl, /*block_tokens=*/4, /*capacity=*/16, false});
  model::SimpleKvStore simple;
  ASSERT_TRUE(paged.try_reserve(1, len));
  Rng rng(11);
  std::int64_t pos = 0;
  for (const std::int64_t chunk : {3LL, 1LL, 5LL, 2LL}) {
    for (std::int64_t layer = 0; layer < layers; ++layer) {
      tensor::Tensor k({chunk, hl}), v({chunk, hl});
      for (auto& x : k.data()) x = static_cast<float>(rng.next_gaussian());
      for (auto& x : v.data()) x = static_cast<float>(rng.next_gaussian());
      paged.write(1, layer, pos, k, v);
      simple.write(1, layer, pos, k, v);
    }
    pos += chunk;
  }
  for (std::int64_t layer = 0; layer < layers; ++layer) {
    tensor::Tensor pk({2, len, 4}), pv({2, len, 4});
    tensor::Tensor sk({2, len, 4}), sv({2, len, 4});
    paged.gather(1, layer, len, pk, pv);
    simple.gather(1, layer, len, sk, sv);
    auto a = pk.data(), b = sk.data();
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
    a = pv.data();
    b = sv.data();
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(PagedKvCache, ReserveFailureAllocatesNothing) {
  PagedKvCache kv(tiny_kv(/*capacity=*/3));
  ASSERT_TRUE(kv.try_reserve(1, 8));  // 2 blocks
  EXPECT_FALSE(kv.try_reserve(2, 9));  // needs 3, only 1 free
  EXPECT_EQ(kv.seq_blocks(2), 0);      // failure must not partially allocate
  EXPECT_EQ(kv.free_blocks(), 1);
  ASSERT_TRUE(kv.try_reserve(2, 4));   // 1 block still fits
  EXPECT_EQ(kv.free_blocks(), 0);
}

TEST(PagedKvCache, WriteOutsideReservationThrows) {
  PagedKvCache kv(tiny_kv());
  tensor::Tensor k({1, 6}), v({1, 6});
  EXPECT_THROW(kv.write(5, 0, 0, k, v), CheckError);  // never reserved
  ASSERT_TRUE(kv.try_reserve(5, 4));
  EXPECT_THROW(kv.write(5, 0, 4, k, v), CheckError);  // past the table
}

TEST(PagedKvCache, ZeroSteadyStatePoolGrowth) {
  // Serving forever must not grow the pool: after the first wave of
  // requests, every block the cache hands out is a reused one.
  PagedKvCache kv(tiny_kv(/*capacity=*/6));
  tensor::Tensor k({4, 6}), v({4, 6});
  for (auto& x : k.data()) x = 1.0f;
  for (auto& x : v.data()) x = 2.0f;

  auto one_request = [&](std::uint64_t id) {
    ASSERT_TRUE(kv.try_reserve(id, 8));
    for (std::int64_t layer = 0; layer < 2; ++layer) {
      kv.write(id, layer, 0, k, v);
      kv.write(id, layer, 4, k, v);
    }
    kv.drop(id);
  };

  for (std::uint64_t id = 0; id < 3; ++id) one_request(id);  // warm-up
  const std::int64_t acquires_after_warmup = kv.allocator().pool_acquires();
  for (std::uint64_t id = 3; id < 100; ++id) one_request(id);
  EXPECT_EQ(kv.allocator().pool_acquires(), acquires_after_warmup);
  EXPECT_EQ(kv.allocator().live_blocks(), 0);
  EXPECT_EQ(kv.total_table_blocks(), 0);
}

}  // namespace
}  // namespace ptdp::serve
