// Kernel tests: GEMM vs. naive reference, elementwise ops, and
// finite-difference gradient checks for every backward kernel. The gradient
// checks are the load-bearing tests — the hand-written transformer backprop
// is only as correct as these kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (std::int64_t p = 0; p < k; ++p) acc += a.at({i, p}) * b.at({p, j});
      c.at({i, j}) = acc;
    }
  }
  return c;
}

// Central-difference numerical gradient of scalar_fn at x, for element i.
float numerical_grad(const std::function<float(const Tensor&)>& scalar_fn,
                     const Tensor& x, std::int64_t i, float eps = 1e-3f) {
  Tensor xp = x.clone();
  Tensor xm = x.clone();
  xp.data()[static_cast<std::size_t>(i)] += eps;
  xm.data()[static_cast<std::size_t>(i)] -= eps;
  return (scalar_fn(xp) - scalar_fn(xm)) / (2.0f * eps);
}

// Checks analytic grad dx of sum(weight ⊙ f(x)) against finite differences.
void check_grad(const std::function<Tensor(const Tensor&)>& f, const Tensor& x,
                const Tensor& dx_analytic, const Tensor& weight, float tol = 2e-2f) {
  auto scalar_fn = [&](const Tensor& xx) { return sum_all(mul(f(xx), weight)); };
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float num = numerical_grad(scalar_fn, x, i);
    const float ana = dx_analytic.data()[static_cast<std::size_t>(i)];
    ASSERT_NEAR(ana, num, tol) << "element " << i;
  }
}

TEST(Gemm, MatmulMatchesNaive) {
  Rng rng(1);
  for (auto [m, k, n] : std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}, {1, 16, 5}}) {
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-5f))
        << m << "x" << k << "x" << n;
  }
}

TEST(Gemm, MatmulNtEqualsMatmulWithExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  EXPECT_TRUE(allclose(matmul_nt(a, b), matmul(a, b.transpose(0, 1)), 1e-4f, 1e-5f));
}

TEST(Gemm, MatmulTnEqualsMatmulWithExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::randn({6, 4}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(a.transpose(0, 1), b), 1e-4f, 1e-5f));
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5});
  EXPECT_THROW(matmul(a, b), CheckError);
  EXPECT_THROW(matmul_nt(a, b), CheckError);
  EXPECT_THROW(matmul_tn(a, b), CheckError);
}

TEST(Gemm, BatchedVariantsMatchPerBatchMatmul) {
  Rng rng(4);
  Tensor a = Tensor::randn({3, 2, 5}, rng);
  Tensor b = Tensor::randn({3, 5, 4}, rng);
  Tensor c = bmm(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 4}));
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor ai = a.slice(0, i, 1).view({2, 5});
    Tensor bi = b.slice(0, i, 1).view({5, 4});
    Tensor ci = c.slice(0, i, 1).view({2, 4});
    EXPECT_TRUE(allclose(ci, matmul(ai, bi), 1e-4f, 1e-5f));
  }

  Tensor bt = Tensor::randn({3, 4, 5}, rng);
  Tensor cnt = bmm_nt(a, bt);
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor ai = a.slice(0, i, 1).view({2, 5});
    Tensor bi = bt.slice(0, i, 1).view({4, 5});
    Tensor ci = cnt.slice(0, i, 1).view({2, 4});
    EXPECT_TRUE(allclose(ci, matmul_nt(ai, bi), 1e-4f, 1e-5f));
  }

  Tensor at = Tensor::randn({3, 5, 2}, rng);
  Tensor ctn = bmm_tn(at, b);
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor ai = at.slice(0, i, 1).view({5, 2});
    Tensor bi = b.slice(0, i, 1).view({5, 4});
    Tensor ci = ctn.slice(0, i, 1).view({2, 4});
    EXPECT_TRUE(allclose(ci, matmul_tn(ai, bi), 1e-4f, 1e-5f));
  }
}

TEST(Elementwise, AddSubMulScale) {
  Tensor a = Tensor::from_values({1, 2, 3});
  Tensor b = Tensor::from_values({4, 5, 6});
  EXPECT_EQ(add(a, b).at({1}), 7.f);
  EXPECT_EQ(sub(a, b).at({2}), -3.f);
  EXPECT_EQ(mul(a, b).at({0}), 4.f);
  EXPECT_EQ(scale(a, 2.f).at({2}), 6.f);
}

TEST(Elementwise, InPlaceOps) {
  Tensor a = Tensor::from_values({1, 2, 3});
  Tensor b = Tensor::from_values({1, 1, 1});
  add_(a, b);
  EXPECT_EQ(a.at({0}), 2.f);
  axpy_(a, 0.5f, b);
  EXPECT_EQ(a.at({0}), 2.5f);
  scale_(a, 2.f);
  EXPECT_EQ(a.at({0}), 5.f);
}

TEST(Elementwise, AddBiasBroadcastsOverRows) {
  Tensor x = Tensor::from_vector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias = Tensor::from_values({10, 20, 30});
  Tensor y = add_bias(x, bias);
  EXPECT_EQ(y.at({0, 1}), 20.f);
  EXPECT_EQ(y.at({1, 2}), 31.f);
}

TEST(Elementwise, BiasGradIsColumnSum) {
  Tensor dy = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor g = bias_grad(dy);
  EXPECT_EQ(g.at({0}), 5.f);
  EXPECT_EQ(g.at({1}), 7.f);
  EXPECT_EQ(g.at({2}), 9.f);
}

TEST(Gelu, MatchesReferenceValues) {
  // GeLU(0) = 0, GeLU is ~x for large x, ~0 for very negative x.
  Tensor x = Tensor::from_values({0.f, 5.f, -5.f, 1.f});
  Tensor y = gelu(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at({1}), 5.0f, 1e-3f);
  EXPECT_NEAR(y.at({2}), 0.0f, 1e-3f);
  EXPECT_NEAR(y.at({3}), 0.8412f, 1e-3f);  // known GeLU(1) (tanh approx)
}

TEST(Gelu, GradientMatchesFiniteDifference) {
  Rng rng(11);
  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor w = Tensor::randn({3, 4}, rng);
  Tensor dx = gelu_backward(w, x);
  check_grad([](const Tensor& t) { return gelu(t); }, x, dx, w);
}

TEST(Gelu, VectorPathMatchesExactScalarPath) {
  // The default (vectorized polynomial-exp) path must track the exact
  // libm tanh path to float ulp noise across the whole useful range,
  // including a ragged tail that doesn't fill a vector register.
  const bool saved = gelu_exact();
  Rng rng(17);
  Tensor x = Tensor::randn({7, 53}, rng);
  Tensor w = Tensor::randn({7, 53}, rng);
  set_gelu_exact(false);
  Tensor y_vec = gelu(x);
  Tensor dx_vec = gelu_backward(w, x);
  set_gelu_exact(true);
  Tensor y_exact = gelu(x);
  Tensor dx_exact = gelu_backward(w, x);
  set_gelu_exact(saved);
  EXPECT_TRUE(allclose(y_vec, y_exact, 1e-5f, 1e-6f));
  EXPECT_TRUE(allclose(dx_vec, dx_exact, 1e-4f, 1e-5f));
}

TEST(Gelu, VectorPathIsBitwiseThreadCountStable) {
  struct ThreadGuard {
    std::size_t saved = runtime::intra_op_threads();
    ~ThreadGuard() { runtime::set_intra_op_threads(saved); }
  } guard;
  Rng rng(19);
  Tensor x = Tensor::randn({64, 96}, rng);
  Tensor bias = Tensor::randn({96}, rng);
  runtime::set_intra_op_threads(1);
  const Tensor serial = fused_bias_gelu(x, bias);
  for (const std::size_t t : {2u, 4u}) {
    runtime::set_intra_op_threads(t);
    const Tensor parallel = fused_bias_gelu(x, bias);
    const auto a = serial.data();
    const auto b = parallel.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "lane " << i << " at " << t << " threads";
    }
  }
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor mask;
  Tensor y = dropout(x, 0.0f, rng, mask);
  EXPECT_EQ(max_abs_diff(y, x), 0.0f);
  for (float v : mask.data()) EXPECT_EQ(v, 1.0f);
}

TEST(Dropout, PreservesExpectation) {
  Rng rng(2);
  Tensor x = Tensor::ones({10000});
  Tensor mask;
  Tensor y = dropout(x, 0.3f, rng, mask);
  EXPECT_NEAR(mean_all(y), 1.0f, 0.05f);
  // Survivors are scaled by 1/(1-p).
  for (float v : y.data()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.7f) < 1e-5f);
  }
}

TEST(Dropout, BackwardAppliesSameMask) {
  Rng rng(3);
  Tensor x = Tensor::ones({100});
  Tensor mask;
  Tensor y = dropout(x, 0.5f, rng, mask);
  Tensor dy = Tensor::ones({100});
  Tensor dx = dropout_backward(dy, mask);
  EXPECT_EQ(max_abs_diff(dx, y), 0.0f);  // since x == dy == 1
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(4);
  Tensor x = Tensor::randn({5, 16}, rng, 3.0f);
  Tensor gamma = Tensor::ones({16});
  Tensor beta = Tensor::zeros({16});
  auto res = layernorm(x, gamma, beta);
  for (std::int64_t r = 0; r < 5; ++r) {
    float mean = 0.f, var = 0.f;
    for (std::int64_t j = 0; j < 16; ++j) mean += res.y.at({r, j});
    mean /= 16.f;
    for (std::int64_t j = 0; j < 16; ++j) {
      const float d = res.y.at({r, j}) - mean;
      var += d * d;
    }
    var /= 16.f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(LayerNorm, GammaBetaAffineApplied) {
  Tensor x = Tensor::from_vector({1, 2}, {-1.f, 1.f});
  Tensor gamma = Tensor::from_values({2.f, 2.f});
  Tensor beta = Tensor::from_values({5.f, 5.f});
  auto res = layernorm(x, gamma, beta);
  // Normalized values are ±1 (approx), so y = ±2 + 5.
  EXPECT_NEAR(res.y.at({0, 0}), 3.0f, 1e-2f);
  EXPECT_NEAR(res.y.at({0, 1}), 7.0f, 1e-2f);
}

TEST(LayerNorm, InputGradientMatchesFiniteDifference) {
  Rng rng(5);
  Tensor x = Tensor::randn({3, 8}, rng);
  Tensor gamma = Tensor::randn({8}, rng, 0.5f);
  Tensor beta = Tensor::randn({8}, rng, 0.5f);
  Tensor w = Tensor::randn({3, 8}, rng);
  auto fwd = layernorm(x, gamma, beta);
  auto grads = layernorm_backward(w, x, gamma, fwd.mean, fwd.rstd);
  check_grad([&](const Tensor& t) { return layernorm(t, gamma, beta).y; }, x, grads.dx,
             w);
}

TEST(LayerNorm, GammaBetaGradientsMatchFiniteDifference) {
  Rng rng(6);
  Tensor x = Tensor::randn({3, 8}, rng);
  Tensor gamma = Tensor::randn({8}, rng, 0.5f);
  Tensor beta = Tensor::randn({8}, rng, 0.5f);
  Tensor w = Tensor::randn({3, 8}, rng);
  auto fwd = layernorm(x, gamma, beta);
  auto grads = layernorm_backward(w, x, gamma, fwd.mean, fwd.rstd);
  check_grad([&](const Tensor& g) { return layernorm(x, g, beta).y; }, gamma,
             grads.dgamma, w);
  check_grad([&](const Tensor& b) { return layernorm(x, gamma, b).y; }, beta,
             grads.dbeta, w);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  Tensor x = Tensor::randn({4, 9}, rng, 2.f);
  Tensor y = softmax_lastdim(x);
  Tensor s = row_sum(y);
  for (float v : s.data()) EXPECT_NEAR(v, 1.0f, 1e-5f);
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor x = Tensor::from_vector({1, 3}, {1000.f, 1000.f, 1000.f});
  Tensor y = softmax_lastdim(x);
  for (float v : y.data()) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6f);
}

TEST(Softmax, GradientMatchesFiniteDifference) {
  Rng rng(8);
  Tensor x = Tensor::randn({2, 5}, rng);
  Tensor w = Tensor::randn({2, 5}, rng);
  Tensor y = softmax_lastdim(x);
  Tensor dx = softmax_backward(y, w);
  check_grad([](const Tensor& t) { return softmax_lastdim(t); }, x, dx, w);
}

TEST(Fused, BiasGeluMatchesUnfusedComposition) {
  Rng rng(9);
  Tensor x = Tensor::randn({6, 8}, rng);
  Tensor bias = Tensor::randn({8}, rng);
  EXPECT_TRUE(
      allclose(fused_bias_gelu(x, bias), gelu(add_bias(x, bias)), 1e-6f, 1e-7f));
}

TEST(Fused, BiasGeluBackwardMatchesFiniteDifference) {
  Rng rng(10);
  Tensor x = Tensor::randn({3, 6}, rng);
  Tensor bias = Tensor::randn({6}, rng);
  Tensor w = Tensor::randn({3, 6}, rng);
  Tensor dbias = Tensor::zeros({6});
  Tensor dx = fused_bias_gelu_backward(w, x, bias, dbias);
  check_grad([&](const Tensor& t) { return fused_bias_gelu(t, bias); }, x, dx, w);
  check_grad([&](const Tensor& b) { return fused_bias_gelu(x, b); }, bias, dbias, w);
}

TEST(Fused, BiasDropoutAddAtP0MatchesComposition) {
  Rng rng(11);
  Tensor x = Tensor::randn({4, 5}, rng);
  Tensor bias = Tensor::randn({5}, rng);
  Tensor residual = Tensor::randn({4, 5}, rng);
  Tensor mask;
  Tensor y = fused_bias_dropout_add(x, bias, residual, 0.0f, rng, mask);
  EXPECT_TRUE(allclose(y, add(add_bias(x, bias), residual), 1e-6f, 1e-7f));
}

TEST(Fused, CausalSoftmaxMasksUpperTriangle) {
  Rng rng(12);
  Tensor s = Tensor::randn({2, 4, 4}, rng);
  Tensor y = fused_scale_causal_softmax(s, 1.0f);
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t i = 0; i < 4; ++i) {
      float row_total = 0.f;
      for (std::int64_t j = 0; j < 4; ++j) {
        if (j > i) {
          EXPECT_EQ(y.at({r, i, j}), 0.0f) << "future position leaked";
        }
        row_total += y.at({r, i, j});
      }
      EXPECT_NEAR(row_total, 1.0f, 1e-5f);
    }
  }
}

TEST(Fused, CausalSoftmaxMatchesExplicitMask) {
  Rng rng(13);
  const std::int64_t sq = 5;
  Tensor s = Tensor::randn({3, sq, sq}, rng);
  // Build the explicit causal mask (1 = masked).
  Tensor mask({sq, sq});
  for (std::int64_t i = 0; i < sq; ++i) {
    for (std::int64_t j = 0; j < sq; ++j) {
      mask.at({i, j}) = j > i ? 1.0f : 0.0f;
    }
  }
  const float scl = 0.37f;
  EXPECT_TRUE(allclose(fused_scale_causal_softmax(s, scl),
                       fused_scale_mask_softmax(s, mask, scl), 1e-5f, 1e-6f));
}

TEST(Fused, CausalSoftmaxHandlesRectangular) {
  // sq=2 queries attending over sk=4 keys (e.g. incremental decoding):
  // query i sees keys j <= i + (sk - sq).
  Rng rng(14);
  Tensor s = Tensor::randn({1, 2, 4}, rng);
  Tensor y = fused_scale_causal_softmax(s, 1.0f);
  EXPECT_EQ(y.at({0, 0, 3}), 0.0f);
  EXPECT_GT(y.at({0, 0, 2}), 0.0f);
  EXPECT_GT(y.at({0, 1, 3}), 0.0f);
}

TEST(Fused, ScaleSoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(15);
  Tensor s = Tensor::randn({1, 3, 3}, rng);
  Tensor w = Tensor::randn({1, 3, 3}, rng);
  const float scl = 0.5f;
  Tensor y = fused_scale_causal_softmax(s, scl);
  Tensor ds = fused_scale_softmax_backward(y, w, scl);
  // Mask w on the masked-out region (those outputs are constant 0).
  check_grad([&](const Tensor& t) { return fused_scale_causal_softmax(t, scl); }, s, ds,
             w);
}

TEST(Embedding, GathersRows) {
  Tensor table = Tensor::from_vector({3, 2}, {0, 1, 10, 11, 20, 21});
  std::vector<std::int32_t> ids{2, 0, 2};
  Tensor y = embedding(table, ids);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(y.at({0, 0}), 20.f);
  EXPECT_EQ(y.at({1, 1}), 1.f);
  EXPECT_EQ(y.at({2, 0}), 20.f);
}

TEST(Embedding, OutOfRangeIdThrows) {
  Tensor table({3, 2});
  std::vector<std::int32_t> ids{3};
  EXPECT_THROW(embedding(table, ids), CheckError);
}

TEST(Embedding, BackwardScatterAddsDuplicates) {
  Tensor dtable = Tensor::zeros({3, 2});
  std::vector<std::int32_t> ids{1, 1, 0};
  Tensor dy = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  embedding_backward(dy, ids, dtable);
  EXPECT_EQ(dtable.at({1, 0}), 4.f);  // 1 + 3
  EXPECT_EQ(dtable.at({1, 1}), 6.f);  // 2 + 4
  EXPECT_EQ(dtable.at({0, 0}), 5.f);
  EXPECT_EQ(dtable.at({2, 0}), 0.f);
}

TEST(CrossEntropy, PerfectPredictionHasLowLoss) {
  Tensor logits = Tensor::from_vector({2, 3}, {10, -10, -10, -10, 10, -10});
  std::vector<std::int32_t> targets{0, 1};
  auto res = cross_entropy(logits, targets);
  EXPECT_LT(res.loss, 1e-4f);
}

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  Tensor logits = Tensor::zeros({4, 8});
  std::vector<std::int32_t> targets{0, 3, 5, 7};
  auto res = cross_entropy(logits, targets);
  EXPECT_NEAR(res.loss, std::log(8.f), 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(16);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int32_t> targets{1, 4, 0};
  auto res = cross_entropy(logits, targets);
  Tensor dl = cross_entropy_backward(res.probs, targets);
  auto scalar_fn = [&](const Tensor& l) { return cross_entropy(l, targets).loss; };
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float num = numerical_grad(scalar_fn, logits, i);
    ASSERT_NEAR(dl.data()[static_cast<std::size_t>(i)], num, 2e-2f);
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(17);
  Tensor logits = Tensor::randn({4, 6}, rng);
  std::vector<std::int32_t> targets{0, 1, 2, 3};
  auto res = cross_entropy(logits, targets);
  Tensor dl = cross_entropy_backward(res.probs, targets);
  Tensor rs = row_sum(dl);
  for (float v : rs.data()) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(Reductions, SumMeanMaxNorm) {
  Tensor x = Tensor::from_values({1, -2, 3});
  EXPECT_EQ(sum_all(x), 2.f);
  EXPECT_NEAR(mean_all(x), 2.f / 3.f, 1e-6f);
  EXPECT_EQ(max_all(x), 3.f);
  EXPECT_DOUBLE_EQ(squared_norm(x), 14.0);
}

TEST(Reductions, RowMaxAndRowSum) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 5, 3, -1, -5, -3});
  Tensor mx = row_max(x);
  EXPECT_EQ(mx.at({0}), 5.f);
  EXPECT_EQ(mx.at({1}), -1.f);
  Tensor s = row_sum(x);
  EXPECT_EQ(s.at({0}), 9.f);
  EXPECT_EQ(s.at({1}), -9.f);
}

}  // namespace
}  // namespace ptdp::tensor
