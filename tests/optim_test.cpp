// Optimizer tests: SGD/Adam update math, distributed grad-norm accounting
// (replicated params counted once), bf16 rounding, and the dynamic loss
// scaler's backoff/growth behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "ptdp/dist/world.hpp"
#include "ptdp/optim/mixed_precision.hpp"
#include "ptdp/optim/optimizer.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::optim {
namespace {

using model::Param;
using tensor::Tensor;

Param make_param(const std::string& name, std::vector<float> w, std::vector<float> g,
                 bool replicated = false) {
  const auto n = static_cast<std::int64_t>(w.size());
  Param p{name, Tensor::from_vector({n}, std::move(w)),
          Tensor::from_vector({n}, std::move(g)), replicated};
  return p;
}

TEST(Sgd, PlainUpdateSubtractsScaledGrad) {
  Param p = make_param("w", {1.0f, 2.0f}, {0.5f, -0.5f});
  Sgd sgd({&p}, SgdOptions{.lr = 0.1f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value.at({0}), 0.95f);
  EXPECT_FLOAT_EQ(p.value.at({1}), 2.05f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Param p = make_param("w", {0.0f}, {1.0f});
  Sgd sgd({&p}, SgdOptions{.lr = 1.0f, .momentum = 0.9f});
  sgd.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value.at({0}), -1.0f);
  sgd.step();  // v = 0.9 + 1 = 1.9, w = -2.9
  EXPECT_FLOAT_EQ(p.value.at({0}), -2.9f);
}

TEST(Sgd, WeightDecayAddsL2Term) {
  Param p = make_param("w", {2.0f}, {0.0f});
  Sgd sgd({&p}, SgdOptions{.lr = 0.5f, .weight_decay = 0.1f});
  sgd.step();  // grad_eff = 0.2, w = 2 - 0.1 = 1.9
  EXPECT_FLOAT_EQ(p.value.at({0}), 1.9f);
}

TEST(Sgd, StateTensorsExposeVelocityOnlyWithMomentum) {
  Param p = make_param("w", {0.0f}, {0.0f});
  Sgd plain({&p}, SgdOptions{});
  EXPECT_TRUE(plain.state_tensors().empty());
  Sgd with_momentum({&p}, SgdOptions{.momentum = 0.9f});
  EXPECT_EQ(with_momentum.state_tensors().size(), 1u);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Param p = make_param("w", {0.0f}, {3.0f});
  Adam adam({&p}, AdamOptions{.lr = 0.01f});
  adam.step();
  EXPECT_NEAR(p.value.at({0}), -0.01f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 — grad = 2(w - 3).
  Param p = make_param("w", {0.0f}, {0.0f});
  Adam adam({&p}, AdamOptions{.lr = 0.1f});
  for (int i = 0; i < 400; ++i) {
    p.grad.at({0}) = 2.0f * (p.value.at({0}) - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value.at({0}), 3.0f, 0.05f);
}

TEST(Adam, StateTensorsHoldMomentsAndStepCount) {
  Param p = make_param("w", {0.0f}, {0.0f});
  Adam adam({&p}, AdamOptions{});
  auto state = adam.state_tensors();
  ASSERT_EQ(state.size(), 3u);
  EXPECT_EQ(state[0].first, "w.adam_m");
  EXPECT_EQ(state[1].first, "w.adam_v");
  EXPECT_EQ(state[2].first, "adam.step_count");
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 2);
}

TEST(GradNorm, SerialMatchesManualNorm) {
  Param a = make_param("a", {0, 0}, {3.0f, 0.0f});
  Param b = make_param("b", {0}, {4.0f});
  model::ParamRefs refs{&a, &b};
  EXPECT_NEAR(global_grad_norm(refs, nullptr, nullptr), 5.0, 1e-6);
}

TEST(GradNorm, ReplicatedParamsCountedOnceAcrossTensorRanks) {
  // Two tensor ranks each hold: a sharded grad of 3.0 and a replicated grad
  // of 4.0. True global norm: sqrt(3^2 + 3^2 + 4^2) = sqrt(34).
  dist::World world(2);
  world.run([](dist::Comm& comm) {
    Param sharded = make_param("s", {0}, {3.0f});
    Param replicated = make_param("r", {0}, {4.0f}, /*replicated=*/true);
    model::ParamRefs refs{&sharded, &replicated};
    const double norm = global_grad_norm(refs, &comm, nullptr);
    EXPECT_NEAR(norm, std::sqrt(34.0), 1e-4);
  });
}

TEST(GradNorm, ClipScalesGradsDownToMaxNorm) {
  Param a = make_param("a", {0, 0}, {3.0f, 4.0f});
  model::ParamRefs refs{&a};
  const double pre = clip_grad_norm(refs, 1.0, nullptr, nullptr);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(global_grad_norm(refs, nullptr, nullptr), 1.0, 1e-5);
}

TEST(GradNorm, NoClipBelowThreshold) {
  Param a = make_param("a", {0}, {0.5f});
  model::ParamRefs refs{&a};
  clip_grad_norm(refs, 1.0, nullptr, nullptr);
  EXPECT_FLOAT_EQ(a.grad.at({0}), 0.5f);
}

TEST(Bf16, RoundingMatchesKnownValues) {
  EXPECT_EQ(bf16_round(1.0f), 1.0f);
  EXPECT_EQ(bf16_round(0.0f), 0.0f);
  // 1.00390625 = 1 + 2^-8 rounds to nearest-even bf16 (1.0).
  EXPECT_EQ(bf16_round(1.00390625f), 1.0f);
  // Values already representable survive exactly.
  EXPECT_EQ(bf16_round(1.5f), 1.5f);
  EXPECT_EQ(bf16_round(-2.25f), -2.25f);
}

TEST(Bf16, RelativeErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.next_gaussian(0.0, 10.0));
    const float r = bf16_round(v);
    if (v != 0.0f) {
      EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 128.0f) << v;
    }
  }
}

TEST(LossScaler, BacksOffOnOverflowGrowsAfterInterval) {
  DynamicLossScaler scaler(LossScalerOptions{.initial_scale = 8.0f,
                                             .growth_factor = 2.0f,
                                             .backoff_factor = 0.5f,
                                             .growth_interval = 2});
  EXPECT_FALSE(scaler.update(/*found_overflow=*/true));
  EXPECT_FLOAT_EQ(scaler.scale(), 4.0f);
  EXPECT_TRUE(scaler.update(false));
  EXPECT_FLOAT_EQ(scaler.scale(), 4.0f);
  EXPECT_TRUE(scaler.update(false));  // second good step -> grow
  EXPECT_FLOAT_EQ(scaler.scale(), 8.0f);
}

TEST(LossScaler, RespectsMinScale) {
  DynamicLossScaler scaler(
      LossScalerOptions{.initial_scale = 2.0f, .backoff_factor = 0.5f,
                        .min_scale = 1.0f});
  scaler.update(true);
  scaler.update(true);
  scaler.update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 1.0f);
}

TEST(MixedPrecision, DetectsOverflow) {
  Param p = make_param("w", {0.0f}, {std::numeric_limits<float>::infinity()});
  model::ParamRefs refs{&p};
  EXPECT_TRUE(grads_have_overflow(refs));
  p.grad.at({0}) = std::nanf("");
  EXPECT_TRUE(grads_have_overflow(refs));
  p.grad.at({0}) = 1e30f;
  EXPECT_FALSE(grads_have_overflow(refs));
}

TEST(MixedPrecision, SkipsStepOnOverflowAndBacksOff) {
  Param p = make_param("w", {1.0f}, {std::numeric_limits<float>::infinity()});
  auto inner = std::make_unique<Sgd>(model::ParamRefs{&p}, SgdOptions{.lr = 0.1f});
  MixedPrecisionOptimizer mixed(std::move(inner),
                                LossScalerOptions{.initial_scale = 4.0f});
  const float before = p.value.at({0});
  mixed.step();
  EXPECT_EQ(p.value.at({0}), before);  // skipped
  EXPECT_EQ(mixed.skipped_steps(), 1);
  EXPECT_FLOAT_EQ(mixed.scaler().scale(), 2.0f);
}

TEST(MixedPrecision, UnscalesGradsBeforeStepping) {
  // grad was scaled by 4; effective update must use grad/4.
  Param p = make_param("w", {1.0f}, {4.0f});
  auto inner = std::make_unique<Sgd>(model::ParamRefs{&p}, SgdOptions{.lr = 1.0f});
  MixedPrecisionOptimizer mixed(
      std::move(inner),
      LossScalerOptions{.initial_scale = 4.0f, .growth_interval = 1000});
  mixed.step();
  EXPECT_NEAR(p.value.at({0}), 0.0f, 1e-2f);  // 1 - 1*1 (bf16-rounded)
}

TEST(MixedPrecision, MasterWeightsRetainPrecisionAcrossSteps) {
  // Updates smaller than bf16 resolution must still accumulate in the
  // master copy — the reason fp32 masters exist.
  Param p = make_param("w", {256.0f}, {0.0f});
  auto inner = std::make_unique<Sgd>(model::ParamRefs{&p}, SgdOptions{.lr = 1.0f});
  MixedPrecisionOptimizer mixed(
      std::move(inner), LossScalerOptions{.initial_scale = 1.0f,
                                          .growth_interval = 1 << 30});
  // Each step subtracts 0.25 — representable in fp32 master, invisible at
  // bf16 granularity near 256 until accumulated.
  for (int i = 0; i < 8; ++i) {
    p.grad.fill(0.25f);
    mixed.step();
  }
  // Master accumulated 2.0 total; working copy reflects it after rounding.
  EXPECT_NEAR(p.value.at({0}), 254.0f, 1.0f);
}

TEST(MixedPrecision, StateIncludesMasters) {
  Param p = make_param("w", {1.0f}, {0.0f});
  auto inner = std::make_unique<Adam>(model::ParamRefs{&p}, AdamOptions{});
  MixedPrecisionOptimizer mixed(std::move(inner), LossScalerOptions{});
  auto state = mixed.state_tensors();
  ASSERT_EQ(state.size(), 4u);  // adam_m, adam_v, step_count, fp32_master
  EXPECT_EQ(state[3].first, "w.fp32_master");
}

}  // namespace
}  // namespace ptdp::optim
