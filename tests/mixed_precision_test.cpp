// The mixed-precision plane end to end (DESIGN.md §13): a per-dtype
// tolerance table applied to GEMM / attention / 2-step training-loss
// comparisons, bitwise determinism of bf16-input GEMMs across thread
// counts and pool reuse (the empty + beta=0 fast paths), the fp32
// master-weight optimizer on real bf16 storage, the bf16 grad-reduction
// wire mode, and the (p,t,d)=(2,2,2) engine with halved p2p boundary
// bytes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "ptdp/comm/grad_reducer.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/attention.hpp"
#include "ptdp/optim/mixed_precision.hpp"
#include "ptdp/optim/optimizer.hpp"
#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp {
namespace {

using model::GptConfig;
using tensor::DType;
using tensor::Tensor;

// ---- per-dtype tolerance table ----------------------------------------------
//
// f32 kernels are held to near-bitwise agreement with a naive reference
// (blocked accumulation reorders sums, nothing else). bf16 STORAGE only
// rounds the inputs — accumulation stays f32 — so a bf16 run is the exact
// f32 function of once-rounded operands: element-level comparisons against
// the full-precision run see one rounding step per operand, rtol ~ 2^-8
// (half-ulp 2^-9 per input, two inputs). Composite stacks (attention, the
// e2e loss) compound that per layer; their rows are correspondingly wider.
struct Tol {
  float rtol;
  float atol;
};

constexpr Tol kGemmTol[] = {
    /*kF32*/ {1e-5f, 1e-6f},
    /*kBf16*/ {1.0f / 256.0f, 1e-4f},
};
constexpr Tol kAttentionTol[] = {
    /*kF32*/ {1e-5f, 1e-6f},
    /*kBf16*/ {1.0f / 16.0f, 1e-2f},
};
// |loss_bf16 - loss_f32| bound for a 2-step run of the test-size model —
// the figure DESIGN.md §13 documents for bf16 training parity.
constexpr float kE2eLossTol = 0.05f;

Tol gemm_tol(DType d) { return kGemmTol[static_cast<int>(d)]; }
Tol attention_tol(DType d) { return kAttentionTol[static_cast<int>(d)]; }

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  auto pa = a.data();
  auto pb = b.data();
  auto pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t j = 0; j < n; ++j) {
        pc[static_cast<std::size_t>(i * n + j)] +=
            pa[static_cast<std::size_t>(i * k + p)] *
            pb[static_cast<std::size_t>(p * n + j)];
      }
    }
  }
  return c;
}

/// Restore the requested intra-op width when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(runtime::intra_op_threads()) {}
  ~ThreadGuard() { runtime::set_intra_op_threads(saved_); }

 private:
  std::size_t saved_;
};

bool same_bits(const Tensor& a, const Tensor& b) {
  const auto ba = a.raw_bytes();
  const auto bb = b.raw_bytes();
  return a.dtype() == b.dtype() && a.same_shape(b) &&
         std::memcmp(ba.data(), bb.data(), ba.size()) == 0;
}

// ---- GEMM dtype sweep -------------------------------------------------------

TEST(MixedPrecisionGemm, AllDtypeCombosMatchWidenedReference) {
  // Every (A dtype, B dtype) combo must equal the f32 kernel applied to the
  // widened operands within the f32 row of the table — bf16 operands are
  // rounded exactly once (at packing) and accumulated in f32, so the only
  // remaining divergence from the naive loop is blocked summation order.
  Rng rng(42);
  const std::int64_t m = 33, k = 47, n = 29;
  const Tensor a32 = Tensor::randn({m, k}, rng);
  const Tensor b32 = Tensor::randn({k, n}, rng);
  const Tol f32_tol = gemm_tol(DType::kF32);
  for (DType da : {DType::kF32, DType::kBf16}) {
    for (DType db : {DType::kF32, DType::kBf16}) {
      const Tensor a = a32.to(da);
      const Tensor b = b32.to(db);
      const Tensor c = tensor::matmul(a, b);
      EXPECT_EQ(c.dtype(), DType::kF32);
      const Tensor ref = naive_matmul(a.to(DType::kF32), b.to(DType::kF32));
      EXPECT_TRUE(tensor::allclose(c, ref, f32_tol.rtol, f32_tol.atol))
          << tensor::dtype_name(da) << "x" << tensor::dtype_name(db)
          << " gap " << tensor::max_abs_diff(c, ref);
      // And the bf16 row of the table bounds the gap to the full-precision
      // product — the number training actually experiences.
      const Tensor full = naive_matmul(a32, b32);
      const Tol tol = (da == DType::kBf16 || db == DType::kBf16)
                          ? gemm_tol(DType::kBf16)
                          : f32_tol;
      EXPECT_TRUE(tensor::allclose(c, full, tol.rtol, tol.atol * k))
          << tensor::dtype_name(da) << "x" << tensor::dtype_name(db)
          << " gap to f32 " << tensor::max_abs_diff(c, full);
    }
  }
  // The transposed variants take bf16 operands through the same packing.
  const Tensor bt = b32.transpose(0, 1).to(DType::kBf16);
  EXPECT_TRUE(tensor::allclose(
      tensor::matmul_nt(a32, bt),
      naive_matmul(a32, bt.to(DType::kF32).transpose(0, 1)), f32_tol.rtol,
      f32_tol.atol));
  const Tensor at = a32.transpose(0, 1).to(DType::kBf16);
  EXPECT_TRUE(tensor::allclose(
      tensor::matmul_tn(at, b32),
      naive_matmul(at.to(DType::kF32).transpose(0, 1), b32), f32_tol.rtol,
      f32_tol.atol));
}

TEST(MixedPrecisionGemm, Bf16BitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(7);
  const Tensor a = Tensor::randn({96, 64}, rng);
  const Tensor b = Tensor::randn({64, 48}, rng).to(DType::kBf16);
  const Tensor a16 = a.to(DType::kBf16);
  runtime::set_intra_op_threads(1);
  const Tensor c1 = tensor::matmul(a, b);
  const Tensor c1_full16 = tensor::matmul(a16, b);
  for (std::size_t threads : {2u, 4u}) {
    runtime::set_intra_op_threads(threads);
    EXPECT_TRUE(same_bits(tensor::matmul(a, b), c1)) << threads << " threads";
    EXPECT_TRUE(same_bits(tensor::matmul(a16, b), c1_full16))
        << threads << " threads";
  }
}

TEST(MixedPrecisionGemm, Beta0FastPathIgnoresStalePoolBytes) {
  // Regression for the satellite: matmul outputs come from Tensor::empty
  // and the first k-panel must OVERWRITE (beta=0), never accumulate into,
  // whatever the pool left behind — including NaN bits, which would poison
  // any read-modify-write.
  Rng rng(19);
  const Tensor a = Tensor::randn({31, 17}, rng);
  const Tensor b = Tensor::randn({17, 23}, rng).to(DType::kBf16);
  const Tensor clean = tensor::matmul(a, b);
  {
    Tensor junk = Tensor::empty({31 * 23 + 64});
    junk.fill(std::numeric_limits<float>::quiet_NaN());
  }  // back to the pool with NaN payloads
  const Tensor reused = tensor::matmul(a, b);
  EXPECT_TRUE(same_bits(reused, clean));
  for (float v : reused.data()) EXPECT_TRUE(std::isfinite(v));
}

// ---- attention under bf16 weights -------------------------------------------

TEST(MixedPrecisionAttention, ForwardMatchesF32WithinTableTolerance) {
  // Same seed → the bf16 attention's weights are exactly the rounded f32
  // weights; the forward gap is bounded by the attention row of the table.
  GptConfig c;
  c.num_layers = 1;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 8;
  c.dropout = 0.0f;
  c.seed = 321;
  dist::World world(1);
  world.run([&](dist::Comm& comm) {
    GptConfig c16 = c;
    c16.dtype = DType::kBf16;
    model::ParallelAttention attn32(c, /*global_layer_idx=*/0, comm);
    model::ParallelAttention attn16(c16, /*global_layer_idx=*/0, comm);
    Rng rng(5);
    const Tensor x = Tensor::randn({c.seq, 2, c.hidden}, rng);
    model::AttentionCache cache32, cache16;
    const Tensor y32 = attn32.forward(x, cache32, /*mb_tag=*/0);
    const Tensor y16 = attn16.forward(x, cache16, /*mb_tag=*/0);
    const Tol tol = attention_tol(DType::kBf16);
    EXPECT_TRUE(tensor::allclose(y16, y32, tol.rtol, tol.atol))
        << "gap " << tensor::max_abs_diff(y16, y32);
    // The backward produces f32 grads regardless of weight dtype.
    const Tensor dx16 = attn16.backward(y32, cache16);
    EXPECT_EQ(dx16.dtype(), DType::kF32);
  });
}

// ---- optimizer on real bf16 storage -----------------------------------------

TEST(MixedPrecisionOptim, MasterAccumulatesBelowBf16Resolution) {
  // A per-step update of 1e-4 is far below bf16's resolution at 1.0
  // (2^-8 ≈ 3.9e-3): without the fp32 master every step would round away
  // and the weight would never move. With it, the master drifts each step
  // and the bf16 working weight snaps down once the drift crosses half an
  // ulp.
  model::Param p;
  p.name = "w";
  p.value = Tensor::full({4}, 1.0f).to(DType::kBf16);
  p.grad = Tensor::full({4}, 1e-3f);
  optim::LossScalerOptions so;
  so.initial_scale = 1.0f;
  so.growth_interval = 1'000'000;  // keep the scale fixed for the test
  auto inner = std::make_unique<optim::Sgd>(model::ParamRefs{&p},
                                            optim::SgdOptions{.lr = 0.1f});
  optim::MixedPrecisionOptimizer opt(std::move(inner), so);

  opt.step();
  EXPECT_EQ(p.value.dtype(), DType::kBf16);
  EXPECT_EQ(p.value.to(DType::kF32).data()[0], 1.0f)
      << "one sub-ulp step must not move the bf16 working weight";
  for (int s = 1; s < 40; ++s) {
    p.grad.fill(1e-3f);  // Sgd consumed the grad; re-arm each step
    opt.step();
  }
  // Master: 1.0 - 40 * 1e-4 = 0.996, carried exactly in f32...
  auto state = opt.state_tensors();
  bool saw_master = false;
  for (auto& [name, t] : state) {
    if (name == "w.fp32_master") {
      saw_master = true;
      EXPECT_NEAR(t->data()[0], 0.996f, 1e-5f);
    }
  }
  EXPECT_TRUE(saw_master);
  // ...and the working weight followed it down to the nearest bf16.
  EXPECT_EQ(p.value.to(DType::kF32).data()[0], optim::bf16_round(0.996f));
  EXPECT_LT(p.value.to(DType::kF32).data()[0], 1.0f);
  EXPECT_EQ(opt.skipped_steps(), 0);
}

TEST(MixedPrecisionOptim, OverflowSkipsStepAndLeavesBf16ValueUntouched) {
  model::Param p;
  p.name = "w";
  p.value = Tensor::full({3}, 2.0f).to(DType::kBf16);
  p.grad = Tensor::full({3}, std::numeric_limits<float>::infinity());
  optim::LossScalerOptions so;
  so.initial_scale = 8.0f;
  auto inner = std::make_unique<optim::Sgd>(model::ParamRefs{&p},
                                            optim::SgdOptions{.lr = 0.1f});
  optim::MixedPrecisionOptimizer opt(std::move(inner), so);
  opt.step();
  EXPECT_EQ(opt.skipped_steps(), 1);
  EXPECT_EQ(opt.scaler().scale(), 4.0f);  // backed off
  EXPECT_EQ(p.value.dtype(), DType::kBf16);
  EXPECT_EQ(p.value.to(DType::kF32).data()[0], 2.0f);
}

// ---- bf16 grad-reduction wire mode ------------------------------------------

TEST(MixedPrecisionComm, GradReducerBf16ModeIsDeterministicFixedOrderMean) {
  constexpr int d = 2;
  constexpr std::int64_t n = 37;
  std::vector<std::vector<float>> results(d);
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    model::Param p;
    p.name = "w";
    p.value = Tensor::zeros({n});
    p.grad = Tensor::empty({n});
    for (std::int64_t j = 0; j < n; ++j) {
      // Values with sub-bf16 detail, distinct per rank.
      p.grad.data()[static_cast<std::size_t>(j)] =
          0.1f * static_cast<float>(j + 1) + 0.003f * static_cast<float>(comm.rank());
    }
    comm::GradReducerOptions opts;
    opts.overlap = false;
    opts.comm_dtype = DType::kBf16;
    comm::GradReducer reducer({model::ParamRefs{&p}}, comm, opts);
    reducer.finish();
    auto g = p.grad.data();
    results[static_cast<std::size_t>(comm.rank())].assign(g.begin(), g.end());
  });
  // Expected: each rank's contribution rounded to bf16 on the wire, then
  // summed in fixed rank order in f32 and averaged — identical everywhere.
  for (std::int64_t j = 0; j < n; ++j) {
    float acc = 0.0f;
    for (int r = 0; r < d; ++r) {
      acc += optim::bf16_round(0.1f * static_cast<float>(j + 1) +
                               0.003f * static_cast<float>(r));
    }
    const float expect = acc * (1.0f / static_cast<float>(d));
    for (int r = 0; r < d; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)],
                expect)
          << "rank " << r << " elem " << j;
    }
  }
}

// ---- end-to-end engine ------------------------------------------------------

GptConfig engine_config(std::int64_t layers) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 6;
  c.dropout = 0.0f;
  c.seed = 2024;
  return c;
}

struct DataSetup {
  data::SyntheticCorpus corpus;
  data::TokenDataset dataset;
  DataSetup(const GptConfig& c)
      : corpus(c.vocab, 55), dataset(corpus.generate(4000), c.seq) {}
};

// Serial loss trajectory at the given storage dtype (same data order).
std::vector<float> serial_losses(GptConfig c, DType dtype, int steps) {
  c.dtype = dtype;
  DataSetup ds(c);
  std::vector<float> losses;
  dist::World world(1);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel = core::ParallelConfig{};
    options.parallel.b = 2;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, 4, 2, 1, 0, /*seed=*/88);
    for (int s = 0; s < steps; ++s) {
      losses.push_back(engine.train_step(loader.next_batch(s)));
    }
    // Mixed precision was forced on for bf16, with the scaler live.
    if (dtype == DType::kBf16) {
      EXPECT_GE(engine.last_stats().loss_scale, 1.0f);
      EXPECT_EQ(engine.last_stats().overflow_steps, 0);
    }
  });
  return losses;
}

TEST(MixedPrecisionEngine, TwoStepLossMatchesF32WithinDocumentedTolerance) {
  const GptConfig c = engine_config(2);
  const auto f32 = serial_losses(c, DType::kF32, 2);
  const auto bf16 = serial_losses(c, DType::kBf16, 2);
  ASSERT_EQ(f32.size(), bf16.size());
  for (std::size_t s = 0; s < f32.size(); ++s) {
    EXPECT_NEAR(bf16[s], f32[s], kE2eLossTol) << "step " << s;
    EXPECT_TRUE(std::isfinite(bf16[s]));
  }
}

TEST(MixedPrecisionEngine, Bf16RunToRunLossesAreBitwiseIdentical) {
  const GptConfig c = engine_config(2);
  const auto run1 = serial_losses(c, DType::kBf16, 2);
  const auto run2 = serial_losses(c, DType::kBf16, 2);
  ASSERT_EQ(run1.size(), run2.size());
  for (std::size_t s = 0; s < run1.size(); ++s) {
    EXPECT_EQ(run1[s], run2[s]) << "step " << s;  // exact, not NEAR
  }
}

// One (2,2,2) step at the given model/wire dtypes; returns world-summed
// pipeline boundary traffic and checks the loss is sane on every rank.
struct P2pTraffic {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

P2pTraffic run_222(const GptConfig& base, DType dtype, DType grad_comm) {
  constexpr int p = 2, t = 2, d = 2;
  GptConfig c = base;
  c.dtype = dtype;
  DataSetup ds(c);
  std::vector<std::uint64_t> bytes(p * t * d, 0);
  std::vector<std::uint64_t> messages(p * t * d, 0);
  dist::World world(p * t * d);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = p;
    options.parallel.t = t;
    options.parallel.d = d;
    options.parallel.b = 1;
    options.parallel.recompute = false;
    options.global_batch = 4;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    options.grad_comm_dtype = grad_comm;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(ds.dataset, 4, 1, d,
                               engine.groups().coord().data, /*seed=*/88);
    const float loss = engine.train_step(loader.next_batch(0));
    EXPECT_TRUE(std::isfinite(loss)) << "rank " << comm.rank();
    bytes[static_cast<std::size_t>(comm.rank())] =
        engine.executor().comm_stats().p2p_bytes_sent;
    messages[static_cast<std::size_t>(comm.rank())] =
        engine.executor().comm_stats().p2p_messages;
  });
  P2pTraffic out;
  for (auto b : bytes) out.bytes += b;
  for (auto m : messages) out.messages += m;
  return out;
}

TEST(MixedPrecisionEngine, Bf16BoundariesHalveP2pBytesAt222) {
  const GptConfig c = engine_config(2);
  const P2pTraffic f32 = run_222(c, DType::kF32, DType::kF32);
  const P2pTraffic bf16 = run_222(c, DType::kBf16, DType::kBf16);
  ASSERT_GT(f32.bytes, 0u);
  // Same schedule → same message count; bf16 boundaries carry exactly half
  // the bytes of the same activations in f32.
  EXPECT_EQ(bf16.messages, f32.messages);
  EXPECT_EQ(bf16.bytes * 2, f32.bytes);
}

}  // namespace
}  // namespace ptdp
