// Corruption matrix for the committed-checkpoint protocol: every way a
// checkpoint can be damaged — truncated header, truncated payload, flipped
// byte, stale LATEST pointing at a gone step — must be detected by
// find_latest_valid_checkpoint and skipped in favor of the newest commit
// that is actually whole. Plus the atomicity half: a simulated crash at
// every phase of an atomic write leaves the previous file intact.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/ft/supervisor.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::ckpt {
namespace {

using tensor::Tensor;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ptdp_manifest_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    Rng rng(7);
    a_ = Tensor::randn({16}, rng);
    b_ = Tensor::randn({8}, rng);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Commits a 2-shard checkpoint at `step` and returns its manifest.
  Manifest commit(std::uint64_t step) {
    const std::string sdir = step_dir(dir_.string(), step);
    std::filesystem::create_directories(sdir);
    Manifest m{step, 0, {}};
    for (int t = 0; t < 2; ++t) {
      const std::string path = shard_path(sdir, 0, t, 0);
      const auto res = save_checkpoint(
          path, {{"a", &a_}, {"b", &b_}}, CheckpointMeta{step, 0});
      m.shards.push_back(ManifestEntry{
          std::filesystem::path(path).lexically_relative(dir_).string(),
          static_cast<std::uint64_t>(res.bytes), res.crc});
    }
    write_manifest(dir_.string(), m);
    return m;
  }

  std::string shard_file(std::uint64_t step, int t) {
    return shard_path(step_dir(dir_.string(), step), 0, t, 0);
  }

  static void truncate_to(const std::string& path, std::uintmax_t size) {
    std::filesystem::resize_file(path, size);
  }

  static void flip_byte_at(const std::string& path, std::uintmax_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
  }

  std::filesystem::path dir_;
  Tensor a_, b_;
};

TEST_F(ManifestTest, RoundTripAndLatestResolution) {
  commit(3);
  const Manifest m5 = commit(5);
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 5u);
  EXPECT_EQ(best->shard_dir, step_dir(dir_.string(), 5));
  EXPECT_EQ(best->manifest.shards.size(), m5.shards.size());
  // The committed shards actually load.
  Tensor a({16}), b({8});
  const auto meta = load_checkpoint(shard_file(5, 0), {{"a", &a}, {"b", &b}});
  EXPECT_EQ(meta.step, 5u);
}

TEST_F(ManifestTest, JsonRejectsMalformedInput) {
  EXPECT_FALSE(parse_manifest_json("").has_value());
  EXPECT_FALSE(parse_manifest_json("{").has_value());
  EXPECT_FALSE(parse_manifest_json("{\"step\": 1}").has_value());
  // An empty shard list is never a valid commit.
  EXPECT_FALSE(
      parse_manifest_json("{\"step\": 1, \"extra\": 0, \"shards\": []}")
          .has_value());
  const Manifest m{4, 9, {{"step-4/shard-p0-t0-d0.ckpt", 123, 456}}};
  const auto back = parse_manifest_json(manifest_to_json(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->step, 4u);
  EXPECT_EQ(back->extra, 9u);
  ASSERT_EQ(back->shards.size(), 1u);
  EXPECT_EQ(back->shards[0].file, "step-4/shard-p0-t0-d0.ckpt");
  EXPECT_EQ(back->shards[0].bytes, 123u);
  EXPECT_EQ(back->shards[0].crc, 456u);
}

// ---- the corruption matrix -------------------------------------------------
// Each case damages the newest (step 6) checkpoint a different way; recovery
// must fall back to the previous committed step 4 every time.

TEST_F(ManifestTest, TruncatedHeaderFallsBack) {
  commit(4);
  commit(6);
  truncate_to(shard_file(6, 1), 3);  // not even a whole magic number
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 4u);
}

TEST_F(ManifestTest, TruncatedPayloadFallsBack) {
  commit(4);
  const Manifest m = commit(6);
  truncate_to(shard_file(6, 0), m.shards[0].bytes - 7);
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 4u);
}

TEST_F(ManifestTest, FlippedByteFallsBack) {
  commit(4);
  const Manifest m = commit(6);
  // Size unchanged — only the whole-file CRC can catch this.
  flip_byte_at(shard_file(6, 1), m.shards[1].bytes / 2);
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 4u);
}

TEST_F(ManifestTest, MissingShardFallsBack) {
  commit(4);
  commit(6);
  std::filesystem::remove(shard_file(6, 0));
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 4u);
}

TEST_F(ManifestTest, StaleLatestMarkerIsIgnored) {
  commit(4);
  commit(6);
  // LATEST names a manifest whose step dir is gone (e.g. external cleanup
  // raced the marker update) — the scan must still find step 6.
  write_file_atomic(dir_.string() + "/LATEST", "manifest-99.json\n");
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 6u);
  // A LATEST pointing at an *older valid* manifest must not shadow step 6.
  write_file_atomic(dir_.string() + "/LATEST", "manifest-4.json\n");
  EXPECT_EQ(find_latest_valid_checkpoint(dir_.string())->step(), 6u);
  // Garbage LATEST degrades to the scan too.
  write_file_atomic(dir_.string() + "/LATEST", "not-a-manifest\n");
  EXPECT_EQ(find_latest_valid_checkpoint(dir_.string())->step(), 6u);
}

TEST_F(ManifestTest, CorruptManifestJsonFallsBack) {
  commit(4);
  commit(6);
  truncate_to(dir_.string() + "/manifest-6.json", 10);
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 4u);
}

TEST_F(ManifestTest, MalformedManifestCorpusNeverAbortsTheScan) {
  // A whole zoo of damaged manifest-<N>.json files newer than the one
  // survivor. The scan must skip every one of them — never throw out of
  // find_latest_valid_checkpoint — and land on the valid step-2 commit.
  commit(2);
  const auto drop = [&](const std::string& name, const std::string& bytes) {
    std::ofstream os(dir_.string() + "/" + name, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  drop("manifest-3.json", "");                                    // empty file
  drop("manifest-4.json", "{\"step\": 4, \"shards\": [");         // truncated
  drop("manifest-5.json", std::string("\x00\xff\xfe\x01garbage\x7f", 12));
  drop("manifest-6.json", "{\"step\": \"six\", \"shards\": []}"); // bad number
  drop("manifest-7.json", "[1, 2, 3]");                           // wrong shape
  drop("manifest-8.json",
       "{\"step\": 99999999999999999999999999999999, \"shards\": []}");
  // Parseable JSON whose named shard doesn't exist / claims absurd size:
  // parse succeeds, validation fails, scan keeps going.
  drop("manifest-9.json",
       manifest_to_json(Manifest{
           9, 0, {ManifestEntry{"step-9/shard-p0-t0-d0.ckpt",
                                std::uint64_t{1} << 40, 0xdeadbeef}}}));
  // A huge step in the *filename* must not derail the ordering scan either.
  drop("manifest-99999999999999999999.json", "{}");

  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 2u);

  // Even with LATEST pointing into the corpus, the fallback scan recovers.
  write_file_atomic(dir_.string() + "/LATEST", "manifest-5.json\n");
  const auto again = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->step(), 2u);
}

TEST_F(ManifestTest, NoValidCheckpointReturnsNullopt) {
  EXPECT_FALSE(find_latest_valid_checkpoint(dir_.string()).has_value());
  EXPECT_FALSE(find_latest_valid_checkpoint("/nonexistent/dir").has_value());
  commit(2);
  std::filesystem::remove_all(step_dir(dir_.string(), 2));
  EXPECT_FALSE(find_latest_valid_checkpoint(dir_.string()).has_value());
}

TEST_F(ManifestTest, GcKeepsNewestTwo) {
  commit(1);
  commit(2);
  commit(3);
  gc_checkpoints(dir_.string(), 2);
  EXPECT_FALSE(std::filesystem::exists(dir_.string() + "/manifest-1.json"));
  EXPECT_FALSE(std::filesystem::exists(step_dir(dir_.string(), 1)));
  EXPECT_TRUE(std::filesystem::exists(dir_.string() + "/manifest-2.json"));
  EXPECT_TRUE(std::filesystem::exists(step_dir(dir_.string(), 3)));
  EXPECT_EQ(find_latest_valid_checkpoint(dir_.string())->step(), 3u);
}

// ---- atomic-save kill matrix -----------------------------------------------
// A simulated crash at every write phase must leave the previously published
// file untouched (pre-rename phases) or the new file complete (post-rename).

TEST_F(ManifestTest, KillAtEveryWritePhaseNeverTearsTheFile) {
  const std::string path = (dir_ / "victim.ckpt").string();
  const auto good = save_checkpoint(path, {{"a", &a_}}, CheckpointMeta{1, 0});
  ASSERT_EQ(file_crc32(path), good.crc);

  Rng rng(11);
  Tensor changed = Tensor::randn({16}, rng);
  for (const WritePhase kill_at :
       {WritePhase::kHeaderWritten, WritePhase::kPayloadWritten,
        WritePhase::kBeforeFsync, WritePhase::kBeforeRename,
        WritePhase::kAfterRename}) {
    set_write_hook([kill_at](const std::string&, const std::string&,
                             WritePhase phase) {
      if (phase == kill_at) throw std::runtime_error("injected crash");
    });
    EXPECT_THROW(
        save_checkpoint(path, {{"a", &changed}}, CheckpointMeta{2, 0}),
        std::runtime_error);
    set_write_hook({});
    if (phase_is_pre_rename(kill_at)) {
      // Old content still published, new attempt invisible.
      EXPECT_EQ(file_crc32(path), good.crc) << static_cast<int>(kill_at);
      EXPECT_EQ(peek_checkpoint(path).step, 1u);
    } else {
      // Crash after the rename: the new file is complete and loadable.
      EXPECT_EQ(peek_checkpoint(path).step, 2u);
      Tensor back({16});
      load_checkpoint(path, {{"a", &back}});
      // Restore the original for the next loop iteration (none follows, but
      // keep the invariant explicit).
      save_checkpoint(path, {{"a", &a_}}, CheckpointMeta{1, 0});
    }
    // No temp litter.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  }
}

// ---- kill-during-commit matrix (acceptance) --------------------------------
// Kill the writer at every kCkptWrite injection site during a full commit of
// step 8 (two shards + manifest + LATEST, via the real FaultPlan bridge).
// Whatever phase dies, find_latest_valid_checkpoint returns the previous
// committed step 6 — or a fully valid step 8 if the kill landed after the
// commit became complete.

TEST_F(ManifestTest, KillDuringCommitAtEverySiteLeavesCommittedState) {
  commit(6);
  const auto baseline = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(baseline.has_value());
  ASSERT_EQ(baseline->step(), 6u);

  // Count the write phases in one full commit to know the site count.
  dist::FaultPlan probe;
  {
    ft::ScopedCkptFaultHook bridge(&probe, /*rank=*/0);
    probe.begin_run();
    commit(7);
  }
  const std::uint64_t sites = probe.count(0, dist::FaultSite::kCkptWrite);
  ASSERT_GT(sites, 0u);

  for (std::uint64_t nth = 1; nth <= sites; ++nth) {
    // Fresh dir state per iteration: only step 6 committed.
    for (std::uint64_t s : {std::uint64_t{7}, std::uint64_t{8}}) {
      std::error_code ec;
      std::filesystem::remove(dir_ / ("manifest-" + std::to_string(s) + ".json"), ec);
      std::filesystem::remove_all(step_dir(dir_.string(), s), ec);
    }
    write_file_atomic(dir_.string() + "/LATEST", "manifest-6.json\n");

    dist::FaultPlan plan;
    plan.kill(0, dist::FaultSite::kCkptWrite, nth);
    plan.begin_run();
    {
      ft::ScopedCkptFaultHook bridge(&plan, /*rank=*/0);
      EXPECT_THROW(commit(8), dist::InjectedFault) << "site " << nth;
    }

    const auto best = find_latest_valid_checkpoint(dir_.string());
    ASSERT_TRUE(best.has_value()) << "site " << nth;
    if (best->step() == 8u) {
      // Kill landed after the commit completed; it must be fully valid.
      EXPECT_TRUE(validate_manifest(dir_.string(), best->manifest));
    } else {
      EXPECT_EQ(best->step(), 6u) << "site " << nth;
      EXPECT_TRUE(validate_manifest(dir_.string(), best->manifest));
    }
  }
}

TEST_F(ManifestTest, CorruptFaultDuringCommitIsDetected) {
  commit(6);
  // Flip a byte in the shard temp file mid-write (pre-rename): the manifest
  // CRC comes from the intended byte stream, so validation must reject the
  // new checkpoint and fall back.
  dist::FaultPlan plan;
  plan.corrupt_ckpt(/*rank=*/0, /*nth=*/2);  // kPayloadWritten of shard 0
  plan.begin_run();
  {
    ft::ScopedCkptFaultHook bridge(&plan, /*rank=*/0);
    commit(9);  // corruption is silent — the commit "succeeds"
  }
  ASSERT_EQ(plan.history().size(), 1u);
  const auto best = find_latest_valid_checkpoint(dir_.string());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->step(), 6u);
}

}  // namespace
}  // namespace ptdp::ckpt
