// Functional pipeline tests: for every schedule and pipeline depth, running
// a batch through the PipelineExecutor produces the same loss and the same
// parameter gradients as the serial model on the same batch — the "strict
// optimizer semantics" the paper's flushes guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "ptdp/dist/process_groups.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/graph/ir.hpp"
#include "ptdp/pipeline/executor.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::pipeline {
namespace {

using model::GptConfig;
using model::GptStage;
using model::Microbatch;
using model::Param;
using model::StageCache;
using model::StageSpec;
using tensor::Tensor;

GptConfig tiny_config(std::int64_t layers = 4) {
  GptConfig c;
  c.num_layers = layers;
  c.hidden = 16;
  c.heads = 4;
  c.vocab = 32;
  c.seq = 5;
  c.dropout = 0.0f;
  c.seed = 321;
  return c;
}

std::vector<Microbatch> make_microbatches(const GptConfig& c, int m, std::int64_t b) {
  std::vector<Microbatch> mbs;
  for (int i = 0; i < m; ++i) {
    Microbatch mb;
    mb.s = c.seq;
    mb.b = b;
    mb.tag = static_cast<std::uint64_t>(i + 1);
    Rng rng(c.seed, substream(555, static_cast<std::uint64_t>(i)));
    mb.tokens.resize(static_cast<std::size_t>(mb.s * b));
    mb.targets.resize(static_cast<std::size_t>(mb.s * b));
    for (auto& t : mb.tokens) {
      t = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(c.vocab)));
    }
    for (auto& t : mb.targets) {
      t = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(c.vocab)));
    }
    mbs.push_back(std::move(mb));
  }
  return mbs;
}

// Serial reference: the full model processes the same microbatches with the
// same 1/m loss scaling.
struct Reference {
  float loss;
  std::map<std::string, Tensor> grads;
};

Reference serial_reference(const GptConfig& c, const std::vector<Microbatch>& mbs) {
  dist::Comm solo = dist::Comm::solo();
  GptStage full(c, solo, StageSpec{true, true, 0, c.num_layers, false});
  full.zero_grads();
  const float scale = 1.0f / static_cast<float>(mbs.size());
  double loss_sum = 0.0;
  for (const Microbatch& mb : mbs) {
    StageCache cache;
    loss_sum += full.forward(Tensor(), mb, cache).loss;
    full.backward(Tensor(), scale, cache, mb);
  }
  Reference ref;
  ref.loss = static_cast<float>(loss_sum) * scale;
  for (Param* p : full.params()) ref.grads.emplace(p->name, p->grad.clone());
  return ref;
}

// Builds the v chunks a pipeline rank owns for a given (p, v) layout.
std::vector<std::unique_ptr<GptStage>> build_chunks(const GptConfig& c,
                                                    const dist::Comm& tp, int p,
                                                    int rank, int v, bool recompute) {
  const std::int64_t per_stage = c.num_layers / (p * v);
  std::vector<std::unique_ptr<GptStage>> chunks;
  for (int chunk = 0; chunk < v; ++chunk) {
    const int vs = virtual_stage(rank, chunk, p);
    StageSpec spec;
    spec.has_embedding = vs == 0;
    spec.has_head = vs == p * v - 1;
    spec.layer_begin = vs * per_stage;
    spec.layer_end = (vs + 1) * per_stage;
    spec.recompute = recompute;
    chunks.push_back(std::make_unique<GptStage>(c, tp, spec));
  }
  return chunks;
}

using Case = std::tuple<ScheduleType, int, int, int>;  // (schedule, p, m, v)

class PipelineEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineEquivalenceTest, LossAndGradsMatchSerial) {
  const auto [type, p, m, v] = GetParam();
  GptConfig c = tiny_config(/*layers=*/static_cast<std::int64_t>(p * v));
  auto mbs = make_microbatches(c, m, /*b=*/2);
  Reference ref = serial_reference(c, mbs);

  dist::World world(p);
  world.run([&](dist::Comm& comm) {
    dist::Comm tp = dist::Comm::solo();
    auto chunks = build_chunks(c, tp, p, comm.rank(), v, /*recompute=*/false);
    std::vector<GptStage*> raw;
    for (auto& ch : chunks) {
      ch->zero_grads();
      raw.push_back(ch.get());
    }
    PipelineExecutor exec(raw, comm, ScheduleParams{type, p, m, v});
    const float loss = exec.run_batch(mbs);
    if (comm.rank() == p - 1) {
      EXPECT_NEAR(loss, ref.loss, 1e-4f);
    }
    // Tied embedding: sum the first/last stage copies before comparing.
    Tensor word_grad;
    for (auto& ch : chunks) {
      if (Param* w = ch->word_embedding_param()) {
        if (!word_grad.defined()) {
          word_grad = w->grad.clone();
        } else {
          tensor::add_(word_grad, w->grad);
        }
      }
    }
    for (auto& ch : chunks) {
      for (Param* param : ch->params()) {
        const auto it = ref.grads.find(param->name);
        ASSERT_NE(it, ref.grads.end()) << param->name;
        if (param->name == "embedding.word") continue;  // handled below
        EXPECT_TRUE(tensor::allclose(param->grad, it->second, 2e-3f, 1e-4f))
            << param->name << " on rank " << comm.rank();
      }
    }
    if (word_grad.defined()) {
      // A rank holding both ends (p==1) accumulates into one tensor; a rank
      // holding one end holds half the tied grad. The embedding-group
      // all-reduce (engine level) sums them; emulate by comparing the sum
      // across this rank's chunks only when the rank holds both ends,
      // otherwise just check it is a *component* consistent with serial.
      const Tensor& serial = ref.grads.at("embedding.word");
      if (p == 1) {
        EXPECT_TRUE(tensor::allclose(word_grad, serial, 2e-3f, 1e-4f));
      } else {
        // Component check: |component| <= |serial| elementwise is not
        // guaranteed; instead verify via the two-rank sum on rank 0 by
        // receiving the partner's grad.
        const int partner = comm.rank() == 0 ? p - 1 : 0;
        if (comm.rank() == 0 || comm.rank() == p - 1) {
          comm.send(std::span<const float>(word_grad.data()), partner,
                    /*tag=*/9001);
          Tensor other(word_grad.shape());
          comm.recv(other.data(), partner, /*tag=*/9001);
          tensor::add_(word_grad, other);
          EXPECT_TRUE(tensor::allclose(word_grad, serial, 2e-3f, 1e-4f));
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, PipelineEquivalenceTest,
    ::testing::Values(
        Case{ScheduleType::kOneFOneB, 1, 1, 1}, Case{ScheduleType::kOneFOneB, 1, 4, 1},
        Case{ScheduleType::kGPipe, 2, 4, 1}, Case{ScheduleType::kOneFOneB, 2, 4, 1},
        Case{ScheduleType::kOneFOneB, 2, 2, 1}, Case{ScheduleType::kGPipe, 4, 4, 1},
        Case{ScheduleType::kOneFOneB, 4, 8, 1},
        Case{ScheduleType::kInterleaved, 2, 4, 2},
        Case{ScheduleType::kInterleaved, 2, 2, 2},
        Case{ScheduleType::kInterleaved, 4, 8, 2}));

// ---- §4.1 scatter/gather + pre-posted receives ----------------------------
//
// For every (schedule, p, t) grid, run the same batch through three
// communication-plane modes — full-tensor sends, scatter/gather strips, and
// scatter/gather without receive pre-posting — and require (a) the loss
// matches the serial reference and (b) losses and gradients are *bitwise*
// identical across the modes: the strip all-gather reconstructs the exact
// bytes a full send would have delivered, and pre-posting only moves when a
// receive is posted, never what arrives. Also checks the measured
// inter-stage p2p byte reduction is exactly 1/t.

using SgCase = std::tuple<ScheduleType, int, int, int, int>;  // (schedule, p, t, m, v)

class ScatterGatherEquivalenceTest : public ::testing::TestWithParam<SgCase> {};

TEST_P(ScatterGatherEquivalenceTest, BitwiseIdenticalAcrossCommModes) {
  const auto [type, p, t, m, v] = GetParam();
  GptConfig c = tiny_config(/*layers=*/static_cast<std::int64_t>(p * v));
  auto mbs = make_microbatches(c, m, /*b=*/2);
  Reference ref = serial_reference(c, mbs);

  struct ModeResult {
    std::map<std::string, Tensor> grads;  // "rank<r>/<param>" -> grad
    std::map<int, float> losses;          // last-stage world rank -> loss
    std::uint64_t p2p_bytes = 0;
  };
  const std::vector<ExecutorOptions> modes = {
      {/*scatter_gather=*/false, /*prepost_recv=*/true},
      {/*scatter_gather=*/true, /*prepost_recv=*/true},
      {/*scatter_gather=*/true, /*prepost_recv=*/false},
  };
  std::vector<ModeResult> results(modes.size());

  for (std::size_t mode = 0; mode < modes.size(); ++mode) {
    ModeResult& out = results[mode];
    std::mutex mu;
    dist::World world(p * t);
    world.run([&](dist::Comm& comm) {
      dist::ProcessGroups groups(comm, p, t, /*d=*/1);
      const int rank = groups.coord().pipeline;
      auto chunks = build_chunks(c, groups.tensor(), p, rank, v, /*recompute=*/false);
      std::vector<GptStage*> raw;
      for (auto& ch : chunks) {
        ch->zero_grads();
        raw.push_back(ch.get());
      }
      PipelineExecutor exec(raw, groups.pipeline(), groups.tensor(),
                            ScheduleParams{type, p, m, v}, modes[mode]);
      const float loss = exec.run_batch(mbs);
      std::lock_guard lock(mu);
      if (rank == p - 1) {
        EXPECT_NEAR(loss, ref.loss, 2e-4f);
        out.losses.emplace(comm.rank(), loss);
      }
      out.p2p_bytes += exec.comm_stats().p2p_bytes_sent;
      for (auto& ch : chunks) {
        for (Param* param : ch->params()) {
          out.grads.emplace("rank" + std::to_string(comm.rank()) + "/" + param->name,
                            param->grad.clone());
        }
      }
    });
  }

  for (std::size_t mode = 1; mode < results.size(); ++mode) {
    ASSERT_EQ(results[mode].grads.size(), results[0].grads.size());
    for (auto& [name, grad] : results[mode].grads) {
      ASSERT_TRUE(results[0].grads.contains(name)) << name;
      EXPECT_EQ(tensor::max_abs_diff(grad, results[0].grads.at(name)), 0.0f)
          << name << " differs in comm mode " << mode;
    }
    ASSERT_EQ(results[mode].losses.size(), results[0].losses.size());
    for (auto& [rank, loss] : results[mode].losses) {
      EXPECT_EQ(loss, results[0].losses.at(rank)) << "loss on rank " << rank;
    }
  }

  // §4.1's claim, measured: per-rank inter-stage volume drops bsh -> bsh/t.
  if (p > 1) {
    ASSERT_GT(results[0].p2p_bytes, 0u);
    EXPECT_EQ(results[1].p2p_bytes * static_cast<std::uint64_t>(t),
              results[0].p2p_bytes);
    EXPECT_EQ(results[2].p2p_bytes, results[1].p2p_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CommModes, ScatterGatherEquivalenceTest,
    ::testing::Values(SgCase{ScheduleType::kOneFOneB, 2, 2, 4, 1},
                      SgCase{ScheduleType::kGPipe, 2, 2, 2, 1},
                      SgCase{ScheduleType::kOneFOneB, 2, 4, 4, 1},
                      SgCase{ScheduleType::kOneFOneB, 4, 2, 4, 1},
                      SgCase{ScheduleType::kInterleaved, 2, 2, 4, 2}));

TEST(PipelineExecutor, ChunkBackwardHookFiresOncePerChunkAfterLastBackward) {
  const int p = 2, m = 4, v = 2;
  GptConfig c = tiny_config(/*layers=*/p * v);
  auto mbs = make_microbatches(c, m, /*b=*/2);
  dist::World world(p);
  world.run([&](dist::Comm& comm) {
    dist::Comm tp = dist::Comm::solo();
    auto chunks = build_chunks(c, tp, p, comm.rank(), v, /*recompute=*/false);
    std::vector<GptStage*> raw;
    for (auto& ch : chunks) {
      ch->zero_grads();
      raw.push_back(ch.get());
    }
    PipelineExecutor exec(raw, comm, ScheduleParams{ScheduleType::kInterleaved, p, m, v});
    std::vector<int> fired;
    exec.set_chunk_backward_hook([&](int chunk) {
      fired.push_back(chunk);
      // At hook time the chunk's grads must be final: nothing may still be
      // zero-only if the batch produced gradient signal (checked cheaply by
      // non-empty grads; exact finality is covered by the reducer tests).
      for (Param* param : raw[static_cast<std::size_t>(chunk)]->params()) {
        EXPECT_GT(param->grad.numel(), 0);
      }
    });
    exec.run_batch(mbs);
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(v));  // once per chunk
    std::vector<int> sorted = fired;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1}));
    // Higher virtual stages finish their backwards first.
    EXPECT_EQ(fired.front(), v - 1);
    EXPECT_EQ(fired.back(), 0);
  });
}

TEST(PipelineExecutor, RecomputeMatchesStashedAcrossPipeline) {
  const int p = 2, m = 4, v = 1;
  GptConfig c = tiny_config(/*layers=*/2);
  c.dropout = 0.1f;  // recompute must replay dropout masks
  auto mbs = make_microbatches(c, m, /*b=*/2);

  // Run twice — with and without recompute — and compare grads exactly.
  std::map<std::string, Tensor> with, without;
  for (bool recompute : {false, true}) {
    dist::World world(p);
    auto& sink = recompute ? with : without;
    std::mutex mu;
    world.run([&](dist::Comm& comm) {
      dist::Comm tp = dist::Comm::solo();
      auto chunks = build_chunks(c, tp, p, comm.rank(), v, recompute);
      std::vector<GptStage*> raw;
      for (auto& ch : chunks) {
        ch->zero_grads();
        raw.push_back(ch.get());
      }
      PipelineExecutor exec(raw, comm, {ScheduleType::kOneFOneB, p, m, v});
      exec.run_batch(mbs);
      std::lock_guard lock(mu);
      for (auto& ch : chunks) {
        for (Param* param : ch->params()) {
          // Key by rank too: "embedding.word" exists on both the first
          // stage (embedding) and last stage (tied head copy).
          sink.emplace("rank" + std::to_string(comm.rank()) + "/" + param->name,
                       param->grad.clone());
        }
      }
    });
  }
  ASSERT_EQ(with.size(), without.size());
  for (auto& [name, grad] : with) {
    ASSERT_TRUE(without.contains(name)) << name;
    EXPECT_EQ(tensor::max_abs_diff(grad, without.at(name)), 0.0f) << name;
  }
}

// ---- §14 planned execution across the pipeline ----------------------------
//
// Graph mode must be a pure execution-strategy change: for every
// (scatter_gather × prepost_recv × dtype) combination, a full pipelined batch
// with recompute and dropout produces bitwise-identical losses and gradients
// with PTDP_GRAPH on and off.

using GraphCase = std::tuple<bool, bool, tensor::DType>;  // (sg, prepost, dtype)

class GraphEagerEquivalenceTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GraphEagerEquivalenceTest, BitwiseIdenticalToEagerAcrossPipeline) {
  const auto [sg, prepost, dtype] = GetParam();
  const int p = 2, t = 2, m = 4, v = 1;
  GptConfig c = tiny_config(/*layers=*/2);
  c.dropout = 0.1f;  // exercise the dropout topology + recompute replay
  c.dtype = dtype;
  auto mbs = make_microbatches(c, m, /*b=*/2);

  struct ModeResult {
    std::map<std::string, Tensor> grads;
    std::map<int, float> losses;
  };
  std::vector<ModeResult> results(2);
  for (const bool use_graph : {true, false}) {
    const bool prev = graph::set_enabled(use_graph);
    ModeResult& out = results[use_graph ? 0 : 1];
    std::mutex mu;
    dist::World world(p * t);
    world.run([&](dist::Comm& comm) {
      dist::ProcessGroups groups(comm, p, t, /*d=*/1);
      const int rank = groups.coord().pipeline;
      auto chunks = build_chunks(c, groups.tensor(), p, rank, v, /*recompute=*/true);
      std::vector<GptStage*> raw;
      for (auto& ch : chunks) {
        ch->zero_grads();
        raw.push_back(ch.get());
      }
      ExecutorOptions opts{/*scatter_gather=*/sg, /*prepost_recv=*/prepost};
      opts.boundary_dtype = dtype;
      PipelineExecutor exec(raw, groups.pipeline(), groups.tensor(),
                            ScheduleParams{ScheduleType::kOneFOneB, p, m, v}, opts);
      const float loss = exec.run_batch(mbs);
      std::lock_guard lock(mu);
      if (rank == p - 1) out.losses.emplace(comm.rank(), loss);
      for (auto& ch : chunks) {
        for (Param* param : ch->params()) {
          out.grads.emplace("rank" + std::to_string(comm.rank()) + "/" + param->name,
                            param->grad.clone());
        }
      }
    });
    graph::set_enabled(prev);
  }

  ASSERT_EQ(results[0].grads.size(), results[1].grads.size());
  for (auto& [name, grad] : results[0].grads) {
    ASSERT_TRUE(results[1].grads.contains(name)) << name;
    EXPECT_EQ(tensor::max_abs_diff(grad, results[1].grads.at(name)), 0.0f)
        << name << " differs between graph and eager execution";
  }
  ASSERT_EQ(results[0].losses.size(), results[1].losses.size());
  for (auto& [rank, loss] : results[0].losses) {
    EXPECT_EQ(loss, results[1].losses.at(rank)) << "loss on rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphSweep, GraphEagerEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(tensor::DType::kF32,
                                         tensor::DType::kBf16)));

TEST(PipelineExecutor, RejectsWrongMicrobatchCount) {
  GptConfig c = tiny_config(2);
  auto mbs = make_microbatches(c, 2, 2);
  dist::World world(2);
  EXPECT_THROW(world.run([&](dist::Comm& comm) {
                 dist::Comm tp = dist::Comm::solo();
                 auto chunks = build_chunks(c, tp, 2, comm.rank(), 1, false);
                 std::vector<GptStage*> raw{chunks[0].get()};
                 PipelineExecutor exec(raw, comm, {ScheduleType::kOneFOneB, 2, 4, 1});
                 exec.run_batch(mbs);  // 2 mbs but schedule expects 4
               }),
               dist::RankFailure);
}

}  // namespace
}  // namespace ptdp::pipeline
