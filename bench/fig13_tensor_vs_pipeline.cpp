// Figure 13: tensor vs pipeline model parallelism for a 162B GPT model
// (32 layers, hidden 20480, 128 heads) on 64 GPUs: (t, p) from (2, 32) to
// (32, 2), batch 32 and 128, microbatch 1. Peak sits at t = 8 — the node
// size (Takeaway #1).

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 13", "Tensor vs pipeline parallelism (162B, 64 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(32, 20480, 128);
  std::printf("model: %.1fB params\n\n", m.paper_params() / 1e9);
  std::printf("%4s %4s | %12s %12s\n", "t", "p", "TF/GPU B=32", "TF/GPU B=128");
  for (const int t : {2, 4, 8, 16, 32}) {
    const int p = 64 / t;
    double tf[2] = {0, 0};
    int i = 0;
    for (const std::int64_t B : {32, 128}) {
      core::ParallelConfig cfg;
      cfg.t = t;
      cfg.p = p;
      cfg.b = 1;
      const auto res =
          sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
      tf[i++] = res.per_gpu_flops / 1e12;
    }
    std::printf("%4d %4d | %12.0f %12.0f%s\n", t, p, tf[0], tf[1],
                t == 8 ? "   <- node size (peak expected here)" : "");
  }
  std::printf("\nShape check (paper): throughput peaks at t = 8 (the DGX A100 "
              "node size); t > 8 pays inter-node all-reduces, small t pays "
              "pipeline bubble.\n");
  return 0;
}
