// §5.10: checkpoint loading and saving. The paper's trillion-parameter
// checkpoint is 13.8 TB; the initial load reached 1 TB/s (filesystem peak)
// and saves reached 40% of peak write bandwidth (273 GB/s). We reproduce
// the size/time arithmetic from the storage model, and exercise the real
// sharded checkpoint implementation on a small model to measure this
// library's actual serialization throughput.

#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/mem/pool.hpp"
#include "ptdp/model/stage.hpp"
#include "ptdp/runtime/stopwatch.hpp"

using namespace ptdp;

int main() {
  bench::header("Section 5.10", "Checkpoint loading and saving");
  const auto hw = sim::ClusterSpec::selene();

  // ---- storage-model arithmetic for the 1T model ----
  const model::GptConfig m1t = bench::gpt(128, 25600, 160);
  const double P = m1t.paper_params();
  // Checkpoint contents per parameter: fp32 master + Adam m + v + fp16 copy.
  const double bytes_per_param = 4.0 + 4.0 + 4.0 + 2.0;
  const double ckpt_bytes = P * bytes_per_param;
  std::printf("1T-model checkpoint size: %5.1f TB   (paper: 13.8 TB)\n",
              ckpt_bytes / 1e12);
  std::printf("initial load at fs peak read (%.0f GB/s): %5.1f s\n",
              hw.fs_read_bw / 1e9, ckpt_bytes / hw.fs_read_bw);
  std::printf("save at 40%% of peak write (%.0f GB/s): %5.1f s   (paper saves "
              "hit 273 GB/s)\n",
              0.4 * hw.fs_write_bw / 1e9, ckpt_bytes / (0.4 * hw.fs_write_bw));

  // ---- real sharded checkpoint on a small functional model ----
  const auto dir = std::filesystem::temp_directory_path() / "ptdp_bench_ckpt";
  std::filesystem::create_directories(dir);
  model::GptConfig tiny;
  tiny.num_layers = 4;
  tiny.hidden = 128;
  tiny.heads = 8;
  tiny.vocab = 512;
  tiny.seq = 64;
  mem::reset_global_peak();
  const mem::PoolStats mem_before = mem::global_stats();
  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    dist::Comm tp = dist::Comm::solo();
    model::GptStage stage(
        tiny, tp,
        model::StageSpec{comm.rank() == 0, comm.rank() == 1,
                         comm.rank() == 0 ? 0 : 2, comm.rank() == 0 ? 2 : 4, false});
    ckpt::NamedTensors tensors;
    for (model::Param* p : stage.params()) tensors.emplace_back(p->name, &p->value);
    const std::string path = ckpt::shard_path(dir.string(), comm.rank(), 0, 0);
    Stopwatch sw;
    const std::int64_t bytes = ckpt::save_checkpoint(path, tensors, {1, 0}).bytes;
    const double save_s = sw.elapsed_seconds();
    sw.reset();
    ckpt::load_checkpoint(path, tensors);
    const double load_s = sw.elapsed_seconds();
    if (comm.rank() == 0) {
      std::printf("\nfunctional sharded checkpoint (rank 0 shard): %.2f MB, "
                  "save %.1f ms (%.0f MB/s), load %.1f ms (%.0f MB/s)\n",
                  bytes / 1e6, save_s * 1e3, bytes / 1e6 / save_s, load_s * 1e3,
                  bytes / 1e6 / load_s);
    }
  });
  std::filesystem::remove_all(dir);
  // Measured memory-plane counterpart: the paper's storage model above is
  // analytic; here the ptdp::mem accounting reports what the functional run
  // actually held live (model shards + serialization staging) across ranks.
  const mem::PoolStats mem_after = mem::global_stats();
  const auto acq = mem_after.acquires - mem_before.acquires;
  const auto hits = mem_after.pool_hits - mem_before.pool_hits;
  std::printf("measured tensor memory: peak %.2f MB live across ranks, "
              "%llu allocations (pool hit rate %.2f)\n",
              static_cast<double>(mem_after.peak_bytes) / 1e6,
              static_cast<unsigned long long>(acq),
              acq > 0 ? static_cast<double>(hits) / static_cast<double>(acq)
                      : 0.0);
  std::printf("Every rank writes exactly its own shard in parallel — the "
              "layout that lets the paper's 384 nodes saturate the parallel "
              "filesystem.\n");
  return 0;
}
