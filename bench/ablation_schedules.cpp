// Ablation: the three pipeline schedules head-to-head across pipeline
// depths and microbatch counts — bubble fraction, activation-stash peak
// (the GPipe-vs-1F1B memory argument of §2.2.1), and simulated end-to-end
// throughput on a mid-size model. This isolates each design choice the
// paper composes: 1F1B buys memory at equal bubble; interleaving buys
// bubble at extra communication.

#include "bench_util.hpp"

#include "ptdp/pipeline/schedule.hpp"

using namespace ptdp;

int main() {
  bench::header("Ablation", "Pipeline schedules: bubble, memory, throughput");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(32, 8192, 64);  // ~26B

  std::printf("%3s %4s | %-16s | %8s %9s %9s\n", "p", "m", "schedule", "bubble",
              "stash", "TF/GPU");
  for (const int p : {4, 8}) {
    for (const int mult : {1, 2, 4, 8}) {
      const int mcount = p * mult;
      const std::int64_t B = mcount;  // d=1, b=1
      struct Entry {
        pipeline::ScheduleType type;
        int v;
      };
      for (const Entry e : {Entry{pipeline::ScheduleType::kGPipe, 1},
                            Entry{pipeline::ScheduleType::kOneFOneB, 1},
                            Entry{pipeline::ScheduleType::kInterleaved, 2}}) {
        if (e.type == pipeline::ScheduleType::kInterleaved &&
            (m.num_layers % (p * e.v) != 0)) {
          continue;
        }
        const pipeline::ScheduleParams sp{e.type, p, mcount, e.v};
        // Peak in-flight chunk-activations on rank 0 (worst).
        const int stash = pipeline::max_in_flight(pipeline::build_rank_schedule(sp, 0));
        const double bubble = pipeline::bubble_fraction(sp, 1.0 / e.v, 2.0 / e.v);

        core::ParallelConfig cfg;
        cfg.t = 8;
        cfg.p = p;
        cfg.b = 1;
        cfg.v = e.v;
        cfg.schedule = e.type;
        cfg.scatter_gather = e.v > 1;
        const auto res =
            sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
        std::printf("%3d %4d | %-16s | %7.1f%% %9d %9.0f\n", p, mcount,
                    pipeline::schedule_name(e.type), 100 * bubble, stash,
                    res.per_gpu_flops / 1e12);
      }
      std::printf("\n");
    }
  }
  std::printf("Reading: GPipe and 1F1B share the bubble ((p-1)/m) but GPipe "
              "stashes m microbatches vs 1F1B's <= p; interleaving divides the "
              "bubble by v at a ~v x communication premium.\n");
  return 0;
}
