// Figures 3 & 4: the pipeline schedules themselves, rendered as ASCII
// Gantt charts from the *actual simulated timelines* (one row per device,
// time left to right, digits = microbatch id, uppercase F = forward,
// b = backward which takes 2x as long, '.' = pipeline bubble). These are
// the paper's schematic figures, regenerated from the real op lists the
// executor runs.

#include <cstdio>
#include <string>
#include <vector>

#include "ptdp/pipeline/schedule.hpp"

using namespace ptdp::pipeline;

namespace {

// Renders one schedule with tf = 1, tb = 2 at 1 column per time unit.
void render(const char* title, const ScheduleParams& sp) {
  const double tf = 1.0 / sp.v, tb = 2.0 / sp.v;
  const auto timeline = simulate_timeline(sp, tf, tb);
  double makespan = 0;
  for (const auto& rank_ops : timeline) {
    for (const auto& t : rank_ops) makespan = std::max(makespan, t.end);
  }
  const double ideal = sp.m * sp.v * (tf + tb);
  std::printf("\n%s  (p=%d, m=%d, v=%d; bubble = %.1f%%)\n", title, sp.p, sp.m,
              sp.v, 100.0 * (makespan - ideal) / ideal);

  const int cols = static_cast<int>(makespan * sp.v + 0.5);  // v columns per unit
  for (int r = 0; r < sp.p; ++r) {
    std::string row(static_cast<std::size_t>(cols), '.');
    for (const TimedOp& t : timeline[static_cast<std::size_t>(r)]) {
      const int c0 = static_cast<int>(t.start * sp.v + 0.5);
      const int c1 = static_cast<int>(t.end * sp.v + 0.5);
      // Microbatch id digit; uppercase = fwd, lowercase letter row = bwd.
      const char id = static_cast<char>('1' + (t.op.microbatch % 9));
      for (int c = c0; c < c1 && c < cols; ++c) {
        const bool fwd = t.op.kind == Op::Kind::kForward;
        // Dark/light per chunk (Fig. 4 bottom): chunk 0 keeps the digit,
        // chunk 1 shows the digit for fwd but letters for visual contrast.
        char ch = id;
        if (!fwd) ch = static_cast<char>('a' + (t.op.microbatch % 9));
        if (t.op.chunk == 1 && fwd) ch = id;
        row[static_cast<std::size_t>(c)] = ch;
      }
      // Mark chunk-1 ops with a separator tick at the start for v > 1.
      if (sp.v > 1 && t.op.chunk == 1 && c0 < cols) {
        // leave as is; distinguishable by position
      }
    }
    std::printf("  device %d |%s|\n", r + 1, row.c_str());
  }
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Figures 3 & 4 — pipeline schedules\n");
  std::printf("(digits = forward of microbatch n, letters = backward of the\n");
  std::printf(" same microbatch (2x as long, as in the paper), '.' = bubble)\n");
  std::printf("================================================================\n");

  // Figure 3: GPipe, 4 devices, 8 microbatches.
  render("Figure 3 — GPipe (all-forward, all-backward)",
         ScheduleParams{ScheduleType::kGPipe, 4, 8, 1});

  // Figure 4 (top): default 1F1B.
  render("Figure 4 (top) — default 1F1B (PipeDream-Flush)",
         ScheduleParams{ScheduleType::kOneFOneB, 4, 8, 1});

  // Figure 4 (bottom): interleaved 1F1B with 2 chunks per device.
  render("Figure 4 (bottom) — interleaved 1F1B, v = 2 chunks/device",
         ScheduleParams{ScheduleType::kInterleaved, 4, 8, 2});

  std::printf("\nShape check (paper): identical bubble for GPipe and 1F1B; the\n"
              "interleaved flush happens sooner (bubble divided by v).\n");
  return 0;
}
