// Figure 1: the growth trend of state-of-the-art NLP model sizes that
// motivates the paper, with this work's Table 1 configurations overlaid.
// (A data figure, not a measurement — reproduced as the underlying table
// plus the exponential-fit doubling time.)

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 1", "Trend of NLP model sizes over time");
  struct Point {
    const char* name;
    double year;
    double params;
  };
  const Point points[] = {
      {"ELMo", 2018.1, 94e6},          {"BERT-Large", 2018.8, 340e6},
      {"GPT-2", 2019.1, 1.5e9},        {"Megatron-LM", 2019.7, 8.3e9},
      {"T5-11B", 2019.8, 11e9},        {"Turing-NLG", 2020.1, 17e9},
      {"GPT-3", 2020.4, 175e9},        {"This work (Table 1 max)", 2021.2, 1.008e12},
  };
  std::printf("%-26s %8s %14s\n", "model", "year", "parameters");
  for (const Point& p : points) {
    std::printf("%-26s %8.1f %14.2e\n", p.name, p.year, p.params);
  }

  // Least-squares fit of log10(params) vs year -> doubling time.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int n = static_cast<int>(std::size(points));
  for (const Point& p : points) {
    const double x = p.year, y = std::log10(p.params);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double doubling_months = 12.0 * std::log10(2.0) / slope;
  std::printf("\nExponential fit: x%.1f per year (doubling every %.1f months)\n",
              std::pow(10.0, slope), doubling_months);
  std::printf("Shape check (paper): exponential growth, ~10^4x in ~3 years.\n");
  return 0;
}
