// Figure 7: per-GPU throughput vs. microbatch size for a GPT model with a
// billion parameters (128 attention heads, hidden size 4096, 4 transformer
// layers) on a single GPU. The paper reports up to a 1.3x ramp.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 7", "Per-GPU throughput vs microbatch size (1 GPU, ~1B params)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(4, 4096, 128);
  std::printf("model: %lld layers, hidden %lld, %lld heads (%.2fB params)\n\n",
              static_cast<long long>(m.num_layers), static_cast<long long>(m.hidden),
              static_cast<long long>(m.heads), m.paper_params() / 1e9);
  std::printf("%12s %14s %10s\n", "microbatch b", "TFLOP/s/GPU", "vs b=1");
  const double base = sim::single_gpu_flops(hw, m, 1);
  for (const std::int64_t b : {1, 2, 4, 8, 16}) {
    const double f = sim::single_gpu_flops(hw, m, b);
    std::printf("%12lld %14.1f %9.2fx\n", static_cast<long long>(b), f / 1e12,
                f / base);
  }
  std::printf("\nPaper: throughput increases by up to ~1.3x with larger b.\n");
  return 0;
}
