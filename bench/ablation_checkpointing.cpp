// Ablation: the §3.5 activation-checkpointing model. Sweeps the number of
// checkpoints c for an l-layer stage and shows the memory curve
// c·A_input + (l/c)·A_intermediate with its minimum at
// c* = sqrt(l·A_int/A_inp), and the paper's observation that checkpointing
// every 1–2 transformer layers is near-optimal in practice.

#include <cmath>

#include "bench_util.hpp"

#include "ptdp/core/analytics.hpp"

using namespace ptdp;

int main() {
  bench::header("Ablation", "Activation checkpointing granularity (§3.5)");
  const model::GptConfig m = bench::gpt(96, 12288, 96);  // GPT-3 per-layer sizes
  const std::int64_t b = 1;
  const double a_input = core::activation_bytes_per_layer(m, b, /*recompute=*/true);
  const double a_inter =
      core::activation_bytes_per_layer(m, b, /*recompute=*/false) - a_input;
  const double layers_per_stage = 12;  // p = 8 on 96 layers

  std::printf("per-layer: A_input = %.1f MB, A_intermediate = %.1f MB\n", a_input / 1e6,
              a_inter / 1e6);
  const double c_star =
      core::optimal_checkpoints(layers_per_stage, a_input, a_inter);
  std::printf("analytic optimum c* = sqrt(l * A_int / A_inp) = %.1f\n\n", c_star);

  std::printf("%12s %14s %16s\n", "checkpoints", "memory (GB)", "layers/ckpt");
  double best = 1e30;
  double best_c = 0;
  for (double c = 1; c <= layers_per_stage; c += 1) {
    const double mem = core::checkpoint_memory(c, layers_per_stage, a_input, a_inter);
    if (mem < best) {
      best = mem;
      best_c = c;
    }
    std::printf("%12.0f %14.2f %16.1f%s\n", c, mem / 1e9, layers_per_stage / c,
                std::abs(c - c_star) < 0.5 ? "   <- c*" : "");
  }
  std::printf("\nbest integer c = %.0f -> %.1f layers per checkpoint "
              "(paper: checkpointing every 1-2 transformer layers is optimal "
              "for most configurations)\n",
              best_c, layers_per_stage / best_c);

  // Throughput is unaffected by c (§3.5: \"the number of activation
  // checkpoints does not impact throughput\") — the recompute cost is one
  // extra forward regardless; only memory moves. State that explicitly.
  std::printf("throughput impact of c: none (one extra forward pass per layer "
              "either way); c trades only memory.\n");
  return 0;
}
