// Figure 14: pipeline vs data parallelism for a 5.9B GPT model (32 layers,
// hidden 3840, 32 heads) on 64 GPUs, batch 32/128/512, microbatch 1.
// Throughput falls as the pipeline-parallel size rises — data parallelism
// should do the scale-out (§3.3.1).

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 14", "Pipeline vs data parallelism (5.9B, 64 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(32, 3840, 32);
  std::printf("model: %.1fB params\n\n", m.paper_params() / 1e9);
  std::printf("%4s %4s | %11s %12s %12s\n", "p", "d", "TF/GPU B=32", "TF/GPU B=128",
              "TF/GPU B=512");
  for (const int p : {2, 4, 8, 16, 32}) {
    const int d = 64 / p;
    std::printf("%4d %4d |", p, d);
    for (const std::int64_t B : {32, 128, 512}) {
      if (B % d != 0) {
        std::printf(" %12s", "-");
        continue;
      }
      core::ParallelConfig cfg;
      cfg.p = p;
      cfg.d = d;
      cfg.b = 1;
      const auto res =
          sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
      std::printf(" %12.0f", res.per_gpu_flops / 1e12);
    }
    std::printf("\n");
  }
  std::printf("\nShape check (paper): every batch size decays with p; larger "
              "batches decay more slowly (bubble amortization).\n");
  return 0;
}
