// Figure 6: pipeline-bubble fraction vs. data-parallel size d for
// n ∈ {32, 128} GPUs and b' = B/b ∈ {32, 128}, from the §3.3.1 analytic
// model (n − d)/b' — cross-checked against the schedule simulator.

#include "bench_util.hpp"

#include "ptdp/core/analytics.hpp"
#include "ptdp/pipeline/schedule.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 6", "Bubble fraction vs data-parallel size (analytic + simulated)");
  std::printf("%4s %6s %6s | %10s %10s\n", "n", "b'", "d", "analytic", "schedule");
  for (const int n : {32, 128}) {
    for (const int bprime : {32, 128}) {
      for (int d = 1; d <= n; d *= 2) {
        const int p = n / d;
        const int m = bprime / d;
        if (m < 1) continue;
        const double analytic = static_cast<double>(n - d) / bprime;
        // The schedule-level number from the actual 1F1B op lists.
        core::ParallelConfig cfg;
        cfg.p = p;
        cfg.d = d;
        cfg.b = 1;
        const double sim_bubble = pipeline::bubble_fraction(
            pipeline::ScheduleParams{pipeline::ScheduleType::kOneFOneB, p, m, 1},
            1.0, 2.0);
        std::printf("%4d %6d %6d | %10.4f %10.4f\n", n, bprime, d, analytic,
                    sim_bubble);
      }
      std::printf("\n");
    }
  }
  std::printf("Shape check (paper): bubble falls monotonically as d rises; "
              "larger n shifts the curve up, larger b' shifts it down.\n");
  return 0;
}
