// Figure 10: throughput per GPU of PTD-P and ZeRO-3 as the number of GPUs
// grows with the global batch size fixed — 175B (dotted in the paper) and
// 530B (solid). PTD-P stays flat; ZeRO-3 falls roughly as 1/n.

#include "bench_util.hpp"

#include "ptdp/sim/zero_model.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 10", "PTD-P vs ZeRO-3 throughput per GPU vs #GPUs");
  const auto hw = sim::ClusterSpec::selene();

  struct Series {
    const char* name;
    model::GptConfig m;
    int t, p;
    std::int64_t batch;
    std::vector<std::pair<std::int64_t, std::int64_t>> zero_points;  // (n, b)
    std::vector<std::int64_t> ptdp_ns;
  };
  Series series[] = {
      {"GPT-3 175B", bench::gpt(96, 12288, 96), 8, 12, 1536,
       {{384, 4}, {768, 2}, {1536, 1}},
       {384, 768, 1536}},
      {"GPT 530B", bench::gpt(105, 20480, 128), 8, 35, 2240,
       {{1120, 2}, {2240, 1}},
       {560, 1120, 2240}},
  };

  for (const Series& s : series) {
    std::printf("\n%s (batch %lld):\n", s.name, static_cast<long long>(s.batch));
    std::printf("  %-8s %6s %3s %12s\n", "scheme", "GPUs", "b", "TFLOP/s/GPU");
    for (auto [n, b] : s.zero_points) {
      const auto res = sim::simulate_zero3_iteration(hw, s.m, s.batch, n, b);
      std::printf("  %-8s %6lld %3lld %12.0f%s\n", "ZeRO-3",
                  static_cast<long long>(n), static_cast<long long>(b),
                  res.per_gpu_flops / 1e12, res.oom ? "  [OOM]" : "");
    }
    for (std::int64_t n : s.ptdp_ns) {
      core::ParallelConfig cfg;
      cfg.t = s.t;
      cfg.p = s.p;
      cfg.d = static_cast<int>(n / (static_cast<std::int64_t>(s.t) * s.p));
      cfg.b = 1;
      const auto res = sim::simulate_iteration(hw, s.m, cfg, s.batch);
      std::printf("  %-8s %6lld %3d %12.0f\n", "PTD-P", static_cast<long long>(n), 1,
                  res.per_gpu_flops / 1e12);
    }
  }
  std::printf("\nShape check (paper): PTD-P nearly flat with n; ZeRO-3 roughly "
              "halves per doubling; PTD-P ~70%% ahead at the doubled points.\n");
  return 0;
}
