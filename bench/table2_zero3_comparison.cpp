// Table 2: PTD Parallelism vs. ZeRO-3 (without model parallelism) for the
// 175B GPT-3 and the 530B model — per-GPU throughput and training time for
// 300B tokens, with the number of GPUs doubling at fixed global batch.

#include "bench_util.hpp"

#include "ptdp/sim/zero_model.hpp"

using namespace ptdp;

namespace {

double training_days(double iteration_seconds, std::int64_t batch,
                     std::int64_t seq) {
  const double iters = 300e9 / (static_cast<double>(batch) * seq);
  return iters * iteration_seconds / 86400.0;
}

}  // namespace

int main() {
  bench::header("Table 2", "PTD-P vs ZeRO-3 (no model parallelism)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig gpt3 = bench::gpt(96, 12288, 96);    // 174.6B
  const model::GptConfig gpt530 = bench::gpt(105, 20480, 128);  // 529.6B

  std::printf("%-8s %9s %5s %6s %6s %3s | %9s %10s | %8s %9s\n", "scheme",
              "params(B)", "mp", "batch", "GPUs", "b", "TF/s/GPU", "days/300B",
              "paperTF", "paperDays");

  struct ZRow {
    const model::GptConfig* m;
    std::int64_t batch, n, b;
    double paper_tf, paper_days;
    bool oom_note;
  };
  const ZRow zrows[] = {
      {&gpt3, 1536, 384, 4, 144, 90, false},  {&gpt3, 1536, 768, 2, 88, 74, false},
      {&gpt3, 1536, 1536, 1, 44, 74, false},  {&gpt530, 2560, 640, 4, 138, 169, true},
      {&gpt530, 2240, 1120, 2, 98, 137, false},
      {&gpt530, 2240, 2240, 1, 48, 140, false},
  };
  for (const ZRow& r : zrows) {
    const auto res = sim::simulate_zero3_iteration(hw, *r.m, r.batch, r.n, r.b);
    std::printf("%-8s %9.1f %5d %6lld %6lld %3lld | %9.0f %10.0f | %8.0f %9.0f%s\n",
                "ZeRO-3", r.m->paper_params() / 1e9, 1,
                static_cast<long long>(r.batch), static_cast<long long>(r.n),
                static_cast<long long>(r.b), res.per_gpu_flops / 1e12,
                training_days(res.iteration_seconds, r.batch, r.m->seq), r.paper_tf,
                r.paper_days,
                r.oom_note ? "  (*paper grew batch/GPUs to fit, as here)" : "");
  }

  struct PRow {
    const model::GptConfig* m;
    int t, p;
    std::int64_t batch, n;
    double paper_tf, paper_days;
  };
  const PRow prows[] = {
      {&gpt3, 8, 12, 1536, 384, 153, 84},   {&gpt3, 8, 12, 1536, 768, 149, 43},
      {&gpt3, 8, 12, 1536, 1536, 141, 23},  {&gpt530, 8, 35, 2240, 560, 171, 156},
      {&gpt530, 8, 35, 2240, 1120, 167, 80}, {&gpt530, 8, 35, 2240, 2240, 159, 42},
  };
  for (const PRow& r : prows) {
    core::ParallelConfig cfg;
    cfg.t = r.t;
    cfg.p = r.p;
    cfg.d = static_cast<int>(r.n / (static_cast<std::int64_t>(r.t) * r.p));
    cfg.b = 1;
    const auto res = sim::simulate_iteration(hw, *r.m, cfg, r.batch);
    std::printf("%-8s %9.1f %5lld %6lld %6lld %3d | %9.0f %10.0f | %8.0f %9.0f\n",
                "PTD-P", r.m->paper_params() / 1e9,
                static_cast<long long>(cfg.model_parallel_size()),
                static_cast<long long>(r.batch), static_cast<long long>(r.n), 1,
                res.per_gpu_flops / 1e12,
                training_days(res.iteration_seconds, r.batch, r.m->seq), r.paper_tf,
                r.paper_days);
  }
  std::printf("\nHeadline (§5.2): at doubled GPU counts PTD-P outperforms ZeRO-3 "
              "by ~70%% due to less cross-node communication.\n");
  return 0;
}
