// Observability-plane overhead microbenchmark (DESIGN.md §11): runs the
// same (p=4, v=2, interleaved) engine workload with tracing off, metrics
// only, and full span recording, and writes BENCH_trace_overhead.json (the
// BENCH_tensor_ops.json convention) with steps/s per mode and the overhead
// relative to tracing-off. The acceptance target is <1% steps/s cost for
// the disabled tracer: a disabled site is one relaxed atomic load.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp {
namespace {

constexpr int kWarmupSteps = 2;
constexpr int kTimedSteps = 8;
constexpr int kRepeats = 3;

model::GptConfig bench_config() {
  model::GptConfig c;
  c.num_layers = 8;
  c.hidden = 64;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 32;
  c.dropout = 0.0f;
  c.seed = 2024;
  return c;
}

/// One engine run (p=4, t=1, d=1, v=2, m=8); returns timed steps/s.
double run_once(obs::TraceMode mode, const data::TokenDataset& dataset) {
  obs::Tracer::instance().set_mode(mode);
  double seconds = 0.0;
  dist::World world(4);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = bench_config();
    options.parallel.p = 4;
    options.parallel.v = 2;
    options.parallel.b = 1;
    options.parallel.schedule = pipeline::ScheduleType::kInterleaved;
    options.parallel.recompute = false;
    options.global_batch = 8;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.1f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, options.global_batch, 1, 1,
                               engine.groups().coord().data, /*seed=*/88);
    for (int s = 0; s < kWarmupSteps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
    Stopwatch watch;
    for (int s = kWarmupSteps; s < kWarmupSteps + kTimedSteps; ++s) {
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
    if (comm.rank() == 0) seconds = watch.elapsed_seconds();
  });
  obs::Tracer::instance().set_mode(obs::TraceMode::kOff);
  return static_cast<double>(kTimedSteps) / seconds;
}

struct ModeResult {
  const char* name;
  double steps_per_s = 0;
  double overhead_pct = 0;  ///< vs tracing-off
  std::uint64_t events = 0;
};

}  // namespace
}  // namespace ptdp

int main() {
  using namespace ptdp;
  const model::GptConfig c = bench_config();
  data::SyntheticCorpus corpus(c.vocab, 55);
  const data::TokenDataset dataset(corpus.generate(4000), c.seq);

  const struct { const char* name; obs::TraceMode mode; } modes[] = {
      {"off", obs::TraceMode::kOff},
      {"metrics_only", obs::TraceMode::kMetricsOnly},
      {"full", obs::TraceMode::kFull},
  };
  std::vector<ModeResult> results;
  for (const auto& m : modes) {
    // Median of repeats: single runs on an oversubscribed host are noisy.
    std::vector<double> sps;
    std::uint64_t events = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      obs::Tracer::instance().reset();
      obs::MetricsRegistry::instance().reset();
      sps.push_back(run_once(m.mode, dataset));
      events = obs::Tracer::instance().events_recorded();
    }
    std::sort(sps.begin(), sps.end());
    results.push_back({m.name, sps[sps.size() / 2], 0.0, events});
  }
  const double base = results[0].steps_per_s;
  for (ModeResult& r : results) {
    r.overhead_pct = base > 0 ? (base - r.steps_per_s) / base * 100.0 : 0.0;
  }

  std::printf("trace overhead (p=4 v=2 m=8, %d timed steps, median of %d):\n",
              kTimedSteps, kRepeats);
  for (const ModeResult& r : results) {
    std::printf("  %-12s %8.2f steps/s  overhead %+6.2f%%  (%llu events/run)\n",
                r.name, r.steps_per_s, r.overhead_pct,
                static_cast<unsigned long long>(r.events));
  }

  std::FILE* f = std::fopen("BENCH_trace_overhead.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_trace_overhead.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_trace_overhead\",\n");
  std::fprintf(f, "  \"config\": {\"p\": 4, \"t\": 1, \"d\": 1, \"v\": 2, \"m\": 8, "
                  "\"timed_steps\": %d, \"repeats\": %d},\n",
               kTimedSteps, kRepeats);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"steps_per_s\": %.3f, "
                 "\"overhead_pct\": %.3f, \"events_per_run\": %llu}%s\n",
                 r.name, r.steps_per_s, r.overhead_pct,
                 static_cast<unsigned long long>(r.events),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_trace_overhead.json (%zu modes)\n", results.size());
  return 0;
}
