#pragma once

// Shared helpers for the experiment-reproduction binaries. Every bench
// prints the series the corresponding paper table/figure reports, plus the
// paper's value where the paper states one, so EXPERIMENTS.md can record
// paper-vs-measured side by side.

#include <cstdio>
#include <vector>

#include "ptdp/sim/simulator.hpp"

namespace ptdp::bench {

inline void header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline model::GptConfig gpt(std::int64_t layers, std::int64_t hidden,
                            std::int64_t heads) {
  model::GptConfig c;
  c.num_layers = layers;
  c.hidden = hidden;
  c.heads = heads;
  c.vocab = 51200;
  c.seq = 2048;
  return c;
}

/// Sweep microbatch size and interleave factor for a fixed (p, t, d) the
/// way the paper tunes each configuration (§3.4 / §5.1), returning the
/// fastest non-OOM configuration.
inline core::ParallelConfig tune(const sim::ClusterSpec& hw,
                                 const model::GptConfig& m,
                                 core::ParallelConfig base, std::int64_t B,
                                 bool allow_interleave = true) {
  double best = 1e30;
  core::ParallelConfig best_cfg = base;
  bool found = false;
  for (std::int64_t b : {1, 2, 4, 8}) {
    if (B % (b * base.d) != 0) continue;
    for (int v : {1, 2, 3, 4}) {
      core::ParallelConfig cfg = base;
      cfg.b = b;
      cfg.v = v;
      if (v > 1) {
        if (!allow_interleave || base.p < 2) continue;
        if (cfg.microbatches(B) % base.p != 0) continue;
        if (m.num_layers % (base.p * v) != 0) continue;
        cfg.schedule = pipeline::ScheduleType::kInterleaved;
        cfg.scatter_gather = cfg.t > 1;
      } else {
        if (m.num_layers % base.p != 0) continue;
        cfg.schedule = pipeline::ScheduleType::kOneFOneB;
      }
      const auto res = sim::simulate_iteration(hw, m, cfg, B);
      if (!res.oom && res.iteration_seconds < best) {
        best = res.iteration_seconds;
        best_cfg = cfg;
        found = true;
      }
    }
  }
  if (!found) best_cfg.b = 0;  // sentinel: nothing fit
  return best_cfg;
}

}  // namespace ptdp::bench
