// Figure 16: effect of microbatch size for a 91B GPT model at
// (t, p) = (8, 8) on 64 GPUs, batch 128 and 512. Larger b improves
// arithmetic intensity but shrinks m and grows the bubble; the paper's
// best value for this model is b = 2.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 16", "Microbatch-size tradeoff (91B, (t,p)=(8,8))");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(64, 10240, 80);  // ~91B params
  std::printf("model: %.1fB params\n\n", m.paper_params() / 1e9);
  std::printf("%4s | %12s %12s\n", "b", "TF/GPU B=128", "TF/GPU B=512");
  for (const std::int64_t b : {1, 2, 4, 8}) {
    std::printf("%4lld |", static_cast<long long>(b));
    for (const std::int64_t B : {128, 512}) {
      core::ParallelConfig cfg;
      cfg.t = 8;
      cfg.p = 8;
      cfg.b = b;
      const auto res =
          sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
      std::printf(" %12.0f", res.per_gpu_flops / 1e12);
    }
    std::printf("\n");
  }
  std::printf("\nShape check (paper): an interior optimum (paper: b = 2) — "
              "kernel efficiency rises with b while the (p-1)/m bubble "
              "grows.\n");
  return 0;
}
