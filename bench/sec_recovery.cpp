// Self-healing recovery benchmark (DESIGN.md §15). MegaScale-style
// accounting for the fault-tolerance plane: a clean supervised run sets the
// baseline, then a persistent straggler and a silent hang are injected and
// healed end-to-end (detect -> restart-in-place -> evict -> elastic
// relayout -> resume). Reports detection latency, time-to-recover, goodput
// fraction (useful steps / executed steps) and ETTR (effective-training-
// time ratio: clean wall time / faulty wall time), and writes
// BENCH_recovery.json in the working directory (the BENCH_*.json
// convention) so the trajectory can be tracked across commits.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/ft/health.hpp"
#include "ptdp/ft/supervisor.hpp"
#include "ptdp/runtime/stopwatch.hpp"

using namespace ptdp;

namespace {

constexpr int kSteps = 10;
constexpr int kCkptEvery = 2;

struct ScenarioResult {
  std::string name;
  double wall_s = 0.0;
  int restarts = 0;
  int evictions = 0;
  std::uint64_t detect_latency_steps = 0;
  std::uint64_t steps_lost = 0;
  double time_to_recover_s = 0.0;
  double goodput_fraction = 1.0;
  double ettr = 1.0;
};

core::EngineOptions options_for(const model::GptConfig& config, int t) {
  core::EngineOptions o;
  o.model = config;
  o.parallel.p = 1;
  o.parallel.t = t;
  o.parallel.d = 1;
  o.parallel.b = 1;
  o.parallel.recompute = false;
  o.global_batch = 8;
  o.optimizer = core::EngineOptions::Opt::kAdam;
  o.adam.lr = 2e-3f;
  o.ckpt_keep = 8;
  return o;
}

// The elastic SPMD body shared by every scenario: t=2 on the full world,
// merge + serial resume on the shrunken one (train_main's recipe).
void elastic_body(dist::Comm& comm, const std::string& dir,
                  std::uint64_t committed, const model::GptConfig& config,
                  data::TokenDataset& dataset,
                  const std::shared_ptr<ft::HealthMonitor>& monitor) {
  if (comm.size() == 2) {
    core::PtdpEngine engine(comm, options_for(config, 2));
    int start = 0;
    if (committed > 0) start = static_cast<int>(engine.load_checkpoint(dir));
    data::ShardedLoader loader(dataset, 8, 1, 1, 0, 8);
    for (int step = start; step < kSteps; ++step) {
      engine.train_step(loader.next_batch(step));
      if (monitor) {
        const auto& s = engine.last_stats();
        monitor->record_step(comm.world_rank(),
                             static_cast<std::uint64_t>(step), s.step_seconds,
                             s.busy_seconds, s.comm_wait_seconds);
        monitor->enforce();
      }
      if ((step + 1) % kCkptEvery == 0) {
        engine.save_checkpoint(dir, static_cast<std::uint64_t>(step + 1));
      }
    }
    return;
  }
  const auto best = ckpt::find_latest_valid_checkpoint(dir);
  core::PtdpEngine engine(comm, options_for(config, 1));
  int start = 0;
  if (best) {
    const std::string merged = dir + "/merged";
    std::filesystem::create_directories(merged);
    ckpt::merge_shards(best->shard_dir, 1, 2,
                       ckpt::shard_path(merged, 0, 0, 0));
    start = static_cast<int>(engine.load_resharded(merged));
  }
  data::ShardedLoader loader(dataset, 8, 1, 1, 0, 8);
  for (int step = start; step < kSteps; ++step) {
    engine.train_step(loader.next_batch(step));
    if ((step + 1) % kCkptEvery == 0) {
      engine.save_checkpoint(dir, static_cast<std::uint64_t>(step + 1));
    }
  }
}

ScenarioResult run_scenario(const std::string& name,
                            const std::filesystem::path& root,
                            const model::GptConfig& config,
                            data::TokenDataset& dataset,
                            std::shared_ptr<dist::FaultPlan> plan,
                            int op_timeout_ms, double clean_wall_s) {
  const std::string d = (root / name).string();
  std::filesystem::create_directories(d);
  auto monitor = std::make_shared<ft::HealthMonitor>([] {
    ft::HealthOptions h;
    h.straggler_patience = 2;
    return h;
  }());

  ft::SupervisorOptions sup;
  sup.ckpt_dir = d;
  sup.max_restarts = 4;
  sup.fault_plan = plan;
  sup.health = monitor;
  sup.timeouts.op_timeout_ms = op_timeout_ms;
  ft::TrainSupervisor supervisor(sup);

  Stopwatch wall;
  const auto& stats = supervisor.run(
      [](const ft::RestartContext& ctx) {
        return std::make_unique<dist::World>(ctx.evicted.empty() ? 2 : 1);
      },
      [&](dist::Comm& comm, std::uint64_t committed, int) {
        elastic_body(comm, d, committed, config, dataset, monitor);
      });

  ScenarioResult r;
  r.name = name;
  r.wall_s = wall.elapsed_seconds();
  r.restarts = stats.failures;
  r.evictions = stats.evictions;
  r.steps_lost = stats.steps_lost;
  r.time_to_recover_s = stats.total_recovery_seconds;
  if (!stats.events.empty()) {
    r.detect_latency_steps = stats.events.front().detect_latency_steps;
  }
  const double executed = static_cast<double>(kSteps) +
                          static_cast<double>(stats.steps_lost);
  r.goodput_fraction = executed > 0 ? static_cast<double>(kSteps) / executed : 1.0;
  r.ettr = r.wall_s > 0 ? clean_wall_s / r.wall_s : 1.0;
  return r;
}

void print_row(const ScenarioResult& r) {
  std::printf("%-16s wall %6.2f s  restarts %d  evictions %d  detect %llu step(s)"
              "  lost %llu step(s)  recover %5.3f s  goodput %.3f  ettr %.3f\n",
              r.name.c_str(), r.wall_s, r.restarts, r.evictions,
              static_cast<unsigned long long>(r.detect_latency_steps),
              static_cast<unsigned long long>(r.steps_lost),
              r.time_to_recover_s, r.goodput_fraction, r.ettr);
}

}  // namespace

int main() {
  std::printf("\n================================================================\n");
  std::printf("Self-healing recovery — detection latency, ETTR, goodput\n");
  std::printf("================================================================\n");

  const auto root = std::filesystem::temp_directory_path() /
                    ("ptdp_bench_recovery_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);

  model::GptConfig config;
  config.num_layers = 2;
  config.hidden = 16;
  config.heads = 4;
  config.vocab = 32;
  config.seq = 8;
  config.seed = 99;
  data::SyntheticCorpus corpus(config.vocab, 4);
  data::TokenDataset dataset(corpus.generate(4000), config.seq);

  std::vector<ScenarioResult> results;

  // Baseline: supervised, fault-free.
  results.push_back(run_scenario("clean", root, config, dataset,
                                 std::make_shared<dist::FaultPlan>(),
                                 /*op_timeout_ms=*/0, /*clean_wall_s=*/0.0));
  results[0].ettr = 1.0;
  const double clean_wall = results[0].wall_s;
  print_row(results[0]);

  // Persistent straggler: rank 1 busy-spins 300 us on every send, sticky —
  // restart-in-place cannot heal it, the ladder must evict.
  {
    auto plan = std::make_shared<dist::FaultPlan>();
    plan->slow_rank(1, dist::FaultSite::kSend, 1,
                    std::chrono::microseconds(300));
    results.push_back(run_scenario("straggler_evict", root, config, dataset,
                                   plan, /*op_timeout_ms=*/0, clean_wall));
    print_row(results.back());
  }

  // Silent hang: rank 1 stops answering mid-run; the watchdog attributes
  // it, the ladder evicts immediately after one restart attempt.
  {
    auto plan = std::make_shared<dist::FaultPlan>();
    plan->hang(1, dist::FaultSite::kSend, 1000);
    results.push_back(run_scenario("hang_recover", root, config, dataset,
                                   plan, /*op_timeout_ms=*/300, clean_wall));
    print_row(results.back());
  }

  std::filesystem::remove_all(root);

  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (!f) {
    std::fprintf(stderr, "could not open BENCH_recovery.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sec_recovery\",\n  \"steps\": %d,\n"
               "  \"scenarios\": [\n", kSteps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_s\": %.6f, \"restarts\": %d, "
                 "\"evictions\": %d, \"detect_latency_steps\": %llu, "
                 "\"steps_lost\": %llu, \"time_to_recover_s\": %.6f, "
                 "\"goodput_fraction\": %.6f, \"ettr\": %.6f}%s\n",
                 r.name.c_str(), r.wall_s, r.restarts, r.evictions,
                 static_cast<unsigned long long>(r.detect_latency_steps),
                 static_cast<unsigned long long>(r.steps_lost),
                 r.time_to_recover_s, r.goodput_fraction, r.ettr,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_recovery.json (%zu scenarios)\n", results.size());
  return 0;
}
