// Figure 15: tensor vs data parallelism for the same 5.9B model on 64
// GPUs, batch 32/128/512, microbatch 1. Tensor parallelism pays per-
// microbatch all-reduces (inter-node once t > 8) and shrinking GEMMs;
// data parallelism communicates once per batch.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 15", "Tensor vs data parallelism (5.9B, 64 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(32, 3840, 32);
  std::printf("%4s %4s | %11s %12s %12s\n", "t", "d", "TF/GPU B=32", "TF/GPU B=128",
              "TF/GPU B=512");
  for (const int t : {2, 4, 8, 16, 32}) {
    const int d = 64 / t;
    std::printf("%4d %4d |", t, d);
    for (const std::int64_t B : {32, 128, 512}) {
      if (B % d != 0) {
        std::printf(" %12s", "-");
        continue;
      }
      core::ParallelConfig cfg;
      cfg.t = t;
      cfg.d = d;
      cfg.b = 1;
      const auto res =
          sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
      std::printf(" %12.0f", res.per_gpu_flops / 1e12);
    }
    std::printf("\n");
  }
  std::printf("\nShape check (paper): throughput falls steeply with t "
              "(all-to-all every microbatch + smaller GEMMs), with a cliff "
              "past t = 8 where all-reduces leave the node.\n");
  return 0;
}
