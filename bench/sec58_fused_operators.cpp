// §5.8: operator fusion impact. The paper reports +19% end-to-end for
// GPT-3 175B (113 -> 135 TFLOP/s per GPU) and +11% for the 530B model
// (133 -> 148). We run the same end-to-end configurations with the fused
// kernels toggled in the cost model, measure the *real* CPU fused kernels
// against their unfused compositions, and — three-way — run a whole
// transformer block unfused (planned graph, fusion pass off), hand-fused
// (the eager bodies), and planner-fused (planned graph, fusion pass on),
// writing the comparison to BENCH_graph_fusion.json. The planner-fused plan
// dispatches the same kernels as the hand-written bodies, so it must match
// or beat them.

#include "bench_util.hpp"

#include "ptdp/dist/comm.hpp"
#include "ptdp/graph/builder.hpp"
#include "ptdp/graph/executor.hpp"
#include "ptdp/model/transformer_layer.hpp"
#include "ptdp/runtime/stopwatch.hpp"
#include "ptdp/tensor/ops.hpp"

using namespace ptdp;

namespace {

void end_to_end(const sim::ClusterSpec& hw, const char* name,
                const model::GptConfig& m, int t, int p, std::int64_t n,
                std::int64_t B, double paper_unfused, double paper_fused) {
  core::ParallelConfig cfg;
  cfg.t = t;
  cfg.p = p;
  cfg.d = static_cast<int>(n / (static_cast<std::int64_t>(t) * p));
  cfg.b = 1;
  const auto unfused = sim::simulate_iteration(hw, m, cfg, B, {false, false});
  const auto fused = sim::simulate_iteration(hw, m, cfg, B, {true, false});
  std::printf("%-12s: %4.0f -> %4.0f TF/GPU (%+.0f%%)   paper: %3.0f -> %3.0f "
              "(%+.0f%%)\n",
              name, unfused.per_gpu_flops / 1e12, fused.per_gpu_flops / 1e12,
              100.0 * (fused.per_gpu_flops / unfused.per_gpu_flops - 1.0),
              paper_unfused, paper_fused,
              100.0 * (paper_fused / paper_unfused - 1.0));
}

template <typename F>
double time_ms(F&& fn, int reps = 20) {
  fn();  // warm up
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) fn();
  return sw.elapsed_ms() / reps;
}

}  // namespace

int main() {
  bench::header("Section 5.8", "Fused operators");
  const auto hw = sim::ClusterSpec::selene();

  std::printf("End-to-end (cost model):\n");
  end_to_end(hw, "GPT-3 175B", bench::gpt(96, 12288, 96), 8, 12, 384, 1536, 113,
             135);
  end_to_end(hw, "GPT 530B", bench::gpt(105, 20480, 128), 8, 35, 2240, 2240, 133,
             148);

  std::printf("\nReal CPU kernels (this library's fused implementations):\n");
  Rng rng(7);
  const std::int64_t rows = 512, cols = 1024;
  tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng);
  tensor::Tensor bias = tensor::Tensor::randn({cols}, rng);
  tensor::Tensor resid = tensor::Tensor::randn({rows, cols}, rng);

  const double unfused_gelu =
      time_ms([&] { auto y = tensor::gelu(tensor::add_bias(x, bias)); });
  const double fused_gelu =
      time_ms([&] { auto y = tensor::fused_bias_gelu(x, bias); });
  std::printf("  bias+GeLU        : %6.3f ms -> %6.3f ms (%.2fx)\n", unfused_gelu,
              fused_gelu, unfused_gelu / fused_gelu);

  const double unfused_bda = time_ms([&] {
    tensor::Tensor mask;
    Rng r2(9);
    auto y = tensor::dropout(tensor::add_bias(x, bias), 0.1f, r2, mask);
    tensor::add_(y, resid);
  });
  const double fused_bda = time_ms([&] {
    tensor::Tensor mask;
    Rng r2(9);
    auto y = tensor::fused_bias_dropout_add(x, bias, resid, 0.1f, r2, mask);
  });
  std::printf("  bias+dropout+add : %6.3f ms -> %6.3f ms (%.2fx)\n", unfused_bda,
              fused_bda, unfused_bda / fused_bda);

  tensor::Tensor scores = tensor::Tensor::randn({16, 128, 128}, rng);
  const double composed_sm = time_ms([&] {
    // scale, explicit mask build once outside would be cheating — the
    // unfused path applies softmax then zeroes; emulate with generic ops.
    auto y = tensor::softmax_lastdim(tensor::scale(scores, 0.125f));
  });
  const double fused_sm = time_ms(
      [&] { auto y = tensor::fused_scale_causal_softmax(scores, 0.125f); });
  std::printf("  scale+mask+softmax: %6.3f ms -> %6.3f ms (%.2fx, and the fused "
              "kernel also applies causal masking)\n",
              composed_sm, fused_sm, composed_sm / fused_sm);

  // ---- three-way block benchmark: unfused / hand-fused / planner-fused ----
  model::GptConfig bc;
  bc.num_layers = 1;
  bc.hidden = 512;
  bc.heads = 8;
  bc.vocab = 1024;
  bc.seq = 256;
  bc.dropout = 0.1f;
  bc.seed = 11;
  const std::int64_t bb = 4;
  dist::Comm solo = dist::Comm::solo();
  model::TransformerLayer layer(bc, 0, solo);
  Rng brng(bc.seed, substream(1, 2));
  const tensor::Tensor bx = tensor::Tensor::randn({bc.seq, bb, bc.hidden}, brng);
  const tensor::Tensor bdy = tensor::Tensor::randn({bc.seq, bb, bc.hidden}, brng);

  graph::PlannerOptions unfused_opts;
  unfused_opts.fuse = false;
  const graph::LayerPlan unfused_plan =
      graph::build_layer_plan(bc, /*with_dropout=*/true, unfused_opts);
  const graph::ExecContext ctx{bc.seq, bb, /*mb_tag=*/1, bc.dropout};

  const int reps = 10;
  const double ms_unfused = time_ms(
      [&] {
        graph::Frame frame;
        frame.begin(unfused_plan, bx);
        (void)graph::SequentialExecutor::run_forward(unfused_plan, frame,
                                                     layer.binding(), ctx);
        (void)graph::SequentialExecutor::run_backward(unfused_plan, frame,
                                                      layer.binding(), ctx, bdy);
      },
      reps);
  const bool prev_enabled = graph::set_enabled(false);
  const double ms_hand = time_ms(
      [&] {
        model::LayerCache cache;
        (void)layer.forward(bx, cache, 1);
        (void)layer.backward(bdy, cache);
      },
      reps);
  graph::set_enabled(true);
  const double ms_planner = time_ms(
      [&] {
        model::LayerCache cache;
        (void)layer.forward(bx, cache, 1);
        (void)layer.backward(bdy, cache);
      },
      reps);
  graph::set_enabled(prev_enabled);

  std::printf("\nTransformer block fwd+bwd (s=%lld b=%lld h=%lld, dropout on):\n",
              static_cast<long long>(bc.seq), static_cast<long long>(bb),
              static_cast<long long>(bc.hidden));
  std::printf("  unfused plan     : %7.3f ms\n", ms_unfused);
  std::printf("  hand-fused eager : %7.3f ms (%.2fx vs unfused)\n", ms_hand,
              ms_unfused / ms_hand);
  std::printf("  planner-fused    : %7.3f ms (%.2fx vs unfused, %.2fx vs hand)\n",
              ms_planner, ms_unfused / ms_planner, ms_hand / ms_planner);

  std::FILE* f = std::fopen("BENCH_graph_fusion.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_graph_fusion.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sec58_fused_operators\",\n");
  std::fprintf(f,
               "  \"config\": {\"hidden\": %lld, \"heads\": %lld, \"seq\": %lld, "
               "\"b\": %lld, \"dropout\": 0.1, \"reps\": %d},\n",
               static_cast<long long>(bc.hidden), static_cast<long long>(bc.heads),
               static_cast<long long>(bc.seq), static_cast<long long>(bb), reps);
  std::fprintf(f, "  \"block_fwd_bwd_ms\": {\n");
  std::fprintf(f, "    \"unfused\": %.4f,\n", ms_unfused);
  std::fprintf(f, "    \"hand_fused\": %.4f,\n", ms_hand);
  std::fprintf(f, "    \"planner_fused\": %.4f\n  },\n", ms_planner);
  std::fprintf(f, "  \"speedup\": {\"hand_vs_unfused\": %.4f, "
                  "\"planner_vs_unfused\": %.4f, \"planner_vs_hand\": %.4f},\n",
               ms_unfused / ms_hand, ms_unfused / ms_planner, ms_hand / ms_planner);
  std::fprintf(f, "  \"kernel_ms\": {\"bias_gelu\": [%.4f, %.4f], "
                  "\"bias_dropout_add\": [%.4f, %.4f], "
                  "\"scale_softmax\": [%.4f, %.4f]}\n}\n",
               unfused_gelu, fused_gelu, unfused_bda, fused_bda, composed_sm,
               fused_sm);
  std::fclose(f);
  std::printf("wrote BENCH_graph_fusion.json\n");
  return 0;
}
