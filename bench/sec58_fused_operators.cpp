// §5.8: operator fusion impact. The paper reports +19% end-to-end for
// GPT-3 175B (113 -> 135 TFLOP/s per GPU) and +11% for the 530B model
// (133 -> 148). We run the same end-to-end configurations with the fused
// kernels toggled in the cost model, and additionally measure the *real*
// CPU fused kernels against their unfused compositions.

#include "bench_util.hpp"

#include "ptdp/runtime/stopwatch.hpp"
#include "ptdp/tensor/ops.hpp"

using namespace ptdp;

namespace {

void end_to_end(const sim::ClusterSpec& hw, const char* name,
                const model::GptConfig& m, int t, int p, std::int64_t n,
                std::int64_t B, double paper_unfused, double paper_fused) {
  core::ParallelConfig cfg;
  cfg.t = t;
  cfg.p = p;
  cfg.d = static_cast<int>(n / (static_cast<std::int64_t>(t) * p));
  cfg.b = 1;
  const auto unfused = sim::simulate_iteration(hw, m, cfg, B, {false, false});
  const auto fused = sim::simulate_iteration(hw, m, cfg, B, {true, false});
  std::printf("%-12s: %4.0f -> %4.0f TF/GPU (%+.0f%%)   paper: %3.0f -> %3.0f "
              "(%+.0f%%)\n",
              name, unfused.per_gpu_flops / 1e12, fused.per_gpu_flops / 1e12,
              100.0 * (fused.per_gpu_flops / unfused.per_gpu_flops - 1.0),
              paper_unfused, paper_fused,
              100.0 * (paper_fused / paper_unfused - 1.0));
}

template <typename F>
double time_ms(F&& fn, int reps = 20) {
  fn();  // warm up
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) fn();
  return sw.elapsed_ms() / reps;
}

}  // namespace

int main() {
  bench::header("Section 5.8", "Fused operators");
  const auto hw = sim::ClusterSpec::selene();

  std::printf("End-to-end (cost model):\n");
  end_to_end(hw, "GPT-3 175B", bench::gpt(96, 12288, 96), 8, 12, 384, 1536, 113,
             135);
  end_to_end(hw, "GPT 530B", bench::gpt(105, 20480, 128), 8, 35, 2240, 2240, 133,
             148);

  std::printf("\nReal CPU kernels (this library's fused implementations):\n");
  Rng rng(7);
  const std::int64_t rows = 512, cols = 1024;
  tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng);
  tensor::Tensor bias = tensor::Tensor::randn({cols}, rng);
  tensor::Tensor resid = tensor::Tensor::randn({rows, cols}, rng);

  const double unfused_gelu =
      time_ms([&] { auto y = tensor::gelu(tensor::add_bias(x, bias)); });
  const double fused_gelu =
      time_ms([&] { auto y = tensor::fused_bias_gelu(x, bias); });
  std::printf("  bias+GeLU        : %6.3f ms -> %6.3f ms (%.2fx)\n", unfused_gelu,
              fused_gelu, unfused_gelu / fused_gelu);

  const double unfused_bda = time_ms([&] {
    tensor::Tensor mask;
    Rng r2(9);
    auto y = tensor::dropout(tensor::add_bias(x, bias), 0.1f, r2, mask);
    tensor::add_(y, resid);
  });
  const double fused_bda = time_ms([&] {
    tensor::Tensor mask;
    Rng r2(9);
    auto y = tensor::fused_bias_dropout_add(x, bias, resid, 0.1f, r2, mask);
  });
  std::printf("  bias+dropout+add : %6.3f ms -> %6.3f ms (%.2fx)\n", unfused_bda,
              fused_bda, unfused_bda / fused_bda);

  tensor::Tensor scores = tensor::Tensor::randn({16, 128, 128}, rng);
  const double composed_sm = time_ms([&] {
    // scale, explicit mask build once outside would be cheating — the
    // unfused path applies softmax then zeroes; emulate with generic ops.
    auto y = tensor::softmax_lastdim(tensor::scale(scores, 0.125f));
  });
  const double fused_sm = time_ms(
      [&] { auto y = tensor::fused_scale_causal_softmax(scores, 0.125f); });
  std::printf("  scale+mask+softmax: %6.3f ms -> %6.3f ms (%.2fx, and the fused "
              "kernel also applies causal masking)\n",
              composed_sm, fused_sm, composed_sm / fused_sm);
  return 0;
}
