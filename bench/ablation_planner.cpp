// Ablation: how much do the paper's heuristics (Takeaways #1-#3) matter?
// For several model/cluster points, compare the planner's choice against
// deliberately-degraded strategies: tensor-parallel-only (Megatron v1),
// pipeline-only (PipeDream-style), data-parallel-only (where it fits), and
// an untuned microbatch. This quantifies the paper's claim that
// "sub-optimal combinations ... can lead to up to 2x lower throughput."

#include "bench_util.hpp"

#include "ptdp/core/planner.hpp"

using namespace ptdp;

namespace {

void evaluate(const sim::ClusterSpec& hw, const char* label,
              const model::GptConfig& m, const core::ParallelConfig& cfg,
              std::int64_t B, double best_tf) {
  const auto res = sim::simulate_iteration(hw, m, cfg, B);
  if (res.oom) {
    std::printf("  %-28s -> OOM (%.0f GB)\n", label, res.memory_bytes / 1e9);
  } else {
    std::printf("  %-28s -> %4.0f TF/GPU (%.2fx below tuned)\n", label,
                res.per_gpu_flops / 1e12, best_tf / (res.per_gpu_flops / 1e12));
  }
}

}  // namespace

int main() {
  bench::header("Ablation", "Heuristic vs degraded parallelization strategies");
  const auto hw = sim::ClusterSpec::selene();

  struct Case {
    const char* name;
    model::GptConfig m;
    std::int64_t n, B;
  };
  const Case cases[] = {
      {"39B on 512 GPUs", bench::gpt(48, 8192, 64), 512, 1536},
      {"162B on 64 GPUs", bench::gpt(32, 20480, 128), 64, 128},
  };

  for (const Case& c : cases) {
    core::PlannerInput input;
    input.model = c.m;
    input.n_gpus = c.n;
    input.global_batch = c.B;
    const auto plan =
        core::plan_configuration(input, sim::make_throughput_model(hw));
    const auto best = sim::simulate_iteration(hw, c.m, plan.best.config, c.B);
    const double best_tf = best.per_gpu_flops / 1e12;
    std::printf("\n%s — tuned %s: %.0f TF/GPU\n", c.name,
                plan.best.config.str().c_str(), best_tf);

    // Tensor-parallel as wide as divisibility allows (ignores Takeaway #1).
    {
      core::ParallelConfig cfg;
      cfg.t = static_cast<int>(std::min<std::int64_t>(c.n, 32));
      while (c.m.heads % cfg.t != 0 || c.n % cfg.t != 0) cfg.t /= 2;
      cfg.d = static_cast<int>(c.n / cfg.t);
      cfg.b = 1;
      if (c.B % cfg.d == 0) {
        evaluate(hw, "tensor-only (wide t)", c.m, cfg, c.B, best_tf);
      }
    }
    // Pipeline-only (ignores the bubble cost of deep pipelines): deepest
    // pipeline that divides both the layer count and the GPU count.
    {
      core::ParallelConfig cfg;
      cfg.p = 1;
      for (int p = static_cast<int>(std::min<std::int64_t>(c.m.num_layers, 64));
           p >= 2; --p) {
        if (c.m.num_layers % p == 0 && c.n % p == 0) {
          cfg.p = p;
          break;
        }
      }
      cfg.d = static_cast<int>(c.n / cfg.p);
      cfg.b = 1;
      if (cfg.p > 1 && c.B % cfg.d == 0) {
        evaluate(hw, "pipeline-only (deep p)", c.m, cfg, c.B, best_tf);
      }
    }
    // Data-parallel only (no model parallelism — may not fit).
    {
      core::ParallelConfig cfg;
      cfg.d = static_cast<int>(c.n);
      cfg.b = 1;
      if (c.B % cfg.d == 0) {
        evaluate(hw, "data-only (ZeRO-less DP)", c.m, cfg, c.B, best_tf);
      }
    }
    // Tuned (p,t,d) but the *wrong* microbatch (ignores Takeaway #3).
    {
      core::ParallelConfig cfg = plan.best.config;
      cfg.b = cfg.b == 1 ? 8 : 1;
      if (c.B % (cfg.b * cfg.d) == 0) {
        if (cfg.schedule == pipeline::ScheduleType::kInterleaved &&
            cfg.microbatches(c.B) % cfg.p != 0) {
          cfg.v = 1;
          cfg.schedule = pipeline::ScheduleType::kOneFOneB;
        }
        evaluate(hw, "tuned grid, untuned b", c.m, cfg, c.B, best_tf);
      }
    }
  }
  std::printf("\nPaper: sub-optimal combinations of tensor and pipeline "
              "parallelism can cost up to 2x, even on fast interconnects.\n");
  return 0;
}
