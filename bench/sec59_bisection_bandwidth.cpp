// §5.9: effective bisection bandwidth on the trillion-parameter run
// (3072 GPUs): the paper observes 892 GB/s for pipeline point-to-point
// traffic and 12.9 TB/s for the data-parallel all-reduce. We compute the
// same quantities from the network model and the 1T configuration.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Section 5.9", "Effective bisection bandwidth (1T model, 3072 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(128, 25600, 160);
  core::ParallelConfig cfg;
  cfg.t = 8;
  cfg.p = 64;
  cfg.d = 6;
  cfg.b = 1;
  cfg.v = 2;
  cfg.schedule = pipeline::ScheduleType::kInterleaved;
  cfg.scatter_gather = true;
  const std::int64_t B = 3072;
  const auto res = sim::simulate_iteration(hw, m, cfg, B);

  // Pipeline p2p across the bisection: cutting the pipeline in half severs
  // t*d GPU pairs. The paper reports the *effective* bisection bandwidth —
  // the achieved rate while transfers are in flight — so divide each
  // transfer's payload by its transfer time, summed over severed pairs.
  const double pairs = static_cast<double>(cfg.t) * cfg.d;
  // With scatter/gather each severed pair carries 1/t of the activation
  // over its own InfiniBand link; the effective bisection bandwidth is the
  // aggregate achieved IB rate while those transfers are in flight.
  const double wire_bytes =
      static_cast<double>(cfg.b) * m.seq * m.hidden * 2.0 / cfg.t;
  const double per_pair_rate =
      wire_bytes / sim::p2p_time(hw, wire_bytes, /*cross_node=*/true);
  const double p2p_bisection = pairs * per_pair_rate;
  std::printf("pipeline p2p effective bisection: %6.0f GB/s   (paper: 892 GB/s)\n",
              p2p_bisection / 1e9);

  // Data-parallel all-reduce: every GPU moves 2(d-1)/d of its grads through
  // the ring during the dp window; half the ring traffic crosses any
  // bisection of the d-group; aggregate over all t*p groups.
  const double grads = core::params_per_gpu(m, cfg) * 4.0;
  const double ring_bytes = 2.0 * (static_cast<double>(cfg.d - 1) / cfg.d) * grads;
  const double groups = static_cast<double>(cfg.t) * cfg.p;
  const double ar_bisection =
      groups * (static_cast<double>(cfg.d) / 2.0) * ring_bytes /
      (res.dp_comm_seconds > 0 ? res.dp_comm_seconds : 1.0) / cfg.d * 2.0;
  std::printf("data-parallel all-reduce bisection: %6.1f TB/s  (paper: 12.9 TB/s)\n",
              ar_bisection / 1e12);

  std::printf("\niteration %.1f s: pipeline makespan %.1f s, dp all-reduce %.2f s\n",
              res.iteration_seconds, res.pipeline_makespan, res.dp_comm_seconds);
  std::printf("Shape check: p2p bisection O(10^2) GB/s, all-reduce bisection "
              "O(10) TB/s — the two-orders-of-magnitude gap the paper exploits "
              "by keeping all-reduces on fast links.\n");
  return 0;
}
