// Continuous-batching serving benchmark (DESIGN.md §16): a closed-loop,
// seeded load generator (64 simulated users) drives the ServeEngine over a
// small randomly-initialized GPT and we measure what a serving stack is
// judged on — sustained token throughput, time-to-first-token, and
// per-token (inter-token) latency at p50/p95/p99 — under two KV budgets:
// "steady" (capacity ample: pure continuous batching, no preemption) and
// "pressure" (capacity ~1/4 of peak demand: eviction/re-admission churn).
//
// The sweep runs once per weight dtype (f32 / bf16 / int8 / q4 — restrict
// with --weight-dtype) so BENCH_serving.json records decode tok/s and TTFT
// per dtype side by side, plus a §17 decode comparison on a wider
// (bandwidth-bound) model that gates int8 at >= 1.3x f32 throughput with
// greedy output token-identical. Writes BENCH_serving.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/graph/passes.hpp"
#include "ptdp/runtime/stopwatch.hpp"
#include "ptdp/serve/loadgen.hpp"

using namespace ptdp;

namespace {

model::GptConfig small_config() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 64;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 64;
  c.dropout = 0.0f;
  c.seed = 7;
  return c;
}

struct Pct {
  double p50 = 0, p95 = 0, p99 = 0;
};

Pct percentiles(std::vector<double> v) {
  Pct p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(i, v.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

// A freshly initialized stage holding its weights in `dtype`. Same config
// and seed every time, so the f32 masters are identical across dtypes and
// the quantized runs are true requantizations of the same model.
std::unique_ptr<model::GptStage> make_stage(const model::GptConfig& base,
                                            const std::string& dtype,
                                            dist::Comm& comm,
                                            std::int64_t group_size = 64) {
  model::GptConfig c = base;
  if (dtype == "bf16") c.dtype = tensor::DType::kBf16;
  auto stage = std::make_unique<model::GptStage>(
      c, comm, model::StageSpec{true, true, 0, c.num_layers, false});
  if (dtype == "int8" || dtype == "q4") {
    graph::QuantPolicy policy;
    policy.kind =
        dtype == "q4" ? tensor::QuantKind::kQ4 : tensor::QuantKind::kInt8;
    policy.group_size = group_size;
    stage->quantize_for_serving(policy);
  }
  return stage;
}

struct ScenarioResult {
  const char* name = "";
  std::string weight_dtype = "f32";
  std::int64_t capacity_blocks = 0;
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  std::int64_t steps = 0;
  std::int64_t peak_running = 0;
  std::int64_t preemptions = 0;
  double wall_s = 0;
  double tokens_per_s = 0;
  Pct ttft_ms, tbt_ms, e2e_ms;
};

ScenarioResult run_scenario(const char* name, model::GptStage& stage,
                            std::int64_t capacity_blocks,
                            double sampled_fraction = 0.5) {
  serve::EngineOptions eo;
  eo.block_tokens = 8;
  eo.capacity_blocks = capacity_blocks;
  eo.max_batch_tokens = 160;
  eo.prefill_chunk = 16;
  eo.max_running = 80;
  eo.record_metrics = false;  // pure timing run
  serve::ServeEngine engine(stage, eo);

  serve::LoadGenOptions lo;
  lo.users = 64;
  lo.requests_per_user = 3;
  lo.prompt_min = 4;
  lo.prompt_max = 16;
  lo.max_new_min = 16;
  lo.max_new_max = 32;
  lo.think_steps_max = 2;
  lo.window = stage.config().seq;
  lo.vocab = stage.config().vocab;
  lo.sampled_fraction = sampled_fraction;
  lo.seed = 13;
  serve::LoadGen lg(lo);

  const std::int64_t t0 = steady_now_ns();
  std::int64_t step = 0;
  while (!lg.done()) {
    PTDP_CHECK_LT(step, 200000)
        << "serving loop did not drain: waiting " << engine.waiting()
        << " running " << engine.running() << " outstanding "
        << lg.outstanding() << " submitted " << lg.submitted() << " completed "
        << engine.stats().completed << " free blocks "
        << engine.kv().free_blocks();
    lg.tick(step, engine);
    const auto done = engine.step();
    lg.on_finished(done, step);
    ++step;
  }

  ScenarioResult r;
  r.name = name;
  r.capacity_blocks = capacity_blocks;
  r.wall_s = static_cast<double>(steady_now_ns() - t0) / 1e9;
  r.requests = static_cast<std::int64_t>(lg.finished().size());
  r.steps = engine.stats().steps;
  r.peak_running = engine.stats().peak_running;
  r.preemptions = engine.stats().preemptions;
  std::vector<double> ttft, tbt, e2e;
  for (const auto& fin : lg.finished()) {
    r.tokens += static_cast<std::int64_t>(fin.tokens.size());
    if (!fin.token_ms.empty()) ttft.push_back(fin.first_token_ms - fin.submit_ms);
    for (std::size_t i = 1; i < fin.token_ms.size(); ++i) {
      tbt.push_back(fin.token_ms[i] - fin.token_ms[i - 1]);
    }
    e2e.push_back(fin.finish_ms - fin.submit_ms);
  }
  r.tokens_per_s = static_cast<double>(r.tokens) / r.wall_s;
  r.ttft_ms = percentiles(std::move(ttft));
  r.tbt_ms = percentiles(std::move(tbt));
  r.e2e_ms = percentiles(std::move(e2e));
  return r;
}

void print_row(const ScenarioResult& r) {
  std::printf("%-4s %-9s cap=%4lld  %4lld req %6lld tok  %7.0f tok/s  peak %2lld seq"
              "  %4lld evict  ttft p50/p95/p99 %.2f/%.2f/%.2f ms"
              "  tbt %.2f/%.2f/%.2f ms\n",
              r.weight_dtype.c_str(), r.name,
              static_cast<long long>(r.capacity_blocks),
              static_cast<long long>(r.requests),
              static_cast<long long>(r.tokens), r.tokens_per_s,
              static_cast<long long>(r.peak_running),
              static_cast<long long>(r.preemptions), r.ttft_ms.p50,
              r.ttft_ms.p95, r.ttft_ms.p99, r.tbt_ms.p50, r.tbt_ms.p95,
              r.tbt_ms.p99);
}

void write_scenario(std::FILE* f, const ScenarioResult& r, bool last) {
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", r.name);
  std::fprintf(f, "      \"weight_dtype\": \"%s\",\n", r.weight_dtype.c_str());
  std::fprintf(f, "      \"capacity_blocks\": %lld,\n",
               static_cast<long long>(r.capacity_blocks));
  std::fprintf(f, "      \"requests\": %lld,\n",
               static_cast<long long>(r.requests));
  std::fprintf(f, "      \"generated_tokens\": %lld,\n",
               static_cast<long long>(r.tokens));
  std::fprintf(f, "      \"engine_steps\": %lld,\n",
               static_cast<long long>(r.steps));
  std::fprintf(f, "      \"peak_concurrent_sequences\": %lld,\n",
               static_cast<long long>(r.peak_running));
  std::fprintf(f, "      \"preemptions\": %lld,\n",
               static_cast<long long>(r.preemptions));
  std::fprintf(f, "      \"wall_s\": %.4f,\n", r.wall_s);
  std::fprintf(f, "      \"tokens_per_s\": %.1f,\n", r.tokens_per_s);
  std::fprintf(f,
               "      \"ttft_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
               r.ttft_ms.p50, r.ttft_ms.p95, r.ttft_ms.p99);
  std::fprintf(f,
               "      \"per_token_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
               r.tbt_ms.p50, r.tbt_ms.p95, r.tbt_ms.p99);
  std::fprintf(f,
               "      \"e2e_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}\n",
               r.e2e_ms.p50, r.e2e_ms.p95, r.e2e_ms.p99);
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

// §17 decode comparison on a bandwidth-bound model (wider hidden, few
// users) where decode steps are dominated by streaming weights through
// small-m GEMMs: all-greedy load, f32 vs int8, gated on token-identical
// output and >= 1.3x throughput.
struct CompareResult {
  ScenarioResult f32, int8;
  double speedup = 0.0;
  bool token_identical = false;
};

CompareResult run_decode_comparison(dist::Comm& comm) {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 384;
  c.heads = 8;
  c.vocab = 64;
  c.seq = 96;
  c.dropout = 0.0f;
  c.seed = 7;
  std::printf("== decode dtype comparison, %lld-layer/%lld-hidden GPT, "
              "4 greedy users ==\n",
              static_cast<long long>(c.num_layers),
              static_cast<long long>(c.hidden));

  // Tight groups (16 rows per scale) halve the per-weight error twice over
  // the serving default: at this width the greedy argmax must not move, and
  // the scale reloads cost ~nothing against the payload stream.
  constexpr std::int64_t kCompareGroup = 16;
  auto run = [&](const std::string& dtype) {
    auto stage = make_stage(c, dtype, comm, kCompareGroup);
    serve::EngineOptions eo;
    eo.block_tokens = 8;
    eo.capacity_blocks = 256;
    eo.max_batch_tokens = 96;
    eo.prefill_chunk = 16;
    eo.max_running = 8;
    eo.record_metrics = false;
    serve::ServeEngine engine(*stage, eo);

    serve::LoadGenOptions lo;
    lo.users = 4;
    lo.requests_per_user = 2;
    lo.prompt_min = 8;
    lo.prompt_max = 16;
    lo.max_new_min = 24;
    lo.max_new_max = 32;
    lo.think_steps_max = 0;
    lo.window = c.seq;
    lo.vocab = c.vocab;
    lo.sampled_fraction = 0.0;  // greedy only: dtypes must agree token-for-token
    lo.seed = 17;
    serve::LoadGen lg(lo);

    const std::int64_t t0 = steady_now_ns();
    std::int64_t step = 0;
    while (!lg.done()) {
      PTDP_CHECK_LT(step, 200000) << "comparison loop did not drain";
      lg.tick(step, engine);
      const auto done = engine.step();
      lg.on_finished(done, step);
      ++step;
    }
    ScenarioResult r;
    r.name = "decode";
    r.weight_dtype = dtype;
    r.capacity_blocks = eo.capacity_blocks;
    r.wall_s = static_cast<double>(steady_now_ns() - t0) / 1e9;
    r.requests = static_cast<std::int64_t>(lg.finished().size());
    for (const auto& fin : lg.finished()) {
      r.tokens += static_cast<std::int64_t>(fin.tokens.size());
    }
    r.tokens_per_s = static_cast<double>(r.tokens) / r.wall_s;
    std::map<std::uint64_t, std::vector<std::int32_t>> by_id;
    for (const auto& fin : lg.finished()) by_id[fin.id] = fin.tokens;
    std::printf("%-4s decode   %4lld req %6lld tok  %7.0f tok/s  %.3f s\n",
                dtype.c_str(), static_cast<long long>(r.requests),
                static_cast<long long>(r.tokens), r.tokens_per_s, r.wall_s);
    return std::make_pair(r, by_id);
  };

  auto [f32_r, f32_tokens] = run("f32");
  auto [int8_r, int8_tokens] = run("int8");
  CompareResult cmp;
  cmp.f32 = f32_r;
  cmp.int8 = int8_r;
  cmp.speedup = int8_r.tokens_per_s / f32_r.tokens_per_s;
  cmp.token_identical = f32_tokens == int8_tokens;
  std::printf("int8 decode speedup vs f32: %.2fx, token-identical: %s\n",
              cmp.speedup, cmp.token_identical ? "yes" : "no");
  return cmp;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_dtype;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--weight-dtype") == 0 && i + 1 < argc) {
      only_dtype = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--weight-dtype f32|bf16|int8|q4]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<std::string> dtypes = {"f32", "bf16", "int8", "q4"};
  if (!only_dtype.empty()) {
    if (std::find(dtypes.begin(), dtypes.end(), only_dtype) == dtypes.end()) {
      std::fprintf(stderr, "unknown --weight-dtype '%s'\n", only_dtype.c_str());
      return 2;
    }
    dtypes = {only_dtype};
  }

  const model::GptConfig config = small_config();
  dist::Comm solo = dist::Comm::solo();
  std::printf("== continuous-batching serving, %lld-layer/%lld-hidden GPT, "
              "64 closed-loop users ==\n",
              static_cast<long long>(config.num_layers),
              static_cast<long long>(config.hidden));

  std::vector<ScenarioResult> results;
  for (const std::string& dtype : dtypes) {
    auto stage = make_stage(config, dtype, solo);
    // Ample KV: every live sequence fits (worst case 6 blocks x 80 running).
    ScenarioResult steady = run_scenario("steady", *stage, 512);
    steady.weight_dtype = dtype;
    print_row(steady);
    // Scarce KV: ~1/4 of peak demand; progress depends on eviction + resume.
    ScenarioResult pressure = run_scenario("pressure", *stage, 120);
    pressure.weight_dtype = dtype;
    print_row(pressure);

    if (steady.peak_running < 64) {
      std::fprintf(stderr,
                   "FAIL: %s steady scenario peaked at %lld concurrent "
                   "sequences (need >= 64)\n",
                   dtype.c_str(), static_cast<long long>(steady.peak_running));
      return 1;
    }
    if (pressure.preemptions == 0) {
      std::fprintf(stderr, "FAIL: %s pressure scenario never preempted\n",
                   dtype.c_str());
      return 1;
    }
    // Same seeded load, same model: eviction churn may change latency but
    // never content, so both scenarios must generate the same token total.
    if (pressure.tokens != steady.tokens) {
      std::fprintf(stderr,
                   "FAIL: %s pressure generated %lld tokens vs steady %lld — "
                   "preemption changed decode content\n",
                   dtype.c_str(), static_cast<long long>(pressure.tokens),
                   static_cast<long long>(steady.tokens));
      return 1;
    }
    results.push_back(std::move(steady));
    results.push_back(std::move(pressure));
  }

  // The §17 acceptance gate needs both dtypes, so it only runs on a full
  // sweep (no --weight-dtype restriction).
  CompareResult cmp;
  const bool ran_comparison = only_dtype.empty();
  if (ran_comparison) {
    cmp = run_decode_comparison(solo);
    if (!cmp.token_identical) {
      std::fprintf(stderr,
                   "FAIL: int8 greedy decode is not token-identical to f32\n");
      return 1;
    }
    if (cmp.speedup < 1.3) {
      std::fprintf(stderr, "FAIL: int8 decode speedup %.2fx < 1.3x\n",
                   cmp.speedup);
      return 1;
    }
  }

  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"sec_serving\",\n");
    std::fprintf(f, "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
                 "\"heads\": %lld, \"vocab\": %lld, \"seq\": %lld},\n",
                 static_cast<long long>(config.num_layers),
                 static_cast<long long>(config.hidden),
                 static_cast<long long>(config.heads),
                 static_cast<long long>(config.vocab),
                 static_cast<long long>(config.seq));
    std::fprintf(f, "  \"users\": 64,\n");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      write_scenario(f, results[i], i + 1 == results.size());
    }
    if (ran_comparison) {
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"decode_dtype_comparison\": {\n");
      std::fprintf(f, "    \"model\": {\"layers\": 2, \"hidden\": 384, "
                   "\"heads\": 8, \"vocab\": 64, \"seq\": 96},\n");
      std::fprintf(f, "    \"users\": 4,\n");
      std::fprintf(f, "    \"sampling\": \"greedy\",\n");
      std::fprintf(f, "    \"int8_group_size\": 16,\n");
      std::fprintf(f, "    \"f32_tokens_per_s\": %.1f,\n", cmp.f32.tokens_per_s);
      std::fprintf(f, "    \"int8_tokens_per_s\": %.1f,\n",
                   cmp.int8.tokens_per_s);
      std::fprintf(f, "    \"int8_decode_speedup_vs_f32\": %.2f,\n",
                   cmp.speedup);
      std::fprintf(f, "    \"token_identical\": %s\n",
                   cmp.token_identical ? "true" : "false");
      std::fprintf(f, "  }\n}\n");
    } else {
      std::fprintf(f, "  ]\n}\n");
    }
    std::fclose(f);
    std::printf("wrote BENCH_serving.json\n");
  }
  return 0;
}
