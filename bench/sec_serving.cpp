// Continuous-batching serving benchmark (DESIGN.md §16): a closed-loop,
// seeded load generator (64 simulated users) drives the ServeEngine over a
// small randomly-initialized GPT and we measure what a serving stack is
// judged on — sustained token throughput, time-to-first-token, and
// per-token (inter-token) latency at p50/p95/p99 — under two KV budgets:
// "steady" (capacity ample: pure continuous batching, no preemption) and
// "pressure" (capacity ~1/4 of peak demand: eviction/re-admission churn).
// Writes BENCH_serving.json.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ptdp/runtime/stopwatch.hpp"
#include "ptdp/serve/loadgen.hpp"

using namespace ptdp;

namespace {

model::GptConfig small_config() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 64;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 64;
  c.dropout = 0.0f;
  c.seed = 7;
  return c;
}

struct Pct {
  double p50 = 0, p95 = 0, p99 = 0;
};

Pct percentiles(std::vector<double> v) {
  Pct p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(i, v.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct ScenarioResult {
  const char* name = "";
  std::int64_t capacity_blocks = 0;
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  std::int64_t steps = 0;
  std::int64_t peak_running = 0;
  std::int64_t preemptions = 0;
  double wall_s = 0;
  double tokens_per_s = 0;
  Pct ttft_ms, tbt_ms, e2e_ms;
};

ScenarioResult run_scenario(const char* name, model::GptStage& stage,
                            std::int64_t capacity_blocks) {
  serve::EngineOptions eo;
  eo.block_tokens = 8;
  eo.capacity_blocks = capacity_blocks;
  eo.max_batch_tokens = 160;
  eo.prefill_chunk = 16;
  eo.max_running = 80;
  eo.record_metrics = false;  // pure timing run
  serve::ServeEngine engine(stage, eo);

  serve::LoadGenOptions lo;
  lo.users = 64;
  lo.requests_per_user = 3;
  lo.prompt_min = 4;
  lo.prompt_max = 16;
  lo.max_new_min = 16;
  lo.max_new_max = 32;
  lo.think_steps_max = 2;
  lo.window = stage.config().seq;
  lo.vocab = stage.config().vocab;
  lo.seed = 13;
  serve::LoadGen lg(lo);

  const std::int64_t t0 = steady_now_ns();
  std::int64_t step = 0;
  while (!lg.done()) {
    PTDP_CHECK_LT(step, 200000)
        << "serving loop did not drain: waiting " << engine.waiting()
        << " running " << engine.running() << " outstanding "
        << lg.outstanding() << " submitted " << lg.submitted() << " completed "
        << engine.stats().completed << " free blocks "
        << engine.kv().free_blocks();
    lg.tick(step, engine);
    const auto done = engine.step();
    lg.on_finished(done, step);
    ++step;
  }

  ScenarioResult r;
  r.name = name;
  r.capacity_blocks = capacity_blocks;
  r.wall_s = static_cast<double>(steady_now_ns() - t0) / 1e9;
  r.requests = static_cast<std::int64_t>(lg.finished().size());
  r.steps = engine.stats().steps;
  r.peak_running = engine.stats().peak_running;
  r.preemptions = engine.stats().preemptions;
  std::vector<double> ttft, tbt, e2e;
  for (const auto& fin : lg.finished()) {
    r.tokens += static_cast<std::int64_t>(fin.tokens.size());
    if (!fin.token_ms.empty()) ttft.push_back(fin.first_token_ms - fin.submit_ms);
    for (std::size_t i = 1; i < fin.token_ms.size(); ++i) {
      tbt.push_back(fin.token_ms[i] - fin.token_ms[i - 1]);
    }
    e2e.push_back(fin.finish_ms - fin.submit_ms);
  }
  r.tokens_per_s = static_cast<double>(r.tokens) / r.wall_s;
  r.ttft_ms = percentiles(std::move(ttft));
  r.tbt_ms = percentiles(std::move(tbt));
  r.e2e_ms = percentiles(std::move(e2e));
  return r;
}

void print_row(const ScenarioResult& r) {
  std::printf("%-9s cap=%4lld  %4lld req %6lld tok  %7.0f tok/s  peak %2lld seq"
              "  %4lld evict  ttft p50/p95/p99 %.2f/%.2f/%.2f ms"
              "  tbt %.2f/%.2f/%.2f ms\n",
              r.name, static_cast<long long>(r.capacity_blocks),
              static_cast<long long>(r.requests),
              static_cast<long long>(r.tokens), r.tokens_per_s,
              static_cast<long long>(r.peak_running),
              static_cast<long long>(r.preemptions), r.ttft_ms.p50,
              r.ttft_ms.p95, r.ttft_ms.p99, r.tbt_ms.p50, r.tbt_ms.p95,
              r.tbt_ms.p99);
}

void write_scenario(std::FILE* f, const ScenarioResult& r, bool last) {
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", r.name);
  std::fprintf(f, "      \"capacity_blocks\": %lld,\n",
               static_cast<long long>(r.capacity_blocks));
  std::fprintf(f, "      \"requests\": %lld,\n",
               static_cast<long long>(r.requests));
  std::fprintf(f, "      \"generated_tokens\": %lld,\n",
               static_cast<long long>(r.tokens));
  std::fprintf(f, "      \"engine_steps\": %lld,\n",
               static_cast<long long>(r.steps));
  std::fprintf(f, "      \"peak_concurrent_sequences\": %lld,\n",
               static_cast<long long>(r.peak_running));
  std::fprintf(f, "      \"preemptions\": %lld,\n",
               static_cast<long long>(r.preemptions));
  std::fprintf(f, "      \"wall_s\": %.4f,\n", r.wall_s);
  std::fprintf(f, "      \"tokens_per_s\": %.1f,\n", r.tokens_per_s);
  std::fprintf(f,
               "      \"ttft_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
               r.ttft_ms.p50, r.ttft_ms.p95, r.ttft_ms.p99);
  std::fprintf(f,
               "      \"per_token_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
               r.tbt_ms.p50, r.tbt_ms.p95, r.tbt_ms.p99);
  std::fprintf(f,
               "      \"e2e_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}\n",
               r.e2e_ms.p50, r.e2e_ms.p95, r.e2e_ms.p99);
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const model::GptConfig config = small_config();
  dist::Comm solo = dist::Comm::solo();
  model::GptStage stage(config, solo,
                        model::StageSpec{true, true, 0, config.num_layers, false});
  std::printf("== continuous-batching serving, %lld-layer/%lld-hidden GPT, "
              "64 closed-loop users ==\n",
              static_cast<long long>(config.num_layers),
              static_cast<long long>(config.hidden));

  // Ample KV: every live sequence fits (worst case 6 blocks x 80 running).
  const ScenarioResult steady = run_scenario("steady", stage, 512);
  print_row(steady);
  // Scarce KV: ~1/4 of peak demand; progress depends on eviction + resume.
  const ScenarioResult pressure = run_scenario("pressure", stage, 120);
  print_row(pressure);

  if (steady.peak_running < 64) {
    std::fprintf(stderr,
                 "FAIL: steady scenario peaked at %lld concurrent sequences "
                 "(need >= 64)\n",
                 static_cast<long long>(steady.peak_running));
    return 1;
  }
  if (pressure.preemptions == 0) {
    std::fprintf(stderr, "FAIL: pressure scenario never preempted\n");
    return 1;
  }
  // Same seeded load, same model: eviction churn may change latency but
  // never content, so both scenarios must generate the same token total.
  if (pressure.tokens != steady.tokens) {
    std::fprintf(stderr,
                 "FAIL: pressure generated %lld tokens vs steady %lld — "
                 "preemption changed decode content\n",
                 static_cast<long long>(pressure.tokens),
                 static_cast<long long>(steady.tokens));
    return 1;
  }

  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"sec_serving\",\n");
    std::fprintf(f, "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
                 "\"heads\": %lld, \"vocab\": %lld, \"seq\": %lld},\n",
                 static_cast<long long>(config.num_layers),
                 static_cast<long long>(config.hidden),
                 static_cast<long long>(config.heads),
                 static_cast<long long>(config.vocab),
                 static_cast<long long>(config.seq));
    std::fprintf(f, "  \"users\": 64,\n");
    std::fprintf(f, "  \"scenarios\": [\n");
    write_scenario(f, steady, false);
    write_scenario(f, pressure, true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_serving.json\n");
  }
  return 0;
}
