// Figure 17: throughput in sequences/second with and without activation
// recomputation for a 145B GPT model (80 layers, 96 heads, hidden 12288)
// on 128 GPUs, (t, p) = (8, 16). Without recomputation large batches run
// out of memory; with it, large batches reach ~2x the best non-recompute
// throughput thanks to a smaller bubble.
//
// Part 2 measures the same §3.5 tradeoff empirically: a real (p = 2)
// pipeline run on the CPU substrate, with the ptdp::mem allocator's
// byte-exact accounting reporting each rank's peak live tensor bytes per
// step. Recompute must shrink the measured peak (activation stashes
// collapse to layer inputs), in the direction the analytic model predicts.

#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "ptdp/core/analytics.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

using namespace ptdp;

namespace {

// Max-over-ranks measured peak step bytes for a small real training run.
std::int64_t measured_peak_bytes(bool recompute) {
  model::GptConfig c;
  c.num_layers = 8;
  c.hidden = 64;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 32;
  c.dropout = 0.0f;
  c.seed = 2024;
  const std::int64_t B = 8, b = 1;

  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(4000), c.seq);

  constexpr int kRanks = 2;
  std::vector<std::int64_t> peaks(kRanks, 0);
  dist::World world(kRanks);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = 2;
    options.parallel.b = b;
    options.parallel.recompute = recompute;
    options.global_batch = B;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.01f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, B, b, 1, 0, /*seed=*/88);
    for (int s = 0; s < 2; ++s) {  // step 1 is the steady-state one
      auto mbs = loader.next_batch(s);
      engine.train_step(mbs);
    }
    peaks[static_cast<std::size_t>(comm.rank())] =
        engine.last_stats().peak_memory_bytes;
  });
  return *std::max_element(peaks.begin(), peaks.end());
}

}  // namespace

int main() {
  bench::header("Figure 17", "Activation recomputation (145B, 128 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(80, 12288, 96);
  std::printf("%6s | %16s %16s\n", "batch", "seq/s recompute", "seq/s stashed");
  double best_without = 0, best_with = 0;
  for (const std::int64_t B : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::printf("%6lld |", static_cast<long long>(B));
    for (const bool recompute : {true, false}) {
      core::ParallelConfig cfg;
      cfg.t = 8;
      cfg.p = 16;
      cfg.b = 1;
      cfg.recompute = recompute;
      const auto res = sim::simulate_iteration(hw, m, cfg, B);
      if (res.oom) {
        std::printf(" %16s", "OOM");
      } else {
        std::printf(" %16.2f", res.sequences_per_second);
        auto& best = recompute ? best_with : best_without;
        best = std::max(best, res.sequences_per_second);
      }
    }
    std::printf("\n");
  }
  std::printf("\nBest without recompute: %.2f seq/s; best with: %.2f seq/s "
              "(%.2fx)\n", best_without, best_with, best_with / best_without);
  std::printf("Shape check (paper): recompute ~33%% slower at tiny batches, "
              "but only recompute reaches large batches, peaking ~2x higher.\n");

  bench::header("Figure 17 (measured)",
                "Peak tensor bytes per rank, real p=2 run, pool accounting");
  const std::int64_t peak_stashed = measured_peak_bytes(/*recompute=*/false);
  const std::int64_t peak_recompute = measured_peak_bytes(/*recompute=*/true);
  std::printf("measured peak (stashed):   %10.2f MiB\n",
              static_cast<double>(peak_stashed) / (1024.0 * 1024.0));
  std::printf("measured peak (recompute): %10.2f MiB   (%.2fx smaller)\n",
              static_cast<double>(peak_recompute) / (1024.0 * 1024.0),
              static_cast<double>(peak_stashed) /
                  static_cast<double>(peak_recompute));

  // §3.5 analytic counterpart for the same small config: per-layer stash
  // bytes with and without recompute (the model counts activation elements;
  // absolute totals differ from the measured run, which also holds params,
  // grads, and transient kernel buffers — the direction and rough ratio of
  // the *activation* term is what must agree).
  model::GptConfig small;
  small.num_layers = 8;
  small.hidden = 64;
  small.heads = 4;
  small.vocab = 64;
  small.seq = 32;
  const double a_full = core::activation_bytes_per_layer(small, 1, false);
  const double a_ckpt = core::activation_bytes_per_layer(small, 1, true);
  std::printf("analytic per-layer stash:  full %.1f KiB vs recompute %.1f KiB "
              "(%.1fx smaller)\n",
              a_full / 1024.0, a_ckpt / 1024.0, a_full / a_ckpt);
  const bool direction_ok = peak_recompute < peak_stashed;
  std::printf("direction check: measured peak %s with recompute (analytic "
              "model predicts a decrease) -> %s\n",
              direction_ok ? "decreases" : "INCREASES",
              direction_ok ? "OK" : "MISMATCH");
  return direction_ok ? 0 : 1;
}
