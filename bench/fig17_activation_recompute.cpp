// Figure 17: throughput in sequences/second with and without activation
// recomputation for a 145B GPT model (80 layers, 96 heads, hidden 12288)
// on 128 GPUs, (t, p) = (8, 16). Without recomputation large batches run
// out of memory; with it, large batches reach ~2x the best non-recompute
// throughput thanks to a smaller bubble.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 17", "Activation recomputation (145B, 128 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(80, 12288, 96);
  std::printf("%6s | %16s %16s\n", "batch", "seq/s recompute", "seq/s stashed");
  double best_without = 0, best_with = 0;
  for (const std::int64_t B : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::printf("%6lld |", static_cast<long long>(B));
    for (const bool recompute : {true, false}) {
      core::ParallelConfig cfg;
      cfg.t = 8;
      cfg.p = 16;
      cfg.b = 1;
      cfg.recompute = recompute;
      const auto res = sim::simulate_iteration(hw, m, cfg, B);
      if (res.oom) {
        std::printf(" %16s", "OOM");
      } else {
        std::printf(" %16.2f", res.sequences_per_second);
        auto& best = recompute ? best_with : best_without;
        best = std::max(best, res.sequences_per_second);
      }
    }
    std::printf("\n");
  }
  std::printf("\nBest without recompute: %.2f seq/s; best with: %.2f seq/s "
              "(%.2fx)\n", best_without, best_with, best_with / best_without);
  std::printf("Shape check (paper): recompute ~33%% slower at tiny batches, "
              "but only recompute reaches large batches, peaking ~2x higher.\n");
  return 0;
}
