// Figure 18: per-GPU throughput with and without the scatter/gather
// communication optimization (§4.1) for GPT-3 175B on 96 GPUs with the
// interleaved schedule. The paper reports up to an 11% gain at
// communication-intensive (large-batch, interleaved) operating points.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 18", "Scatter/gather optimization (175B, 96 GPUs, interleaved)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(96, 12288, 96);
  std::printf("%6s | %14s %14s %8s\n", "batch", "unoptimized", "scatter/gather",
              "gain");
  for (const std::int64_t B : {12, 24, 36, 48, 60}) {
    double tf[2] = {0, 0};
    int i = 0;
    for (const bool sg : {false, true}) {
      core::ParallelConfig cfg;
      cfg.t = 8;
      cfg.p = 12;
      cfg.b = 1;
      cfg.v = 2;
      cfg.schedule = pipeline::ScheduleType::kInterleaved;
      cfg.scatter_gather = sg;
      const auto res =
          sim::simulate_iteration(hw, m, cfg, B, {true, /*check_memory=*/false});
      tf[i++] = res.per_gpu_flops / 1e12;
    }
    std::printf("%6lld | %11.0f TF %11.0f TF %+7.1f%%\n", static_cast<long long>(B),
                tf[0], tf[1], 100.0 * (tf[1] / tf[0] - 1.0));
  }
  std::printf("\nAlso: per-microbatch stage transfer %0.3f ms -> %0.3f ms\n",
              1e3 * sim::stage_transfer_time(
                        hw, m,
                        [] {
                          core::ParallelConfig c;
                          c.t = 8;
                          c.p = 12;
                          c.b = 1;
                          return c;
                        }()),
              1e3 * sim::stage_transfer_time(hw, m, [] {
                core::ParallelConfig c;
                c.t = 8;
                c.p = 12;
                c.b = 1;
                c.scatter_gather = true;
                return c;
              }()));
  std::printf("Shape check (paper): up to ~11%% throughput gain.\n");
  return 0;
}
