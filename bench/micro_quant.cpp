// Weight-only quantized GEMM benchmark (DESIGN.md §17): the decode-path
// shapes — 1×K @ K×N single-token and m=8 small-batch — where streaming
// fp32 weights is the bottleneck and int8/q4 payloads multiply effective
// memory bandwidth. Measures tensor::matmul (f32 baseline) against
// quant::matmul at int8 and q4, plus the per-group round-trip error
// harness, and writes BENCH_quant.json with the §17 acceptance ratios
// (int8 >= 2x, q4 >= 1.5x over f32 at the 1x4096 shape).
//
// Exits non-zero when an acceptance threshold fails so CI can gate on it.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "ptdp/quant/quant.hpp"
#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace {

using namespace ptdp;
using tensor::Tensor;

double time_best(const std::function<void()>& fn, int reps = 7) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct GemmRow {
  std::int64_t m, k, n;
  std::string op;  ///< "f32" | "int8" | "q4"
  double ms;
  double gflops;
  double speedup;  ///< vs the f32 matmul at the same shape
};

struct ErrRow {
  std::int64_t group;
  std::string kind;
  double max_abs_err;   ///< measured max |w - dequant(quant(w))|
  double bound;         ///< per-group guarantee: (max-min)/levels
};

// Repeat each timed GEMM enough times that tiny shapes aren't pure
// timer noise (a 1x1024 step runs in ~1 us).
int reps_for(std::int64_t flops) {
  return static_cast<int>(std::clamp<std::int64_t>((1 << 26) / std::max<std::int64_t>(flops, 1), 1, 512));
}

void bench_shape(std::int64_t m, std::int64_t k, std::int64_t n,
                 std::int64_t group, std::vector<GemmRow>& out) {
  Rng rng(23);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor w = Tensor::randn({k, n}, rng);
  const auto q8 = quant::quantize(w, tensor::QuantKind::kInt8, group);
  const auto q4 = quant::quantize(w, tensor::QuantKind::kQ4, group);
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  const int inner = reps_for(static_cast<std::int64_t>(flops));

  auto run = [&](const char* op, const std::function<void()>& fn) {
    const double secs = time_best(fn) / inner;
    out.push_back(GemmRow{m, k, n, op, secs * 1e3, flops / secs / 1e9, 0.0});
  };
  run("f32", [&] { for (int r = 0; r < inner; ++r) tensor::matmul(a, w); });
  run("int8", [&] { for (int r = 0; r < inner; ++r) quant::matmul(a, q8); });
  run("q4", [&] { for (int r = 0; r < inner; ++r) quant::matmul(a, q4); });

  const double f32_ms = out[out.size() - 3].ms;
  out[out.size() - 2].speedup = f32_ms / out[out.size() - 2].ms;
  out[out.size() - 1].speedup = f32_ms / out[out.size() - 1].ms;
}

void roundtrip_errors(std::vector<ErrRow>& out) {
  constexpr std::int64_t kK = 1024, kN = 256;
  Rng rng(29);
  Tensor w = Tensor::randn({kK, kN}, rng);
  const auto dw = w.data();
  for (const auto kind : {tensor::QuantKind::kInt8, tensor::QuantKind::kQ4}) {
    for (const std::int64_t group : {16LL, 64LL, 256LL}) {
      const auto q = quant::quantize(w, kind, group);
      const Tensor deq = quant::dequantize(q);
      const auto dd = deq.data();
      double max_err = 0.0;
      // The §17 bound is per group: error <= (max - min) / levels. Track
      // the loosest per-group bound alongside the measured max error.
      double bound = 0.0;
      const double levels = static_cast<double>(tensor::quant_levels(kind));
      for (std::int64_t j = 0; j < kN; ++j) {
        for (std::int64_t g0 = 0; g0 < kK; g0 += group) {
          float mn = dw[static_cast<std::size_t>(g0 * kN + j)];
          float mx = mn;
          for (std::int64_t i = g0; i < g0 + group; ++i) {
            const float v = dw[static_cast<std::size_t>(i * kN + j)];
            mn = std::min(mn, v);
            mx = std::max(mx, v);
            max_err = std::max(
                max_err, static_cast<double>(std::fabs(
                             v - dd[static_cast<std::size_t>(i * kN + j)])));
          }
          bound = std::max(bound, static_cast<double>(mx - mn) / levels);
        }
      }
      out.push_back(ErrRow{group, tensor::quant_kind_name(kind), max_err, bound});
    }
  }
}

void write_json(const std::vector<GemmRow>& rows, const std::vector<ErrRow>& errs,
                double int8_speedup_4096, double q4_speedup_4096) {
  std::FILE* f = std::fopen("BENCH_quant.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_quant.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_quant\",\n");
  std::fprintf(f, "  \"int8_speedup_vs_f32_1x4096\": %.2f,\n", int8_speedup_4096);
  std::fprintf(f, "  \"q4_speedup_vs_f32_1x4096\": %.2f,\n", q4_speedup_4096);
  std::fprintf(f, "  \"gemm\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GemmRow& r = rows[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
                 "\"ms\": %.4f, \"gflops\": %.2f, \"speedup_vs_f32\": %.2f}%s\n",
                 r.op.c_str(), static_cast<long long>(r.m),
                 static_cast<long long>(r.k), static_cast<long long>(r.n), r.ms,
                 r.gflops, r.speedup, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"roundtrip_error\": [\n");
  for (std::size_t i = 0; i < errs.size(); ++i) {
    const ErrRow& e = errs[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"group\": %lld, \"max_abs_err\": %.6g, "
                 "\"per_group_bound\": %.6g}%s\n",
                 e.kind.c_str(), static_cast<long long>(e.group), e.max_abs_err,
                 e.bound, i + 1 == errs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_quant.json (%zu gemm rows, %zu error rows)\n",
              rows.size(), errs.size());
}

}  // namespace

int main() {
  std::printf("quantized GEMM at decode shapes (group 64, %zu threads)\n",
              runtime::intra_op_threads());
  std::vector<GemmRow> rows;
  // Single-token decode (m=1) and small-batch decode (m=8) at transformer
  // widths; K=N keeps the table square like the micro_tensor_ops sweep.
  for (const std::int64_t kn : {1024LL, 2048LL, 4096LL}) {
    bench_shape(1, kn, kn, 64, rows);
  }
  bench_shape(8, 4096, 4096, 64, rows);

  std::printf("%4s %6s %6s %6s %10s %10s %8s\n", "op", "m", "k", "n", "ms",
              "GFLOP/s", "vs f32");
  for (const GemmRow& r : rows) {
    std::printf("%4s %6lld %6lld %6lld %10.4f %10.2f %7.2fx\n", r.op.c_str(),
                static_cast<long long>(r.m), static_cast<long long>(r.k),
                static_cast<long long>(r.n), r.ms, r.gflops, r.speedup);
  }

  std::vector<ErrRow> errs;
  roundtrip_errors(errs);
  std::printf("\nround-trip error, 1024x256 randn weight:\n");
  for (const ErrRow& e : errs) {
    std::printf("  %-4s group %-4lld max|err| %.6f (per-group bound %.6f)\n",
                e.kind.c_str(), static_cast<long long>(e.group), e.max_abs_err,
                e.bound);
  }

  double int8_speedup = 0.0, q4_speedup = 0.0;
  for (const GemmRow& r : rows) {
    if (r.m == 1 && r.k == 4096 && r.op == "int8") int8_speedup = r.speedup;
    if (r.m == 1 && r.k == 4096 && r.op == "q4") q4_speedup = r.speedup;
  }
  write_json(rows, errs, int8_speedup, q4_speedup);

  int failures = 0;
  if (int8_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: int8 1x4096 speedup %.2fx < 2.0x\n", int8_speedup);
    ++failures;
  }
  if (q4_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: q4 1x4096 speedup %.2fx < 1.5x\n", q4_speedup);
    ++failures;
  }
  for (const ErrRow& e : errs) {
    if (e.max_abs_err > e.bound) {
      std::fprintf(stderr, "FAIL: %s group %lld error %.6g exceeds bound %.6g\n",
                   e.kind.c_str(), static_cast<long long>(e.group), e.max_abs_err,
                   e.bound);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
