// Microbenchmark for the ptdp::mem pooled allocator (DESIGN.md §12).
// Measures alloc+free round-trip latency per size class with the pool on
// vs off, then a tensor-churn workload shaped like a training step
// (same-size buffers acquired and released repeatedly), and reports the
// steady-state hit rate and bytes recycled. Writes BENCH_allocator.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "ptdp/mem/pool.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace {

using namespace ptdp;
using tensor::Tensor;

double time_best(const std::function<void()>& fn, int reps = 5) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct LatencyRow {
  std::size_t floats;
  double pooled_ns;
  double heap_ns;
};

// Alloc+write-one-cacheline+free round trip, amortized over kInner calls.
// The single write keeps the compiler from eliding the allocation without
// turning the benchmark into a memset test.
double roundtrip_ns(std::size_t floats, bool pool_on) {
  mem::set_pool_enabled(pool_on);
  mem::trim_thread_cache();
  constexpr int kInner = 4096;
  const double secs = time_best([&] {
    for (int i = 0; i < kInner; ++i) {
      mem::Block b = mem::acquire(floats);
      b.data[0] = static_cast<float>(i);
      mem::release(b.data, b.capacity);
    }
  });
  return secs / kInner * 1e9;
}

struct ChurnResult {
  double pooled_ms;
  double heap_ms;
  double hit_rate;
  double bytes_recycled_mb;
  double heap_allocs_ratio;  ///< pooled heap allocs / unpooled heap allocs
};

// Training-step-shaped churn: a ring of "activation" tensors of layer-ish
// sizes allocated and dropped in order, many iterations. With the pool on,
// every iteration after the first is served from the free lists.
ChurnResult churn(bool measure_only = false) {
  (void)measure_only;
  const std::vector<std::int64_t> sizes = {6 * 1 * 512,  512 * 1536,
                                           6 * 6 * 64,   512 * 512,
                                           6 * 1 * 2048, 2048};
  constexpr int kIters = 200;
  auto run = [&] {
    for (int it = 0; it < kIters; ++it) {
      std::vector<Tensor> ring;
      ring.reserve(sizes.size());
      for (std::int64_t n : sizes) {
        Tensor t = Tensor::empty({n});
        t.data()[0] = static_cast<float>(it);
        ring.push_back(std::move(t));
      }
    }
  };

  ChurnResult r{};
  mem::set_pool_enabled(true);
  mem::trim_thread_cache();
  run();  // warm the pool
  const mem::PoolStats pooled_before = mem::thread_stats();
  r.pooled_ms = time_best(run) * 1e3;
  run();  // one extra measured-equivalent pass for stable counter deltas
  const mem::PoolStats pooled_after = mem::thread_stats();

  mem::set_pool_enabled(false);
  const mem::PoolStats heap_before = mem::thread_stats();
  r.heap_ms = time_best(run) * 1e3;
  run();
  const mem::PoolStats heap_after = mem::thread_stats();

  const auto p_acq = pooled_after.acquires - pooled_before.acquires;
  const auto p_hits = pooled_after.pool_hits - pooled_before.pool_hits;
  const auto p_heap = pooled_after.heap_allocs - pooled_before.heap_allocs;
  const auto h_heap = heap_after.heap_allocs - heap_before.heap_allocs;
  r.hit_rate = p_acq > 0 ? static_cast<double>(p_hits) / static_cast<double>(p_acq) : 0.0;
  r.bytes_recycled_mb =
      static_cast<double>(pooled_after.bytes_recycled - pooled_before.bytes_recycled) /
      (1024.0 * 1024.0);
  r.heap_allocs_ratio =
      h_heap > 0 ? static_cast<double>(p_heap) / static_cast<double>(h_heap) : 0.0;
  return r;
}

}  // namespace

int main() {
  const bool saved = mem::pool_enabled();

  std::printf("== mem::acquire/release round-trip latency ==\n");
  std::printf("%12s %14s %14s %10s\n", "floats", "pooled (ns)", "heap (ns)", "speedup");
  std::vector<LatencyRow> rows;
  for (std::size_t floats : {64u, 1024u, 16384u, 262144u, 1048576u}) {
    LatencyRow row{floats, roundtrip_ns(floats, true), roundtrip_ns(floats, false)};
    rows.push_back(row);
    std::printf("%12zu %14.1f %14.1f %9.1fx\n", row.floats, row.pooled_ns,
                row.heap_ns, row.heap_ns / row.pooled_ns);
  }

  const ChurnResult c = churn();
  std::printf("\n== training-shaped tensor churn (6 bufs x 200 iters) ==\n");
  std::printf("pooled %.2f ms | heap %.2f ms | hit rate %.3f | recycled %.1f MiB | "
              "heap-alloc ratio %.4f\n",
              c.pooled_ms, c.heap_ms, c.hit_rate, c.bytes_recycled_mb,
              c.heap_allocs_ratio);

  std::FILE* f = std::fopen("BENCH_allocator.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"micro_allocator\",\n");
    std::fprintf(f, "  \"roundtrip_ns\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"floats\": %zu, \"pooled_ns\": %.1f, \"heap_ns\": %.1f}%s\n",
                   rows[i].floats, rows[i].pooled_ns, rows[i].heap_ns,
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"churn_pooled_ms\": %.3f,\n", c.pooled_ms);
    std::fprintf(f, "  \"churn_heap_ms\": %.3f,\n", c.heap_ms);
    std::fprintf(f, "  \"churn_hit_rate\": %.4f,\n", c.hit_rate);
    std::fprintf(f, "  \"churn_bytes_recycled_mb\": %.2f,\n", c.bytes_recycled_mb);
    std::fprintf(f, "  \"churn_heap_allocs_vs_unpooled\": %.5f\n", c.heap_allocs_ratio);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_allocator.json\n");
  }

  mem::set_pool_enabled(saved);
  return 0;
}
