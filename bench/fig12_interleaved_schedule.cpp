// Figure 12: interleaved vs non-interleaved 1F1B throughput for GPT-3 175B
// (96 layers, 96 heads, hidden 12288) on 96 GPUs ((t, p) = (8, 12)),
// batch size 12..60. The interleaved schedule (with scatter/gather) wins,
// and the gap closes as the batch grows.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 12", "Interleaved vs non-interleaved schedule (175B, 96 GPUs)");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(96, 12288, 96);
  std::printf("%6s | %17s %17s %8s\n", "batch", "non-interleaved", "interleaved(v=2)",
              "ratio");
  for (const std::int64_t B : {12, 24, 36, 48, 60}) {
    core::ParallelConfig flat;
    flat.t = 8;
    flat.p = 12;
    flat.d = 1;
    flat.b = 1;
    const auto rf =
        sim::simulate_iteration(hw, m, flat, B, {true, /*check_memory=*/false});

    core::ParallelConfig inter = flat;
    inter.v = 2;
    inter.schedule = pipeline::ScheduleType::kInterleaved;
    inter.scatter_gather = true;
    const auto ri =
        sim::simulate_iteration(hw, m, inter, B, {true, /*check_memory=*/false});

    std::printf("%6lld | %14.0f TF %14.0f TF %7.2fx\n", static_cast<long long>(B),
                rf.per_gpu_flops / 1e12, ri.per_gpu_flops / 1e12,
                ri.per_gpu_flops / rf.per_gpu_flops);
  }
  std::printf("\nShape check (paper): interleaved ahead by ~10%% at small batch; "
              "gap narrows as the batch (and the default schedule's m) grows.\n");
  return 0;
}
