// Table 1: weak-scaling throughput for GPT models from 1.7B to 1T
// parameters on 32 to 3072 A100s, plus the §5.1 end-to-end training-time
// estimates (Eq. 4) for GPT-3 175B and the 1T model.

#include "bench_util.hpp"

#include "ptdp/core/analytics.hpp"

using namespace ptdp;

int main() {
  bench::header("Table 1", "Weak-scaling throughput, 1.7B -> 1T parameters");
  const auto hw = sim::ClusterSpec::selene();

  struct Row {
    std::int64_t layers, hidden, heads;
    int t, p;
    std::int64_t n, batch;
    double paper_tflops, paper_pct, paper_agg;
  };
  const Row rows[] = {
      {24, 2304, 24, 1, 1, 32, 512, 137, 44, 4.4},
      {30, 3072, 32, 2, 1, 64, 512, 138, 44, 8.8},
      {36, 4096, 32, 4, 1, 128, 512, 142, 46, 18.2},
      {40, 6144, 48, 8, 1, 256, 1024, 135, 43, 34.6},
      {48, 8192, 64, 8, 2, 512, 1536, 138, 44, 70.8},
      {60, 10240, 80, 8, 4, 1024, 1792, 140, 45, 143.8},
      {80, 12288, 96, 8, 8, 1536, 2304, 148, 47, 227.1},
      {96, 16384, 128, 8, 16, 1920, 2160, 155, 50, 297.4},
      {105, 20480, 128, 8, 35, 2520, 2520, 163, 52, 410.2},
      {128, 25600, 160, 8, 64, 3072, 3072, 163, 52, 502.0},
  };

  std::printf(
      "%9s %6s %6s %6s | %3s %3s %4s %6s %3s %3s | %9s %7s %9s | %9s %7s %9s\n",
      "params(B)", "heads", "hidden", "layers", "t", "p", "GPUs", "batch", "b",
      "v", "TF/s/GPU", "% peak", "agg PF/s", "paper TF", "paper%", "paper PF");
  for (const Row& r : rows) {
    const model::GptConfig m = bench::gpt(r.layers, r.hidden, r.heads);
    core::ParallelConfig base;
    base.t = r.t;
    base.p = r.p;
    base.d = static_cast<int>(r.n / (static_cast<std::int64_t>(r.t) * r.p));
    const core::ParallelConfig cfg = bench::tune(hw, m, base, r.batch);
    const auto res = sim::simulate_iteration(hw, m, cfg, r.batch);
    std::printf(
        "%9.1f %6lld %6lld %6lld | %3d %3d %4lld %6lld %3lld %3d | %9.0f %6.0f%% "
        "%9.1f | %9.0f %6.0f%% %9.1f\n",
        m.paper_params() / 1e9, static_cast<long long>(r.heads),
        static_cast<long long>(r.hidden), static_cast<long long>(r.layers), cfg.t,
        cfg.p, static_cast<long long>(r.n), static_cast<long long>(r.batch),
        static_cast<long long>(cfg.b), cfg.v, res.per_gpu_flops / 1e12,
        100 * res.percent_of_peak, res.aggregate_flops / 1e15, r.paper_tflops,
        r.paper_pct, r.paper_agg);
  }

  std::printf("\nEnd-to-end training-time estimates (Eq. 4):\n");
  const double gpt3_days = core::training_time_days(300e9, 175e9, 1024, 140e12);
  std::printf("  GPT-3 175B, 300B tokens, 1024 GPUs @140 TF: %5.1f days (paper: 34)\n",
              gpt3_days);
  const double t1_days = core::training_time_days(450e9, 1e12, 3072, 163e12);
  std::printf("  1T model, 450B tokens, 3072 GPUs @163 TF:   %5.1f days (paper: 84)\n",
              t1_days);
  return 0;
}
