// Google-benchmark microbenchmarks for the thread-backed collectives: ring
// all-reduce / all-gather / reduce-scatter across world sizes, blocking vs
// request-based nonblocking p2p, and the end-to-end pipelined train step of
// a tiny model. These measure this library's real communication substrate
// (memcpy transport), not the simulated cluster.
//
// Besides the human-readable google-benchmark table, main() runs a fixed
// sweep and writes BENCH_collectives.json to the working directory (the
// BENCH_tensor_ops.json convention) so the communication-plane trajectory
// is machine-comparable across PRs: p2p ping-pong blocking vs nonblocking,
// the bucketed data-parallel all-reduce through GradReducer, engine steps
// with gradient-reduction overlap on/off, and the §4.1 scatter/gather
// inter-stage byte reduction (must be exactly 1/t).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/comm/grad_reducer.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

namespace {

using namespace ptdp;

void BM_AllReduce(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t len = static_cast<std::size_t>(state.range(1));
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([len](dist::Comm& comm) {
      std::vector<float> data(len, 1.0f);
      comm.all_reduce(std::span<float>(data));
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * world_size * len * sizeof(float));
}
BENCHMARK(BM_AllReduce)->Args({2, 1 << 12})->Args({4, 1 << 12})->Args({8, 1 << 12});

void BM_AllGather(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t shard = 1 << 12;
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([=](dist::Comm& comm) {
      std::vector<float> in(shard, 1.0f);
      std::vector<float> out(shard * static_cast<std::size_t>(world_size));
      comm.all_gather(std::span<const float>(in), std::span<float>(out));
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_AllGather)->Arg(2)->Arg(8);

void BM_ReduceScatter(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t shard = 1 << 12;
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([=](dist::Comm& comm) {
      std::vector<float> in(shard * static_cast<std::size_t>(world_size), 1.0f);
      std::vector<float> out(shard);
      comm.reduce_scatter(std::span<const float>(in), std::span<float>(out));
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_ReduceScatter)->Arg(2)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([](dist::Comm& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

// Two-rank ping-pong: `rounds` message round-trips per world.run.
void pingpong_blocking(dist::Comm& comm, std::vector<float>& buf, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t tag = static_cast<std::uint64_t>(i);
    if (comm.rank() == 0) {
      comm.send(std::span<const float>(buf), 1, tag);
      comm.recv(std::span<float>(buf), 1, tag);
    } else {
      comm.recv(std::span<float>(buf), 0, tag);
      comm.send(std::span<const float>(buf), 0, tag);
    }
  }
}

// Same traffic through the request API, with the reply receive pre-posted
// before the send — the pattern the pipeline executor uses to overlap.
void pingpong_nonblocking(dist::Comm& comm, std::vector<float>& out,
                          std::vector<float>& in, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t tag = static_cast<std::uint64_t>(i);
    if (comm.rank() == 0) {
      dist::Request recv = comm.irecv(std::span<float>(in), 1, tag);
      comm.isend(std::span<const float>(out), 1, tag);
      recv.wait();
    } else {
      dist::Request recv = comm.irecv(std::span<float>(in), 0, tag);
      recv.wait();
      comm.isend(std::span<const float>(in), 0, tag);
    }
  }
}

void BM_P2pPingPongBlocking(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  dist::World world(2);
  for (auto _ : state) {
    world.run([len](dist::Comm& comm) {
      std::vector<float> buf(len, 1.0f);
      pingpong_blocking(comm, buf, /*rounds=*/16);
      benchmark::DoNotOptimize(buf.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * 16 * len * sizeof(float));
}
BENCHMARK(BM_P2pPingPongBlocking)->Arg(1 << 10)->Arg(1 << 14);

void BM_P2pPingPongNonblocking(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  dist::World world(2);
  for (auto _ : state) {
    world.run([len](dist::Comm& comm) {
      std::vector<float> out(len, 1.0f), in(len);
      pingpong_nonblocking(comm, out, in, /*rounds=*/16);
      benchmark::DoNotOptimize(in.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * 16 * len * sizeof(float));
}
BENCHMARK(BM_P2pPingPongNonblocking)->Arg(1 << 10)->Arg(1 << 14);

// ---- machine-readable sweep ---------------------------------------------------

struct SweepResult {
  std::string op;
  int world;
  std::int64_t elems;
  double ms;
  double mb_per_s;
};

/// Best-of-N wall time of fn(), in seconds.
double time_best(const std::function<void()>& fn, int reps = 5) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

SweepResult sweep_entry(const std::string& op, int world, std::int64_t elems,
                        double bytes_moved, const std::function<void()>& fn) {
  const double secs = time_best(fn);
  return SweepResult{op, world, elems, secs * 1e3, bytes_moved / secs / 1e6};
}

// One engine training run; returns best-of-reps per-step seconds and the
// executor's accumulated p2p byte counter summed over ranks.
struct EngineRun {
  double step_ms;
  std::uint64_t p2p_bytes;
};

EngineRun run_engine(int p, int t, int d, bool scatter_gather, bool overlap,
                     int steps) {
  model::GptConfig c;
  c.num_layers = static_cast<std::int64_t>(p);
  c.hidden = 32;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 16;
  c.dropout = 0.0f;
  c.seed = 7;
  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(8000), c.seq);
  const std::int64_t B = 8, b = 1;

  std::atomic<std::uint64_t> bytes{0};
  double total_s = 0.0;
  dist::World world(p * t * d);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = p;
    options.parallel.t = t;
    options.parallel.d = d;
    options.parallel.b = b;
    options.parallel.recompute = false;
    options.parallel.scatter_gather = scatter_gather;
    options.overlap_grad_reduce = overlap;
    options.global_batch = B;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.05f;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, B, b, d, engine.groups().coord().data, 3);
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < steps; ++s) engine.train_step(loader.next_batch(s));
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      total_s = std::chrono::duration<double>(t1 - t0).count();
    }
    bytes.fetch_add(engine.executor().comm_stats().p2p_bytes_sent);
  });
  return EngineRun{total_s * 1e3 / steps, bytes.load()};
}

void run_sweep() {
  std::vector<SweepResult> results;

  // p2p ping-pong: blocking vs nonblocking (pre-posted reply receive).
  constexpr std::int64_t kLen = 1 << 14;
  constexpr int kRounds = 64;
  const double kPingBytes = 2.0 * kRounds * kLen * sizeof(float);
  {
    dist::World world(2);
    results.push_back(sweep_entry("p2p_pingpong_blocking", 2, kLen, kPingBytes, [&] {
      world.run([](dist::Comm& comm) {
        std::vector<float> buf(kLen, 1.0f);
        pingpong_blocking(comm, buf, kRounds);
      });
    }));
    results.push_back(
        sweep_entry("p2p_pingpong_nonblocking", 2, kLen, kPingBytes, [&] {
          world.run([](dist::Comm& comm) {
            std::vector<float> out(kLen, 1.0f), in(kLen);
            pingpong_nonblocking(comm, out, in, kRounds);
          });
        }));
  }

  // Bucketed DP all-reduce through GradReducer: DDP-style buckets vs one
  // all-reduce per parameter, 8 params x 32Ki elements on d = 4.
  {
    constexpr int kD = 4, kParams = 8;
    constexpr std::int64_t kElems = 1 << 15;
    const double kGradBytes = double(kParams) * kElems * sizeof(float) * kD;
    dist::World world(kD);
    for (const std::int64_t cap : {std::int64_t{1} << 18, std::int64_t{0}}) {
      const std::string op =
          cap > 0 ? "grad_reduce_bucketed" : "grad_reduce_per_param";
      results.push_back(sweep_entry(op, kD, kParams * kElems, kGradBytes, [&] {
        world.run([cap](dist::Comm& comm) {
          std::vector<std::unique_ptr<model::Param>> owned;
          model::ParamRefs refs;
          for (int i = 0; i < kParams; ++i) {
            auto p = std::make_unique<model::Param>();
            p->name = "p" + std::to_string(i);
            p->grad = tensor::Tensor({kElems});
            refs.push_back(p.get());
            owned.push_back(std::move(p));
          }
          comm::GradReducerOptions opts;
          opts.bucket_elems = cap;
          comm::GradReducer reducer({refs}, comm, opts);
          reducer.finish();
        });
      }));
    }
  }

  // Engine steps: gradient-reduction overlap on/off on a (p=2, d=2) grid,
  // and §4.1 scatter/gather on/off on the (p=2, t=2, d=2) acceptance grid.
  const int kSteps = 4;
  const EngineRun overlap_off = run_engine(2, 1, 2, false, false, kSteps);
  const EngineRun overlap_on = run_engine(2, 1, 2, false, true, kSteps);
  results.push_back(
      SweepResult{"engine_step_p2d2_overlap_off", 4, 0, overlap_off.step_ms, 0.0});
  results.push_back(
      SweepResult{"engine_step_p2d2_overlap_on", 4, 0, overlap_on.step_ms, 0.0});

  const EngineRun sg_off = run_engine(2, 2, 2, false, true, kSteps);
  const EngineRun sg_on = run_engine(2, 2, 2, true, true, kSteps);
  results.push_back(
      SweepResult{"engine_step_p2t2d2_sg_off", 8, 0, sg_off.step_ms, 0.0});
  results.push_back(
      SweepResult{"engine_step_p2t2d2_sg_on", 8, 0, sg_on.step_ms, 0.0});
  const double sg_ratio =
      sg_on.p2p_bytes > 0
          ? static_cast<double>(sg_off.p2p_bytes) / static_cast<double>(sg_on.p2p_bytes)
          : 0.0;

  std::printf("\np2p ping-pong %lld elems: blocking %.3f ms | nonblocking %.3f ms\n",
              static_cast<long long>(kLen), results[0].ms, results[1].ms);
  std::printf("scatter/gather inter-stage bytes: off %llu, on %llu (ratio %.2f, t=2)\n",
              static_cast<unsigned long long>(sg_off.p2p_bytes),
              static_cast<unsigned long long>(sg_on.p2p_bytes), sg_ratio);

  std::FILE* f = std::fopen("BENCH_collectives.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_collectives.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_collectives\",\n");
  std::fprintf(f, "  \"sg_off_p2p_bytes\": %llu,\n",
               static_cast<unsigned long long>(sg_off.p2p_bytes));
  std::fprintf(f, "  \"sg_on_p2p_bytes\": %llu,\n",
               static_cast<unsigned long long>(sg_on.p2p_bytes));
  std::fprintf(f, "  \"sg_p2p_bytes_ratio\": %.2f,\n", sg_ratio);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"world\": %d, \"elems\": %lld, "
                 "\"ms\": %.3f, \"mb_per_s\": %.1f}%s\n",
                 r.op.c_str(), r.world, static_cast<long long>(r.elems), r.ms,
                 r.mb_per_s, i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_collectives.json (%zu entries)\n", results.size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_sweep();
  return 0;
}
