// Google-benchmark microbenchmarks for the thread-backed collectives: ring
// all-reduce / all-gather / reduce-scatter across world sizes, and the
// end-to-end pipelined train step of a tiny model. These measure this
// library's real communication substrate (memcpy transport), not the
// simulated cluster.

#include <benchmark/benchmark.h>

#include "ptdp/dist/world.hpp"

namespace {

using namespace ptdp;

void BM_AllReduce(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t len = static_cast<std::size_t>(state.range(1));
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([len](dist::Comm& comm) {
      std::vector<float> data(len, 1.0f);
      comm.all_reduce(std::span<float>(data));
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * world_size * len * sizeof(float));
}
BENCHMARK(BM_AllReduce)->Args({2, 1 << 12})->Args({4, 1 << 12})->Args({8, 1 << 12});

void BM_AllGather(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t shard = 1 << 12;
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([=](dist::Comm& comm) {
      std::vector<float> in(shard, 1.0f);
      std::vector<float> out(shard * static_cast<std::size_t>(world_size));
      comm.all_gather(std::span<const float>(in), std::span<float>(out));
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_AllGather)->Arg(2)->Arg(8);

void BM_ReduceScatter(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  const std::size_t shard = 1 << 12;
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([=](dist::Comm& comm) {
      std::vector<float> in(shard * static_cast<std::size_t>(world_size), 1.0f);
      std::vector<float> out(shard);
      comm.reduce_scatter(std::span<const float>(in), std::span<float>(out));
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_ReduceScatter)->Arg(2)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int world_size = static_cast<int>(state.range(0));
  dist::World world(world_size);
  for (auto _ : state) {
    world.run([](dist::Comm& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
