// The mixed-precision headline (DESIGN.md §13): end-to-end train_step wall
// time and pipeline p2p comm bytes on the (p,t,d)=(2,2,2) grid, bf16
// weights + bf16 boundaries + bf16 grad wire vs the all-f32 baseline, plus
// the two grad-reduce wire dtypes measured separately. Writes
// BENCH_mixed_precision.json to the working directory.
//
// The model is sized so the step is GEMM- and comm-dominated (the regime
// the paper's mixed-precision runs live in), not overhead-dominated like
// the tiny correctness-test configs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

namespace {

using namespace ptdp;
using tensor::DType;

constexpr int kP = 2, kT = 2, kD = 2;
constexpr std::int64_t kGlobalBatch = 8;
constexpr std::int64_t kMicroBatch = 2;
constexpr int kWarmupSteps = 1;
constexpr int kTimedSteps = 4;

model::GptConfig bench_config() {
  model::GptConfig c;
  c.num_layers = 2;  // one per pipeline stage
  c.hidden = 512;
  c.heads = 8;
  c.vocab = 512;
  c.seq = 64;
  c.dropout = 0.0f;
  c.seed = 7;
  return c;
}

struct RunResult {
  std::string name;
  double best_step_ms = 0.0;
  std::uint64_t p2p_bytes = 0;    ///< world-summed, timed steps only
  std::uint64_t p2p_messages = 0; ///< world-summed, timed steps only
  float final_loss = 0.0f;
};

RunResult run_config(const std::string& name, DType model_dtype,
                     DType grad_comm_dtype) {
  const model::GptConfig c = [&] {
    model::GptConfig base = bench_config();
    base.dtype = model_dtype;
    return base;
  }();
  data::SyntheticCorpus corpus(c.vocab, 55);
  data::TokenDataset dataset(corpus.generate(8000), c.seq);

  const int world_size = kP * kT * kD;
  std::vector<double> step_ms(world_size, 0.0);
  std::vector<std::uint64_t> bytes(world_size, 0), msgs(world_size, 0);
  std::vector<float> loss(world_size, 0.0f);

  dist::World world(world_size);
  world.run([&](dist::Comm& comm) {
    core::EngineOptions options;
    options.model = c;
    options.parallel.p = kP;
    options.parallel.t = kT;
    options.parallel.d = kD;
    options.parallel.b = kMicroBatch;
    options.parallel.recompute = false;
    options.global_batch = kGlobalBatch;
    options.optimizer = core::EngineOptions::Opt::kSgd;
    options.sgd.lr = 0.01f;
    options.grad_comm_dtype = grad_comm_dtype;
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, kGlobalBatch, kMicroBatch, kD,
                               engine.groups().coord().data, /*seed=*/88);
    int step = 0;
    for (int s = 0; s < kWarmupSteps; ++s) {
      engine.train_step(loader.next_batch(step++));
    }
    const auto before = engine.executor().comm_stats();
    double best = 1e30;
    float last = 0.0f;
    for (int s = 0; s < kTimedSteps; ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      last = engine.train_step(loader.next_batch(step++));
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const auto after = engine.executor().comm_stats();
    const int r = comm.rank();
    step_ms[static_cast<std::size_t>(r)] = best;
    bytes[static_cast<std::size_t>(r)] = after.p2p_bytes_sent - before.p2p_bytes_sent;
    msgs[static_cast<std::size_t>(r)] = after.p2p_messages - before.p2p_messages;
    loss[static_cast<std::size_t>(r)] = last;
  });

  RunResult out;
  out.name = name;
  // A step is over when the slowest rank finishes: report the max over the
  // world of each rank's best step time.
  out.best_step_ms = *std::max_element(step_ms.begin(), step_ms.end());
  for (auto b : bytes) out.p2p_bytes += b;
  for (auto m : msgs) out.p2p_messages += m;
  out.final_loss = loss[0];
  return out;
}

void write_json(const std::vector<RunResult>& runs, double e2e_speedup,
                double p2p_ratio) {
  std::FILE* f = std::fopen("BENCH_mixed_precision.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_mixed_precision.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"mixed_precision_e2e\",\n");
  std::fprintf(f, "  \"grid\": {\"p\": %d, \"t\": %d, \"d\": %d},\n", kP, kT, kD);
  std::fprintf(f, "  \"bf16_e2e_speedup_vs_f32\": %.3f,\n", e2e_speedup);
  std::fprintf(f, "  \"bf16_p2p_bytes_ratio_vs_f32\": %.3f,\n", p2p_ratio);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"step_ms\": %.2f, \"p2p_bytes\": "
                 "%llu, \"p2p_messages\": %llu, \"loss\": %.4f}%s\n",
                 r.name.c_str(), r.best_step_ms,
                 static_cast<unsigned long long>(r.p2p_bytes),
                 static_cast<unsigned long long>(r.p2p_messages), r.final_loss,
                 i + 1 == runs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_mixed_precision.json (%zu runs)\n", runs.size());
}

}  // namespace

int main() {
  std::vector<RunResult> runs;
  runs.push_back(run_config("f32", DType::kF32, DType::kF32));
  runs.push_back(run_config("f32_gradbf16", DType::kF32, DType::kBf16));
  runs.push_back(run_config("bf16", DType::kBf16, DType::kF32));
  runs.push_back(run_config("bf16_gradbf16", DType::kBf16, DType::kBf16));

  const RunResult& f32 = runs[0];
  const RunResult& bf16 = runs[3];
  const double speedup = f32.best_step_ms / bf16.best_step_ms;
  const double ratio =
      static_cast<double>(bf16.p2p_bytes) / static_cast<double>(f32.p2p_bytes);
  for (const RunResult& r : runs) {
    std::printf("%-14s step %7.2f ms | p2p %9llu B in %llu msgs | loss %.4f\n",
                r.name.c_str(), r.best_step_ms,
                static_cast<unsigned long long>(r.p2p_bytes),
                static_cast<unsigned long long>(r.p2p_messages), r.final_loss);
  }
  std::printf("bf16 vs f32: %.2fx e2e, p2p bytes ratio %.3f\n", speedup, ratio);
  write_json(runs, speedup, ratio);
  return 0;
}
