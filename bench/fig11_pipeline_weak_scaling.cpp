// Figure 11: weak scaling of the non-interleaved pipeline schedule —
// hidden 20480, 128 heads, microbatch 1, tensor-parallel 8; the model
// grows with the pipeline depth (3 layers / 15B at p=1 up to 24 layers /
// 121B at p=8). Batch 8 vs 128 shows the bubble amortization.

#include "bench_util.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 11", "Pipeline-parallel weak scaling (non-interleaved)");
  const auto hw = sim::ClusterSpec::selene();
  std::printf("%3s %7s %10s %6s | %12s %12s\n", "p", "layers", "params(B)", "GPUs",
              "TF/GPU B=8", "TF/GPU B=128");
  for (const int p : {1, 2, 4, 8}) {
    const std::int64_t layers = 3 * p;
    const model::GptConfig m = bench::gpt(layers, 20480, 128);
    double tf[2] = {0, 0};
    int i = 0;
    for (const std::int64_t B : {8, 128}) {
      core::ParallelConfig cfg;
      cfg.t = 8;
      cfg.p = p;
      cfg.b = 1;
      const auto res = sim::simulate_iteration(hw, m, cfg, B,
                                               {true, /*check_memory=*/false});
      tf[i++] = res.per_gpu_flops / 1e12;
    }
    std::printf("%3d %7lld %10.0f %6d | %12.0f %12.0f\n", p,
                static_cast<long long>(layers), m.paper_params() / 1e9, 8 * p,
                tf[0], tf[1]);
  }
  std::printf("\nShape check (paper): batch 128 scales nearly flat; batch 8 "
              "decays with p as the (p-1)/m bubble grows.\n");
  return 0;
}
