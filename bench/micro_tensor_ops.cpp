// Google-benchmark microbenchmarks for the tensor kernels: GEMM shapes
// that appear in a transformer layer, and the §4.2 fused kernels against
// their unfused compositions (measured, on this CPU substrate).

#include <benchmark/benchmark.h>

#include "ptdp/tensor/ops.hpp"

namespace {

using namespace ptdp;
using tensor::Tensor;

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTransformerShapes(benchmark::State& state) {
  // (rows, h) -> QKV-like GEMM rows x h x 3h.
  const std::int64_t rows = state.range(0);
  const std::int64_t h = state.range(1);
  Rng rng(2);
  Tensor x = Tensor::randn({rows, h}, rng);
  Tensor w = Tensor::randn({h, 3 * h}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * h * 3 * h);
}
BENCHMARK(BM_MatmulTransformerShapes)->Args({64, 64})->Args({128, 128});

void BM_BiasGeluUnfused(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::gelu(tensor::add_bias(x, bias)));
  }
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(float) * 4);
}
BENCHMARK(BM_BiasGeluUnfused)->Arg(256);

void BM_BiasGeluFused(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::fused_bias_gelu(x, bias));
  }
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(float) * 2);
}
BENCHMARK(BM_BiasGeluFused)->Arg(256);

void BM_CausalSoftmaxFused(benchmark::State& state) {
  const auto s = state.range(0);
  Rng rng(4);
  Tensor scores = Tensor::randn({8, s, s}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::fused_scale_causal_softmax(scores, 0.125f));
  }
}
BENCHMARK(BM_CausalSoftmaxFused)->Arg(64)->Arg(128);

void BM_SoftmaxComposed(benchmark::State& state) {
  const auto s = state.range(0);
  Rng rng(4);
  Tensor scores = Tensor::randn({8, s, s}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::softmax_lastdim(tensor::scale(scores, 0.125f)));
  }
}
BENCHMARK(BM_SoftmaxComposed)->Arg(64)->Arg(128);

void BM_LayerNorm(benchmark::State& state) {
  const auto h = state.range(0);
  Rng rng(5);
  Tensor x = Tensor::randn({256, h}, rng);
  Tensor gamma = Tensor::ones({h});
  Tensor beta = Tensor::zeros({h});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::layernorm(x, gamma, beta));
  }
  state.SetBytesProcessed(state.iterations() * 256 * h * sizeof(float) * 2);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
