// Google-benchmark microbenchmarks for the tensor kernels: GEMM shapes
// that appear in a transformer layer, and the §4.2 fused kernels against
// their unfused compositions (measured, on this CPU substrate).
//
// Besides the human-readable google-benchmark table, main() runs a fixed
// sweep of (op, shape, intra-op threads) and writes BENCH_tensor_ops.json
// to the working directory so the perf trajectory is machine-comparable
// across PRs. The sweep includes the seed's scalar GEMM (compiled here with
// the project-default flags, exactly like the pre-backend kernel) as the
// baseline the speedups are measured against.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace {

using namespace ptdp;
using tensor::Tensor;

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MatmulTransformerShapes(benchmark::State& state) {
  // (rows, h) -> QKV-like GEMM rows x h x 3h.
  const std::int64_t rows = state.range(0);
  const std::int64_t h = state.range(1);
  Rng rng(2);
  Tensor x = Tensor::randn({rows, h}, rng);
  Tensor w = Tensor::randn({h, 3 * h}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * h * 3 * h);
}
BENCHMARK(BM_MatmulTransformerShapes)->Args({64, 64})->Args({128, 128})->Args({512, 256});

void BM_BiasGeluUnfused(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::gelu(tensor::add_bias(x, bias)));
  }
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(float) * 4);
}
BENCHMARK(BM_BiasGeluUnfused)->Arg(256);

void BM_BiasGeluFused(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::fused_bias_gelu(x, bias));
  }
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(float) * 2);
}
BENCHMARK(BM_BiasGeluFused)->Arg(256);

void BM_CausalSoftmaxFused(benchmark::State& state) {
  const auto s = state.range(0);
  Rng rng(4);
  Tensor scores = Tensor::randn({8, s, s}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::fused_scale_causal_softmax(scores, 0.125f));
  }
}
BENCHMARK(BM_CausalSoftmaxFused)->Arg(64)->Arg(128);

void BM_SoftmaxComposed(benchmark::State& state) {
  const auto s = state.range(0);
  Rng rng(4);
  Tensor scores = Tensor::randn({8, s, s}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::softmax_lastdim(tensor::scale(scores, 0.125f)));
  }
}
BENCHMARK(BM_SoftmaxComposed)->Arg(64)->Arg(128);

void BM_LayerNorm(benchmark::State& state) {
  const auto h = state.range(0);
  Rng rng(5);
  Tensor x = Tensor::randn({256, h}, rng);
  Tensor gamma = Tensor::ones({h});
  Tensor beta = Tensor::zeros({h});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::layernorm(x, gamma, beta));
  }
  state.SetBytesProcessed(state.iterations() * 256 * h * sizeof(float) * 2);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(1024);

// ---- machine-readable sweep ---------------------------------------------------

// The seed repo's scalar blocked GEMM, kept verbatim under the bench's
// project-default flags: this is the pre-backend kernel every speedup in
// BENCH_tensor_ops.json is measured against.
void seed_scalar_gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                         const float* a, const float* b, float* c) {
  constexpr std::int64_t kBlockK = 256;
  constexpr std::int64_t kBlockN = 512;
  for (std::int64_t pp = 0; pp < k; pp += kBlockK) {
    const std::int64_t pe = std::min(pp + kBlockK, k);
    for (std::int64_t jj = 0; jj < n; jj += kBlockN) {
      const std::int64_t je = std::min(jj + kBlockN, n);
      std::int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        float* c0 = c + (i + 0) * n;
        float* c1 = c + (i + 1) * n;
        float* c2 = c + (i + 2) * n;
        float* c3 = c + (i + 3) * n;
        for (std::int64_t p = pp; p < pe; ++p) {
          const float a0 = a[(i + 0) * k + p];
          const float a1 = a[(i + 1) * k + p];
          const float a2 = a[(i + 2) * k + p];
          const float a3 = a[(i + 3) * k + p];
          const float* brow = b + p * n;
          for (std::int64_t j = jj; j < je; ++j) {
            const float bv = brow[j];
            c0[j] += a0 * bv;
            c1[j] += a1 * bv;
            c2[j] += a2 * bv;
            c3[j] += a3 * bv;
          }
        }
      }
      for (; i < m; ++i) {
        float* crow = c + i * n;
        for (std::int64_t p = pp; p < pe; ++p) {
          const float av = a[i * k + p];
          const float* brow = b + p * n;
          for (std::int64_t j = jj; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

struct SweepResult {
  std::string op;
  std::vector<std::int64_t> shape;
  std::size_t threads;
  double ms;
  double gflops;
};

/// Best-of-N wall time of fn(), in seconds.
double time_best(const std::function<void()>& fn, int reps = 5) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

SweepResult sweep_entry(const std::string& op, std::vector<std::int64_t> shape,
                        std::size_t threads, double flops,
                        const std::function<void()>& fn) {
  const double secs = time_best(fn);
  return SweepResult{op, std::move(shape), threads, secs * 1e3, flops / secs / 1e9};
}

void write_json(const std::vector<SweepResult>& results, double speedup_1t,
                double speedup_4t, double bf16_speedup_1t) {
  std::FILE* f = std::fopen("BENCH_tensor_ops.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_tensor_ops.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_tensor_ops\",\n");
  std::fprintf(f, "  \"matmul512_speedup_vs_seed_scalar_1t\": %.2f,\n", speedup_1t);
  std::fprintf(f, "  \"matmul512_speedup_vs_seed_scalar_4t\": %.2f,\n", speedup_4t);
  std::fprintf(f, "  \"matmul512_bf16_speedup_vs_f32_1t\": %.2f,\n", bf16_speedup_1t);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f, "    {\"op\": \"%s\", \"shape\": [", r.op.c_str());
    for (std::size_t d = 0; d < r.shape.size(); ++d) {
      std::fprintf(f, "%s%lld", d == 0 ? "" : ", ",
                   static_cast<long long>(r.shape[d]));
    }
    std::fprintf(f, "], \"threads\": %zu, \"ms\": %.3f, \"gflops\": %.2f}%s\n",
                 r.threads, r.ms, r.gflops, i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_tensor_ops.json (%zu entries)\n", results.size());
}

void run_sweep() {
  const std::size_t saved_threads = runtime::intra_op_threads();
  std::vector<SweepResult> results;
  Rng rng(17);

  // Seed-scalar baseline (thread count is irrelevant to it; record as 1).
  constexpr std::int64_t kN = 512;
  const double kMatmulFlops = 2.0 * kN * kN * kN;
  Tensor a = Tensor::randn({kN, kN}, rng);
  Tensor b = Tensor::randn({kN, kN}, rng);
  Tensor c({kN, kN});
  results.push_back(sweep_entry("matmul_seed_scalar", {kN, kN, kN}, 1, kMatmulFlops,
                                [&] {
                                  c.zero();
                                  seed_scalar_gemm_nn(kN, kN, kN, a.data().data(),
                                                      b.data().data(),
                                                      c.data().data());
                                }));
  const double seed_gflops = results.back().gflops;

  // bf16 operands for the mixed-precision rows (DESIGN.md §13): both-bf16
  // takes the native tile-engine path where available, f32 x bf16 the
  // inline-widening pack path.
  Tensor a16 = a.to(tensor::DType::kBf16);
  Tensor b16 = b.to(tensor::DType::kBf16);

  double gflops_1t = 0.0;
  double gflops_4t = 0.0;
  double bf16_gflops_1t = 0.0;
  for (std::size_t threads : {1u, 2u, 4u}) {
    runtime::set_intra_op_threads(threads);

    results.push_back(sweep_entry("matmul", {kN, kN, kN}, threads, kMatmulFlops,
                                  [&] { benchmark::DoNotOptimize(tensor::matmul(a, b)); }));
    if (threads == 1) gflops_1t = results.back().gflops;
    if (threads == 4) gflops_4t = results.back().gflops;

    results.push_back(sweep_entry("matmul_bf16", {kN, kN, kN}, threads,
                                  kMatmulFlops, [&] {
                                    benchmark::DoNotOptimize(
                                        tensor::matmul(a16, b16));
                                  }));
    if (threads == 1) bf16_gflops_1t = results.back().gflops;
    results.push_back(sweep_entry("matmul_f32xbf16", {kN, kN, kN}, threads,
                                  kMatmulFlops, [&] {
                                    benchmark::DoNotOptimize(
                                        tensor::matmul(a, b16));
                                  }));

    results.push_back(sweep_entry("matmul_nt", {kN, kN, kN}, threads, kMatmulFlops, [&] {
      benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
    }));
    results.push_back(sweep_entry("matmul_tn", {kN, kN, kN}, threads, kMatmulFlops, [&] {
      benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
    }));

    // Attention-shaped batched GEMM: [heads, s, dk] x [heads, dk, s].
    Tensor q = Tensor::randn({16, 256, 64}, rng);
    Tensor kk = Tensor::randn({16, 256, 64}, rng);
    results.push_back(sweep_entry("bmm_nt", {16, 256, 256, 64}, threads,
                                  2.0 * 16 * 256 * 256 * 64, [&] {
                                    benchmark::DoNotOptimize(tensor::bmm_nt(q, kk));
                                  }));

    // Fused kernels (nominal FLOP counts — useful for trajectory, not for
    // absolute efficiency claims).
    Tensor x = Tensor::randn({2048, 1024}, rng);
    Tensor bias = Tensor::randn({1024}, rng);
    results.push_back(sweep_entry("fused_bias_gelu", {2048, 1024}, threads,
                                  15.0 * 2048 * 1024, [&] {
                                    benchmark::DoNotOptimize(
                                        tensor::fused_bias_gelu(x, bias));
                                  }));

    Tensor gamma = Tensor::ones({1024});
    Tensor beta = Tensor::zeros({1024});
    results.push_back(sweep_entry("layernorm", {2048, 1024}, threads,
                                  8.0 * 2048 * 1024, [&] {
                                    benchmark::DoNotOptimize(
                                        tensor::layernorm(x, gamma, beta));
                                  }));

    Tensor scores = Tensor::randn({16, 256, 256}, rng);
    results.push_back(sweep_entry("fused_scale_causal_softmax", {16, 256, 256},
                                  threads, 5.0 * 16 * 256 * 256, [&] {
                                    benchmark::DoNotOptimize(
                                        tensor::fused_scale_causal_softmax(scores,
                                                                           0.125f));
                                  }));
  }
  runtime::set_intra_op_threads(saved_threads);

  const double speedup_1t = gflops_1t / seed_gflops;
  const double speedup_4t = gflops_4t / seed_gflops;
  std::printf("\nmatmul 512x512x512: seed scalar %.2f GFLOP/s | backend %.2f (1t, %.1fx) "
              "| %.2f (4t, %.1fx)\n",
              seed_gflops, gflops_1t, speedup_1t, gflops_4t, speedup_4t);
  std::printf("matmul 512x512x512 bf16: %.2f GFLOP/s (%.2fx vs f32, 1t)\n",
              bf16_gflops_1t, bf16_gflops_1t / gflops_1t);
  write_json(results, speedup_1t, speedup_4t, bf16_gflops_1t / gflops_1t);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_sweep();
  return 0;
}
