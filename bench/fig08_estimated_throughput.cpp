// Figure 8: normalized estimated throughput vs. microbatch size from
// Eq. (1), t = (b'/b + p − 1)·(t_f(b) + t_b(b)), for the Fig. 7 model with
// (p, t) = (8, 8) and batch sizes 128 and 512. t_f(b)/t_b(b) come from the
// cost model's per-layer times scaled by the layers-per-stage share l/p
// (the paper measures them empirically). The paper finds b = 4 optimal for
// both batch sizes.

#include <vector>

#include "bench_util.hpp"

#include "ptdp/core/analytics.hpp"

using namespace ptdp;

int main() {
  bench::header("Figure 8", "Eq.(1) normalized estimated throughput vs microbatch size");
  const auto hw = sim::ClusterSpec::selene();
  const model::GptConfig m = bench::gpt(4, 4096, 128);
  const int p = 8, t = 8;
  const double layers_per_stage =
      static_cast<double>(m.num_layers) / p;  // fractional: 0.5

  for (const std::int64_t B : {128, 512}) {
    std::printf("batch size B = %lld, (p, t) = (%d, %d):\n",
                static_cast<long long>(B), p, t);
    std::printf("%6s %14s %14s %12s\n", "b", "t_f(b) [ms]", "batch time [s]",
                "normalized");
    std::vector<std::pair<std::int64_t, double>> times;
    std::vector<double> tfs;
    for (const std::int64_t b : {1, 2, 4, 8, 16}) {
      core::ParallelConfig cfg;
      cfg.p = p;
      cfg.t = t;
      cfg.b = b;
      // Per-layer forward/backward cost at this microbatch size.
      const auto one_layer = sim::chunk_cost(hw, m, cfg, 1, false, false);
      const double tf = one_layer.fwd() * layers_per_stage;
      const double tb = one_layer.bwd() * layers_per_stage;
      times.emplace_back(b, core::estimated_batch_time(cfg, B, tf, tb));
      tfs.push_back(tf);
    }
    double best = 1e30;
    std::int64_t best_b = 0;
    for (auto [b, tt] : times) {
      if (tt < best) {
        best = tt;
        best_b = b;
      }
    }
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::printf("%6lld %14.3f %14.4f %12.3f\n",
                  static_cast<long long>(times[i].first), tfs[i] * 1e3,
                  times[i].second, best / times[i].second);
    }
    std::printf("  -> optimal b = %lld\n\n", static_cast<long long>(best_b));
  }
  std::printf("Paper: the optimal b for both batch sizes is 4.\n");
  return 0;
}
