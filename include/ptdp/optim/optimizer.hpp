#pragma once

// Optimizers over Param lists: SGD with momentum and Adam, plus the
// distributed gradient-norm computation used for clipping. Grad-norm
// accounting follows Megatron: parameters whose grads are replicated across
// tensor-parallel ranks contribute once (rank 0 of the tensor group), and
// partial sums are reduced over the tensor and pipeline groups.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/param.hpp"

namespace ptdp::optim {

/// Named tensors an optimizer wants checkpointed (momentum/Adam moments).
using NamedState = std::vector<std::pair<std::string, tensor::Tensor*>>;

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update from the accumulated grads. Grads are not zeroed.
  virtual void step() = 0;
  virtual NamedState state_tensors() = 0;
  virtual const std::vector<model::Param*>& params() const = 0;
  /// Updates the learning rate (used by LR schedules between steps).
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;
};

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(model::ParamRefs params, SgdOptions options);
  void step() override;
  NamedState state_tensors() override;
  const std::vector<model::Param*>& params() const override { return params_; }
  void set_lr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }

 private:
  model::ParamRefs params_;
  SgdOptions options_;
  std::vector<tensor::Tensor> velocity_;  ///< allocated lazily if momentum > 0
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam final : public Optimizer {
 public:
  Adam(model::ParamRefs params, AdamOptions options);
  void step() override;
  NamedState state_tensors() override;
  const std::vector<model::Param*>& params() const override { return params_; }
  void set_lr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }
  std::int64_t steps_taken() const {
    return static_cast<std::int64_t>(step_count_.at({0}));
  }

 private:
  model::ParamRefs params_;
  AdamOptions options_;
  std::vector<tensor::Tensor> m_, v_;
  // Stored as a 1-element tensor so checkpoints carry the bias-correction
  // counter and resumed training is bit-exact.
  tensor::Tensor step_count_{tensor::Shape{1}};
};

/// Global L2 norm of all grads for this model replica. `tp`/`pp` may be
/// nullptr when that parallel dimension is 1. Every rank returns the same
/// value.
double global_grad_norm(const model::ParamRefs& params, const dist::Comm* tp,
                        const dist::Comm* pp);

/// Scales grads by max_norm/norm when norm > max_norm. Returns the
/// pre-clip norm.
double clip_grad_norm(const model::ParamRefs& params, double max_norm,
                      const dist::Comm* tp, const dist::Comm* pp);

}  // namespace ptdp::optim
