#pragma once

// Mixed-precision emulation (§5's runs are fp16 with fp32 master weights).
// There is no 16-bit arithmetic on this substrate, so we emulate the
// *numerics*: model weights are rounded to bfloat16 after every optimizer
// step while the optimizer updates full-precision master copies, and a
// dynamic loss scaler skips steps whose grads contain inf/nan. This
// exercises the same state layout (master fp32 + working low precision +
// scaler) the paper's training loop carries.

#include <memory>

#include "ptdp/optim/optimizer.hpp"

namespace ptdp::optim {

/// Rounds every element to the nearest bfloat16 (round-to-nearest-even).
void truncate_to_bf16(tensor::Tensor& t);
float bf16_round(float v);

struct LossScalerOptions {
  float initial_scale = 1024.0f;
  float growth_factor = 2.0f;
  float backoff_factor = 0.5f;
  int growth_interval = 16;  ///< consecutive good steps before growing
  float min_scale = 1.0f;
  float max_scale = 1 << 24;
};

/// Dynamic loss scaler: multiply the loss by scale(), divide grads by it,
/// and feed update() the overflow flag each step.
class DynamicLossScaler {
 public:
  explicit DynamicLossScaler(LossScalerOptions options = {});
  float scale() const { return scale_; }
  /// Records the outcome of a step. Returns true if the step should be
  /// applied (no overflow), false if it must be skipped.
  bool update(bool found_overflow);
  int good_steps() const { return good_steps_; }

 private:
  LossScalerOptions options_;
  float scale_;
  int good_steps_ = 0;
};

/// True if any grad contains a non-finite value (after the data-parallel
/// all-reduce, so every replica agrees).
bool grads_have_overflow(const model::ParamRefs& params);

/// Wraps an optimizer with fp32 master weights + bf16 working weights +
/// dynamic loss scaling. Usage per batch:
///   engine scales microbatch loss grads by scaler().scale();
///   wrapper.step() unscales, checks overflow, steps or skips, and
///   re-truncates the working weights.
class MixedPrecisionOptimizer final : public Optimizer {
 public:
  MixedPrecisionOptimizer(std::unique_ptr<Optimizer> inner,
                          LossScalerOptions scaler_options = {});

  /// Unscale grads, skip on overflow, otherwise run the inner optimizer on
  /// the master weights and truncate the working weights to bf16.
  void step() override;
  NamedState state_tensors() override;
  const std::vector<model::Param*>& params() const override {
    return inner_->params();
  }
  void set_lr(float lr) override { inner_->set_lr(lr); }
  float lr() const override { return inner_->lr(); }

  DynamicLossScaler& scaler() { return scaler_; }
  std::int64_t skipped_steps() const { return skipped_; }

 private:
  std::unique_ptr<Optimizer> inner_;
  DynamicLossScaler scaler_;
  std::vector<tensor::Tensor> master_;  ///< fp32 master copy per param
  std::int64_t skipped_ = 0;
};

}  // namespace ptdp::optim
