#pragma once

// Mixed precision (§5's runs are fp16 with fp32 master weights; we use
// bf16 — DESIGN.md §13). Two modes per parameter, chosen by its storage
// dtype:
//   - bf16 STORAGE params (the GEMM weights when GptConfig.dtype=bf16):
//     the optimizer keeps an fp32 master; each step swaps the master in as
//     the param's value, runs the inner optimizer on it in full precision,
//     then rounds the result back into the bf16 working tensor.
//   - f32 params: numerics-only emulation — the value is rounded to
//     bf16-representable floats after every step while the master stays
//     full precision. Same state layout, f32 storage.
// A dynamic loss scaler skips steps whose grads contain inf/nan and
// grows/backs off the scale, matching the paper's training loop.

#include <memory>

#include "ptdp/optim/optimizer.hpp"

namespace ptdp::optim {

/// Rounds every element of an f32 tensor to the nearest bfloat16-
/// representable float (round-to-nearest-even), in place.
void truncate_to_bf16(tensor::Tensor& t);
float bf16_round(float v);

struct LossScalerOptions {
  float initial_scale = 1024.0f;
  float growth_factor = 2.0f;
  float backoff_factor = 0.5f;
  int growth_interval = 16;  ///< consecutive good steps before growing
  float min_scale = 1.0f;
  float max_scale = 1 << 24;
};

/// Dynamic loss scaler: multiply the loss by scale(), divide grads by it,
/// and feed update() the overflow flag each step.
class DynamicLossScaler {
 public:
  explicit DynamicLossScaler(LossScalerOptions options = {});
  float scale() const { return scale_; }
  /// Records the outcome of a step. Returns true if the step should be
  /// applied (no overflow), false if it must be skipped.
  bool update(bool found_overflow);
  int good_steps() const { return good_steps_; }

 private:
  LossScalerOptions options_;
  float scale_;
  int good_steps_ = 0;
};

/// True if any grad contains a non-finite value (after the data-parallel
/// all-reduce, so every replica agrees).
bool grads_have_overflow(const model::ParamRefs& params);

/// Wraps an optimizer with fp32 master weights + bf16 working weights +
/// dynamic loss scaling. Usage per batch:
///   engine scales microbatch loss grads by scaler().scale();
///   wrapper.step() unscales, checks overflow, steps or skips, and
///   rounds the working weights back to bf16.
/// Inner optimizers only ever see f32 values: bf16 params have their fp32
/// master swapped in for the duration of the inner step, so Sgd/Adam stay
/// dtype-oblivious.
class MixedPrecisionOptimizer final : public Optimizer {
 public:
  MixedPrecisionOptimizer(std::unique_ptr<Optimizer> inner,
                          LossScalerOptions scaler_options = {});

  /// Unscale grads, skip on overflow, otherwise run the inner optimizer on
  /// the master weights and truncate the working weights to bf16.
  void step() override;
  NamedState state_tensors() override;
  const std::vector<model::Param*>& params() const override {
    return inner_->params();
  }
  void set_lr(float lr) override { inner_->set_lr(lr); }
  float lr() const override { return inner_->lr(); }

  DynamicLossScaler& scaler() { return scaler_; }
  std::int64_t skipped_steps() const { return skipped_; }

 private:
  std::unique_ptr<Optimizer> inner_;
  DynamicLossScaler scaler_;
  std::vector<tensor::Tensor> master_;  ///< fp32 master copy per param
  /// The param's own bf16 tensor for bf16-storage params (shares storage
  /// with the model); undefined for f32 params (emulation mode).
  std::vector<tensor::Tensor> working_;
  std::int64_t skipped_ = 0;
};

}  // namespace ptdp::optim
