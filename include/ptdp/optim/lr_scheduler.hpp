#pragma once

// Learning-rate schedule used by GPT-style training runs (and by
// Megatron-LM): linear warmup to the peak rate, then cosine decay to a
// minimum over the decay horizon, constant afterwards.

#include <cmath>
#include <cstdint>
#include <numbers>

#include "ptdp/runtime/check.hpp"

namespace ptdp::optim {

struct LrScheduleOptions {
  float peak_lr = 1e-3f;
  float min_lr = 1e-5f;
  std::int64_t warmup_steps = 100;
  std::int64_t decay_steps = 10000;  ///< measured from step 0 (includes warmup)
};

class LrSchedule {
 public:
  explicit LrSchedule(LrScheduleOptions options) : options_(options) {
    PTDP_CHECK_GT(options.peak_lr, 0.0f);
    PTDP_CHECK_GE(options.peak_lr, options.min_lr);
    PTDP_CHECK_GE(options.warmup_steps, 0);
    PTDP_CHECK_GT(options.decay_steps, options.warmup_steps);
  }

  /// Learning rate at 0-indexed step `step`.
  float at(std::int64_t step) const {
    if (step < options_.warmup_steps) {
      return options_.peak_lr * static_cast<float>(step + 1) /
             static_cast<float>(options_.warmup_steps);
    }
    if (step >= options_.decay_steps) return options_.min_lr;
    const double progress =
        static_cast<double>(step - options_.warmup_steps) /
        static_cast<double>(options_.decay_steps - options_.warmup_steps);
    const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
    return options_.min_lr +
           static_cast<float>((options_.peak_lr - options_.min_lr) * cosine);
  }

  const LrScheduleOptions& options() const { return options_; }

 private:
  LrScheduleOptions options_;
};

}  // namespace ptdp::optim
