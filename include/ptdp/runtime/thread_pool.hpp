#pragma once

// Fixed-size thread pool used to host the thread-backed "GPU ranks" of the
// dist runtime. Compute kernels do NOT borrow these threads: intra-op
// parallelism lives in the separate pool behind
// ptdp/runtime/parallel_for.hpp, so a rank blocked in a collective
// rendezvous can never be starved by (or deadlock with) a parallel matmul.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "ptdp/runtime/check.hpp"

namespace ptdp {

/// Simple FIFO thread pool. Tasks may block on each other (e.g. collective
/// rendezvous), so the pool must be sized >= the number of interdependent
/// tasks submitted as a gang — see World::run() in ptdp/dist.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads) {
    PTDP_CHECK_GT(n_threads, 0u);
    workers_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Submit a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      PTDP_CHECK(!stopping_) << "submit() on a stopped ThreadPool";
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace ptdp
