#pragma once

// Reusable (cyclic) thread barrier.
//
// std::barrier exists in C++20 but its completion-function plumbing is
// awkward for the generation-counting the dist runtime needs; this small
// condvar barrier is the MPI_Barrier analogue for the thread-backed world.

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "ptdp/runtime/check.hpp"

namespace ptdp {

/// A cyclic barrier for a fixed number of participants.
class Barrier {
 public:
  explicit Barrier(std::size_t participants) : participants_(participants) {
    PTDP_CHECK_GT(participants, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived. Returns the generation
  /// index that just completed (useful for debugging lockstep issues).
  std::size_t arrive_and_wait() {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return gen;
  }

  std::size_t participants() const noexcept { return participants_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t participants_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace ptdp
