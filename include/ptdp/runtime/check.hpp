#pragma once

// Invariant-checking macros used across the ptdp libraries.
//
// PTDP_CHECK is always on (it guards logic errors that would otherwise
// silently corrupt a parallel run); PTDP_DCHECK compiles out in NDEBUG
// builds and is meant for hot inner loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptdp {

/// Thrown when a PTDP_CHECK-style invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PTDP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Stream-collector so PTDP_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(expr_, file_, line_, os_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ptdp

#define PTDP_CHECK(cond)                                         \
  if (cond) {                                                    \
  } else                                                         \
    ::ptdp::detail::CheckMessage(#cond, __FILE__, __LINE__)

#define PTDP_CHECK_EQ(a, b) PTDP_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define PTDP_CHECK_NE(a, b) PTDP_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define PTDP_CHECK_LT(a, b) PTDP_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define PTDP_CHECK_LE(a, b) PTDP_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define PTDP_CHECK_GT(a, b) PTDP_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define PTDP_CHECK_GE(a, b) PTDP_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "

#ifdef NDEBUG
#define PTDP_DCHECK(cond) \
  if (true) {             \
  } else                  \
    ::ptdp::detail::CheckMessage(#cond, __FILE__, __LINE__)
#else
#define PTDP_DCHECK(cond) PTDP_CHECK(cond)
#endif
