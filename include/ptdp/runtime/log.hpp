#pragma once

// Minimal leveled logger. Thread-safe line-at-a-time output; level is a
// process-global read mostly once at startup.

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace ptdp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
inline std::atomic<int>& log_level_storage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace detail

inline void set_log_level(LogLevel level) {
  detail::log_level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

inline LogLevel log_level() {
  return static_cast<LogLevel>(detail::log_level_storage().load(std::memory_order_relaxed));
}

inline void log_line(LogLevel level, std::string_view tag, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard lock(detail::log_mutex());
  std::cerr << "[" << tag << "] " << msg << "\n";
}

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogMessage() { log_line(level_, tag_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ptdp

#define PTDP_LOG_DEBUG ::ptdp::detail::LogMessage(::ptdp::LogLevel::kDebug, "debug")
#define PTDP_LOG_INFO ::ptdp::detail::LogMessage(::ptdp::LogLevel::kInfo, "info")
#define PTDP_LOG_WARN ::ptdp::detail::LogMessage(::ptdp::LogLevel::kWarn, "warn")
#define PTDP_LOG_ERROR ::ptdp::detail::LogMessage(::ptdp::LogLevel::kError, "error")
