#pragma once

// Intra-op parallelism for the tensor kernel library.
//
// parallel_for() splits [begin, end) into grain-sized chunks and executes
// them on a dedicated process-wide helper pool. This pool is deliberately
// separate from the rank-hosting ThreadPool (ptdp/runtime/thread_pool.hpp):
// rank threads block on collective rendezvous, so borrowing them for compute
// chunks could deadlock a gang; conversely, a gang of ranks all doing
// parallel matmuls share this one helper pool, so the process can never hold
// more than `hardware_concurrency` intra-op helper threads in total.
//
// Progress guarantee: the calling thread always executes chunks itself (it
// claims chunks from the same queue the helpers drain), so a parallel_for
// completes even if every helper is busy with other callers' work. Helpers
// never block inside a chunk, and nested parallel_for calls run serially
// inline, so no cycle of waits can form.
//
// Determinism: chunk boundaries depend only on (range, grain), never on the
// pool size, and kernels built on parallel_for keep every reduction serial
// within the subrange an invocation receives. Results are therefore bitwise
// identical for any intra-op thread count.

#include <cstdint>
#include <functional>

namespace ptdp::runtime {

/// Requested intra-op parallelism (>= 1). Defaults to PTDP_NUM_THREADS if
/// set, else std::thread::hardware_concurrency(). The helper pool holds
/// min(n - 1, hardware_concurrency) threads; the caller supplies the rest.
void set_intra_op_threads(std::size_t n);

/// The current requested intra-op parallelism (>= 1).
std::size_t intra_op_threads();

/// True while the calling thread is executing inside a parallel_for chunk
/// (nested parallel_for calls serialize inline).
bool in_parallel_region();

namespace detail {

/// Parse PTDP_NUM_THREADS from the environment; 0 if unset/invalid.
/// Exposed for tests.
std::size_t env_intra_op_threads();

/// True if a parallel_for issued now would actually fan out (requested
/// threads > 1, helpers exist, and we are not already inside a region).
bool parallel_enabled();

/// Fan [begin, end) out in grain-sized chunks. Pre-condition: range > grain.
void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace detail

/// Execute body(b, e) over disjoint subranges covering [begin, end).
/// Subranges smaller than or equal to `grain` run serially inline on the
/// caller. body must treat each element independently (or keep any
/// cross-element reduction inside one subrange) — see determinism note above.
template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, F&& body) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (range <= grain || !detail::parallel_enabled()) {
    body(begin, end);
    return;
  }
  detail::parallel_run(begin, end, grain, body);
}

}  // namespace ptdp::runtime
