#pragma once

// Wall-clock stopwatch for coarse timing of functional runs (the
// performance *simulator* has its own virtual clock; this is for real time).

#include <chrono>

namespace ptdp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptdp
