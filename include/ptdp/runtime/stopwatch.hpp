#pragma once

// Wall-clock stopwatch for coarse timing of functional runs (the
// performance *simulator* has its own virtual clock; this is for real time).
//
// Monotonic-clock policy: every wall-clock measurement in the repo — the
// Stopwatch, the obs tracer's span timestamps, and the bench harnesses —
// goes through std::chrono::steady_clock via steady_now_ns(). system_clock
// is reserved for human-readable datestamps only; it can jump (NTP, DST)
// and must never feed a duration.

#include <chrono>
#include <cstdint>

namespace ptdp {

/// Monotonic wall clock, nanoseconds since an arbitrary epoch. The single
/// time source for Stopwatch, trace spans, and bench timing.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : start_ns_(steady_now_ns()) {}

  void reset() { start_ns_ = steady_now_ns(); }

  std::int64_t elapsed_ns() const { return steady_now_ns() - start_ns_; }

  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  std::int64_t start_ns_;
};

}  // namespace ptdp
