#pragma once

// Counter-based deterministic RNG (splitmix64-derived Philox-style mixing).
//
// All randomness in ptdp flows through Rng instances keyed on
// (seed, stream, counter). Because draws are pure functions of the key,
// results are identical regardless of thread scheduling — a requirement
// for verifying that a (p,t,d)-parallel training run matches the serial
// run bit-for-bit at initialization time.

#include <cmath>
#include <cstdint>
#include <numbers>

namespace ptdp {

namespace detail {

constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Deterministic counter-based random stream.
class Rng {
 public:
  /// @param seed   global experiment seed
  /// @param stream substream id (e.g. hash of (rank, purpose))
  constexpr explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : key_(detail::mix64(seed ^ detail::mix64(stream * 0xda3e39cb94b95bdbULL))) {}

  /// Next raw 64-bit draw.
  constexpr std::uint64_t next_u64() noexcept {
    return detail::mix64(key_ ^ detail::mix64(counter_++));
  }

  /// Uniform in [0, 1).
  double next_uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double next_uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept {
    // Multiply-shift rejection-free mapping; bias is < 2^-53 for the n we use.
    return static_cast<std::uint64_t>(next_uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box–Muller (uses two draws).
  double next_gaussian() noexcept {
    double u1 = next_uniform();
    double u2 = next_uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// N(mean, stddev^2).
  double next_gaussian(double mean, double stddev) noexcept {
    return mean + stddev * next_gaussian();
  }

  /// Bernoulli draw with probability p of true.
  bool next_bernoulli(double p) noexcept { return next_uniform() < p; }

  /// Skip the counter forward (never backward).
  constexpr void discard(std::uint64_t n) noexcept { counter_ += n; }

  constexpr std::uint64_t counter() const noexcept { return counter_; }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
};

/// Derive a substream id from a tuple of small integers (rank, purpose, ...).
constexpr std::uint64_t substream(std::uint64_t a, std::uint64_t b = 0,
                                  std::uint64_t c = 0) noexcept {
  return detail::mix64(a ^ detail::mix64(b ^ detail::mix64(c)));
}

}  // namespace ptdp
