#pragma once

// ptdp::mem — the memory plane (DESIGN.md §12). A size-class pooled
// allocator for tensor storage: power-of-two size classes, per-thread
// free lists with a locked global fallback, so rank threads recycle the
// buffers of previous microbatches/iterations without ever contending.
//
// Contract:
//  - acquire(n) returns >= n floats; the block's capacity is the size
//    class it came from (or exactly n for huge / pool-off allocations).
//    Contents are UNINITIALIZED — callers that need zeros must fill.
//  - release(p, capacity) must pass back the capacity acquire() returned;
//    blocks whose capacity matches a size class are recycled, everything
//    else goes straight back to the heap. This keeps mixed pool-on /
//    pool-off lifetimes safe (the escape hatch can flip mid-process).
//  - PTDP_MEM_POOL=0 in the environment disables pooling at startup;
//    set_pool_enabled() flips it at runtime (tests/benches). Pooling is
//    bitwise-neutral by construction: it only changes *where* a buffer
//    comes from, never what is written into it.
//
// Accounting is byte-exact over *requested* bytes (numel * 4), so the
// measured peak is directly comparable to the §3.5 analytic activation
// model (which also counts exact element bytes, not rounded capacity):
//  - thread_stats(): the calling thread's counters. Tensors are allocated
//    and freed on the owning rank thread, so this is the per-rank figure
//    the engine reports in StepStats / obs gauges.
//  - global_stats(): process-wide aggregate (relaxed atomics).
//
// Cross-thread frees are safe (the global pool mutex publishes recycled
// blocks between threads); they debit the freeing thread's live counter,
// which is why thread live bytes are signed.

#include <cstddef>
#include <cstdint>

namespace ptdp::mem {

struct PoolStats {
  std::int64_t live_bytes = 0;   ///< requested bytes currently outstanding
  std::int64_t peak_bytes = 0;   ///< high-water mark of live_bytes
  std::uint64_t acquires = 0;    ///< total acquire() calls
  std::uint64_t pool_hits = 0;   ///< acquires served from a free list
  std::uint64_t heap_allocs = 0; ///< acquires that fell through to the heap
  std::uint64_t releases = 0;
  std::uint64_t bytes_recycled = 0;  ///< capacity bytes handed out from free lists

  double hit_rate() const {
    return acquires > 0 ? static_cast<double>(pool_hits) /
                              static_cast<double>(acquires)
                        : 0.0;
  }
};

/// Pooling toggle. Initialized from the environment (PTDP_MEM_POOL=0
/// disables) on first use; set_pool_enabled overrides at runtime.
bool pool_enabled();
void set_pool_enabled(bool on);

/// Smallest size class that fits n floats (n above the largest class is
/// returned unchanged: huge blocks are never pooled).
std::size_t size_class_floats(std::size_t n);

struct Block {
  float* data = nullptr;
  std::size_t capacity = 0;  ///< floats; pass back to release() verbatim
};

/// >= n floats, uninitialized. Never returns nullptr (n == 0 still yields
/// a real minimum-class block so callers can rely on a distinct pointer).
Block acquire(std::size_t n);
void release(float* data, std::size_t capacity);

/// Adjusts the calling thread's and the global live counters by
/// `floats_delta * sizeof(float)` requested bytes (peaks track positive
/// deltas). acquire() credits the requested size but release() cannot
/// debit it (it only sees capacity), so raw acquire/release users
/// (Buffer, Arena) call this with the negated request alongside release()
/// — keeping live/peak accounting byte-exact over requested bytes.
void account_adjust(std::int64_t floats_delta);

PoolStats thread_stats();
PoolStats global_stats();

/// Resets the peak-bytes high-water mark to the current live bytes. The
/// thread variant is what the engine calls at step start so StepStats
/// reports the peak *within* the step.
void reset_thread_peak();
void reset_global_peak();

/// Flushes the calling thread's free lists into the global pool (also
/// happens automatically at thread exit). Mainly for tests that want a
/// clean slate between phases.
void trim_thread_cache();

/// RAII float buffer over acquire/release — the storage unit behind
/// tensor::Tensor. Accounts requested bytes on this thread at
/// construction and destruction.
class Buffer {
 public:
  explicit Buffer(std::size_t n);
  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  float* data() noexcept { return block_.data; }
  const float* data() const noexcept { return block_.data; }
  std::size_t size() const noexcept { return size_; }  ///< requested floats

 private:
  Block block_;
  std::size_t size_;
};

}  // namespace ptdp::mem
