#pragma once

// ptdp::mem::Arena — the planned-arena face of the memory plane
// (DESIGN.md §12/§14): a fixed set of named slots over the pooled
// allocator for staging buffers whose sizes are a pure function of the
// plan (GradReducer bucket layout, wire-format scratch). Each slot keeps
// its block across calls and grows monotonically to its high-water size,
// so the steady state performs zero acquires — and, unlike ad-hoc
// std::vector staging, the bytes are pool-accounted, so thread/global
// live and peak stats (the engine's mem.rank<r>.* gauges) see them.
//
// Contract:
//  - get<T>(slot, count) returns a span of `count` Ts over the slot's
//    block, reacquiring a larger block only when the request has grown.
//    Contents are UNINITIALIZED after a (re)growth and otherwise carry
//    whatever the previous use of the slot left — callers fully write
//    before reading, like Tensor::empty.
//  - A slot may be viewed as different element types on different calls
//    (the GradReducer stages f32 buckets and bf16 wire payloads through
//    one arena); the storage is float-aligned, so T must not require
//    stronger alignment.
//  - An Arena belongs to one thread at a time (same ownership rule as a
//    Tensor): the pool's free lists are thread-cached.

#include <cstddef>
#include <span>
#include <vector>

#include "ptdp/mem/pool.hpp"

namespace ptdp::mem {

class Arena {
 public:
  explicit Arena(std::size_t num_slots);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A span of `count` Ts over slot `slot` (see class contract).
  template <typename T = float>
  std::span<T> get(std::size_t slot, std::size_t count) {
    static_assert(alignof(T) <= alignof(float),
                  "arena storage is float-aligned");
    const std::size_t floats =
        (count * sizeof(T) + sizeof(float) - 1) / sizeof(float);
    return {reinterpret_cast<T*>(ensure(slot, floats)), count};
  }

  std::size_t num_slots() const { return slots_.size(); }
  /// Current accounted capacity of a slot in floats (0 before first use).
  std::size_t slot_floats(std::size_t slot) const;

 private:
  float* ensure(std::size_t slot, std::size_t floats);

  struct Slot {
    Block block;
    std::size_t floats = 0;  ///< requested floats (what accounting carries)
  };
  std::vector<Slot> slots_;
};

}  // namespace ptdp::mem
