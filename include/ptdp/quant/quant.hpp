#pragma once

// ptdp::quant — weight-only quantized storage for the serving path
// (DESIGN.md §17). A QuantizedWeight is the packed form of one linear
// layer's [k, n] weight shard: payload bytes, per-(group, column) f32
// scales, and u8 zero-points, in the ptdp::tensor panel layout
// (tensor/quant_ops.hpp). All three live in Tensors drawn from the
// ptdp::mem pool, so byte accounting, checkpoint CRCs, and dist transport
// come for free.
//
// Shard-alignment rule: quantization groups run along K (the reduction
// dimension). Column-parallel shards split N, so per-column groups are
// unaffected by t; row-parallel shards split K, so a group size dividing
// K/t makes each rank's groups a contiguous sub-range of the full-weight
// groups. Under that rule quantize(full) restricted to a rank's shard is
// BITWISE equal to quantize(shard) — t ∈ {1, 2} stays rank-deterministic,
// and shard_rows/slice_cols below are exact (pure byte shuffles).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/tensor/quant_ops.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::quant {

struct QuantizedWeight {
  tensor::QuantKind kind = tensor::QuantKind::kInt8;
  std::int64_t rows = 0;        ///< k (reduction dim of the GEMM)
  std::int64_t cols = 0;        ///< n (output dim)
  std::int64_t group_size = 0;  ///< rows per (scale, zero-point) group
  // Storage: payload/zeros are byte arrays carried in f32 tensors (numel =
  // ceil(bytes/4), tail zero-filled) so the pool, checkpoint CRC, and comm
  // layers see ordinary tensors.
  tensor::Tensor payload;
  tensor::Tensor scales;  ///< f32 [ngroups * npanels * kQuantPanel]
  tensor::Tensor zeros;   ///< u8, packed like payload

  bool defined() const { return rows > 0; }
  std::int64_t payload_bytes() const;
  std::int64_t meta_elems() const;
  /// Exact quantized footprint: payload + scales (4B) + zeros (1B each).
  std::int64_t quant_bytes() const;

  std::uint8_t* payload_u8();
  const std::uint8_t* payload_u8() const;
  std::uint8_t* zeros_u8();
  const std::uint8_t* zeros_u8() const;
};

/// Largest divisor of k_rows that is <= requested: the group size actually
/// used, so any (policy, shard) combination quantizes instead of failing.
/// For exact t=1 vs t=2 row-shard equality pick a policy group dividing K/t.
std::int64_t effective_group_size(std::int64_t requested, std::int64_t k_rows);

/// Quantize a [k, n] f32 (or bf16, widened first) weight. group_size is
/// clamped via effective_group_size.
QuantizedWeight quantize(const tensor::Tensor& w, tensor::QuantKind kind,
                         std::int64_t group_size);

/// ŵ [k, n] f32 — exactly what the quantized GEMM multiplies by.
tensor::Tensor dequantize(const QuantizedWeight& w);

/// C = a · dequant(w): a is [..., k] f32, result [..., n] f32. Dispatches
/// gemm_f32xq{8,4}; bitwise-deterministic across thread counts.
tensor::Tensor matmul(const tensor::Tensor& a, const QuantizedWeight& w);

// ---- wire format (dist broadcast/scatter at world bring-up) ----------------

/// Self-describing byte image: header (magic, kind, geometry) + payload +
/// scales + zeros. ~4x (int8) / ~7x (q4) smaller than the f32 weight, which
/// multiplies the effective bandwidth of weight distribution.
std::vector<std::uint8_t> serialize(const QuantizedWeight& w);
QuantizedWeight deserialize(std::span<const std::uint8_t> bytes);

/// Collective: root serializes `w` (others pass anything) and every rank
/// returns the root's weight. `wire_bytes` (optional) receives the payload
/// size actually broadcast.
QuantizedWeight broadcast(const dist::Comm& comm, const QuantizedWeight& w,
                          int root, std::int64_t* wire_bytes = nullptr);

/// Row slice [r0, r1) — a row-parallel TP shard. r0 and r1 - r0 must be
/// multiples of group_size; the result is bitwise what quantizing the f32
/// row slice directly produces.
QuantizedWeight shard_rows(const QuantizedWeight& w, std::int64_t r0,
                           std::int64_t r1);

/// Column slice [c0, c1) — a column-parallel TP shard. c0 must be panel-
/// aligned (multiple of tensor::kQuantPanel) and c1 panel-aligned or == cols.
QuantizedWeight slice_cols(const QuantizedWeight& w, std::int64_t c0,
                           std::int64_t c1);

// ---- dtype-tagged checkpoints ----------------------------------------------

/// A named quantized weight for checkpoint/wire helpers.
struct NamedQuant {
  std::string name;
  QuantizedWeight* weight = nullptr;
};

/// Two-phase committed save (ckpt/manifest.hpp protocol) of every rank's
/// quantized shards under `dir`, manifest dtype-tagged "int8"/"q4" so a
/// resume at the wrong precision regime is rejected before any shard opens.
/// Collective over `tp` (the all-gather of per-shard CRCs is the barrier).
void save_quantized_checkpoint(const std::string& dir, std::uint64_t step,
                               const dist::Comm& tp,
                               const std::vector<NamedQuant>& weights,
                               tensor::QuantKind kind);

/// Loads the newest valid checkpoint whose manifest dtype matches `kind`
/// into `weights` (matched by name; geometry must agree — quantize first to
/// size the tensors, then load overwrites the bytes). Returns the step, or
/// nullopt when no committed checkpoint exists. CHECK-fails if the newest
/// valid checkpoint was written at a different dtype.
std::optional<std::uint64_t> load_quantized_checkpoint(
    const std::string& dir, const dist::Comm& tp,
    const std::vector<NamedQuant>& weights, tensor::QuantKind kind);

}  // namespace ptdp::quant
