#pragma once

// Sharded distributed checkpointing (§5.10). Each rank saves exactly the
// shards it owns — model parameters plus optimizer state — to its own file,
// mirroring Megatron's per-rank checkpoint layout (the trillion-parameter
// model's 13.8 TB checkpoint is written this way in parallel). Files carry
// a magic/version header and a CRC32 per tensor so corruption is detected
// at load, and loading matches tensors by name so a resume into a freshly
// constructed model is exact.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::ckpt {

/// Named tensor list — what gets saved/restored.
using NamedTensors = std::vector<std::pair<std::string, tensor::Tensor*>>;

struct CheckpointMeta {
  std::uint64_t step = 0;   ///< training step the checkpoint represents
  std::uint64_t extra = 0;  ///< caller-defined (e.g. tokens consumed)
};

/// CRC32 (IEEE, reflected) of a byte range.
std::uint32_t crc32(const void* data, std::size_t len);

/// Writes header + every tensor (name, shape, crc, payload) to `path`.
/// Returns bytes written.
std::int64_t save_checkpoint(const std::string& path, const NamedTensors& tensors,
                             const CheckpointMeta& meta);

/// Loads into the given tensors (matched by name; shapes must agree; CRCs
/// must verify). Throws CheckError on any mismatch or corruption.
CheckpointMeta load_checkpoint(const std::string& path, const NamedTensors& tensors);

/// Reads just the metadata (cheap).
CheckpointMeta peek_checkpoint(const std::string& path);

/// Order-insensitive load: matches tensors by name instead of position.
/// Used when loading resharded checkpoints, whose tensor order reflects
/// the source layout rather than the target model's enumeration. Every
/// requested tensor must be present (extra tensors in the file are
/// ignored); shapes and CRCs are verified as in load_checkpoint.
CheckpointMeta load_checkpoint_by_name(const std::string& path,
                                       const NamedTensors& tensors);

/// Canonical per-rank file name: <dir>/shard-p<pi>-t<ti>-d<di>.ckpt
std::string shard_path(const std::string& dir, int p_idx, int t_idx, int d_idx);

}  // namespace ptdp::ckpt
