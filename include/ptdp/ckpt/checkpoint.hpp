#pragma once

// Sharded distributed checkpointing (§5.10). Each rank saves exactly the
// shards it owns — model parameters plus optimizer state — to its own file,
// mirroring Megatron's per-rank checkpoint layout (the trillion-parameter
// model's 13.8 TB checkpoint is written this way in parallel). Files carry
// a magic/version header and a CRC32 per tensor so corruption is detected
// at load, and loading matches tensors by name so a resume into a freshly
// constructed model is exact.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::ckpt {

/// Named tensor list — what gets saved/restored.
using NamedTensors = std::vector<std::pair<std::string, tensor::Tensor*>>;

struct CheckpointMeta {
  std::uint64_t step = 0;   ///< training step the checkpoint represents
  std::uint64_t extra = 0;  ///< caller-defined (e.g. tokens consumed)
};

/// CRC32 (IEEE, reflected) of a byte range.
std::uint32_t crc32(const void* data, std::size_t len);

/// Streaming CRC32: fold `len` more bytes into a running state. Start from
/// crc = 0; the running value is always the CRC of everything folded so far.
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len);

/// Whole-file CRC32. Throws CheckError if the file cannot be read.
std::uint32_t file_crc32(const std::string& path);

// ---- atomic write plumbing -------------------------------------------------
//
// Every file the checkpoint subsystem publishes — tensor shards, manifests,
// LATEST markers — is written as temp file + fsync + rename, so a crash at
// any point leaves either the previous file or the new one, never a torn
// mix. The phases below are the fault-injection sites: a thread-local hook
// (installed per rank thread by the fault-tolerance layer) is invoked at
// each one and may throw (simulating a crash) or mutate the temp file
// (simulating silent corruption).

enum class WritePhase : int {
  kHeaderWritten = 0,   ///< shard header bytes are in the temp file
  kPayloadWritten = 1,  ///< all payload bytes are in the temp file
  kBeforeFsync = 2,     ///< temp file closed, not yet durable
  kBeforeRename = 3,    ///< temp file durable, publish pending
  kAfterRename = 4,     ///< the new file is visible under its final name
};

/// True for phases at which the bytes still live in the temp file.
constexpr bool phase_is_pre_rename(WritePhase p) {
  return p != WritePhase::kAfterRename;
}

using WriteHook =
    std::function<void(const std::string& final_path, const std::string& tmp_path,
                       WritePhase phase)>;

/// Installs a thread-local hook invoked at every atomic-write phase on this
/// thread (empty function clears it). Test/fault-injection only.
void set_write_hook(WriteHook hook);

/// Atomically replaces `path` with `content` (temp + fsync + rename).
/// Text phases fire the write hook like any other checkpoint write.
void write_file_atomic(const std::string& path, std::string_view content);

/// What save_checkpoint reports about the bytes it intended to publish.
/// `crc` is computed over the byte stream as it is produced — if the file
/// on disk is corrupted mid-write, its actual content will disagree.
struct SaveResult {
  std::int64_t bytes = 0;
  std::uint32_t crc = 0;
};

/// Writes header + every tensor (name, shape, crc, payload) atomically to
/// `path` (temp file + fsync + rename — a crash mid-save leaves any previous
/// checkpoint at `path` intact). Returns bytes written and the whole-file
/// CRC of the intended content.
SaveResult save_checkpoint(const std::string& path, const NamedTensors& tensors,
                           const CheckpointMeta& meta);

/// Loads into the given tensors (matched by name; shapes must agree; CRCs
/// must verify). Throws CheckError on any mismatch or corruption.
CheckpointMeta load_checkpoint(const std::string& path, const NamedTensors& tensors);

/// Reads just the metadata (cheap).
CheckpointMeta peek_checkpoint(const std::string& path);

/// Order-insensitive load: matches tensors by name instead of position.
/// Used when loading resharded checkpoints, whose tensor order reflects
/// the source layout rather than the target model's enumeration. Every
/// requested tensor must be present (extra tensors in the file are
/// ignored); shapes and CRCs are verified as in load_checkpoint.
CheckpointMeta load_checkpoint_by_name(const std::string& path,
                                       const NamedTensors& tensors);

/// Canonical per-rank file name: <dir>/shard-p<pi>-t<ti>-d<di>.ckpt
std::string shard_path(const std::string& dir, int p_idx, int t_idx, int d_idx);

/// Directory a committed checkpoint's shards live in: <dir>/step-<step>.
/// (The commit protocol keeps each step's shard set in its own directory so
/// a newer, possibly failing save can never damage an older committed one.)
std::string step_dir(const std::string& dir, std::uint64_t step);

}  // namespace ptdp::ckpt
