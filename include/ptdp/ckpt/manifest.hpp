#pragma once

// The world-level checkpoint commit protocol (the durability half of the
// fault-tolerance plane). A per-rank atomic shard write alone is not a
// consistent checkpoint: rank 0 can have published step 1000 while rank 3
// is still at step 900. Commits therefore go through two phases:
//
//   phase 1  every rank writes its shard atomically into <dir>/step-<N>/
//            (temp + fsync + rename; see checkpoint.hpp) and reports the
//            intended (bytes, crc32) of its file;
//   phase 2  after a barrier, one rank publishes <dir>/manifest-<N>.json
//            naming the step and the complete shard set with per-file CRCs,
//            then swings the <dir>/LATEST marker to it — both atomically.
//
// A failure at ANY point leaves either the previous committed checkpoint or
// the new one, never a torn mix: shard dirs are per-step (a new save never
// touches an old step's files), and a manifest only exists once every shard
// it names is durable. find_latest_valid_checkpoint walks markers newest-
// first, re-validating existence, size, and CRC of every named shard, so
// stale markers, missing files, truncations, and byte flips are all skipped
// in favor of the newest checkpoint that is actually whole.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ptdp::ckpt {

/// One shard named by a manifest. `file` is relative to the checkpoint
/// root (e.g. "step-12/shard-p0-t0-d0.ckpt"). `dtype` is the run's weight
/// storage dtype ("f32"/"bf16") and `has_master_weights` whether the shard
/// carries fp32 master copies (mixed precision) — recorded so a resume can
/// reject a checkpoint from a different precision regime before opening
/// any shard. Manifests written before these fields default to f32/false.
struct ManifestEntry {
  std::string file;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  std::string dtype = "f32";
  bool has_master_weights = false;
};

struct Manifest {
  std::uint64_t step = 0;
  std::uint64_t extra = 0;
  std::vector<ManifestEntry> shards;
};

/// Serializes `m` to the manifest JSON format.
std::string manifest_to_json(const Manifest& m);

/// Parses manifest JSON (only the format manifest_to_json emits). Returns
/// nullopt on any malformed input — corrupted manifests are skipped, not
/// fatal.
std::optional<Manifest> parse_manifest_json(const std::string& text);

/// Phase-2 publish: atomically writes <dir>/manifest-<step>.json, then
/// atomically swings <dir>/LATEST to name it. The caller must have
/// barriered after all shard writes: every shard `m` names must already be
/// durable.
void write_manifest(const std::string& dir, const Manifest& m);

/// Reads and parses one manifest file; nullopt if missing/corrupt.
std::optional<Manifest> read_manifest(const std::string& path);

/// True iff every shard the manifest names exists under `dir` with the
/// recorded size and whole-file CRC.
bool validate_manifest(const std::string& dir, const Manifest& m);

/// A committed checkpoint resolved on disk.
struct CommittedCheckpoint {
  Manifest manifest;
  std::string dir;        ///< checkpoint root
  std::string shard_dir;  ///< <dir>/step-<step>
  std::uint64_t step() const { return manifest.step; }
};

/// Walks markers newest-first — the LATEST marker, then every
/// manifest-*.json by descending step — and returns the newest one whose
/// complete shard set validates. nullopt when no committed checkpoint
/// survives under `dir`. When `expected_dtype` is set ("f32"/"bf16"), the
/// newest valid checkpoint must have been written at that dtype: a
/// mismatch CHECK-fails with a clear error rather than silently resuming
/// from (or skipping past) a checkpoint of the wrong precision regime.
std::optional<CommittedCheckpoint> find_latest_valid_checkpoint(
    const std::string& dir,
    const std::optional<std::string>& expected_dtype = std::nullopt);

/// Deletes committed checkpoints older than the newest `keep` (their
/// manifest files and step directories). Invalid manifests older than the
/// newest valid one are garbage too. Never touches the step dir of a
/// retained manifest.
void gc_checkpoints(const std::string& dir, int keep);

}  // namespace ptdp::ckpt
