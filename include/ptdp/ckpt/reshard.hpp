#pragma once

// Checkpoint resharding — the counterpart of Megatron's checkpoint
// conversion tools. A training run saves one shard per rank for its
// (p, t, d) layout; these utilities reassemble those shards into a single
// serial (p = t = 1) checkpoint and re-split a serial checkpoint for a new
// tensor-parallel width, so models can be trained under one layout and
// served or fine-tuned under another.
//
// Shard geometry is a pure function of the canonical parameter name
// (the same convention init_weight_shard uses), so resharding needs no
// side-channel metadata:
//   column-parallel weights (attn.qkv, mlp.fc1) ....... split on axis 1
//   their biases ...................................... split on axis 0
//   row-parallel weights (attn.proj, mlp.fc2) ......... split on axis 0
//   vocab-parallel embedding (embedding.word) ......... split on axis 0
//   LayerNorms, row-parallel biases, positions ........ replicated
// Optimizer state (.adam_m/.adam_v/.fp32_master/.sgd_velocity) shards
// exactly like its base parameter.

#include <string>
#include <utility>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"

namespace ptdp::ckpt {

/// Owning (name, tensor) list read straight from a checkpoint file.
using OwnedTensors = std::vector<std::pair<std::string, tensor::Tensor>>;

/// Reads every tensor in a checkpoint without prior knowledge of its
/// contents (unlike load_checkpoint, which validates against a model).
OwnedTensors read_all(const std::string& path, CheckpointMeta* meta = nullptr);

/// Tensor-parallel shard axis for a canonical parameter name:
/// 0 or 1 for sharded tensors, -1 for replicated ones.
int shard_axis(const std::string& name);

/// Merges the per-rank shards of a (p, t, d=dp_rank-slice) run under `dir`
/// into one serial checkpoint at `out_path`. Reads shard-p{i}-t{j}-d{d_idx}
/// for all i < p, j < t. Duplicated names across pipeline stages (the tied
/// embedding and its optimizer state) are de-duplicated; replicated tensors
/// are verified identical across tensor ranks.
CheckpointMeta merge_shards(const std::string& dir, int p, int t,
                            const std::string& out_path, int d_idx = 0);

/// Splits a serial checkpoint into `t` tensor-parallel shard files under
/// `dir` (pipeline size 1): shard-p0-t{j}-d{d_idx} for j < t. Sharded
/// dimensions must divide by t.
void split_shards(const std::string& merged_path, int t, const std::string& dir,
                  int d_idx = 0);

}  // namespace ptdp::ckpt
