#pragma once

// tensor::TensorArena — the tensor-level face of the planned arena
// (mem::Arena, DESIGN.md §12/§14): slot-indexed scratch Tensors with
// planned reuse. tensor(slot, shape) returns the same storage on every
// call with an unchanged shape/dtype, so the steady state allocates
// nothing — not even the shared_ptr control block a fresh Tensor::empty
// costs — and the scratch bytes sit constant in the pool's live
// accounting instead of churning through it each step.
//
// Contract (mirrors Tensor::empty): contents are whatever the previous
// use left; callers fully overwrite before reading. Do not keep the
// returned Tensor, or a storage-sharing view of it, alive across the
// slot's next use — the storage would alias. An arena belongs to one
// rank thread, like the Tensors it hands out.

#include <cstddef>
#include <vector>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::tensor {

class TensorArena {
 public:
  explicit TensorArena(std::size_t num_slots) : slots_(num_slots) {}
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Uninitialized scratch of the given shape (Tensor::empty semantics).
  Tensor& empty(std::size_t slot, Shape shape, DType dtype = DType::kF32) {
    Tensor& t = slots_.at(slot);
    if (!t.defined() || t.dtype() != dtype || t.shape() != shape) {
      t = Tensor::empty(std::move(shape), dtype);
    }
    return t;
  }

  /// Zeroed scratch (Tensor::zeros semantics — zero-fills on reuse too).
  Tensor& zeros(std::size_t slot, Shape shape, DType dtype = DType::kF32) {
    Tensor& t = empty(slot, std::move(shape), dtype);
    t.zero();
    return t;
  }

  std::size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<Tensor> slots_;
};

}  // namespace ptdp::tensor
