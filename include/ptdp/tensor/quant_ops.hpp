#pragma once

// Blockwise weight-only quantization kernels (DESIGN.md §17): the raw
// pack/unpack/GEMM layer under ptdp::quant. Weights [k, n] (row-major, the
// linear-layer storage layout) are quantized per GROUP — `group` consecutive
// rows of one output column share an f32 scale and a u8 zero-point — and
// packed into kQuantPanel-column panels so the GEMM streams the panel a
// whole cache line of columns at a time:
//
//   int8  payload[(jp*k + kk)*16 + j]      one byte per (row kk, col jp*16+j)
//   q4    payload[(jp*k + kk)*8  + j]      lo nibble = col jp*16+j,
//                                          hi nibble = col jp*16+j+8
//   scales[(gi*npanels + jp)*16 + j]       f32, group gi of col jp*16+j
//   zeros [(gi*npanels + jp)*16 + j]       u8, same indexing
//
// Dequantization is w ≈ (q - z)·s with q, z unsigned; the scale is widened
// after rounding the zero-point so both group extremes stay representable,
// giving max|ŵ - w| ≤ (max - min)/Q per group (Q = 255 for int8, 15 for
// q4). gemm_f32xq{8,4} dequantize inside the packed-panel inner loop —
// the weight matrix is streamed at 1 (or 0.5) bytes per element instead of
// 4, which is the whole win in the memory-bandwidth-bound decode regime.
// Accumulation per output element is serial over k within one panel task,
// so results are bitwise-deterministic across thread counts.

#include <cstdint>

namespace ptdp::tensor {

/// Quantized weight storage formats. Values are stable (serialized in the
/// ptdp::quant wire format and checkpoint manifests).
enum class QuantKind : std::uint8_t {
  kInt8 = 0,  ///< 8-bit, Q = 255, ~4x smaller than f32
  kQ4 = 1,    ///< 4-bit (two per byte), Q = 15, ~8x smaller
};

/// Stable name ("int8"/"q4") for dumps, manifests, CLI flags.
const char* quant_kind_name(QuantKind kind);

/// Integer range top (255 or 15).
std::int64_t quant_levels(QuantKind kind);

/// Panel width of the packed layout (columns per panel).
inline constexpr std::int64_t kQuantPanel = 16;

inline std::int64_t quant_num_panels(std::int64_t n) {
  return (n + kQuantPanel - 1) / kQuantPanel;
}

/// Payload bytes of a packed [k, n] weight (k rows, zero-padded panels).
std::int64_t quant_payload_bytes(QuantKind kind, std::int64_t k, std::int64_t n);

/// Element count of the scales (f32) and zeros (u8) arrays: one per
/// (group, panel column). Requires group | k.
std::int64_t quant_meta_elems(std::int64_t k, std::int64_t n, std::int64_t group);

/// Quantize + pack row-major w [k, n]. `scales`/`zeros` receive
/// quant_meta_elems entries; `payload` receives quant_payload_bytes bytes.
/// Padding columns of the last panel get scale 0 / zero 0 / payload 0, so
/// packed bytes are a pure function of (w, kind, group) — bitwise
/// comparable across ranks.
void quant_pack(QuantKind kind, const float* w, std::int64_t k, std::int64_t n,
                std::int64_t group, std::uint8_t* payload, float* scales,
                std::uint8_t* zeros);

/// Reconstruct ŵ [k, n] row-major: ŵ = (q - z)·s, the exact arithmetic the
/// GEMM kernels apply per element.
void quant_unpack(QuantKind kind, const std::uint8_t* payload, const float* scales,
                  const std::uint8_t* zeros, std::int64_t k, std::int64_t n,
                  std::int64_t group, float* w);

/// C[m,n] = A[m,k] · dequant(W)[k,n]. A and C are row-major f32 with leading
/// dimensions lda/ldc; W is the packed representation above. C is fully
/// overwritten. Parallel over column panels (the natural decomposition for
/// the m ∈ {1..8} decode shapes where row-parallel GEMM degenerates to one
/// serial task); per (row, panel) the k loop is serial, so the result is
/// bitwise-deterministic across thread counts.
void gemm_f32xq8(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                 std::int64_t lda, const std::uint8_t* payload, const float* scales,
                 const std::uint8_t* zeros, std::int64_t group, float* c,
                 std::int64_t ldc);
void gemm_f32xq4(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                 std::int64_t lda, const std::uint8_t* payload, const float* scales,
                 const std::uint8_t* zeros, std::int64_t group, float* c,
                 std::int64_t ldc);

/// Kind-dispatched entry point for the two kernels above.
void gemm_f32xq(QuantKind kind, std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, const std::uint8_t* payload,
                const float* scales, const std::uint8_t* zeros, std::int64_t group,
                float* c, std::int64_t ldc);

}  // namespace ptdp::tensor
