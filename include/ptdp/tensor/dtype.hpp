#pragma once

// The dtype axis of ptdp::tensor (DESIGN.md §13). Two storage types:
//
//   f32   IEEE binary32 — the compute type. Every kernel accumulates in
//         f32 regardless of input dtype, which is what keeps results
//         bitwise-deterministic across thread counts.
//   bf16  bfloat16 stored as raw uint16 bit patterns (the high 16 bits of
//         the corresponding f32). Same exponent range as f32, 8-bit
//         significand: casts never overflow, so bf16 needs no loss-scale
//         protection on the *weights* — the dynamic loss scaler exists for
//         small activation gradients, not for range.
//
// Conversions: f32 -> bf16 rounds to nearest-even on the truncated 16
// mantissa bits (identical numerics to optim::bf16_round, which is the
// scalar emulation this module supersedes); bf16 -> f32 is exact (shift).

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

namespace ptdp::tensor {

enum class DType : std::uint8_t { kF32 = 0, kBf16 = 1 };

/// bf16 payload type: the raw upper-16-bits-of-f32 pattern. Kept as an
/// integer (not a wrapper class) so comm templates over trivially-copyable
/// spans and byte-exact I/O work unchanged.
using bf16_t = std::uint16_t;

constexpr std::size_t dtype_size(DType d) {
  return d == DType::kBf16 ? sizeof(bf16_t) : sizeof(float);
}

constexpr const char* dtype_name(DType d) {
  return d == DType::kBf16 ? "bf16" : "f32";
}

/// Parses "f32"/"bf16"; nullopt for anything else.
inline std::optional<DType> dtype_from_name(std::string_view name) {
  if (name == "f32") return DType::kF32;
  if (name == "bf16") return DType::kBf16;
  return std::nullopt;
}

/// Exact widening: bf16 bits are the high half of the f32 pattern.
inline float bf16_to_f32(bf16_t v) {
  const std::uint32_t bits = static_cast<std::uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Round-to-nearest-even narrowing on the truncated 16 mantissa bits.
inline bf16_t f32_to_bf16(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const std::uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<bf16_t>((bits + rounding) >> 16);
}

}  // namespace ptdp::tensor
