#pragma once

// Kernel library over Tensor: GEMMs, elementwise ops, normalization,
// softmax, embedding, and losses — each with the explicit backward kernel
// the hand-written transformer backprop needs. Forward/backward pairs
// follow the convention: backward takes upstream grad `dy` plus whatever
// the forward stashed, and returns input grads.

#include <cstdint>
#include <span>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::tensor {

// ---- GEMM -------------------------------------------------------------------
//
// All matrices are row-major. The _nt/_tn suffix names which operand is
// transposed, matching BLAS mnemonics. These three cover every product a
// linear layer's forward and backward need.
//
// Dtype: each input may independently be f32 or bf16 (bf16 operands are
// widened inline while packing panels); the output and the accumulation
// are always f32, so results stay bitwise-deterministic across thread
// counts at any input dtype. Every other kernel in this library is
// f32-only (layernorm/softmax/losses stay fp32-compute — DESIGN.md §13).

/// C[m,n] = A[m,k] · B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] · B[n,k]ᵀ
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C[m,n] = A[k,m]ᵀ · B[k,n]
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Batched: C[B,m,n] = A[B,m,k] · B[B,k,n]
Tensor bmm(const Tensor& a, const Tensor& b);
/// Batched: C[B,m,n] = A[B,m,k] · B[B,n,k]ᵀ
Tensor bmm_nt(const Tensor& a, const Tensor& b);
/// Batched: C[B,m,n] = A[B,k,m]ᵀ · B[B,k,n]
Tensor bmm_tn(const Tensor& a, const Tensor& b);

// ---- elementwise -------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float alpha);
/// a += b (in place).
void add_(Tensor& a, const Tensor& b);
/// y += alpha * x (in place).
void axpy_(Tensor& y, float alpha, const Tensor& x);
/// a *= alpha (in place).
void scale_(Tensor& a, float alpha);

/// y[r, :] = x[r, :] + bias for every leading row r. x is [..., n], bias [n].
Tensor add_bias(const Tensor& x, const Tensor& bias);
/// Gradient of a broadcast bias: column sums of dy ([..., n] -> [n]).
Tensor bias_grad(const Tensor& dy);

// ---- activations ---------------------------------------------------------------

/// GeLU with the tanh approximation used by GPT-2/Megatron.
Tensor gelu(const Tensor& x);
/// dX given upstream dy and the forward *input* x.
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

/// GeLU kernel-path switch. The default path evaluates tanh through a
/// vectorized exp (relative error ~1e-7, ~20x the scalar-libm throughput);
/// the exact path calls std::tanh per element, bitwise-matching pre-§17
/// outputs. Both paths are bitwise-deterministic across thread counts, and
/// gelu / gelu_backward / fused_bias_gelu / fused_bias_gelu_backward always
/// switch together (the fused and unfused compositions stay equal). Initial
/// value comes from PTDP_GELU_EXACT=1; set_gelu_exact flips it at runtime
/// and returns the previous value.
bool gelu_exact();
bool set_gelu_exact(bool on);

/// Dropout at probability p. Returns y and writes the kept-mask (0/1 scaled
/// by 1/(1-p)) into `mask` (allocated to x's shape). p == 0 is identity.
Tensor dropout(const Tensor& x, float p, Rng& rng, Tensor& mask);
/// dX = dy * mask.
Tensor dropout_backward(const Tensor& dy, const Tensor& mask);

// ---- normalization -------------------------------------------------------------

struct LayerNormResult {
  Tensor y;     ///< normalized output, same shape as x
  Tensor mean;  ///< per-row mean [rows]
  Tensor rstd;  ///< per-row reciprocal stddev [rows]
};

/// LayerNorm over the last dimension. x is [..., n]; gamma/beta are [n].
LayerNormResult layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                          float eps = 1e-5f);

struct LayerNormGrads {
  Tensor dx;
  Tensor dgamma;
  Tensor dbeta;
};

LayerNormGrads layernorm_backward(const Tensor& dy, const Tensor& x,
                                  const Tensor& gamma, const Tensor& mean,
                                  const Tensor& rstd);

// ---- softmax -------------------------------------------------------------------

/// Numerically-stable softmax over the last dimension.
Tensor softmax_lastdim(const Tensor& x);
/// dX from the softmax *output* y: dx = y ⊙ (dy − Σ(y ⊙ dy)).
Tensor softmax_backward(const Tensor& y, const Tensor& dy);

// ---- fused kernels (§4.2) ------------------------------------------------------
//
// The paper fuses (a) bias+GeLU, (b) bias+dropout+add, and (c)
// scale+mask+softmax (general and implicit-causal variants) to keep the
// operator graph compute-bound. We provide the same fusions; the unfused
// compositions exist above so benches can measure the win.

/// y = GeLU(x + bias). x is [..., n], bias [n].
Tensor fused_bias_gelu(const Tensor& x, const Tensor& bias);
/// Returns dX; accumulates the bias grad into `dbias` ([n], pre-zeroed by caller).
Tensor fused_bias_gelu_backward(const Tensor& dy, const Tensor& x, const Tensor& bias,
                                Tensor& dbias);

/// y = dropout(x + bias, p) + residual. Mask is written as in dropout().
Tensor fused_bias_dropout_add(const Tensor& x, const Tensor& bias,
                              const Tensor& residual, float p, Rng& rng,
                              Tensor& mask);

/// Scaled causal softmax: y = softmax(scale * s + causal_mask) where s is
/// [rows, sq, sk] and position i may attend to keys j <= i + (sk - sq).
/// This is the "implicit causal masking" fused kernel for GPT.
Tensor fused_scale_causal_softmax(const Tensor& scores, float scl);

/// Scaled general-mask softmax: mask is [sq, sk] with 1 = masked out
/// (receives -inf), matching BERT-style padding masks.
Tensor fused_scale_mask_softmax(const Tensor& scores, const Tensor& mask, float scl);

/// Backward of either fused softmax: dScores = scale * softmax_backward(y, dy),
/// with masked positions already zero in y.
Tensor fused_scale_softmax_backward(const Tensor& y, const Tensor& dy, float scl);

// ---- embedding -----------------------------------------------------------------

/// Gather rows: out[i, :] = table[ids[i], :]. ids values must be in [0, V).
Tensor embedding(const Tensor& table, std::span<const std::int32_t> ids);
/// Scatter-add into dtable ([V, h], pre-zeroed or accumulating).
void embedding_backward(const Tensor& dy, std::span<const std::int32_t> ids,
                        Tensor& dtable);

// ---- loss ----------------------------------------------------------------------

struct CrossEntropyResult {
  float loss;    ///< mean negative log-likelihood over rows
  Tensor probs;  ///< softmax(logits), stashed for backward
};

/// Mean cross-entropy over rows of logits [n, V] against integer targets.
CrossEntropyResult cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> targets);
/// dLogits = (probs − onehot(targets)) / n.
Tensor cross_entropy_backward(const Tensor& probs,
                              std::span<const std::int32_t> targets);

// ---- reductions ----------------------------------------------------------------

float sum_all(const Tensor& x);
float mean_all(const Tensor& x);
float max_all(const Tensor& x);
/// Sum of squares of all elements (for grad-norm clipping).
double squared_norm(const Tensor& x);
/// Per-row max over the last dimension: [..., n] -> [rows].
Tensor row_max(const Tensor& x);
/// Per-row sum over the last dimension.
Tensor row_sum(const Tensor& x);

}  // namespace ptdp::tensor
