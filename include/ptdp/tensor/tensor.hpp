#pragma once

// Dense tensor with shared storage (torch-like copy semantics: copies
// share the buffer, clone() deep-copies). Tensors are always contiguous
// in row-major order — transposes and non-leading-dim slices copy, but
// slice(dim=0, ...) is a zero-copy view (a contiguous strip of the
// parent's storage). This keeps every kernel a flat loop over std::span,
// which is what the fused-kernel story of §4.2 needs anyway.
//
// Dtype axis (DESIGN.md §13): storage is f32 (default) or bf16. data()
// is the f32 fast path every compute kernel uses and CHECK-fails on bf16
// tensors; bf16 payloads are reached via data_bf16() (raw uint16 bit
// patterns) or dtype-blind raw_bytes(). to(DType) casts; the structural
// ops (view/slice/clone/concat/...) are dtype-preserving. RNG factories
// always produce f32 — init in full precision, then cast.
//
// Storage comes from the ptdp::mem pooled allocator (DESIGN.md §12):
// Tensor::empty() is the uninitialized fast path for outputs that are
// fully overwritten; Tensor(shape)/zeros() additionally zero-fill.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ptdp/mem/pool.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"
#include "ptdp/tensor/dtype.hpp"

namespace ptdp::tensor {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
std::int64_t numel_of(const Shape& shape);

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // ---- factories -----------------------------------------------------------

  /// UNINITIALIZED tensor: for outputs every element of which is about to
  /// be overwritten. Reading before writing is undefined (and will differ
  /// between pool-on and pool-off runs — never let uninitialized bytes
  /// reach arithmetic). bf16 tensors of odd numel round their storage up
  /// to a whole float; the trailing 2 bytes are slack that no accessor
  /// (data_bf16, raw_bytes) ever exposes.
  static Tensor empty(Shape shape, DType dtype = DType::kF32);
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor zeros(Shape shape, DType dtype);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// N(0, stddev^2) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// U[lo, hi) entries drawn from `rng`.
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// [0, 1, 2, ...] as a 1-D tensor.
  static Tensor arange(std::int64_t n);
  /// 1-D tensor from explicit values.
  static Tensor from_values(std::initializer_list<float> values);
  static Tensor from_vector(Shape shape, const std::vector<float>& values);

  // ---- metadata ------------------------------------------------------------

  std::int64_t ndim() const noexcept { return static_cast<std::int64_t>(shape_.size()); }
  const Shape& shape() const noexcept { return shape_; }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const noexcept { return numel_; }
  bool defined() const noexcept { return storage_ != nullptr; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;
  DType dtype() const noexcept { return dtype_; }
  std::size_t itemsize() const noexcept { return dtype_size(dtype_); }
  /// Payload bytes (numel * itemsize) — what comm and checkpoint I/O move.
  std::size_t nbytes() const noexcept {
    return static_cast<std::size_t>(numel_) * itemsize();
  }

  // ---- element access --------------------------------------------------------

  /// f32 payload. CHECK-fails on bf16 tensors: kernels that want f32 math
  /// over a bf16 tensor must widen (to(DType::kF32)) or take the dtype
  /// dispatch path (matmul/bmm do, via packed widening).
  std::span<float> data();
  std::span<const float> data() const;
  /// bf16 payload as raw bit patterns. CHECK-fails on f32 tensors.
  std::span<bf16_t> data_bf16();
  std::span<const bf16_t> data_bf16() const;
  /// Dtype-blind payload bytes (exactly nbytes() long, never storage slack).
  std::span<std::byte> raw_bytes();
  std::span<const std::byte> raw_bytes() const;
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // ---- structural ops (storage-sharing where possible) -----------------------

  /// Reinterpret with a new shape of equal numel; shares storage.
  Tensor view(Shape new_shape) const;
  /// Flatten to 1-D; shares storage.
  Tensor flatten() const { return view({numel_}); }
  /// Deep copy (same dtype).
  Tensor clone() const;
  /// Copy `src`'s contents into this tensor (shape AND dtype must match;
  /// converting copies go through to() / cast_into()).
  void copy_from(const Tensor& src);
  /// Set every element to `value` (rounded to the storage dtype).
  void fill(float value);
  void zero() { fill(0.0f); }
  /// Dtype conversion: a deep copy in the requested dtype (clone() when
  /// the dtype already matches). f32->bf16 rounds to nearest-even;
  /// bf16->f32 is exact.
  Tensor to(DType dtype) const;

  /// Slice along dimension `dim`: rows [start, start+len). dim 0 is a
  /// zero-copy VIEW (shares and keeps alive the parent's storage; writes
  /// are visible both ways) — clone() the result before mutating it if
  /// aliasing the parent is not wanted. Other dims deep-copy.
  Tensor slice(std::int64_t dim, std::int64_t start, std::int64_t len) const;
  /// Copying transpose of the two given dimensions.
  Tensor transpose(std::int64_t d0, std::int64_t d1) const;
  /// Copying permutation of dimensions.
  Tensor permute(const std::vector<std::int64_t>& perm) const;

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::int64_t numel_ = 0;
  std::int64_t offset_ = 0;  ///< ELEMENT offset into storage_ (dim-0 views)
  DType dtype_ = DType::kF32;
  std::shared_ptr<mem::Buffer> storage_;
};

/// Concatenate along dimension `dim` (all other dims equal).
Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim);
/// Split into `n` equal parts along dimension `dim`. Parts along dim 0
/// are zero-copy views into `x` (see Tensor::slice).
std::vector<Tensor> split(const Tensor& x, std::int64_t n, std::int64_t dim);

/// Vectorized dtype conversion into a pre-allocated destination (same
/// shape; any src/dst dtype pair). The zero-allocation path comm staging
/// and the mixed-precision optimizer use every step.
void cast_into(const Tensor& src, Tensor& dst);
/// Span-level casts for staging buffers that never grow a Tensor wrapper.
void widen_bf16(std::span<const bf16_t> src, std::span<float> dst);
void narrow_bf16(std::span<const float> src, std::span<bf16_t> dst);

/// Max |a - b| over all elements (shapes must match; bf16 operands are
/// widened exactly, so mixed-dtype comparisons measure the true gap).
float max_abs_diff(const Tensor& a, const Tensor& b);
/// True iff max_abs_diff(a, b) <= atol + rtol * max|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);

}  // namespace ptdp::tensor
