#pragma once

// Dense float32 tensor with shared storage (torch-like copy semantics:
// copies share the buffer, clone() deep-copies). Tensors are always
// contiguous in row-major order — transposes and non-leading-dim slices
// copy, but slice(dim=0, ...) is a zero-copy view (a contiguous strip of
// the parent's storage). This keeps every kernel a flat loop over
// std::span, which is what the fused-kernel story of §4.2 needs anyway.
//
// Storage comes from the ptdp::mem pooled allocator (DESIGN.md §12):
// Tensor::empty() is the uninitialized fast path for outputs that are
// fully overwritten; Tensor(shape)/zeros() additionally zero-fill.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ptdp/mem/pool.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"

namespace ptdp::tensor {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
std::int64_t numel_of(const Shape& shape);

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // ---- factories -----------------------------------------------------------

  /// UNINITIALIZED tensor: for outputs every element of which is about to
  /// be overwritten. Reading before writing is undefined (and will differ
  /// between pool-on and pool-off runs — never let uninitialized bytes
  /// reach arithmetic).
  static Tensor empty(Shape shape);
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// N(0, stddev^2) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// U[lo, hi) entries drawn from `rng`.
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// [0, 1, 2, ...] as a 1-D tensor.
  static Tensor arange(std::int64_t n);
  /// 1-D tensor from explicit values.
  static Tensor from_values(std::initializer_list<float> values);
  static Tensor from_vector(Shape shape, const std::vector<float>& values);

  // ---- metadata ------------------------------------------------------------

  std::int64_t ndim() const noexcept { return static_cast<std::int64_t>(shape_.size()); }
  const Shape& shape() const noexcept { return shape_; }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const noexcept { return numel_; }
  bool defined() const noexcept { return storage_ != nullptr; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  // ---- element access --------------------------------------------------------

  std::span<float> data();
  std::span<const float> data() const;
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // ---- structural ops (storage-sharing where possible) -----------------------

  /// Reinterpret with a new shape of equal numel; shares storage.
  Tensor view(Shape new_shape) const;
  /// Flatten to 1-D; shares storage.
  Tensor flatten() const { return view({numel_}); }
  /// Deep copy.
  Tensor clone() const;
  /// Copy `src`'s contents into this tensor (shapes must match).
  void copy_from(const Tensor& src);
  /// Set every element to `value`.
  void fill(float value);
  void zero() { fill(0.0f); }

  /// Slice along dimension `dim`: rows [start, start+len). dim 0 is a
  /// zero-copy VIEW (shares and keeps alive the parent's storage; writes
  /// are visible both ways) — clone() the result before mutating it if
  /// aliasing the parent is not wanted. Other dims deep-copy.
  Tensor slice(std::int64_t dim, std::int64_t start, std::int64_t len) const;
  /// Copying transpose of the two given dimensions.
  Tensor transpose(std::int64_t d0, std::int64_t d1) const;
  /// Copying permutation of dimensions.
  Tensor permute(const std::vector<std::int64_t>& perm) const;

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::int64_t numel_ = 0;
  std::int64_t offset_ = 0;  ///< float offset into storage_ (dim-0 views)
  std::shared_ptr<mem::Buffer> storage_;
};

/// Concatenate along dimension `dim` (all other dims equal).
Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim);
/// Split into `n` equal parts along dimension `dim`. Parts along dim 0
/// are zero-copy views into `x` (see Tensor::slice).
std::vector<Tensor> split(const Tensor& x, std::int64_t n, std::int64_t dim);

/// Max |a - b| over all elements (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);
/// True iff max_abs_diff(a, b) <= atol + rtol * max|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);

}  // namespace ptdp::tensor
