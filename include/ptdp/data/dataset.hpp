#pragma once

// Synthetic training data. The paper trains on web-scale text we do not
// have; the loss-curve and data-path mechanics only need a *learnable*
// token distribution, so SyntheticCorpus mixes a zipfian unigram draw with
// a deterministic bigram ("markov") rule — a model that learns the bigram
// structure shows a clearly decreasing loss. Sharding and microbatching
// reproduce Megatron's data layout: the global batch is split across
// data-parallel replicas, each replica splits its share into microbatches.

#include <cstdint>
#include <vector>

#include "ptdp/model/stage.hpp"
#include "ptdp/runtime/rng.hpp"

namespace ptdp::data {

/// Deterministic synthetic token stream over a vocabulary.
class SyntheticCorpus {
 public:
  SyntheticCorpus(std::int64_t vocab, std::uint64_t seed);

  /// Generates a stream of n tokens.
  std::vector<std::int32_t> generate(std::int64_t n) const;

  std::int64_t vocab() const { return vocab_; }

 private:
  std::int32_t next_token(std::int32_t prev, Rng& rng) const;

  std::int64_t vocab_;
  std::uint64_t seed_;
  std::vector<std::int32_t> bigram_successor_;  ///< deterministic rule table
};

/// Fixed-length (s+1)-token windows over a stream; sample i yields inputs
/// stream[i*s .. i*s+s) and next-token targets stream[i*s+1 .. i*s+s].
class TokenDataset {
 public:
  TokenDataset(std::vector<std::int32_t> stream, std::int64_t seq);

  std::int64_t size() const { return num_samples_; }
  std::int64_t seq() const { return seq_; }

  /// Writes sample `index`'s tokens/targets (each `seq` long).
  void sample(std::int64_t index, std::int32_t* tokens, std::int32_t* targets) const;

 private:
  std::vector<std::int32_t> stream_;
  std::int64_t seq_;
  std::int64_t num_samples_;
};

/// Produces this data-parallel rank's microbatches for global step `step`.
/// Deterministic in (seed, step): every rank agrees on the global sample
/// assignment, and the union over ranks is independent of d.
class ShardedLoader {
 public:
  /// global_batch must divide by (d * microbatch_size).
  ShardedLoader(const TokenDataset& dataset, std::int64_t global_batch,
                std::int64_t microbatch_size, int d, int d_rank,
                std::uint64_t seed);

  /// m = global_batch / (d * microbatch_size) microbatches, tags unique
  /// within the step and stable across (p, t) layouts.
  std::vector<model::Microbatch> next_batch(std::int64_t step) const;

  std::int64_t microbatches_per_step() const { return m_; }

 private:
  const TokenDataset& dataset_;
  std::int64_t global_batch_, micro_b_, m_;
  int d_, d_rank_;
  std::uint64_t seed_;
};

// ---- masked-language-model corruption (BERT-style objective) -------------------

struct MlmOptions {
  float mask_prob = 0.15f;       ///< fraction of positions selected for loss
  std::int32_t mask_token = -1;  ///< replacement token; -1 = vocab-1 convention
  float keep_prob = 0.1f;        ///< of selected: left unchanged (BERT's 10%)
  float random_prob = 0.1f;      ///< of selected: replaced by a random token
};

/// Converts a causal-LM microbatch (as produced by ShardedLoader) into a
/// BERT-style MLM microbatch in place: targets become the *original*
/// tokens, selected input positions are corrupted (mask token / random /
/// unchanged per BERT's 80/10/10), and loss_weights selects exactly the
/// corrupted positions. Deterministic in (mb.tag, position); guarantees at
/// least one selected position. `vocab` is the model's vocabulary size.
void apply_mlm_masking(model::Microbatch& mb, std::int64_t vocab,
                       const MlmOptions& options, std::uint64_t seed);

}  // namespace ptdp::data
