#pragma once

// Hardware model of the evaluation platform (§5): Selene — DGX A100 nodes
// (8× 80-GB A100, NVLink/NVSwitch intra-node, 8× HDR InfiniBand 200 Gbps
// inter-node, three-level fat tree). All bandwidths in bytes/second,
// latencies in seconds.

#include <cstdint>

namespace ptdp::sim {

struct ClusterSpec {
  int gpus_per_node = 8;

  // ---- compute (A100 80GB) ----
  double peak_flops = 312e12;       ///< fp16 tensor-core peak
  double hbm_bw = 1.8e12;           ///< usable HBM2e bandwidth
  double gemm_efficiency_cap = 0.78;///< best-case fraction of peak for GEMM
  double kernel_overhead = 6e-6;    ///< launch + tail latency per kernel

  // ---- intra-node interconnect (NVLink3 + NVSwitch) ----
  double nvlink_bw = 250e9;         ///< per-GPU per-direction usable
  double nvlink_latency = 3e-6;

  // ---- inter-node interconnect (HDR InfiniBand) ----
  double ib_link_bw = 21e9;         ///< 200 Gbps HDR ≈ 25 GB/s raw, ~21 usable
  int ib_links_per_node = 8;        ///< one HCA per GPU
  double ib_latency = 6e-6;

  // ---- memory & storage ----
  double gpu_memory = 80e9;         ///< bytes per GPU
  double fs_read_bw = 1e12;         ///< §5.10: 1 TB/s peak parallel-FS read
  double fs_write_bw = 683e9;       ///< peak write (saves reached 40% = 273 GB/s)

  /// The Selene configuration used throughout §5.
  static ClusterSpec selene() { return ClusterSpec{}; }
};

/// Time for one GEMM C[m,n] = A[m,k]·B[k,n] in fp16: roofline over the
/// efficiency-capped tensor cores and HBM, plus launch overhead.
double gemm_time(const ClusterSpec& hw, double m, double k, double n);

/// Time for a memory-bound elementwise/reduction pass touching `bytes`.
double memory_bound_time(const ClusterSpec& hw, double bytes);

/// Ring all-reduce over `group` ranks moving `bytes` per rank.
/// `within_node` selects NVLink vs InfiniBand bandwidth.
double ring_all_reduce_time(const ClusterSpec& hw, double bytes, int group,
                            bool within_node);
/// Ring all-gather / reduce-scatter (half the all-reduce volume).
double ring_all_gather_time(const ClusterSpec& hw, double bytes, int group,
                            bool within_node);

/// Point-to-point transfer of `bytes` over one link.
double p2p_time(const ClusterSpec& hw, double bytes, bool cross_node);

}  // namespace ptdp::sim
