#pragma once

// Discrete-event iteration simulator: executes the *actual* per-rank op
// lists produced by pipeline::build_rank_schedule on a virtual clock, with
// per-virtual-stage compute costs from the cost model, point-to-point
// activation transfers (with or without the §4.1 scatter/gather
// optimization), tensor-parallel all-reduces inside each op, and the
// end-of-batch data-parallel gradient all-reduce + optimizer step. The
// same schedules drive the functional executor, so the performance numbers
// describe exactly the code paths the correctness tests verify.

#include "ptdp/core/analytics.hpp"
#include "ptdp/core/planner.hpp"
#include "ptdp/sim/cost_model.hpp"

namespace ptdp::sim {

struct SimOptions {
  bool fused_kernels = true;
  bool check_memory = true;  ///< report OOM when footprint exceeds capacity
};

struct IterationResult {
  double iteration_seconds = 0;
  double pipeline_makespan = 0;   ///< fwd+bwd phase only
  double bubble_fraction = 0;     ///< measured (makespan − ideal)/ideal
  double per_gpu_flops = 0;       ///< achieved model FLOP/s per GPU
  double aggregate_flops = 0;
  double percent_of_peak = 0;
  double sequences_per_second = 0;
  double p2p_seconds = 0;         ///< pipeline p2p on the critical path proxy
  double tp_comm_seconds = 0;     ///< per-device tensor-parallel comm total
  double dp_comm_seconds = 0;     ///< data-parallel all-reduce
  double memory_bytes = 0;        ///< peak per-GPU footprint
  bool oom = false;
};

/// Simulates one training iteration of `model` under `cfg` on `hw`.
IterationResult simulate_iteration(const ClusterSpec& hw, const model::GptConfig& m,
                                   const core::ParallelConfig& cfg,
                                   std::int64_t global_batch,
                                   const SimOptions& options = {});

/// Time to move one microbatch's activations between consecutive pipeline
/// stages (the quantity the scatter/gather optimization shrinks).
double stage_transfer_time(const ClusterSpec& hw, const model::GptConfig& m,
                           const core::ParallelConfig& cfg);

/// Planner adapter: ranks candidate configurations by simulated iteration
/// time (the "rich" alternative to core::analytic_throughput_model).
core::ThroughputModel make_throughput_model(const ClusterSpec& hw,
                                            const SimOptions& options = {});

}  // namespace ptdp::sim
