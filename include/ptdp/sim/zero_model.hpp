#pragma once

// ZeRO-3 performance model (§5.2 baseline). ZeRO-3 shards parameters,
// grads, and optimizer state over all n data-parallel workers with no model
// parallelism: every step each worker all-gathers the full parameter set
// before forward and again before backward (params are freed between), and
// reduce-scatters the grads — all over cross-node links, overlapped with
// compute as DeepSpeed does. With the global batch fixed, doubling n halves
// per-GPU compute while the per-GPU gather volume stays ~constant, which is
// exactly why Fig. 10's ZeRO-3 curves fall off while PTD-P's stay flat.

#include "ptdp/sim/cost_model.hpp"
#include "ptdp/sim/simulator.hpp"

namespace ptdp::sim {

struct ZeroResult {
  double iteration_seconds = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;       ///< param all-gathers + grad reduce-scatter
  double per_gpu_flops = 0;
  double aggregate_flops = 0;
  double memory_bytes = 0;       ///< per-GPU: sharded state + activations
  bool oom = false;
  double training_days_300b_tokens = 0;  ///< Table 2's last column
};

/// One ZeRO-3 iteration of `model` on `n_gpus` with per-GPU microbatch `b`
/// and fixed global batch. Requires global_batch % (n_gpus * b) == 0.
ZeroResult simulate_zero3_iteration(const ClusterSpec& hw, const model::GptConfig& m,
                                    std::int64_t global_batch, std::int64_t n_gpus,
                                    std::int64_t b, const SimOptions& options = {});

}  // namespace ptdp::sim
