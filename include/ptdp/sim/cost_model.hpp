#pragma once

// Transformer cost model: per-microbatch forward/backward time for one
// pipeline chunk on one GPU, split into GEMM time (roofline), memory-bound
// elementwise time (where the §4.2 kernel fusions act), and tensor-parallel
// all-reduce time. Every GEMM in the transformer appears explicitly with
// its true (m, k, n) shape, so microbatch size, tensor-parallel width, and
// hidden size drive efficiency exactly the way Figs. 7/13/15/16 show.

#include "ptdp/core/parallel_config.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/sim/hardware.hpp"

namespace ptdp::sim {

struct CostOptions {
  bool fused_kernels = true;  ///< §4.2 fusions (bias+GeLU, bias+drop+add, softmax)
};

struct ChunkCost {
  double fwd_compute = 0;  ///< GEMM + elementwise seconds, forward
  double bwd_compute = 0;  ///< backward (≈2× GEMM work)
  double fwd_tp_comm = 0;  ///< tensor-parallel all-reduce seconds, forward
  double bwd_tp_comm = 0;
  double fwd() const { return fwd_compute + fwd_tp_comm; }
  double bwd() const { return bwd_compute + bwd_tp_comm; }
};

/// Batched GEMM (one strided-batched kernel): `batch` GEMMs of (m, k, n).
double gemm_time_batched(const ClusterSpec& hw, double batch, double m, double k,
                         double n);

/// Cost of one microbatch through `layers` transformer layers at tensor
/// width cfg.t, plus (optionally) the embedding and the LM head.
/// Activation-recomputation cost is NOT folded in here — the simulator adds
/// the extra forward to the backward when cfg.recompute is set.
ChunkCost chunk_cost(const ClusterSpec& hw, const model::GptConfig& m,
                     const core::ParallelConfig& cfg, std::int64_t layers,
                     bool has_embedding, bool has_head,
                     const CostOptions& options = {});

/// Per-GPU throughput (model FLOP/s counted via Eq. (3)'s per-layer terms)
/// for a single GPU running the full model at microbatch b — the Fig. 7
/// experiment.
double single_gpu_flops(const ClusterSpec& hw, const model::GptConfig& m,
                        std::int64_t b, const CostOptions& options = {});

}  // namespace ptdp::sim
