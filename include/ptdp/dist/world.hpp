#pragma once

// World: hosts N "GPU ranks" as threads in this process. Each rank runs the
// same function (SPMD, exactly like mpirun/torchrun) and communicates
// through a shared Mailbox. This is the substitute for the NCCL+multi-node
// substrate of the paper: semantics are identical, transport is memcpy.
//
// Failure semantics: the first rank to throw is the root cause; its death
// poisons the Mailbox so peers blocked on messages it will never send
// unwind with WorldPoisoned instead of deadlocking. run() rethrows the
// root cause wrapped in RankFailure{rank, step, cause} so a supervisor
// (ptdp::ft::TrainSupervisor) can log who died and where. An optional
// FaultPlan turns the World into a deterministic failure testbed.

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/mailbox.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::dist {

namespace detail {
// Per-rank-thread progress marker; see note_step().
inline thread_local std::uint64_t t_rank_step = 0;
}  // namespace detail

/// Records the calling rank thread's training progress (its current step).
/// Purely advisory: World::run stamps the value into RankFailure when the
/// rank dies, so the supervisor can report steps lost. PtdpEngine calls
/// this at the top of every train_step.
inline void note_step(std::uint64_t step) { detail::t_rank_step = step; }
inline std::uint64_t noted_step() { return detail::t_rank_step; }

/// What World::run throws when a rank fails: the root-cause exception
/// wrapped with the originating world rank and its last noted step.
/// Derives from runtime_error; what() includes the cause's message.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, std::uint64_t step, std::exception_ptr cause)
      : std::runtime_error(format(rank, step, cause)),
        rank_(rank),
        step_(step),
        cause_(std::move(cause)) {}

  /// World rank whose exception was the root cause.
  int rank() const noexcept { return rank_; }
  /// That rank's last note_step() value (0 if it never noted progress).
  std::uint64_t step() const noexcept { return step_; }
  std::exception_ptr cause() const noexcept { return cause_; }
  [[noreturn]] void rethrow_cause() const { std::rethrow_exception(cause_); }

  /// True when the root cause is (derived from) E.
  template <typename E>
  bool caused_by() const {
    try {
      std::rethrow_exception(cause_);
    } catch (const E&) {
      return true;
    } catch (...) {
      return false;
    }
  }

 private:
  static std::string format(int rank, std::uint64_t step,
                            const std::exception_ptr& cause) {
    std::string msg =
        "rank " + std::to_string(rank) + " failed (step " + std::to_string(step) + ")";
    try {
      std::rethrow_exception(cause);
    } catch (const std::exception& e) {
      msg += ": ";
      msg += e.what();
    } catch (...) {
      msg += ": unknown exception";
    }
    return msg;
  }

  int rank_;
  std::uint64_t step_;
  std::exception_ptr cause_;
};

class World {
 public:
  explicit World(int size) : size_(size), mailbox_(std::make_shared<Mailbox>()) {
    PTDP_CHECK_GT(size, 0);
  }

  int size() const noexcept { return size_; }

  /// Installs (or clears) a deterministic fault-injection plan. Every Comm
  /// op in subsequent run() calls consults it; run() calls
  /// FaultPlan::begin_run so per-run op counts start from zero.
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_plan_ = plan;
    mailbox_->set_fault_plan(std::move(plan));
  }
  const std::shared_ptr<FaultPlan>& fault_plan() const noexcept { return fault_plan_; }

  /// Installs the watchdog deadline configuration consulted by every
  /// blocking wait in subsequent run() calls (see TimeoutOptions — the
  /// default, op_timeout_ms == 0, means waits block forever). Call while
  /// no rank threads are running, like set_fault_plan.
  void set_timeouts(const TimeoutOptions& t) { mailbox_->set_timeouts(t); }
  TimeoutOptions timeouts() const { return mailbox_->timeouts(); }

  /// Run `fn(comm)` on every rank concurrently (one thread per rank) and
  /// block until all complete. If any rank throws, the first (root-cause)
  /// exception is rethrown on the caller wrapped in RankFailure after all
  /// threads have been joined.
  void run(const std::function<void(Comm&)>& fn) {
    std::vector<int> members(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) members[static_cast<std::size_t>(r)] = r;

    if (fault_plan_) fault_plan_->begin_run();

    struct Failure {
      int rank;
      std::uint64_t step;
      std::exception_ptr error;
    };
    std::optional<Failure> first_failure;
    std::mutex error_mu;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r] {
        note_step(0);
        obs::bind_rank(r);  // attribute trace events / metrics to this rank
        const auto record = [&] {
          std::lock_guard lock(error_mu);
          if (!first_failure) {
            first_failure = Failure{r, noted_step(), std::current_exception()};
          }
        };
        try {
          Comm comm(mailbox_, members, r, /*comm_id=*/world_comm_id_);
          fn(comm);
        } catch (const WorldPoisoned&) {
          // Usually a secondary unwind caused by another rank's death — but
          // only if the world actually *is* poisoned. A rank whose own root
          // cause derives from WorldPoisoned (before anyone poisoned the
          // mailbox) must be recorded, or the run would report success.
          if (!mailbox_->poisoned()) {
            record();
            mailbox_->poison();
          }
        } catch (...) {
          record();
          // Wake peers blocked on messages this rank will never send.
          mailbox_->poison();
        }
      });
    }
    for (auto& t : threads) t.join();
    // Give the next run() a fresh communicator id so any message a failed
    // rank left behind cannot be delivered to a later run; clear poison.
    ++world_comm_id_;
    if (first_failure) {
      mailbox_->reset();
      throw RankFailure(first_failure->rank, first_failure->step,
                        first_failure->error);
    }
  }

  /// Undelivered messages across all channels (should be 0 after a clean run).
  std::size_t pending_messages() const { return mailbox_->pending(); }

 private:
  int size_;
  std::shared_ptr<Mailbox> mailbox_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::uint64_t world_comm_id_ = 0;
};

}  // namespace ptdp::dist
