#pragma once

// World: hosts N "GPU ranks" as threads in this process. Each rank runs the
// same function (SPMD, exactly like mpirun/torchrun) and communicates
// through a shared Mailbox. This is the substitute for the NCCL+multi-node
// substrate of the paper: semantics are identical, transport is memcpy.

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/dist/mailbox.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::dist {

class World {
 public:
  explicit World(int size) : size_(size), mailbox_(std::make_shared<Mailbox>()) {
    PTDP_CHECK_GT(size, 0);
  }

  int size() const noexcept { return size_; }

  /// Run `fn(comm)` on every rank concurrently (one thread per rank) and
  /// block until all complete. The first exception thrown by any rank is
  /// rethrown on the caller after all threads have been joined.
  void run(const std::function<void(Comm&)>& fn) {
    std::vector<int> members(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) members[static_cast<std::size_t>(r)] = r;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    std::exception_ptr first_error;
    std::mutex error_mu;

    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r] {
        try {
          Comm comm(mailbox_, members, r, /*comm_id=*/world_comm_id_);
          fn(comm);
        } catch (const WorldPoisoned&) {
          // Secondary failure caused by another rank's death — not the
          // root cause; don't overwrite it.
        } catch (...) {
          {
            std::lock_guard lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Wake peers blocked on messages this rank will never send.
          mailbox_->poison();
        }
      });
    }
    for (auto& t : threads) t.join();
    // Give the next run() a fresh communicator id so any message a failed
    // rank left behind cannot be delivered to a later run; clear poison.
    ++world_comm_id_;
    if (first_error) {
      mailbox_->reset();
      std::rethrow_exception(first_error);
    }
  }

  /// Undelivered messages across all channels (should be 0 after a clean run).
  std::size_t pending_messages() const { return mailbox_->pending(); }

 private:
  int size_;
  std::shared_ptr<Mailbox> mailbox_;
  std::uint64_t world_comm_id_ = 0;
};

}  // namespace ptdp::dist
