#pragma once

// Tag-addressed message store backing all point-to-point communication in
// the thread-backed world. Messages are byte buffers keyed by
// (communicator id, source world rank, destination world rank, tag), so a
// receiver can wait for a *specific* message regardless of arrival order —
// the property that makes complex pipeline schedules deadlock-free.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ptdp::dist {

class FaultPlan;

namespace detail {
// Per-rank-thread communication wait accumulator (nanoseconds blocked in
// Request::wait / blocking recv). The self-healing plane reads it to split
// a step's wall time into busy vs wait: a straggler shows high busy time
// while its peers show high wait time — the MegaScale-style signal that
// survives the lockstep coupling of a synchronous pipeline (where plain
// wall time converges across ranks and says nothing).
inline thread_local std::int64_t t_comm_wait_ns = 0;
}  // namespace detail

/// Nanoseconds this rank thread has spent blocked on communication since
/// thread start (monotonically increasing; callers diff across a step).
inline std::int64_t comm_wait_ns() { return detail::t_comm_wait_ns; }
inline void add_comm_wait_ns(std::int64_t ns) { detail::t_comm_wait_ns += ns; }

/// Watchdog configuration for blocking receives. With op_timeout_ms == 0
/// (the default) waits block forever — exactly the pre-watchdog behavior.
/// With a deadline set, a blocked wait re-probes the mailbox in bounded,
/// exponentially backed-off slices (the retry ladder for transient
/// slowness: a delayed message arriving within the deadline completes the
/// op normally) and converts a wait that exhausts the deadline into a
/// structured RankTimeout instead of an infinite block.
struct TimeoutOptions {
  std::int64_t op_timeout_ms = 0;     ///< total deadline; 0 = no watchdog
  std::int64_t probe_initial_ms = 5;  ///< first re-probe slice
  double probe_backoff = 2.0;         ///< slice growth per retry
  std::int64_t probe_max_ms = 100;    ///< slice cap
};

/// Identifies one logical message channel.
struct ChannelKey {
  std::uint64_t comm_id;
  int src;  ///< world rank of sender
  int dst;  ///< world rank of receiver
  std::uint64_t tag;

  bool operator==(const ChannelKey&) const = default;
};

struct ChannelKeyHash {
  std::size_t operator()(const ChannelKey& k) const noexcept {
    std::uint64_t h = k.comm_id * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.src) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(k.dst) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.tag + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Thrown by take() when the world has been poisoned because a peer rank
/// failed — turns a would-be deadlock into clean error propagation.
class WorldPoisoned : public std::runtime_error {
 public:
  WorldPoisoned() : std::runtime_error("peer rank failed; world poisoned") {}
};

/// Thrown by a watchdog-armed wait when the expected message never arrived
/// within the deadline: the structured form of "peer <src> is silently
/// hung". Carries the channel coordinates so the supervisor can attribute
/// the hang to the *sender* (the rank that failed to produce the message),
/// not the rank that happened to notice.
class RankTimeout : public std::runtime_error {
 public:
  RankTimeout(int src, int dst, std::uint64_t tag, std::int64_t waited_ms, int retries)
      : std::runtime_error("timeout waiting for message from rank " +
                           std::to_string(src) + " (dst rank " + std::to_string(dst) +
                           ", tag " + std::to_string(tag) + ", waited " +
                           std::to_string(waited_ms) + " ms, " + std::to_string(retries) +
                           " probe retries)"),
        src_(src),
        dst_(dst),
        tag_(tag),
        waited_ms_(waited_ms),
        retries_(retries) {}
  int src() const noexcept { return src_; }        ///< the rank that went silent
  int dst() const noexcept { return dst_; }        ///< the rank that timed out waiting
  std::uint64_t tag() const noexcept { return tag_; }
  std::int64_t waited_ms() const noexcept { return waited_ms_; }
  int retries() const noexcept { return retries_; }

 private:
  int src_;
  int dst_;
  std::uint64_t tag_;
  std::int64_t waited_ms_;
  int retries_;
};

/// Process-wide message store. Sends are buffered (never block); receives
/// block until a matching message arrives. Messages on the same channel are
/// delivered FIFO.
class Mailbox {
 public:
  void post(const ChannelKey& key, std::vector<std::uint8_t> payload) {
    {
      std::lock_guard lock(mu_);
      queues_[key].push_back(std::move(payload));
    }
    cv_.notify_all();
  }

  std::vector<std::uint8_t> take(const ChannelKey& key) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      if (poisoned_) return true;
      auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    // Drain real messages even when poisoned — only block-forever turns
    // into an error.
    auto it = queues_.find(key);
    if (it == queues_.end() || it->second.empty()) {
      throw WorldPoisoned();
    }
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  /// Bounded take: like take(), but gives up at `deadline` and returns
  /// std::nullopt instead of a message. Same drain-first poison rule as
  /// take(): a queued real message is delivered even when poisoned;
  /// poisoned with nothing queued throws WorldPoisoned. Request::wait's
  /// watchdog loop calls this in backed-off slices.
  std::optional<std::vector<std::uint8_t>> take_until(
      const ChannelKey& key, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mu_);
    bool ready = cv_.wait_until(lock, deadline, [&] {
      if (poisoned_) return true;
      auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    auto it = queues_.find(key);
    if (it != queues_.end() && !it->second.empty()) {
      std::vector<std::uint8_t> payload = std::move(it->second.front());
      it->second.pop_front();
      return payload;
    }
    if (ready && poisoned_) throw WorldPoisoned();
    return std::nullopt;  // deadline expired
  }

  /// Parks the calling thread until the world is poisoned, then returns.
  /// This is how an injected hang-forever fault "hangs" without wedging
  /// World::run's join: the hung rank blocks here (producing no messages,
  /// exactly like a silently stuck peer) until some other rank's watchdog
  /// times out and the World poisons the mailbox — at which point the
  /// hung rank unwinds as a secondary WorldPoisoned casualty.
  void wait_poisoned() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return poisoned_; });
  }

  /// Non-blocking take: pops the channel's front message if one is queued,
  /// std::nullopt otherwise. This is the completion path for Request::test()
  /// — it must never block, so a rank can poll an in-flight irecv between
  /// compute ops. Throws WorldPoisoned only when the world is poisoned AND
  /// no real message is available (same drain-first rule as take()).
  std::optional<std::vector<std::uint8_t>> try_take(const ChannelKey& key) {
    std::lock_guard lock(mu_);
    auto it = queues_.find(key);
    if (it == queues_.end() || it->second.empty()) {
      if (poisoned_) throw WorldPoisoned();
      return std::nullopt;
    }
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  /// Wakes every blocked receiver with WorldPoisoned. Called by the World
  /// when a rank dies so surviving ranks unwind instead of deadlocking.
  void poison() {
    {
      std::lock_guard lock(mu_);
      poisoned_ = true;
    }
    cv_.notify_all();
  }

  /// Clears the poison flag (and any stale messages) for the next run.
  void reset() {
    std::lock_guard lock(mu_);
    poisoned_ = false;
    queues_.clear();
  }

  bool poisoned() const {
    std::lock_guard lock(mu_);
    return poisoned_;
  }

  /// Number of undelivered messages (diagnostic; used by tests to assert
  /// that a collective left no stragglers behind).
  std::size_t pending() const {
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& [k, q] : queues_) n += q.size();
    return n;
  }

  /// Installs (or clears, with nullptr) the fault-injection plan every Comm
  /// backed by this Mailbox consults on its hot paths. Must be called while
  /// no rank threads are running (World::set_fault_plan does).
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    std::lock_guard lock(mu_);
    fault_plan_owner_ = std::move(plan);
    fault_plan_.store(fault_plan_owner_.get(), std::memory_order_release);
  }

  /// Lock-free read for the per-op injection hook (null when no plan).
  FaultPlan* fault_plan() const noexcept {
    return fault_plan_.load(std::memory_order_acquire);
  }

  /// Installs the watchdog configuration. Must be called while no rank
  /// threads are running (World::set_timeouts does); rank threads read it
  /// via timeouts() at every blocking wait.
  void set_timeouts(const TimeoutOptions& t) {
    std::lock_guard lock(mu_);
    timeouts_ = t;
  }

  TimeoutOptions timeouts() const {
    std::lock_guard lock(mu_);
    return timeouts_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ChannelKey, std::deque<std::vector<std::uint8_t>>, ChannelKeyHash>
      queues_;
  bool poisoned_ = false;
  std::shared_ptr<FaultPlan> fault_plan_owner_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
  TimeoutOptions timeouts_;
};

}  // namespace ptdp::dist
