#pragma once

// Tag-addressed message store backing all point-to-point communication in
// the thread-backed world. Messages are byte buffers keyed by
// (communicator id, source world rank, destination world rank, tag), so a
// receiver can wait for a *specific* message regardless of arrival order —
// the property that makes complex pipeline schedules deadlock-free.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ptdp::dist {

class FaultPlan;

/// Identifies one logical message channel.
struct ChannelKey {
  std::uint64_t comm_id;
  int src;  ///< world rank of sender
  int dst;  ///< world rank of receiver
  std::uint64_t tag;

  bool operator==(const ChannelKey&) const = default;
};

struct ChannelKeyHash {
  std::size_t operator()(const ChannelKey& k) const noexcept {
    std::uint64_t h = k.comm_id * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.src) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(k.dst) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.tag + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Thrown by take() when the world has been poisoned because a peer rank
/// failed — turns a would-be deadlock into clean error propagation.
class WorldPoisoned : public std::runtime_error {
 public:
  WorldPoisoned() : std::runtime_error("peer rank failed; world poisoned") {}
};

/// Process-wide message store. Sends are buffered (never block); receives
/// block until a matching message arrives. Messages on the same channel are
/// delivered FIFO.
class Mailbox {
 public:
  void post(const ChannelKey& key, std::vector<std::uint8_t> payload) {
    {
      std::lock_guard lock(mu_);
      queues_[key].push_back(std::move(payload));
    }
    cv_.notify_all();
  }

  std::vector<std::uint8_t> take(const ChannelKey& key) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      if (poisoned_) return true;
      auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    // Drain real messages even when poisoned — only block-forever turns
    // into an error.
    auto it = queues_.find(key);
    if (it == queues_.end() || it->second.empty()) {
      throw WorldPoisoned();
    }
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  /// Non-blocking take: pops the channel's front message if one is queued,
  /// std::nullopt otherwise. This is the completion path for Request::test()
  /// — it must never block, so a rank can poll an in-flight irecv between
  /// compute ops. Throws WorldPoisoned only when the world is poisoned AND
  /// no real message is available (same drain-first rule as take()).
  std::optional<std::vector<std::uint8_t>> try_take(const ChannelKey& key) {
    std::lock_guard lock(mu_);
    auto it = queues_.find(key);
    if (it == queues_.end() || it->second.empty()) {
      if (poisoned_) throw WorldPoisoned();
      return std::nullopt;
    }
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  /// Wakes every blocked receiver with WorldPoisoned. Called by the World
  /// when a rank dies so surviving ranks unwind instead of deadlocking.
  void poison() {
    {
      std::lock_guard lock(mu_);
      poisoned_ = true;
    }
    cv_.notify_all();
  }

  /// Clears the poison flag (and any stale messages) for the next run.
  void reset() {
    std::lock_guard lock(mu_);
    poisoned_ = false;
    queues_.clear();
  }

  bool poisoned() const {
    std::lock_guard lock(mu_);
    return poisoned_;
  }

  /// Number of undelivered messages (diagnostic; used by tests to assert
  /// that a collective left no stragglers behind).
  std::size_t pending() const {
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& [k, q] : queues_) n += q.size();
    return n;
  }

  /// Installs (or clears, with nullptr) the fault-injection plan every Comm
  /// backed by this Mailbox consults on its hot paths. Must be called while
  /// no rank threads are running (World::set_fault_plan does).
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    std::lock_guard lock(mu_);
    fault_plan_owner_ = std::move(plan);
    fault_plan_.store(fault_plan_owner_.get(), std::memory_order_release);
  }

  /// Lock-free read for the per-op injection hook (null when no plan).
  FaultPlan* fault_plan() const noexcept {
    return fault_plan_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ChannelKey, std::deque<std::vector<std::uint8_t>>, ChannelKeyHash>
      queues_;
  bool poisoned_ = false;
  std::shared_ptr<FaultPlan> fault_plan_owner_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
};

}  // namespace ptdp::dist
