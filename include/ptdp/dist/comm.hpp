#pragma once

// Communicator: an MPI-style handle over a subset of world ranks, backed by
// the thread-world Mailbox. Point-to-point operations come in request-based
// nonblocking form (isend/irecv returning a Request with wait()/test(), the
// completion path being Mailbox try_take/take) and as blocking wrappers
// (send/recv) layered on top. Collectives are built from p2p using classic
// ring / dissemination algorithms, mirroring what NCCL does on real
// hardware so that communication *volume* accounting in the simulator
// matches the functional runtime's message pattern.
//
// Requests complete on the calling rank thread only — never on the intra-op
// helper pool — preserving the DESIGN.md §8 pool-separation invariant (see
// DESIGN.md §9 "Communication plane").

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/mailbox.hpp"
#include "ptdp/dist/request.hpp"
#include "ptdp/dist/tags.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"

namespace ptdp::dist {

/// Reduction operators supported by the reduce-style collectives.
enum class ReduceOp { kSum, kMax, kMin };

/// A communicator over an ordered list of world ranks.
///
/// Copyable and cheap to pass by value: all heavyweight state lives in the
/// shared Mailbox. Every member of a communicator must call collectives in
/// the same order (standard MPI rule).
class Comm {
 public:
  /// Builds the world communicator for one rank. Normally constructed by
  /// World::run — user code receives a Comm rather than constructing one.
  Comm(std::shared_ptr<Mailbox> mailbox, std::vector<int> members, int rank,
       std::uint64_t comm_id)
      : mailbox_(std::move(mailbox)),
        members_(std::make_shared<const std::vector<int>>(std::move(members))),
        rank_(rank),
        comm_id_(comm_id),
        split_seq_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
    PTDP_CHECK(mailbox_ != nullptr);
    PTDP_CHECK_GE(rank_, 0);
    PTDP_CHECK_LT(static_cast<std::size_t>(rank_), members_->size());
  }

  /// A single-member communicator: every collective is a no-op. Lets serial
  /// code paths reuse the tensor-parallel layer implementations unchanged.
  static Comm solo() {
    return Comm(std::make_shared<Mailbox>(), std::vector<int>{0}, 0, /*comm_id=*/0);
  }

  /// Rank of the caller within this communicator.
  int rank() const noexcept { return rank_; }
  /// Number of members.
  int size() const noexcept { return static_cast<int>(members_->size()); }
  /// World rank of member r of this communicator.
  int world_rank_of(int r) const {
    PTDP_CHECK_GE(r, 0);
    PTDP_CHECK_LT(r, size());
    return (*members_)[static_cast<std::size_t>(r)];
  }
  /// World rank of the caller.
  int world_rank() const { return world_rank_of(rank_); }
  /// All member world ranks, in communicator order.
  const std::vector<int>& members() const noexcept { return *members_; }

  // ---- point-to-point -----------------------------------------------------
  //
  // Nonblocking primitives are the real API; the blocking send/recv pair is
  // a thin wrapper (isend is already complete at return, recv is
  // irecv().wait()). User tags must stay below 2^48 — the range above is
  // reserved for collective traffic.

  /// Nonblocking buffered send to communicator rank `dst`. The payload is
  /// copied into the Mailbox before returning, so the returned Request is
  /// already complete and `data` may be reused immediately.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Request isend(std::span<const T> data, int dst, std::uint64_t tag = 0) const {
    PTDP_CHECK_NE(dst, rank_) << "self-send";
    const FaultOutcome fault = fault_hook(FaultSite::kSend);
    if (obs::metrics_on()) {
      obs::MetricsRegistry::instance().on_comm_send(comm_id_, data.size_bytes(),
                                                    tags::is_collective(tag));
    }
    if (fault.drop_message) {
      // Flaky link ate the message. The sender believes it sent (metrics
      // counted the bytes, like a NIC that acked into the void); only the
      // receiver's watchdog can notice.
      return Request();
    }
    std::vector<std::uint8_t> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    mailbox_->post(channel(rank_, dst, tag), std::move(payload));
    return Request();  // buffered transport: sends never have an in-flight phase
  }

  /// Nonblocking receive into `data` from communicator rank `src`. `data`
  /// must stay alive and unmoved until the Request completes via wait() or
  /// test(); the payload size must match `data.size_bytes()` exactly.
  /// Posting order on the same (src, tag) channel is the match order (FIFO).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Request irecv(std::span<T> data, int src, std::uint64_t tag = 0) const {
    PTDP_CHECK_NE(src, rank_) << "self-recv";
    fault_hook(FaultSite::kRecv);
    if (obs::metrics_on()) {
      obs::MetricsRegistry::instance().on_comm_recv(comm_id_, data.size_bytes(),
                                                    tags::is_collective(tag));
    }
    return Request(mailbox_, channel(src, rank_, tag),
                   std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(data.data()),
                                           data.size_bytes()));
  }

  /// Buffered send of a trivially-copyable span to communicator rank `dst`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(std::span<const T> data, int dst, std::uint64_t tag = 0) const {
    isend(data, dst, tag);
  }

  /// Blocking receive into `data` from communicator rank `src`. The payload
  /// size must match `data.size_bytes()` exactly.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv(std::span<T> data, int src, std::uint64_t tag = 0) const {
    irecv(data, src, tag).wait();
  }

  /// Simultaneous exchange with a partner (both sides call with the same tag).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void sendrecv(std::span<const T> send_buf, int dst, std::span<T> recv_buf,
                int src, std::uint64_t tag = 0) const {
    send(send_buf, dst, tag);
    recv(recv_buf, src, tag);
  }

  // ---- collectives ---------------------------------------------------------

  /// Dissemination barrier: O(log n) rounds of token exchange.
  void barrier() const;

  /// Broadcast `data` from `root` to all members (binomial tree).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void broadcast(std::span<T> data, int root) const {
    broadcast_bytes(as_writable_bytes(data), root);
  }

  /// In-place ring all-reduce (reduce-scatter + all-gather phases).
  void all_reduce(std::span<float> data, ReduceOp op = ReduceOp::kSum) const;
  void all_reduce(std::span<double> data, ReduceOp op = ReduceOp::kSum) const;

  /// Convenience scalar all-reduce.
  float all_reduce_scalar(float value, ReduceOp op = ReduceOp::kSum) const {
    all_reduce(std::span<float>(&value, 1), op);
    return value;
  }

  /// Ring reduce-scatter: `in.size()` must be divisible by size(); each rank
  /// ends with the reduction of its own contiguous shard in `out`.
  void reduce_scatter(std::span<const float> in, std::span<float> out,
                      ReduceOp op = ReduceOp::kSum) const;

  /// Ring all-gather: concatenates every member's `in` (equal sizes) into
  /// `out` in rank order. `out.size() == in.size() * size()`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void all_gather(std::span<const T> in, std::span<T> out) const {
    PTDP_CHECK_EQ(out.size(), in.size() * static_cast<std::size_t>(size()));
    all_gather_bytes(as_bytes_span(in), as_writable_bytes(out));
  }

  /// Gather variable payloads to every rank (used for control-plane metadata,
  /// e.g. Comm::split bookkeeping). Returns one buffer per rank.
  std::vector<std::vector<std::uint8_t>> all_gather_variable(
      std::span<const std::uint8_t> in) const;

  // ---- topology ------------------------------------------------------------

  /// MPI_Comm_split: ranks passing the same `color` end up in the same child
  /// communicator, ordered by (key, rank). Collective over all members.
  Comm split(int color, int key) const;

  /// Internal communicator id (stable across ranks of the same communicator).
  std::uint64_t id() const noexcept { return comm_id_; }

 private:
  ChannelKey channel(int src, int dst, std::uint64_t tag) const {
    return ChannelKey{comm_id_, world_rank_of(src), world_rank_of(dst), tag};
  }

  /// Deterministic fault-injection site: counts this op on the installed
  /// FaultPlan (no-op when none). May throw InjectedFault, sleep, or
  /// busy-spin in place; drop directives are returned to the caller. A
  /// hang-forever directive is executed right here: the rank parks until
  /// the world is poisoned — going exactly as silent as a stuck real rank,
  /// while still letting World::run's join complete — and then unwinds as
  /// a secondary WorldPoisoned casualty. The *root cause* surfaces on a
  /// peer whose watchdog expires waiting for this rank (RankTimeout with
  /// src == this world rank), which is how the supervisor attributes the
  /// hang. Requires watchdog timeouts to be armed (World::set_timeouts);
  /// a hang fault without a watchdog deadlocks by design — that is the
  /// failure mode being modeled.
  FaultOutcome fault_hook(FaultSite site) const {
    FaultOutcome out;
    if (FaultPlan* plan = mailbox_->fault_plan()) {
      out = plan->on_op(world_rank(), site);
      if (out.hang_forever) {
        mailbox_->wait_poisoned();
        throw WorldPoisoned();
      }
    }
    return out;
  }

  template <typename T>
  static std::span<const std::uint8_t> as_bytes_span(std::span<const T> s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size_bytes()};
  }
  template <typename T>
  static std::span<std::uint8_t> as_writable_bytes(std::span<T> s) {
    return {reinterpret_cast<std::uint8_t*>(s.data()), s.size_bytes()};
  }

  void broadcast_bytes(std::span<std::uint8_t> data, int root) const;
  void all_gather_bytes(std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out) const;

  template <typename F>
  void all_reduce_impl(std::span<F> data, ReduceOp op) const;

  std::uint64_t next_split_seq() const {
    return split_seq_->fetch_add(1, std::memory_order_relaxed);
  }

  std::shared_ptr<Mailbox> mailbox_;
  std::shared_ptr<const std::vector<int>> members_;
  int rank_;
  std::uint64_t comm_id_;
  // Shared among copies of this Comm on the same rank so that split ids stay
  // consistent no matter which copy the caller splits on.
  std::shared_ptr<std::atomic<std::uint64_t>> split_seq_;
};

}  // namespace ptdp::dist
