#pragma once

// Request: the completion handle for nonblocking point-to-point operations
// (Comm::isend / Comm::irecv), modeled on MPI_Request.
//
// A send Request is born complete: the Mailbox buffers the payload at post
// time, so isend never has an in-flight phase. A receive Request owns the
// (channel, destination buffer) pair and completes on the *caller's* rank
// thread — test() polls Mailbox::try_take, wait() parks in Mailbox::take.
// No helper-pool thread ever touches a Request, so the DESIGN.md §8
// pool-separation invariant is untouched: rank threads may block in
// rendezvous, the intra-op compute pool never does.
//
// The destination buffer must stay alive and unmoved until the Request
// completes (same contract as MPI). Requests are move-only; destroying an
// incomplete receive Request is an error (PTDP_CHECK), because the message
// would be silently dropped and a later receive on the same channel would
// see the wrong payload.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "ptdp/dist/mailbox.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::dist {

class Request {
 public:
  /// Default-constructed and send Requests are already complete.
  Request() = default;

  /// An in-flight receive into `dst` (made by Comm::irecv).
  Request(std::shared_ptr<Mailbox> mailbox, ChannelKey key, std::span<std::uint8_t> dst)
      : state_(std::make_unique<RecvState>(std::move(mailbox), key, dst)) {}

  Request(Request&&) noexcept = default;
  Request& operator=(Request&& other) noexcept {
    if (this != &other) {
      PTDP_CHECK(done()) << "overwriting an incomplete receive Request";
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  ~Request() noexcept(false) {
    // An abandoned in-flight receive would desynchronize the FIFO channel,
    // so flag it — but stay silent while an exception is already unwinding
    // the stack (rank failure / poisoned world): the World resets the
    // Mailbox and bumps the comm id after a failed run, so nothing leaks.
    if (state_ != nullptr && !state_->mailbox->poisoned() &&
        std::uncaught_exceptions() == 0) {
      PTDP_CHECK(false) << "Request destroyed before completion";
    }
  }

  /// True once the operation has completed (always true for sends).
  bool done() const noexcept { return state_ == nullptr; }

  /// Non-blocking completion probe: tries to match the message and copy it
  /// into the destination buffer. Returns done().
  bool test() {
    if (state_ == nullptr) return true;
    std::optional<std::vector<std::uint8_t>> payload =
        state_->mailbox->try_take(state_->key);
    if (!payload.has_value()) return false;
    deliver(*payload);
    return true;
  }

  /// Blocks until the operation completes. Throws WorldPoisoned if a peer
  /// rank died (mirroring the blocking recv path). When the Mailbox has a
  /// watchdog deadline configured (TimeoutOptions::op_timeout_ms > 0), the
  /// wait re-probes in exponentially backed-off slices and throws
  /// RankTimeout once the deadline passes with no message — attributing
  /// the hang to the sender rank on the channel. Time spent blocked here is
  /// charged to this thread's comm-wait accumulator (comm_wait_ns), which
  /// is what lets the health monitor tell a straggler (high busy, low
  /// wait) from its victims (low busy, high wait).
  void wait() {
    if (state_ == nullptr) return;
    const auto start = std::chrono::steady_clock::now();
    struct WaitCharge {
      std::chrono::steady_clock::time_point t0;
      ~WaitCharge() {
        add_comm_wait_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
      }
    } charge{start};

    const TimeoutOptions t = state_->mailbox->timeouts();
    if (t.op_timeout_ms <= 0) {
      std::vector<std::uint8_t> payload = state_->mailbox->take(state_->key);
      deliver(payload);
      return;
    }
    const auto deadline = start + std::chrono::milliseconds(t.op_timeout_ms);
    std::int64_t slice_ms = std::max<std::int64_t>(1, t.probe_initial_ms);
    int retries = 0;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        const ChannelKey key = state_->key;
        // Drop the recv state first: the message is declared lost, and the
        // destructor must not re-flag this request while RankTimeout
        // unwinds the rank.
        state_.reset();
        throw RankTimeout(
            key.src, key.dst, key.tag,
            std::chrono::duration_cast<std::chrono::milliseconds>(now - start).count(),
            retries);
      }
      const auto slice_end =
          std::min(deadline, now + std::chrono::milliseconds(slice_ms));
      std::optional<std::vector<std::uint8_t>> payload =
          state_->mailbox->take_until(state_->key, slice_end);
      if (payload.has_value()) {
        deliver(*payload);
        return;
      }
      ++retries;
      slice_ms = std::min<std::int64_t>(
          t.probe_max_ms > 0 ? t.probe_max_ms : slice_ms,
          static_cast<std::int64_t>(static_cast<double>(slice_ms) *
                                    std::max(1.0, t.probe_backoff)));
    }
  }

 private:
  struct RecvState {
    std::shared_ptr<Mailbox> mailbox;
    ChannelKey key;
    std::span<std::uint8_t> dst;
    RecvState(std::shared_ptr<Mailbox> m, const ChannelKey& k, std::span<std::uint8_t> d)
        : mailbox(std::move(m)), key(k), dst(d) {}
  };

  void deliver(const std::vector<std::uint8_t>& payload) {
    PTDP_CHECK_EQ(payload.size(), state_->dst.size())
        << "message size mismatch on tag " << state_->key.tag << " src "
        << state_->key.src;
    std::memcpy(state_->dst.data(), payload.data(), payload.size());
    state_.reset();
  }

  // null == complete. unique_ptr keeps Request movable while the channel
  // key/buffer stay stable for the Mailbox lookups.
  std::unique_ptr<RecvState> state_;
};

}  // namespace ptdp::dist
