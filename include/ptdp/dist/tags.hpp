#pragma once

// The ONE tag-space map for the thread-world transport. Every subsystem
// that mints or interprets a Mailbox tag — dist's collectives, the pipeline
// executor's boundary p2p, and the obs tracer's tag decoding — includes
// this header, so the layout can never silently fork (it previously lived
// as duplicated constants in comm.cpp and executor.cpp; PR 2's bit-46
// eval/microbatch collision fix is exactly the kind of bug this prevents).
//
// 64-bit tag layout:
//
//   [63..62] = 11   collective traffic (reserved range, kCollectiveBase)
//   [61..48]        reserved, must be zero for user tags
//   ---- user p2p tags live below 2^48 ----
//   bit 47          direction (1 = backward/gradient traffic)
//   bit 46          eval marker (1 = forward-only/validation traffic)
//   bits 8..45      microbatch index (38 bits)
//   bits 0..7       chunk index *at the receiver* (sender and receiver
//                   agree even across the rank-(p-1) -> rank-0 boundary)

#include <cstdint>

#include "ptdp/runtime/check.hpp"

namespace ptdp::dist::tags {

// ---- pipeline boundary p2p fields ------------------------------------------------

inline constexpr int kChunkBits = 8;
inline constexpr int kMicrobatchBits = 38;
inline constexpr std::uint64_t kChunkMask = (1ULL << kChunkBits) - 1;
inline constexpr std::uint64_t kMicrobatchMask = (1ULL << kMicrobatchBits) - 1;
inline constexpr std::uint64_t kEvalBit = 1ULL << (kChunkBits + kMicrobatchBits);
inline constexpr std::uint64_t kBackwardBit = kEvalBit << 1;

/// User point-to-point tags must stay below this; the range above is
/// reserved (collectives at the top, the rest unassigned).
inline constexpr std::uint64_t kUserTagLimit = 1ULL << 48;

// ---- collective traffic ----------------------------------------------------------

inline constexpr std::uint64_t kCollectiveBase = 0xC000'0000'0000'0000ULL;
inline constexpr std::uint64_t kBarrierTag = kCollectiveBase | 1;
inline constexpr std::uint64_t kBroadcastTag = kCollectiveBase | 2;
inline constexpr std::uint64_t kAllReduceTag = kCollectiveBase | 3;
inline constexpr std::uint64_t kReduceScatterTag = kCollectiveBase | 4;
inline constexpr std::uint64_t kAllGatherTag = kCollectiveBase | 5;
inline constexpr std::uint64_t kAllGatherVarTag = kCollectiveBase | 6;

// ---- layout guards ---------------------------------------------------------------
// The three p2p fields and the two flag bits must tile [0, 2^48) exactly,
// and the whole user range must stay clear of the collective range.

static_assert(kChunkBits + kMicrobatchBits == 46,
              "chunk + microbatch fields must end exactly at the eval bit");
static_assert((kChunkMask & (kMicrobatchMask << kChunkBits)) == 0,
              "chunk and microbatch fields overlap");
static_assert((kEvalBit & (kChunkMask | (kMicrobatchMask << kChunkBits))) == 0,
              "eval bit overlaps the microbatch field (the PR 2 bug)");
static_assert((kBackwardBit & (kEvalBit | kChunkMask |
                               (kMicrobatchMask << kChunkBits))) == 0,
              "backward bit overlaps another field");
static_assert((kBackwardBit | kEvalBit | (kMicrobatchMask << kChunkBits) |
               kChunkMask) == kUserTagLimit - 1,
              "p2p fields must tile the user tag range exactly");
static_assert(kUserTagLimit <= kCollectiveBase,
              "user tags must not reach the collective range");

/// True for tags in the reserved collective range.
inline constexpr bool is_collective(std::uint64_t tag) {
  return tag >= kCollectiveBase;
}

/// Mints the boundary-p2p tag for (direction, eval, microbatch, receiver
/// chunk). CHECK-fails on field overflow.
inline std::uint64_t make_pipeline_tag(bool backward, bool eval,
                                       std::int64_t microbatch, int recv_chunk) {
  PTDP_CHECK_GE(microbatch, 0);
  PTDP_CHECK_LT(microbatch, std::int64_t{1} << kMicrobatchBits)
      << "microbatch index overflows the tag field";
  PTDP_CHECK_GE(recv_chunk, 0);
  PTDP_CHECK_LT(recv_chunk, 1 << kChunkBits) << "chunk index overflows the tag field";
  return (backward ? kBackwardBit : 0) | (eval ? kEvalBit : 0) |
         (static_cast<std::uint64_t>(microbatch) << kChunkBits) |
         static_cast<std::uint64_t>(recv_chunk);
}

/// A tag split back into its fields (the tracer's decoding path). For
/// collective tags only `collective` and `collective_kind` are meaningful.
struct DecodedTag {
  bool collective = false;
  std::uint64_t collective_kind = 0;  ///< low bits of the collective tag
  bool backward = false;
  bool eval = false;
  std::int64_t microbatch = 0;
  int chunk = 0;
};

inline DecodedTag decode(std::uint64_t tag) {
  DecodedTag d;
  if (is_collective(tag)) {
    d.collective = true;
    d.collective_kind = tag & ~kCollectiveBase;
    return d;
  }
  d.backward = (tag & kBackwardBit) != 0;
  d.eval = (tag & kEvalBit) != 0;
  d.microbatch = static_cast<std::int64_t>((tag >> kChunkBits) & kMicrobatchMask);
  d.chunk = static_cast<int>(tag & kChunkMask);
  return d;
}

}  // namespace ptdp::dist::tags
