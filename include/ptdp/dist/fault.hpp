#pragma once

// Deterministic fault injection for the thread-backed world (the MegaScale
// lesson: at scale, fault *handling* must be tested as rigorously as the
// happy path — which requires faults that can be produced on demand and
// replayed exactly).
//
// A FaultPlan is a list of armed FaultSpecs installed on a World. Every
// injection site — each send, each recv, each collective entry, each phase
// of an atomic checkpoint write — increments a per-(rank, site) counter,
// and a spec fires when its rank's counter for its site reaches `nth`.
// Because the counters are per-rank (no cross-rank ordering enters the
// trigger decision) and contain no wall-clock randomness, a failing
// schedule replays exactly: reconstruct the same plan, rerun the same
// program, and the same rank dies at the same op. Specs are one-shot:
// once fired they stay disarmed across World::run calls, so a supervisor
// restart proceeds past the injected failure instead of looping on it.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ptdp::dist {

/// Where a fault can be injected. kSend/kRecv count point-to-point posts
/// (collectives are built from p2p, so their internal traffic counts here
/// too); kCollective counts collective entries; kCkptWrite counts atomic
/// checkpoint write phases (see ckpt::WritePhase — bridged by the ft layer).
enum class FaultSite : int { kSend = 0, kRecv = 1, kCollective = 2, kCkptWrite = 3 };
inline constexpr int kNumFaultSites = 4;

const char* fault_site_name(FaultSite site);

/// The exception an injected kill throws on the victim rank. Derives from
/// runtime_error so it propagates through World::run like any real crash.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(int rank, FaultSite site, std::uint64_t count);
  int rank() const noexcept { return rank_; }
  FaultSite site() const noexcept { return site_; }
  /// The per-(rank, site) op count at which the fault fired.
  std::uint64_t count() const noexcept { return count_; }

 private:
  int rank_;
  FaultSite site_;
  std::uint64_t count_;
};

/// One scheduled fault.
struct FaultSpec {
  enum class Action {
    kKill,         ///< throw InjectedFault on the victim rank
    kDelay,        ///< sleep `delay` before the op proceeds (one-shot)
    kCorruptFile,  ///< flip a byte in the file being written (kCkptWrite only)
    // Persistent degradations (the MegaScale failure modes: the machine is
    // not dead, it is *bad*). Firing installs a per-rank degradation that
    // afflicts every subsequent matching op, not just the nth one.
    kSlowRank,   ///< busy-spin `delay` on every op after firing (CPU-visible straggler)
    kFlakyLink,  ///< every `period`-th send after firing: drop (drop=true) or delay
    kHang,       ///< at the nth op, go silent forever (park until the world poisons)
  };
  Action action = Action::kKill;
  int rank = -1;  ///< victim world rank; -1 matches any rank
  FaultSite site = FaultSite::kSend;
  std::uint64_t nth = 1;  ///< fires when the victim's counter reaches nth (1-based)
  std::chrono::microseconds delay{0};  ///< kDelay / kSlowRank spin / kFlakyLink delay
  std::uint64_t period = 1;  ///< kFlakyLink: afflict every period-th op after firing
  bool drop = false;         ///< kFlakyLink: silently drop instead of delaying
  /// Degradations only: survive FaultPlan::begin_run, i.e. the restarted
  /// world lands on the same bad machine. This is what forces the
  /// supervisor's escalation ladder past restart-in-place to eviction.
  bool sticky = false;
};

/// Record of a fired spec — the replay ledger.
struct FaultEvent {
  FaultSpec spec;
  int rank = -1;            ///< rank the spec actually fired on
  std::uint64_t count = 0;  ///< counter value at fire time
  int run_index = 0;        ///< which World::run since plan install
  std::uint64_t step = 0;   ///< training step at fire time (dist::noted_step)
};

/// What the caller of on_op must do beyond what the plan already did
/// internally (kill throws, delays/spins happen in place). Drop and hang
/// can only be implemented by the communication layer itself, so they are
/// returned as directives to Comm.
struct FaultOutcome {
  bool drop_message = false;  ///< kSend only: discard the payload unsent
  bool hang_forever = false;  ///< park in Mailbox::wait_poisoned, then unwind
};

/// Seeded, fully reproducible fault schedule. Thread-safe: the hot-path
/// hooks are called concurrently from every rank thread.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed), draw_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  FaultPlan& add(FaultSpec spec);
  FaultPlan& kill(int rank, FaultSite site, std::uint64_t nth);
  FaultPlan& delay(int rank, FaultSite site, std::uint64_t nth,
                   std::chrono::microseconds d);
  /// Corrupts the checkpoint file under write at the victim's nth write
  /// phase (a byte flip in the not-yet-published temp file, or in the
  /// published file if the phase is post-rename).
  FaultPlan& corrupt_ckpt(int rank, std::uint64_t nth);
  /// Seeded helper: derives (victim rank in [0, world_size), nth in
  /// [1, max_nth]) deterministically from the plan seed and the number of
  /// random specs added so far.
  FaultPlan& kill_random(int world_size, FaultSite site, std::uint64_t max_nth);
  /// Persistent straggler: from the victim's nth op at `site` on, every op
  /// on that rank busy-spins `spin` (busy, not asleep, so the degradation
  /// is visible in CPU/busy time exactly like a real slow machine).
  FaultPlan& slow_rank(int rank, FaultSite site, std::uint64_t nth,
                       std::chrono::microseconds spin, bool sticky = true);
  /// Flaky link: from the victim's nth send on, every period-th send is
  /// dropped (drop=true) or delayed by `d`.
  FaultPlan& flaky_link(int rank, std::uint64_t nth, std::uint64_t period,
                        std::chrono::microseconds d, bool drop, bool sticky = false);
  /// Silent hang: at the victim's nth op at `site`, the rank goes quiet
  /// forever (no crash, no message — the failure mode only a watchdog can
  /// see). Sticky hangs recur at the first op of every restarted run.
  FaultPlan& hang(int rank, FaultSite site, std::uint64_t nth, bool sticky = true);

  // ---- hot-path hooks (called by Comm / the ckpt write-hook bridge) ----

  /// Counts one op at `site` for `rank`; fires any matching armed spec
  /// (kKill throws InjectedFault, kDelay sleeps, kSlowRank/kFlakyLink/kHang
  /// install persistent degradations) and applies this rank's standing
  /// degradations. The returned outcome carries the directives only the
  /// communication layer can execute (drop / hang).
  FaultOutcome on_op(int rank, FaultSite site);

  /// Counts one checkpoint write phase for `rank` and fires matching specs.
  /// `phase_is_pre_rename` selects which file a kCorruptFile spec flips:
  /// the temp file (pre-rename) or the published file (post-rename).
  void on_file_phase(int rank, const std::string& final_path,
                     const std::string& tmp_path, bool phase_is_pre_rename);

  // ---- lifecycle / introspection ----

  /// Called by World::run at the start of every run: zeroes all counters so
  /// op counts are per-run (replayable), and bumps the run index. Armed
  /// state is NOT reset — fired specs stay fired. Non-sticky degradations
  /// are lifted (restart-in-place healed them); sticky ones persist with
  /// their flaky-period counters rewound, modeling a bad machine the
  /// restarted world landed on again.
  void begin_run();

  /// Re-arms every spec (exact-replay support), lifts all degradations and
  /// quarantines, and clears history.
  void rearm();

  /// Called by the supervisor when it evicts a rank: lifts the rank's
  /// standing degradations and disarms every spec targeting it, so after
  /// the elastic relayout the (remapped) rank ids are not re-afflicted by
  /// the removed machine's faults. Quarantine survives begin_run; only
  /// rearm() clears it.
  void quarantine_rank(int rank);

  /// Current per-run op count for (rank, site).
  std::uint64_t count(int rank, FaultSite site) const;

  /// Ranks with at least one standing degradation (diagnostic for tests).
  std::vector<int> degraded_ranks() const;

  /// Every spec fired so far, in fire order.
  std::vector<FaultEvent> history() const;

  int runs_started() const;

 private:
  struct Armed {
    FaultSpec spec;
    bool armed = true;
  };

  /// A standing per-rank affliction installed by a fired degradation spec.
  struct Degradation {
    FaultSpec::Action kind = FaultSpec::Action::kSlowRank;
    std::chrono::microseconds delay{0};
    std::uint64_t period = 1;
    bool drop = false;
    bool sticky = false;
    std::uint64_t ops_since = 0;  ///< kFlakyLink period counter
  };

  static std::int64_t key(int rank, FaultSite site) {
    return static_cast<std::int64_t>(rank) * kNumFaultSites + static_cast<int>(site);
  }

  /// Bumps the counter and returns the fired spec (already recorded and
  /// disarmed) or nullopt. Lock held only inside.
  struct Fired {
    FaultSpec spec;
    std::uint64_t count;
  };
  bool bump_and_match(int rank, FaultSite site, Fired* out);

  /// Applies the rank's standing degradations to one op at `site`:
  /// busy-spins for kSlowRank, counts/delays for kFlakyLink, and folds the
  /// drop/hang directives into `out`. Takes and releases the lock itself
  /// (spins/sleeps happen outside it).
  void apply_degradations(int rank, FaultSite site, FaultOutcome* out);

  mutable std::mutex mu_;
  std::uint64_t seed_;
  std::uint64_t draw_;  ///< evolving state for kill_random draws
  std::vector<Armed> specs_;
  std::unordered_map<std::int64_t, std::uint64_t> counts_;
  std::unordered_map<int, std::vector<Degradation>> degradations_;
  std::unordered_set<int> quarantined_;
  std::vector<FaultEvent> history_;
  int run_index_ = -1;  ///< becomes 0 on the first begin_run()
};

}  // namespace ptdp::dist
