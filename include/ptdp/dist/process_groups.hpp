#pragma once

// Megatron-style process-group construction for a (p, t, d) grid.
//
// With n = p*t*d GPUs, world rank is laid out as
//     rank = p_idx * (t*d) + d_idx * t + t_idx
// so that tensor-parallel groups are contiguous (they map onto the NVLink
// domain of one server — Takeaway #1), data-parallel groups stride by t
// within a pipeline block, and pipeline-parallel groups stride by t*d
// across servers. This matches megatron/core's initialize_model_parallel.

#include <optional>

#include "ptdp/dist/comm.hpp"

namespace ptdp::dist {

/// This rank's coordinates in the 3D parallelism grid.
struct GridCoord {
  int pipeline;  ///< pipeline stage index in [0, p)
  int data;      ///< data-parallel replica index in [0, d)
  int tensor;    ///< tensor-parallel rank in [0, t)
};

/// All communicators a PTD-P rank needs, built from the world communicator.
class ProcessGroups {
 public:
  /// Collective over all world ranks; requires world.size() == p*t*d.
  ProcessGroups(const Comm& world, int p, int t, int d);

  int pipeline_parallel_size() const noexcept { return p_; }
  int tensor_parallel_size() const noexcept { return t_; }
  int data_parallel_size() const noexcept { return d_; }

  const GridCoord& coord() const noexcept { return coord_; }

  /// The world communicator these groups were built from. World-spanning
  /// control-plane operations (e.g. the checkpoint commit protocol) run
  /// over this.
  const Comm& world() const noexcept { return *world_; }

  /// Tensor-model-parallel group: the t ranks that jointly hold one layer.
  const Comm& tensor() const noexcept { return *tensor_; }
  /// Pipeline-model-parallel group: the p ranks forming one pipeline.
  const Comm& pipeline() const noexcept { return *pipeline_; }
  /// Data-parallel group: the d replicas of this model shard.
  const Comm& data() const noexcept { return *data_; }
  /// Embedding group: first- and last-stage ranks sharing (t, d) coords,
  /// used to all-reduce tied input/output embedding gradients. Contains
  /// just this rank when p == 1 or this rank is an interior stage.
  const Comm& embedding() const noexcept { return *embedding_; }

  bool is_first_stage() const noexcept { return coord_.pipeline == 0; }
  bool is_last_stage() const noexcept { return coord_.pipeline == p_ - 1; }
  bool in_embedding_group() const noexcept {
    return is_first_stage() || is_last_stage();
  }

  /// World rank for grid coordinates, for a given grid shape.
  static int world_rank_of(int p_idx, int d_idx, int t_idx, int t, int d) {
    return p_idx * (t * d) + d_idx * t + t_idx;
  }
  /// Inverse of world_rank_of.
  static GridCoord coord_of(int world_rank, int t, int d) {
    return GridCoord{world_rank / (t * d), (world_rank / t) % d, world_rank % t};
  }

 private:
  int p_, t_, d_;
  GridCoord coord_;
  std::optional<Comm> world_, tensor_, pipeline_, data_, embedding_;
};

}  // namespace ptdp::dist
