#pragma once

// Pipeline schedules (§2.2): GPipe (all-forward-all-backward), 1F1B
// (PipeDream-Flush), and the paper's interleaved 1F1B with v model chunks
// per device. A schedule is materialized as a per-rank ordered list of
// forward/backward ops on (microbatch, chunk); the same op lists drive both
// the functional executor (real tensors over the thread world) and the
// performance simulator (virtual clock over the cluster model), so what we
// benchmark is exactly what we execute.

#include <cstdint>
#include <vector>

namespace ptdp::pipeline {

enum class ScheduleType {
  kGPipe,        ///< all forwards, then all backwards (Fig. 3)
  kOneFOneB,     ///< PipeDream-Flush 1F1B (Fig. 4 top)
  kInterleaved,  ///< interleaved 1F1B with v chunks (Fig. 4 bottom)
};

const char* schedule_name(ScheduleType type);

struct Op {
  enum class Kind : std::uint8_t { kForward, kBackward };
  Kind kind;
  int microbatch;  ///< 0..m-1
  int chunk;       ///< model chunk on this device, 0..v-1

  bool operator==(const Op&) const = default;
};

/// Parameters of a pipeline schedule.
struct ScheduleParams {
  ScheduleType type = ScheduleType::kOneFOneB;
  int p = 1;  ///< pipeline-parallel size (devices)
  int m = 1;  ///< microbatches per batch per pipeline
  int v = 1;  ///< model chunks per device (>1 only for kInterleaved)
};

/// Virtual pipeline stage of (rank, chunk): chunk*p + rank. The model's
/// layers are striped over virtual stages in this order (§2.2.2's example:
/// device 1 gets layers {1,2} as chunk 0 and {9,10} as chunk 1).
inline int virtual_stage(int rank, int chunk, int p) { return chunk * p + rank; }
inline int num_virtual_stages(const ScheduleParams& sp) { return sp.p * sp.v; }

/// Build the ordered op list rank `rank` executes for one batch.
/// Interleaved schedules require m % p == 0 (paper constraint) and v >= 2.
std::vector<Op> build_rank_schedule(const ScheduleParams& sp, int rank);

/// Peak number of microbatches whose forward has run on this rank but whose
/// backward has not — i.e. how many activation stashes the rank needs
/// simultaneously (counted per chunk-op). GPipe peaks at m; 1F1B at <= p.
int max_in_flight(const std::vector<Op>& ops);

/// Structural validation used by property tests: every (microbatch, chunk)
/// appears exactly once as forward and once as backward, forward precedes
/// backward, and per-chunk forwards/backwards are in microbatch order.
bool is_valid_rank_schedule(const ScheduleParams& sp, const std::vector<Op>& ops);

/// One executed op with its simulated start/end time (virtual clock).
struct TimedOp {
  Op op;
  double start = 0;
  double end = 0;
};

/// Full logical timeline: per-rank TimedOps in execution order, under the
/// same dependency rules as simulate_makespan. Drives the Fig. 3/4 diagram
/// bench and schedule-visualization tooling.
std::vector<std::vector<TimedOp>> simulate_timeline(const ScheduleParams& sp,
                                                    double tf_chunk,
                                                    double tb_chunk);

/// Logical makespan of the schedule with per-*chunk* forward/backward times
/// tf_chunk and tb_chunk and zero communication cost. Dependencies:
///   Fwd(mb, vs) needs Fwd(mb, vs-1);  Bwd(mb, vs) needs Bwd(mb, vs+1)
/// (or Fwd(mb, last) at the last virtual stage), plus each rank runs its
/// ops in order. This reproduces the paper's bubble-fraction formulas
/// exactly and is unit-tested against them.
double simulate_makespan(const ScheduleParams& sp, double tf_chunk, double tb_chunk);

/// Bubble fraction = (makespan − ideal) / makespan is sometimes used; the
/// paper uses t_pb / t_id. This returns t_pb / t_id with t_id = m·(tf+tb).
double bubble_fraction(const ScheduleParams& sp, double tf_chunk, double tb_chunk);

/// Analytic bubble fraction from §2.2: (p−1)/(v·m).
inline double analytic_bubble_fraction(const ScheduleParams& sp) {
  return static_cast<double>(sp.p - 1) / (static_cast<double>(sp.v) * sp.m);
}

}  // namespace ptdp::pipeline
