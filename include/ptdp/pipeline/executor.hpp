#pragma once

// Functional pipeline executor: runs a schedule's op list for this rank,
// moving real activation/gradient tensors between pipeline stages over the
// thread-backed communicator. Strict optimizer semantics follow from the
// structure: every microbatch's forward and backward complete inside
// run_batch (the pipeline flush), so the optimizer step that follows sees
// gradients for exactly this batch.

#include <map>
#include <span>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/stage.hpp"
#include "ptdp/pipeline/schedule.hpp"

namespace ptdp::pipeline {

class PipelineExecutor {
 public:
  /// `chunks` — the v model chunks this rank owns, chunk index order.
  /// `pipe` — the pipeline-parallel communicator (size p).
  PipelineExecutor(std::vector<model::GptStage*> chunks, dist::Comm pipe,
                   ScheduleParams params);

  /// Runs forwards+backwards for all m microbatches per the schedule,
  /// accumulating parameter grads scaled by extra_loss_scale/m (so with
  /// extra_loss_scale == 1 the batch loss is the mean of microbatch losses;
  /// mixed-precision training passes the dynamic loss scale). Returns the
  /// *unscaled* mean loss on ranks that own the last virtual stage, 0
  /// elsewhere.
  float run_batch(std::span<const model::Microbatch> microbatches,
                  float extra_loss_scale = 1.0f);

  /// Forward-only pass over the microbatches (validation): no grads, no
  /// activation stashing beyond the live microbatch. Returns the mean loss
  /// on ranks owning the last virtual stage, 0 elsewhere. Accepts any
  /// number of microbatches (it ignores the schedule's m).
  float run_forward_only(std::span<const model::Microbatch> microbatches);

  const ScheduleParams& params() const { return params_; }

 private:
  struct Endpoint {
    int rank;
    int chunk;
  };
  Endpoint prev_of(int chunk) const;  ///< device holding virtual stage vs-1
  Endpoint next_of(int chunk) const;  ///< device holding virtual stage vs+1

  std::vector<model::GptStage*> chunks_;
  dist::Comm pipe_;
  ScheduleParams params_;
};

}  // namespace ptdp::pipeline
