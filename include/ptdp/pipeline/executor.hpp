#pragma once

// Functional pipeline executor: runs a schedule's op list for this rank,
// moving real activation/gradient tensors between pipeline stages over the
// thread-backed communicator. Strict optimizer semantics follow from the
// structure: every microbatch's forward and backward complete inside
// run_batch (the pipeline flush), so the optimizer step that follows sees
// gradients for exactly this batch.
//
// Communication plane (DESIGN.md §9):
//  - All inter-stage transfers go through the nonblocking isend/irecv API;
//    the receive for the next scheduled op is pre-posted before the current
//    op's compute so p2p latency hides behind stage work.
//  - With ExecutorOptions::scatter_gather (§4.1) and a tensor-parallel
//    group of size t > 1, the boundary tensor [s, b, h] is replicated
//    across the t tensor ranks of the sending stage; each rank sends only
//    its own contiguous 1/t strip and the receiving stage reconstructs the
//    tensor with an all-gather over its tensor group. Inter-stage p2p
//    volume drops from bsh to bsh/t per rank; reconstruction is bitwise
//    exact, so results are identical with the optimization on or off.
//  - A chunk-backward hook fires when the last microbatch backward of a
//    model chunk completes (after its upstream grad send), which is the
//    point where that chunk's parameter gradients are final for the batch —
//    comm::GradReducer uses it to overlap data-parallel reduction with the
//    remaining pipeline ops.

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/stage.hpp"
#include "ptdp/pipeline/schedule.hpp"
#include "ptdp/tensor/dtype.hpp"

namespace ptdp::pipeline {

/// Communication-plane toggles for the executor.
struct ExecutorOptions {
  /// §4.1 scatter/gather: send 1/t activation strips across stage
  /// boundaries and all-gather on the tensor group at the receiver.
  /// Ignored (full-tensor sends) when the tensor group has size 1.
  bool scatter_gather = false;
  /// Pre-post the next scheduled op's irecv before the current op's
  /// compute. Off = post each receive immediately before its use.
  bool prepost_recv = true;
  /// Wire dtype of inter-stage boundary tensors (DESIGN.md §13). kBf16
  /// narrows activations/grads to bf16 before the isend and widens after
  /// the irecv (and all-gathers bf16 strips under scatter/gather), halving
  /// p2p bytes. Compute stays f32 either way; the rounding is deterministic,
  /// so runs are still bitwise-reproducible at fixed dtype. Composes with
  /// scatter_gather for a combined 2t x byte reduction.
  tensor::DType boundary_dtype = tensor::DType::kF32;
};

/// Bytes/messages this rank pushed across pipeline-stage boundaries.
/// Cumulative over the executor's lifetime; scatter/gather shows up here as
/// a 1/t reduction in bytes for the same message count.
struct CommStats {
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes_sent = 0;
};

class PipelineExecutor {
 public:
  /// Fired with the chunk index when that chunk's parameter grads become
  /// final for the running batch (all m microbatch backwards done).
  using ChunkBackwardHook = std::function<void(int chunk)>;

  /// `chunks` — the v model chunks this rank owns, chunk index order.
  /// `pipe` — the pipeline-parallel communicator (size p).
  /// `tensor` — the tensor-parallel communicator this rank's stages compute
  /// in; used only for the scatter/gather reconstruction all-gather.
  PipelineExecutor(std::vector<model::GptStage*> chunks, dist::Comm pipe,
                   dist::Comm tensor, ScheduleParams params, ExecutorOptions options);

  /// Convenience for tensor-parallel-free callers: solo tensor group,
  /// default options.
  PipelineExecutor(std::vector<model::GptStage*> chunks, dist::Comm pipe,
                   ScheduleParams params);

  /// Runs forwards+backwards for all m microbatches per the schedule,
  /// accumulating parameter grads scaled by extra_loss_scale/m (so with
  /// extra_loss_scale == 1 the batch loss is the mean of microbatch losses;
  /// mixed-precision training passes the dynamic loss scale). Returns the
  /// *unscaled* mean loss on ranks that own the last virtual stage, 0
  /// elsewhere.
  float run_batch(std::span<const model::Microbatch> microbatches,
                  float extra_loss_scale = 1.0f);

  /// Forward-only pass over the microbatches (validation): no grads, no
  /// activation stashing beyond the live microbatch. Returns the mean loss
  /// on ranks owning the last virtual stage, 0 elsewhere. Accepts any
  /// number of microbatches (it ignores the schedule's m).
  float run_forward_only(std::span<const model::Microbatch> microbatches);

  /// Installs (or clears, with nullptr) the grads-final hook. The hook runs
  /// on the rank thread inside run_batch; it may issue collectives on
  /// groups orthogonal to the pipeline (e.g. the data-parallel group) but
  /// must not touch the pipeline communicator.
  void set_chunk_backward_hook(ChunkBackwardHook hook) { hook_ = std::move(hook); }

  const ScheduleParams& params() const { return params_; }
  const ExecutorOptions& options() const { return options_; }
  const CommStats& comm_stats() const { return stats_; }

 private:
  struct Endpoint {
    int rank;
    int chunk;
  };
  /// An in-flight boundary receive: `buf` is the landing buffer (a 1/t
  /// strip under scatter/gather, the full tensor otherwise).
  struct PendingRecv {
    tensor::Tensor buf;
    dist::Request req;
  };

  Endpoint prev_of(int chunk) const;  ///< device holding virtual stage vs-1
  Endpoint next_of(int chunk) const;  ///< device holding virtual stage vs+1

  bool scatter_gather_active() const {
    return options_.scatter_gather && tensor_.size() > 1;
  }
  /// Sends `full` (replicated across the tensor group) to pipeline rank
  /// `dst` — the caller's 1/t strip under scatter/gather.
  void send_boundary(const tensor::Tensor& full, int dst, std::uint64_t tag);
  /// Posts the irecv for a boundary tensor of `full_elems` elements.
  PendingRecv post_recv(std::int64_t full_elems, int src, std::uint64_t tag);
  /// Completes a pending receive and reconstructs the full [s, b, h]
  /// boundary tensor (all-gather over the tensor group under s/g).
  tensor::Tensor finish_recv(PendingRecv pending, const tensor::Shape& full_shape);

  std::vector<model::GptStage*> chunks_;
  dist::Comm pipe_;
  dist::Comm tensor_;
  ScheduleParams params_;
  ExecutorOptions options_;
  ChunkBackwardHook hook_;
  CommStats stats_;
  std::int64_t batches_run_ = 0;  ///< run_batch count; labels trace spans
};

}  // namespace ptdp::pipeline
