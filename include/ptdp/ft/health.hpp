#pragma once

// HealthMonitor: the *detection* half of the self-healing loop (DESIGN.md
// §15). MegaScale's operational lesson (PAPERS.md, arXiv:2402.15627) is
// that at cluster scale the dominant failure mode is not a clean crash but
// a *degraded* rank — a straggler, a flaky link, a silent hang — which no
// exception ever reports. The monitor consumes per-rank per-step signals
// online (step wall time, busy time = wall − comm-wait, heartbeat age) and
// turns them into typed verdicts the supervisor can act on.
//
// Why busy time and not wall time: a synchronous pipeline is lockstep, so
// every rank's *wall* time converges to the straggler's — wall time
// identifies that the world is slow, never who slowed it. Busy time
// separates them: the straggler computes (or spins) for the extra time
// while its peers sit in Request::wait, so the straggler alone shows a
// busy-time EWMA far above the median of its peers (dist::comm_wait_ns
// provides the split).
//
// Determinism: verdict logic is pure threshold arithmetic over the fed
// samples — no wall-clock randomness enters unless heartbeat checking is
// enabled, and tests inject a virtual clock for that. The same sample
// sequence always yields the same verdict at the same step.

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ptdp::ft {

enum class Health : int { kHealthy = 0, kStraggler = 1, kHung = 2, kDead = 3 };

const char* health_name(Health h);

/// Detection thresholds. Defaults are tuned for the thread-backed world's
/// microsecond-scale steps; real clusters would scale them up, not change
/// the logic.
struct HealthOptions {
  double ewma_alpha = 0.4;        ///< weight of the newest busy-time sample
  double straggler_ratio = 3.0;   ///< rank is suspect when its busy EWMA
                                  ///< exceeds ratio × median of the others
  int straggler_patience = 3;     ///< consecutive suspect steps before verdict
  double min_busy_seconds = 1e-4; ///< suspicion floor: below this absolute
                                  ///< busy EWMA nothing is a straggler (noise guard)
  std::uint64_t warmup_steps = 2; ///< steps ignored after (re)start (warm caches)
  double heartbeat_timeout_s = 0; ///< 0 disables heartbeat-age checking
};

/// One rank's current diagnosis plus the evidence behind it.
struct RankVerdict {
  int rank = -1;
  Health health = Health::kHealthy;
  std::uint64_t step = 0;           ///< step at which the verdict was reached
  std::uint64_t suspect_since = 0;  ///< first step of the suspect streak
  double busy_ewma_s = 0.0;         ///< the rank's busy-time EWMA at verdict
  double peer_median_s = 0.0;       ///< median busy EWMA of the other ranks
  double wait_share = 0.0;          ///< comm-wait / wall of the last sample
};

/// Thrown by HealthMonitor::enforce() on every rank once a degradation
/// verdict exists: the cooperative "stop the world, a rank is bad" signal.
/// World::run wraps the first one in RankFailure; the supervisor reads the
/// verdict payload (not the throwing rank — every rank throws this) to
/// decide who to heal.
class DegradedWorldError : public std::runtime_error {
 public:
  explicit DegradedWorldError(const RankVerdict& v);
  const RankVerdict& verdict() const noexcept { return verdict_; }
  int rank() const noexcept { return verdict_.rank; }
  Health health() const noexcept { return verdict_.health; }

 private:
  RankVerdict verdict_;
};

/// Online, thread-safe (fed concurrently by every rank thread) health
/// tracker. One instance is shared across a supervised run's restarts;
/// begin_run() resets per-run state while counters like total verdicts
/// persist for reporting.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions opts = {});

  /// Resets per-run state (EWMAs, streaks, the standing verdict) for a
  /// world of `world_size` ranks. Call before every World::run.
  void begin_run(int world_size);

  /// Feeds one rank's step sample. wall_s is the step wall time, wait_s
  /// the comm-wait portion (from dist::comm_wait_ns deltas), busy_s
  /// typically wall_s − wait_s. Runs the straggler rule and, on a patience
  /// overflow, latches the run's verdict (first verdict wins).
  void record_step(int rank, std::uint64_t step, double wall_s, double busy_s,
                   double wait_s);

  /// Stamps the rank's liveness clock (used by the heartbeat-age rule when
  /// heartbeat_timeout_s > 0). record_step() stamps it implicitly.
  void heartbeat(int rank);

  /// External attribution hooks: the supervisor calls these when a
  /// watchdog RankTimeout (→ hung) or a crash (→ dead) identifies a victim
  /// outside the monitor's own arithmetic, so health() reflects all
  /// knowledge, whatever the detector.
  void note_hung(int rank, std::uint64_t step);
  void note_dead(int rank, std::uint64_t step);

  /// Throws DegradedWorldError if a verdict is standing (also runs the
  /// heartbeat-age rule first when enabled). Every rank calls this once
  /// per step; all of them throw the *same* verdict.
  void enforce();

  /// The standing verdict for this run, if any.
  std::optional<RankVerdict> verdict() const;

  Health health(int rank) const;

  /// Injectable monotonic clock (ns) for heartbeat tests; defaults to
  /// ptdp::steady_now_ns.
  void set_clock(std::function<std::int64_t()> now_ns);

  const HealthOptions& options() const noexcept { return opts_; }
  int world_size() const;

 private:
  struct RankState {
    Health health = Health::kHealthy;
    double busy_ewma_s = 0.0;
    bool has_sample = false;
    int suspect_streak = 0;
    std::uint64_t suspect_since = 0;
    std::int64_t last_heartbeat_ns = 0;
    bool heartbeat_seen = false;
  };

  /// Latches `v` as the run verdict if none is standing. Caller holds mu_.
  void latch_verdict_locked(const RankVerdict& v);

  /// Median busy EWMA over all ranks except `rank` (only ranks with a
  /// sample). Caller holds mu_. Returns false when no peer has a sample.
  bool peer_median_locked(int rank, double* out) const;

  HealthOptions opts_;
  mutable std::mutex mu_;
  std::function<std::int64_t()> now_ns_;
  std::vector<RankState> ranks_;
  std::optional<RankVerdict> verdict_;
};

}  // namespace ptdp::ft
