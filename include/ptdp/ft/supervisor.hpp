#pragma once

// Fault-tolerance plane, recovery half: TrainSupervisor wraps World::run
// with automatic restart. When a rank dies (real bug or injected fault),
// the World rethrows RankFailure; the supervisor records who died and
// where, tears the world down, re-creates it via a caller factory (which
// may choose a *different* (p, t, d) — elastic restart through the
// existing reshard path), resolves the newest committed checkpoint, and
// re-enters the training body from there, with bounded retries and
// exponential backoff. Recovery telemetry (failures, steps lost, time to
// recover) is exposed so tests and experiments can assert on it.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/world.hpp"

namespace ptdp::ft {

/// RAII bridge from ckpt's thread-local atomic-write hook to a FaultPlan:
/// while alive on a rank thread, every checkpoint write phase on that
/// thread counts as a kCkptWrite op for `rank` (and can kill/corrupt per
/// the plan). The supervisor installs one per rank thread around the
/// training body; tests can use it directly. A null plan is a no-op.
class ScopedCkptFaultHook {
 public:
  ScopedCkptFaultHook(dist::FaultPlan* plan, int rank);
  ~ScopedCkptFaultHook();
  ScopedCkptFaultHook(const ScopedCkptFaultHook&) = delete;
  ScopedCkptFaultHook& operator=(const ScopedCkptFaultHook&) = delete;

 private:
  bool installed_ = false;
};

struct SupervisorOptions {
  /// Checkpoint root the training body commits to; on restart the
  /// supervisor resolves the newest valid committed checkpoint here.
  std::string ckpt_dir;
  /// Restarts allowed after the initial attempt (so max_restarts + 1 runs
  /// total). Exceeding it rethrows the final RankFailure.
  int max_restarts = 3;
  /// Exponential backoff between restarts: initial * multiplier^k, capped.
  double backoff_initial_s = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
  /// Installed on every world the supervisor creates (fired specs stay
  /// disarmed across runs, so a restart proceeds past the injected fault).
  std::shared_ptr<dist::FaultPlan> fault_plan;
};

/// One failure the supervisor recovered from (or gave up on).
struct FailureRecord {
  int attempt = 0;              ///< which run died (0 = initial attempt)
  int rank = -1;                ///< root-cause rank
  std::uint64_t failed_step = 0;   ///< that rank's last noted step
  std::uint64_t resumed_step = 0;  ///< committed step the next run resumes from
  std::string cause;            ///< root-cause what()
  double backoff_s = 0.0;       ///< backoff slept before the restart
};

struct RecoveryStats {
  int attempts = 0;   ///< world runs started
  int failures = 0;   ///< RankFailures caught (== events.size())
  std::uint64_t steps_lost = 0;  ///< sum over failures of failed - resumed
  double total_recovery_seconds = 0.0;  ///< failure caught -> body re-entered
  std::vector<FailureRecord> events;
  bool succeeded = false;
};

class TrainSupervisor {
 public:
  /// SPMD training body, run on every rank: resume from `start_step` (the
  /// newest committed checkpoint's step, 0 when none exists — the body
  /// decides whether to load). `attempt` is 0 on the first run.
  using Body =
      std::function<void(dist::Comm& comm, std::uint64_t start_step, int attempt)>;

  /// Builds the world for a given attempt. Returning a different size on
  /// attempt > 0 is the elastic-restart path: the body can then reshard the
  /// committed checkpoint into the new layout.
  using WorldFactory = std::function<std::unique_ptr<dist::World>(int attempt)>;

  explicit TrainSupervisor(SupervisorOptions options);

  /// Runs `body` under supervision until it completes or retries are
  /// exhausted (then the last RankFailure propagates; stats() is valid
  /// either way). Returns the stats on success.
  const RecoveryStats& run(const WorldFactory& factory, const Body& body);

  const RecoveryStats& stats() const { return stats_; }
  const SupervisorOptions& options() const { return options_; }

 private:
  SupervisorOptions options_;
  RecoveryStats stats_;
};

}  // namespace ptdp::ft
