#pragma once

// Fault-tolerance plane, recovery half: TrainSupervisor wraps World::run
// with automatic restart. When a rank dies (real bug or injected fault),
// the World rethrows RankFailure; the supervisor records who died and
// where, tears the world down, re-creates it via a caller factory (which
// may choose a *different* (p, t, d) — elastic restart through the
// existing reshard path), resolves the newest committed checkpoint, and
// re-enters the training body from there, with bounded retries and
// exponential backoff. Recovery telemetry (failures, steps lost, time to
// recover) is exposed so tests and experiments can assert on it.
//
// Self-healing escalation (DESIGN.md §15): the supervisor classifies every
// failure by its root cause — a HealthMonitor verdict (DegradedWorldError:
// straggler), a watchdog expiry (RankTimeout: silent hang, attributed to
// the sender that went quiet), or anything else (crash: dead) — and walks
// an escalation ladder per degraded victim: warn & restart-in-place first
// (a transient might heal), then *evict* the rank once it re-offends:
// quarantine it in the FaultPlan, hand the eviction to the elastic factory
// so the next world is laid out without it, and resume from the newest
// committed checkpoint. Crashes keep the PR-3 behavior (restart-in-place
// until retries are exhausted).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/ft/health.hpp"

namespace ptdp::ft {

/// RAII bridge from ckpt's thread-local atomic-write hook to a FaultPlan:
/// while alive on a rank thread, every checkpoint write phase on that
/// thread counts as a kCkptWrite op for `rank` (and can kill/corrupt per
/// the plan). The supervisor installs one per rank thread around the
/// training body; tests can use it directly. A null plan is a no-op.
class ScopedCkptFaultHook {
 public:
  ScopedCkptFaultHook(dist::FaultPlan* plan, int rank);
  ~ScopedCkptFaultHook();
  ScopedCkptFaultHook(const ScopedCkptFaultHook&) = delete;
  ScopedCkptFaultHook& operator=(const ScopedCkptFaultHook&) = delete;

 private:
  bool installed_ = false;
};

/// How a degraded rank's escalation ladder proceeds.
struct EscalationOptions {
  /// Restart-in-place attempts granted to the *same* degraded victim
  /// (straggler/hung verdicts only) before it is evicted. 0 = evict on the
  /// first verdict. Crashes never trigger eviction — a dead rank's machine
  /// slot is assumed replaceable, the classic PR-3 restart.
  int restarts_before_evict = 1;
};

struct SupervisorOptions {
  /// Checkpoint root the training body commits to; on restart the
  /// supervisor resolves the newest valid committed checkpoint here.
  std::string ckpt_dir;
  /// Restarts allowed after the initial attempt (so max_restarts + 1 runs
  /// total). Exceeding it rethrows the final RankFailure.
  int max_restarts = 3;
  /// Exponential backoff between restarts: initial * multiplier^k, capped.
  double backoff_initial_s = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
  /// Installed on every world the supervisor creates (fired specs stay
  /// disarmed across runs, so a restart proceeds past the injected fault).
  std::shared_ptr<dist::FaultPlan> fault_plan;
  /// Optional detection plane: the supervisor begin_run()s it before every
  /// attempt and classifies DegradedWorldError failures with its verdicts.
  /// The training body is responsible for feeding it (record_step +
  /// enforce per step).
  std::shared_ptr<HealthMonitor> health;
  /// Watchdog deadlines installed on every world (default: disabled).
  dist::TimeoutOptions timeouts;
  EscalationOptions escalation;
  /// Virtual sleep hook for the backoff waits; tests inject a recorder so
  /// exact backoff schedules are asserted without real wall time. Default
  /// (unset) sleeps for real.
  std::function<void(double seconds)> sleep_fn;
};

/// One failure the supervisor recovered from (or gave up on).
struct FailureRecord {
  int attempt = 0;              ///< which run died (0 = initial attempt)
  int rank = -1;                ///< rank whose exception was the root cause
  std::uint64_t failed_step = 0;   ///< that rank's last noted step
  std::uint64_t resumed_step = 0;  ///< committed step the next run resumes from
  std::string cause;            ///< root-cause what()
  double backoff_s = 0.0;       ///< backoff slept before the restart
  /// The rank the healing action targets. For a watchdog timeout this is
  /// the *sender* that went quiet, not the rank that noticed; for a
  /// monitor verdict, the diagnosed rank; for a crash, the crashed rank.
  int victim = -1;
  Health victim_health = Health::kDead;
  bool evicted = false;  ///< this failure escalated to eviction
  /// Straggler verdicts: steps from first suspicion to verdict. Timeout
  /// and crash detections are step-instant (0).
  std::uint64_t detect_latency_steps = 0;
};

struct RecoveryStats {
  int attempts = 0;   ///< world runs started
  int failures = 0;   ///< RankFailures caught (== events.size())
  int evictions = 0;  ///< failures healed by evicting the victim
  std::uint64_t steps_lost = 0;  ///< sum over failures of failed - resumed
  double total_recovery_seconds = 0.0;  ///< failure caught -> body re-entered
  double last_recovery_seconds = 0.0;   ///< most recent single recovery
  std::vector<FailureRecord> events;
  bool succeeded = false;
};

/// Everything an elastic factory needs to lay out the next world.
struct RestartContext {
  int attempt = 0;                 ///< 0 on the first run
  std::uint64_t resume_step = 0;   ///< newest committed step (0 = fresh)
  /// World ranks evicted so far, in eviction order, with ids as of the
  /// world they were evicted from. Non-empty ⇒ lay out without them.
  std::vector<int> evicted;
  int last_victim = -1;            ///< victim of the failure before this restart
  Health last_health = Health::kHealthy;
};

class TrainSupervisor {
 public:
  /// SPMD training body, run on every rank: resume from `start_step` (the
  /// newest committed checkpoint's step, 0 when none exists — the body
  /// decides whether to load). `attempt` is 0 on the first run.
  using Body =
      std::function<void(dist::Comm& comm, std::uint64_t start_step, int attempt)>;

  /// Builds the world for a given attempt. Returning a different size on
  /// attempt > 0 is the elastic-restart path: the body can then reshard the
  /// committed checkpoint into the new layout.
  using WorldFactory = std::function<std::unique_ptr<dist::World>(int attempt)>;

  /// Elastic factory: sees the full restart context, in particular the
  /// evicted-rank list, so it can lay the world out one rank smaller after
  /// an eviction (the straggler-driven elastic-recovery path).
  using ElasticWorldFactory =
      std::function<std::unique_ptr<dist::World>(const RestartContext&)>;

  explicit TrainSupervisor(SupervisorOptions options);

  /// Runs `body` under supervision until it completes or retries are
  /// exhausted (then the last RankFailure propagates; stats() is valid
  /// either way). Returns the stats on success.
  const RecoveryStats& run(const ElasticWorldFactory& factory, const Body& body);

  /// Attempt-indexed factory convenience (the PR-3 signature).
  const RecoveryStats& run(const WorldFactory& factory, const Body& body) {
    return run(
        [&factory](const RestartContext& ctx) { return factory(ctx.attempt); }, body);
  }

  const RecoveryStats& stats() const { return stats_; }
  const SupervisorOptions& options() const { return options_; }

 private:
  SupervisorOptions options_;
  RecoveryStats stats_;
};

}  // namespace ptdp::ft
