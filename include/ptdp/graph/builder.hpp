#pragma once

// Builds LayerPlans from GptConfig (DESIGN.md §14). The builder emits the
// canonical *unfused* per-block sequence — add_bias / dropout / add,
// scale / mask / softmax as separate nodes — and build_layer_plan then runs
// the planner passes (fusion, dtype propagation, buffer planning) unless
// PlannerOptions says otherwise. The fused result dispatches exactly the
// kernel order of the hand-written eager bodies.

#include "ptdp/graph/ir.hpp"
#include "ptdp/model/config.hpp"

namespace ptdp::graph {

struct QuantPolicy;

struct PlannerOptions {
  bool fuse = true;               ///< run the §4.2 operator-fusion pass
  bool plan_buffers = true;       ///< run lifetime analysis + slot assignment
  bool propagate_dtypes = true;   ///< annotate §13 dtypes
  std::int64_t tp_size = 1;       ///< tensor-parallel degree (sizes sharded
                                  ///< tensors for the buffer plan; topology
                                  ///< is t-independent)
  bool inference = false;         ///< decode/serving plan: drop the backward
                                  ///< graph after fusion (no grads at serve)
  const QuantPolicy* quant = nullptr;  ///< with `inference`, run the §17
                                       ///< kernel-selection pass (passes.hpp)
};

/// The raw unfused plan for one block (no passes run). `with_dropout`
/// selects the topology (dropout nodes present or absent); the dropout
/// *probability* stays a runtime input so set_dropout(0) for eval does not
/// invalidate a plan.
LayerPlan build_unfused_layer_plan(const model::GptConfig& config,
                                   bool with_dropout, std::int64_t tp_size = 1);

/// Unfused builder + planner passes per `opts`.
LayerPlan build_layer_plan(const model::GptConfig& config, bool with_dropout,
                           const PlannerOptions& opts = {});

/// Plans for every layer a stage owns (layer indices [layer_begin,
/// layer_end)), with stage metadata for dumps. Pure function of the config —
/// no model instance required.
StagePlan build_stage_plan(const model::GptConfig& config,
                           std::int64_t layer_begin, std::int64_t layer_end,
                           bool has_embedding, bool has_head, bool recompute,
                           const PlannerOptions& opts = {});

}  // namespace ptdp::graph
