#pragma once

// SequentialExecutor: runs a planned LayerPlan over a Frame (DESIGN.md §14).
//
// The Frame is the StageCache-equivalent for graph mode: one tensor slot per
// plan value, owned by the LayerCache so a pipeline stage can keep many
// microbatches in flight. The executor realizes the buffer plan by dropping
// each slot at its planned last use — the freed block returns to the
// ptdp::mem pool's size-class free list, which is exactly the arena the slot
// assignment predicted. Activation recomputation is the plan transformation
// fwd ++ bwd run over a frame that holds only the layer input
// (Frame::keep_input_only), replacing the eager keep_input_only()+replay
// special case.
//
// Every node executes under a per-op obs::Span (static name from op_name),
// so Perfetto timelines show the planned schedule op by op.

#include <cstdint>
#include <vector>

#include "ptdp/graph/ir.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::model {
class ColumnParallelLinear;
class RowParallelLinear;
class ParallelAttention;
struct Param;
struct GptConfig;
}  // namespace ptdp::model

namespace ptdp::graph {

/// Execution state for one (layer, microbatch): one tensor per plan value.
struct Frame {
  std::vector<tensor::Tensor> vals;
  ValueId input = kNoValue;
  bool with_dropout = false;  ///< topology the forward ran with

  bool active() const { return !vals.empty(); }
  void begin(const LayerPlan& plan, const tensor::Tensor& x) {
    vals.assign(plan.values.size(), tensor::Tensor());
    input = plan.input;
    with_dropout = plan.with_dropout;
    vals[static_cast<std::size_t>(input)] = x;
  }
  /// §3.5 drop: release every slot except the layer input; the recompute
  /// plan rebuilds the rest.
  void keep_input_only() {
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (static_cast<ValueId>(i) != input) vals[i] = tensor::Tensor();
    }
  }
  void clear() { vals.clear(); }
};

/// Non-owning handles to the modules/params a plan's nodes drive. Built once
/// by TransformerLayer; node attrs (LinearSlot/ParamSlot) index into it.
struct LayerBinding {
  const model::GptConfig* config = nullptr;
  std::int64_t layer_idx = 0;
  model::Param* params[kNumParamSlots] = {};
  model::ColumnParallelLinear* qkv = nullptr;
  model::RowParallelLinear* proj = nullptr;
  model::ColumnParallelLinear* fc1 = nullptr;
  model::RowParallelLinear* fc2 = nullptr;
  model::ParallelAttention* attn = nullptr;
};

/// Per-run dynamic inputs: the microbatch geometry, the RNG key, and the
/// current dropout probability (an eval-mode runtime input — plan topology
/// only depends on whether training dropout exists at all).
struct ExecContext {
  std::int64_t s = 0, b = 0;
  std::uint64_t mb_tag = 0;
  float dropout = 0.0f;
};

class SequentialExecutor {
 public:
  /// Executes plan.fwd over a begin()-initialized frame; returns y [s,b,h].
  static tensor::Tensor run_forward(const LayerPlan& plan, Frame& frame,
                                    const LayerBinding& bind,
                                    const ExecContext& ctx);
  /// Executes plan.bwd over a frame still holding the saved forward values;
  /// accumulates parameter grads and returns dx [s,b,h].
  static tensor::Tensor run_backward(const LayerPlan& plan, Frame& frame,
                                     const LayerBinding& bind,
                                     const ExecContext& ctx,
                                     const tensor::Tensor& dy);
  /// Recompute transformation: executes fwd ++ bwd over a frame holding only
  /// the layer input. RNG sites replay bitwise (counter-based streams).
  static tensor::Tensor run_recompute(const LayerPlan& plan, Frame& frame,
                                      const LayerBinding& bind,
                                      const ExecContext& ctx,
                                      const tensor::Tensor& dy);
};

}  // namespace ptdp::graph
