#pragma once

// Planner rewrite/analysis passes over a LayerPlan (DESIGN.md §14).
// Run order: fuse_operators -> propagate_dtypes -> analyze_lifetimes ->
// plan_buffers (build_layer_plan wires this up). Each pass is independently
// callable so tests can golden-check the IR between passes.

#include <cstdio>

#include "ptdp/graph/ir.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/tensor/quant_ops.hpp"

namespace ptdp::graph {

/// Per-op policy for the §17 kernel-selection pass: which linear slots of an
/// inference plan get rewritten to quantized GEMMs, at what format and group
/// size. `drop_f32` releases the fp32 weight storage after quantize-once (a
/// serving world never needs the masters; training worlds keep them).
struct QuantPolicy {
  tensor::QuantKind kind = tensor::QuantKind::kInt8;
  std::int64_t group_size = 64;  ///< rows per scale group (clamped per shard
                                 ///< via quant::effective_group_size)
  bool slots[4] = {true, true, true, true};  ///< indexed by LinearSlot
  bool drop_f32 = true;
};

/// §4.2 operator fusion. Jointly rewrites forward and backward graphs:
///   add_bias + [dropout] + add     -> fused_bias_dropout_add
///   add_bias + gelu                -> fused_bias_gelu      (+ backward pair
///   gelu_bwd + bias_grad_accum     -> fused_bias_gelu_bwd)
///   scale + mask_fill + softmax    -> fused_scale_{causal,mask}_softmax
///   softmax_bwd + scale            -> fused_scale_softmax_bwd
/// A pattern is legal only when its intermediate values are single-use,
/// not pinned, and not live into the other graph (except values the fused
/// kernel itself re-materializes, e.g. the pre-GeLU sum). Returns the number
/// of fusions applied and sets plan.fused/num_fusions.
int fuse_operators(LayerPlan& plan);

/// Annotates every value with its §13 dtype: activations are f32 (all
/// non-GEMM kernels are f32-compute), and the only bf16 values are the
/// cached GEMM inputs of kLinearFwd when the weight dtype is bf16 (the
/// linear layer narrows its stashed input to the weight dtype). Also fixes
/// ref_bytes to the dtype-aware size.
void propagate_dtypes(LayerPlan& plan, const model::GptConfig& config);

/// §17 kernel selection: rewrites every policy-eligible kLinearFwd in an
/// INFERENCE plan (empty backward graph) to kLinearFwdQuant, tagging the
/// node with the quant format. Returns the number of nodes rewritten, or -1
/// — leaving the plan untouched — when the plan still has a backward graph:
/// quantized weights have no gradient, so training-mode plans are refused.
int select_kernels(LayerPlan& plan, const QuantPolicy& policy);

/// Fills Value::def/last_use/saved over the unified fwd++bwd node order.
void analyze_lifetimes(LayerPlan& plan);

/// Lifetime-interval buffer planning: greedily assigns each non-pinned value
/// an arena slot such that values sharing a slot have disjoint [def,
/// last_use] intervals and identical (ref_bytes, dtype); fills Value::slot
/// and plan.buffer. The executor realizes the plan by releasing each frame
/// tensor at its planned last use, returning its block to the ptdp::mem
/// pool's size-class free list — the pool *is* the arena backing store.
/// Requires analyze_lifetimes.
void plan_buffers(LayerPlan& plan);

/// ptdp-plan-v1 JSON dump (values with lifetimes/slots/dtypes, node lists,
/// buffer stats) for one plan or a whole stage.
void dump_plan_json(const LayerPlan& plan, std::int64_t layer_idx, std::FILE* out);
void dump_stage_plan_json(const StagePlan& plan, const model::GptConfig& config,
                          std::FILE* out);

}  // namespace ptdp::graph
