#pragma once

// ptdp::graph — a small static per-layer op-graph IR (DESIGN.md §14).
//
// Instead of hand-written forward/backward bodies in the model layer, each
// transformer block is described once as a LayerPlan: a shared value table
// plus two topologically-ordered node lists (forward and backward) whose
// nodes name existing tensor kernels, fused §4.2 kernels, or tensor-parallel
// module calls (linear fwd/bwd, attention dropout-mask draw). The builder
// emits the canonical *unfused* sequence from GptConfig; planner passes
// (passes.hpp) then fuse operators, propagate §13 dtypes, and assign
// lifetime-planned buffer slots. Activation recomputation is a plan
// transformation — the unified node order fwd ++ bwd *is* the recompute
// schedule, since backward nodes reference forward value ids directly.
//
// Bitwise contract: after the fusion pass, executing a plan dispatches the
// exact kernel sequence the eager bodies in transformer_layer.cpp /
// attention.cpp / mlp.cpp dispatch, with RNG streams rebuilt from the same
// (seed, mb_tag, layer, site) keys — so graph mode is bit-identical to
// eager mode, and PTDP_GRAPH=0 remains a pure escape hatch.

#include <cstdint>
#include <string>
#include <vector>

#include "ptdp/model/rng_sites.hpp"
#include "ptdp/tensor/dtype.hpp"

namespace ptdp::graph {

using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

/// Every operation a plan can schedule. Fused kinds are what the §4.2
/// kernels provide; their unfused counterparts exist only pre-fusion (and in
/// unfused plans kept for the three-way bench) — the fusion pass rewrites
/// them jointly across the forward and backward graphs.
enum class OpKind : std::uint8_t {
  // structural (metadata views + head split/merge copies)
  kView2D,             ///< [s,b,h] -> [s*b,h] (zero-copy)
  kView3D,             ///< [s*b,h] -> [s,b,h] (zero-copy)
  kAttnSplitHeads,     ///< qkv [sb,3h_l] -> q,k,v each [b·a_l,s,dk]
  kAttnMergeHeads,     ///< ctx [b·a_l,s,dk] -> [sb,h_l]
  kAttnSplitGradHeads, ///< dctx2d [sb,h_l] -> [b·a_l,s,dk]
  kAttnMergeQkvGrad,   ///< dq,dk,dv -> dqkv [sb,3h_l]
  // tensor-parallel module calls (keep their internal GEMM+all-reduce order)
  kLinearFwd,          ///< out0 = y, out1 = cached gemm input
  kLinearBwd,          ///< in0 = dy, in1 = cached input; accumulates grads
  kAttnProbMask,       ///< site-keyed attention-probability dropout mask
  // normalization
  kLayerNorm,          ///< out = y, mean, rstd
  kLayerNormBwd,       ///< accumulates dgamma/dbeta; out = dx
  // primitive elementwise / GEMM / softmax
  kAddBias,
  kGelu,
  kGeluBwd,
  kDropout,            ///< out0 = y, out1 = mask; site-keyed RNG
  kDropoutBwd,
  kAdd,
  kMul,
  kScale,
  kMaskFill,           ///< causal (or no-op padding) -inf fill, unfused only
  kSoftmax,
  kSoftmaxBwd,
  kBmm,
  kBmmNT,
  kBmmTN,
  kBiasGradAccum,      ///< param.grad += bias_grad(in0)
  // fused kernels (§4.2)
  kFusedBiasGelu,
  kFusedBiasGeluBwd,
  kFusedBiasDropoutAdd,  ///< out0 = y, out1 = mask
  kScaleCausalSoftmax,
  kScaleMaskSoftmax,
  kScaleSoftmaxBwd,
  // serving-only kernel selections (§17): rewritten from kLinearFwd by the
  // select_kernels pass on inference plans — same module call, but the GEMM
  // streams blockwise-quantized weight bytes (Node::quant names the format)
  kLinearFwdQuant,
};

/// Stable span/dump name for an op ("graph.layernorm", ...). Static storage;
/// safe to hand to obs::Span.
const char* op_name(OpKind kind);

/// Which tensor-parallel linear module a kLinearFwd/kLinearBwd node drives.
enum class LinearSlot : std::int8_t { kQkv = 0, kProj, kFc1, kFc2 };

/// Which parameter a node reads or accumulates into.
enum class ParamSlot : std::int8_t {
  kLn1Gamma = 0,
  kLn1Beta,
  kLn2Gamma,
  kLn2Beta,
  kProjBias,
  kFc1Bias,
  kFc2Bias,
};
inline constexpr int kNumParamSlots = 7;

struct Node {
  OpKind kind;
  std::vector<ValueId> in;
  std::vector<ValueId> out;
  std::int8_t linear = -1;  ///< LinearSlot, for kLinear*
  std::int8_t param = -1;   ///< ParamSlot, for param-consuming kinds
  std::int8_t param2 = -1;  ///< second param (layernorm beta)
  model::DropSite site = model::DropSite::kEmbedding;  ///< RNG site for dropout kinds
  float scale = 0.0f;       ///< softmax scale / kScale factor
  bool causal = false;      ///< kMaskFill / kScale*Softmax variant
  std::int8_t quant = -1;   ///< tensor::QuantKind, for kLinearFwdQuant
};

/// One tensor in the plan. Shape is symbolic (for dumps) plus a concrete
/// byte size at the reference microbatch b = 1 — every shape in a layer
/// scales linearly in b, so lifetime/slot planning at b = 1 stays valid for
/// any microbatch size.
struct Value {
  std::string name;
  std::string shape;            ///< symbolic, e.g. "[s*b, h]"
  std::int64_t ref_bytes = 0;   ///< bytes at b = 1 (dtype-aware)
  tensor::DType dtype = tensor::DType::kF32;
  // ---- analysis (filled by passes) ----
  // Node positions use the *unified* index: forward nodes 0..F-1, backward
  // nodes F..F+B-1 — the recompute schedule is exactly this order.
  std::int32_t def = -1;        ///< defining node; -1 = graph input
  std::int32_t last_use = -1;   ///< last consuming node; -1 = unused
  bool saved = false;           ///< defined in forward, consumed in backward
  bool pinned = false;          ///< caller-visible: never fused away/reused
  std::int32_t slot = -1;       ///< planned arena slot (plan_buffers)
};

/// Summary the buffer planner attaches to a plan.
struct BufferPlanStats {
  std::int32_t num_slots = 0;          ///< distinct planned arena slots
  std::int64_t slot_bytes = 0;         ///< Σ slot sizes (arena footprint, b=1)
  std::int64_t total_value_bytes = 0;  ///< Σ value sizes (no-reuse footprint)
  std::int64_t peak_bytes = 0;  ///< peak live bytes over the unified walk
  std::int64_t saved_bytes = 0; ///< Σ saved values: the fwd->bwd footprint
                                ///< (recompute keeps only the input instead)
};

/// A planned transformer block: shared value table + forward/backward node
/// lists. `input`/`output` bound the forward graph, `grad_in`/`grad_out`
/// the backward graph; backward nodes reference forward value ids for
/// everything `saved`.
struct LayerPlan {
  std::vector<Value> values;
  std::vector<Node> fwd;
  std::vector<Node> bwd;
  ValueId input = kNoValue;     ///< x [s,b,h]
  ValueId output = kNoValue;    ///< y [s,b,h]
  ValueId grad_in = kNoValue;   ///< dy [s,b,h]
  ValueId grad_out = kNoValue;  ///< dx [s,b,h]
  bool with_dropout = false;    ///< topology variant (p > 0)
  bool fused = false;           ///< fusion pass has run
  bool causal = true;
  std::int32_t num_fusions = 0;
  BufferPlanStats buffer;

  std::size_t unified_size() const { return fwd.size() + bwd.size(); }
  /// Node at unified index u (forward then backward).
  const Node& unified(std::size_t u) const {
    return u < fwd.size() ? fwd[u] : bwd[u - fwd.size()];
  }
};

/// Per-stage assembly: one LayerPlan per owned layer plus the stage shape.
/// (Plans of a stage share one topology; they are kept per-layer so dumps
/// carry global layer indices.)
struct StagePlan {
  std::vector<LayerPlan> layers;
  std::int64_t layer_begin = 0;
  std::int64_t layer_end = 0;
  bool has_embedding = false;
  bool has_head = false;
  bool recompute = false;
};

// ---- runtime switch --------------------------------------------------------------
// Graph execution is the default; PTDP_GRAPH=0 (or set_enabled(false))
// restores the hand-written eager bodies. Mirrors mem::set_pool_enabled.

/// True when model layers should execute planned graphs.
bool enabled();
/// Runtime override (tests, benches). Returns the previous value.
bool set_enabled(bool on);

}  // namespace ptdp::graph
