#pragma once

// ptdp::serve continuous-batching engine (DESIGN.md §16): an admission
// queue, chunked prefill interleaved with single-token decode, and
// KV-pressure preemption/eviction with re-admission — vLLM/Orca-style
// iteration-level scheduling over this repo's tensor-parallel GptStage.
//
// The scheduler is step-driven and deterministic: decisions depend only on
// (submitted requests, options, step count), never on wall time, so every
// tensor-parallel rank — running its own engine instance over its own model
// shard and identically-seeded sampling streams — forms the same batches,
// issues the same collectives, and samples the same tokens. Wall clocks
// are used for *measurement* only (TTFT / per-token latency).
//
// State machine per request:
//   Queued --admit--> Running(prefill) --chunks done--> Running(decode)
//   Running --KV pressure--> Queued (evicted: blocks freed, tokens kept)
//   Running --max_new_tokens / window full--> Finished
// An evicted request re-prefills prompt+generated on re-admission; its
// sampling Rng's counter survives eviction, so the resumed token stream is
// bitwise the stream it would have produced uninterrupted.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ptdp/model/generate.hpp"
#include "ptdp/serve/kv_cache.hpp"

namespace ptdp::serve {

struct Request {
  std::uint64_t id = 0;
  std::vector<std::int32_t> prompt;
  /// Sampling + length config. max_new_tokens is clamped so that
  /// prompt + generation never outgrows the model's trained window
  /// (positions past it have no KV-cache representation).
  model::GenerateOptions options;
};

struct FinishedRequest {
  std::uint64_t id = 0;
  std::vector<std::int32_t> tokens;  ///< generated continuation only
  std::int64_t submit_step = 0;
  std::int64_t finish_step = 0;
  std::int64_t preemptions = 0;    ///< times this request was evicted
  double submit_ms = 0.0;          ///< engine-clock timestamps (monotonic)
  double first_token_ms = 0.0;     ///< 0 when nothing was generated
  double finish_ms = 0.0;
  std::vector<double> token_ms;    ///< timestamp of every generated token
};

struct EngineOptions {
  std::int64_t block_tokens = 8;
  std::int64_t capacity_blocks = 128;  ///< shared KV budget (whole engine)
  std::int64_t max_batch_tokens = 64;  ///< rows per decode() call
  std::int64_t prefill_chunk = 8;      ///< chunked-prefill granularity
  std::int64_t max_running = 64;       ///< admission bound on live sequences
  /// Feed serve.* obs metrics/spans. Set true on exactly one tensor rank
  /// (they all observe identical values; recording once keeps counts exact).
  bool record_metrics = true;
};

struct EngineStats {
  std::int64_t steps = 0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t preemptions = 0;
  std::int64_t decode_tokens = 0;   ///< single-token decode rows issued
  std::int64_t prefill_tokens = 0;  ///< prefill-chunk rows issued
  std::int64_t generated_tokens = 0;
  std::int64_t peak_running = 0;    ///< concurrent-sequence high-water
  std::int64_t peak_batch_tokens = 0;
};

class ServeEngine {
 public:
  ServeEngine(model::GptStage& stage, EngineOptions options);

  /// Enqueues a request (takes effect at the next step()). Ids must be
  /// unique across the engine's lifetime. CHECK-fails if one maximal
  /// sequence could not fit the KV budget even alone.
  void submit(Request request);

  /// Runs one scheduler iteration: admit, form a batch (decode first, then
  /// prefill chunks), one tensor-parallel decode() over the batch, sample,
  /// retire. Returns the requests that finished this step (possibly none).
  /// A no-work step is a cheap no-op returning {}.
  std::vector<FinishedRequest> step();

  bool idle() const { return waiting_.empty() && running_.empty(); }
  std::int64_t waiting() const { return static_cast<std::int64_t>(waiting_.size()); }
  std::int64_t running() const { return static_cast<std::int64_t>(running_.size()); }
  const EngineStats& stats() const { return stats_; }
  PagedKvCache& kv() { return kv_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Seq {
    Request req;
    std::int64_t ordinal = 0;            ///< admission priority (arrival order)
    std::vector<std::int32_t> context;   ///< prompt + generated so far
    std::int64_t generated = 0;
    std::int64_t max_context = 0;        ///< prompt + clamped max_new_tokens
    std::int64_t cached = 0;             ///< KV positions materialized
    Rng rng;                             ///< survives eviction (counter-based)
    std::int64_t submit_step = 0;
    std::int64_t preemptions = 0;
    double submit_ms = 0.0, first_token_ms = 0.0;
    std::vector<double> token_ms;

    Seq() : rng(0) {}
  };

  double now_ms() const;
  Seq& seq(std::uint64_t id);
  /// Inserts into a queue keeping ordinal (arrival) order.
  static void insert_by_ordinal(
      std::vector<std::uint64_t>& queue,
      const std::unordered_map<std::uint64_t, Seq>& seqs, std::uint64_t id);
  /// Evicts `id`: drops its KV blocks and moves it back to the waiting
  /// queue (ordinal position preserved); generated tokens and Rng survive.
  void preempt(std::uint64_t id);
  /// Reserves KV for `len` positions of `id`, evicting strictly-younger
  /// running sequences (youngest first, never ones in `pinned`) until the
  /// reservation fits. False when it cannot fit even then.
  bool reserve_with_eviction(std::uint64_t id, std::int64_t len,
                             const std::unordered_set<std::uint64_t>& pinned);
  void finish(std::uint64_t id, std::vector<FinishedRequest>& done);

  model::GptStage& stage_;
  EngineOptions options_;
  PagedKvCache kv_;
  std::unordered_map<std::uint64_t, Seq> seqs_;
  std::vector<std::uint64_t> waiting_;  ///< arrival order (front = oldest)
  std::vector<std::uint64_t> running_;  ///< arrival order
  std::vector<FinishedRequest> pending_finished_;  ///< zero-work retirements
  EngineStats stats_;
  std::int64_t next_ordinal_ = 0;
  std::int64_t epoch_ns_ = 0;  ///< engine-construction timestamp
};

}  // namespace ptdp::serve
