#pragma once

// ptdp::serve paged KV cache (DESIGN.md §16): fixed-size KV blocks drawn
// from the ptdp::mem pool through a BlockAllocator, with per-sequence
// block tables so thousands of sequences share one bounded budget —
// vLLM's paging idea on this repo's CPU substrate.
//
// A block holds `block_tokens` consecutive positions of one sequence; each
// position slot stores K and V rows for every layer ([L][2][hidden_local]
// floats), so one table entry pages a sequence's entire per-position KV
// state. Freed blocks park on the allocator's free list and are reused —
// the pool sees one acquire per block for the lifetime of the allocator,
// which is what makes steady-state pool growth zero across requests.
//
// Accounting is byte-exact at block granularity: live/peak bytes move in
// whole blocks and are surfaced as the serve.kv.live_bytes /
// serve.kv.peak_bytes obs gauges (plus alloc/reuse counters) when
// record_metrics is set — in tensor-parallel worlds only rank 0's engine
// should record, or every rank would write the same gauges.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ptdp/mem/pool.hpp"
#include "ptdp/model/kv_cache.hpp"

namespace ptdp::serve {

struct BlockAllocatorOptions {
  std::int64_t block_floats = 0;     ///< payload floats per block
  std::int64_t capacity_blocks = 0;  ///< hard budget; allocate() fails above it
  bool record_metrics = true;        ///< feed the serve.kv.* obs metrics
};

/// Fixed-budget block allocator over mem::acquire/release. Blocks are
/// acquired from the pool lazily (first use) and cached on an internal
/// free list forever after; free()d blocks are reused in LIFO order.
class BlockAllocator {
 public:
  explicit BlockAllocator(BlockAllocatorOptions options);
  ~BlockAllocator();
  BlockAllocator(const BlockAllocator&) = delete;
  BlockAllocator& operator=(const BlockAllocator&) = delete;

  /// A free block id, or -1 when the budget is exhausted.
  std::int32_t allocate();
  void free(std::int32_t block);
  float* data(std::int32_t block);
  const float* data(std::int32_t block) const;

  std::int64_t capacity_blocks() const { return options_.capacity_blocks; }
  std::int64_t free_blocks() const;
  std::int64_t live_blocks() const { return live_blocks_; }
  std::int64_t peak_live_blocks() const { return peak_live_blocks_; }
  std::int64_t block_bytes() const {
    return options_.block_floats * static_cast<std::int64_t>(sizeof(float));
  }
  std::int64_t live_bytes() const { return live_blocks_ * block_bytes(); }
  std::int64_t peak_bytes() const { return peak_live_blocks_ * block_bytes(); }
  /// acquire() calls made against the pool (== high-water distinct blocks).
  std::int64_t pool_acquires() const { return pool_acquires_; }

 private:
  void publish_gauges() const;

  BlockAllocatorOptions options_;
  std::vector<mem::Block> blocks_;       ///< pool blocks, indexed by block id
  std::vector<std::int32_t> free_list_;  ///< ids ready for reuse (LIFO)
  std::int64_t live_blocks_ = 0;
  std::int64_t peak_live_blocks_ = 0;
  std::int64_t pool_acquires_ = 0;
};

struct KvCacheOptions {
  std::int64_t num_layers = 0;
  std::int64_t hidden_local = 0;     ///< heads_local · head_dim on this rank
  std::int64_t block_tokens = 8;     ///< positions per block
  std::int64_t capacity_blocks = 0;  ///< shared budget across all sequences
  bool record_metrics = true;
};

/// model::KvStore over paged blocks: per-sequence block tables into one
/// BlockAllocator. Capacity is reserved explicitly (try_reserve) so the
/// scheduler can make admission/preemption decisions before any write;
/// write() into unreserved positions is a CHECK failure, never an alloc.
class PagedKvCache final : public model::KvStore {
 public:
  explicit PagedKvCache(KvCacheOptions options);

  /// Ensures `seq` has blocks for `len` total positions. Returns false —
  /// allocating nothing — when the budget cannot cover the missing blocks.
  bool try_reserve(std::uint64_t seq, std::int64_t len);
  /// Blocks needed to hold `len` positions.
  std::int64_t blocks_for(std::int64_t len) const;
  std::int64_t free_blocks() const { return allocator_.free_blocks(); }
  std::int64_t seq_blocks(std::uint64_t seq) const;
  /// Positions currently reserved for `seq` (block-table length · tokens).
  std::int64_t reserved_tokens(std::uint64_t seq) const;
  /// Number of sequences with a block table (including empty ones).
  std::int64_t num_tables() const {
    return static_cast<std::int64_t>(tables_.size());
  }
  /// Sum of all block-table lengths — must equal allocator().live_blocks().
  std::int64_t total_table_blocks() const;
  const KvCacheOptions& options() const { return options_; }
  BlockAllocator& allocator() { return allocator_; }

  // model::KvStore — storage layout per position slot: [layer][K|V][hl].
  void write(std::uint64_t seq, std::int64_t layer, std::int64_t pos,
             const tensor::Tensor& k2d, const tensor::Tensor& v2d) override;
  void gather(std::uint64_t seq, std::int64_t layer, std::int64_t len,
              tensor::Tensor& k, tensor::Tensor& v) const override;
  /// Frees the sequence's blocks back to the allocator (preemption/finish).
  void drop(std::uint64_t seq) override;

 private:
  /// Float offset of (position-in-block, layer, K=0/V=1) inside a block.
  std::int64_t slot_offset(std::int64_t pos_in_block, std::int64_t layer,
                           std::int64_t which) const {
    return ((pos_in_block * options_.num_layers + layer) * 2 + which) *
           options_.hidden_local;
  }

  KvCacheOptions options_;
  BlockAllocator allocator_;
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> tables_;
};

}  // namespace ptdp::serve
