#pragma once

// Closed-loop, seeded load generator for the serving engine: N simulated
// users each issue a fixed count of requests, waiting for the previous
// response (plus a random think time) before the next. Everything —
// prompts, lengths, sampling config, think times — is drawn from
// counter-based Rng streams keyed on (seed, user), and pacing is measured
// in *scheduler steps*, not wall time, so two tensor-parallel ranks driving
// their own LoadGen instance submit byte-identical request streams.
//
// Every submitted Request is kept so callers can replay any request
// through model::generate's full-forward oracle and compare token streams.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ptdp/serve/engine.hpp"

namespace ptdp::serve {

struct LoadGenOptions {
  std::int64_t users = 64;
  std::int64_t requests_per_user = 2;
  std::int64_t prompt_min = 4;      ///< prompt length range (inclusive)
  std::int64_t prompt_max = 12;
  std::int64_t max_new_min = 4;     ///< generation budget range (inclusive)
  std::int64_t max_new_max = 16;
  std::int64_t think_steps_max = 4; ///< uniform [0, max] steps between requests
  std::int64_t window = 0;          ///< model seq; prompt+max_new clamped to it
  std::int64_t vocab = 0;           ///< token ids drawn uniform below this
  double sampled_fraction = 0.5;    ///< chance a request samples vs greedy
  float temperature = 0.8f;         ///< for sampled requests
  std::int64_t top_k = 8;           ///< for sampled requests (0 = all)
  std::uint64_t seed = 0;
};

class LoadGen {
 public:
  explicit LoadGen(LoadGenOptions options);

  /// Submits every request due at `step` (user idle, think time elapsed).
  void tick(std::int64_t step, ServeEngine& engine);
  /// Feed back the results of an engine step; unblocks those users.
  void on_finished(std::span<const FinishedRequest> done, std::int64_t step);

  /// True once every user has issued and received all its requests.
  bool done() const;
  std::int64_t submitted() const { return submitted_; }
  std::int64_t outstanding() const { return outstanding_; }
  const std::vector<FinishedRequest>& finished() const { return finished_; }
  /// The request as submitted (for oracle replay / validation).
  const Request& request(std::uint64_t id) const;
  const LoadGenOptions& options() const { return options_; }

 private:
  struct User {
    Rng rng;
    std::int64_t sent = 0;
    std::int64_t due_step = 0;
    bool busy = false;
    User() : rng(0) {}
  };

  Request make_request(std::int64_t user);

  LoadGenOptions options_;
  std::vector<User> users_;
  std::unordered_map<std::uint64_t, Request> requests_;
  std::vector<FinishedRequest> finished_;
  std::int64_t submitted_ = 0;
  std::int64_t outstanding_ = 0;
};

}  // namespace ptdp::serve
