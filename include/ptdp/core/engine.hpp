#pragma once

// PtdpEngine: the end-to-end PTD-P trainer. Given a world communicator and
// a (p, t, d) configuration it
//   - builds the Megatron-style process groups,
//   - constructs this rank's v model chunks (tensor-parallel within the
//     tensor group, layer-striped across virtual pipeline stages),
//   - runs each batch through the chosen pipeline schedule (with the §4.1
//     scatter/gather boundary optimization when configured),
//   - all-reduces the tied-embedding grads over the embedding group and
//     delegates the data-parallel gradient reduction to comm::GradReducer,
//     which can overlap per-chunk reductions with the pipeline tail,
//   - optionally clips, then steps the optimizer (optionally with bf16
//     mixed precision and dynamic loss scaling),
// preserving strict optimizer semantics: tests verify that every layout
// produces the same weights as serial training, bitwise-independent of the
// scatter/gather and overlap toggles.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/comm/grad_reducer.hpp"
#include "ptdp/core/parallel_config.hpp"
#include "ptdp/dist/process_groups.hpp"
#include "ptdp/optim/lr_scheduler.hpp"
#include "ptdp/optim/mixed_precision.hpp"
#include "ptdp/optim/optimizer.hpp"
#include "ptdp/pipeline/executor.hpp"

namespace ptdp::core {

struct EngineOptions {
  model::GptConfig model;
  ParallelConfig parallel;
  std::int64_t global_batch = 8;

  /// kZeroAdam shards Adam state over the data-parallel group (§6's
  /// "ZeRO can be combined with model parallelism"): the engine skips its
  /// own data-parallel grad all-reduce and the sharded optimizer
  /// reduce-scatters grads / all-gathers params instead. Incompatible with
  /// mixed_precision and grad_clip (state lives in shards).
  enum class Opt { kSgd, kAdam, kZeroAdam };
  Opt optimizer = Opt::kSgd;
  optim::SgdOptions sgd{};
  optim::AdamOptions adam{};
  /// fp32 master weights + dynamic loss scaling (optim/mixed_precision.hpp).
  /// Forced on when model.dtype == kBf16 — bf16 params require the master-
  /// weight step path; leaving it false there is not an option.
  bool mixed_precision = false;
  optim::LossScalerOptions scaler{};
  /// Wire dtype of the data-parallel grad reduction (see
  /// comm::GradReducerOptions::comm_dtype). Independent of model.dtype:
  /// grads are born f32 either way, so f32 reduction stays exact even for
  /// bf16 models, and bf16 reduction is an opt-in bytes-for-rounding trade.
  tensor::DType grad_comm_dtype = tensor::DType::kF32;
  double grad_clip = 0.0;  ///< 0 disables clipping
  /// Data-parallel grad all-reduce bucketing: each chunk's grads are
  /// flattened into buckets of up to this many elements and reduced per
  /// bucket (DDP style: fewer, larger messages). 0 = one all-reduce per
  /// parameter.
  std::int64_t dp_bucket_elems = 1 << 16;
  /// Overlap the data-parallel reduction with the pipeline tail: each model
  /// chunk's bucket all-reduces launch from the executor's chunk-backward
  /// hook instead of serializing after the batch. Final weights are
  /// bitwise identical either way (see comm::GradReducer).
  bool overlap_grad_reduce = true;
  /// Optional LR schedule (warmup + cosine); overrides the optimizer's
  /// static learning rate when set.
  std::optional<optim::LrScheduleOptions> lr_schedule;
  /// Committed checkpoints retained under the checkpoint dir (newest N);
  /// older manifests and their step directories are garbage-collected after
  /// each successful commit. Must be >= 1; 2 keeps a fallback if the newest
  /// checkpoint is later damaged.
  int ckpt_keep = 2;
};

/// Per-step telemetry reported by PtdpEngine::last_stats().
struct StepStats {
  std::int64_t step = 0;       ///< 0-indexed global step just completed
  float loss = 0.0f;           ///< global mean loss
  double grad_norm = 0.0;      ///< pre-clip norm (0 when clipping is off)
  float lr = 0.0f;             ///< learning rate applied this step
  double step_seconds = 0.0;   ///< wall-clock time of train_step
  /// Wall time this rank spent blocked in communication waits during the
  /// step (from dist::comm_wait_ns deltas), and its complement. busy ≈
  /// compute: in a lockstep pipeline the straggler shows high busy_seconds
  /// while its victims show high comm_wait_seconds — feed these to
  /// ft::HealthMonitor::record_step.
  double comm_wait_seconds = 0.0;
  double busy_seconds = 0.0;
  std::int64_t tokens = 0;     ///< global tokens consumed (B * s)
  double tokens_per_second = 0.0;
  /// Model FLOPs of the whole iteration per the paper's Eq. 3 (includes the
  /// activation-recompute forward; an analytic count, not instruction-level).
  double model_flops = 0.0;
  /// model_flops / step_seconds: cluster-wide achieved FLOP/s. Divide by
  /// n = p*t*d for the per-GPU-rank figure the paper tabulates.
  double achieved_flops_per_second = 0.0;
  double achieved_flops_per_rank = 0.0;
  /// Fraction of data-parallel grad elements whose reduction overlapped the
  /// pipeline (0 when d == 1 / ZeRO / overlap off).
  double grad_reduce_overlap = 0.0;
  /// Dynamic loss scale in effect after this step (1 when mixed precision
  /// is off) and cumulative steps skipped on grad overflow so far.
  float loss_scale = 1.0f;
  std::int64_t overflow_steps = 0;
  /// MEASURED peak tensor bytes live on this rank's thread during the step
  /// (requested bytes, from the ptdp::mem allocator — the empirical
  /// counterpart of the §3.5 analytic activation-memory model). Per-rank:
  /// compare against analytics::activation_bytes_per_layer * layers/p.
  std::int64_t peak_memory_bytes = 0;
  /// Allocator traffic this step on this rank's thread: total acquires and
  /// how many fell through the pool to the heap. Steady-state pooled steps
  /// should show heap_allocs near zero (the >=10x allocation-count win).
  std::uint64_t mem_acquires = 0;
  std::uint64_t mem_heap_allocs = 0;
  /// Fraction of this step's acquires served from the pool's free lists.
  double mem_pool_hit_rate = 0.0;
};

class PtdpEngine {
 public:
  /// Collective: every world rank constructs its engine simultaneously.
  PtdpEngine(dist::Comm& world, EngineOptions options);

  PtdpEngine(const PtdpEngine&) = delete;
  PtdpEngine& operator=(const PtdpEngine&) = delete;

  /// One training step over this data-parallel rank's m microbatches.
  /// Returns the global mean loss (identical on every rank).
  float train_step(std::span<const model::Microbatch> microbatches);

  /// Validation: forward-only global mean loss over this rank's
  /// microbatches with dropout disabled. No parameter or optimizer state
  /// changes; every rank returns the same value. Each data-parallel
  /// replica should pass its own (equal-count) shard of the eval set.
  float evaluate(std::span<const model::Microbatch> microbatches);

  const dist::ProcessGroups& groups() const { return *groups_; }
  const EngineOptions& options() const { return options_; }
  /// All trainable params of this rank's chunks, deterministic order.
  /// Built once at construction (the chunk walk is not repeated per step).
  const model::ParamRefs& params() const { return params_; }
  const pipeline::PipelineExecutor& executor() const { return *executor_; }
  model::GptStage& chunk(int i) { return *chunks_[static_cast<std::size_t>(i)]; }
  int num_chunks() const { return static_cast<int>(chunks_.size()); }
  optim::Optimizer& optimizer() { return *optimizer_; }
  double last_grad_norm() const { return last_grad_norm_; }
  const StepStats& last_stats() const { return stats_; }
  std::int64_t steps_completed() const { return step_counter_; }

  /// Committed checkpoint I/O. save_checkpoint is collective and two-phase:
  /// every rank writes its shard atomically into <dir>/step-<step>/, then
  /// rank 0 publishes a manifest naming the complete set (see
  /// ckpt/manifest.hpp). A crash at any point leaves the previous committed
  /// checkpoint intact. load_checkpoint resolves the newest *valid*
  /// committed checkpoint under `dir` (rank 0 decides, broadcasts the step)
  /// and restores step_counter_; it CHECK-fails if none survives.
  void save_checkpoint(const std::string& dir, std::uint64_t step);
  std::uint64_t load_checkpoint(const std::string& dir);

  /// Loads a *resharded* checkpoint (produced by ckpt::merge_shards /
  /// ckpt::split_shards from a run under a different layout). Matches
  /// tensors by name, so the source layout's ordering doesn't matter.
  /// The current engine must have p == 1 (resharding targets pipeline-less
  /// layouts); every data-parallel replica loads the same shard.
  std::uint64_t load_resharded(const std::string& dir);

 private:
  ckpt::NamedTensors checkpoint_tensors();

  EngineOptions options_;
  std::unique_ptr<dist::ProcessGroups> groups_;
  std::vector<std::unique_ptr<model::GptStage>> chunks_;
  model::ParamRefs params_;  ///< all chunks' params, cached at construction
  std::unique_ptr<pipeline::PipelineExecutor> executor_;
  std::unique_ptr<comm::GradReducer> grad_reducer_;  ///< null when d == 1 or ZeRO
  std::unique_ptr<optim::Optimizer> optimizer_;
  optim::MixedPrecisionOptimizer* mixed_ = nullptr;  ///< non-owning view
  std::int64_t reported_skipped_ = 0;  ///< overflow steps already counted
  double last_grad_norm_ = 0.0;
  std::optional<optim::LrSchedule> lr_schedule_;
  std::int64_t step_counter_ = 0;
  StepStats stats_;
};

}  // namespace ptdp::core
