#pragma once

// The PTD-P parallelization configuration (§3.1 notation): pipeline size p,
// tensor size t, data-parallel size d, microbatch size b, interleaving
// factor v, plus the schedule and optimization toggles evaluated in §5.

#include <cstdint>
#include <string>

#include "ptdp/model/config.hpp"
#include "ptdp/pipeline/schedule.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::core {

struct ParallelConfig {
  int p = 1;           ///< pipeline-model-parallel size
  int t = 1;           ///< tensor-model-parallel size
  int d = 1;           ///< data-parallel size
  std::int64_t b = 1;  ///< microbatch size
  int v = 1;           ///< model chunks per device (interleaving factor)
  pipeline::ScheduleType schedule = pipeline::ScheduleType::kOneFOneB;
  bool scatter_gather = false;  ///< §4.1 communication optimization
  bool recompute = true;        ///< §3.5 activation recomputation

  /// Total GPUs: n = p·t·d.
  std::int64_t n() const { return static_cast<std::int64_t>(p) * t * d; }

  /// Microbatches per pipeline per batch: m = B / (b·d) (§3.1).
  std::int64_t microbatches(std::int64_t global_batch) const {
    return global_batch / (b * d);
  }

  /// Model-parallel size M = t·p (Takeaway #2).
  std::int64_t model_parallel_size() const {
    return static_cast<std::int64_t>(t) * p;
  }

  pipeline::ScheduleParams schedule_params(std::int64_t global_batch) const {
    return pipeline::ScheduleParams{schedule, p,
                                    static_cast<int>(microbatches(global_batch)), v};
  }

  /// Throws unless the configuration is consistent with the model and batch.
  void validate(const model::GptConfig& m, std::int64_t global_batch) const {
    PTDP_CHECK(p >= 1 && t >= 1 && d >= 1 && b >= 1 && v >= 1);
    PTDP_CHECK_EQ(global_batch % (b * d), 0)
        << "B=" << global_batch << " must divide by b*d=" << b * d;
    PTDP_CHECK_EQ(m.num_layers % (static_cast<std::int64_t>(p) * v), 0)
        << "layers " << m.num_layers << " must divide by p*v=" << p * v;
    PTDP_CHECK_EQ(m.heads % t, 0);
    PTDP_CHECK_EQ(m.vocab % t, 0);
    if (schedule == pipeline::ScheduleType::kInterleaved) {
      PTDP_CHECK_GE(v, 2);
      PTDP_CHECK_EQ(microbatches(global_batch) % p, 0)
          << "interleaving requires m to be a multiple of p (§2.2.2)";
    } else {
      PTDP_CHECK_EQ(v, 1);
    }
  }

  std::string str() const {
    return "(p=" + std::to_string(p) + ", t=" + std::to_string(t) +
           ", d=" + std::to_string(d) + ", b=" + std::to_string(b) +
           ", v=" + std::to_string(v) + ", " + pipeline::schedule_name(schedule) +
           (scatter_gather ? ", s/g" : "") + (recompute ? ", recompute" : "") + ")";
  }
};

}  // namespace ptdp::core
