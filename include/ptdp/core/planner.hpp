#pragma once

// Configuration planner implementing the paper's guiding heuristics:
//   Takeaway #1 — tensor parallelism up to the node size (g for g-GPU
//                 servers), pipeline parallelism across nodes beyond that;
//   Takeaway #2 — model-parallel size M = t·p just large enough that
//                 parameters + optimizer state + activations fit in GPU
//                 memory, data parallelism for the rest of the scale-out;
//   Takeaway #3 — the microbatch size is swept per configuration because
//                 it trades arithmetic intensity against pipeline bubble.
//
// The planner enumerates all valid (p, t, d, b, v) decompositions, filters
// by memory, and ranks with a pluggable throughput model — the bundled
// analytic model uses Eq. (1) plus the §3.2 communication-volume terms;
// ptdp::sim supplies a full cluster-simulation model.

#include <functional>
#include <string>
#include <vector>

#include "ptdp/core/analytics.hpp"
#include "ptdp/core/parallel_config.hpp"

namespace ptdp::core {

struct PlannerInput {
  model::GptConfig model;
  std::int64_t n_gpus = 8;
  int gpus_per_node = 8;
  double gpu_memory_bytes = 80e9;  ///< 80-GB A100
  std::int64_t global_batch = 512;
  std::vector<std::int64_t> microbatch_candidates = {1, 2, 4, 8};
  bool allow_interleaving = true;
  int max_interleave = 2;
};

/// Estimated seconds per batch for a candidate configuration (lower is
/// better). Must be a total order over candidates.
using ThroughputModel = std::function<double(
    const model::GptConfig&, const ParallelConfig&, std::int64_t global_batch)>;

/// Eq. (1)-based estimate plus communication-volume penalties: tensor
/// parallelism over inter-node links is heavily penalized (Takeaway #1
/// falls out of the bandwidth ratio, not a special case).
ThroughputModel analytic_throughput_model(double peak_flops = 312e12,
                                          double nvlink_bw = 300e9,
                                          double ib_bw = 25e9,
                                          int gpus_per_node = 8);

struct Candidate {
  ParallelConfig config;
  double est_batch_seconds = 0.0;
  MemoryEstimate memory;
};

struct Plan {
  Candidate best;
  std::vector<Candidate> feasible;  ///< all memory-feasible candidates, ranked
  std::string rationale;
};

/// Throws CheckError if no configuration fits in memory.
Plan plan_configuration(const PlannerInput& input, const ThroughputModel& model);
inline Plan plan_configuration(const PlannerInput& input) {
  return plan_configuration(input, analytic_throughput_model());
}

}  // namespace ptdp::core
