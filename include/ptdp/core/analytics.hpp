#pragma once

// The paper's analytical models (§2.2, §3, §5.1, Appendix):
//   - pipeline bubble fractions for all schedules,
//   - Eq. (1) estimated batch processing time,
//   - communication-volume cost models per parallel dimension (§3.2, §4.1),
//   - per-GPU memory footprint with/without activation recomputation and
//     the optimal checkpoint count c* (§3.5),
//   - Eq. (4) end-to-end training time.
// Every formula is unit-tested against the paper's own worked numbers.

#include <cstdint>

#include "ptdp/core/parallel_config.hpp"
#include "ptdp/model/config.hpp"

namespace ptdp::core {

// ---- pipeline bubble (§2.2, §3.2, §3.3) ------------------------------------------

/// Bubble fraction t_pb/t_id = (p−1)/(v·m).
double bubble_fraction(const ParallelConfig& cfg, std::int64_t global_batch);

/// Eq. (1): total batch time ignoring communication,
/// (b'/b + p − 1) · (t_f(b) + t_b(b)), with b' = B/d.
double estimated_batch_time(const ParallelConfig& cfg, std::int64_t global_batch,
                            double tf_of_b, double tb_of_b);

// ---- communication volumes (bytes; fp16 activations => 2 bytes/element) ---------

/// Point-to-point bytes between consecutive pipeline stages per microbatch
/// per direction: 2·b·s·h, divided by t under scatter/gather (§4.1).
double pipeline_p2p_bytes_per_microbatch(const model::GptConfig& m,
                                         const ParallelConfig& cfg);

/// Total pipeline p2p bytes per device per batch per direction. The
/// interleaved schedule communicates v× more (§2.2.2): each of the v chunk
/// boundaries on a device sends every microbatch.
double pipeline_p2p_bytes_per_batch(const model::GptConfig& m,
                                    const ParallelConfig& cfg,
                                    std::int64_t global_batch);

/// Tensor-parallel all-reduce bytes per device per microbatch:
/// l_stage · 8·b·s·h·(t−1)/t elements (§3.2), ×2 bytes.
double tensor_parallel_bytes_per_microbatch(const model::GptConfig& m,
                                            const ParallelConfig& cfg);

/// Data-parallel grad all-reduce bytes per device per batch:
/// ring all-reduce moves 2·(d−1)/d · |grads| bytes (fp32 grads).
double data_parallel_bytes_per_batch(const model::GptConfig& m,
                                     const ParallelConfig& cfg);

// ---- memory footprint (§3.5 and Takeaway #2) -------------------------------------

struct MemoryEstimate {
  double param_bytes = 0;      ///< fp16 weights
  double optimizer_bytes = 0;  ///< fp32 master + Adam moments + fp32 grads
  double activation_bytes = 0; ///< stashed activations at schedule peak
  double total() const { return param_bytes + optimizer_bytes + activation_bytes; }
  bool fits(double capacity_bytes) const { return total() <= capacity_bytes; }
};

/// Parameters resident per GPU (the model-parallel shard).
double params_per_gpu(const model::GptConfig& m, const ParallelConfig& cfg);

/// Activation bytes stashed per layer per microbatch (fp16):
/// full: s·b·h·(34 + 5·a·s/h);  with recomputation: the 2·s·b·h input only.
double activation_bytes_per_layer(const model::GptConfig& m, std::int64_t b,
                                  bool recompute);

/// Peak per-GPU footprint for the schedule's in-flight microbatch count.
MemoryEstimate memory_per_gpu(const model::GptConfig& m, const ParallelConfig& cfg,
                              std::int64_t global_batch);

/// §3.5: total activation memory with c checkpoints per l-layer stage:
/// c·A_input + (l/c)·A_intermediate.
double checkpoint_memory(double c, double l, double a_input, double a_intermediate);

/// §3.5: minimizer c* = sqrt(l · A_intermediate / A_input).
double optimal_checkpoints(double l, double a_input, double a_intermediate);

// ---- FLOPs and end-to-end time (§5.1, Appendix) -----------------------------------

/// Eq. (3) FLOPs per iteration (with activation recomputation).
double flops_per_iteration(const model::GptConfig& m, std::int64_t global_batch);

/// Per-transformer-layer forward FLOPs, 24·B·s·h² + 4·B·s²·h (Appendix).
double layer_forward_flops(const model::GptConfig& m, std::int64_t batch);

/// Eq. (4): end-to-end training time ≈ 8·T·P / (n·X), in seconds.
/// T = tokens, P = parameters, n = GPUs, X = per-GPU FLOP/s.
double training_time_seconds(double tokens, double params, double n_gpus,
                             double flops_per_gpu);
double training_time_days(double tokens, double params, double n_gpus,
                          double flops_per_gpu);

}  // namespace ptdp::core
