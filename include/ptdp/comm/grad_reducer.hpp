#pragma once

// GradReducer: the data-parallel gradient reduction plane, extracted from
// the engine's former inline loop so the reduction can overlap the tail of
// the pipeline (DESIGN.md §9).
//
// Grads are reduced per model chunk: consecutive params of one chunk are
// flattened into buckets of up to bucket_elems elements and each bucket is
// ring-all-reduced then scaled by 1/d (DDP-style: fewer, larger messages).
// With overlap on, the executor's chunk-backward hook calls
// on_chunk_grads_ready(chunk) the moment that chunk's last microbatch
// backward finishes, so its reduction runs while the remaining pipeline ops
// are still in flight. finish() reduces whatever is left (everything, when
// overlap is off) and resets for the next batch.
//
// Bucket layout is a pure function of (chunk params, bucket_elems) — never
// of when a chunk is reduced — so overlap on/off produce bitwise-identical
// weights.
//
// Hook-ordering invariants:
//  - Data-parallel peers hold the same pipeline coordinate and run the same
//    schedule, so hooks fire in the same order on every member of the data
//    group and the per-chunk collectives match up without a barrier.
//  - Chunks marked `defer` (tied-embedding holders when p > 1) are never
//    reduced from the hook: their grads are only final after the
//    embedding-group all-reduce, which itself must wait for the pipeline
//    flush (a first-stage rank's embedding grads finalize on its last
//    scheduled op). The engine runs the embedding sync after run_batch and
//    then finish() picks these chunks up — preserving the serial
//    sum-then-average order bitwise.

#include <cstdint>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/mem/arena.hpp"
#include "ptdp/model/param.hpp"
#include "ptdp/tensor/dtype.hpp"

namespace ptdp::comm {

struct GradReducerOptions {
  /// Max elements per all-reduce bucket; <= 0 reduces one param at a time.
  std::int64_t bucket_elems = 1 << 16;
  /// Reduce each chunk from the executor hook instead of all at finish().
  bool overlap = true;
  /// Wire dtype of the reduction (DESIGN.md §13). kF32 (default): ring
  /// all-reduce in full precision — grads are born f32 from the
  /// fp32-accumulate GEMMs, so nothing is widened or rounded. kBf16:
  /// narrow the bucket to bf16, ring ALL-GATHER the d peers' payloads
  /// (fewer wire bytes than an f32 all-reduce once d >= 2), then sum the
  /// widened contributions in f32 in fixed rank order — deterministic and
  /// identical on every rank, at the cost of one bf16 round per grad.
  tensor::DType comm_dtype = tensor::DType::kF32;
};

class GradReducer {
 public:
  /// `chunk_params[c]` — the trainable params of model chunk c, in the
  /// chunk's deterministic order. `defer[c]` (optional, default none) marks
  /// chunks that must wait for finish() even with overlap on.
  GradReducer(std::vector<model::ParamRefs> chunk_params, dist::Comm data,
              GradReducerOptions options, std::vector<bool> defer = {});

  GradReducer(const GradReducer&) = delete;
  GradReducer& operator=(const GradReducer&) = delete;

  /// Executor hook entry: chunk c's parameter grads are final for this
  /// batch. Reduces the chunk immediately when overlap is on and the chunk
  /// is not deferred; a no-op otherwise (finish() will cover it).
  void on_chunk_grads_ready(int chunk);

  /// Reduces every chunk not already reduced this batch, then resets the
  /// per-batch state. Call once per train step, after any grad fix-ups that
  /// must precede data-parallel averaging (the embedding-group sync).
  void finish();

  /// False on a data group of size 1 — every call is then a no-op.
  bool enabled() const { return data_.size() > 1; }
  int num_chunks() const { return static_cast<int>(chunk_params_.size()); }
  const GradReducerOptions& options() const { return options_; }
  /// Grad elements pushed through all-reduce over this reducer's lifetime.
  std::uint64_t elems_reduced() const { return elems_reduced_; }
  /// Of those, elements reduced from the executor hook — i.e. while the
  /// pipeline was still working, overlapping communication with compute.
  std::uint64_t elems_overlapped() const { return elems_overlapped_; }
  /// Fraction of reduced elements that overlapped pipeline compute (0 when
  /// nothing has been reduced; 0 with overlap off or everything deferred).
  double overlap_ratio() const {
    return elems_reduced_ > 0 ? static_cast<double>(elems_overlapped_) /
                                    static_cast<double>(elems_reduced_)
                              : 0.0;
  }

 private:
  void reduce_chunk(std::size_t c, bool overlapped);
  /// All-reduce-average `data` in place over the data group, in the
  /// configured wire dtype (see GradReducerOptions::comm_dtype).
  void reduce_span(std::span<float> data);

  std::vector<model::ParamRefs> chunk_params_;
  dist::Comm data_;
  GradReducerOptions options_;
  std::vector<bool> defer_;
  std::vector<bool> reduced_;  ///< per-batch: chunk already reduced
  /// Staging slots in the planned arena (DESIGN.md §12/§14): kBucket holds
  /// the flattened f32 bucket, kWire16/kGathered16 the bf16 wire payloads
  /// (comm_dtype == kBf16 only). The arena blocks come from the pooled
  /// allocator and are reused across chunks and iterations, so the
  /// steady-state reduction path makes zero heap allocations AND the
  /// staging bytes show up in the pool's live/peak accounting (the
  /// mem.rank<r>.* gauges) — unlike the std::vector staging this replaces.
  enum Slot : std::size_t { kBucket = 0, kWire16 = 1, kGathered16 = 2 };
  mem::Arena arena_{3};
  /// Largest bucket any chunk produces — a pure function of (chunk params,
  /// bucket_elems), computed once at construction: the bucket *plan*.
  std::size_t max_bucket_elems_ = 0;
  std::vector<model::Param*> members_;
  std::uint64_t elems_reduced_ = 0;
  std::uint64_t elems_overlapped_ = 0;
};

}  // namespace ptdp::comm
