#pragma once

// ptdp::obs metrics registry (DESIGN.md §11): counters, gauges, and
// histograms keyed by name, plus a dedicated per-(rank, communicator) comm
// volume table that dist::Comm feeds from its send/recv hot path.
//
// Hot-path contract:
//  - Named metrics return stable references; callers look a metric up once
//    and then add/observe through atomics (no lock after creation).
//  - The comm volume table is written only by the owning rank thread (each
//    (comm_id, rank) slot belongs to one rank), with a thread-local slot
//    cache so the steady state is a plain field increment — no atomics, no
//    lock. Readers (reports) run after World::run has joined its threads.
//  - Everything is gated on obs::metrics_on(): a disabled registry costs
//    one relaxed atomic load per site.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ptdp/obs/trace.hpp"

namespace ptdp::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket above the last bound. Tracks count/sum/max for means.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const auto n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Upper bound of the bucket containing quantile q in [0, 1] (inf for
  /// the overflow bucket).
  double quantile_bound(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default latency bounds (milliseconds), log-spaced 0.01 ms .. 10 s.
std::vector<double> default_ms_bounds();

// ---- per-(rank, group) communication volumes --------------------------------------

struct CommGroupStats {
  std::uint64_t p2p_sends = 0;
  std::uint64_t p2p_send_bytes = 0;
  std::uint64_t p2p_recvs = 0;
  std::uint64_t p2p_recv_bytes = 0;
  std::uint64_t collective_ops = 0;  ///< collective *calls* (not ring steps)
  std::uint64_t coll_send_bytes = 0; ///< transport bytes under collectives
  std::uint64_t coll_recv_bytes = 0;
};

/// One row of the per-rank comm report.
struct CommReportRow {
  int rank = -1;
  std::uint64_t comm_id = 0;
  std::string group;  ///< registered name, or hex comm id when unnamed
  CommGroupStats stats;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create; returned references stay valid until reset().
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  // Comm volume hot path (called from dist::Comm; no-ops when metrics are
  // off — callers gate on obs::metrics_on() before computing arguments).
  void on_comm_send(std::uint64_t comm_id, std::size_t bytes, bool collective);
  void on_comm_recv(std::uint64_t comm_id, std::size_t bytes, bool collective);
  void on_comm_collective(std::uint64_t comm_id);

  /// Names a communicator id for reports ("tensor", "pipeline", ...).
  /// Idempotent; every member of a group registers the same mapping.
  void name_comm_group(std::uint64_t comm_id, const std::string& name);
  /// Registered name for a comm id ("" when unnamed).
  std::string comm_group_name(std::uint64_t comm_id) const;

  /// Per-(rank, group) volume rows, rank-major. Aggregate of everything
  /// recorded since the last reset(); call quiesced.
  std::vector<CommReportRow> comm_report() const;
  /// Sum of `stats` over all rows matching the group name, one per rank.
  CommGroupStats group_total(const std::string& group, int rank) const;

  /// Drops every metric, comm slot, and name registration.
  void reset();

  /// JSON dump: {"schema":"ptdp-metrics-v1","counters":{...},"gauges":{...},
  /// "histograms":{...},"comm":[...]}.
  std::string json() const;
  bool write_json(const std::string& path) const;

 private:
  struct CommSlot {
    CommGroupStats stats;  ///< plain fields: single-writer (the rank thread)
  };

  CommSlot* comm_slot(std::uint64_t comm_id);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<CommSlot>> comm_slots_;
  std::map<std::uint64_t, std::string> comm_names_;
  std::atomic<std::uint64_t> comm_epoch_{0};  ///< bumped by reset()
};

}  // namespace ptdp::obs
