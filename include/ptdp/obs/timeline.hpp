#pragma once

// Timeline analyzer (DESIGN.md §11): reconstructs the per-stage pipeline
// schedule from a trace and measures what the paper only states
// analytically — bubble fraction vs (p−1)/(v·m), the critical path through
// the schedule, per-rank communication volume (§4.1 cross-check), and
// straggler ranks.
//
// Two views of the same trace:
//  - Wall view: raw steady-clock window vs per-rank busy time. Faithful on
//    hardware where each rank owns a device; on an oversubscribed CPU test
//    host it mostly measures the OS scheduler.
//  - Replay view (the default headline number): take each op's *measured*
//    duration (thread-CPU by default, so descheduling doesn't pollute it),
//    then re-schedule the traced ops under the pipeline dependency rules
//    (Fwd(mb,vs) after Fwd(mb,vs−1); Bwd(mb,vs) after Bwd(mb,vs+1), or
//    after Fwd(mb,vs) at the last virtual stage; each rank serial in traced
//    order). This is simulate_makespan with measured per-op times instead
//    of a cost model — exactly the MegaScale-style "reconstruct the
//    timeline from per-rank events" step — and is cross-checked against
//    pipeline::simulate_makespan and the analytic bubble in obs_timeline_test.
//
// Input contract: compute spans named "fwd"/"bwd" (Cat::kCompute) carrying
// args {mb, vs, stage, pipe, batch} as emitted by pipeline::PipelineExecutor;
// p2p spans "p2p_send" with {bytes} and "recv_wait". Multiple batches and
// multiple pipeline groups (d·t > 1) are segmented by (pipe, batch).

#include <cstdint>
#include <string>
#include <vector>

#include "ptdp/obs/trace.hpp"

namespace ptdp::obs {

struct TimelineOptions {
  /// Replay with thread-CPU durations (true) or wall durations (false).
  bool use_cpu_durations = true;
  /// A rank is a straggler when its busy time exceeds the across-rank
  /// median by this factor.
  double straggler_factor = 1.2;
};

/// Per-(world rank) aggregate over the analyzed window.
struct RankTimeline {
  int rank = -1;
  int ops = 0;                ///< fwd + bwd compute ops
  double busy_ns = 0;         ///< Σ compute durations (per TimelineOptions)
  double wall_busy_ns = 0;    ///< Σ compute wall durations
  double recv_wait_ns = 0;    ///< Σ "recv_wait" wall durations
  std::uint64_t p2p_bytes_sent = 0;  ///< Σ "p2p_send" bytes args
  std::uint64_t p2p_messages = 0;
};

/// One replayed batch of one pipeline group.
struct BatchTimeline {
  std::int64_t pipe = 0;     ///< pipeline-group id (low bits of comm id)
  std::int64_t batch = 0;    ///< executor batch sequence number
  int p = 0;                 ///< pipeline ranks observed
  int m = 0;                 ///< microbatches observed
  int num_virtual_stages = 0;
  double makespan_ns = 0;    ///< replayed makespan
  double ideal_ns = 0;       ///< mean per-rank busy time (t_id)
  double bubble_fraction = 0;  ///< (makespan − ideal) / ideal
  double critical_path_ns = 0;
  std::vector<std::string> critical_path;  ///< "stage2:bwd(mb=3,vs=1)" chain
};

struct TimelineReport {
  std::vector<BatchTimeline> batches;
  /// Median of the per-batch replayed bubble fractions (the headline).
  double bubble_fraction = 0;
  /// Analytic (p−1)/(v·m) from the observed p, m, v — for side-by-side.
  double analytic_bubble_fraction = 0;
  /// Raw wall-clock view over the whole window (all batches).
  double wall_window_ns = 0;
  double wall_bubble_fraction = 0;
  std::vector<RankTimeline> ranks;
  std::vector<int> stragglers;  ///< world ranks over the straggler factor
};

/// Analyzes compute/p2p events (see input contract above). Events from
/// forward-only/eval traffic are ignored. Returns a default report when the
/// trace holds no pipeline compute spans.
TimelineReport analyze_events(const std::vector<TraceEvent>& events,
                              const TimelineOptions& options = {});

/// Convenience: snapshot + analyze.
TimelineReport analyze(const Tracer& tracer, const TimelineOptions& options = {});

/// Human-readable multi-line report (what train_main prints).
std::string format_report(const TimelineReport& report);

}  // namespace ptdp::obs
