#pragma once

// ptdp::obs event tracer (DESIGN.md §11): a lock-light per-rank span/instant
// recorder for the functional runtime. MegaScale-style motivation: at scale
// the parallelization is only as debuggable as its observability plane, so
// the runtime itself must be able to answer "where did the step time go"
// per rank, not just predict it in the simulator.
//
// Design:
//  - Each recording thread owns a fixed-capacity ring of TraceEvent records
//    (oldest events are overwritten; the drop count is reported). Pushes
//    take only the owning buffer's uncontended mutex — no global lock, no
//    allocation on the hot path after the buffer exists.
//  - Spans are RAII (obs::Span): constructed armed only when the tracer is
//    in kFull mode, so a disabled tracer costs one relaxed atomic load per
//    site. Every span records both wall duration (steady clock) and thread
//    CPU duration — on an oversubscribed test host the wall clock measures
//    the scheduler, the CPU clock measures the work, and the timeline
//    analyzer can replay with either.
//  - Export is Chrome trace_event JSON ("X"/"i"/"M" phases, ts in µs), so a
//    whole-world run opens directly in Perfetto / chrome://tracing. One
//    process, tid = world rank.
//
// Modes: kOff (nothing recorded), kMetricsOnly (metrics registry counters
// update, no spans), kFull (spans + metrics). The three are exactly what
// bench/micro_trace_overhead.cpp sweeps.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ptdp/runtime/stopwatch.hpp"

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define PTDP_OBS_HAS_THREAD_CPUTIME 1
#endif

namespace ptdp::obs {

enum class TraceMode : int { kOff = 0, kMetricsOnly = 1, kFull = 2 };

/// Event category (maps to the Chrome "cat" field).
enum class Cat : std::uint8_t {
  kCompute = 0,     ///< stage forward/backward work
  kP2p = 1,         ///< pipeline boundary sends / receive waits
  kCollective = 2,  ///< all-reduce / all-gather / barrier traffic
  kCkpt = 3,        ///< checkpoint write / commit
  kEngine = 4,      ///< engine-level phases (train_step, optimizer, ...)
  kRuntime = 5,     ///< everything else (world lifecycle, faults)
};
const char* cat_name(Cat cat);

/// Thread CPU time of the calling thread in ns (0 where unsupported).
inline std::int64_t thread_cpu_now_ns() {
#ifdef PTDP_OBS_HAS_THREAD_CPUTIME
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return 0;
#endif
}

/// One recorded event. `name` and arg keys must have static storage
/// duration (string literals) — the ring stores raw pointers.
struct TraceEvent {
  struct Arg {
    const char* key = nullptr;  ///< nullptr = slot unused
    std::int64_t value = 0;
  };
  static constexpr int kMaxArgs = 5;

  std::int64_t ts_ns = 0;     ///< steady-clock start timestamp
  std::int64_t wall_ns = -1;  ///< span wall duration; -1 = instant event
  std::int64_t cpu_ns = -1;   ///< span thread-CPU duration; -1 = unknown
  const char* name = nullptr;
  Cat cat = Cat::kRuntime;
  std::int32_t rank = -1;  ///< bound world rank of the emitting thread
  std::array<Arg, kMaxArgs> args{};

  /// Value of arg `key`, or `fallback` when absent.
  std::int64_t arg(const char* key, std::int64_t fallback = -1) const;
};

// ---- rank binding ----------------------------------------------------------------
// World::run binds each rank thread to its world rank so events and metrics
// can be attributed without threading a handle through every layer.
// Unbound threads (main, helper pools) record as rank -1.

namespace detail {
inline thread_local int t_bound_rank = -1;
inline std::atomic<int> g_mode{static_cast<int>(TraceMode::kOff)};
}  // namespace detail

inline void bind_rank(int world_rank) { detail::t_bound_rank = world_rank; }
inline int bound_rank() { return detail::t_bound_rank; }

/// True when spans should be recorded (kFull).
inline bool spans_on() {
  return detail::g_mode.load(std::memory_order_relaxed) ==
         static_cast<int>(TraceMode::kFull);
}
/// True when metrics should be updated (kMetricsOnly or kFull).
inline bool metrics_on() {
  return detail::g_mode.load(std::memory_order_relaxed) >=
         static_cast<int>(TraceMode::kMetricsOnly);
}

// ---- the tracer ------------------------------------------------------------------

class Tracer {
 public:
  /// Process-wide instance (the thread world is one process).
  static Tracer& instance();

  void set_mode(TraceMode mode) {
    detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  }
  TraceMode mode() const {
    return static_cast<TraceMode>(detail::g_mode.load(std::memory_order_relaxed));
  }

  /// Per-thread ring capacity (events). Applies to buffers created after
  /// the call; default 1<<15.
  void set_thread_capacity(std::size_t events);

  /// Records one event into the calling thread's ring (creating it on
  /// first use). Called by Span/instant — rarely directly.
  void emit(const TraceEvent& event);

  /// Drops all recorded events and forgets per-thread buffers. Threads
  /// re-register on their next emit.
  void reset();

  /// Merged snapshot of every thread's surviving events, sorted by ts.
  /// Call quiesced (after World::run has joined) for a consistent cut.
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t events_recorded() const;
  /// Events overwritten because a ring wrapped.
  std::uint64_t events_dropped() const;

  /// Chrome trace_event JSON of the current snapshot (schema:
  /// ptdp-trace-v1; see DESIGN.md §11 and tools/validate_trace.py).
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`. Returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t cap) : ring(cap) {}
    std::mutex mu;
    std::vector<TraceEvent> ring;
    std::uint64_t pushed = 0;  ///< total, including overwritten
  };

  ThreadBuffer* thread_buffer();

  std::atomic<std::size_t> capacity_{std::size_t{1} << 15};
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped by reset()
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

// ---- recording convenience --------------------------------------------------------

/// RAII span: measures [construction, destruction) and emits one complete
/// event. Near-zero cost when the tracer is not in kFull mode.
class Span {
 public:
  using Arg = TraceEvent::Arg;

  Span(const char* name, Cat cat, std::initializer_list<Arg> args = {}) {
    if (!spans_on()) return;
    armed_ = true;
    ev_.name = name;
    ev_.cat = cat;
    ev_.rank = bound_rank();
    int i = 0;
    for (const Arg& a : args) {
      if (i >= TraceEvent::kMaxArgs) break;
      ev_.args[static_cast<std::size_t>(i++)] = a;
    }
    cpu_start_ = thread_cpu_now_ns();
    ev_.ts_ns = steady_now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/overwrites an arg after construction (e.g. a byte count only
  /// known at the end of the measured region). No-op when disarmed.
  void arg(const char* key, std::int64_t value);

  ~Span() {
    if (!armed_) return;
    ev_.wall_ns = steady_now_ns() - ev_.ts_ns;
    ev_.cpu_ns = thread_cpu_now_ns() - cpu_start_;
    Tracer::instance().emit(ev_);
  }

 private:
  bool armed_ = false;
  std::int64_t cpu_start_ = 0;
  TraceEvent ev_;
};

/// Records an instant event (zero duration).
void instant(const char* name, Cat cat,
             std::initializer_list<TraceEvent::Arg> args = {});

}  // namespace ptdp::obs
