#pragma once

// ZeRO-style sharded data parallelism (the paper's §5.2 baseline).
//
// Semantics of a ZeRO step on d data-parallel replicas:
//   1. grads are reduce-scattered so each rank holds the (averaged) grad of
//      its 1/d shard of the flattened parameter space (ZeRO-2),
//   2. the optimizer state (Adam moments, fp32 masters) exists only for
//      that shard (ZeRO-1), the shard is updated locally,
//   3. updated parameters are all-gathered back to every replica —
//      the same gather-before-use communication pattern ZeRO-3 performs
//      (here once per step at whole-model granularity; the per-layer
//      prefetch variant changes *when* bytes move, not the semantics, and
//      its cost is modeled in ptdp::sim's ZeRO-3 model).
//
// The result of a step is bit-for-bit the plain data-parallel step, which
// tests verify — exactly the property ZeRO guarantees.

#include <memory>

#include "ptdp/dist/comm.hpp"
#include "ptdp/optim/optimizer.hpp"

namespace ptdp::zero {

struct ZeroAdamOptions {
  optim::AdamOptions adam;
};

class ZeroShardedAdam final : public optim::Optimizer {
 public:
  /// `dp` — the data-parallel group over which state is sharded.
  /// Grads must NOT have been all-reduced already; this optimizer owns the
  /// data-parallel reduction (reduce-scatter).
  ZeroShardedAdam(model::ParamRefs params, dist::Comm dp, ZeroAdamOptions options);

  void step() override;
  optim::NamedState state_tensors() override;
  const std::vector<model::Param*>& params() const override { return params_; }
  void set_lr(float lr) override { options_.adam.lr = lr; }
  float lr() const override { return options_.adam.lr; }

  /// Elements of the flattened parameter space this rank owns.
  std::int64_t shard_elems() const { return shard_; }
  /// Bytes of optimizer state held locally (the ZeRO memory win: ~1/d of
  /// what a replicated Adam would hold).
  std::int64_t local_state_bytes() const;

 private:
  model::ParamRefs params_;
  dist::Comm dp_;
  ZeroAdamOptions options_;
  std::int64_t total_elems_ = 0;  ///< padded to a multiple of d
  std::int64_t shard_ = 0;
  tensor::Tensor master_shard_;  ///< fp32 master params, this shard only
  tensor::Tensor m_shard_, v_shard_;
  std::int64_t step_count_ = 0;

  void flatten_params(tensor::Tensor& flat) const;
  void unflatten_params(const tensor::Tensor& flat);
  void flatten_grads(tensor::Tensor& flat) const;
};

}  // namespace ptdp::zero
