#pragma once

// Vocab-parallel word embedding + replicated learned position embedding,
// with embedding dropout. The vocabulary is sharded across tensor ranks
// (rows [r·V/t, (r+1)·V/t)); each rank looks up the tokens it owns and the
// partial embeddings are summed with an all-reduce (operator g), exactly as
// in Megatron-LM.

#include <span>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/model/param.hpp"
#include "ptdp/model/rng_sites.hpp"

namespace ptdp::model {

struct EmbeddingCache {
  std::vector<std::int32_t> tokens;  ///< [s*b], sequence-major
  tensor::Tensor drop_mask;          ///< undefined when dropout == 0
  std::int64_t s = 0, b = 0;
};

class VocabParallelEmbedding {
 public:
  VocabParallelEmbedding(const GptConfig& config, dist::Comm tp);

  /// tokens: [s*b] sequence-major ids. Returns [s, b, h].
  tensor::Tensor forward(std::span<const std::int32_t> tokens, std::int64_t s,
                         std::int64_t b, EmbeddingCache& cache, std::uint64_t mb_tag);

  /// dy: [s, b, h]. Accumulates word/position grads; there is no input grad.
  void backward(const tensor::Tensor& dy, const EmbeddingCache& cache);

  /// Decode-path lookup: embeds tokens[i] at explicit global position
  /// positions[i] (each < config.seq). Returns [n, h]; per-row arithmetic
  /// is identical to forward()'s row at that position. Requires dropout 0;
  /// nothing is cached (inference only).
  tensor::Tensor forward_at(std::span<const std::int32_t> tokens,
                            std::span<const std::int32_t> positions);

  Param& word() { return word_; }
  Param& position() { return position_; }
  std::int64_t vocab_begin() const { return vocab_begin_; }
  std::int64_t vocab_per_rank() const { return vocab_per_rank_; }
  void collect_params(ParamRefs& out);
  /// Eval-mode switch: 0 disables embedding dropout.
  void set_dropout(float p) { config_.dropout = p; }

 private:
  GptConfig config_;
  dist::Comm tp_;
  std::int64_t vocab_per_rank_, vocab_begin_;
  Param word_;      ///< [V/t, h] shard of the tied embedding matrix
  Param position_;  ///< [seq, h], replicated
};

}  // namespace ptdp::model
