#pragma once

// GptStage: the slice of a GPT model one pipeline stage (or interleaved
// model chunk) owns — optionally the input embedding, a contiguous range of
// global transformer layers, and optionally the final-LayerNorm + tied-
// embedding head. A full (serial) model is simply a stage with everything.
//
// Forward/backward are functional over StageCache so a pipeline schedule
// can keep several microbatches in flight, and so activation recomputation
// (§3.5) can rebuild per-layer caches from the stashed layer inputs.

#include <memory>
#include <optional>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/embedding.hpp"
#include "ptdp/model/head.hpp"
#include "ptdp/model/transformer_layer.hpp"
#include "ptdp/quant/quant.hpp"

namespace ptdp::graph {
struct QuantPolicy;
}

namespace ptdp::model {

/// One microbatch of token data. `tag` must be unique per microbatch within
/// a batch (it keys dropout masks) and identical across pipeline stages.
struct Microbatch {
  std::vector<std::int32_t> tokens;   ///< [s*b], sequence-major inputs
  std::vector<std::int32_t> targets;  ///< [s*b], labels (next-token for
                                      ///< causal LM, originals for MLM)
  std::vector<float> loss_weights;    ///< [s*b] per-token loss weights, or
                                      ///< empty for the uniform causal-LM loss
  std::int64_t s = 0, b = 0;
  std::uint64_t tag = 0;
};

struct StageSpec {
  bool has_embedding = false;
  bool has_head = false;
  std::int64_t layer_begin = 0;  ///< global layer index, inclusive
  std::int64_t layer_end = 0;    ///< global layer index, exclusive
  bool recompute = false;        ///< activation recomputation per layer
};

struct StageCache {
  EmbeddingCache embedding;
  std::vector<LayerCache> layers;
  HeadCache head;
};

struct StageForward {
  tensor::Tensor activation;  ///< [s, b, h]; undefined when the stage has the head
  float loss = 0.0f;          ///< defined when the stage has the head
};

/// What quantize_for_serving did: how many linears went quantized, and the
/// weight footprint before (f32-equivalent) and after. bytes_f32 / bytes is
/// ~4x for int8, ~7x for q4 (per-group scale + zero-point overhead).
struct QuantizeReport {
  int linears = 0;
  std::int64_t weight_bytes_f32 = 0;
  std::int64_t weight_bytes = 0;
};

class GptStage {
 public:
  GptStage(const GptConfig& config, const dist::Comm& tp, StageSpec spec);

  GptStage(const GptStage&) = delete;
  GptStage& operator=(const GptStage&) = delete;

  /// `input_act` is the activation received from the previous stage
  /// ([s, b, h]); ignored (may be undefined) when this stage embeds.
  StageForward forward(const tensor::Tensor& input_act, const Microbatch& mb,
                       StageCache& cache);

  /// For a head stage pass `loss_scale` (dy ignored/undefined); otherwise
  /// pass the activation grad received from the next stage. Returns the
  /// input-activation grad to send upstream (undefined for an embedding
  /// stage). Parameter grads accumulate.
  tensor::Tensor backward(const tensor::Tensor& dy, float loss_scale,
                          StageCache& cache, const Microbatch& mb);

  const StageSpec& spec() const { return spec_; }
  const GptConfig& config() const { return config_; }

  /// All trainable parameters of this stage, deterministic order.
  ParamRefs params();
  void zero_grads();

  /// The word-embedding Param this stage holds (input side or tied head
  /// copy), or nullptr. Used for the embedding-group grad all-reduce.
  Param* word_embedding_param();

  /// Inference path: full-vocabulary logits [s*b, V] for `tokens`
  /// ([s*b] sequence-major). Requires a whole-model stage (embedding +
  /// head) and dropout disabled; see model/generate.hpp for the sampling
  /// loop built on top.
  tensor::Tensor logits(std::span<const std::int32_t> tokens, std::int64_t s,
                        std::int64_t b);

  /// Incremental inference over a KV cache: `tokens` ([Σ len]) holds the
  /// new tokens of every sequence in `seqs`, concatenated in order. Embeds
  /// them at their global positions, runs every layer's KV-cached decode
  /// body, and returns full-vocabulary logits [seqs.size(), V] for the
  /// LAST new position of each sequence — bitwise-identical to the last
  /// row of logits() on that sequence's full prefix (DESIGN.md §16).
  /// Requires a whole-model stage (layer_begin == 0) and dropout == 0.
  tensor::Tensor decode(std::span<const DecodeSeq> seqs,
                        std::span<const std::int32_t> tokens, KvStore& kv);

  /// Per-tensor-rank KV geometry (what a KvStore row holds): local head
  /// count and head dimension of this rank's attention shard.
  std::int64_t kv_heads_local() const;
  std::int64_t kv_head_dim() const;

  /// Eval-mode switch: sets the dropout probability on every submodule
  /// (0 for evaluation/generation, the configured value for training).
  void set_dropout(float p);

  /// Serving-only weight quantization (DESIGN.md §17). Builds one inference
  /// plan for this config, runs the graph-planner kernel-selection pass, and
  /// applies its per-slot decision to every layer's linear modules
  /// (quantize-once at load; with policy.drop_f32 the f32 masters are
  /// released). Requires dropout == 0. Records quant.* metrics when the
  /// registry is on. Training stages must never call this — backward through
  /// a quantized linear CHECK-fails.
  QuantizeReport quantize_for_serving(const graph::QuantPolicy& policy);

  /// Name -> packed-weight views over every quantized linear, in
  /// deterministic (layer, slot) order — the unit of quantized
  /// checkpointing and weight distribution (ptdp::quant).
  std::vector<quant::NamedQuant> quantized_weights();

 private:
  GptConfig config_;
  StageSpec spec_;
  std::optional<VocabParallelEmbedding> embedding_;
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
  std::optional<GptHead> head_;
};

}  // namespace ptdp::model
