#pragma once

// Tensor-parallel linear layers (Fig. 5 of the paper).
//
// ColumnParallelLinear splits the weight along output columns; its input is
// replicated across tensor-parallel ranks, and the conjugate operator f
// (identity forward, all-reduce backward) lives in its backward pass.
// RowParallelLinear splits along input rows; its conjugate g (all-reduce
// forward, identity backward) lives in its forward pass. Either collapses
// to a plain linear layer when the communicator has size 1.

#include <string>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/param.hpp"
#include "ptdp/quant/quant.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::model {

/// Activations a linear layer must stash for its backward pass.
struct LinearCache {
  tensor::Tensor input;  ///< forward input (replicated or local shard)
};

class ColumnParallelLinear {
 public:
  /// Weight is logically [in, out]; this rank holds columns
  /// [rank*out/t, (rank+1)*out/t). `skip_bias_add` leaves the (sharded)
  /// bias un-applied so a fused kernel can consume it. `dtype` is the
  /// weight's STORAGE dtype: init draws in f32 (identical bits regardless
  /// of dtype) then rounds, gradients and the bias stay f32 (DESIGN.md §13).
  ColumnParallelLinear(std::string name, std::int64_t in, std::int64_t out,
                       dist::Comm tp, float stddev, std::uint64_t seed,
                       bool skip_bias_add = false,
                       tensor::DType dtype = tensor::DType::kF32);

  /// x: [n, in] replicated. Returns [n, out/t] (bias applied unless skipped).
  tensor::Tensor forward(const tensor::Tensor& x, LinearCache& cache);

  /// dy: [n, out/t]. Accumulates weight/bias grads; returns dx [n, in],
  /// all-reduced across the tensor group (operator f backward).
  tensor::Tensor backward(const tensor::Tensor& dy, const LinearCache& cache);

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::int64_t out_per_rank() const { return out_per_rank_; }
  void collect_params(ParamRefs& out);

  /// Serving-only: repack the weight shard into blockwise-quantized form
  /// (DESIGN.md §17). Forward then dispatches the quantized GEMM; backward
  /// CHECK-fails (quantized weights have no gradient). `drop_f32` releases
  /// the f32/bf16 master storage — training worlds must keep it.
  void quantize_weight(tensor::QuantKind kind, std::int64_t group_size,
                       bool drop_f32);
  bool quantized() const { return qweight_.defined(); }
  quant::QuantizedWeight& quantized_weight() { return qweight_; }
  const quant::QuantizedWeight& quantized_weight() const { return qweight_; }
  const std::string& weight_name() const { return weight_.name; }

 private:
  std::string name_;
  dist::Comm tp_;
  std::int64_t in_, out_, out_per_rank_;
  bool skip_bias_add_;
  Param weight_;  ///< [in, out/t]
  Param bias_;    ///< [out/t]
  quant::QuantizedWeight qweight_;  ///< serving-only packed form of weight_
};

class RowParallelLinear {
 public:
  /// Weight is logically [in, out]; this rank holds rows
  /// [rank*in/t, (rank+1)*in/t). The input is expected to already be
  /// parallel (the output of a ColumnParallelLinear). The bias is
  /// replicated and applied once after the all-reduce (or skipped).
  RowParallelLinear(std::string name, std::int64_t in, std::int64_t out,
                    dist::Comm tp, float stddev, std::uint64_t seed,
                    bool skip_bias_add = false,
                    tensor::DType dtype = tensor::DType::kF32);

  /// x: [n, in/t] local shard. Returns [n, out] replicated (operator g
  /// forward = all-reduce), bias applied unless skipped.
  tensor::Tensor forward(const tensor::Tensor& x, LinearCache& cache);

  /// dy: [n, out] replicated. Returns dx [n, in/t]; no communication
  /// (operator g backward = identity). When bias is skipped the caller is
  /// responsible for accumulating the bias gradient (fused kernels do).
  tensor::Tensor backward(const tensor::Tensor& dy, const LinearCache& cache);

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::int64_t in_per_rank() const { return in_per_rank_; }
  void collect_params(ParamRefs& out);

  /// See ColumnParallelLinear::quantize_weight. Groups run along the local
  /// K shard (in/t rows); a policy group size dividing in/t keeps t=1 and
  /// t=2 quantization bitwise-consistent (quant.hpp shard-alignment rule).
  void quantize_weight(tensor::QuantKind kind, std::int64_t group_size,
                       bool drop_f32);
  bool quantized() const { return qweight_.defined(); }
  quant::QuantizedWeight& quantized_weight() { return qweight_; }
  const quant::QuantizedWeight& quantized_weight() const { return qweight_; }
  const std::string& weight_name() const { return weight_.name; }

 private:
  std::string name_;
  dist::Comm tp_;
  std::int64_t in_, out_, in_per_rank_;
  bool skip_bias_add_;
  Param weight_;  ///< [in/t, out]
  Param bias_;    ///< [out], replicated across tensor ranks
  quant::QuantizedWeight qweight_;  ///< serving-only packed form of weight_
};

}  // namespace ptdp::model
