#pragma once

// GPT model configuration and exact/approximate parameter counting.
// The approximate count is Eq. (2) of the paper; the exact count enumerates
// every tensor the implementation allocates, and the two are tested to
// agree to within the paper's stated approximation.

#include <cstdint>

#include "ptdp/tensor/dtype.hpp"

namespace ptdp::model {

struct GptConfig {
  std::int64_t num_layers = 2;   ///< l
  std::int64_t hidden = 64;      ///< h
  std::int64_t heads = 4;        ///< a
  std::int64_t vocab = 256;      ///< V
  std::int64_t seq = 32;         ///< s
  float dropout = 0.0f;          ///< attention/hidden dropout probability
  float init_stddev = 0.02f;     ///< N(0, σ²) weight init
  std::uint64_t seed = 1234;     ///< global init seed
  /// Working dtype of the GEMM weight matrices (QKV/proj/fc1/fc2). bf16
  /// halves their storage and GEMM read traffic; init still draws in f32
  /// (then rounds), gradients accumulate in f32, and the small fp32-compute
  /// params (biases, layernorm, embeddings) stay f32 — DESIGN.md §13.
  /// bf16 requires the engine's mixed-precision optimizer (fp32 masters).
  tensor::DType dtype = tensor::DType::kF32;
  /// true = GPT-style autoregressive attention (the fused implicit-causal
  /// softmax kernel); false = BERT-style bidirectional attention (the fused
  /// general-mask kernel) — see §4.2's two custom kernels.
  bool causal = true;

  std::int64_t head_dim() const { return hidden / heads; }
  std::int64_t ffn_hidden() const { return 4 * hidden; }

  /// Exact trainable-parameter count of this implementation:
  /// word embeddings (tied with the output head), position embeddings,
  /// per-layer attention + MLP + two LayerNorms, and the final LayerNorm.
  std::int64_t exact_params() const {
    const std::int64_t h = hidden;
    // Per layer: QKV (h*3h + 3h), proj (h*h + h), fc1 (h*4h + 4h),
    // fc2 (4h*h + h), 2 LayerNorms (2*2h).
    const std::int64_t per_layer = (h * 3 * h + 3 * h) + (h * h + h) +
                                   (h * 4 * h + 4 * h) + (4 * h * h + h) + 4 * h;
    return vocab * h + seq * h + num_layers * per_layer + 2 * h;
  }

  /// Paper Eq. (2): P = 12 l h^2 (1 + 13/(12h) + (V+s)/(12 l h)).
  double paper_params() const {
    const double l = static_cast<double>(num_layers);
    const double h = static_cast<double>(hidden);
    const double V = static_cast<double>(vocab);
    const double s = static_cast<double>(seq);
    return 12.0 * l * h * h *
           (1.0 + 13.0 / (12.0 * h) + (V + s) / (12.0 * l * h));
  }

  /// Paper Eq. (3): FLOPs per iteration at batch size B with activation
  /// recomputation, F = 96 B s l h^2 (1 + s/(6h) + V/(16 l h)).
  double paper_flops_per_iteration(std::int64_t batch) const {
    const double B = static_cast<double>(batch);
    const double l = static_cast<double>(num_layers);
    const double h = static_cast<double>(hidden);
    const double V = static_cast<double>(vocab);
    const double s = static_cast<double>(seq);
    return 96.0 * B * s * l * h * h * (1.0 + s / (6.0 * h) + V / (16.0 * l * h));
  }
};

}  // namespace ptdp::model
