#pragma once

// Tensor-parallel two-layer MLP (Fig. 5a): column-parallel h -> 4h with
// fused bias+GeLU, then row-parallel 4h -> h with bias skipped for the
// block-level fused bias+dropout+add.

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/model/linear.hpp"

namespace ptdp::model {

struct MlpCache {
  LinearCache fc1;
  LinearCache fc2;
  tensor::Tensor fc1_out;  ///< pre-bias, pre-GeLU [n, 4h/t]
};

class ParallelMlp {
 public:
  ParallelMlp(const GptConfig& config, std::int64_t global_layer_idx, dist::Comm tp);

  /// x: [s, b, h] replicated. Returns [s, b, h] without the fc2 bias.
  tensor::Tensor forward(const tensor::Tensor& x, MlpCache& cache);

  /// dy: [s, b, h] replicated. Returns dx [s, b, h]; accumulates grads.
  tensor::Tensor backward(const tensor::Tensor& dy, const MlpCache& cache);

  Param& fc2_bias() { return fc2_.bias(); }
  void collect_params(ParamRefs& out);

  // Graph-plan bindings (DESIGN.md §14).
  ColumnParallelLinear& fc1() { return fc1_; }
  RowParallelLinear& fc2() { return fc2_; }

 private:
  std::int64_t hidden_;
  ColumnParallelLinear fc1_;
  RowParallelLinear fc2_;
};

}  // namespace ptdp::model
