#pragma once

// KV-cache interface for incremental (single-token / chunked-prefill)
// decoding, plus a plain contiguous reference implementation.
//
// The decode path (GptStage::decode) persists each layer's per-position
// key/value projections through a KvStore so the next step attends over
// the cached prefix instead of recomputing it. The store is pure storage:
// rows go in and come back out byte-identical, so the arithmetic — and
// therefore the sampled token stream — is exactly the full-forward path's
// (see DESIGN.md §16 for why the kernels make that bitwise, not just
// approximately true). The paged, capacity-bounded implementation the
// serving plane schedules against is serve::PagedKvCache; SimpleKvStore
// below is the unbounded reference used by model::generate and by tests
// that byte-compare the paged gather against it.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ptdp/tensor/tensor.hpp"

namespace ptdp::model {

/// One sequence's slice of a decode batch: `len` new tokens whose first
/// global position is `pos` (== the number of positions already cached).
/// `len == 1` is steady-state decoding; `len > 1` is a prefill chunk.
struct DecodeSeq {
  std::uint64_t id = 0;
  std::int64_t pos = 0;
  std::int64_t len = 0;
};

/// Per-(sequence, layer) K/V persistence the decode path reads and writes
/// through. Rows are [hidden_local] floats, head-major (head h occupies
/// columns [h·dk, (h+1)·dk)) — the natural per-token slice of the QKV
/// projection output on this tensor rank.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Stores `k2d`/`v2d` ([c, hidden_local] each) for sequence `seq` at
  /// layer `layer`, positions [pos, pos+c). `pos` must equal the number of
  /// rows already written for that (seq, layer) — appends only.
  virtual void write(std::uint64_t seq, std::int64_t layer, std::int64_t pos,
                     const tensor::Tensor& k2d, const tensor::Tensor& v2d) = 0;

  /// Copies positions [0, len) into `k`/`v`, both pre-shaped
  /// [heads_local, len, dk] with heads_local·dk == hidden_local — the
  /// batched-GEMM layout attention consumes directly. Pure copy: the
  /// gathered bytes equal the bytes written.
  virtual void gather(std::uint64_t seq, std::int64_t layer, std::int64_t len,
                      tensor::Tensor& k, tensor::Tensor& v) const = 0;

  /// Discards all state for `seq` (no-op if unknown).
  virtual void drop(std::uint64_t seq) = 0;
};

/// Unbounded contiguous KvStore: one growable [cap, 2·hidden_local] tensor
/// per (sequence, layer), K in the left half of each row. Geometry is
/// inferred from the first write, so construction needs no model config.
class SimpleKvStore final : public KvStore {
 public:
  void write(std::uint64_t seq, std::int64_t layer, std::int64_t pos,
             const tensor::Tensor& k2d, const tensor::Tensor& v2d) override;
  void gather(std::uint64_t seq, std::int64_t layer, std::int64_t len,
              tensor::Tensor& k, tensor::Tensor& v) const override;
  void drop(std::uint64_t seq) override;

  /// Rows stored for (seq, layer); 0 when unknown.
  std::int64_t length(std::uint64_t seq, std::int64_t layer) const;

 private:
  struct LayerRows {
    tensor::Tensor rows;  ///< [cap, 2·hidden_local]
    std::int64_t len = 0;
  };
  std::unordered_map<std::uint64_t, std::vector<LayerRows>> seqs_;
};

}  // namespace ptdp::model
