#pragma once

// One pre-LayerNorm GPT transformer block:
//   h1 = x + dropout(attn(LN1(x)) + proj_bias)
//   y  = h1 + dropout(mlp(LN2(h1)) + fc2_bias)
// with the bias+dropout+add fusions of §4.2.
//
// Execution is planned: the block builds its ptdp::graph LayerPlans once
// (fusion + dtype + buffer passes, DESIGN.md §14) and forward/backward run
// them through the SequentialExecutor — bit-identical to the hand-written
// eager bodies, which remain available behind PTDP_GRAPH=0. Both paths are
// functional over an explicit LayerCache so a pipeline stage can hold many
// microbatches in flight, and so activation recomputation can rebuild state
// from the stashed input.

#include "ptdp/dist/comm.hpp"
#include "ptdp/graph/executor.hpp"
#include "ptdp/model/attention.hpp"
#include "ptdp/model/mlp.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

struct LayerCache {
  tensor::Tensor input;  ///< [s, b, h] — the only tensor kept under recompute
  tensor::LayerNormResult ln1, ln2;
  AttentionCache attn;
  MlpCache mlp;
  tensor::Tensor h1;  ///< post-attention residual stream [s*b, h] (2-D view shape)
  tensor::Tensor attn_resid_mask, mlp_resid_mask;
  graph::Frame frame;  ///< graph-mode execution state (empty in eager mode)

  /// Drops everything except the input (activation recomputation, §3.5).
  void keep_input_only() {
    frame.keep_input_only();
    *this = LayerCache{std::move(input), {}, {}, {}, {}, {}, {}, {},
                       std::move(frame)};
  }
};

class TransformerLayer {
 public:
  TransformerLayer(const GptConfig& config, std::int64_t global_layer_idx,
                   const dist::Comm& tp);

  /// x: [s, b, h] replicated across tensor ranks; returns [s, b, h].
  tensor::Tensor forward(const tensor::Tensor& x, LayerCache& cache,
                         std::uint64_t mb_tag);

  /// dy: [s, b, h]; returns dx and accumulates all parameter grads. In graph
  /// mode the cache's frame slots are released at their planned last use.
  tensor::Tensor backward(const tensor::Tensor& dy, LayerCache& cache);

  /// Incremental decode over a KV cache: x is [rows, h] (see
  /// ParallelAttention::forward_decode for the batch layout). Runs the
  /// eager block body with the attention swapped for the KV-cached path;
  /// row-wise ops are batched across sequences. Returns [rows, h],
  /// bitwise the full forward's rows at the same positions. Dropout must
  /// be 0 (no mask sites fire, so no mb_tag is needed).
  tensor::Tensor forward_decode(const tensor::Tensor& x,
                                std::span<const DecodeSeq> seqs, KvStore& kv);

  /// Backward with activation recomputation (§3.5): the cache holds only the
  /// layer input. Graph mode runs the fwd ++ bwd recompute plan; eager mode
  /// replays forward() then runs backward(). `mb_tag` must match the
  /// original forward so the counter-based dropout streams replay bitwise.
  tensor::Tensor backward_recompute(const tensor::Tensor& dy, LayerCache& cache,
                                    std::uint64_t mb_tag);

  std::int64_t layer_idx() const { return layer_idx_; }
  void collect_params(ParamRefs& out);
  /// Eval-mode switch: 0 disables this layer's dropouts (incl. attention).
  /// Plans are topology-selected by dropout > 0, so this just flips which
  /// prebuilt plan runs.
  void set_dropout(float p);

  /// The planned graphs this layer executes (with- and without-dropout
  /// topologies) and the module binding they run against.
  const graph::LayerPlan& plan(bool with_dropout) const {
    return with_dropout ? plan_drop_ : plan_nodrop_;
  }
  const graph::LayerBinding& binding() const { return binding_; }

 private:
  tensor::Tensor forward_eager(const tensor::Tensor& x, LayerCache& cache,
                               std::uint64_t mb_tag);
  tensor::Tensor backward_eager(const tensor::Tensor& dy, const LayerCache& cache);

  GptConfig config_;
  std::int64_t layer_idx_;
  Param ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
  ParallelAttention attention_;
  ParallelMlp mlp_;
  graph::LayerPlan plan_nodrop_, plan_drop_;
  graph::LayerBinding binding_;  ///< self-referential: layer is pinned by
                                 ///< unique_ptr ownership (no copies/moves)
};

}  // namespace ptdp::model
