#pragma once

// One pre-LayerNorm GPT transformer block:
//   h1 = x + dropout(attn(LN1(x)) + proj_bias)
//   y  = h1 + dropout(mlp(LN2(h1)) + fc2_bias)
// with the bias+dropout+add fusions of §4.2. Forward/backward are
// functional over an explicit LayerCache so a pipeline stage can hold many
// microbatches in flight, and so activation recomputation can rebuild the
// cache from the stashed input.

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/attention.hpp"
#include "ptdp/model/mlp.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

struct LayerCache {
  tensor::Tensor input;  ///< [s, b, h] — the only tensor kept under recompute
  tensor::LayerNormResult ln1, ln2;
  AttentionCache attn;
  MlpCache mlp;
  tensor::Tensor h1;  ///< post-attention residual stream [s*b, h] (2-D view shape)
  tensor::Tensor attn_resid_mask, mlp_resid_mask;

  /// Drops everything except the input (activation recomputation, §3.5).
  void keep_input_only() {
    *this = LayerCache{std::move(input), {}, {}, {}, {}, {}, {}, {}};
  }
};

class TransformerLayer {
 public:
  TransformerLayer(const GptConfig& config, std::int64_t global_layer_idx,
                   const dist::Comm& tp);

  /// x: [s, b, h] replicated across tensor ranks; returns [s, b, h].
  tensor::Tensor forward(const tensor::Tensor& x, LayerCache& cache,
                         std::uint64_t mb_tag);

  /// dy: [s, b, h]; returns dx and accumulates all parameter grads.
  tensor::Tensor backward(const tensor::Tensor& dy, const LayerCache& cache);

  std::int64_t layer_idx() const { return layer_idx_; }
  void collect_params(ParamRefs& out);
  /// Eval-mode switch: 0 disables this layer's dropouts (incl. attention).
  void set_dropout(float p);

 private:
  GptConfig config_;
  std::int64_t layer_idx_;
  Param ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
  ParallelAttention attention_;
  ParallelMlp mlp_;
};

}  // namespace ptdp::model
