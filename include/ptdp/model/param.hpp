#pragma once

// Trainable parameter: value + gradient accumulator + identity metadata.
//
// Sharding metadata records how this rank's shard relates to the full
// (logical) tensor, which the checkpoint module and the data-parallel
// gradient bucketing need. `replicated_across_tensor_parallel` marks
// parameters (LayerNorms, RowParallelLinear biases, position embeddings)
// whose grads are bitwise-identical on every tensor-parallel rank, so the
// grad-norm computation must not double count them.

#include <cstdint>
#include <string>
#include <vector>

#include "ptdp/runtime/rng.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::model {

struct Param {
  std::string name;            ///< canonical full-model name, e.g. "layer3.mlp.fc1.weight"
  tensor::Tensor value;
  tensor::Tensor grad;         ///< same shape as value, accumulated across microbatches
  bool replicated_across_tensor_parallel = false;

  void zero_grad() { grad.zero(); }
};

/// FNV-1a hash of a parameter name; used to key its init RNG substream so
/// a parameter's full tensor is identical regardless of (p, t, d) layout.
std::uint64_t param_stream(const std::string& name);

/// Generates the *full* (unsharded) tensor for `name` and returns the
/// column range [col_begin, col_end) — the standard path for building a
/// tensor-parallel shard that matches the serial model exactly.
tensor::Tensor init_weight_shard(const std::string& name, std::int64_t rows,
                                 std::int64_t cols, std::int64_t col_begin,
                                 std::int64_t col_end, float stddev,
                                 std::uint64_t seed);

/// Row-range variant (for RowParallelLinear and vocab-parallel embeddings).
tensor::Tensor init_weight_row_shard(const std::string& name, std::int64_t rows,
                                     std::int64_t cols, std::int64_t row_begin,
                                     std::int64_t row_end, float stddev,
                                     std::uint64_t seed);

/// Mutable views over a module tree's parameters, in deterministic order.
using ParamRefs = std::vector<Param*>;

}  // namespace ptdp::model
