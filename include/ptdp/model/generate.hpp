#pragma once

// Autoregressive text generation from a trained GptStage (greedy or
// temperature sampling). Works with any tensor-parallel width: the
// vocab-parallel logit shards are gathered across the tensor group, so a
// t-way sharded model generates exactly the tokens the serial model would.
//
// No KV cache — each step re-runs the full prefix (fine at this
// repository's scale; the paper's system is a trainer, not a server).

#include <span>
#include <vector>

#include "ptdp/model/stage.hpp"

namespace ptdp::model {

struct GenerateOptions {
  std::int64_t max_new_tokens = 32;
  bool greedy = true;          ///< argmax decoding; otherwise sample
  float temperature = 1.0f;    ///< softmax temperature when sampling
  std::uint64_t seed = 0;      ///< sampling stream (ignored for greedy)
};

/// Full-vocabulary logits for inputs `tokens` ([s*b] sequence-major) —
/// embedding, all transformer layers, final LayerNorm, and the tied-
/// embedding projection, gathered over the tensor group. Returns [s*b, V].
/// The stage must hold the whole model (has_embedding && has_head).
/// Dropout must be disabled (config.dropout == 0) for inference.
tensor::Tensor forward_logits(GptStage& stage, std::span<const std::int32_t> tokens,
                              std::int64_t s, std::int64_t b);

/// Generates up to `max_new_tokens` continuations of `prompt`. The context
/// is truncated to the model's trained sequence length from the left.
std::vector<std::int32_t> generate(GptStage& stage,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options = {});

}  // namespace ptdp::model
