#pragma once

// Autoregressive text generation from a trained GptStage (greedy,
// temperature, or top-k sampling). Works with any tensor-parallel width:
// the vocab-parallel logit shards are gathered across the tensor group, so
// a t-way sharded model generates exactly the tokens the serial model
// would — and all ranks draw from the same counter-based sampling stream,
// so they sample identical tokens without communicating.
//
// Decoding is KV-cached by default: each step embeds only the new token
// and attends over the cached prefix (O(n) per token instead of O(n²)),
// bitwise-identical to the full-forward path, which remains available as
// the reference oracle behind use_kv_cache = false.

#include <span>
#include <vector>

#include "ptdp/model/kv_cache.hpp"
#include "ptdp/model/stage.hpp"

namespace ptdp::model {

struct GenerateOptions {
  std::int64_t max_new_tokens = 32;
  bool greedy = true;          ///< argmax decoding; otherwise sample
  float temperature = 1.0f;    ///< softmax temperature when sampling
  std::int64_t top_k = 0;      ///< sample from the k highest logits (0 = all)
  std::uint64_t seed = 0;      ///< sampling stream (ignored for greedy)
  bool use_kv_cache = true;    ///< false = full-forward reference oracle
};

/// Picks the next token from one full-vocabulary logits row. Greedy =
/// argmax; otherwise temperature softmax over the top-k logits (ties at
/// the k-th value resolved toward lower token ids) with an inverse-CDF
/// draw from `rng`. A pure function of (row bits, options, rng state), so
/// every tensor rank — given the gathered, bitwise-identical logits —
/// selects the same token from its own identically-seeded stream.
std::int32_t sample_token(std::span<const float> logits_row,
                          const GenerateOptions& options, Rng& rng);

/// Full-vocabulary logits for inputs `tokens` ([s*b] sequence-major) —
/// embedding, all transformer layers, final LayerNorm, and the tied-
/// embedding projection, gathered over the tensor group. Returns [s*b, V].
/// The stage must hold the whole model (has_embedding && has_head).
/// Dropout must be disabled (config.dropout == 0) for inference.
tensor::Tensor forward_logits(GptStage& stage, std::span<const std::int32_t> tokens,
                              std::int64_t s, std::int64_t b);

/// Generates up to `max_new_tokens` continuations of `prompt`. The context
/// is truncated to the model's trained sequence length from the left.
std::vector<std::int32_t> generate(GptStage& stage,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options = {});

}  // namespace ptdp::model
