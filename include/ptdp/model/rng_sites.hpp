#pragma once

// Deterministic RNG streams for dropout sites.
//
// Every dropout mask is a pure function of (seed, microbatch tag, global
// layer index, site, sub-id). Two properties follow: (a) activation
// recomputation replays the exact mask of the original forward pass, and
// (b) masks are layout-independent — a tensor-parallel rank draws the same
// mask for global head g that the serial model draws, which is what makes
// parallel and serial training equivalent even with dropout enabled.

#include <cstdint>

#include "ptdp/runtime/rng.hpp"

namespace ptdp::model {

enum class DropSite : std::uint64_t {
  kEmbedding = 1,
  kAttentionProb = 2,
  kAttentionResidual = 3,
  kMlpResidual = 4,
};

inline Rng site_rng(std::uint64_t seed, std::uint64_t mb_tag, std::uint64_t layer,
                    DropSite site, std::uint64_t sub = 0) {
  return Rng(seed, substream(mb_tag, (layer << 8) | static_cast<std::uint64_t>(site),
                             sub));
}

}  // namespace ptdp::model
