#pragma once

// Tensor-parallel multi-head self-attention (Fig. 5b).
//
// The QKV projection is column-parallel with whole heads per rank (requires
// heads % t == 0); the output projection is row-parallel with its bias
// skipped so the transformer block can apply the fused
// bias+dropout+residual kernel. Data layout follows §4.2: activations flow
// as [s, b, h] (sequence-major) to avoid transposes in the hot path.

#include <span>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/model/kv_cache.hpp"
#include "ptdp/model/linear.hpp"
#include "ptdp/model/rng_sites.hpp"

namespace ptdp::model {

struct AttentionCache {
  LinearCache qkv;
  LinearCache proj;
  tensor::Tensor q, k, v;        ///< [b·a_local, s, dk]
  tensor::Tensor probs;          ///< post-softmax attention probabilities
  tensor::Tensor prob_mask;      ///< dropout mask on probs (undefined if p == 0)
  tensor::Tensor probs_dropped;  ///< probs ⊙ mask (== probs if p == 0)
  std::int64_t s = 0, b = 0;
};

class ParallelAttention {
 public:
  ParallelAttention(const GptConfig& config, std::int64_t global_layer_idx,
                    dist::Comm tp);

  /// x: [s, b, h] replicated across tensor ranks. Returns [s, b, h]
  /// (all-reduced by the row-parallel projection) with the projection bias
  /// NOT applied.
  tensor::Tensor forward(const tensor::Tensor& x, AttentionCache& cache,
                         std::uint64_t mb_tag);

  /// dy: [s, b, h] replicated. Returns dx [s, b, h]; accumulates grads.
  tensor::Tensor backward(const tensor::Tensor& dy, const AttentionCache& cache);

  /// Incremental decode over a KV cache: x is [rows, h], the concatenated
  /// new-token activations of `seqs` in order (rows == Σ seq.len). Each
  /// sequence's new K/V rows are appended to `kv`, and its new queries
  /// attend over the full cached prefix. Returns [rows, h] (all-reduced by
  /// the row-parallel projection, bias NOT applied) — bitwise-identical to
  /// the corresponding rows of forward() on the full prefix (DESIGN.md §16).
  /// Requires causal attention and dropout == 0.
  tensor::Tensor forward_decode(const tensor::Tensor& x,
                                std::span<const DecodeSeq> seqs, KvStore& kv);

  Param& proj_bias() { return proj_.bias(); }
  void collect_params(ParamRefs& out);
  /// Eval-mode switch: 0 disables attention-probability dropout.
  void set_dropout(float p) { config_.dropout = p; }

  // Graph-plan bindings (ptdp::graph drives the same modules the eager body
  // drives; see DESIGN.md §14).
  ColumnParallelLinear& qkv() { return qkv_; }
  RowParallelLinear& proj() { return proj_; }
  std::int64_t heads_local() const { return heads_local_; }
  std::int64_t head_dim() const { return head_dim_; }
  std::int64_t hidden_local() const { return hidden_local_; }
  /// Site-keyed attention-probability dropout mask (kAttentionProb streams,
  /// keyed by global head so tensor-parallel ranks agree). Public so a
  /// planned kAttnProbMask node can draw the identical mask.
  tensor::Tensor make_prob_dropout_mask(std::int64_t b, std::uint64_t mb_tag) const;

 private:
  GptConfig config_;
  std::int64_t layer_idx_;
  std::int64_t heads_local_, head_dim_, hidden_local_, head_begin_;
  ColumnParallelLinear qkv_;
  RowParallelLinear proj_;
};

}  // namespace ptdp::model
