#pragma once

// Language-model head: final LayerNorm, logits through the *tied* word
// embedding (column-parallel over the vocabulary), and Megatron's
// vocab-parallel cross-entropy — the loss is computed without ever
// materializing the full [n, V] logits on one rank, using a max all-reduce
// and a sum all-reduce over the tensor group.

#include <optional>
#include <span>
#include <vector>

#include "ptdp/dist/comm.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/model/param.hpp"
#include "ptdp/tensor/arena.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

struct HeadCache {
  tensor::Tensor input;              ///< [s, b, h]
  tensor::LayerNormResult ln;
  tensor::Tensor exp_shift;          ///< exp(logits − rowmax), [n, V/t]
  std::vector<float> inv_z;          ///< 1 / Σexp per row
  std::vector<std::int32_t> local_targets;  ///< target − vocab_begin, or −1 if unowned
  std::vector<float> row_weight;     ///< per-token loss weight / Σweights
  std::int64_t s = 0, b = 0;
};

class GptHead {
 public:
  /// `tied_word` — when this rank's stage also holds the input embedding
  /// (p == 1, or a one-stage pipeline chunk layout), pass its word Param so
  /// forward/backward read and accumulate into the same tensor. Otherwise
  /// pass nullptr and the head allocates its own identically-initialized
  /// copy whose gradient the engine all-reduces over the embedding group.
  GptHead(const GptConfig& config, dist::Comm tp, Param* tied_word);

  /// x: [s, b, h]; targets: [s*b] sequence-major. Returns the mean loss
  /// (identical on every tensor rank). `loss_weights` (empty = uniform)
  /// weights each token's contribution — the MLM objective passes 1 at
  /// masked positions and 0 elsewhere; the result is the weighted mean.
  float forward(const tensor::Tensor& x, std::span<const std::int32_t> targets,
                HeadCache& cache, std::span<const float> loss_weights = {});

  /// Backprop of `loss_scale * loss`; returns dx [s, b, h].
  tensor::Tensor backward(float loss_scale, const HeadCache& cache);

  /// Inference: full-vocabulary logits for x [s, b, h] — final LayerNorm +
  /// tied-embedding projection, with the vocab shards gathered across the
  /// tensor group. Returns [s*b, V]; no state is cached.
  tensor::Tensor full_logits(const tensor::Tensor& x);

  Param& word() { return *word_; }
  bool owns_word() const { return own_word_.has_value(); }
  void collect_params(ParamRefs& out);

 private:
  GptConfig config_;
  dist::Comm tp_;
  std::int64_t vocab_per_rank_, vocab_begin_;
  Param ln_gamma_, ln_beta_;
  std::optional<Param> own_word_;
  Param* word_;
  /// Planned scratch (DESIGN.md §12/§14): the head's per-call transients
  /// that never escape — kTargetLogit in forward, kDlogits in backward,
  /// kGather in full_logits — reuse the same storage every microbatch
  /// instead of allocating fresh tensors. cache.exp_shift stays a real
  /// allocation: it must survive until backward, per microbatch.
  enum ScratchSlot : std::size_t { kTargetLogit = 0, kDlogits = 1, kGather = 2 };
  tensor::TensorArena scratch_{3};
};

}  // namespace ptdp::model
