// ZeRO vs PTD-P, functionally and at scale.
//
// Functional half: train the same small model three ways on real tensors —
// serial Adam, replicated data-parallel Adam, and ZeRO sharded Adam — and
// show the loss trajectories coincide (ZeRO changes where state lives, not
// what the optimizer computes), while the ZeRO ranks hold ~1/d of the
// optimizer state.
//
// At-scale half: the §5.2 comparison from the cluster model — PTD-P's
// throughput stays flat as GPUs double at fixed batch, ZeRO-3's falls.

#include <cstdio>

#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/stage.hpp"
#include "ptdp/optim/optimizer.hpp"
#include "ptdp/sim/zero_model.hpp"
#include "ptdp/tensor/ops.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

using namespace ptdp;

namespace {

model::GptConfig tiny() {
  model::GptConfig c;
  c.num_layers = 2;
  c.hidden = 32;
  c.heads = 4;
  c.vocab = 64;
  c.seq = 16;
  c.seed = 5;
  return c;
}

// One replica's grad accumulation for its share of the batch.
float replica_grads(model::GptStage& stage, const data::TokenDataset& ds,
                    int step, int d, int rank) {
  data::ShardedLoader loader(ds, /*B=*/8, /*b=*/2, d, rank, /*seed=*/21);
  auto mbs = loader.next_batch(step);
  const float scale = 1.0f / static_cast<float>(mbs.size());
  double loss = 0;
  for (const auto& mb : mbs) {
    model::StageCache cache;
    loss += stage.forward(tensor::Tensor(), mb, cache).loss;
    stage.backward(tensor::Tensor(), scale, cache, mb);
  }
  return static_cast<float>(loss) * scale;
}

}  // namespace

int main() {
  const model::GptConfig config = tiny();
  data::SyntheticCorpus corpus(config.vocab, 13);
  data::TokenDataset dataset(corpus.generate(8000), config.seq);
  const int steps = 8;
  const int d = 4;

  // ---- serial reference ----
  std::vector<float> serial_losses;
  {
    dist::Comm solo = dist::Comm::solo();
    model::GptStage stage(config, solo,
                          model::StageSpec{true, true, 0, config.num_layers, false});
    optim::Adam adam(stage.params(), {.lr = 5e-3f});
    for (int s = 0; s < steps; ++s) {
      stage.zero_grads();
      serial_losses.push_back(replica_grads(stage, dataset, s, 1, 0));
      adam.step();
    }
  }

  // ---- ZeRO sharded data parallel on d thread ranks ----
  std::printf("step | serial Adam | ZeRO sharded Adam (d=%d) | shard state\n", d);
  dist::World world(d);
  world.run([&](dist::Comm& comm) {
    dist::Comm solo = dist::Comm::solo();
    model::GptStage stage(config, solo,
                          model::StageSpec{true, true, 0, config.num_layers, false});
    zero::ZeroShardedAdam zero(stage.params(), comm, {{.lr = 5e-3f}});
    for (int s = 0; s < steps; ++s) {
      stage.zero_grads();
      float loss = replica_grads(stage, dataset, s, d, comm.rank());
      // Global mean loss for display (grad averaging happens inside ZeRO).
      loss = comm.all_reduce_scalar(loss) / static_cast<float>(d);
      zero.step();
      if (comm.rank() == 0) {
        std::printf("%4d | %11.4f | %24.4f | %lld floats\n", s,
                    serial_losses[static_cast<std::size_t>(s)], loss,
                    static_cast<long long>(zero.shard_elems() * 3));
      }
    }
  });
  std::printf("-> trajectories coincide: ZeRO shards the optimizer *state*, "
              "not the math.\n\n");

  // ---- at-scale comparison (Fig. 10) ----
  const auto hw = sim::ClusterSpec::selene();
  const auto gpt3 = [] {
    model::GptConfig c;
    c.num_layers = 96;
    c.hidden = 12288;
    c.heads = 96;
    c.vocab = 51200;
    c.seq = 2048;
    return c;
  }();
  std::printf("GPT-3 175B at fixed batch 1536 (simulated Selene):\n");
  std::printf("%6s | %14s %14s\n", "GPUs", "PTD-P TF/GPU", "ZeRO-3 TF/GPU");
  for (auto [n, zb] : {std::pair{384L, 4L}, {768L, 2L}, {1536L, 1L}}) {
    core::ParallelConfig cfg;
    cfg.t = 8;
    cfg.p = 12;
    cfg.d = static_cast<int>(n / 96);
    cfg.b = 1;
    const auto p = sim::simulate_iteration(hw, gpt3, cfg, 1536);
    const auto z = sim::simulate_zero3_iteration(hw, gpt3, 1536, n, zb);
    std::printf("%6ld | %14.0f %14.0f\n", n, p.per_gpu_flops / 1e12,
                z.per_gpu_flops / 1e12);
  }
  std::printf("-> PTD-P stays flat; ZeRO-3 halves per doubling (cross-node "
              "parameter gathers amortize over ever-less compute).\n");
  return 0;
}
