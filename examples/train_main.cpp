// train_main — the command-line training driver (the torchrun/megatron
// entrypoint equivalent). Configures everything from flags, trains with
// full PTD-P, periodically commits checkpoints, resumes from the newest
// committed checkpoint, and — when a checkpoint dir is given — runs under
// the fault-tolerance supervisor: a rank failure triggers automatic
// restart from the last committed step.
//
// Usage (all flags optional):
//   train_main --layers 4 --hidden 64 --heads 4 --vocab 128 --seq 32
//              --p 2 --t 2 --d 2 --micro-batch 2 --global-batch 32
//              --schedule 1f1b|gpipe|interleaved --chunks 2
//              --steps 50 --lr 3e-3 --warmup 10 --clip 1.0
//              --objective causal|mlm --mixed-precision --no-recompute
//              --dtype f32|bf16 --grad-comm-dtype f32|bf16
//              --scatter-gather --no-overlap-grad-reduce
//              --ckpt-dir /tmp/run --ckpt-every 25 --log-every 5
//              --eval-every 10
//              --max-restarts 3 --fault-seed 1
//              --fault-plan kill:<rank>:<site>:<nth>[,...]
//              --op-timeout-ms 2000 --restarts-before-evict 1
//              --straggler-ratio 3.0 --straggler-patience 3 --no-health
//              --trace-out /tmp/trace.json --metrics-out /tmp/metrics.json
//              --dump-plan plan.json
//
// Planned execution (DESIGN.md §14): layers run their fused op-graph plans by
// default; set PTDP_GRAPH=0 to fall back to the hand-written eager bodies
// (bitwise-identical results either way). --dump-plan writes every virtual
// stage's planned graph — post-fusion node sequences, value lifetimes, arena
// slot assignment, buffer stats — as ptdp-plan-v1 JSON (path or "-" for
// stdout) and exits without training.
//
// Observability (DESIGN.md §11): --trace-out enables full tracing and writes
// a Chrome trace_event JSON (open in Perfetto / chrome://tracing; tid = world
// rank), then prints the reconstructed pipeline-timeline report (measured
// bubble fraction vs the analytic (p-1)/(v*m)). --metrics-out enables the
// metrics plane (counters/histograms + per-rank comm volumes) and writes the
// registry as JSON. Either flag also prints the per-rank comm-volume report.
//
// Fault specs (comma-separated; <site> is send|recv|coll|ckpt):
//   kill:<rank>:<site>:<nth>          kill rank at its nth op at site
//   delay:<rank>:<site>:<nth>:<usec>  delay that op instead
//   corrupt:<rank>:<nth>              flip a byte in the rank's nth ckpt write
//   slow:<rank>:<site>:<nth>:<usec>   from the nth op on, busy-spin usec per op
//                                     (sticky: survives restart, forces evict)
//   flaky:<rank>:<nth>:<period>:<usec>  from the nth send on, delay every
//                                     period-th send by usec (0 usec = drop
//                                     the message instead; non-sticky)
//   hang:<rank>:<site>:<nth>          from the nth op on, rank hangs forever
//                                     (sticky; auto-arms --op-timeout-ms 2000
//                                     when no explicit timeout is given)
// e.g. --ckpt-dir /tmp/run --ckpt-every 10 --fault-plan kill:1:send:500
// demonstrates kill -> supervisor restart -> resume from committed step;
// --fault-plan slow:1:send:40:3000 demonstrates straggler detection ->
// restart-in-place -> eviction -> elastic relayout on a 1-rank world.
//
// Self-healing (DESIGN.md §15): under the supervisor a HealthMonitor watches
// per-rank busy time vs the across-rank median (straggler detection), the
// watchdog converts silent peer hangs into attributed RankTimeouts, and the
// escalation ladder goes warn -> restart-in-place -> evict + elastic
// relayout (merge the committed shards, resume serial). --no-health disables
// the monitor; --restarts-before-evict sets the grace budget.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/ft/health.hpp"
#include "ptdp/graph/builder.hpp"
#include "ptdp/graph/passes.hpp"
#include "ptdp/dist/fault.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/ft/supervisor.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/timeline.hpp"
#include "ptdp/obs/trace.hpp"

using namespace ptdp;

namespace {

struct Args {
  model::GptConfig model{.num_layers = 4, .hidden = 64, .heads = 4, .vocab = 128,
                         .seq = 32};
  core::ParallelConfig parallel{.p = 1, .t = 1, .d = 1, .b = 2};
  std::int64_t global_batch = 16;
  int steps = 50;
  float lr = 3e-3f;
  std::int64_t warmup = 0;
  double clip = 0.0;
  bool mlm = false;
  bool mixed = false;
  tensor::DType grad_comm_dtype = tensor::DType::kF32;
  bool overlap_grad_reduce = true;
  std::string ckpt_dir;
  int ckpt_every = 0;
  int log_every = 5;
  int eval_every = 0;
  std::string fault_plan;
  std::uint64_t fault_seed = 0;
  int max_restarts = 3;
  int op_timeout_ms = 0;         ///< watchdog; 0 = off (auto-armed by hang:)
  int restarts_before_evict = 1; ///< degraded-rank grace budget
  bool health = true;            ///< straggler monitor under the supervisor
  double straggler_ratio = 3.0;
  int straggler_patience = 3;
  std::string trace_out;    ///< Chrome trace JSON path; enables full tracing
  std::string metrics_out;  ///< metrics JSON path; enables the metrics plane
  std::string dump_plan;    ///< plan JSON path ("-" = stdout); dump and exit
};

std::optional<tensor::DType> dtype_from(const std::string& s) {
  if (s == "f32") return tensor::DType::kF32;
  if (s == "bf16") return tensor::DType::kBf16;
  return std::nullopt;
}

std::optional<dist::FaultSite> site_from(const std::string& s) {
  if (s == "send") return dist::FaultSite::kSend;
  if (s == "recv") return dist::FaultSite::kRecv;
  if (s == "coll") return dist::FaultSite::kCollective;
  if (s == "ckpt") return dist::FaultSite::kCkptWrite;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// (p, t) of the layout that wrote a manifest, recovered from its shard
/// file names (shard-p{i}-t{j}-d{k}.ckpt) — manifests carry no layout
/// metadata, but the grid is fully determined by the names.
std::pair<int, int> shard_layout(const ckpt::Manifest& m) {
  int p = 1, t = 1;
  for (const auto& e : m.shards) {
    const auto pos = e.file.rfind("shard-p");
    int pi = 0, ti = 0, di = 0;
    if (pos != std::string::npos &&
        std::sscanf(e.file.c_str() + pos, "shard-p%d-t%d-d%d", &pi, &ti, &di) == 3) {
      p = std::max(p, pi + 1);
      t = std::max(t, ti + 1);
    }
  }
  return {p, t};
}

bool parse_fault_plan(const std::string& text, dist::FaultPlan& plan,
                      bool& has_hang) {
  for (const std::string& token : split(text, ',')) {
    const auto f = split(token, ':');
    if (f.size() == 4 && f[0] == "kill") {
      const auto site = site_from(f[2]);
      if (!site) return false;
      plan.kill(std::atoi(f[1].c_str()), *site,
                static_cast<std::uint64_t>(std::atoll(f[3].c_str())));
    } else if (f.size() == 5 && f[0] == "delay") {
      const auto site = site_from(f[2]);
      if (!site) return false;
      plan.delay(std::atoi(f[1].c_str()), *site,
                 static_cast<std::uint64_t>(std::atoll(f[3].c_str())),
                 std::chrono::microseconds(std::atoll(f[4].c_str())));
    } else if (f.size() == 3 && f[0] == "corrupt") {
      plan.corrupt_ckpt(std::atoi(f[1].c_str()),
                        static_cast<std::uint64_t>(std::atoll(f[2].c_str())));
    } else if (f.size() == 5 && f[0] == "slow") {
      const auto site = site_from(f[2]);
      if (!site) return false;
      plan.slow_rank(std::atoi(f[1].c_str()), *site,
                     static_cast<std::uint64_t>(std::atoll(f[3].c_str())),
                     std::chrono::microseconds(std::atoll(f[4].c_str())));
    } else if (f.size() == 5 && f[0] == "flaky") {
      const auto usec = std::atoll(f[4].c_str());
      plan.flaky_link(std::atoi(f[1].c_str()),
                      static_cast<std::uint64_t>(std::atoll(f[2].c_str())),
                      static_cast<std::uint64_t>(std::atoll(f[3].c_str())),
                      std::chrono::microseconds(usec), /*drop=*/usec == 0);
    } else if (f.size() == 4 && f[0] == "hang") {
      const auto site = site_from(f[2]);
      if (!site) return false;
      plan.hang(std::atoi(f[1].c_str()), *site,
                static_cast<std::uint64_t>(std::atoll(f[3].c_str())));
      has_hang = true;
    } else {
      return false;
    }
  }
  return true;
}

bool parse(int argc, char** argv, Args& a) {
  auto next_i64 = [&](int& i) { return std::atoll(argv[++i]); };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--layers") a.model.num_layers = next_i64(i);
    else if (flag == "--hidden") a.model.hidden = next_i64(i);
    else if (flag == "--heads") a.model.heads = next_i64(i);
    else if (flag == "--vocab") a.model.vocab = next_i64(i);
    else if (flag == "--seq") a.model.seq = next_i64(i);
    else if (flag == "--dropout") a.model.dropout = std::atof(argv[++i]);
    else if (flag == "--p") a.parallel.p = static_cast<int>(next_i64(i));
    else if (flag == "--t") a.parallel.t = static_cast<int>(next_i64(i));
    else if (flag == "--d") a.parallel.d = static_cast<int>(next_i64(i));
    else if (flag == "--micro-batch") a.parallel.b = next_i64(i);
    else if (flag == "--chunks") a.parallel.v = static_cast<int>(next_i64(i));
    else if (flag == "--global-batch") a.global_batch = next_i64(i);
    else if (flag == "--steps") a.steps = static_cast<int>(next_i64(i));
    else if (flag == "--lr") a.lr = std::atof(argv[++i]);
    else if (flag == "--warmup") a.warmup = next_i64(i);
    else if (flag == "--clip") a.clip = std::atof(argv[++i]);
    else if (flag == "--schedule") {
      const std::string v = argv[++i];
      if (v == "gpipe") a.parallel.schedule = pipeline::ScheduleType::kGPipe;
      else if (v == "1f1b") a.parallel.schedule = pipeline::ScheduleType::kOneFOneB;
      else if (v == "interleaved") {
        a.parallel.schedule = pipeline::ScheduleType::kInterleaved;
        if (a.parallel.v < 2) a.parallel.v = 2;
      } else {
        std::fprintf(stderr, "unknown schedule '%s'\n", v.c_str());
        return false;
      }
    } else if (flag == "--objective") {
      const std::string v = argv[++i];
      a.mlm = v == "mlm";
      a.model.causal = !a.mlm;
    } else if (flag == "--dtype" || flag == "--grad-comm-dtype") {
      const std::string v = argv[++i];
      const auto dt = dtype_from(v);
      if (!dt) {
        std::fprintf(stderr, "unknown dtype '%s' (want f32|bf16)\n", v.c_str());
        return false;
      }
      if (flag == "--dtype") a.model.dtype = *dt;
      else a.grad_comm_dtype = *dt;
    } else if (flag == "--mixed-precision") a.mixed = true;
    else if (flag == "--no-recompute") a.parallel.recompute = false;
    else if (flag == "--scatter-gather") a.parallel.scatter_gather = true;
    else if (flag == "--no-overlap-grad-reduce") a.overlap_grad_reduce = false;
    else if (flag == "--ckpt-dir") a.ckpt_dir = argv[++i];
    else if (flag == "--ckpt-every") a.ckpt_every = static_cast<int>(next_i64(i));
    else if (flag == "--log-every") a.log_every = static_cast<int>(next_i64(i));
    else if (flag == "--eval-every") a.eval_every = static_cast<int>(next_i64(i));
    else if (flag == "--trace-out") a.trace_out = argv[++i];
    else if (flag == "--metrics-out") a.metrics_out = argv[++i];
    else if (flag == "--dump-plan") a.dump_plan = argv[++i];
    else if (flag == "--fault-plan") a.fault_plan = argv[++i];
    else if (flag == "--fault-seed") a.fault_seed = static_cast<std::uint64_t>(next_i64(i));
    else if (flag == "--max-restarts") a.max_restarts = static_cast<int>(next_i64(i));
    else if (flag == "--op-timeout-ms") a.op_timeout_ms = static_cast<int>(next_i64(i));
    else if (flag == "--restarts-before-evict") a.restarts_before_evict = static_cast<int>(next_i64(i));
    else if (flag == "--no-health") a.health = false;
    else if (flag == "--straggler-ratio") a.straggler_ratio = std::atof(argv[++i]);
    else if (flag == "--straggler-patience") a.straggler_patience = static_cast<int>(next_i64(i));
    else {
      std::fprintf(stderr, "unknown flag '%s' (see header comment for usage)\n",
                   flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  // PTDP_DTYPE=f32|bf16 sets the default weight dtype (CI smoke runs use it
  // to sweep precision without editing command lines); --dtype wins.
  if (const char* env = std::getenv("PTDP_DTYPE")) {
    const auto dt = dtype_from(env);
    if (!dt) {
      std::fprintf(stderr, "bad PTDP_DTYPE '%s' (want f32|bf16)\n", env);
      return 1;
    }
    args.model.dtype = *dt;
  }
  if (!parse(argc, argv, args)) return 1;

  if (!args.dump_plan.empty()) {
    // Plan inspection: emit every virtual stage's planned op graph (same
    // layer striping as the engine, §2.2.2) as a JSON array and exit.
    std::FILE* out = args.dump_plan == "-"
                         ? stdout
                         : std::fopen(args.dump_plan.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.dump_plan.c_str());
      return 1;
    }
    graph::PlannerOptions popts;
    popts.tp_size = args.parallel.t;
    const int P = args.parallel.p * std::max(args.parallel.v, 1);
    const std::int64_t per_stage = args.model.num_layers / P;
    std::fputs("[\n", out);
    for (int vs = 0; vs < P; ++vs) {
      const auto sp = graph::build_stage_plan(
          args.model, vs * per_stage, (vs + 1) * per_stage,
          /*has_embedding=*/vs == 0, /*has_head=*/vs == P - 1,
          args.parallel.recompute, popts);
      graph::dump_stage_plan_json(sp, args.model, out);
      std::fputs(vs + 1 < P ? ",\n" : "\n", out);
    }
    std::fputs("]\n", out);
    if (out != stdout) std::fclose(out);
    return 0;
  }

  core::EngineOptions options;
  options.model = args.model;
  options.parallel = args.parallel;
  options.global_batch = args.global_batch;
  options.optimizer = core::EngineOptions::Opt::kAdam;
  options.adam.lr = args.lr;
  options.mixed_precision = args.mixed;
  options.grad_comm_dtype = args.grad_comm_dtype;
  options.overlap_grad_reduce = args.overlap_grad_reduce;
  options.grad_clip = args.clip;
  if (args.warmup > 0) {
    options.lr_schedule = optim::LrScheduleOptions{
        .peak_lr = args.lr,
        .min_lr = args.lr * 0.1f,
        .warmup_steps = args.warmup,
        .decay_steps = std::max<std::int64_t>(args.steps, args.warmup + 1)};
  }

  std::printf("model: %lldL/%lldh/%lld heads, vocab %lld, seq %lld (%.2fM params)"
              " — %s objective, %s weights\n",
              static_cast<long long>(args.model.num_layers),
              static_cast<long long>(args.model.hidden),
              static_cast<long long>(args.model.heads),
              static_cast<long long>(args.model.vocab),
              static_cast<long long>(args.model.seq),
              static_cast<double>(args.model.exact_params()) / 1e6,
              args.mlm ? "masked-LM" : "causal-LM",
              tensor::dtype_name(args.model.dtype));
  std::printf("parallelism: %s, global batch %lld, %d \"GPUs\"\n",
              args.parallel.str().c_str(),
              static_cast<long long>(args.global_batch),
              static_cast<int>(args.parallel.n()));

  data::SyntheticCorpus corpus(args.model.vocab, 101);
  data::TokenDataset dataset(
      corpus.generate(std::max<std::int64_t>(args.model.seq * 512, 8192)),
      args.model.seq);

  // Arm the observability plane before any rank runs: full tracing when a
  // trace path is given, metrics-only when just the metrics path is.
  if (!args.trace_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kFull);
  } else if (!args.metrics_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kMetricsOnly);
  }

  std::shared_ptr<dist::FaultPlan> plan;
  bool plan_has_hang = false;
  if (!args.fault_plan.empty()) {
    plan = std::make_shared<dist::FaultPlan>(args.fault_seed);
    if (!parse_fault_plan(args.fault_plan, *plan, plan_has_hang)) {
      std::fprintf(stderr, "bad --fault-plan '%s' (see header comment)\n",
                   args.fault_plan.c_str());
      return 1;
    }
  }
  // A hung rank is only detectable when the watchdog is armed — a hang spec
  // without a timeout would deadlock the world, so auto-arm a default.
  if (plan_has_hang && args.op_timeout_ms == 0) args.op_timeout_ms = 2000;

  // Straggler monitor: each rank feeds its busy/wait split after every step;
  // a latched verdict is thrown by enforce() and diagnosed by the supervisor.
  std::shared_ptr<ft::HealthMonitor> monitor;
  if (args.health && !args.ckpt_dir.empty()) {
    ft::HealthOptions hopts;
    hopts.straggler_ratio = args.straggler_ratio;
    hopts.straggler_patience = args.straggler_patience;
    monitor = std::make_shared<ft::HealthMonitor>(hopts);
  }

  // The SPMD training body. `committed_step` > 0 means a committed
  // checkpoint exists under ckpt_dir (resolved by the supervisor, or 0 on
  // an unsupervised run); `attempt` > 0 means we are recovering. When the
  // supervisor evicted a rank the world arrives one size smaller than the
  // requested layout: merge the committed shards of the original layout into
  // one serial checkpoint and resume at (1, 1, 1) — the elastic path.
  const auto body = [&](dist::Comm& comm, std::uint64_t committed_step,
                        int attempt) {
    const bool elastic = comm.size() != static_cast<int>(args.parallel.n());
    core::EngineOptions run_options = options;
    if (elastic) {
      run_options.parallel =
          core::ParallelConfig{.p = 1, .t = 1, .d = 1, .b = args.parallel.b};
    }
    core::PtdpEngine engine(comm, run_options);
    int start_step = 0;
    if (elastic) {
      const auto best = ckpt::find_latest_valid_checkpoint(args.ckpt_dir);
      const auto [src_p, src_t] =
          best ? shard_layout(best->manifest) : std::pair<int, int>{1, 1};
      if (best && src_p * src_t > 1) {
        const std::string merged_dir = args.ckpt_dir + "/elastic-merged";
        if (comm.rank() == 0) {
          std::filesystem::create_directories(merged_dir);
          ckpt::merge_shards(best->shard_dir, src_p, src_t,
                             ckpt::shard_path(merged_dir, 0, 0, 0));
        }
        comm.barrier();
        start_step = static_cast<int>(engine.load_resharded(merged_dir));
        if (comm.rank() == 0) {
          std::printf("resumed from committed checkpoint at step %d "
                      "(recovery, resharded %dx%d -> serial)\n",
                      start_step, src_p, src_t);
        }
      } else if (best) {
        start_step = static_cast<int>(engine.load_checkpoint(args.ckpt_dir));
        if (comm.rank() == 0) {
          std::printf("resumed from committed checkpoint at step %d (recovery)\n",
                      start_step);
        }
      }
    } else if (!args.ckpt_dir.empty() && committed_step > 0) {
      start_step = static_cast<int>(engine.load_checkpoint(args.ckpt_dir));
      if (comm.rank() == 0) {
        std::printf("resumed from committed checkpoint at step %d%s\n",
                    start_step, attempt > 0 ? " (recovery)" : "");
      }
    }
    if (monitor) monitor->heartbeat(comm.world_rank());
    data::ShardedLoader loader(dataset, args.global_batch, args.parallel.b,
                               run_options.parallel.d,
                               engine.groups().coord().data, 77);
    for (int step = start_step; step < args.steps; ++step) {
      auto mbs = loader.next_batch(step);
      if (args.mlm) {
        for (auto& mb : mbs) {
          data::apply_mlm_masking(mb, args.model.vocab, {}, args.model.seed);
        }
      }
      engine.train_step(mbs);
      const auto& stats = engine.last_stats();
      if (monitor) {
        monitor->record_step(comm.world_rank(), static_cast<std::uint64_t>(step),
                             stats.step_seconds, stats.busy_seconds,
                             stats.comm_wait_seconds);
        monitor->heartbeat(comm.world_rank());
        monitor->enforce();  // throws DegradedWorldError on a latched verdict
      }
      if (comm.rank() == 0 &&
          (step % args.log_every == 0 || step == args.steps - 1)) {
        std::printf("step %4lld  loss %.4f  lr %.2e  %.0f tok/s  %.0f ms/step  "
                    "peak %.1f MB%s\n",
                    static_cast<long long>(stats.step), stats.loss, stats.lr,
                    stats.tokens_per_second, stats.step_seconds * 1e3,
                    static_cast<double>(stats.peak_memory_bytes) / 1e6,
                    args.clip > 0
                        ? (" grad-norm " + std::to_string(stats.grad_norm)).c_str()
                        : "");
      }
      if (args.eval_every > 0 && (step + 1) % args.eval_every == 0) {
        // Held-out slice: draw from steps the trainer will never visit.
        auto eval_mbs = loader.next_batch(1'000'000 + step);
        const float eval_loss = engine.evaluate(eval_mbs);
        if (comm.rank() == 0) {
          std::printf("          eval loss %.4f (dropout off)\n", eval_loss);
        }
      }
      if (args.ckpt_every > 0 && !args.ckpt_dir.empty() &&
          (step + 1) % args.ckpt_every == 0) {
        engine.save_checkpoint(args.ckpt_dir,
                               static_cast<std::uint64_t>(step + 1));
      }
    }
    if (!args.ckpt_dir.empty()) {
      engine.save_checkpoint(args.ckpt_dir,
                             static_cast<std::uint64_t>(args.steps));
    }
  };

  const int world_size = static_cast<int>(args.parallel.n());
  if (!args.ckpt_dir.empty()) {
    std::filesystem::create_directories(args.ckpt_dir);
    ft::SupervisorOptions sup;
    sup.ckpt_dir = args.ckpt_dir;
    sup.max_restarts = args.max_restarts;
    sup.fault_plan = plan;
    sup.health = monitor;
    sup.timeouts.op_timeout_ms = args.op_timeout_ms;
    sup.escalation.restarts_before_evict = args.restarts_before_evict;
    ft::TrainSupervisor supervisor(sup);
    const auto& stats = supervisor.run(
        [&](const ft::RestartContext& ctx) {
          // Elastic relayout: once any rank is evicted, fall back to a
          // 1-rank serial world — the body reshards the committed
          // checkpoint to match (see DESIGN.md §15).
          const int n = ctx.evicted.empty() ? world_size : 1;
          return std::make_unique<dist::World>(n);
        },
        body);
    if (stats.failures > 0) {
      std::printf("recovered from %d failure(s): %llu step(s) of work lost, "
                  "%.2f s spent recovering\n",
                  stats.failures,
                  static_cast<unsigned long long>(stats.steps_lost),
                  stats.total_recovery_seconds);
      for (const auto& e : stats.events) {
        std::printf("  attempt %d: rank %d %s%s: %s -> resumed at step %llu\n",
                    e.attempt, e.victim, ft::health_name(e.victim_health),
                    e.evicted ? " (evicted)" : "", e.cause.c_str(),
                    static_cast<unsigned long long>(e.resumed_step));
      }
      std::printf("self-healing: ft.restarts_total %d  ft.evictions_total %d  "
                  "ft.detect_latency_steps %llu  ft.last_recovery_ms %.1f\n",
                  stats.failures, stats.evictions,
                  static_cast<unsigned long long>(
                      stats.events.back().detect_latency_steps),
                  stats.last_recovery_seconds * 1e3);
    }
  } else {
    // No checkpoint dir -> nothing to recover from; run unsupervised.
    dist::World world(world_size);
    if (plan) world.set_fault_plan(plan);
    world.run([&](dist::Comm& comm) { body(comm, 0, 0); });
  }
  if (!args.trace_out.empty()) {
    auto& tracer = obs::Tracer::instance();
    if (!tracer.write_chrome_json(args.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::printf("trace: %llu event(s) recorded (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer.events_recorded()),
                static_cast<unsigned long long>(tracer.events_dropped()),
                args.trace_out.c_str());
    std::fputs(obs::format_report(obs::analyze(tracer)).c_str(), stdout);
  }
  if (!args.metrics_out.empty()) {
    if (!obs::MetricsRegistry::instance().write_json(args.metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  if (!args.trace_out.empty() || !args.metrics_out.empty()) {
    std::printf("per-rank comm volumes (bytes sent/received):\n");
    for (const auto& row : obs::MetricsRegistry::instance().comm_report()) {
      const auto& s = row.stats;
      std::printf("  rank %2d %-10s p2p %6llu msg %10llu B out / %10llu B in"
                  "  coll %5llu op %10llu B out / %10llu B in\n",
                  row.rank, row.group.c_str(),
                  static_cast<unsigned long long>(s.p2p_sends),
                  static_cast<unsigned long long>(s.p2p_send_bytes),
                  static_cast<unsigned long long>(s.p2p_recv_bytes),
                  static_cast<unsigned long long>(s.collective_ops),
                  static_cast<unsigned long long>(s.coll_send_bytes),
                  static_cast<unsigned long long>(s.coll_recv_bytes));
    }
  }
  std::printf("training complete.\n");
  return 0;
}
