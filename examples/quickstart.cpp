// Quickstart: train a small GPT with full PTD-P 3D parallelism — 2-stage
// pipeline x 2-way tensor parallelism x 2-way data parallelism over eight
// thread-backed "GPU" ranks — on a synthetic corpus, then checkpoint and
// resume. This exercises the same public API a real training job would:
//   World -> PtdpEngine -> ShardedLoader -> train_step -> save/load.

#include <cstdio>
#include <filesystem>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"

using namespace ptdp;

int main() {
  // A tiny GPT: 4 layers, hidden 32, 4 heads, vocab 64, sequence length 16.
  model::GptConfig config;
  config.num_layers = 4;
  config.hidden = 32;
  config.heads = 4;
  config.vocab = 64;
  config.seq = 16;
  config.dropout = 0.1f;
  config.seed = 7;

  core::EngineOptions options;
  options.model = config;
  options.parallel.p = 2;  // pipeline stages (across "servers")
  options.parallel.t = 2;  // tensor-parallel width (within a "server")
  options.parallel.d = 2;  // data-parallel replicas
  options.parallel.b = 2;  // microbatch size
  options.parallel.schedule = pipeline::ScheduleType::kOneFOneB;
  options.parallel.recompute = true;  // activation recomputation (§3.5)
  options.global_batch = 16;
  options.optimizer = core::EngineOptions::Opt::kAdam;
  options.adam.lr = 3e-3f;
  options.grad_clip = 1.0;

  std::printf("quickstart: training a %.2fM-parameter GPT with PTD-P %s\n",
              static_cast<double>(config.exact_params()) / 1e6,
              options.parallel.str().c_str());

  // Synthetic corpus with learnable bigram structure.
  data::SyntheticCorpus corpus(config.vocab, /*seed=*/11);
  data::TokenDataset dataset(corpus.generate(20000), config.seq);

  const auto ckpt_dir = std::filesystem::temp_directory_path() / "ptdp_quickstart";
  std::filesystem::create_directories(ckpt_dir);

  dist::World world(options.parallel.n());
  world.run([&](dist::Comm& comm) {
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, options.global_batch, options.parallel.b,
                               options.parallel.d, engine.groups().coord().data,
                               /*seed=*/3);
    for (int step = 0; step < 30; ++step) {
      const float loss = engine.train_step(loader.next_batch(step));
      if (comm.rank() == 0 && step % 5 == 0) {
        std::printf("  step %2d  loss %.4f  grad-norm %.3f\n", step, loss,
                    engine.last_grad_norm());
      }
    }
    engine.save_checkpoint(ckpt_dir.string(), /*step=*/30);
  });

  // Resume from the checkpoint in a fresh world and keep training.
  std::printf("resuming from sharded checkpoint at %s\n", ckpt_dir.c_str());
  world.run([&](dist::Comm& comm) {
    core::PtdpEngine engine(comm, options);
    const auto step0 = engine.load_checkpoint(ckpt_dir.string());
    data::ShardedLoader loader(dataset, options.global_batch, options.parallel.b,
                               options.parallel.d, engine.groups().coord().data,
                               /*seed=*/3);
    for (auto step = static_cast<int>(step0); step < static_cast<int>(step0) + 10;
         ++step) {
      const float loss = engine.train_step(loader.next_batch(step));
      if (comm.rank() == 0 && step % 5 == 0) {
        std::printf("  step %2d  loss %.4f\n", step, loss);
      }
    }
  });
  std::filesystem::remove_all(ckpt_dir);
  std::printf("done — every rank saw identical losses (strict optimizer "
              "semantics across the 3D grid).\n");
  return 0;
}
