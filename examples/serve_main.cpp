// Serving front-end: run the continuous-batching engine under a seeded
// closed-loop load, optionally across tensor-parallel ranks, and validate
// every response against the full-forward oracle (model::generate with the
// KV cache disabled) — the engine's paged, preempted, batched decode must
// produce bit-identical token streams. With --trace-out/--metrics-out the
// run records serve.* spans and metrics (serve.step spans, per-request
// serve.request_done instants, serve.kv.peak_bytes, TTFT histograms, ...)
// in the same ptdp-trace-v1 format train_main emits, so
// tools/validate_trace.py can gate on them in CI.
//
//   serve_main [--users N] [--requests N] [--capacity-blocks N] [--tp N]
//              [--seed N] [--no-check] [--trace-out F] [--metrics-out F]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/serve/loadgen.hpp"

using namespace ptdp;

namespace {

struct Args {
  std::int64_t users = 16;
  std::int64_t requests = 2;
  std::int64_t capacity_blocks = 96;
  std::int64_t tp = 1;
  std::uint64_t seed = 7;
  bool check = true;
  std::string trace_out;
  std::string metrics_out;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::int64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::atoll(argv[++i]);
      return true;
    };
    if (flag == "--users") {
      if (!next(a.users)) return false;
    } else if (flag == "--requests") {
      if (!next(a.requests)) return false;
    } else if (flag == "--capacity-blocks") {
      if (!next(a.capacity_blocks)) return false;
    } else if (flag == "--tp") {
      if (!next(a.tp)) return false;
    } else if (flag == "--seed") {
      std::int64_t s;
      if (!next(s)) return false;
      a.seed = static_cast<std::uint64_t>(s);
    } else if (flag == "--no-check") {
      a.check = false;
    } else if (flag == "--trace-out") {
      if (i + 1 >= argc) return false;
      a.trace_out = argv[++i];
    } else if (flag == "--metrics-out") {
      if (i + 1 >= argc) return false;
      a.metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;

  if (!args.trace_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kFull);
  } else if (!args.metrics_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kMetricsOnly);
  }

  model::GptConfig config;
  config.num_layers = 2;
  config.hidden = 32;
  config.heads = 4;
  config.vocab = 32;
  config.seq = 48;
  config.dropout = 0.0f;
  config.seed = 41;

  std::printf("serving a %lld-layer GPT to %lld users x %lld requests "
              "(tp=%lld, kv capacity %lld blocks)...\n",
              static_cast<long long>(config.num_layers),
              static_cast<long long>(args.users),
              static_cast<long long>(args.requests),
              static_cast<long long>(args.tp),
              static_cast<long long>(args.capacity_blocks));

  int mismatches = 0;
  auto body = [&](dist::Comm& comm) {
    model::GptStage stage(
        config, comm, model::StageSpec{true, true, 0, config.num_layers, false});

    serve::EngineOptions eo;
    eo.block_tokens = 8;
    eo.capacity_blocks = args.capacity_blocks;
    eo.max_batch_tokens = 64;
    eo.prefill_chunk = 8;
    eo.max_running = 64;
    eo.record_metrics = comm.rank() == 0;  // obs values are rank-identical
    serve::ServeEngine engine(stage, eo);

    serve::LoadGenOptions lo;
    lo.users = args.users;
    lo.requests_per_user = args.requests;
    lo.prompt_min = 3;
    lo.prompt_max = 12;
    lo.max_new_min = 4;
    lo.max_new_max = 16;
    lo.think_steps_max = 3;
    lo.window = config.seq;
    lo.vocab = config.vocab;
    lo.seed = args.seed;
    serve::LoadGen lg(lo);

    std::int64_t step = 0;
    while (!lg.done()) {
      PTDP_CHECK_LT(step, 100000) << "serving loop did not drain";
      lg.tick(step, engine);
      const auto done = engine.step();
      lg.on_finished(done, step);
      ++step;
    }

    const auto& st = engine.stats();
    if (comm.rank() == 0) {
      std::printf("completed %lld requests in %lld engine steps "
                  "(%lld tokens, peak %lld concurrent, %lld preemptions)\n",
                  static_cast<long long>(st.completed),
                  static_cast<long long>(st.steps),
                  static_cast<long long>(st.generated_tokens),
                  static_cast<long long>(st.peak_running),
                  static_cast<long long>(st.preemptions));
    }

    if (args.check) {
      // Replay every request through the full-forward oracle. generate()
      // is collective over the tensor group, so all ranks replay.
      for (const auto& fin : lg.finished()) {
        const serve::Request& req = lg.request(fin.id);
        model::GenerateOptions oracle_opts = req.options;
        oracle_opts.use_kv_cache = false;
        oracle_opts.max_new_tokens =
            static_cast<std::int64_t>(fin.tokens.size());
        const auto oracle = model::generate(stage, req.prompt, oracle_opts);
        const bool ok =
            std::equal(fin.tokens.begin(), fin.tokens.end(),
                       oracle.begin() + static_cast<std::ptrdiff_t>(
                                            req.prompt.size()));
        if (!ok && comm.rank() == 0) {
          ++mismatches;
          std::fprintf(stderr, "request %llu: engine tokens != oracle\n",
                       static_cast<unsigned long long>(fin.id));
        }
      }
      if (comm.rank() == 0 && mismatches == 0) {
        std::printf("oracle check: %zu/%zu responses bit-identical to "
                    "full-forward decode\n",
                    lg.finished().size(), lg.finished().size());
      }
    }
  };

  if (args.tp > 1) {
    dist::World world(static_cast<int>(args.tp));
    world.run(body);
  } else {
    dist::Comm solo = dist::Comm::solo();
    body(solo);
  }

  if (!args.trace_out.empty()) {
    auto& tracer = obs::Tracer::instance();
    if (!tracer.write_chrome_json(args.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    if (!obs::MetricsRegistry::instance().write_json(args.metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  if (mismatches > 0) return 1;
  std::printf("done.\n");
  return 0;
}
