// Serving front-end: run the continuous-batching engine under a seeded
// closed-loop load, optionally across tensor-parallel ranks, and validate
// every response against the full-forward oracle (model::generate with the
// KV cache disabled) — the engine's paged, preempted, batched decode must
// produce bit-identical token streams. With --trace-out/--metrics-out the
// run records serve.* spans and metrics (serve.step spans, per-request
// serve.request_done instants, serve.kv.peak_bytes, TTFT histograms, ...)
// in the same ptdp-trace-v1 format train_main emits, so
// tools/validate_trace.py can gate on them in CI.
//
// --weight-dtype selects the serving weight format (DESIGN.md §17): f32,
// bf16, or the weight-only quantized int8 / q4 formats. Quantized runs
// build the stage in f32, quantize-once through the graph planner's
// kernel-selection pass, and validate against a SECOND fp32 stage (same
// config + seed => identical initial weights): int8 greedy decode must be
// token-identical to the fp32 oracle; q4 reports teacher-forced top-1
// agreement (gated at 0.90). --dump-plan writes the planner's inference
// plan (kernel selection visible as "linear_fwd_quant" nodes);
// --save/load-quant-ckpt exercise the dtype-tagged quantized checkpoint.
//
//   serve_main [--users N] [--requests N] [--capacity-blocks N] [--tp N]
//              [--seed N] [--no-check] [--trace-out F] [--metrics-out F]
//              [--weight-dtype f32|bf16|int8|q4] [--group-size N]
//              [--dump-plan F] [--save-quant-ckpt D] [--load-quant-ckpt D]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "ptdp/dist/world.hpp"
#include "ptdp/graph/builder.hpp"
#include "ptdp/graph/passes.hpp"
#include "ptdp/model/generate.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/quant/quant.hpp"
#include "ptdp/serve/loadgen.hpp"

using namespace ptdp;

namespace {

struct Args {
  std::int64_t users = 16;
  std::int64_t requests = 2;
  std::int64_t capacity_blocks = 96;
  std::int64_t tp = 1;
  std::uint64_t seed = 7;
  bool check = true;
  std::string trace_out;
  std::string metrics_out;
  std::string weight_dtype = "f32";
  std::int64_t group_size = 64;
  std::string dump_plan;
  std::string save_quant_ckpt;
  std::string load_quant_ckpt;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::int64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::atoll(argv[++i]);
      return true;
    };
    if (flag == "--users") {
      if (!next(a.users)) return false;
    } else if (flag == "--requests") {
      if (!next(a.requests)) return false;
    } else if (flag == "--capacity-blocks") {
      if (!next(a.capacity_blocks)) return false;
    } else if (flag == "--tp") {
      if (!next(a.tp)) return false;
    } else if (flag == "--seed") {
      std::int64_t s;
      if (!next(s)) return false;
      a.seed = static_cast<std::uint64_t>(s);
    } else if (flag == "--no-check") {
      a.check = false;
    } else if (flag == "--trace-out") {
      if (i + 1 >= argc) return false;
      a.trace_out = argv[++i];
    } else if (flag == "--metrics-out") {
      if (i + 1 >= argc) return false;
      a.metrics_out = argv[++i];
    } else if (flag == "--weight-dtype") {
      if (i + 1 >= argc) return false;
      a.weight_dtype = argv[++i];
    } else if (flag == "--group-size") {
      if (!next(a.group_size)) return false;
    } else if (flag == "--dump-plan") {
      if (i + 1 >= argc) return false;
      a.dump_plan = argv[++i];
    } else if (flag == "--save-quant-ckpt") {
      if (i + 1 >= argc) return false;
      a.save_quant_ckpt = argv[++i];
    } else if (flag == "--load-quant-ckpt") {
      if (i + 1 >= argc) return false;
      a.load_quant_ckpt = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;

  if (!args.trace_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kFull);
  } else if (!args.metrics_out.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kMetricsOnly);
  }

  const bool quantized = args.weight_dtype == "int8" || args.weight_dtype == "q4";
  if (!quantized && args.weight_dtype != "f32" && args.weight_dtype != "bf16") {
    std::fprintf(stderr, "unknown --weight-dtype %s (f32|bf16|int8|q4)\n",
                 args.weight_dtype.c_str());
    return 2;
  }
  graph::QuantPolicy policy;
  policy.kind = args.weight_dtype == "q4" ? tensor::QuantKind::kQ4
                                          : tensor::QuantKind::kInt8;
  policy.group_size = args.group_size;

  model::GptConfig config;
  config.num_layers = 2;
  config.hidden = 32;
  config.heads = 4;
  config.vocab = 32;
  config.seq = 48;
  config.dropout = 0.0f;
  config.seed = 41;
  if (args.weight_dtype == "bf16") config.dtype = tensor::DType::kBf16;

  std::printf("serving a %lld-layer GPT to %lld users x %lld requests "
              "(tp=%lld, kv capacity %lld blocks, weights %s)...\n",
              static_cast<long long>(config.num_layers),
              static_cast<long long>(args.users),
              static_cast<long long>(args.requests),
              static_cast<long long>(args.tp),
              static_cast<long long>(args.capacity_blocks),
              args.weight_dtype.c_str());

  if (!args.dump_plan.empty()) {
    // The inference plan the serving stage will follow, kernel selection
    // included ("linear_fwd_quant" nodes carry a "quant" attribute).
    graph::PlannerOptions popts;
    popts.tp_size = args.tp;
    popts.inference = true;
    if (quantized) popts.quant = &policy;
    const graph::StagePlan splan = graph::build_stage_plan(
        config, 0, config.num_layers, true, true, false, popts);
    std::FILE* f = std::fopen(args.dump_plan.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", args.dump_plan.c_str());
      return 2;
    }
    graph::dump_stage_plan_json(splan, config, f);
    std::fclose(f);
    std::printf("plan -> %s\n", args.dump_plan.c_str());
  }

  int mismatches = 0;
  int q4_disagreements = 0;
  auto body = [&](dist::Comm& comm) {
    model::GptStage stage(
        config, comm, model::StageSpec{true, true, 0, config.num_layers, false});

    // The fp32 accuracy oracle: same config + seed => identical initial
    // weights, kept at full precision while `stage` is quantized below.
    std::optional<model::GptStage> oracle_stage;
    if (quantized) {
      if (args.check) {
        oracle_stage.emplace(config, comm,
                             model::StageSpec{true, true, 0, config.num_layers,
                                              false});
      }
      const model::QuantizeReport report = stage.quantize_for_serving(policy);
      if (comm.rank() == 0) {
        std::printf("quantized %d linears to %s: %lld weight bytes -> %lld "
                    "(%.2fx smaller)\n",
                    report.linears, args.weight_dtype.c_str(),
                    static_cast<long long>(report.weight_bytes_f32),
                    static_cast<long long>(report.weight_bytes),
                    report.weight_bytes > 0
                        ? static_cast<double>(report.weight_bytes_f32) /
                              static_cast<double>(report.weight_bytes)
                        : 0.0);
      }
      if (!args.save_quant_ckpt.empty()) {
        quant::save_quantized_checkpoint(args.save_quant_ckpt, 0, comm,
                                         stage.quantized_weights(), policy.kind);
        if (comm.rank() == 0) {
          std::printf("quantized checkpoint -> %s\n",
                      args.save_quant_ckpt.c_str());
        }
      }
      if (!args.load_quant_ckpt.empty()) {
        const auto step = quant::load_quantized_checkpoint(
            args.load_quant_ckpt, comm, stage.quantized_weights(), policy.kind);
        PTDP_CHECK(step.has_value())
            << "no committed " << args.weight_dtype << " checkpoint under "
            << args.load_quant_ckpt;
        if (comm.rank() == 0) {
          std::printf("quantized checkpoint <- %s (step %llu)\n",
                      args.load_quant_ckpt.c_str(),
                      static_cast<unsigned long long>(*step));
        }
      }
    }

    serve::EngineOptions eo;
    eo.block_tokens = 8;
    eo.capacity_blocks = args.capacity_blocks;
    eo.max_batch_tokens = 64;
    eo.prefill_chunk = 8;
    eo.max_running = 64;
    eo.record_metrics = comm.rank() == 0;  // obs values are rank-identical
    serve::ServeEngine engine(stage, eo);

    serve::LoadGenOptions lo;
    lo.users = args.users;
    lo.requests_per_user = args.requests;
    lo.prompt_min = 3;
    lo.prompt_max = 12;
    lo.max_new_min = 4;
    lo.max_new_max = 16;
    lo.think_steps_max = 3;
    lo.window = config.seq;
    lo.vocab = config.vocab;
    lo.seed = args.seed;
    // The quantized accuracy gates are statements about GREEDY decode
    // (§17 accuracy policy): sampled requests draw through the inverse CDF
    // of *different* logits, so token equality is not the right contract
    // for them. Keep the default greedy/sampled mix for f32/bf16.
    if (quantized) lo.sampled_fraction = 0.0;
    serve::LoadGen lg(lo);

    std::int64_t step = 0;
    while (!lg.done()) {
      PTDP_CHECK_LT(step, 100000) << "serving loop did not drain";
      lg.tick(step, engine);
      const auto done = engine.step();
      lg.on_finished(done, step);
      ++step;
    }

    const auto& st = engine.stats();
    if (comm.rank() == 0) {
      std::printf("completed %lld requests in %lld engine steps "
                  "(%lld tokens, peak %lld concurrent, %lld preemptions)\n",
                  static_cast<long long>(st.completed),
                  static_cast<long long>(st.steps),
                  static_cast<long long>(st.generated_tokens),
                  static_cast<long long>(st.peak_running),
                  static_cast<long long>(st.preemptions));
    }

    if (args.check) {
      // Replay every request through the full-forward path of the SAME
      // stage: the engine's paged, preempted, batched decode must be
      // bit-identical to it at any weight dtype. generate() is collective
      // over the tensor group, so all ranks replay.
      for (const auto& fin : lg.finished()) {
        const serve::Request& req = lg.request(fin.id);
        model::GenerateOptions oracle_opts = req.options;
        oracle_opts.use_kv_cache = false;
        oracle_opts.max_new_tokens =
            static_cast<std::int64_t>(fin.tokens.size());
        const auto oracle = model::generate(stage, req.prompt, oracle_opts);
        const bool ok =
            std::equal(fin.tokens.begin(), fin.tokens.end(),
                       oracle.begin() + static_cast<std::ptrdiff_t>(
                                            req.prompt.size()));
        if (!ok && comm.rank() == 0) {
          ++mismatches;
          std::fprintf(stderr, "request %llu: engine tokens != oracle\n",
                       static_cast<unsigned long long>(fin.id));
        }
      }
      if (comm.rank() == 0 && mismatches == 0) {
        std::printf("oracle check: %zu/%zu responses bit-identical to "
                    "full-forward decode\n",
                    lg.finished().size(), lg.finished().size());
      }
    }

    if (args.check && quantized &&
        policy.kind == tensor::QuantKind::kInt8) {
      // Accuracy gate (DESIGN.md §17): int8 greedy decode must pick the
      // SAME tokens the fp32 model picks — not bitwise logits, identical
      // argmax at every step.
      int int8_mismatches = 0;
      for (const auto& fin : lg.finished()) {
        const serve::Request& req = lg.request(fin.id);
        model::GenerateOptions oracle_opts = req.options;
        oracle_opts.use_kv_cache = false;
        oracle_opts.max_new_tokens =
            static_cast<std::int64_t>(fin.tokens.size());
        const auto oracle =
            model::generate(*oracle_stage, req.prompt, oracle_opts);
        const bool ok =
            std::equal(fin.tokens.begin(), fin.tokens.end(),
                       oracle.begin() + static_cast<std::ptrdiff_t>(
                                            req.prompt.size()));
        if (!ok) {
          ++int8_mismatches;
          if (comm.rank() == 0) {
            std::fprintf(stderr, "request %llu: int8 tokens != fp32 oracle\n",
                         static_cast<unsigned long long>(fin.id));
          }
        }
      }
      if (comm.rank() == 0) {
        mismatches += int8_mismatches;
        if (int8_mismatches == 0) {
          std::printf("oracle check: %zu/%zu responses token-identical to "
                      "the fp32 oracle\n",
                      lg.finished().size(), lg.finished().size());
        }
      }
    }

    if (args.check && quantized && policy.kind == tensor::QuantKind::kQ4) {
      // Q4 is gated on measured agreement, not exactness: teacher-force
      // the fp32 oracle's continuation through the quantized model and
      // count top-1 matches at every generated position.
      std::int64_t agree = 0, total = 0;
      Rng rng(0);  // unused for greedy picks
      for (const auto& fin : lg.finished()) {
        const serve::Request& req = lg.request(fin.id);
        model::GenerateOptions oracle_opts = req.options;
        oracle_opts.use_kv_cache = false;
        oracle_opts.max_new_tokens =
            static_cast<std::int64_t>(fin.tokens.size());
        const auto oracle =
            model::generate(*oracle_stage, req.prompt, oracle_opts);
        for (std::size_t p = req.prompt.size(); p < oracle.size(); ++p) {
          const std::vector<std::int32_t> prefix(oracle.begin(),
                                                 oracle.begin() +
                                                     static_cast<std::ptrdiff_t>(p));
          const tensor::Tensor logits = model::forward_logits(
              stage, prefix, static_cast<std::int64_t>(prefix.size()), 1);
          const auto row = logits.data();
          const std::int64_t v = logits.dim(-1);
          const std::int32_t pick = model::sample_token(
              std::span<const float>(
                  row.data() + (static_cast<std::int64_t>(prefix.size()) - 1) * v,
                  static_cast<std::size_t>(v)),
              oracle_opts, rng);
          agree += pick == oracle[p] ? 1 : 0;
          ++total;
        }
      }
      const double frac =
          total > 0 ? static_cast<double>(agree) / static_cast<double>(total)
                    : 1.0;
      if (comm.rank() == 0) {
        std::printf("q4 top-1 agreement with the fp32 oracle: %lld/%lld "
                    "(%.3f)\n",
                    static_cast<long long>(agree),
                    static_cast<long long>(total), frac);
        if (frac < 0.90) {
          std::fprintf(stderr, "FAIL: q4 top-1 agreement %.3f < 0.90\n", frac);
          ++mismatches;
        }
      }
    }
  };

  if (args.tp > 1) {
    dist::World world(static_cast<int>(args.tp));
    world.run(body);
  } else {
    dist::Comm solo = dist::Comm::solo();
    body(solo);
  }

  if (!args.trace_out.empty()) {
    auto& tracer = obs::Tracer::instance();
    if (!tracer.write_chrome_json(args.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    if (!obs::MetricsRegistry::instance().write_json(args.metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  if (mismatches > 0) return 1;
  std::printf("done.\n");
  return 0;
}
