// The paper's headline, end to end: a trillion-parameter GPT on 3072 A100s
// at 502 petaFLOP/s (52% of peak), trained in ~3 months. This example
// walks the full story: the model, the PTD-P configuration the heuristics
// pick, the simulated iteration, the memory budget, the communication
// breakdown, and the Eq. (4) training-time estimate.

#include <cstdio>

#include "ptdp/core/analytics.hpp"
#include "ptdp/sim/simulator.hpp"

using namespace ptdp;

int main() {
  model::GptConfig m;
  m.num_layers = 128;
  m.hidden = 25600;
  m.heads = 160;
  m.vocab = 51200;
  m.seq = 2048;
  std::printf("model: %lld layers, hidden %lld, %lld heads -> %.1fB parameters "
              "(Eq. 2)\n",
              static_cast<long long>(m.num_layers),
              static_cast<long long>(m.hidden), static_cast<long long>(m.heads),
              m.paper_params() / 1e9);

  core::ParallelConfig cfg;
  cfg.t = 8;    // Takeaway #1: the DGX A100 node size
  cfg.p = 64;   // Takeaway #2: with t=8 this is what fits 80 GB
  cfg.d = 6;    // the remaining factor of 3072
  cfg.b = 1;
  cfg.v = 2;    // interleaved schedule, 1 layer per chunk
  cfg.schedule = pipeline::ScheduleType::kInterleaved;
  cfg.scatter_gather = true;
  cfg.recompute = true;
  const std::int64_t B = 3072;
  std::printf("configuration: %s on %lld GPUs, global batch %lld\n\n",
              cfg.str().c_str(), static_cast<long long>(cfg.n()),
              static_cast<long long>(B));

  const auto hw = sim::ClusterSpec::selene();
  const auto res = sim::simulate_iteration(hw, m, cfg, B);

  std::printf("simulated iteration: %.1f s\n", res.iteration_seconds);
  std::printf("  per-GPU throughput:   %.0f teraFLOP/s (%.0f%% of the 312 TF "
              "peak; paper: 163 / 52%%)\n",
              res.per_gpu_flops / 1e12, 100 * res.percent_of_peak);
  std::printf("  aggregate throughput: %.0f petaFLOP/s (paper: 502)\n",
              res.aggregate_flops / 1e15);
  std::printf("  pipeline bubble:      %.1f%% (analytic (p-1)/(v*m) = %.1f%%)\n",
              100 * res.bubble_fraction, 100 * core::bubble_fraction(cfg, B));
  std::printf("  per-GPU memory:       %.0f GB of %.0f GB%s\n",
              res.memory_bytes / 1e9, hw.gpu_memory / 1e9,
              res.oom ? "  ** DOES NOT FIT **" : "");
  std::printf("  comm: tensor-parallel %.1f s/iter, dp all-reduce %.2f s/iter\n",
              res.tp_comm_seconds, res.dp_comm_seconds);

  std::printf("\ntraining-time estimates (Eq. 4):\n");
  const double days_1t =
      core::training_time_days(450e9, m.paper_params(), 3072, res.per_gpu_flops);
  std::printf("  1T model, 450B tokens:  %.0f days (~3 months; paper: 84 days)\n",
              days_1t);
  const double days_gpt3 = core::training_time_days(300e9, 175e9, 1024, 140e12);
  std::printf("  GPT-3 reference point:  %.0f days (paper: 34 days)\n", days_gpt3);

  std::printf("\nwhy not other configurations?\n");
  struct Alt {
    const char* why;
    core::ParallelConfig cfg;
  };
  Alt alts[] = {
      {"t=16 crosses the node", [] {
         core::ParallelConfig c;
         c.t = 16;
         c.p = 32;
         c.d = 6;
         c.b = 1;
         c.recompute = true;
         return c;
       }()},
      {"no recompute", [] {
         core::ParallelConfig c;
         c.t = 8;
         c.p = 64;
         c.d = 6;
         c.b = 1;
         c.recompute = false;
         return c;
       }()},
      {"non-interleaved", [] {
         core::ParallelConfig c;
         c.t = 8;
         c.p = 64;
         c.d = 6;
         c.b = 1;
         c.recompute = true;
         return c;
       }()},
  };
  for (const Alt& alt : alts) {
    const auto r = sim::simulate_iteration(hw, m, alt.cfg, B);
    if (r.oom) {
      std::printf("  %-24s -> OOM (%.0f GB needed)\n", alt.why,
                  r.memory_bytes / 1e9);
    } else {
      std::printf("  %-24s -> %.0f TF/GPU (%+.0f%% vs chosen)\n", alt.why,
                  r.per_gpu_flops / 1e12,
                  100 * (r.per_gpu_flops / res.per_gpu_flops - 1));
    }
  }
  return 0;
}
