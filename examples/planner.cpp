// Planner: given a model and a cluster, apply the paper's heuristics
// (Takeaways #1–#3) to choose (p, t, d, b, v) — ranked by the full cluster
// simulation. Usage:
//   planner [layers hidden heads n_gpus global_batch]
// Defaults reproduce the 39.1B Table 1 row's setting.

#include <cstdio>
#include <cstdlib>

#include "ptdp/core/planner.hpp"
#include "ptdp/sim/simulator.hpp"

using namespace ptdp;

int main(int argc, char** argv) {
  core::PlannerInput input;
  input.model.num_layers = argc > 1 ? std::atoll(argv[1]) : 48;
  input.model.hidden = argc > 2 ? std::atoll(argv[2]) : 8192;
  input.model.heads = argc > 3 ? std::atoll(argv[3]) : 64;
  input.model.vocab = 51200;
  input.model.seq = 2048;
  input.n_gpus = argc > 4 ? std::atoll(argv[4]) : 512;
  input.global_batch = argc > 5 ? std::atoll(argv[5]) : 1536;

  std::printf("planning for a %.1fB-parameter GPT on %lld A100s, batch %lld\n\n",
              input.model.paper_params() / 1e9,
              static_cast<long long>(input.n_gpus),
              static_cast<long long>(input.global_batch));

  const auto hw = sim::ClusterSpec::selene();
  const core::Plan plan =
      core::plan_configuration(input, sim::make_throughput_model(hw));

  std::printf("%s\n\n", plan.rationale.c_str());
  std::printf("top configurations (of %zu feasible):\n", plan.feasible.size());
  std::printf("%-44s %12s %10s %10s\n", "configuration", "s/batch", "TF/GPU",
              "GB/GPU");
  const double flops = core::flops_per_iteration(input.model, input.global_batch);
  const std::size_t show = std::min<std::size_t>(8, plan.feasible.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& cand = plan.feasible[i];
    std::printf("%-44s %12.2f %10.0f %10.1f\n", cand.config.str().c_str(),
                cand.est_batch_seconds,
                flops / (cand.est_batch_seconds * input.n_gpus) / 1e12,
                cand.memory.total() / 1e9);
  }

  std::printf("\nheuristics at work:\n");
  std::printf("  Takeaway #1: t = %d (never beyond the %d-GPU node)\n",
              plan.best.config.t, input.gpus_per_node);
  std::printf("  Takeaway #2: model-parallel size M = t*p = %lld — just enough "
              "to fit %.1f GB/GPU under %.0f GB\n",
              static_cast<long long>(plan.best.config.model_parallel_size()),
              plan.best.memory.total() / 1e9, input.gpu_memory_bytes / 1e9);
  std::printf("  Takeaway #3: microbatch b = %lld chosen by sweep\n",
              static_cast<long long>(plan.best.config.b));
  return 0;
}
