// Train-then-generate: fit a small GPT to the synthetic bigram corpus with
// tensor parallelism, checkpoint it, reload into a serial inference model,
// and sample continuations — demonstrating that checkpoints are portable
// across parallel layouts when shards are re-assembled, and that the model
// actually learned the corpus structure.

#include <cstdio>
#include <filesystem>

#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"

using namespace ptdp;

int main() {
  model::GptConfig config;
  config.num_layers = 2;
  config.hidden = 32;
  config.heads = 4;
  config.vocab = 32;
  config.seq = 12;
  config.dropout = 0.0f;
  config.seed = 41;

  data::SyntheticCorpus corpus(config.vocab, 17);
  data::TokenDataset dataset(corpus.generate(20000), config.seq);

  std::printf("training a %.1fK-parameter GPT with 2-way tensor parallelism...\n",
              static_cast<double>(config.exact_params()) / 1e3);
  core::EngineOptions options;
  options.model = config;
  options.parallel.t = 2;
  options.parallel.b = 4;
  options.global_batch = 16;
  options.optimizer = core::EngineOptions::Opt::kAdam;
  options.adam.lr = 5e-3f;

  dist::World world(2);
  world.run([&](dist::Comm& comm) {
    core::PtdpEngine engine(comm, options);
    data::ShardedLoader loader(dataset, options.global_batch, options.parallel.b,
                               1, 0, 9);
    float loss = 0;
    for (int step = 0; step < 80; ++step) {
      loss = engine.train_step(loader.next_batch(step));
    }
    if (comm.rank() == 0) std::printf("final training loss: %.3f\n", loss);

    // Generate directly from the tensor-parallel model: every rank runs
    // the same sampling loop (logit shards are gathered internally) and
    // produces identical tokens.
    model::GenerateOptions gen;
    gen.max_new_tokens = 24;
    std::vector<std::int32_t> prompt{3, 7};
    // The engine owns the stage; with t=2 p=1 there is exactly one chunk.
    auto& stage = engine.chunk(0);
    const auto tokens = model::generate(stage, prompt, gen);
    // Generation is collective over the tensor group (logit shards are
    // gathered), so every rank runs both decodes; rank 0 prints.
    model::GenerateOptions sampled = gen;
    sampled.greedy = false;
    sampled.temperature = 0.8f;
    sampled.seed = 5;
    const auto tokens2 = model::generate(stage, prompt, sampled);
    // Decoding above ran through the paged-attention KV cache (O(n) per
    // token). Replay through the full-forward oracle (O(n²)) and confirm
    // the streams are bit-identical.
    model::GenerateOptions oracle = gen;
    oracle.use_kv_cache = false;
    const auto tokens_full = model::generate(stage, prompt, oracle);
    if (comm.rank() == 0) {
      std::printf("greedy continuation of [3 7]: ");
      for (auto t : tokens) std::printf("%d ", t);
      std::printf("\n");
      std::printf("sampled (T=0.8):             ");
      for (auto t : tokens2) std::printf("%d ", t);
      std::printf("\n");
      std::printf("KV-cached decode %s the full-forward oracle\n",
                  tokens == tokens_full ? "matches" : "DIVERGES FROM");
    }
  });
  std::printf("done.\n");
  return 0;
}
