// Checkpoint resharding workflow: train under (p=2, t=2), merge the four
// shards into one serial checkpoint, re-split it for t=2 inference, and
// verify the resharded model generates exactly what the original would —
// the "train big, serve differently" path of real deployments.

#include <cstdio>
#include <filesystem>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/ckpt/reshard.hpp"
#include "ptdp/core/engine.hpp"
#include "ptdp/data/dataset.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/model/generate.hpp"

using namespace ptdp;

int main() {
  model::GptConfig config;
  config.num_layers = 4;
  config.hidden = 32;
  config.heads = 4;
  config.vocab = 64;
  config.seq = 12;
  config.seed = 23;

  const auto dir = std::filesystem::temp_directory_path() / "ptdp_reshard_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  data::SyntheticCorpus corpus(config.vocab, 8);
  data::TokenDataset dataset(corpus.generate(16000), config.seq);

  // 1) Train under (p=2, t=2) — four shards on disk.
  std::printf("1) training under (p=2, t=2) and saving 4 shards...\n");
  core::EngineOptions options;
  options.model = config;
  options.parallel.p = 2;
  options.parallel.t = 2;
  options.parallel.b = 2;
  options.global_batch = 16;
  options.optimizer = core::EngineOptions::Opt::kAdam;
  options.adam.lr = 4e-3f;
  {
    dist::World world(4);
    world.run([&](dist::Comm& comm) {
      core::PtdpEngine engine(comm, options);
      data::ShardedLoader loader(dataset, 16, 2, 1, 0, 2);
      float loss = 0;
      for (int s = 0; s < 40; ++s) loss = engine.train_step(loader.next_batch(s));
      if (comm.rank() == 0) std::printf("   final loss %.3f\n", loss);
      engine.save_checkpoint(dir.string(), 40);
    });
  }

  // 2) Merge the (p=2, t=2) shards into one serial checkpoint. The save
  // above was a committed checkpoint: resolve its shard directory through
  // the manifest rather than assuming a layout.
  const auto committed = ckpt::find_latest_valid_checkpoint(dir.string());
  if (!committed) {
    std::fprintf(stderr, "no committed checkpoint under %s\n", dir.c_str());
    return 1;
  }
  const auto merged = dir / "merged.ckpt";
  std::printf("2) merging shards of step %llu -> %s\n",
              static_cast<unsigned long long>(committed->step()), merged.c_str());
  ckpt::merge_shards(committed->shard_dir, 2, 2, merged.string());
  std::printf("   merged size: %.2f MB\n",
              static_cast<double>(std::filesystem::file_size(merged)) / 1e6);

  // 3) Serial inference from the merged checkpoint.
  std::printf("3) loading into a serial (p=t=1) model and generating...\n");
  std::vector<std::int32_t> serial_tokens;
  {
    dist::World world(1);
    world.run([&](dist::Comm& comm) {
      core::EngineOptions serial_opts = options;
      serial_opts.parallel = core::ParallelConfig{};
      serial_opts.parallel.b = 2;
      const auto serial_dir = dir / "serial";
      std::filesystem::create_directories(serial_dir);
      std::filesystem::copy_file(merged,
                                 ckpt::shard_path(serial_dir.string(), 0, 0, 0));
      core::PtdpEngine engine(comm, serial_opts);
      engine.load_resharded(serial_dir.string());
      model::GenerateOptions gen;
      gen.max_new_tokens = 12;
      std::vector<std::int32_t> prompt{5, 9};
      serial_tokens = model::generate(engine.chunk(0), prompt, gen);
      std::printf("   serial generation: ");
      for (auto t : serial_tokens) std::printf("%d ", t);
      std::printf("\n");
    });
  }

  // 4) Re-split for t=2 inference; identical generation.
  std::printf("4) splitting merged checkpoint to t=2 and re-generating...\n");
  const auto t2_dir = dir / "t2";
  std::filesystem::create_directories(t2_dir);
  ckpt::split_shards(merged.string(), 2, t2_dir.string());
  {
    dist::World world(2);
    world.run([&](dist::Comm& comm) {
      core::EngineOptions t2_opts = options;
      t2_opts.parallel = core::ParallelConfig{};
      t2_opts.parallel.t = 2;
      t2_opts.parallel.b = 2;
      core::PtdpEngine engine(comm, t2_opts);
      engine.load_resharded(t2_dir.string());
      model::GenerateOptions gen;
      gen.max_new_tokens = 12;
      std::vector<std::int32_t> prompt{5, 9};
      const auto tokens = model::generate(engine.chunk(0), prompt, gen);
      if (comm.rank() == 0) {
        std::printf("   t=2 generation:    ");
        for (auto t : tokens) std::printf("%d ", t);
        std::printf("\n   %s\n", tokens == serial_tokens
                                     ? "identical to serial — reshard exact"
                                     : "** MISMATCH **");
      }
    });
  }
  std::filesystem::remove_all(dir);
  return 0;
}
