#!/usr/bin/env python3
"""Schema validation for ptdp observability artifacts (DESIGN.md §11).

Validates a Chrome trace_event JSON written by obs::Tracer::write_chrome_json
(schema ptdp-trace-v1), and optionally a metrics JSON written by
obs::MetricsRegistry::write_json (schema ptdp-metrics-v1). CI's
obs-trace-smoke job runs this against a 3-step train_main trace; exits 1 on
any violation so a malformed exporter fails the build.

Usage:
    tools/validate_trace.py TRACE.json [--metrics METRICS.json]
        [--min-events N] [--expect-ranks P] [--expect-metric NAME ...]
        [--expect-span NAME ...]
"""

import argparse
import json
import sys

TRACE_SCHEMA = "ptdp-trace-v1"
METRICS_SCHEMA = "ptdp-metrics-v1"
VALID_PHASES = {"X", "i", "M"}
VALID_CATS = {"compute", "p2p", "collective", "ckpt", "engine", "runtime"}

_errors = []


def err(msg):
    _errors.append(msg)


def validate_trace(path, min_events, expect_ranks, expect_spans=()):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(f"{path}: not readable JSON: {e}")
        return

    other = doc.get("otherData")
    if not isinstance(other, dict):
        err(f"{path}: missing otherData object")
        return
    if other.get("schema") != TRACE_SCHEMA:
        err(f"{path}: schema {other.get('schema')!r} != {TRACE_SCHEMA!r}")
    if not isinstance(other.get("dropped_events"), int):
        err(f"{path}: otherData.dropped_events missing or not an int")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err(f"{path}: traceEvents missing or not a list")
        return

    ranks = set()
    named_ranks = set()
    spans = 0
    span_names = set()
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            err(f"{where}: ph {ph!r} not in {sorted(VALID_PHASES)}")
            continue
        if ph == "M":
            if ev.get("name") != "thread_name":
                err(f"{where}: metadata event is not thread_name")
            named_ranks.add(ev.get("tid"))
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                err(f"{where}: missing {key!r}")
        if not isinstance(ev.get("ts"), (int, float)) or ev.get("ts", 0) < 0:
            err(f"{where}: ts must be a non-negative number")
        if ev.get("cat") not in VALID_CATS:
            err(f"{where}: cat {ev.get('cat')!r} not in {sorted(VALID_CATS)}")
        if ph == "X":
            spans += 1
            span_names.add(ev.get("name"))
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                err(f"{where}: complete event needs a non-negative dur")
        ranks.add(ev.get("tid"))

    if len(events) < min_events:
        err(f"{path}: only {len(events)} events (expected >= {min_events})")
    if spans == 0:
        err(f"{path}: no complete ('X') span events")
    missing_names = ranks - named_ranks
    if missing_names:
        err(f"{path}: tids {sorted(missing_names)} have no thread_name metadata")
    if expect_ranks is not None:
        # Rank threads are tids 0..p-1; helper threads record as tid -1.
        expected = set(range(expect_ranks))
        if not expected <= ranks:
            err(f"{path}: expected events from ranks {sorted(expected)}, "
                f"saw {sorted(ranks)}")
    for name in expect_spans:
        # Graph mode (DESIGN.md §14) emits a span per executed op, named
        # graph.<op>; CI asserts a representative set is present.
        if name not in span_names:
            err(f"{path}: expected span {name!r} not found "
                f"(have {len(span_names)} distinct span names)")
    return len(events)


def validate_metrics(path, expect_metrics=()):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(f"{path}: not readable JSON: {e}")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        err(f"{path}: schema {doc.get('schema')!r} != {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            err(f"{path}: {section} missing or not an object")
    present = set()
    for section in ("counters", "gauges", "histograms"):
        sec = doc.get(section)
        if isinstance(sec, dict):
            present.update(sec.keys())
    for name in expect_metrics:
        if name not in present:
            err(f"{path}: expected metric {name!r} not found in "
                f"counters/gauges/histograms")
    comm = doc.get("comm")
    if not isinstance(comm, list):
        err(f"{path}: comm missing or not a list")
        return
    for i, row in enumerate(comm):
        where = f"{path}: comm[{i}]"
        if not isinstance(row, dict):
            err(f"{where}: not an object")
            continue
        for key in ("rank", "group", "p2p_sends", "p2p_send_bytes", "p2p_recvs",
                    "p2p_recv_bytes", "collective_ops", "coll_send_bytes",
                    "coll_recv_bytes"):
            if key not in row:
                err(f"{where}: missing {key!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON from --trace-out")
    ap.add_argument("--metrics", help="metrics JSON from --metrics-out")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail unless the trace holds at least N events")
    ap.add_argument("--expect-ranks", type=int, default=None,
                    help="fail unless every rank 0..P-1 emitted events")
    ap.add_argument("--expect-metric", action="append", default=[],
                    metavar="NAME",
                    help="fail unless NAME appears in the metrics JSON "
                         "(repeatable; requires --metrics)")
    ap.add_argument("--expect-span", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a complete ('X') span named NAME "
                         "appears in the trace (repeatable)")
    args = ap.parse_args()
    if args.expect_metric and not args.metrics:
        ap.error("--expect-metric requires --metrics")

    n = validate_trace(args.trace, args.min_events, args.expect_ranks,
                       args.expect_span)
    if args.metrics:
        validate_metrics(args.metrics, args.expect_metric)

    if _errors:
        for e in _errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"ok: {args.trace} valid {TRACE_SCHEMA} ({n} events)"
          + (f", {args.metrics} valid {METRICS_SCHEMA}" if args.metrics else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
