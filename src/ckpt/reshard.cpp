#include "ptdp/ckpt/reshard.hpp"

#include <map>
#include <string_view>

#include "ptdp/runtime/check.hpp"

namespace ptdp::ckpt {

using tensor::Tensor;

int shard_axis(const std::string& name) {
  std::string_view base = name;
  // Optimizer state shards exactly like the parameter it belongs to.
  for (std::string_view suffix : {".adam_m", ".adam_v", ".fp32_master",
                                  ".sgd_velocity"}) {
    if (base.size() > suffix.size() &&
        base.substr(base.size() - suffix.size()) == suffix) {
      base = base.substr(0, base.size() - suffix.size());
      break;
    }
  }
  if (base == "embedding.word") return 0;
  const bool weight = base.ends_with(".weight");
  const bool bias = base.ends_with(".bias");
  if (base.find(".attn.qkv") != std::string_view::npos ||
      base.find(".mlp.fc1") != std::string_view::npos) {
    if (weight) return 1;  // column-parallel: output columns
    if (bias) return 0;    // per-column bias shards with its columns
  }
  if (base.find(".attn.proj") != std::string_view::npos ||
      base.find(".mlp.fc2") != std::string_view::npos) {
    if (weight) return 0;  // row-parallel: input rows
    if (bias) return -1;   // applied after the all-reduce, replicated
  }
  // LayerNorms, position embeddings, step counters, anything else.
  return -1;
}

CheckpointMeta merge_shards(const std::string& dir, int p, int t,
                            const std::string& out_path, int d_idx) {
  PTDP_CHECK_GT(p, 0);
  PTDP_CHECK_GT(t, 0);
  CheckpointMeta meta{};
  std::vector<std::string> order;                 // first-seen name order
  std::map<std::string, Tensor> merged;

  for (int pi = 0; pi < p; ++pi) {
    // Read this stage's t shards.
    std::vector<OwnedTensors> shards;
    shards.reserve(static_cast<std::size_t>(t));
    for (int ti = 0; ti < t; ++ti) {
      CheckpointMeta m{};
      shards.push_back(read_all(shard_path(dir, pi, ti, d_idx), &m));
      if (pi == 0 && ti == 0) meta = m;
      PTDP_CHECK_EQ(m.step, meta.step) << "shards from different steps";
      PTDP_CHECK_EQ(shards.back().size(), shards.front().size())
          << "tensor-rank shard files disagree on contents";
    }
    for (std::size_t i = 0; i < shards[0].size(); ++i) {
      const std::string& name = shards[0][i].first;
      const int axis = shard_axis(name);
      Tensor whole;
      if (axis < 0 || t == 1) {
        // Replicated: verify the tensor ranks agree, take rank 0's copy.
        for (int ti = 1; ti < t; ++ti) {
          PTDP_CHECK_EQ(shards[static_cast<std::size_t>(ti)][i].first, name);
          if (axis < 0) {
            PTDP_CHECK(tensor::allclose(shards[0][i].second,
                                        shards[static_cast<std::size_t>(ti)][i].second,
                                        1e-5f, 1e-6f))
                << name << ": replicated tensor differs across tensor ranks";
          }
        }
        whole = shards[0][i].second;
      } else {
        std::vector<Tensor> parts;
        parts.reserve(static_cast<std::size_t>(t));
        for (int ti = 0; ti < t; ++ti) {
          PTDP_CHECK_EQ(shards[static_cast<std::size_t>(ti)][i].first, name);
          parts.push_back(shards[static_cast<std::size_t>(ti)][i].second);
        }
        whole = tensor::concat(parts, axis);
      }
      // The tied embedding (and its optimizer state) appears on both the
      // first and last stage with identical values — keep the first copy
      // after verifying the stages agree.
      if (merged.contains(name)) {
        PTDP_CHECK(tensor::allclose(merged.at(name), whole, 1e-5f, 1e-6f))
            << name << ": duplicated across stages with different values";
        continue;
      }
      order.push_back(name);
      merged.emplace(name, std::move(whole));
    }
  }

  NamedTensors out;
  out.reserve(order.size());
  for (const std::string& name : order) out.emplace_back(name, &merged.at(name));
  save_checkpoint(out_path, out, meta);
  return meta;
}

void split_shards(const std::string& merged_path, int t, const std::string& dir,
                  int d_idx) {
  PTDP_CHECK_GT(t, 0);
  CheckpointMeta meta{};
  OwnedTensors all = read_all(merged_path, &meta);
  for (int ti = 0; ti < t; ++ti) {
    std::vector<Tensor> slices;  // keep storage alive for save
    slices.reserve(all.size());
    NamedTensors out;
    out.reserve(all.size());
    for (auto& [name, whole] : all) {
      const int axis = shard_axis(name);
      if (axis < 0 || t == 1) {
        out.emplace_back(name, &whole);
        continue;
      }
      PTDP_CHECK_EQ(whole.dim(axis) % t, 0)
          << name << ": dim " << axis << " (" << whole.dim(axis)
          << ") not divisible by t=" << t;
      const std::int64_t len = whole.dim(axis) / t;
      slices.push_back(whole.slice(axis, ti * len, len));
      out.emplace_back(name, &slices.back());
    }
    save_checkpoint(shard_path(dir, 0, ti, d_idx), out, meta);
  }
}

}  // namespace ptdp::ckpt
