#include "ptdp/ckpt/checkpoint.hpp"

#include "ptdp/ckpt/reshard.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "ptdp/runtime/check.hpp"

namespace ptdp::ckpt {

namespace {

constexpr std::uint64_t kMagic = 0x5054'4450'434B'5031ULL;  // "PTDPCKP1"
constexpr std::uint32_t kVersion = 1;

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  PTDP_CHECK(is.good()) << "truncated checkpoint";
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = crc_table()[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::int64_t save_checkpoint(const std::string& path, const NamedTensors& tensors,
                             const CheckpointMeta& meta) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PTDP_CHECK(os.good()) << "cannot open " << path << " for writing";
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, meta.step);
  write_pod(os, meta.extra);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    PTDP_CHECK(t != nullptr && t->defined()) << "undefined tensor " << name;
    write_pod(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<std::uint32_t>(t->ndim()));
    for (std::int64_t d : t->shape()) write_pod(os, static_cast<std::int64_t>(d));
    auto data = t->data();
    write_pod(os, crc32(data.data(), data.size_bytes()));
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size_bytes()));
  }
  PTDP_CHECK(os.good()) << "write failed for " << path;
  return static_cast<std::int64_t>(os.tellp());
}

CheckpointMeta load_checkpoint(const std::string& path, const NamedTensors& tensors) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  PTDP_CHECK_EQ(read_pod<std::uint32_t>(is), kVersion) << "bad version in " << path;
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  const auto count = read_pod<std::uint64_t>(is);
  PTDP_CHECK_EQ(count, tensors.size())
      << "checkpoint has " << count << " tensors, expected " << tensors.size();

  // Saved order must match requested order (both derive from the same
  // deterministic parameter enumeration).
  for (const auto& [name, t] : tensors) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string saved_name(name_len, '\0');
    is.read(saved_name.data(), name_len);
    PTDP_CHECK_EQ(saved_name, name) << "tensor order/name mismatch";
    const auto ndim = read_pod<std::uint32_t>(is);
    tensor::Shape shape(ndim);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);
    PTDP_CHECK(shape == t->shape())
        << name << ": checkpoint shape differs from model shape " << t->shape_str();
    const auto saved_crc = read_pod<std::uint32_t>(is);
    auto data = t->data();
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
    PTDP_CHECK(is.good()) << "truncated tensor payload for " << name;
    PTDP_CHECK_EQ(crc32(data.data(), data.size_bytes()), saved_crc)
        << "CRC mismatch for " << name << " — corrupted checkpoint";
  }
  return meta;
}

CheckpointMeta peek_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  PTDP_CHECK_EQ(read_pod<std::uint32_t>(is), kVersion) << "bad version in " << path;
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  return meta;
}

namespace {

// Shared payload reader: consumes one (name, shape, crc, data) record.
std::pair<std::string, tensor::Tensor> read_one_tensor(std::ifstream& is) {
  const auto name_len = read_pod<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  const auto ndim = read_pod<std::uint32_t>(is);
  tensor::Shape shape(ndim);
  for (auto& d : shape) d = read_pod<std::int64_t>(is);
  const auto saved_crc = read_pod<std::uint32_t>(is);
  std::vector<float> values(static_cast<std::size_t>(tensor::numel_of(shape)));
  is.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  PTDP_CHECK(is.good()) << "truncated tensor payload for " << name;
  PTDP_CHECK_EQ(crc32(values.data(), values.size() * sizeof(float)), saved_crc)
      << "CRC mismatch for " << name;
  return {std::move(name), tensor::Tensor::from_vector(std::move(shape),
                                                       std::move(values))};
}

}  // namespace

OwnedTensors read_all(const std::string& path, CheckpointMeta* meta_out) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  PTDP_CHECK_EQ(read_pod<std::uint32_t>(is), kVersion) << "bad version in " << path;
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  if (meta_out != nullptr) *meta_out = meta;
  const auto count = read_pod<std::uint64_t>(is);
  OwnedTensors all;
  all.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) all.push_back(read_one_tensor(is));
  return all;
}

CheckpointMeta load_checkpoint_by_name(const std::string& path,
                                       const NamedTensors& tensors) {
  CheckpointMeta meta;
  auto all = read_all(path, &meta);
  for (const auto& [name, dst] : tensors) {
    bool found = false;
    for (auto& [saved_name, saved] : all) {
      if (saved_name != name) continue;
      PTDP_CHECK(saved.shape() == dst->shape())
          << name << ": checkpoint shape differs from model shape "
          << dst->shape_str();
      dst->copy_from(saved);
      found = true;
      break;
    }
    PTDP_CHECK(found) << "tensor " << name << " missing from " << path;
  }
  return meta;
}

std::string shard_path(const std::string& dir, int p_idx, int t_idx, int d_idx) {
  return dir + "/shard-p" + std::to_string(p_idx) + "-t" + std::to_string(t_idx) +
         "-d" + std::to_string(d_idx) + ".ckpt";
}

}  // namespace ptdp::ckpt
